#pragma once
// Kestrel Bastion: cooperative memory budgeting.
//
// A MemoryBudget is a byte ledger that large allocations consult *before*
// touching the allocator: require() answers "would this fit?" and throws a
// structured BudgetError (with requested / in-use / limit bytes) when it
// would not, so callers decline an oversized matrix upload with a precise,
// recoverable error instead of dying in std::bad_alloc halfway through a
// read.  reserve()/release() track long-lived residents (registered matrix
// handles); the limit is advisory for anything that does not ask.
//
// The global() instance is configured from -svc_mem_budget (MB) by the
// solve service and consulted by the Matrix Market reader's pre-size check.
// Limit 0 means unlimited — the default, so standalone tools pay nothing.

#include <cstdint>
#include <mutex>
#include <string>

namespace kestrel {

class MemoryBudget {
 public:
  MemoryBudget() = default;

  /// 0 disables enforcement (require() always passes, reserve() still
  /// counts so usage can be inspected).
  void set_limit_bytes(std::uint64_t bytes);
  std::uint64_t limit_bytes() const;
  std::uint64_t used_bytes() const;

  /// Check-only admission: throws BudgetError when `bytes` on top of the
  /// current usage would exceed the limit.  Nothing is reserved — use for
  /// transient allocations (COO staging arrays) that are freed before the
  /// next budgeted call.
  void require(std::uint64_t bytes, const std::string& what) const;

  /// Admit and account `bytes` of long-lived usage, or throw BudgetError.
  void reserve(std::uint64_t bytes, const std::string& what);

  /// Return previously reserved bytes to the pool (clamped at zero).
  void release(std::uint64_t bytes);

  /// Process-wide budget shared by the solve service and the IO layer.
  static MemoryBudget& global();

 private:
  mutable std::mutex mu_;
  std::uint64_t limit_ = 0;
  std::uint64_t used_ = 0;
};

/// RAII convenience: set a limit on a budget for a scope (tests).
class BudgetLimitGuard {
 public:
  BudgetLimitGuard(MemoryBudget& budget, std::uint64_t limit_bytes)
      : budget_(budget), saved_(budget.limit_bytes()) {
    budget_.set_limit_bytes(limit_bytes);
  }
  ~BudgetLimitGuard() { budget_.set_limit_bytes(saved_); }
  BudgetLimitGuard(const BudgetLimitGuard&) = delete;
  BudgetLimitGuard& operator=(const BudgetLimitGuard&) = delete;

 private:
  MemoryBudget& budget_;
  std::uint64_t saved_;
};

}  // namespace kestrel
