#pragma once
// Per-message communication cost model (Kestrel Slipstream).
//
// The classic postal model: sending one b-byte message costs
//     t(b) = alpha + beta * b
// with alpha the per-message latency (rendezvous, wakeup, bookkeeping) and
// beta the inverse effective bandwidth. The defaults reproduce the fixed
// 250 us-per-level halo term the multinode model (perf/spmv_model.cpp)
// previously hardcoded (4 neighbor messages x 62.5 us); calibrated
// constants come from measure_fabric() — a persistent-channel ping-pong
// over a ladder of message sizes, least-squares fitted — which is exactly
// what bench_comm runs and records in EXPERIMENTS.md.

#include <vector>

namespace kestrel::perf {

/// One calibration observation: a b-byte message took `seconds` one-way.
struct CommSample {
  double bytes = 0.0;
  double seconds = 0.0;
};

struct CommModel {
  double alpha_s = 62.5e-6;        ///< per-message latency (seconds)
  double beta_s_per_byte = 5e-11;  ///< inverse bandwidth (~20 GB/s)

  /// Modeled one-way time of a single b-byte message.
  double message_seconds(double bytes) const {
    return alpha_s + beta_s_per_byte * bytes;
  }

  /// Ordinary least squares over (bytes, seconds) samples; alpha and beta
  /// are clamped to be non-negative (a tiny negative intercept just means
  /// latency is below measurement resolution).
  static CommModel fit(const std::vector<CommSample>& samples);

  /// Calibrates against the in-process fabric: a 2-rank persistent-channel
  /// ping-pong over a ladder of message sizes, `reps` round trips each,
  /// best-of-3 trials, fitted with fit(). This is the fabric's own
  /// alpha/beta — on one shared-memory node they are orders of magnitude
  /// below a real interconnect's, which is the point: the model curve in
  /// bench_fig10_multinode can use either measured or textbook constants.
  static CommModel measure_fabric(int reps = 50);
};

}  // namespace kestrel::perf
