#pragma once
// Fabric checker: a happens-before event recorder for the threads-as-ranks
// fabric (Kestrel Sentry, part 2).
//
// Every public Comm operation (isend / irecv / wait / recv / barrier /
// allreduce / allgatherv) reports an event here when checking is enabled
// (debug builds, sanitizer presets, or KESTREL_FABRIC_CHECK=1). The checker
// maintains per-rank program-order state and a bounded global event trace,
// and fails loudly — with rank / op / source / tag context plus the recent
// trace — on the contract violations that the mutex/condvar choreography in
// comm.cpp cannot detect on its own:
//
//   * mismatched collectives: rank A enters barrier while rank B enters
//     allreduce at the same collective round (MPI would deadlock or corrupt;
//     our tag-multiplexed implementation would silently mis-pair payloads);
//   * double-wait: the same Request (or a copy of it) waited on twice;
//   * un-waited requests: a rank returns from Fabric::run with posted
//     receives it never waited on — a silently dropped message;
//   * persistent-channel misuse (Kestrel Slipstream): re-arming an exchange
//     whose previous round was not fully drained, completing more receives
//     than were armed, or exiting Fabric::run with an armed round still
//     undrained — each of which would mean a ghost buffer read or written
//     at the wrong time;
//   * lost wakeups / deadlock: a rank blocked in a matching-receive past the
//     hang timeout (see FabricOptions::hang_timeout_s in comm.hpp).
//
// The checker is deliberately synchronous and mutex-protected: it is a
// debugging instrument, not a hot path. Release builds without a sanitizer
// preset never construct one.

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace kestrel::par {

enum class FabricEventKind : int {
  kIsend = 0,
  kIrecvPost,
  kWait,
  kRecv,
  kBarrier,
  kAllreduce,
  kAllgatherv,
  kChannelOpen,
  kChannelArm,
  kChannelSend,
  kChannelComplete,
  kRankExit,
};

const char* fabric_event_name(FabricEventKind kind);

/// One recorded fabric event. `peer` is the destination (isend) or source
/// (irecv/wait/recv); -1 for collectives. `seq` is the per-rank program
/// order, which is exactly the happens-before order within a rank.
struct FabricEvent {
  FabricEventKind kind = FabricEventKind::kIsend;
  int rank = -1;
  int peer = -1;
  int tag = -1;
  std::uint64_t seq = 0;
};

class FabricChecker {
 public:
  explicit FabricChecker(int nranks);

  FabricChecker(const FabricChecker&) = delete;
  FabricChecker& operator=(const FabricChecker&) = delete;

  // ---- point-to-point --------------------------------------------------
  void on_isend(int rank, int dest, int tag);
  /// Returns the id stamped into the Request so wait() can be validated.
  std::uint64_t on_irecv_post(int rank, int source, int tag);
  /// `request_done` is the Request::done flag *before* this wait runs.
  void on_wait(int rank, std::uint64_t request_id, int source, int tag,
               bool request_done);
  void on_recv(int rank, int source, int tag);

  // ---- persistent channels (Kestrel Slipstream) ------------------------
  /// One endpoint registered `nsend` send and `nrecv` receive channels.
  void on_channel_open(int rank, int nsend, int nrecv);
  /// A receiver re-armed its exchange (`nrecv` receives posted). Fails if
  /// the previous round still has undrained completions.
  void on_channel_arm(int rank, int nrecv);
  void on_channel_send(int rank, int dest);
  /// A wait_any completed one receive from `source`. Fails if nothing is
  /// armed (completion without a matching arm).
  void on_channel_complete(int rank, int source);

  // ---- collectives -----------------------------------------------------
  /// `kind` must be kBarrier, kAllreduce or kAllgatherv. Verifies that all
  /// ranks run the same collective at the same per-rank collective round.
  void on_collective(int rank, FabricEventKind kind);

  // ---- lifecycle -------------------------------------------------------
  /// Called when a rank's function returns normally; fails if the rank
  /// still has posted receives it never waited on.
  void on_rank_exit(int rank);

  /// Human-readable tail of the event trace (most recent last).
  std::string trace(std::size_t max_events = 16) const;

 private:
  struct PendingRecv {
    std::uint64_t id = 0;
    int source = -1;
    int tag = -1;
  };
  struct RankState {
    std::uint64_t next_seq = 0;
    std::uint64_t collective_round = 0;
    std::vector<PendingRecv> pending;
    /// Armed persistent receives not yet completed by wait_any this round.
    std::uint64_t pending_completions = 0;
  };

  // Callers must hold mu_.
  void record(FabricEventKind kind, int rank, int peer, int tag);
  std::string trace_locked(std::size_t max_events) const;
  [[noreturn]] void fail(const std::string& msg) const;

  mutable std::mutex mu_;
  std::vector<RankState> ranks_;
  /// Kind of collective round i, established by the first rank to reach it.
  std::vector<FabricEventKind> collective_kind_;
  std::vector<int> collective_first_rank_;
  std::deque<FabricEvent> events_;  ///< bounded global trace
  std::uint64_t next_request_id_ = 1;
};

}  // namespace kestrel::par
