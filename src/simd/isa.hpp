#pragma once
// Runtime ISA detection and the tier ladder the paper benchmarks:
// scalar (compiler baseline), AVX, AVX2 (+FMA, gather), AVX-512.
//
// Every SpMV kernel exists once per tier, compiled in its own translation
// unit with matching -m flags; at runtime the highest tier the CPU supports
// is used unless the user forces one with -spmv_isa (this is how Figures 8
// and 11 compare all tiers on a single machine).

#include <string>

namespace kestrel::simd {

enum class IsaTier : int {
  kScalar = 0,
  kAvx = 1,
  kAvx2 = 2,
  kAvx512 = 3,
};

inline constexpr int kNumTiers = 4;

/// Highest tier supported by the executing CPU (cached after first call).
IsaTier detect_best_tier();

/// True if the executing CPU can run kernels of the given tier.
bool cpu_supports(IsaTier tier);

const char* tier_name(IsaTier tier);

/// Parses "scalar"/"avx"/"avx2"/"avx512" (case-insensitive); throws on
/// unknown names.
IsaTier parse_tier(const std::string& name);

/// The tier SpMV should use by default: the -spmv_isa option if set,
/// otherwise the best the CPU supports.
IsaTier default_tier();

}  // namespace kestrel::simd
