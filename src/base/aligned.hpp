#pragma once
// 64-byte-aligned storage.
//
// Section 3.1 of the paper: PETSc's default 16-byte heap alignment made
// AVX-512 builds hang/misbehave on KNL; 64-byte (cache line) alignment fixed
// it and performs better because vector loads never straddle a line and no
// peel loop is needed.  Kestrel allocates all matrix/vector payloads through
// this allocator.  The alignment is a template parameter so the alignment
// ablation bench can build deliberately under-aligned (16-byte) buffers.

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>

#include "base/error.hpp"
#include "base/types.hpp"

namespace kestrel {

/// Allocate `bytes` of storage aligned to `alignment` (a power of two,
/// multiple of sizeof(void*)). Freed with aligned_free().
inline void* aligned_malloc(std::size_t bytes, std::size_t alignment) {
  KESTREL_CHECK(alignment != 0 && (alignment & (alignment - 1)) == 0,
                "alignment must be a power of two");
  if (bytes == 0) bytes = alignment;
  // round size up to a multiple of alignment as required by aligned_alloc
  const std::size_t rounded = (bytes + alignment - 1) / alignment * alignment;
  void* p = std::aligned_alloc(alignment, rounded);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

inline void aligned_free(void* p) noexcept { std::free(p); }

/// Minimal std::allocator-compatible aligned allocator.
template <class T, std::size_t Alignment = kCacheLine>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t alignment = Alignment;
  static_assert(Alignment >= alignof(T), "alignment below natural alignment");

  // Explicit rebind: allocator_traits cannot synthesize it because of the
  // non-type Alignment parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    KESTREL_CHECK(n <= std::numeric_limits<std::size_t>::max() / sizeof(T),
                  "allocation size overflow");
    return static_cast<T*>(aligned_malloc(n * sizeof(T), Alignment));
  }
  void deallocate(T* p, std::size_t) noexcept { aligned_free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
};

/// Owning, cache-line-aligned, fixed-capacity buffer of trivially copyable
/// elements. This is the storage primitive behind Vector and every matrix
/// format; unlike std::vector it guarantees the *data pointer* alignment and
/// never reallocates behind the caller's back.
template <class T, std::size_t Alignment = kCacheLine>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  AlignedBuffer() = default;
  explicit AlignedBuffer(std::size_t n) { resize(n); }
  AlignedBuffer(std::size_t n, T fill) {
    resize(n);
    for (std::size_t i = 0; i < n; ++i) data_[i] = fill;
  }

  AlignedBuffer(const AlignedBuffer& other) { copy_from(other); }
  AlignedBuffer& operator=(const AlignedBuffer& other) {
    if (this != &other) copy_from(other);
    return *this;
  }
  AlignedBuffer(AlignedBuffer&& other) noexcept { swap(other); }
  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    swap(other);
    return *this;
  }
  ~AlignedBuffer() { aligned_free(data_); }

  void swap(AlignedBuffer& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }

  /// Discards contents; new contents are uninitialized.
  void resize(std::size_t n) {
    if (n == size_) return;
    aligned_free(data_);
    data_ = nullptr;
    size_ = 0;
    if (n > 0) {
      data_ = static_cast<T*>(aligned_malloc(n * sizeof(T), Alignment));
      size_ = n;
    }
  }

  void fill(T v) {
    for (std::size_t i = 0; i < size_; ++i) data_[i] = v;
  }

  T* data() noexcept { return data_; }
  const T* data() const noexcept { return data_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T& operator[](std::size_t i) noexcept { return data_[i]; }
  const T& operator[](std::size_t i) const noexcept { return data_[i]; }

  T* begin() noexcept { return data_; }
  T* end() noexcept { return data_ + size_; }
  const T* begin() const noexcept { return data_; }
  const T* end() const noexcept { return data_ + size_; }

 private:
  void copy_from(const AlignedBuffer& other) {
    resize(other.size_);
    for (std::size_t i = 0; i < size_; ++i) data_[i] = other.data_[i];
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
};

/// True if `p` is aligned to `alignment` bytes.
inline bool is_aligned(const void* p, std::size_t alignment) {
  return reinterpret_cast<std::uintptr_t>(p) % alignment == 0;
}

}  // namespace kestrel
