// Kestrel Bastion bench: open-loop load generation against the solve
// service. Calibrates the service's capacity (workers / mean solve time),
// then offers 0.5x, 1x and 2x that rate with open-loop arrivals — requests
// are submitted on schedule whether or not earlier ones finished, which is
// what makes overload visible (a closed loop self-throttles and hides it).
//
// Reported per load point: offered and achieved requests/sec, accepted and
// shed counts, shed rate, and the p50/p99 in-service latency (queue wait +
// solve) of ACCEPTED requests. The --json export feeds scripts/check.sh,
// which asserts the robustness invariants rather than raw speed:
//   * every over-capacity submission was shed with a structured
//     RejectedError (serve/unstructured_errors == 0),
//   * shed rate is monotonically non-decreasing in offered load,
//   * accepted-request p99 at 2x stays within 3x the 0.5x p99 — admission
//     control keeps latency flat by refusing work instead of queueing it.
//
// Arrivals are Poisson (exponential inter-arrival times) from a seeded
// RNG: --seed N reproduces a schedule bit-for-bit, which is what the CI
// overload-stress job logs so a TSan hit replays locally.
//
//   ./bench_serve [--smoke] [--json BENCH_serve.json] [--min-time S]
//                 [--seed N]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "app/laplacian.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "bench_common.hpp"
#include "prof/report.hpp"
#include "svc/registry.hpp"
#include "svc/service.hpp"

namespace {

using namespace kestrel;

struct LoadPoint {
  const char* label;    ///< metric key segment
  double multiplier;    ///< offered rate as a fraction of capacity
};

struct LoadResult {
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  int submitted = 0;
  int accepted = 0;
  int shed = 0;
  int unstructured = 0;  ///< non-RejectedError submit failures (must be 0)
  int deadline_exceeded = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double mean_wait_s = 0.0;
};

svc::SolveRequest make_request(const mat::Csr& csr) {
  svc::SolveRequest req;
  req.handle = "poisson";
  req.ksp.rtol = 1e-10;
  req.b = Vector(csr.rows(), 1.0);
  return req;
}

double percentile(std::vector<double> sorted_ascending, double p) {
  if (sorted_ascending.empty()) return 0.0;
  std::sort(sorted_ascending.begin(), sorted_ascending.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ascending.size() - 1));
  return sorted_ascending[idx];
}

/// Mean in-service seconds per request with the service idle (solo
/// requests, no queueing): the capacity basis.
double calibrate_solve_s(svc::SolveService& service, const mat::Csr& csr,
                         int reps) {
  double total = 0.0;
  for (int i = 0; i < reps; ++i) {
    const svc::SolveResponse resp =
        service.submit(make_request(csr)).wait();
    if (resp.status != svc::Status::kOk) {
      std::fprintf(stderr, "bench_serve: calibration solve %s: %s\n",
                   svc::status_name(resp.status), resp.error.c_str());
      std::exit(1);
    }
    total += resp.solve_s;
  }
  return total / reps;
}

LoadResult run_load(svc::MatrixRegistry& registry, const mat::Csr& csr,
                    const svc::ServiceOptions& opts, double offered_rps,
                    double duration_s, std::uint64_t seed) {
  // Fresh service per load point: stats and watchdog state start clean.
  svc::SolveService service(registry, opts);
  LoadResult r;
  r.offered_rps = offered_rps;
  r.submitted = std::max(1, static_cast<int>(offered_rps * duration_s));

  // Poisson arrivals: exponential inter-arrival times with mean
  // 1/offered_rps, pre-drawn from the seeded RNG so the whole schedule is
  // reproducible from --seed alone.
  Rng rng(seed);
  std::vector<double> arrival_s(static_cast<std::size_t>(r.submitted));
  double clock_s = 0.0;
  for (double& a : arrival_s) {
    clock_s += -std::log(1.0 - rng.next_double()) / offered_rps;
    a = clock_s;
  }

  std::vector<svc::SolveService::Ticket> tickets;
  tickets.reserve(static_cast<std::size_t>(r.submitted));
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < r.submitted; ++i) {
    // Open loop: arrival i fires on schedule regardless of how the
    // service is doing.
    std::this_thread::sleep_until(
        start + std::chrono::duration<double>(
                    arrival_s[static_cast<std::size_t>(i)]));
    try {
      tickets.push_back(service.submit(make_request(csr)));
    } catch (const RejectedError&) {
      ++r.shed;
    } catch (const std::exception&) {
      ++r.unstructured;
    }
  }

  std::vector<double> latencies;
  latencies.reserve(tickets.size());
  for (svc::SolveService::Ticket& t : tickets) {
    const svc::SolveResponse resp = t.wait();
    if (resp.status == svc::Status::kDeadlineExceeded) ++r.deadline_exceeded;
    latencies.push_back(resp.queue_wait_s + resp.solve_s);
    r.mean_wait_s += resp.queue_wait_s;
  }
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
  r.accepted = static_cast<int>(tickets.size());
  r.achieved_rps = elapsed > 0.0 ? r.accepted / elapsed : 0.0;
  r.p50_s = percentile(latencies, 0.50);
  r.p99_s = percentile(latencies, 0.99);
  if (!latencies.empty()) {
    r.mean_wait_s /= static_cast<double>(latencies.size());
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  std::uint64_t seed = 20260808ull;
  for (int i = 1; i < argc - 1; ++i) {
    if (std::string(argv[i]) == "--seed") {
      seed = std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  bench::header("Kestrel Bastion: open-loop service load, shed and latency");
  std::printf("arrival seed: %llu (replay with --seed %llu)\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(seed));

  // The operator is sized so one solve is milliseconds — long enough that
  // queueing is observable, short enough that a sweep finishes quickly.
  // Smoke shrinks the matrix and the measurement window, not the invariants.
  const Index n = bench::scaled(96, 24);
  const mat::Csr csr = app::laplacian_dirichlet(n, n);
  svc::MatrixRegistry registry;
  registry.add("poisson", csr);

  svc::ServiceOptions opts;
  opts.workers = 2;
  opts.queue_depth = 4;

  double duration_s = bench::smoke_mode() ? 0.5 : 3.0;
  if (bench::min_time() > duration_s) duration_s = bench::min_time();

  // Capacity: the rate at which `workers` busy workers retire requests.
  const double solve_s = [&] {
    svc::SolveService calibration(registry, opts);
    return calibrate_solve_s(calibration, csr,
                             bench::scaled_reps(10, 3));
  }();
  const double capacity_rps = opts.workers / solve_s;
  std::printf("matrix: %d x %d, %lld nnz\n", csr.rows(), csr.cols(),
              static_cast<long long>(csr.nnz()));
  std::printf("calibration: %.2f ms/solve -> capacity %.1f req/s "
              "(%d workers, queue depth %d)\n\n",
              solve_s * 1e3, capacity_rps, opts.workers, opts.queue_depth);

  const LoadPoint points[] = {
      {"half", 0.5},
      {"1x", 1.0},
      {"2x", 2.0},
  };

  prof::Profiler log;
  log.set_metric("serve/capacity_rps", capacity_rps);
  log.set_metric("serve/workers", opts.workers);
  log.set_metric("serve/queue_depth", opts.queue_depth);
  log.set_metric("serve/calibrated_solve_s", solve_s);

  std::printf("%-6s %10s %10s %9s %6s %9s %9s %9s\n", "load",
              "offered/s", "achieved/s", "accepted", "shed", "shed-rate",
              "p50[ms]", "p99[ms]");
  double half_p99 = 0.0, two_p99 = 0.0;
  double prev_shed_rate = -1.0;
  bool monotonic = true;
  int unstructured = 0;
  for (const LoadPoint& pt : points) {
    // Each load point draws its own arrival stream so points stay
    // independent of each other's schedules.
    const std::uint64_t point_seed =
        seed + static_cast<std::uint64_t>(pt.multiplier * 10.0);
    const LoadResult r =
        run_load(registry, csr, opts, pt.multiplier * capacity_rps,
                 duration_s, point_seed);
    const double shed_rate =
        r.submitted > 0 ? static_cast<double>(r.shed) / r.submitted : 0.0;
    std::printf("%-6s %10.1f %10.1f %9d %6d %8.1f%% %9.2f %9.2f\n",
                pt.label, r.offered_rps, r.achieved_rps, r.accepted, r.shed,
                shed_rate * 100.0, r.p50_s * 1e3, r.p99_s * 1e3);
    const std::string key = std::string("serve/") + pt.label + "/";
    log.set_metric(key + "offered_rps", r.offered_rps);
    log.set_metric(key + "achieved_rps", r.achieved_rps);
    log.set_metric(key + "submitted", r.submitted);
    log.set_metric(key + "accepted", r.accepted);
    log.set_metric(key + "shed", r.shed);
    log.set_metric(key + "shed_rate", shed_rate);
    log.set_metric(key + "p50_s", r.p50_s);
    log.set_metric(key + "p99_s", r.p99_s);
    log.set_metric(key + "mean_queue_wait_s", r.mean_wait_s);
    log.set_metric(key + "deadline_exceeded", r.deadline_exceeded);
    unstructured += r.unstructured;
    if (shed_rate < prev_shed_rate) monotonic = false;
    prev_shed_rate = shed_rate;
    if (pt.multiplier == 0.5) half_p99 = r.p99_s;
    if (pt.multiplier == 2.0) two_p99 = r.p99_s;
  }

  const double p99_ratio = half_p99 > 0.0 ? two_p99 / half_p99 : 0.0;
  log.set_metric("serve/unstructured_errors", unstructured);
  log.set_metric("serve/shed_rate_monotonic", monotonic ? 1.0 : 0.0);
  log.set_metric("serve/p99_ratio_2x_over_half", p99_ratio);
  std::printf("\noverload proof: unstructured errors %d (want 0), shed rate "
              "%s, p99(2x)/p99(0.5x) = %.2f (admission control bounds "
              "queueing)\n",
              unstructured, monotonic ? "monotonic" : "NOT MONOTONIC",
              p99_ratio);

  if (!bench::json_path().empty()) {
    std::ofstream out(bench::json_path());
    if (!out.good()) {
      std::fprintf(stderr, "bench_serve: cannot open %s\n",
                   bench::json_path().c_str());
      return 1;
    }
    prof::write_json_metrics(out, prof::reduce(log));
    std::printf("metrics written to %s\n", bench::json_path().c_str());
  }
  return unstructured == 0 && monotonic ? 0 : 1;
}
