#include "par/comm.hpp"

#include <algorithm>
#include <exception>
#include <thread>

#include "base/error.hpp"

namespace kestrel::par {

namespace {
// Internal tags for collectives; user tags must be non-negative. Collective
// calls from the same source reuse these tags, and per-(source, tag) FIFO
// ordering keeps successive collectives correctly matched.
constexpr int kTagReduceUp = -1;
constexpr int kTagReduceDown = -2;
constexpr int kTagGatherUp = -3;
constexpr int kTagGatherDown = -4;

Scalar reduce2(Scalar a, Scalar b, Comm::ReduceOp op) {
  switch (op) {
    case Comm::ReduceOp::kSum:
      return a + b;
    case Comm::ReduceOp::kMax:
      return std::max(a, b);
    case Comm::ReduceOp::kMin:
      return std::min(a, b);
  }
  return a;
}

}  // namespace

// ---- Comm ------------------------------------------------------------

void Comm::isend(int dest, int tag, const std::vector<Scalar>& data) {
  isend(dest, tag, data.data(), data.size());
}

void Comm::isend(int dest, int tag, const Scalar* data, std::size_t count) {
  KESTREL_CHECK(dest >= 0 && dest < size_, "isend: bad destination rank");
  KESTREL_CHECK(tag >= 0, "isend: user tags must be non-negative");
  fabric_->deliver(dest, rank_, tag,
                   std::vector<Scalar>(data, data + count));
}

Request Comm::irecv(int source, int tag, std::vector<Scalar>* sink) {
  KESTREL_CHECK(source >= 0 && source < size_, "irecv: bad source rank");
  KESTREL_CHECK(tag >= 0, "irecv: user tags must be non-negative");
  KESTREL_CHECK(sink != nullptr, "irecv: null sink");
  return Request{source, tag, sink, false};
}

void Comm::wait(Request& req) {
  KESTREL_CHECK(req.sink != nullptr && !req.done, "wait: invalid request");
  *req.sink = fabric_->take(rank_, req.source, req.tag);
  req.done = true;
}

std::vector<Scalar> Comm::recv(int source, int tag) {
  KESTREL_CHECK(source >= 0 && source < size_, "recv: bad source rank");
  return fabric_->take(rank_, source, tag);
}

Scalar Comm::allreduce(Scalar value, ReduceOp op) {
  if (size_ == 1) return value;
  if (rank_ == 0) {
    Scalar acc = value;
    for (int r = 1; r < size_; ++r) {
      acc = reduce2(acc, fabric_->take(0, r, kTagReduceUp)[0], op);
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagReduceDown, {acc});
    }
    return acc;
  }
  fabric_->deliver(0, rank_, kTagReduceUp, {value});
  return fabric_->take(rank_, 0, kTagReduceDown)[0];
}

std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  // int64 magnitudes used here (counts, sizes) are far below 2^53, so the
  // double payload is exact.
  return static_cast<std::int64_t>(
      allreduce(static_cast<Scalar>(value), op));
}

std::vector<Scalar> Comm::allgatherv(const std::vector<Scalar>& local) {
  if (size_ == 1) return local;
  if (rank_ == 0) {
    std::vector<Scalar> all = local;
    std::vector<Scalar> sizes(static_cast<std::size_t>(size_), 0.0);
    sizes[0] = static_cast<Scalar>(local.size());
    for (int r = 1; r < size_; ++r) {
      std::vector<Scalar> part = fabric_->take(0, r, kTagGatherUp);
      sizes[static_cast<std::size_t>(r)] = static_cast<Scalar>(part.size());
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagGatherDown, all);
    }
    return all;
  }
  fabric_->deliver(0, rank_, kTagGatherUp, local);
  return fabric_->take(rank_, 0, kTagGatherDown);
}

std::vector<Index> Comm::allgatherv(const std::vector<Index>& local) {
  std::vector<Scalar> as_scalar(local.begin(), local.end());
  std::vector<Scalar> all = allgatherv(as_scalar);
  std::vector<Index> out(all.size());
  std::transform(all.begin(), all.end(), out.begin(),
                 [](Scalar v) { return static_cast<Index>(v); });
  return out;
}

void Comm::barrier() { (void)allreduce(Scalar{0}, ReduceOp::kSum); }

// ---- Fabric ----------------------------------------------------------

Fabric::Fabric(int nranks) : nranks_(nranks) {
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void Fabric::deliver(int dest, int source, int tag,
                     std::vector<Scalar> payload) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue[{source, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<Scalar> Fabric::take(int self, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(source, tag);
  box.cv.wait(lock, [&] {
    if (aborted_.load(std::memory_order_relaxed)) return true;
    auto it = box.queue.find(key);
    return it != box.queue.end() && !it->second.empty();
  });
  auto it = box.queue.find(key);
  if (it == box.queue.end() || it->second.empty()) {
    KESTREL_FAIL("fabric aborted: a peer rank threw an exception");
  }
  std::vector<Scalar> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

void Fabric::abort_all() {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void Fabric::run(int nranks, const std::function<void(Comm&)>& fn) {
  KESTREL_CHECK(nranks >= 1, "need at least one rank");
  Fabric fabric(nranks);
  if (nranks == 1) {
    Comm comm(&fabric, 0, 1);
    fn(comm);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        Comm comm(&fabric, r, nranks);
        fn(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        int expected = -1;
        fabric.first_failed_rank_.compare_exchange_strong(expected, r);
        fabric.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root-cause exception (the first rank that failed), not a
  // secondary "fabric aborted" error from a rank that was merely unblocked.
  const int first = fabric.first_failed_rank_.load();
  if (first >= 0) std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
}

}  // namespace kestrel::par
