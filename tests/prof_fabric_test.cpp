// Kestrel Scope on the fabric: per-rank profiler attachment, cross-rank
// min/max/ratio reduction on an 8-rank fabric, ParMatrix phase
// instrumentation, collective trace export, and the TSan-labeled regression
// for the old EventLog::global() data race (rank threads hammering the
// shared global profiler, which is now internally locked).

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <sstream>
#include <string>

#include "app/laplacian.hpp"
#include "par/parmat.hpp"
#include "prof/json.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace kestrel {
namespace {

TEST(ProfFabric, RanksGetTheirOwnAttachedProfilers) {
  prof::EnableGuard enable(true);
  std::atomic<int> distinct_ok{0};
  par::Fabric::run(4, [&](par::Comm& comm) {
    prof::Profiler* mine = prof::attached();
    ASSERT_NE(mine, nullptr);
    ASSERT_NE(mine, &prof::Profiler::global());
    // record rank-private work; no other rank sees it
    const int ev = prof::registered_event("prof_fabric_private");
    mine->begin(ev);
    mine->end(ev, static_cast<std::uint64_t>(comm.rank()));
    if (mine->calls(ev) == 1u) distinct_ok.fetch_add(1);
  });
  EXPECT_EQ(distinct_ok.load(), 4);
}

TEST(ProfFabric, EightRankReductionComputesMinMaxRatio) {
  prof::EnableGuard enable(true);
  const int nranks = 8;
  par::Fabric::run(nranks, [&](par::Comm& comm) {
    prof::Profiler& p = prof::current();
    const int ev = prof::registered_event("prof_fabric_reduced");
    // rank r performs r+1 calls carrying 10 flops each
    for (int i = 0; i <= comm.rank(); ++i) {
      p.begin(ev);
      p.end(ev, 10, 5);
    }
    const prof::Reduced r = prof::reduce(p, comm);

    // identical result on every rank
    ASSERT_EQ(r.nranks, nranks);
    const prof::ReducedRow* row = nullptr;
    for (const auto& candidate : r.rows) {
      if (candidate.event == ev) row = &candidate;
    }
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->calls_max, 8u);                  // rank 7 made 8 calls
    EXPECT_DOUBLE_EQ(row->flops_total, 10.0 * 36);  // sum 1..8 calls
    EXPECT_DOUBLE_EQ(row->bytes_total, 5.0 * 36);
    EXPECT_LE(row->t_min, row->t_max);
    EXPECT_GE(row->t_avg, row->t_min);
    EXPECT_LE(row->t_avg, row->t_max);
    if (row->t_min > 0.0) {
      EXPECT_DOUBLE_EQ(row->ratio, row->t_max / row->t_min);
      EXPECT_GE(row->ratio, 1.0);
    }
    EXPECT_GT(r.elapsed_max, 0.0);
  });
}

TEST(ProfFabric, CollectivesCountAsReductions) {
  prof::EnableGuard enable(true);
  par::Fabric::run(4, [&](par::Comm& comm) {
    prof::Profiler& p = prof::current();
    comm.barrier();
    (void)comm.allreduce(Scalar{1.0});
    EXPECT_EQ(p.total_reductions(), 2u);
    comm.isend(comm.rank(), 7, std::vector<Scalar>{1.0, 2.0});
    (void)comm.recv(comm.rank(), 7);
    EXPECT_EQ(p.total_messages(), 1u);
    EXPECT_EQ(p.total_message_bytes(), 2u * sizeof(Scalar));
  });
}

TEST(ProfFabric, ParMatrixPhasesAreInstrumented) {
  prof::EnableGuard enable(true, /*trace=*/true);
  const mat::Csr global = app::laplacian_dirichlet(16, 16);
  auto layout =
      std::make_shared<par::Layout>(par::Layout::even(global.rows(), 4));
  par::Fabric::run(4, [&](par::Comm& comm) {
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, {});
    par::ParVector x(layout, comm.rank()), y(layout, comm.rank());
    x.local().set(1.0);
    a.spmv(x, y, comm);

    prof::Profiler& p = prof::current();
    EXPECT_EQ(p.calls(prof::registered_event("MatMult")), 1u);
    EXPECT_EQ(p.calls(prof::registered_event("MatMultLocal")), 1u);
    EXPECT_EQ(p.calls(prof::registered_event("MatMultWait")), 1u);
    EXPECT_EQ(p.calls(prof::registered_event("MatMultOffdiag")), 1u);
    // interior ranks exchange with both neighbors, edge ranks with one
    EXPECT_GE(p.calls(prof::registered_event("MatMultPack")), 1u);
    EXPECT_GE(p.calls(prof::registered_event("MatMultSend")), 1u);
    // ghost payloads were attributed to the send phase
    const auto send_perf = p.perf_in(
        prof::kMainStage, prof::registered_event("MatMultSend"));
    EXPECT_GE(send_perf.messages, 1u);
    EXPECT_GT(send_perf.message_bytes, 0u);
    // MatMult flops cover diagonal + off-diagonal blocks
    EXPECT_EQ(p.flops(prof::registered_event("MatMult")),
              2u * static_cast<std::uint64_t>(a.diag_block().nnz() +
                                              a.offdiag_block().nnz()));

    // the collective trace contains one named track per rank, with the
    // overlap phases visible as distinct complete events
    const prof::Reduced r = prof::reduce(p, comm);
    if (comm.rank() == 0) {
      std::ostringstream os;
      prof::write_chrome_trace(os, r);
      const prof::json::Value doc = prof::json::parse(os.str());
      const auto* events = doc.find("traceEvents");
      ASSERT_NE(events, nullptr);
      std::set<double> tids;
      std::set<std::string> names;
      for (const auto& e : events->array) {
        if (e.find("ph")->string == "X") {
          tids.insert(e.find("tid")->number);
          names.insert(e.find("name")->string);
        }
      }
      EXPECT_EQ(tids.size(), 4u);  // one track per rank
      EXPECT_EQ(names.count("MatMultPack"), 1u);
      EXPECT_EQ(names.count("MatMultSend"), 1u);
      EXPECT_EQ(names.count("MatMultLocal"), 1u);
      EXPECT_EQ(names.count("MatMultWait"), 1u);
    }
  });
}

// Regression for the satellite-task data race: the old EventLog::global()
// was a bare singleton mutated concurrently from fabric rank threads. The
// prof global is internally locked; under -DKESTREL_SANITIZE=thread this
// test runs with the tsan ctest label and must stay clean. All ranks use
// the SAME event id so the shared LIFO stack always pairs correctly no
// matter how the threads interleave.
TEST(ProfFabric, SharedGlobalProfilerIsThreadSafe) {
  prof::EnableGuard enable(true);
  prof::Profiler& g = prof::Profiler::global();
  g.reset();
  const int ev = prof::registered_event("prof_fabric_global_hammer");
  const int iters = 500;
  par::Fabric::run(8, [&](par::Comm& comm) {
    (void)comm;
    for (int i = 0; i < iters; ++i) {
      g.begin(ev);
      g.end(ev, 1, 1);
      g.message(1, 8);
      g.set_metric("hammer", static_cast<double>(i));
    }
  });
  EXPECT_EQ(g.calls(ev), static_cast<std::uint64_t>(8 * iters));
  EXPECT_EQ(g.flops(ev), static_cast<std::uint64_t>(8 * iters));
  EXPECT_EQ(g.total_messages(), static_cast<std::uint64_t>(8 * iters));
  g.reset();
}

}  // namespace
}  // namespace kestrel
