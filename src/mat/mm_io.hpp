#pragma once
// Matrix Market (coordinate, real) reader/writer, so externally generated
// matrices can be fed through the SpMV benchmarks and examples.

#include <iosfwd>
#include <string>

#include "mat/csr.hpp"

namespace kestrel::mat {

/// Reads a "%%MatrixMarket matrix coordinate real general|symmetric" file;
/// symmetric inputs are expanded to full storage.
Csr read_matrix_market(std::istream& in);
Csr read_matrix_market_file(const std::string& path);

void write_matrix_market(const Csr& a, std::ostream& out);
void write_matrix_market_file(const Csr& a, const std::string& path);

}  // namespace kestrel::mat
