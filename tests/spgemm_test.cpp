// Sparse matrix product / add / Galerkin tests.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "mat/dense.hpp"
#include "mat/spgemm.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

Dense dense_product(const Csr& a, const Csr& b) {
  Dense da = Dense::from_csr(a);
  Dense db = Dense::from_csr(b);
  Dense out(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      Scalar sum = 0.0;
      for (Index k = 0; k < a.cols(); ++k) {
        sum += da.at(i, k) * db.at(k, j);
      }
      out.at(i, j) = sum;
    }
  }
  return out;
}

void expect_equals_dense(const Csr& c, const Dense& ref, Scalar tol) {
  ASSERT_EQ(c.rows(), ref.rows());
  ASSERT_EQ(c.cols(), ref.cols());
  for (Index i = 0; i < c.rows(); ++i) {
    for (Index j = 0; j < c.cols(); ++j) {
      EXPECT_NEAR(c.at(i, j), ref.at(i, j), tol) << i << "," << j;
    }
  }
}

TEST(Spgemm, MatchesDenseProduct) {
  const Csr a = testing::uniform_random(14, 10, 3, 1);
  const Csr b = testing::uniform_random(10, 17, 4, 2);
  expect_equals_dense(spgemm(a, b), dense_product(a, b), 1e-12);
}

TEST(Spgemm, IdentityIsNeutral) {
  const Csr a = testing::banded(15, {-1, 1});
  const Csr i15 = identity(15);
  expect_equals_dense(spgemm(a, i15), Dense::from_csr(a), 0.0);
  expect_equals_dense(spgemm(i15, a), Dense::from_csr(a), 0.0);
}

TEST(Spgemm, DimensionMismatchThrows) {
  const Csr a = testing::banded(5, {-1, 1});
  const Csr b = testing::banded(6, {-1, 1});
  EXPECT_THROW(spgemm(a, b), Error);
}

TEST(Spgemm, AddMatchesDense) {
  const Csr a = testing::uniform_random(12, 12, 3, 3);
  const Csr b = testing::banded(12, {-2, 2});
  const Csr c = add(2.0, a, -0.5, b);
  const Dense da = Dense::from_csr(a);
  const Dense db = Dense::from_csr(b);
  for (Index i = 0; i < 12; ++i) {
    for (Index j = 0; j < 12; ++j) {
      EXPECT_NEAR(c.at(i, j), 2.0 * da.at(i, j) - 0.5 * db.at(i, j), 1e-13);
    }
  }
}

TEST(Spgemm, GalerkinPreservesSymmetry) {
  // A symmetric => P^T A P symmetric.
  Coo coo(8, 8);
  Rng rng(5);
  for (Index i = 0; i < 8; ++i) {
    coo.add(i, i, 4.0);
    if (i + 1 < 8) {
      const Scalar v = rng.uniform(-1.0, 1.0);
      coo.add(i, i + 1, v);
      coo.add(i + 1, i, v);
    }
  }
  const Csr a = coo.to_csr();
  // simple aggregation interpolation: 2 fine rows -> 1 coarse
  Coo pc(8, 4);
  for (Index i = 0; i < 8; ++i) pc.add(i, i / 2, 1.0);
  const Csr p = pc.to_csr();
  const Csr ac = galerkin(a, p);
  ASSERT_EQ(ac.rows(), 4);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 4; ++j) {
      EXPECT_NEAR(ac.at(i, j), ac.at(j, i), 1e-13);
    }
  }
}

TEST(Spgemm, IdentityMatrix) {
  const Csr i5 = identity(5);
  EXPECT_EQ(i5.nnz(), 5);
  for (Index i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(i5.at(i, i), 1.0);
}

}  // namespace
}  // namespace kestrel::mat
