// Scalar (compiler-autovectorized) CSR SpMV — the paper's "CSR baseline".
// Built without any -m<isa> flags so it reflects the compiler's default
// code generation, exactly like PETSc's stock MatMult_SeqAIJ.

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_spmv_scalar
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr
void csr_spmv_scalar(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    const Index end = a.rowptr[i + 1];
    for (Index k = a.rowptr[i]; k < end; ++k) {
      sum += a.val[k] * x[a.colidx[k]];
    }
    y[i] = sum;
  }
}

// argus-kernel: csr_spmv_add_rows_scalar
// argus-param: a : view CsrView
// argus-param: rows : in extent m elem [0, len(y))
// argus-param: x : in extent n
// argus-param: y : out
// argus-traffic: none
void csr_spmv_add_rows_scalar(const CsrView& a, const Index* rows,
                              const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    const Index end = a.rowptr[i + 1];
    for (Index k = a.rowptr[i]; k < end; ++k) {
      sum += a.val[k] * x[a.colidx[k]];
    }
    y[rows[i]] += sum;
  }
}

}  // namespace

void register_csr_scalar() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kScalar, csr_spmv_scalar);
  KESTREL_REGISTER_KERNEL(kCsrSpmvAddRows, kScalar, csr_spmv_add_rows_scalar);
}

}  // namespace kestrel::mat::kernels
