#pragma once
// Dense vector with cache-line-aligned storage and the BLAS-1 operations
// the Krylov solvers need. Loops are written as simple range code so the
// compiler autovectorizes them (the paper's optimization effort is aimed at
// SpMV; vector ops were already bandwidth-limited and trivially vectorized).

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "base/aligned.hpp"
#include "base/types.hpp"

namespace kestrel {

class Vector {
 public:
  Vector() = default;
  explicit Vector(Index n) : data_(static_cast<std::size_t>(n), 0.0) {}
  Vector(Index n, Scalar fill) : data_(static_cast<std::size_t>(n), fill) {}
  Vector(std::initializer_list<Scalar> init);

  Index size() const { return static_cast<Index>(data_.size()); }
  Scalar* data() { return data_.data(); }
  const Scalar* data() const { return data_.data(); }

  Scalar& operator[](Index i) { return data_[static_cast<std::size_t>(i)]; }
  Scalar operator[](Index i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  Scalar* begin() { return data_.begin(); }
  Scalar* end() { return data_.end(); }
  const Scalar* begin() const { return data_.begin(); }
  const Scalar* end() const { return data_.end(); }

  /// Discards contents.
  void resize(Index n) { data_.resize(static_cast<std::size_t>(n)); }

  void set(Scalar v) { data_.fill(v); }
  void copy_from(const Vector& src);

  /// this += alpha * x
  void axpy(Scalar alpha, const Vector& x);
  /// this = alpha * this + x
  void aypx(Scalar alpha, const Vector& x);
  /// this = alpha * x + beta * y
  void waxpby(Scalar alpha, const Vector& x, Scalar beta, const Vector& y);
  /// this += sum_k alphas[k] * xs[k] — the fused multi-vector update that
  /// dominates GMRES solution reconstruction (PETSc VecMAXPY); one pass
  /// over `this` instead of k.
  void maxpy(std::size_t count, const Scalar* alphas,
             const Vector* const* xs);
  void scale(Scalar alpha);
  /// this[i] *= x[i]
  void pointwise_mult(const Vector& x);

  Scalar dot(const Vector& other) const;
  Scalar norm2() const;
  Scalar norm_inf() const;
  Scalar sum() const;

  /// Convenience conversion for tests.
  std::vector<Scalar> to_std() const {
    return std::vector<Scalar>(begin(), end());
  }

 private:
  AlignedBuffer<Scalar> data_;
};

}  // namespace kestrel
