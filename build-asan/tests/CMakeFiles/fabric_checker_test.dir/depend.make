# Empty dependencies file for fabric_checker_test.
# This may be replaced when dependencies are built.
