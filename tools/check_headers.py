#!/usr/bin/env python3
"""Header self-sufficiency check (Kestrel Sentry).

Every public header under src/ must compile on its own: a TU consisting of
nothing but `#include "<header>"` has to survive `-fsyntax-only`. This
catches headers that silently lean on includes their current consumers
happen to pull in first — the classic way a refactor in one file breaks
the build of twelve others.

Usage:
  python3 tools/check_headers.py --repo .          # check all src/ headers
  python3 tools/check_headers.py --repo . -j 8     # parallel
  python3 tools/check_headers.py --repo . src/mat/csr.hpp   # subset

Headers are compiled with the full vector ISA enabled: -fsyntax-only never
emits code, so allowing the intrinsics everywhere is safe and keeps the
kernel helper headers checkable.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import os
import shutil
import subprocess
import sys
import tempfile

ISA_FLAGS = ["-mavx2", "-mavx512f", "-mavx512dq", "-mavx512vl",
             "-mavx512bw", "-mfma"]


def find_compiler(explicit: str | None) -> str | None:
    if explicit:
        return explicit if shutil.which(explicit) else None
    for cand in (os.environ.get("CXX"), "c++", "g++", "clang++"):
        if cand and shutil.which(cand):
            return cand
    return None


def iter_headers(repo: str) -> list[str]:
    out = []
    src = os.path.join(repo, "src")
    for root, _dirs, files in os.walk(src):
        for name in sorted(files):
            if name.endswith(".hpp"):
                out.append(os.path.relpath(os.path.join(root, name), repo))
    return sorted(out)


def check_one(cxx: str, repo: str, rel: str, tmpdir: str) -> tuple[str, str]:
    """Returns (header, error-text); error-text is empty on success."""
    include_from_src = os.path.relpath(rel, "src")
    stub = os.path.join(tmpdir, include_from_src.replace(os.sep, "__") + ".cpp")
    with open(stub, "w", encoding="utf-8") as f:
        f.write(f'#include "{include_from_src}"\n')
    cmd = [cxx, "-std=c++20", "-fsyntax-only", "-Wall", "-Wextra",
           "-I", os.path.join(repo, "src"), *ISA_FLAGS, stub]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode == 0:
        return rel, ""
    return rel, proc.stderr.strip() or f"exit code {proc.returncode}"


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument("--compiler", default=None,
                    help="C++ compiler to use (default: $CXX, c++, g++, ...)")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("headers", nargs="*",
                    help="specific headers (repo-relative); default: all src/")
    args = ap.parse_args(argv)

    cxx = find_compiler(args.compiler)
    if cxx is None:
        print("check_headers: no C++ compiler found; skipping (pass)",
              file=sys.stderr)
        return 0

    headers = args.headers or iter_headers(args.repo)
    if not headers:
        print("check_headers: no headers under src/", file=sys.stderr)
        return 1

    failures: list[tuple[str, str]] = []
    with tempfile.TemporaryDirectory(prefix="kestrel_hdr_") as tmp, \
            concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futs = [pool.submit(check_one, cxx, args.repo, h, tmp)
                for h in headers]
        for fut in concurrent.futures.as_completed(futs):
            rel, err = fut.result()
            if err:
                failures.append((rel, err))

    for rel, err in sorted(failures):
        print(f"check_headers: {rel} is not self-sufficient:", file=sys.stderr)
        for line in err.splitlines()[:12]:
            print(f"  {line}", file=sys.stderr)
    status = "FAIL" if failures else "OK"
    print(f"check_headers: {len(headers)} headers, "
          f"{len(failures)} failure(s): {status}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
