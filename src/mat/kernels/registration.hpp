#pragma once
// Explicit kernel registration entry points, one per kernel translation
// unit. Dispatch calls these lazily (once) instead of relying on static
// initializers, which a static-library link could silently drop.
//
// KESTREL_KERNEL_TABLE is the single source of truth for the format x ISA
// kernel matrix: it generates the per-TU entry-point declarations below and
// the calls in simd/dispatch.cpp, and tools/kestrel_lint.py parses it to
// enforce the kernel-TU contract (every vector cell has a scalar
// counterpart, every cell has a matching TU compiled with the right -m
// flags — see tools/kestrel_lint.py for the full rule list).
//
// X(format, isa): one cell per registered kernel TU
// clang-format off
#define KESTREL_KERNEL_TABLE(X) \
  X(csr, scalar)                \
  X(csr, avx)                   \
  X(csr, avx2)                  \
  X(csr, avx512)                \
  X(sell, scalar)               \
  X(sell, avx)                  \
  X(sell, avx2)                 \
  X(sell, avx512)               \
  X(csr_perm, scalar)           \
  X(csr_perm, avx512)           \
  X(bcsr, scalar)               \
  X(bcsr, avx2)                 \
  X(talon, scalar)              \
  X(talon, avx2)                \
  X(talon, avx512)              \
  X(gather, scalar)             \
  X(gather, avx2)               \
  X(gather, avx512)             \
  X(csr_slim, scalar)           \
  X(csr_slim, avx2)             \
  X(csr_slim, avx512)           \
  X(sell_slim, scalar)          \
  X(sell_slim, avx512)          \
  X(bcsr_slim, scalar)          \
  X(talon_slim, scalar)         \
  X(talon_slim, avx512)
// clang-format on

namespace kestrel::mat::kernels {

#define KESTREL_DECLARE_KERNEL_REGISTRATION(fmt, isa) \
  void register_##fmt##_##isa();
KESTREL_KERNEL_TABLE(KESTREL_DECLARE_KERNEL_REGISTRATION)
#undef KESTREL_DECLARE_KERNEL_REGISTRATION

}  // namespace kestrel::mat::kernels
