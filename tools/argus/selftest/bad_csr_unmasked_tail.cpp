// SELF-TEST FIXTURE — CSR AVX-512 loop remainder processed with UNMASKED
// loads. The tail holds rem in (2, 8) elements, but the mutated kernel
// issues full 8-wide loads of val and colidx: up to 5 elements past the
// row (and, on the last row, past the arrays) are touched.
//
// expect-violation: bounds :: val
// expect-violation: bounds :: colidx

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=avx512

namespace kestrel::mat::kernels {

namespace {

inline Scalar row_dot_avx512(const Scalar* val, const Index* colidx,
                             Index len, const Scalar* x) {
  __m512d acc = _mm512_setzero_pd();
  Index k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m512d vals = _mm512_loadu_pd(val + k);
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colidx + k));
    const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
    acc = _mm512_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = _mm512_reduce_add_pd(acc);
  const Index rem = len - k;
  if (rem > 2) {
    // BUG: remainder loads forgot their masks.
    const __m512d vals = _mm512_loadu_pd(val + k);
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colidx + k));
    const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
    sum += _mm512_reduce_add_pd(_mm512_mul_pd(vals, vx));
  } else {
    for (; k < len; ++k) sum += val[k] * x[colidx[k]];
  }
  return sum;
}

// argus-kernel: csr_spmv_avx512
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void csr_spmv_avx512(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[i] = row_dot_avx512(a.val + begin, a.colidx + begin,
                          a.rowptr[i + 1] - begin, x);
  }
}

}  // namespace

void register_csr_unmasked_tail_fixture() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kAvx512, csr_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
