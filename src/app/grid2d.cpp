#include "app/grid2d.hpp"

#include <array>
#include <map>

#include "base/error.hpp"
#include "mat/coo.hpp"

namespace kestrel::app {

Grid2D::Grid2D(Index nx, Index ny, Index dof, Scalar lx, Scalar ly)
    : nx_(nx), ny_(ny), dof_(dof), lx_(lx), ly_(ly) {
  KESTREL_CHECK(nx >= 1 && ny >= 1 && dof >= 1, "bad grid parameters");
  KESTREL_CHECK(lx > 0.0 && ly > 0.0, "bad domain size");
  const GIndex total = static_cast<GIndex>(nx) * ny * dof;
  KESTREL_CHECK(total < (GIndex{1} << 31),
                "grid exceeds 32-bit indexing (the paper notes 16384^2 x 2 "
                "is near this limit)");
}

Grid2D Grid2D::coarsen() const {
  KESTREL_CHECK(can_coarsen(), "grid dimensions must be even to coarsen");
  return Grid2D(nx_ / 2, ny_ / 2, dof_, lx_, ly_);
}

mat::Csr Grid2D::interpolation() const {
  const Grid2D coarse = coarsen();
  mat::Coo p(size(), coarse.size());

  // Fine node (i, j); coarse nodes live at even fine coordinates.
  for (Index j = 0; j < ny_; ++j) {
    for (Index i = 0; i < nx_; ++i) {
      const Index ci = i / 2;
      const Index cj = j / 2;
      const bool ox = (i % 2) != 0;  // offset in x
      const bool oy = (j % 2) != 0;
      for (Index c = 0; c < dof_; ++c) {
        const Index row = idx(i, j, c);
        if (!ox && !oy) {
          p.add(row, coarse.idx(ci, cj, c), 1.0);
        } else if (ox && !oy) {
          p.add(row, coarse.idx(ci, cj, c), 0.5);
          p.add(row, coarse.idx(ci + 1, cj, c), 0.5);
        } else if (!ox && oy) {
          p.add(row, coarse.idx(ci, cj, c), 0.5);
          p.add(row, coarse.idx(ci, cj + 1, c), 0.5);
        } else {
          p.add(row, coarse.idx(ci, cj, c), 0.25);
          p.add(row, coarse.idx(ci + 1, cj, c), 0.25);
          p.add(row, coarse.idx(ci, cj + 1, c), 0.25);
          p.add(row, coarse.idx(ci + 1, cj + 1, c), 0.25);
        }
      }
    }
  }
  return p.to_csr();
}

}  // namespace kestrel::app
