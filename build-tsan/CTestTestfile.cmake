# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-tsan
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[kestrel_lint]=] "/root/.pyenv/shims/python3" "/root/repo/tools/kestrel_lint.py" "--repo" "/root/repo")
set_tests_properties([=[kestrel_lint]=] PROPERTIES  LABELS "lint" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;76;add_test;/root/repo/CMakeLists.txt;0;")
add_test([=[kestrel_lint_selftest]=] "/root/.pyenv/shims/python3" "/root/repo/tools/kestrel_lint.py" "--self-test")
set_tests_properties([=[kestrel_lint_selftest]=] PROPERTIES  LABELS "lint" _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;80;add_test;/root/repo/CMakeLists.txt;0;")
subdirs("src")
subdirs("tests")
