#pragma once
// Abstract sparse matrix interface. Concrete formats (Csr, CsrPerm, Sell,
// Bcsr, Dense) implement SpMV through the ISA-dispatched kernels; solvers
// and preconditioners program against this interface so the matrix format
// is swappable with one option, exactly like PETSc's -mat_type.

#include <cstdint>
#include <memory>
#include <string>

#include "base/error.hpp"
#include "base/types.hpp"
#include "mat/slim.hpp"
#include "simd/isa.hpp"
#include "vec/vector.hpp"

namespace kestrel::mat {

class Matrix {
 public:
  virtual ~Matrix() = default;

  virtual Index rows() const = 0;
  virtual Index cols() const = 0;
  /// Logical (unpadded) nonzero count.
  virtual std::int64_t nnz() const = 0;

  /// y = A * x (raw pointers; y must not alias x).
  virtual void spmv(const Scalar* x, Scalar* y) const = 0;

  /// y = A * x through the fat double/int32 streams even when slim storage
  /// is active. The iterative-refinement outer loop computes its residuals
  /// through this so the correction target is full double precision.
  virtual void spmv_wide(const Scalar* x, Scalar* y) const { spmv(x, y); }

  /// Kestrel Slim: attach compressed-index / fp32 side streams
  /// (-mat_index 16 / -mat_scalar fp32). Returns false when the format
  /// cannot honor the request (unsupported format, or a segment's column
  /// span overflows 16 bits); the matrix then keeps its fat streams.
  /// An empty request always succeeds and clears any active slim state.
  virtual bool set_slim(const SlimOptions& opts) { return !opts.any(); }

  /// True when spmv() currently runs on slim side streams.
  virtual bool slim_active() const { return false; }

  /// y = A * x with size checks.
  void spmv(const Vector& x, Vector& y) const {
    KESTREL_CHECK(x.size() == cols(), "spmv: x size != cols");
    KESTREL_CHECK(x.size() == 0 || x.data() != y.data(),
                  "spmv: x and y must not alias");
    y.resize(rows());
    spmv(x.data(), y.data());
  }

  /// d[i] = A(i,i); requires a square matrix.
  virtual void get_diagonal(Vector& d) const = 0;

  /// Kestrel Aegis ABFT hook: c = Aᵀ·1 (column checksums) computed from the
  /// format's own storage at assembly time. For a fault-free SpMV,
  /// c·x == Σᵢ(A·x)ᵢ up to rounding; aegis::AbftMatrix verifies that
  /// invariant after every multiply. Every KESTREL_REGISTER_KERNEL format
  /// must implement this (enforced by tools/kestrel_lint.py, rule
  /// abft-hook).
  virtual void abft_col_checksum(Vector& c) const = 0;

  virtual std::string format_name() const = 0;

  /// Actual bytes of matrix storage (values + all index metadata).
  virtual std::size_t storage_bytes() const = 0;

  /// Minimum memory traffic of one SpMV under the paper's section 6 model
  /// (matrix data + rowptr/sliceptr metadata + x and y vectors).
  virtual std::size_t spmv_traffic_bytes() const = 0;

  /// ISA tier used by spmv(); defaults to simd::default_tier().
  simd::IsaTier tier() const { return tier_; }
  void set_tier(simd::IsaTier tier) { tier_ = tier; }

  /// Kestrel Flock: re-plan the stored nnz-balanced partition for `nparts`
  /// pool threads. Formats that thread their spmv override this; the
  /// default is a no-op so wrappers / formats without a threaded path
  /// (Dense, AbftMatrix) stay valid targets. Partitions are planned once at
  /// construction from par::configured_threads(); call this only to sweep
  /// thread counts (bench_threads, flock_test).
  virtual void repartition(int nparts) { (void)nparts; }

 protected:
  simd::IsaTier tier_ = simd::default_tier();
};

using MatrixPtr = std::shared_ptr<const Matrix>;

}  // namespace kestrel::mat
