// AIJPERM grouping invariants.

#include <gtest/gtest.h>

#include "mat/csr_perm.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

TEST(CsrPerm, GroupsCoverAllRowsOnce) {
  const Csr csr = testing::power_law(77);
  const CsrPerm perm{Csr(csr)};
  const CsrPermView v = perm.view();
  std::vector<bool> seen(77, false);
  EXPECT_EQ(v.group_begin[0], 0);
  EXPECT_EQ(v.group_begin[v.ngroups], 77);
  for (Index g = 0; g < v.ngroups; ++g) {
    EXPECT_LT(v.group_begin[g], v.group_begin[g + 1]);
    for (Index p = v.group_begin[g]; p < v.group_begin[g + 1]; ++p) {
      const Index row = v.perm[p];
      EXPECT_FALSE(seen[static_cast<std::size_t>(row)]);
      seen[static_cast<std::size_t>(row)] = true;
      EXPECT_EQ(csr.row_nnz(row), v.group_rlen[g]);
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(CsrPerm, GroupLengthsStrictlyIncrease) {
  const Csr csr = testing::power_law(50);
  const CsrPerm perm{Csr(csr)};
  const CsrPermView v = perm.view();
  for (Index g = 0; g + 1 < v.ngroups; ++g) {
    EXPECT_LT(v.group_rlen[g], v.group_rlen[g + 1]);
  }
}

TEST(CsrPerm, UniformMatrixHasOneGroup) {
  Coo coo(24, 24);
  for (Index i = 0; i < 24; ++i) {
    coo.add(i, i, 2.0);
    coo.add(i, (i + 1) % 24, -1.0);
  }
  const CsrPerm perm{coo.to_csr()};
  EXPECT_EQ(perm.num_groups(), 1);
}

TEST(CsrPerm, MetadataBytesCounted) {
  const Csr csr = testing::power_law(30);
  const std::size_t base = csr.storage_bytes();
  const CsrPerm perm{Csr(csr)};
  EXPECT_GT(perm.storage_bytes(), base);
  EXPECT_GT(perm.spmv_traffic_bytes(), csr.spmv_traffic_bytes());
}

}  // namespace
}  // namespace kestrel::mat
