#include "prof/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "base/error.hpp"

namespace kestrel::prof::json {

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::find(const std::string& key) const {
  if (kind != Kind::Object) return nullptr;
  const auto it = object.find(key);
  return it == object.end() ? nullptr : &it->second;
}

namespace {

/// Nesting cap for the recursive-descent parser: each object/array level
/// costs native stack, so adversarial inputs like 100k copies of '[' must
/// fail with a kestrel::Error, not a stack overflow. Kestrel's own
/// documents nest < 10 deep.
constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse_document() {
    Value v = parse_value();
    skip_ws();
    KESTREL_CHECK(pos_ == text_.size(), "json: trailing characters at byte " +
                                            std::to_string(pos_));
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    KESTREL_CHECK(pos_ < text_.size(), "json: unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    KESTREL_CHECK(peek() == c, std::string("json: expected '") + c +
                                   "' at byte " + std::to_string(pos_));
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) == 0) {
      pos_ += n;
      return true;
    }
    return false;
  }

  Value parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        Value v;
        v.kind = Value::Kind::Bool;
        if (consume_literal("true")) {
          v.boolean = true;
          return v;
        }
        if (consume_literal("false")) {
          v.boolean = false;
          return v;
        }
        KESTREL_FAIL("json: bad literal at byte " + std::to_string(pos_));
      }
      case 'n': {
        KESTREL_CHECK(consume_literal("null"),
                      "json: bad literal at byte " + std::to_string(pos_));
        return Value{};
      }
      default:
        return parse_number();
    }
  }

  Value parse_object() {
    expect('{');
    const DepthGuard guard(this);
    Value v;
    v.kind = Value::Kind::Object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      KESTREL_CHECK(peek() == '"',
                    "json: object key must be a string at byte " +
                        std::to_string(pos_));
      std::string key = parse_string();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') break;
      KESTREL_CHECK(c == ',', "json: expected ',' or '}' at byte " +
                                  std::to_string(pos_));
    }
    return v;
  }

  Value parse_array() {
    expect('[');
    const DepthGuard guard(this);
    Value v;
    v.kind = Value::Kind::Array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') break;
      KESTREL_CHECK(c == ',', "json: expected ',' or ']' at byte " +
                                  std::to_string(pos_));
    }
    return v;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      KESTREL_CHECK(pos_ < text_.size(), "json: unterminated string");
      const char c = text_[pos_++];
      if (c == '"') break;
      if (c != '\\') {
        out += c;
        continue;
      }
      KESTREL_CHECK(pos_ < text_.size(), "json: unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'u': {
          KESTREL_CHECK(pos_ + 4 <= text_.size(), "json: bad \\u escape");
          unsigned long cp = 0;
          for (int i = 0; i < 4; ++i) {
            // strtoul would silently accept a shorter-than-4 hex prefix
            // (e.g. "\u12x4"); every digit must actually be hex.
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            KESTREL_CHECK(std::isxdigit(static_cast<unsigned char>(h)),
                          "json: bad \\u escape at byte " +
                              std::to_string(pos_));
            cp = cp * 16 +
                 static_cast<unsigned long>(
                     h <= '9' ? h - '0'
                              : (h | 0x20) - 'a' + 10);
          }
          pos_ += 4;
          // ASCII-only decoding is enough for Kestrel's own output; other
          // code points round-trip as '?'.
          out += cp < 0x80 ? static_cast<char>(cp) : '?';
          break;
        }
        default:
          KESTREL_FAIL("json: bad escape at byte " + std::to_string(pos_));
      }
    }
    return out;
  }

  Value parse_number() {
    skip_ws();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double d = std::strtod(begin, &end);
    KESTREL_CHECK(end != begin,
                  "json: bad value at byte " + std::to_string(pos_));
    pos_ += static_cast<std::size_t>(end - begin);
    Value v;
    v.kind = Value::Kind::Number;
    v.number = d;
    return v;
  }

  /// RAII nesting-depth accounting for parse_object/parse_array.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser* p) : p_(p) {
      KESTREL_CHECK(++p_->depth_ <= kMaxDepth,
                    "json: nesting deeper than " + std::to_string(kMaxDepth) +
                        " levels");
    }
    ~DepthGuard() { --p_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;

   private:
    Parser* p_;
  };

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace kestrel::prof::json
