#include "ts/theta.hpp"

#include "base/error.hpp"
#include "mat/spgemm.hpp"
#include "prof/profiler.hpp"

namespace kestrel::ts {

namespace {

/// Nonlinear stage problem for one theta step.
class ThetaStage final : public snes::NonlinearFunction {
 public:
  ThetaStage(const RhsFunction& f, const Vector& u_old, Scalar theta,
             Scalar dt)
      : f_(f), u_old_(u_old), theta_(theta), dt_(dt), fwork_(f.size()) {
    // explicit part: u_old + dt*(1-theta)*f(u_old)
    explicit_.resize(f.size());
    f_.rhs(u_old_, explicit_);
    explicit_.scale(dt_ * (1.0 - theta_));
    explicit_.axpy(1.0, u_old_);
  }

  Index size() const override { return f_.size(); }

  void residual(const Vector& u, Vector& g) const override {
    f_.rhs(u, fwork_);
    g.resize(size());
    for (Index i = 0; i < size(); ++i) {
      g[i] = u[i] - dt_ * theta_ * fwork_[i] - explicit_[i];
    }
  }

  mat::Csr jacobian(const Vector& u) const override {
    // G'(u) = I - dt*theta*J_f(u)
    const mat::Csr jf = f_.rhs_jacobian(u);
    return mat::add(1.0, mat::identity(size()), -dt_ * theta_, jf);
  }

 private:
  const RhsFunction& f_;
  const Vector& u_old_;
  Scalar theta_, dt_;
  Vector explicit_;
  mutable Vector fwork_;
};

}  // namespace

ThetaResult theta_integrate(const RhsFunction& f, Vector& u,
                            const ThetaOptions& opts) {
  KESTREL_CHECK(u.size() == f.size(), "theta: state size mismatch");
  KESTREL_CHECK(opts.theta > 0.0 && opts.theta <= 1.0,
                "theta: implicit weight must be in (0, 1]");
  KESTREL_CHECK(opts.dt > 0.0 && opts.steps >= 0, "theta: bad step setup");

  ThetaResult result;
  Vector u_old(f.size());
  for (int step = 1; step <= opts.steps; ++step) {
    u_old.copy_from(u);
    ThetaStage stage(f, u_old, opts.theta, opts.dt);
    // warm start from the previous state
    const snes::NewtonResult newton = snes::newton_solve(stage, u,
                                                         opts.newton);
    result.total_newton_iterations += newton.iterations;
    result.total_linear_iterations += newton.total_linear_iterations;
    if (!newton.converged) {
      result.completed = false;
      return result;
    }
    result.steps_taken = step;
    result.final_time = step * opts.dt;
    if (opts.monitor) opts.monitor(step, result.final_time, u);
    if (prof::enabled()) {
      prof::current().record_history("TS(theta) newton_its",
                                     result.final_time,
                                     static_cast<double>(newton.iterations));
    }
  }
  result.completed = true;
  return result;
}

}  // namespace kestrel::ts
