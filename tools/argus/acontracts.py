"""Argus contract annotations.

Grammar (each line is a standalone `// argus-...` comment):

View contracts (src/mat/kernels/views.hpp, above each struct):
  // argus-view: SellView
  // argus-let: stored = sliceptr[nslices]
  // argus-extent: colidx = stored
  // argus-fact: monotone(sliceptr)
  // argus-fact: sliceptr[0] == 0
  // argus-fact: elem(colidx) in [0, n)
  // argus-fact: divides(c, elem(sliceptr))
  // argus-fact: maskbit(block_mask, block_col, n)
  // argus-fact: packed(val, panel_valptr)
  // argus-fact: group(perm, group_begin, group_rlen, csr.rowptr)
  // argus-fact: span(off16, base, rowptr, n)
  // argus-fact: stride(panel_row) in {1, 2, 4}
  // argus-field: csr : CsrView            (nested view member)

Kernel TU contracts (each kernel .cpp):
  // argus-contract: format=sell isa=avx512          (TU header, required)
  // argus-kernel: sell_spmv_avx512                  (above the function)
  // argus-param: a : view SellView
  // argus-param: x : in extent n
  // argus-param: y : out extent m
  // argus-param: rows : in extent m elem [0, len(y))
  // argus-require: divides(8, c)
  // argus-traffic: sell                             (or `none`)
  // argus-table: kOffsets = setbits                 (constant table semantics)

Traffic models (next to each spmv_traffic_bytes() definition):
  // argus-traffic-model: sell
  // argus-traffic-stream: val = 8 * nnz
  // argus-traffic-stream: y = 16 * m : wa
  // argus-traffic-stream: sliceptr = 2 * m : conv
  // argus-traffic-stream: @include = csr
  // argus-traffic-bind: nnz() = nnz
  // argus-traffic-cpp: spmv_traffic_bytes

Expressions use the C++ expression grammar (aparser) over view field names
plus `ceil_div(a, b)`, `popcount(w)`, `len(param)`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from alexer import tokenize
from aparser import Expr, Parser


class ContractError(Exception):
    def __init__(self, where: str, msg: str):
        super().__init__(f"{where}: {msg}")
        self.where = where


def parse_annot_expr(text: str, where: str) -> Expr:
    try:
        p = Parser(tokenize(text), where)
        e = p._parse_expr()
        if p.cur().kind != "eof":
            raise ContractError(where, f"trailing tokens in {text!r}")
        return e
    except ContractError:
        raise
    except Exception as ex:
        raise ContractError(where, f"bad expression {text!r}: {ex}")


# ---------------------------------------------------------------------------
# Fact forms
# ---------------------------------------------------------------------------

@dataclass
class Fact:
    kind: str                 # cmp|monotone|elem|divides|divides_elem|maskbit
    #                         # |packed|group|stride|span|
    args: tuple = ()
    where: str = ""


_CMP_RE = re.compile(r"(.+?)(==|<=|>=|<|>)(.+)")
_ELEM_RE = re.compile(
    r"elem\(\s*([\w.]+)\s*\)\s*in\s*\[(.+),(.+)([\)\]])\s*$")
_STRIDE_RE = re.compile(r"stride\(\s*([\w.]+)\s*\)\s*in\s*\{(.+)\}\s*$")
_CALLFORM_RE = re.compile(r"(\w+)\(\s*(.*)\s*\)\s*$")


def parse_fact(text: str, where: str) -> Fact:
    text = text.strip()
    m = _ELEM_RE.match(text)
    if m:
        arr, lo, hi, close = m.group(1), m.group(2), m.group(3), m.group(4)
        return Fact("elem", (arr, parse_annot_expr(lo, where),
                             parse_annot_expr(hi, where), close == "]"), where)
    m = _STRIDE_RE.match(text)
    if m:
        vals = tuple(int(v.strip()) for v in m.group(2).split(","))
        return Fact("stride", (m.group(1), vals), where)
    m = _CALLFORM_RE.match(text)
    if m and m.group(1) in ("monotone", "divides", "maskbit", "packed",
                            "group", "maskword", "span"):
        fn = m.group(1)
        args = _split_args(m.group(2))
        if fn == "monotone":
            return Fact("monotone", (args[0],), where)
        if fn == "maskword":
            return Fact("maskword", (args[0],), where)
        if fn == "divides":
            inner = args[1].strip()
            em = re.match(r"elem\(\s*([\w.]+)\s*\)$", inner)
            try:
                c = int(args[0], 0)
            except ValueError:
                # Symbolic divisor (e.g. divides(c, elem(sliceptr))).
                divisor = parse_annot_expr(args[0], where)
                if em:
                    return Fact("divides_elem_sym", (divisor, em.group(1)),
                                where)
                raise ContractError(
                    where, "symbolic divides() needs an elem() target")
            if em:
                return Fact("divides_elem", (c, em.group(1)), where)
            return Fact("divides", (c, parse_annot_expr(inner, where)), where)
        if fn == "maskbit":
            return Fact("maskbit", (args[0], args[1],
                                    parse_annot_expr(args[2], where)), where)
        if fn == "packed":
            return Fact("packed", tuple(args), where)
        if fn == "group":
            return Fact("group", tuple(args), where)
        if fn == "span":
            # span(off16, base, seg, bound): for every segment i and every
            # k in [seg[i], seg[i+1]), 0 <= base[i] + off16[k] < bound.
            return Fact("span", (args[0], args[1], args[2],
                                 parse_annot_expr(args[3], where)), where)
    m = _CMP_RE.match(text)
    if m:
        lhs = parse_annot_expr(m.group(1), where)
        rhs = parse_annot_expr(m.group(3), where)
        return Fact("cmp", (m.group(2), lhs, rhs), where)
    raise ContractError(where, f"unrecognized fact {text!r}")


def _split_args(text: str) -> List[str]:
    out, depth, cur = [], 0, []
    for ch in text:
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur).strip())
    return out


# ---------------------------------------------------------------------------
# Contract containers
# ---------------------------------------------------------------------------

@dataclass
class ViewContract:
    name: str
    lets: List[Tuple[str, Expr]] = field(default_factory=list)
    extents: Dict[str, Expr] = field(default_factory=dict)
    facts: List[Fact] = field(default_factory=list)
    nested: Dict[str, str] = field(default_factory=dict)  # member -> view type


@dataclass
class ParamSpec:
    name: str
    role: str                     # view | in | out | int
    view_type: str = ""
    extent: Optional[Expr] = None  # None + role in/out => fresh extent sym
    elem_lo: Optional[Expr] = None
    elem_hi: Optional[Expr] = None
    elem_hi_incl: bool = False


@dataclass
class KernelContract:
    fn: str
    params: List[ParamSpec] = field(default_factory=list)
    requires: List[Fact] = field(default_factory=list)
    traffic: Optional[str] = None
    where: str = ""


@dataclass
class TUContract:
    fmt: str = ""
    isa: str = ""
    kernels: Dict[str, KernelContract] = field(default_factory=dict)
    tables: Dict[str, str] = field(default_factory=dict)  # table -> semantics


@dataclass
class TrafficStream:
    array: str
    count: Optional[Expr]         # total bytes expression (None for @include)
    tags: Dict[str, str] = field(default_factory=dict)
    include: Optional[str] = None


@dataclass
class TrafficModel:
    fmt: str
    streams: List[TrafficStream] = field(default_factory=list)
    binds: List[Tuple[str, str]] = field(default_factory=list)  # text -> text
    cpp_fn: Optional[str] = None
    path: str = ""
    line: int = 0


# ---------------------------------------------------------------------------
# Parsing annotation line groups
# ---------------------------------------------------------------------------

def _directive(line_text: str) -> Tuple[str, str]:
    """Split 'argus-xxx: payload' into (xxx, payload)."""
    head, sep, payload = line_text.partition(":")
    if not sep:
        return head.strip(), ""
    return head.strip(), payload.strip()


def parse_view_contracts(annots: List[Tuple[int, str]],
                         path: str) -> Dict[str, ViewContract]:
    """Parse argus-view blocks from a flat annotation list (views.hpp)."""
    views: Dict[str, ViewContract] = {}
    cur: Optional[ViewContract] = None
    for line, text in annots:
        where = f"{path}:{line}"
        d, payload = _directive(text)
        if d == "argus-view":
            cur = ViewContract(payload)
            views[payload] = cur
        elif d == "argus-let":
            _need(cur, where)
            name, _sep, expr = payload.partition("=")
            cur.lets.append((name.strip(),
                             parse_annot_expr(expr.strip(), where)))
        elif d == "argus-extent":
            _need(cur, where)
            name, _sep, expr = payload.partition("=")
            cur.extents[name.strip()] = parse_annot_expr(expr.strip(), where)
        elif d == "argus-fact":
            _need(cur, where)
            cur.facts.append(parse_fact(payload, where))
        elif d == "argus-field":
            _need(cur, where)
            name, _sep, vtype = payload.partition(":")
            cur.nested[name.strip()] = vtype.strip()
        else:
            raise ContractError(where, f"unexpected directive {d!r} "
                                "in view contract file")
    return views


def _need(cur, where):
    if cur is None:
        raise ContractError(where, "directive outside an argus-view block")


_CONTRACT_RE = re.compile(r"format=([\w-]+)\s+isa=([\w-]+)")


def parse_tu_contract(tu_annots: List[Tuple[int, str]],
                      func_annots: Dict[str, List[Tuple[int, str]]],
                      path: str) -> TUContract:
    """Build the TU contract from TU-level annotations plus per-function
    annotation groups (keyed by the function the group precedes)."""
    out = TUContract()
    for line, text in tu_annots:
        where = f"{path}:{line}"
        d, payload = _directive(text)
        if d == "argus-contract":
            m = _CONTRACT_RE.search(payload)
            if not m:
                raise ContractError(
                    where, "argus-contract needs format=<f> isa=<i>")
            out.fmt, out.isa = m.group(1), m.group(2)
        elif d == "argus-table":
            name, _sep, sem = payload.partition("=")
            out.tables[name.strip()] = sem.strip()
        # Other directives at TU level are handled via func groups.
    for fn, group in func_annots.items():
        kc: Optional[KernelContract] = None
        for line, text in group:
            where = f"{path}:{line}"
            d, payload = _directive(text)
            if d == "argus-kernel":
                kc = KernelContract(fn=payload or fn, where=where)
                out.kernels[kc.fn] = kc
            elif d == "argus-param":
                _need(kc, where)
                kc.params.append(_parse_param(payload, where))
            elif d == "argus-require":
                _need(kc, where)
                kc.requires.append(parse_fact(payload, where))
            elif d == "argus-traffic":
                _need(kc, where)
                kc.traffic = payload
            elif d in ("argus-contract", "argus-table"):
                # TU-level directives that happened to precede a function.
                dd, pp = d, payload
                if dd == "argus-contract":
                    m = _CONTRACT_RE.search(pp)
                    if m:
                        out.fmt, out.isa = m.group(1), m.group(2)
                else:
                    nm, _s, sem = pp.partition("=")
                    out.tables[nm.strip()] = sem.strip()
            elif d.startswith("argus-traffic-"):
                # Traffic-model blocks (argus-traffic-model/-stream/-bind/
                # -cpp) are parsed from the raw TU text by atraffic; a TU
                # may host one right before its traffic-bytes function.
                continue
            else:
                raise ContractError(where, f"unexpected directive {d!r}")
    return out


_PARAM_RE = re.compile(
    r"^([\w]+)\s*:\s*(view\s+(\w+)|in|out|int)"
    r"(?:\s+extent\s+(\*|[^\s]+(?:\s*[-+*/]\s*[^\s]+)*))?"
    r"(?:\s+elem\s+\[(.+),(.+)([\)\]]))?\s*$")


def _parse_param(payload: str, where: str) -> ParamSpec:
    m = _PARAM_RE.match(payload.strip())
    if not m:
        raise ContractError(where, f"bad argus-param {payload!r}")
    name = m.group(1)
    role_text = m.group(2)
    spec = ParamSpec(name=name, role="int")
    if role_text.startswith("view"):
        spec.role = "view"
        spec.view_type = m.group(3)
    elif role_text in ("in", "out"):
        spec.role = role_text
    if m.group(4) and m.group(4) != "*":
        spec.extent = parse_annot_expr(m.group(4), where)
    if m.group(5) is not None:
        spec.elem_lo = parse_annot_expr(m.group(5), where)
        spec.elem_hi = parse_annot_expr(m.group(6), where)
        spec.elem_hi_incl = m.group(7) == "]"
    return spec


_STREAM_RE = re.compile(r"^([@\w.]+)\s*=\s*([^:]+?)\s*((?::\s*[\w]+(?:\s+\d+)?\s*)*)$")


def parse_traffic_models(text: str, path: str) -> List[TrafficModel]:
    """Scan a source file's text for argus-traffic-* annotation runs."""
    models: List[TrafficModel] = []
    cur: Optional[TrafficModel] = None
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped.startswith("//"):
            continue
        body = stripped[2:].strip()
        if not body.startswith("argus-traffic"):
            continue
        where = f"{path}:{lineno}"
        d, payload = _directive(body)
        if d == "argus-traffic-model":
            cur = TrafficModel(fmt=payload, path=path, line=lineno)
            models.append(cur)
        elif d == "argus-traffic-stream":
            if cur is None:
                raise ContractError(where, "stream outside a traffic model")
            m = _STREAM_RE.match(payload)
            if not m:
                raise ContractError(where, f"bad stream {payload!r}")
            arr, count_text, tagtext = m.group(1), m.group(2), m.group(3)
            tags: Dict[str, str] = {}
            for part in (tagtext or "").split(":"):
                part = part.strip()
                if not part:
                    continue
                bits = part.split()
                tags[bits[0]] = bits[1] if len(bits) > 1 else ""
            if arr == "@include":
                cur.streams.append(TrafficStream(
                    array="@include", count=None, tags=tags,
                    include=count_text.strip()))
            else:
                cur.streams.append(TrafficStream(
                    array=arr, count=parse_annot_expr(count_text, where),
                    tags=tags))
        elif d == "argus-traffic-bind":
            if cur is None:
                raise ContractError(where, "bind outside a traffic model")
            lhs, _sep, rhs = payload.partition("=")
            cur.binds.append((lhs.strip(), rhs.strip()))
        elif d == "argus-traffic-cpp":
            if cur is None:
                raise ContractError(where, "cpp ref outside a traffic model")
            cur.cpp_fn = payload
    return models
