// Ablation (paper section 5.5): manual outer-loop unrolling + software
// prefetch in the SELL AVX-512 kernel. The paper: "these classic
// optimization techniques do not affect the performance significantly" —
// this bench measures both variants so the claim is checkable on any host.

#include <cstdio>

#include "prof/profiler.hpp"
#include "bench_common.hpp"
#include "mat/sell.hpp"

namespace {

using namespace kestrel;

double time_prefetch_spmv(const mat::Sell& sell) {
  Vector x(sell.cols(), 1.0), y(sell.rows());
  sell.spmv_prefetch(x.data(), y.data());
  double best = 1e300, spent = 0.0;
  do {
    const double t0 = wall_time();
    sell.spmv_prefetch(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = dt < best ? dt : best;
    spent += dt;
  } while (spent < bench::scaled_seconds(0.2));
  volatile double sink = y[0];
  (void)sink;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header(
      "Ablation 5.5: SELL AVX-512 with outer unroll + software prefetch");
  std::printf("%-18s %10s %14s %10s\n", "matrix", "plain GF",
              "unroll+pf GF", "delta");
  for (Index n : {256, 384, 512}) {
    const mat::Sell sell(
        bench::gray_scott_matrix(bench::scaled(n, n / 16)));
    const double t_plain = bench::time_spmv(sell);
    const double t_pf = time_prefetch_spmv(sell);
    std::printf("gray-scott %4d^2 %10.2f %14.2f %+9.1f%%\n", n,
                bench::gflops(sell, t_plain), bench::gflops(sell, t_pf),
                100.0 * (t_plain / t_pf - 1.0));
  }
  std::printf(
      "\nExpected (paper): no significant effect — the kernel is dominated\n"
      "by the gather and the memory stream, which hardware prefetchers\n"
      "already track well for this layout.\n");
  return 0;
}
