// Paper sections 7.3/8: "the changes in the matrix representation result
// in implementation differences for certain matrix operations such as
// setting the nonzero entries and assembling the matrix. The corresponding
// routines ... are executed every time the Jacobian matrix is updated",
// and the conclusion claims "no noticeable performance penalty in other
// core operations needed by a practical PDE solver".
//
// This bench times the per-Newton-iteration matrix pipeline for each
// format: Jacobian COO assembly -> CSR, conversion to the compute format,
// and the pattern-reuse value refresh that amortizes conversion after the
// first iteration.

#include <cstdio>

#include "prof/profiler.hpp"
#include "bench_common.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"

namespace {

using namespace kestrel;

template <class Fn>
double time_best(Fn&& fn, int reps = bench::scaled_reps(5)) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = wall_time();
    fn();
    const double dt = wall_time() - t0;
    best = dt < best ? dt : best;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header(
      "Assembly & conversion overhead per Jacobian update (Gray-Scott "
      "256^2)");
  const Index n = bench::scaled(256);
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);

  const double t_jac = time_best([&] {
    volatile auto sink = gs.rhs_jacobian(u).nnz();
    (void)sink;
  });
  const mat::Csr csr = gs.rhs_jacobian(u);

  const double t_sell = time_best([&] {
    volatile auto sink = mat::Sell(csr).stored_elements();
    (void)sink;
  });
  const double t_perm = time_best([&] {
    volatile auto sink = mat::CsrPerm{mat::Csr(csr)}.num_groups();
    (void)sink;
  });
  const double t_bcsr = time_best([&] {
    volatile auto sink = mat::Bcsr(csr, 2).stored_blocks();
    (void)sink;
  });
  mat::Sell sell(csr);
  const double t_refresh = time_best([&] { sell.copy_values_from(csr); });

  const double t_spmv = bench::time_spmv(sell);

  std::printf("%-42s %10.2f ms\n", "Jacobian eval + COO->CSR assembly",
              1e3 * t_jac);
  std::printf("%-42s %10.2f ms\n", "CSR -> SELL conversion (first time)",
              1e3 * t_sell);
  std::printf("%-42s %10.2f ms\n", "CSR -> CSRPerm conversion", 1e3 * t_perm);
  std::printf("%-42s %10.2f ms\n", "CSR -> BCSR(2) conversion", 1e3 * t_bcsr);
  std::printf("%-42s %10.2f ms\n",
              "SELL value refresh (pattern reuse)", 1e3 * t_refresh);
  std::printf("%-42s %10.3f ms\n", "one SELL SpMV (for scale)",
              1e3 * t_spmv);
  std::printf("\nSELL conversion == %.0f SpMVs; with pattern reuse the\n"
              "per-iteration cost drops to %.0f SpMVs — small against the\n"
              "tens of Krylov iterations each Jacobian is used for, which\n"
              "is why the paper reports no noticeable penalty in the\n"
              "non-SpMV parts of the solver.\n",
              t_sell / t_spmv, t_refresh / t_spmv);
  return 0;
}
