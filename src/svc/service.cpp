#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "base/error.hpp"
#include "ksp/context.hpp"
#include "prof/profiler.hpp"

namespace kestrel::svc {

namespace {
using SteadyClock = std::chrono::steady_clock;

double seconds_between(SteadyClock::time_point a, SteadyClock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}
}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kDeadlineExceeded:
      return "deadline_exceeded";
    case Status::kFaulted:
      return "faulted";
    case Status::kFailed:
      return "failed";
  }
  return "?";
}

ServiceOptions ServiceOptions::from_options(const Options& o) {
  ServiceOptions opts;
  opts.workers = static_cast<int>(o.get_index("svc_workers", opts.workers));
  opts.queue_depth =
      static_cast<int>(o.get_index("svc_queue_depth", opts.queue_depth));
  opts.default_deadline_s = o.get_scalar("svc_deadline_ms", 0.0) / 1000.0;
  opts.degraded_max_iterations = static_cast<int>(
      o.get_index("svc_degraded_max_it", opts.degraded_max_iterations));
  opts.watchdog.high_watermark =
      o.get_scalar("svc_watchdog_high", opts.watchdog.high_watermark);
  opts.watchdog.low_watermark =
      o.get_scalar("svc_watchdog_low", opts.watchdog.low_watermark);
  opts.watchdog.window = static_cast<int>(
      o.get_index("svc_watchdog_window", opts.watchdog.window));
  // -svc_mem_budget is MB against the global budget shared with the
  // MatrixMarket reader's pre-size check; 0 leaves it unlimited.
  const Scalar budget_mb = o.get_scalar("svc_mem_budget", 0.0);
  if (budget_mb > 0.0) {
    MemoryBudget::global().set_limit_bytes(
        static_cast<std::uint64_t>(budget_mb * 1024.0 * 1024.0));
  }
  return opts;
}

/// One accepted request's shared state: the submitter's Ticket and the
/// serving worker rendezvous here; the cancel source doubles as the
/// deadline's cooperative trip wire.
struct SolveService::Ticket::Pending {
  SolveRequest req;
  CancelSource cancel;
  Deadline deadline;  ///< armed at submit: queue wait counts against it
  SteadyClock::time_point submitted;

  std::mutex mu;
  std::condition_variable cv;
  bool ready = false;
  SolveResponse resp;

  void resolve(SolveResponse&& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      resp = std::move(r);
      ready = true;
    }
    cv.notify_all();
  }
};

SolveResponse SolveService::Ticket::wait() {
  KESTREL_CHECK(p_ != nullptr, "svc: wait() on an empty ticket");
  std::unique_lock<std::mutex> lock(p_->mu);
  p_->cv.wait(lock, [&] { return p_->ready; });
  return p_->resp;
}

bool SolveService::Ticket::done() const {
  KESTREL_CHECK(p_ != nullptr, "svc: done() on an empty ticket");
  std::lock_guard<std::mutex> lock(p_->mu);
  return p_->ready;
}

void SolveService::Ticket::cancel() {
  KESTREL_CHECK(p_ != nullptr, "svc: cancel() on an empty ticket");
  p_->cancel.cancel();
}

SolveService::SolveService(MatrixRegistry& registry, ServiceOptions opts)
    : registry_(registry), opts_(opts), watchdog_(opts.watchdog) {
  KESTREL_CHECK(opts_.workers >= 1, "svc: need at least one worker");
  KESTREL_CHECK(opts_.queue_depth >= 1, "svc: queue depth must be >= 1");
  workers_.reserve(static_cast<std::size_t>(opts_.workers));
  for (int i = 0; i < opts_.workers; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

SolveService::~SolveService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
  // Anything still queued resolves as cancelled so no Ticket::wait hangs.
  for (const auto& pending : queue_) {
    SolveResponse resp;
    resp.status = Status::kDeadlineExceeded;
    resp.error = "service shut down before the request was served";
    pending->resolve(std::move(resp));
  }
  queue_.clear();
}

SolveService::Ticket SolveService::submit(SolveRequest req) {
  auto pending = std::make_shared<Ticket::Pending>();
  pending->req = std::move(req);
  pending->submitted = SteadyClock::now();
  const double budget_s = pending->req.deadline_s > 0.0
                              ? pending->req.deadline_s
                              : opts_.default_deadline_s;
  // The deadline clock starts at admission: queue wait spends the same
  // budget the solve does, so a request cannot hide in the queue past its
  // own deadline.
  pending->deadline =
      (budget_s > 0.0 ? Deadline::after(budget_s) : Deadline())
          .with_cancel(pending->cancel);

  int depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    depth = static_cast<int>(queue_.size());
    if (stop_ || depth >= opts_.queue_depth) {
      ++stats_.shed;
      // Retry hint: roughly one queue drain at the recent service rate.
      const double hint =
          std::max(stats_.ewma_solve_s, 1e-3) * (depth + 1) / opts_.workers;
      throw RejectedError(depth, hint,
                          stop_ ? "svc: service is shutting down"
                                : "svc: request queue is full",
                          __FILE__, __LINE__);
    }
    ++stats_.accepted;
    queue_.push_back(pending);
    depth = static_cast<int>(queue_.size());
    // Observed under mu_ so submit/dequeue observations form one total
    // order — degradation decisions are then deterministic for a given
    // request schedule (the shedding-determinism test relies on this).
    watchdog_.observe(depth, opts_.queue_depth);
  }
  cv_work_.notify_one();
  return Ticket(pending);
}

void SolveService::worker_main() {
  for (;;) {
    std::shared_ptr<Ticket::Pending> pending;
    int depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      pending = queue_.front();
      queue_.pop_front();
      depth = static_cast<int>(queue_.size());
      watchdog_.observe(depth, opts_.queue_depth);
    }
    const bool degraded = watchdog_.degraded();

    SolveResponse resp = serve(*pending, degraded);

    {
      std::lock_guard<std::mutex> lock(mu_);
      switch (resp.status) {
        case Status::kOk:
          ++stats_.completed;
          break;
        case Status::kDeadlineExceeded:
          ++stats_.deadline_exceeded;
          break;
        case Status::kFaulted:
          ++stats_.faulted;
          break;
        case Status::kFailed:
          ++stats_.failed;
          break;
      }
      if (resp.degraded) ++stats_.degraded_served;
      stats_.total_queue_wait_s += resp.queue_wait_s;
      stats_.total_solve_s += resp.solve_s;
      const double alpha = 0.2;  // EWMA horizon ~ last 5 requests
      stats_.ewma_solve_s = stats_.ewma_solve_s == 0.0
                                ? resp.solve_s
                                : alpha * resp.solve_s +
                                      (1.0 - alpha) * stats_.ewma_solve_s;
    }
    pending->resolve(std::move(resp));
  }
}

SolveResponse SolveService::serve(Ticket::Pending& pending, bool degraded) {
  SolveResponse resp;
  resp.degraded = degraded;
  const SteadyClock::time_point start = SteadyClock::now();
  resp.queue_wait_s = seconds_between(pending.submitted, start);

  // Expired while queued (deadline or cancel): resolve without burning a
  // solve on a request whose client has already given up.
  if (pending.deadline.expired()) {
    resp.status = Status::kDeadlineExceeded;
    resp.error = "svc: deadline expired before the solve started";
    return resp;
  }

  try {
    const MatrixRegistry::HandlePtr handle =
        registry_.get(pending.req.handle);
    const mat::MatrixPtr op = degraded ? handle->degraded : handle->full;
    KESTREL_CHECK(pending.req.b.size() == op->rows(),
                  "svc: rhs size does not match handle '" +
                      pending.req.handle + "'");

    ksp::Settings settings = pending.req.ksp;
    settings.deadline = pending.deadline;
    if (degraded) {
      settings.max_iterations =
          std::min(settings.max_iterations, opts_.degraded_max_iterations);
    }
    std::unique_ptr<ksp::Solver> solver;
    if (pending.req.ksp_type == "chebyshev") {
      KESTREL_CHECK(pending.req.cheb_emax > 0.0,
                    "svc: chebyshev requests need cheb_emin/cheb_emax");
      solver = std::make_unique<ksp::Chebyshev>(
          settings, pending.req.cheb_emin, pending.req.cheb_emax);
    } else {
      solver = ksp::make_solver(pending.req.ksp_type, settings);
    }

    resp.x.resize(op->rows());
    resp.x.set(0.0);
    ksp::SeqContext ctx(*op);
    const SteadyClock::time_point solve_start = SteadyClock::now();
    resp.ksp = solver->solve(ctx, pending.req.b, resp.x);
    resp.solve_s = seconds_between(solve_start, SteadyClock::now());
    resp.status = resp.ksp.reason == ksp::Reason::kDeadlineExceeded
                      ? Status::kDeadlineExceeded
                      : Status::kOk;
  } catch (const AbftError& e) {
    // Tenant isolation: the fault is confined to this response. The handle
    // itself is immutable and other tenants' requests are untouched.
    resp.status = Status::kFaulted;
    resp.error = e.what();
  } catch (const Error& e) {
    resp.status = Status::kFailed;
    resp.error = e.what();
  } catch (const std::exception& e) {
    // Last-ditch isolation: nothing a request does may take the worker (and
    // with it every other tenant) down.
    resp.status = Status::kFailed;
    resp.error = e.what();
  }
  return resp;
}

SolveService::Stats SolveService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

int SolveService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void SolveService::export_metrics(prof::Profiler& p) const {
  const Stats st = stats();
  p.set_metric("svc/accepted", static_cast<double>(st.accepted));
  p.set_metric("svc/completed", static_cast<double>(st.completed));
  p.set_metric("svc/shed", static_cast<double>(st.shed));
  p.set_metric("svc/deadline_exceeded",
               static_cast<double>(st.deadline_exceeded));
  p.set_metric("svc/faulted", static_cast<double>(st.faulted));
  p.set_metric("svc/failed", static_cast<double>(st.failed));
  p.set_metric("svc/degraded_served",
               static_cast<double>(st.degraded_served));
  p.set_metric("svc/total_queue_wait_s", st.total_queue_wait_s);
  p.set_metric("svc/total_solve_s", st.total_solve_s);
  p.set_metric("svc/ewma_solve_s", st.ewma_solve_s);
  p.set_metric("svc/watchdog_degrades",
               static_cast<double>(watchdog_.degrade_events()));
  p.set_metric("svc/watchdog_recovers",
               static_cast<double>(watchdog_.recover_events()));
  p.set_metric("svc/resident_bytes",
               static_cast<double>(registry_.resident_bytes()));
}

}  // namespace kestrel::svc
