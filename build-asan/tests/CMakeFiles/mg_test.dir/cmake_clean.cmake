file(REMOVE_RECURSE
  "CMakeFiles/mg_test.dir/mg_test.cpp.o"
  "CMakeFiles/mg_test.dir/mg_test.cpp.o.d"
  "mg_test"
  "mg_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
