// Figure 4 — "Stream tests on KNL": sustainable memory bandwidth vs MPI
// process count for flat/cache MCDRAM modes with and without vector code.
//
// Two sections: (1) the modeled KNL curves (this host has one core and no
// MCDRAM — see DESIGN.md substitutions), calibrated to the published
// figure; (2) the real measured STREAM numbers for this host.

#include <cstdio>

#include "bench_common.hpp"
#include "perf/bwmodel.hpp"
#include "perf/stream.hpp"

int main(int argc, char** argv) {
  using namespace kestrel;
  using namespace kestrel::perf;

  bench::parse_args(argc, argv);
  bench::header(
      "Figure 4 (modeled): STREAM bandwidth on KNL vs MPI processes [GB/s]");
  std::printf("%6s %14s %14s %14s %14s\n", "procs", "Flat:AVX512",
              "Flat:novec", "Cache:AVX512", "Cache:novec");
  const MachineProfile knl = knl7230();
  for (const StreamPoint& p : modeled_stream_sweep(
           knl, {8, 16, 24, 32, 40, 48, 56, 64})) {
    std::printf("%6d %14.1f %14.1f %14.1f %14.1f\n", p.procs, p.flat_avx512,
                p.flat_novec, p.cache_avx512, p.cache_novec);
  }
  std::printf(
      "\nExpected shape (paper): flat-mode MCDRAM scales to ~490 GB/s and\n"
      "needs ~58 processes to saturate; cache mode saturates earlier and\n"
      "lower (~40 procs); disabling vectorization collapses flat-mode\n"
      "bandwidth but barely affects cache mode.\n");

  bench::header("Figure 4 (measured): STREAM on this host, 1 process");
  const StreamResult r = bench::smoke_mode() ? run_stream(1 << 16, 1)
                                             : run_stream();
  std::printf("%-8s %10.2f GB/s\n", "copy", r.copy_gbs);
  std::printf("%-8s %10.2f GB/s\n", "scale", r.scale_gbs);
  std::printf("%-8s %10.2f GB/s\n", "add", r.add_gbs);
  std::printf("%-8s %10.2f GB/s\n", "triad", r.triad_gbs);
  return 0;
}
