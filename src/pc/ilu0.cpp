#include "pc/ilu0.hpp"

#include "base/error.hpp"

namespace kestrel::pc {

Ilu0::Ilu0(const mat::Csr& a) : lu_(a) {
  KESTREL_CHECK(a.rows() == a.cols(), "ilu0: matrix must be square");
  const Index n = lu_.rows();
  const Index* rowptr = lu_.rowptr();
  const Index* colidx = lu_.colidx();
  Scalar* val = lu_.mutable_val();

  diag_pos_.assign(static_cast<std::size_t>(n), -1);
  for (Index i = 0; i < n; ++i) {
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      if (colidx[k] == i) {
        diag_pos_[static_cast<std::size_t>(i)] = k;
        break;
      }
    }
    KESTREL_CHECK(diag_pos_[static_cast<std::size_t>(i)] >= 0,
                  "ilu0: missing structural diagonal at row " +
                      std::to_string(i));
  }

  // IKJ-variant incomplete Gaussian elimination restricted to the pattern.
  // column -> position map for the current row
  std::vector<Index> pos(static_cast<std::size_t>(n), -1);
  for (Index i = 0; i < n; ++i) {
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      pos[static_cast<std::size_t>(colidx[k])] = k;
    }
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const Index j = colidx[k];
      if (j >= i) break;  // only the strictly-lower part pivots
      const Scalar piv = val[diag_pos_[static_cast<std::size_t>(j)]];
      KESTREL_CHECK(piv != 0.0, "ilu0: zero pivot at row " +
                                    std::to_string(j));
      const Scalar lij = val[k] / piv;
      val[k] = lij;
      // row_i -= lij * row_j (upper part of row j, pattern-restricted)
      for (Index kk = diag_pos_[static_cast<std::size_t>(j)] + 1;
           kk < rowptr[j + 1]; ++kk) {
        const Index p = pos[static_cast<std::size_t>(colidx[kk])];
        if (p >= 0) val[p] -= lij * val[kk];
      }
    }
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      pos[static_cast<std::size_t>(colidx[k])] = -1;
    }
    KESTREL_CHECK(val[diag_pos_[static_cast<std::size_t>(i)]] != 0.0,
                  "ilu0: zero pivot at row " + std::to_string(i));
  }
}

void Ilu0::apply(const Vector& r, Vector& z) const {
  const Index n = lu_.rows();
  KESTREL_CHECK(r.size() == n, "ilu0: size mismatch");
  z.resize(n);
  const Index* rowptr = lu_.rowptr();
  const Index* colidx = lu_.colidx();
  const Scalar* val = lu_.val();

  // forward solve L z = r (L unit-diagonal)
  for (Index i = 0; i < n; ++i) {
    Scalar sum = r[i];
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const Index j = colidx[k];
      if (j >= i) break;
      sum -= val[k] * z[j];
    }
    z[i] = sum;
  }
  // backward solve U z = z
  for (Index i = n - 1; i >= 0; --i) {
    Scalar sum = z[i];
    const Index dp = diag_pos_[static_cast<std::size_t>(i)];
    for (Index k = dp + 1; k < rowptr[i + 1]; ++k) {
      sum -= val[k] * z[colidx[k]];
    }
    z[i] = sum / val[dp];
  }
}

}  // namespace kestrel::pc
