#pragma once
// Talon — SPC5-style beta(r,c) block format without zero padding (Bramas &
// Kus, "Computing the sparse matrix vector product using block-based
// kernels without zero padding on processors with AVX-512 instructions").
//
// Rows are grouped into PANELS of r in {1, 2, 4} adjacent rows; within a
// panel, the union of the rows' column indices is covered left-to-right by
// BLOCKS of up to c = 8 consecutive columns (one ZMM register of doubles).
// Each block stores its start column, one 8-bit presence mask per panel
// row, and ONLY the nonzero values, packed densely. The AVX-512 kernel
// loads x[block_col .. block_col+8) once per block with a plain (or
// edge-masked) vector load — no gather, because the block's columns are
// consecutive — and expands the packed values into the masked lanes with
// vpexpandpd (_mm512_maskz_expandloadu_pd), advancing the value pointer by
// popcount(mask). Unlike SELL there are never stored zeros, and unlike
// BCSR a block with a single nonzero costs 8 bytes of value data, not
// bs*bs*8.
//
// A block-geometry inspector picks r per panel: for each candidate height
// it counts the blocks needed to cover the rows' columns and scores the
// per-row cost (r value streams + 1 x-load/metadata stream per block),
// taking the cheapest — so 2-dof-interleaved operators (Gray-Scott) get
// r = 2/4 panels over their duplicated column patterns while scattered
// rows degrade gracefully to r = 1.

#include <cstdint>

#include "base/aligned.hpp"
#include "mat/kernels/views.hpp"
#include "mat/matrix.hpp"
#include "mat/partition.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

class Csr;

struct TalonOptions {
  /// 0 = inspector picks r per panel; 1, 2 or 4 forces a uniform height
  /// (the block-shape ablation sweeps this).
  Index force_r = 0;
};

class Talon final : public Matrix {
 public:
  Talon() = default;
  explicit Talon(const Csr& csr, TalonOptions opts = {});

  // Matrix interface -------------------------------------------------------
  Index rows() const override { return m_; }
  Index cols() const override { return n_; }
  std::int64_t nnz() const override { return nnz_; }
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  void spmv_wide(const Scalar* x, Scalar* y) const override;
  bool set_slim(const SlimOptions& opts) override;
  bool slim_active() const override { return slim_.active(); }
  void get_diagonal(Vector& d) const override;
  void abft_col_checksum(Vector& c) const override;
  std::string format_name() const override { return "talon"; }
  std::size_t storage_bytes() const override;
  std::size_t spmv_traffic_bytes() const override;

  /// y += A*x using the add kernel (off-diagonal block path).
  void spmv_add(const Scalar* x, Scalar* y) const;

  // Talon-specific ---------------------------------------------------------
  Index num_panels() const { return npanels_; }
  std::int64_t num_blocks() const {
    return npanels_ == 0 ? 0 : panel_blockptr_[npanels_];
  }
  /// Panels of height r (block-shape ablation statistic).
  Index panels_with_r(Index r) const;
  /// Mask density: nnz over total block capacity (sum over panels of
  /// r * 8 * blocks). 1.0 would be fully dense blocks.
  double block_fill() const;

  /// Reconstructs CSR (column-sorted rows); round-trips exactly.
  Csr to_csr() const;

  /// Refreshes values from a CSR with the SAME sparsity pattern (structure
  /// reuse in Newton loops); throws on pattern mismatch.
  void copy_values_from(const Csr& csr);

  TalonView view() const {
    return {m_,
            n_,
            npanels_,
            panel_row_.data(),
            panel_blockptr_.data(),
            panel_valptr_.data(),
            block_col_.data(),
            block_mask_.data(),
            val_.data()};
  }

  // Kestrel Slim ----------------------------------------------------------
  // Talon's block metadata (base column + presence mask) is already a
  // compressed index stream, so -mat_index 16 is trivially satisfied and
  // only -mat_scalar fp32 changes the storage: val32 mirrors the packed
  // value walk entry for entry.
  const SlimStore& slim() const { return slim_; }
  TalonSlimView slim_view() const;
  /// Traffic of the fat double SpMV.
  std::size_t fat_spmv_traffic_bytes() const;
  /// Traffic of the fp32 SpMV.
  std::size_t slim_spmv_traffic_bytes() const;

  // Kestrel Flock ----------------------------------------------------------
  // flock-pool-safe: panel
  /// Re-plans the stored partition. Units are PANELS (granularity: a thread
  /// never splits a beta(r,c) panel's block walk), weighted by stored
  /// values (panel_valptr deltas — Talon stores no padding, so that IS the
  /// nnz distribution).
  void repartition(int nparts) override;
  const FlockPartition& partition() const { return part_; }

 private:
  void build(const Csr& csr, const TalonOptions& opts);
  void run_partitioned(simd::TalonSpmvFn fn, const Scalar* x,
                       Scalar* y) const;
  void run_partitioned_slim(simd::TalonSlimSpmvFn fn, const Scalar* x,
                            Scalar* y) const;
  void spmv_fat(const Scalar* x, Scalar* y) const;
  void spmv_slim(const Scalar* x, Scalar* y) const;

  Index m_ = 0, n_ = 0;
  Index npanels_ = 0;
  std::int64_t nnz_ = 0;
  AlignedBuffer<Index> panel_row_;       ///< npanels+1
  AlignedBuffer<Index> panel_blockptr_;  ///< npanels+1
  AlignedBuffer<Index> panel_valptr_;    ///< npanels+1
  AlignedBuffer<Index> block_col_;
  AlignedBuffer<std::uint32_t> block_mask_;
  AlignedBuffer<Scalar> val_;
  FlockPartition part_;
  SlimStore slim_;
};

}  // namespace kestrel::mat
