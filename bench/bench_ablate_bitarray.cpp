// Ablation (paper section 5.3): SELL with vs without the ESB-style bit
// array. The paper chose NOT to use the bit array and reports ~10% speedup
// from dropping it; this bench measures both variants on a regular
// (Gray-Scott) and an irregular (power-law) matrix.

#include <cstdio>

#include "base/rng.hpp"
#include "bench_common.hpp"
#include "mat/coo.hpp"
#include "mat/sell.hpp"

namespace {

using namespace kestrel;

mat::Csr power_law_matrix(Index n) {
  Rng rng(3);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    const double u = rng.next_double();
    Index len = static_cast<Index>(1.0 + 4.0 / (0.05 + u));
    if (len > 64) len = 64;
    for (Index k = 0; k < len; ++k) {
      coo.add(i, rng.next_index(n), rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csr();
}

double time_bitmask_spmv(const mat::Sell& sell,
                         int reps = bench::scaled_reps(40)) {
  Vector x(sell.cols(), 1.0), y(sell.rows());
  sell.spmv_bitmask(x.data(), y.data());
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const double t0 = wall_time();
    sell.spmv_bitmask(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = dt < best ? dt : best;
  }
  volatile double sink = y[0];
  (void)sink;
  return best;
}

void compare(const char* label, const mat::Csr& csr) {
  mat::SellOptions with_mask;
  with_mask.build_bitmask = true;
  const mat::Sell plain(csr);
  const mat::Sell masked(csr, with_mask);

  const double t_plain = bench::time_spmv(plain);
  const double t_masked = time_bitmask_spmv(masked);
  std::printf("%-22s fill %.3f | no-bitarray %8.2f GF | bitarray %8.2f GF"
              " | no-bitarray is %+5.1f%%\n",
              label, plain.fill_ratio(), bench::gflops(plain, t_plain),
              bench::gflops(masked, t_masked),
              100.0 * (t_masked / t_plain - 1.0));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header(
      "Ablation 5.3: SELL bit-array (ESB-style masks) vs plain padding");
  compare("gray-scott 384^2", bench::gray_scott_matrix(bench::scaled(384)));
  compare("power-law 100k",
          power_law_matrix(bench::scaled(100000, 1000)));
  std::printf(
      "\nExpected (paper): not using the bit array is ~10%% faster — the\n"
      "masked gathers/FMAs and the extra mask stream cost more than\n"
      "multiplying the padded zeros, and PDE matrices pad very little\n"
      "anyway.\n");
  return 0;
}
