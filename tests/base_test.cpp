// Unit tests for the base utilities: error macros, aligned storage,
// options database, RNG. (Profiler tests live in prof_test.cpp.)

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "base/aligned.hpp"
#include "base/error.hpp"
#include "base/options.hpp"
#include "base/rng.hpp"

namespace kestrel {
namespace {

TEST(Error, CheckThrowsWithContext) {
  try {
    KESTREL_CHECK(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("one is not two"), std::string::npos);
    EXPECT_NE(what.find("base_test.cpp"), std::string::npos);
    EXPECT_GT(e.line(), 0);
  }
}

TEST(Error, CheckPassesSilently) {
  EXPECT_NO_THROW(KESTREL_CHECK(2 + 2 == 4, "math"));
}

TEST(Error, FailAlwaysThrows) {
  EXPECT_THROW(KESTREL_FAIL("boom"), Error);
}

TEST(Aligned, MallocRespectsAlignment) {
  for (std::size_t align : {16u, 32u, 64u, 128u}) {
    void* p = aligned_malloc(100, align);
    EXPECT_TRUE(is_aligned(p, align));
    aligned_free(p);
  }
}

TEST(Aligned, RejectsNonPowerOfTwo) {
  EXPECT_THROW(aligned_malloc(100, 48), Error);
  EXPECT_THROW(aligned_malloc(100, 0), Error);
}

TEST(Aligned, BufferIsCacheLineAligned) {
  AlignedBuffer<double> buf(1000);
  EXPECT_TRUE(is_aligned(buf.data(), kCacheLine));
  EXPECT_EQ(buf.size(), 1000u);
}

TEST(Aligned, BufferFillAndIndex) {
  AlignedBuffer<int> buf(17, 42);
  for (std::size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf[i], 42);
  buf.fill(-1);
  EXPECT_EQ(buf[16], -1);
}

TEST(Aligned, BufferCopyAndMove) {
  AlignedBuffer<double> a(8);
  for (std::size_t i = 0; i < 8; ++i) a[i] = static_cast<double>(i);
  AlignedBuffer<double> b = a;  // copy
  EXPECT_EQ(b.size(), 8u);
  EXPECT_DOUBLE_EQ(b[5], 5.0);
  b[5] = 99.0;
  EXPECT_DOUBLE_EQ(a[5], 5.0);  // deep copy

  AlignedBuffer<double> c = std::move(a);
  EXPECT_EQ(c.size(), 8u);
  EXPECT_DOUBLE_EQ(c[5], 5.0);
}

TEST(Aligned, BufferResizeDiscards) {
  AlignedBuffer<double> a(4, 1.0);
  a.resize(16);
  EXPECT_EQ(a.size(), 16u);
  a.resize(0);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.data(), nullptr);
}

TEST(Aligned, AllocatorWorksWithStdVector) {
  std::vector<double, AlignedAllocator<double>> v(100, 3.0);
  EXPECT_TRUE(is_aligned(v.data(), kCacheLine));
  EXPECT_DOUBLE_EQ(v[99], 3.0);
}

TEST(Options, ParsesKeyValuePairs) {
  const char* argv[] = {"prog", "-mat_type", "sell", "-n", "2048",
                        "-rtol", "1e-6", "-flag"};
  Options opts(8, argv);
  EXPECT_EQ(opts.get_string("mat_type", ""), "sell");
  EXPECT_EQ(opts.get_index("n", 0), 2048);
  EXPECT_DOUBLE_EQ(opts.get_scalar("rtol", 0.0), 1e-6);
  EXPECT_TRUE(opts.has("flag"));
  EXPECT_TRUE(opts.get_bool("flag", false));
}

TEST(Options, NegativeNumbersAreValuesNotKeys) {
  const char* argv[] = {"-shift", "-2.5", "-count", "-3"};
  Options opts(4, argv);
  EXPECT_DOUBLE_EQ(opts.get_scalar("shift", 0.0), -2.5);
  EXPECT_EQ(opts.get_index("count", 0), -3);
}

TEST(Options, FallbacksWhenMissing) {
  Options opts;
  EXPECT_EQ(opts.get_string("absent", "dflt"), "dflt");
  EXPECT_EQ(opts.get_index("absent", 7), 7);
  EXPECT_DOUBLE_EQ(opts.get_scalar("absent", 2.5), 2.5);
  EXPECT_FALSE(opts.get_bool("absent", false));
}

TEST(Options, TypeErrorsThrow) {
  Options opts;
  opts.set("n", "abc");
  EXPECT_THROW(opts.get_index("n", 0), Error);
  EXPECT_THROW(opts.get_scalar("n", 0.0), Error);
  opts.set("b", "maybe");
  EXPECT_THROW(opts.get_bool("b", false), Error);
}

TEST(Options, LaterSettingsOverride) {
  Options opts;
  opts.set("x", "1");
  opts.set("x", "2");
  EXPECT_EQ(opts.get_index("x", 0), 2);
  EXPECT_EQ(opts.keys().size(), 1u);
}

TEST(Options, StructuredParseErrorsCarryKeyValueExpected) {
  Options opts;
  opts.set("ksp_max_it", "ten");
  try {
    opts.get_index("ksp_max_it", 0);
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_EQ(e.key(), "ksp_max_it");
    EXPECT_EQ(e.value(), "ten");
    EXPECT_FALSE(e.expected().empty());
    EXPECT_NE(std::string(e.what()).find("ksp_max_it"), std::string::npos);
  }
  opts.set("aegis_abft_tol", "1e-x");
  try {
    opts.get_scalar("aegis_abft_tol", 0.0);
    FAIL() << "expected OptionsError";
  } catch (const OptionsError& e) {
    EXPECT_EQ(e.key(), "aegis_abft_tol");
    EXPECT_EQ(e.value(), "1e-x");
  }
  opts.set("aegis_abft", "maybe");
  EXPECT_THROW(opts.get_bool("aegis_abft", false), OptionsError);
}

TEST(Options, UnknownKeysFiltersByPrefixAndKnownList) {
  Options opts;
  opts.set("aegis_faults", "drop=0.1");
  opts.set("aegis_fautls", "typo");
  opts.set("mat_type", "sell");
  const auto unknown = opts.unknown_keys("aegis_", {"aegis_faults"});
  ASSERT_EQ(unknown.size(), 1u);
  EXPECT_EQ(unknown[0], "aegis_fautls");
}

TEST(Options, UnknownOptionWarningsFlagTyposInAegisAndKspFamilies) {
  Options opts;
  opts.set_flag("aegis_abft");
  opts.set("ksp_rtol", "1e-8");
  EXPECT_TRUE(opts.unknown_option_warnings().empty());

  opts.set_flag("aegis_abftt");    // typo
  opts.set("ksp_rtoll", "1e-8");   // typo
  opts.set("unrelated", "fine");   // outside the warned prefixes
  const auto warnings = opts.unknown_option_warnings();
  ASSERT_EQ(warnings.size(), 2u);
  bool saw_aegis = false, saw_ksp = false;
  for (const auto& w : warnings) {
    if (w.find("aegis_abftt") != std::string::npos) saw_aegis = true;
    if (w.find("ksp_rtoll") != std::string::npos) saw_ksp = true;
  }
  EXPECT_TRUE(saw_aegis);
  EXPECT_TRUE(saw_ksp);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-2.0, 5.0);
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, 5.0);
    const Index k = rng.next_index(13);
    EXPECT_GE(k, 0);
    EXPECT_LT(k, 13);
  }
}

}  // namespace
}  // namespace kestrel
