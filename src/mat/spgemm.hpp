#pragma once
// Sparse matrix products (Gustavson's algorithm) — substrate for the
// Galerkin coarse operators (R * A * P) used by the geometric multigrid
// preconditioner.

#include "mat/csr.hpp"

namespace kestrel::mat {

/// C = A * B.
Csr spgemm(const Csr& a, const Csr& b);

/// Galerkin triple product: P^T * A * P.
Csr galerkin(const Csr& a, const Csr& p);

/// C = alpha*A + beta*B (same dimensions; sparsity is the union).
Csr add(Scalar alpha, const Csr& a, Scalar beta, const Csr& b);

/// Identity matrix of order n.
Csr identity(Index n);

}  // namespace kestrel::mat
