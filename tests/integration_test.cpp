// Cross-module integration tests: the full parallel solver composition
// (GMRES + rank-local ILU = block-Jacobi/ILU, PETSc's default parallel
// preconditioner), profiler accounting through the TS->SNES->KSP stack,
// and solver edge cases.

#include <gtest/gtest.h>

#include <cmath>

#include "app/advection_diffusion.hpp"
#include "app/gray_scott.hpp"
#include "app/laplacian.hpp"
#include "ksp/context.hpp"
#include "par/parmat.hpp"
#include "pc/ilu0.hpp"
#include "prof/profiler.hpp"
#include "test_matrices.hpp"
#include "ts/theta.hpp"

namespace kestrel {
namespace {

TEST(ParallelComposition, GmresWithLocalIluBeatsUnpreconditioned) {
  // block-Jacobi with ILU(0) sub-solves: each rank preconditions with the
  // ILU factorization of ITS OWN diagonal block.
  const mat::Csr global = app::advection_diffusion(20);
  Vector x_true(global.rows());
  for (Index i = 0; i < x_true.size(); ++i) x_true[i] = std::sin(0.05 * i);
  Vector b;
  global.spmv(x_true, b);

  const int nranks = 4;
  auto layout = std::make_shared<par::Layout>(
      par::Layout::even(global.rows(), nranks));

  std::vector<int> iters_plain(nranks, 0), iters_ilu(nranks, 0);
  par::Fabric::run(nranks, [&](par::Comm& comm) {
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, {});
    // the diagonal block is CSR by default; factor it locally
    const auto* diag_csr =
        dynamic_cast<const mat::Csr*>(&a.diag_block());
    ASSERT_NE(diag_csr, nullptr);
    const pc::Ilu0 local_ilu(*diag_csr);

    par::ParVector bp(layout, comm.rank());
    bp.set_from_global(b);
    ksp::Settings settings;
    settings.rtol = 1e-10;
    settings.max_iterations = 2000;
    const ksp::Gmres gmres(settings);

    Vector x0(a.local_rows());
    ksp::ParContext plain(a, comm);
    const auto r0 = gmres.solve(plain, bp.local(), x0);

    Vector x1(a.local_rows());
    ksp::ParContext pre(a, comm, &local_ilu);
    const auto r1 = gmres.solve(pre, bp.local(), x1);

    EXPECT_TRUE(r0.converged);
    EXPECT_TRUE(r1.converged);
    iters_plain[static_cast<std::size_t>(comm.rank())] = r0.iterations;
    iters_ilu[static_cast<std::size_t>(comm.rank())] = r1.iterations;

    // the preconditioned answer is still correct
    const Index b0 = layout->begin(comm.rank());
    for (Index i = 0; i < x1.size(); ++i) {
      EXPECT_NEAR(x1[i], x_true[b0 + i], 1e-6);
    }
  });
  EXPECT_LT(iters_ilu[0], iters_plain[0]);
  // iteration counts are collective decisions: all ranks agree
  for (int r = 1; r < nranks; ++r) {
    EXPECT_EQ(iters_ilu[static_cast<std::size_t>(r)], iters_ilu[0]);
  }
}

TEST(Profiling, ProfilerCountsSolveStack) {
  // A local profiler attached to this thread captures the instrumented
  // TS->SNES->KSP stack without touching the process-global instance.
  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true);
  const int ev_jac = prof::registered_event("SNESJacobianEval");
  const int ev_ksp = prof::registered_event("KSPSolve");

  app::GrayScott gs(8);
  Vector u;
  gs.initial_condition(u);
  ts::ThetaOptions opts;
  opts.dt = 1.0;
  opts.steps = 2;
  const ts::ThetaResult res = theta_integrate(gs, u, opts);
  ASSERT_TRUE(res.completed);

  // one Jacobian assembly and one KSP solve per Newton iteration
  EXPECT_EQ(log.calls(ev_jac),
            static_cast<std::uint64_t>(res.total_newton_iterations));
  EXPECT_EQ(log.calls(ev_ksp),
            static_cast<std::uint64_t>(res.total_newton_iterations));
  EXPECT_GT(log.seconds(ev_ksp), 0.0);
  EXPECT_GT(log.flops(ev_ksp), 0u);

  // the solvers recorded their residual histories
  const auto histories = log.histories();
  EXPECT_EQ(histories.count("SNES(newtonls)"), 1u);
  EXPECT_EQ(histories.count("KSP(gmres)"), 1u);
}

TEST(Profiling, PreconditionerLaggingSkipsSetups) {
  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true);
  const int ev_pc = prof::registered_event("PCSetUp");

  app::GrayScott gs(8);
  Vector u;
  gs.initial_condition(u);
  ts::ThetaOptions opts;
  opts.dt = 1.0;
  opts.steps = 2;
  opts.newton.pc_lag = 100;  // build once per Newton solve
  const ts::ThetaResult res = theta_integrate(gs, u, opts);
  ASSERT_TRUE(res.completed);
  // one PCSetUp per time step (first Newton iteration of each solve),
  // fewer than the total Newton iterations
  EXPECT_EQ(log.calls(ev_pc), 2u);
  EXPECT_LT(static_cast<int>(log.calls(ev_pc)),
            res.total_newton_iterations);
}

TEST(SolverEdgeCases, ZeroRhsGivesZeroSolution) {
  const mat::Csr a = app::laplacian_dirichlet(8, 8);
  const Vector b(a.rows(), 0.0);
  for (const char* type : {"cg", "gmres", "bicgstab"}) {
    Vector x(a.rows());
    const auto solver = ksp::make_solver(type);
    ksp::SeqContext ctx(a);
    const auto res = solver->solve(ctx, b, x);
    EXPECT_TRUE(res.converged) << type;
    EXPECT_NEAR(x.norm2(), 0.0, 1e-12) << type;
  }
}

TEST(SolverEdgeCases, NonzeroInitialGuessIsUsed) {
  const mat::Csr a = app::laplacian_dirichlet(10, 10);
  Vector x_true(a.rows());
  for (Index i = 0; i < x_true.size(); ++i) x_true[i] = std::cos(0.2 * i);
  Vector b;
  a.spmv(x_true, b);

  // starting AT the solution must converge instantly
  Vector x;
  x.copy_from(x_true);
  const ksp::Cg cg;
  ksp::SeqContext ctx(a);
  const auto res = cg.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 1);

  // starting near it must converge faster than from zero
  Vector near;
  near.copy_from(x_true);
  for (Index i = 0; i < near.size(); ++i) near[i] += 1e-6;
  const auto res_near = cg.solve(ctx, b, near);
  Vector zero(a.rows());
  const auto res_zero = cg.solve(ctx, b, zero);
  ASSERT_TRUE(res_near.converged);
  ASSERT_TRUE(res_zero.converged);
  EXPECT_LT(res_near.iterations, res_zero.iterations);
}

TEST(SolverEdgeCases, OneByOneSystem) {
  mat::Coo coo(1, 1);
  coo.add(0, 0, 4.0);
  const mat::Csr a = coo.to_csr();
  Vector b{8.0}, x(1);
  for (const char* type : {"cg", "gmres", "fgmres", "bicgstab"}) {
    x.set(0.0);
    const auto solver = ksp::make_solver(type);
    ksp::SeqContext ctx(a);
    const auto res = solver->solve(ctx, b, x);
    EXPECT_TRUE(res.converged) << type;
    EXPECT_NEAR(x[0], 2.0, 1e-10) << type;
  }
}

TEST(GrayScottIntegration, PatternBeginsToSpread) {
  // after a handful of implicit steps the activator v must have diffused
  // beyond the initial seed square while mass stays finite
  app::GrayScott gs(24);
  Vector u;
  gs.initial_condition(u);
  // v is zero well outside the seed before stepping
  EXPECT_DOUBLE_EQ(gs.v_at(u, 2, 2), 0.0);

  Scalar v_seed_before = 0.0;
  for (Index j = 0; j < 24; ++j) {
    for (Index i = 0; i < 24; ++i) v_seed_before += gs.v_at(u, i, j);
  }

  ts::ThetaOptions opts;
  opts.dt = 2.0;
  opts.steps = 8;
  ASSERT_TRUE(theta_integrate(gs, u, opts).completed);

  // diffusion reached at least the ring just outside the seed
  Scalar outside = 0.0;
  for (Index j = 0; j < 24; ++j) {
    for (Index i = 0; i < 24; ++i) {
      const Scalar x = gs.grid().x(i), y = gs.grid().y(j);
      const Scalar l = gs.params().domain;
      const bool in_seed =
          x >= 0.375 * l && x <= 0.625 * l && y >= 0.375 * l && y <= 0.625 * l;
      if (!in_seed) outside += std::abs(gs.v_at(u, i, j));
    }
  }
  EXPECT_GT(outside, 1e-8);
  for (Index i = 0; i < u.size(); ++i) {
    EXPECT_TRUE(std::isfinite(u[i]));
  }
}

}  // namespace
}  // namespace kestrel
