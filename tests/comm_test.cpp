// Message-passing fabric tests: point-to-point, collectives, failure
// propagation.

#include <gtest/gtest.h>

#include <atomic>

#include "base/error.hpp"
#include "par/comm.hpp"

namespace kestrel::par {
namespace {

TEST(Fabric, SingleRankRunsInline) {
  int calls = 0;
  Fabric::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Fabric, PointToPointRoundTrip) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.isend(1, 7, {1.0, 2.0, 3.0});
      const auto echoed = comm.recv(1, 8);
      ASSERT_EQ(echoed.size(), 3u);
      EXPECT_DOUBLE_EQ(echoed[2], 6.0);
    } else {
      auto data = comm.recv(0, 7);
      for (auto& v : data) v *= 2.0;
      comm.isend(0, 8, data);
    }
  });
}

TEST(Fabric, MessagesMatchOnSourceAndTag) {
  Fabric::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      // receive in the opposite order of sending; matching must be by
      // (source, tag), not arrival order
      const auto from2 = comm.recv(2, 5);
      const auto from1 = comm.recv(1, 5);
      EXPECT_DOUBLE_EQ(from1[0], 1.0);
      EXPECT_DOUBLE_EQ(from2[0], 2.0);
    } else {
      comm.isend(0, 5, {static_cast<Scalar>(comm.rank())});
    }
  });
}

TEST(Fabric, FifoOrderPerSourceTag) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.isend(1, 3, {10.0});
      comm.isend(1, 3, {20.0});
      comm.isend(1, 3, {30.0});
    } else {
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 10.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 20.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 30.0);
    }
  });
}

TEST(Fabric, IrecvWaitFillsSink) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Scalar> sink;
      Request req = comm.irecv(1, 2, &sink);
      comm.wait(req);
      EXPECT_TRUE(req.done);
      ASSERT_EQ(sink.size(), 2u);
      EXPECT_DOUBLE_EQ(sink[1], -4.0);
    } else {
      comm.isend(0, 2, {3.0, -4.0});
    }
  });
}

TEST(Fabric, AllreduceSumMaxMin) {
  for (int nranks : {1, 2, 5}) {
    Fabric::run(nranks, [nranks](Comm& comm) {
      const Scalar mine = comm.rank() + 1.0;
      EXPECT_DOUBLE_EQ(comm.allreduce(mine, Comm::ReduceOp::kSum),
                       nranks * (nranks + 1) / 2.0);
      EXPECT_DOUBLE_EQ(comm.allreduce(mine, Comm::ReduceOp::kMax),
                       static_cast<Scalar>(nranks));
      EXPECT_DOUBLE_EQ(comm.allreduce(mine, Comm::ReduceOp::kMin), 1.0);
    });
  }
}

TEST(Fabric, AllreduceInt64) {
  Fabric::run(4, [](Comm& comm) {
    const std::int64_t total =
        comm.allreduce(static_cast<std::int64_t>(1000000 + comm.rank()));
    EXPECT_EQ(total, 4000006);
  });
}

TEST(Fabric, SuccessiveAllreducesStayOrdered) {
  Fabric::run(3, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const Scalar sum =
          comm.allreduce(static_cast<Scalar>(round), Comm::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum, 3.0 * round);
    }
  });
}

TEST(Fabric, AllgathervConcatenatesInRankOrder) {
  Fabric::run(3, [](Comm& comm) {
    std::vector<Scalar> local(static_cast<std::size_t>(comm.rank()) + 1,
                              static_cast<Scalar>(comm.rank()));
    const auto all = comm.allgatherv(local);
    ASSERT_EQ(all.size(), 6u);  // 1 + 2 + 3
    EXPECT_DOUBLE_EQ(all[0], 0.0);
    EXPECT_DOUBLE_EQ(all[1], 1.0);
    EXPECT_DOUBLE_EQ(all[2], 1.0);
    EXPECT_DOUBLE_EQ(all[5], 2.0);
  });
}

TEST(Fabric, BarrierCompletes) {
  std::atomic<int> counter{0};
  Fabric::run(4, [&](Comm& comm) {
    counter.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(counter.load(), 4);
  });
}

TEST(Fabric, RankExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(Fabric::run(3,
                           [](Comm& comm) {
                             if (comm.rank() == 1) {
                               KESTREL_FAIL("rank 1 exploded");
                             }
                             // other ranks block on a message that will
                             // never arrive; abort must wake them
                             (void)comm.recv((comm.rank() + 1) % 3, 9);
                           }),
               Error);
}

TEST(Fabric, RootCauseExceptionIsRethrown) {
  try {
    Fabric::run(3, [](Comm& comm) {
      if (comm.rank() == 2) KESTREL_FAIL("root cause");
      (void)comm.recv(2, 1);
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("root cause"), std::string::npos);
  }
}

TEST(Fabric, TypedIndexMessagesRoundTrip) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      // values beyond 2^53 would be corrupted by a Scalar round-trip; the
      // typed path must carry them exactly (Index permitting)
      comm.isend_indices(1, 4, {0, 7, 123456789, 3});
      const auto echoed = comm.recv_indices(1, 5);
      ASSERT_EQ(echoed.size(), 4u);
      EXPECT_EQ(echoed[2], 123456790);
    } else {
      auto idx = comm.recv_indices(0, 4);
      for (auto& v : idx) v += 1;
      comm.isend_indices(0, 5, idx);
    }
  });
}

TEST(Fabric, IndexAllgathervConcatenatesInRankOrder) {
  Fabric::run(3, [](Comm& comm) {
    const std::vector<Index> local(static_cast<std::size_t>(comm.rank()),
                                   static_cast<Index>(10 * comm.rank()));
    const auto all = comm.allgatherv(local);
    ASSERT_EQ(all.size(), 3u);  // 0 + 1 + 2
    EXPECT_EQ(all[0], 10);
    EXPECT_EQ(all[1], 20);
    EXPECT_EQ(all[2], 20);
  });
}

TEST(PersistentExchange, RoundTripDeliversInPlace) {
  Fabric::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<Scalar> ghost(3, -1.0);
    auto ex = comm.open_exchange({{peer, 3}}, {{peer, ghost.data(), 3}});
    for (int round = 1; round <= 4; ++round) {
      const std::vector<Scalar> packed = {
          10.0 * comm.rank() + round, 0.5, static_cast<Scalar>(round)};
      ex->arm();
      ex->send(0, packed.data(), 3);
      EXPECT_EQ(ex->wait_any(), 0);
      // delivered straight into the registered slice, no staging buffer
      EXPECT_DOUBLE_EQ(ghost[0], 10.0 * peer + round);
      EXPECT_DOUBLE_EQ(ghost[2], static_cast<Scalar>(round));
    }
  });
}

TEST(PersistentExchange, WaitAnyCompletesInArrivalOrder) {
  // Rank 0 receives from 1 and 2; rank 2's message is held back behind a
  // mailbox rendezvous, so channel 0 (from rank 1) must complete first
  // even though both were armed together.
  Fabric::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Scalar> ghost(2, 0.0);
      auto ex = comm.open_exchange(
          {}, {{1, ghost.data(), 1}, {2, ghost.data() + 1, 1}});
      ex->arm();
      const int first = ex->wait_any();
      EXPECT_EQ(first, 0);          // rank 1 sent immediately
      comm.isend(2, 1, {1.0});      // release rank 2
      const int second = ex->wait_any();
      EXPECT_EQ(second, 1);
      EXPECT_DOUBLE_EQ(ghost[0], 1.0);
      EXPECT_DOUBLE_EQ(ghost[1], 2.0);
    } else if (comm.rank() == 1) {
      auto ex = comm.open_exchange({{0, 1}}, {});
      const Scalar v = 1.0;
      ex->send(0, &v, 1);
    } else {
      auto ex = comm.open_exchange({{0, 1}}, {});
      (void)comm.recv(0, 1);  // wait until rank 0 drained channel 0
      const Scalar v = 2.0;
      ex->send(0, &v, 1);
    }
  });
}

TEST(PersistentExchange, SenderBlocksUntilReArm) {
  // Depth-1 backpressure: round k+1's send must not overwrite round k's
  // data before the receiver drained it, even when the sender sprints.
  Fabric::run(2, [](Comm& comm) {
    constexpr int kRounds = 50;
    if (comm.rank() == 0) {
      auto ex = comm.open_exchange({{1, 1}}, {});
      for (int round = 1; round <= kRounds; ++round) {
        const Scalar v = static_cast<Scalar>(round);
        ex->send(0, &v, 1);  // sprints ahead; parks when 1 round ahead
      }
    } else {
      Scalar slot = 0.0;
      auto ex = comm.open_exchange({}, {{0, &slot, 1}});
      for (int round = 1; round <= kRounds; ++round) {
        ex->arm();
        ex->wait_all();
        ASSERT_DOUBLE_EQ(slot, static_cast<Scalar>(round));
      }
    }
  });
}

TEST(PersistentExchange, StatsCountChannelTraffic) {
  Fabric::run(2, [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<Scalar> ghost(4, 0.0);
    auto ex = comm.open_exchange({{peer, 4}}, {{peer, ghost.data(), 4}});
    const FabricStats before = comm.stats();
    const std::vector<Scalar> packed(4, 1.5);
    for (int round = 0; round < 10; ++round) {
      ex->arm();
      ex->send(0, packed.data(), 4);
      ex->wait_all();
    }
    const FabricStats& after = comm.stats();
    EXPECT_EQ(after.channel_sends - before.channel_sends, 10u);
    EXPECT_EQ(after.payload_copies - before.payload_copies, 10u);
    // the defining Slipstream property: zero mailbox allocations
    EXPECT_EQ(after.mailbox_allocs, before.mailbox_allocs);
    EXPECT_EQ(after.wait_any_calls - before.wait_any_calls, 10u);
  });
}

TEST(PersistentExchange, MismatchedSendCountThrows) {
  EXPECT_THROW(
      Fabric::run(2,
                  [](Comm& comm) {
                    const int peer = 1 - comm.rank();
                    std::vector<Scalar> ghost(3, 0.0);
                    auto ex = comm.open_exchange({{peer, 3}},
                                                 {{peer, ghost.data(), 3}});
                    ex->arm();
                    const std::vector<Scalar> wrong(2, 1.0);
                    ex->send(0, wrong.data(), 2);  // plan says 3
                    ex->wait_all();
                  }),
      Error);
}

TEST(PersistentExchange, InvalidSpecsRejected) {
  Fabric::run(2, [](Comm& comm) {
    std::vector<Scalar> ghost(1, 0.0);
    if (comm.rank() == 0) {
      EXPECT_THROW((void)comm.open_exchange({{5, 1}}, {}), Error);
      EXPECT_THROW((void)comm.open_exchange({}, {{1, nullptr, 1}}), Error);
      EXPECT_THROW((void)comm.open_exchange({}, {{1, ghost.data(), 0}}),
                   Error);
    }
    comm.barrier();
  });
}

TEST(PersistentExchange, AbortWakesParkedSenderAndWaiter) {
  // Rank 1 dies; rank 0 is blocked in wait_any on a channel that will never
  // be delivered and rank 2 is parked in send on a peer that will never
  // re-arm. Abort must wake both without deadlock.
  EXPECT_THROW(
      Fabric::run(3,
                  [](Comm& comm) {
                    if (comm.rank() == 0) {
                      Scalar slot = 0.0;
                      auto ex = comm.open_exchange({}, {{1, &slot, 1}});
                      ex->arm();
                      (void)ex->wait_any();
                    } else if (comm.rank() == 1) {
                      auto ex = comm.open_exchange({{0, 1}}, {});
                      (void)ex;
                      KESTREL_FAIL("rank 1 exploded");
                    } else {
                      // send channel to rank 0, who never opens/arms the
                      // matching receive endpoint: the send parks forever
                      auto ex = comm.open_exchange({{0, 1}}, {});
                      const Scalar v = 1.0;
                      ex->send(0, &v, 1);
                    }
                  }),
      Error);
}

TEST(Fabric, InvalidArgumentsRejected) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.isend(5, 0, {1.0}), Error);
      EXPECT_THROW(comm.isend(1, -3, {1.0}), Error);
      std::vector<Scalar> sink;
      EXPECT_THROW(comm.irecv(-1, 0, &sink), Error);
      comm.isend(1, 0, {0.0});  // unblock peer
    } else {
      (void)comm.recv(0, 0);
    }
  });
}

}  // namespace
}  // namespace kestrel::par
