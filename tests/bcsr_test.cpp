// Block CSR structure tests.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "mat/bcsr.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

Csr two_by_two_blocks() {
  // 4x4 matrix with blocks at (0,0), (0,1), (1,1); block (0,1) is only
  // partially filled so Bcsr must zero-fill it.
  Coo coo(4, 4);
  coo.add(0, 0, 1.0);
  coo.add(0, 1, 2.0);
  coo.add(1, 0, 3.0);
  coo.add(1, 1, 4.0);
  coo.add(0, 2, 5.0);  // partial block (0,1)
  coo.add(2, 2, 6.0);
  coo.add(3, 3, 7.0);
  return coo.to_csr();
}

TEST(Bcsr, BlockStructure) {
  const Bcsr b(two_by_two_blocks(), 2);
  EXPECT_EQ(b.block_rows(), 2);
  EXPECT_EQ(b.stored_blocks(), 3);
  EXPECT_EQ(b.rows(), 4);
  EXPECT_EQ(b.nnz(), 7);  // logical nonzeros, not padded slots
}

TEST(Bcsr, ZeroFillInsidePartialBlocks) {
  const Bcsr b(two_by_two_blocks(), 2);
  const BcsrView v = b.view();
  // find block (0, 1)
  bool found = false;
  for (Index k = v.rowptr[0]; k < v.rowptr[1]; ++k) {
    if (v.colidx[k] == 1) {
      found = true;
      const Scalar* blk = v.val + static_cast<std::size_t>(k) * 4;
      EXPECT_DOUBLE_EQ(blk[0], 5.0);  // (0,2)
      EXPECT_DOUBLE_EQ(blk[1], 0.0);
      EXPECT_DOUBLE_EQ(blk[2], 0.0);
      EXPECT_DOUBLE_EQ(blk[3], 0.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Bcsr, DiagonalExtraction) {
  const Csr csr = two_by_two_blocks();
  const Bcsr b(csr, 2);
  Vector d;
  b.get_diagonal(d);
  for (Index i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(d[i], csr.at(i, i));
}

TEST(Bcsr, RejectsIndivisibleDimensions) {
  const Csr csr = testing::banded(5, {-1, 1});
  EXPECT_THROW(Bcsr(csr, 2), Error);
}

TEST(Bcsr, BlockSizeOneMatchesCsrSpmv) {
  const Csr csr = testing::banded(12, {-1, 1});
  const Bcsr b(csr, 1);
  const auto x = testing::random_x(12);
  Vector xv(12), y1, y2;
  for (Index i = 0; i < 12; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  csr.spmv(xv, y1);
  b.spmv(xv, y2);
  for (Index i = 0; i < 12; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-13);
}

TEST(Bcsr, StorageSmallerThanCsrForFullBlocks) {
  // With fully dense 2x2 blocks, BCSR stores one index per 4 values.
  Coo coo(64, 64);
  Rng rng(17);
  for (Index ib = 0; ib < 32; ++ib) {
    for (Index jb : {ib, (ib + 5) % 32}) {
      for (Index r = 0; r < 2; ++r) {
        for (Index c = 0; c < 2; ++c) {
          coo.add(ib * 2 + r, jb * 2 + c, rng.uniform(0.5, 1.0));
        }
      }
    }
  }
  const Csr csr = coo.to_csr();
  const Bcsr b(csr, 2);
  EXPECT_LT(b.storage_bytes(), csr.storage_bytes());
}

}  // namespace
}  // namespace kestrel::mat
