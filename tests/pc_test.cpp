// Preconditioner tests: Jacobi, block-Jacobi, SOR, ILU(0), factory.

#include <gtest/gtest.h>

#include "app/laplacian.hpp"
#include "ksp/context.hpp"
#include "mat/dense.hpp"
#include "pc/bjacobi.hpp"
#include "pc/ilu0.hpp"
#include "pc/jacobi.hpp"
#include "pc/sor.hpp"
#include "test_matrices.hpp"

namespace kestrel::pc {
namespace {

TEST(Jacobi, InvertsDiagonalExactly) {
  mat::Coo coo(3, 3);
  coo.add(0, 0, 2.0);
  coo.add(1, 1, 4.0);
  coo.add(2, 2, -8.0);
  coo.add(0, 1, 100.0);  // off-diagonal ignored by Jacobi
  const mat::Csr a = coo.to_csr();
  const Jacobi pc(a);
  Vector r{2.0, 4.0, -8.0}, z;
  pc.apply(r, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);
  EXPECT_DOUBLE_EQ(z[1], 1.0);
  EXPECT_DOUBLE_EQ(z[2], 1.0);
}

TEST(Jacobi, DampedVariantScales) {
  mat::Coo coo(1, 1);
  coo.add(0, 0, 2.0);
  const mat::Csr a = coo.to_csr();
  const Jacobi pc(a, 0.5);
  Vector r{4.0}, z;
  pc.apply(r, z);
  EXPECT_DOUBLE_EQ(z[0], 1.0);  // 0.5 * 4 / 2
}

TEST(Jacobi, ZeroDiagonalRejected) {
  mat::Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(1, 0, 1.0);  // row 1 has no diagonal
  EXPECT_THROW(Jacobi pc(coo.to_csr()), Error);
}

TEST(BlockJacobi, ExactOnBlockDiagonalMatrix) {
  // block-diagonal 2x2 blocks: block-Jacobi IS the inverse
  mat::Coo coo(6, 6);
  Rng rng(3);
  for (Index ib = 0; ib < 3; ++ib) {
    coo.add(ib * 2, ib * 2, 3.0 + rng.next_double());
    coo.add(ib * 2, ib * 2 + 1, rng.uniform(-1.0, 1.0));
    coo.add(ib * 2 + 1, ib * 2, rng.uniform(-1.0, 1.0));
    coo.add(ib * 2 + 1, ib * 2 + 1, 3.0 + rng.next_double());
  }
  const mat::Csr a = coo.to_csr();
  const BlockJacobi pc(a, 2);

  const auto x = testing::random_x(6);
  Vector xv(6), b;
  for (Index i = 0; i < 6; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  a.spmv(xv, b);
  Vector z;
  pc.apply(b, z);
  for (Index i = 0; i < 6; ++i) EXPECT_NEAR(z[i], xv[i], 1e-12);
}

TEST(BlockJacobi, StrongerThanPointJacobiOnCoupledBlocks) {
  // 2x2 blocks with strong intra-block coupling: bjacobi should beat
  // jacobi as a CG preconditioner.
  mat::Coo coo(40, 40);
  for (Index ib = 0; ib < 20; ++ib) {
    coo.add(ib * 2, ib * 2, 4.0);
    coo.add(ib * 2 + 1, ib * 2 + 1, 4.0);
    coo.add(ib * 2, ib * 2 + 1, 1.9);
    coo.add(ib * 2 + 1, ib * 2, 1.9);
    if (ib > 0) {
      coo.add(ib * 2, ib * 2 - 2, -0.4);
      coo.add(ib * 2 - 2, ib * 2, -0.4);
    }
  }
  const mat::Csr a = coo.to_csr();
  const Vector b(40, 1.0);

  ksp::Settings settings;
  settings.rtol = 1e-10;
  const ksp::Cg cg(settings);

  Vector x1(40);
  const Jacobi jac(a);
  ksp::SeqContext c1(a, &jac);
  const auto r1 = cg.solve(c1, b, x1);

  Vector x2(40);
  const BlockJacobi bjac(a, 2);
  ksp::SeqContext c2(a, &bjac);
  const auto r2 = cg.solve(c2, b, x2);

  ASSERT_TRUE(r1.converged);
  ASSERT_TRUE(r2.converged);
  EXPECT_LE(r2.iterations, r1.iterations);
}

TEST(BlockJacobi, SingularBlockRejected) {
  mat::Coo coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 0.0);
  // block [[0,1],[0,0]] is singular
  EXPECT_THROW(BlockJacobi(coo.to_csr(), 2), Error);
}

TEST(Sor, OneSweepReducesResidual) {
  const mat::Csr a = app::laplacian_dirichlet(10, 10);
  const Sor pc(a, 1.2);
  Vector r(a.rows(), 1.0), z;
  pc.apply(r, z);
  // residual of the preconditioned correction: || r - A z || < || r ||
  Vector az;
  a.spmv(z, az);
  az.aypx(-1.0, r);
  EXPECT_LT(az.norm2(), r.norm2());
}

TEST(Sor, InvalidOmegaRejected) {
  const mat::Csr a = app::laplacian_dirichlet(4, 4);
  EXPECT_THROW(Sor(a, 0.0), Error);
  EXPECT_THROW(Sor(a, 2.0), Error);
}

TEST(Ilu0, ExactForLowerTriangularMatrix) {
  // For a triangular matrix ILU(0) is an exact factorization.
  mat::Coo coo(5, 5);
  for (Index i = 0; i < 5; ++i) {
    coo.add(i, i, 2.0 + i);
    if (i > 0) coo.add(i, i - 1, -1.0);
  }
  const mat::Csr a = coo.to_csr();
  const Ilu0 pc(a);
  const auto x = testing::random_x(5);
  Vector xv(5), b, z;
  for (Index i = 0; i < 5; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  a.spmv(xv, b);
  pc.apply(b, z);
  for (Index i = 0; i < 5; ++i) EXPECT_NEAR(z[i], xv[i], 1e-12);
}

TEST(Ilu0, ExactWhenNoFillWouldOccur) {
  // Tridiagonal matrices have no fill-in: ILU(0) == LU, so the apply is a
  // direct solve.
  const mat::Csr a = testing::banded(30, {-1, 1}, 6);
  const Ilu0 pc(a);
  const auto x = testing::random_x(30);
  Vector xv(30), b, z;
  for (Index i = 0; i < 30; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  a.spmv(xv, b);
  pc.apply(b, z);
  for (Index i = 0; i < 30; ++i) EXPECT_NEAR(z[i], xv[i], 1e-10);
}

TEST(Ilu0, AcceleratesGmresOnLaplacian) {
  const mat::Csr a = app::laplacian_dirichlet(24, 24);
  const Vector b(a.rows(), 1.0);
  ksp::Settings settings;
  settings.rtol = 1e-8;
  const ksp::Gmres gmres(settings);

  Vector x0(a.rows());
  ksp::SeqContext plain(a);
  const auto r0 = gmres.solve(plain, b, x0);

  Vector x1(a.rows());
  const Ilu0 ilu(a);
  ksp::SeqContext pre(a, &ilu);
  const auto r1 = gmres.solve(pre, b, x1);

  ASSERT_TRUE(r0.converged);
  ASSERT_TRUE(r1.converged);
  EXPECT_LT(r1.iterations, r0.iterations * 7 / 10);
}

TEST(Ilu0, MissingDiagonalRejected) {
  mat::Coo coo(2, 2);
  coo.add(0, 1, 1.0);
  coo.add(1, 0, 1.0);  // no diagonal entries at all
  EXPECT_THROW(Ilu0 pc(coo.to_csr()), Error);
}

TEST(Factory, MakesAllSimpleTypes) {
  const mat::Csr a = app::laplacian_dirichlet(6, 6);
  EXPECT_EQ(make_pc("none", a)->name(), "none");
  EXPECT_EQ(make_pc("jacobi", a)->name(), "jacobi");
  EXPECT_EQ(make_pc("bjacobi", a, 1)->name(), "bjacobi");
  EXPECT_EQ(make_pc("sor", a)->name(), "sor");
  EXPECT_EQ(make_pc("ilu", a)->name(), "ilu");
  EXPECT_EQ(make_pc("ilu-level", a)->name(), "ilu-level");
  EXPECT_THROW(make_pc("voodoo", a), Error);
}

}  // namespace
}  // namespace kestrel::pc
