# Empty dependencies file for matrix_solver_grid_test.
# This may be replaced when dependencies are built.
