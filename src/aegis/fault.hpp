#pragma once
// Kestrel Aegis: deterministic fault injection + fault-tolerance counters.
//
// A FaultPlan is a seed-driven, purely functional description of which
// transport-level faults to inject where. The fabric consults it on every
// mailbox delivery, persistent-channel send and collective entry; the
// verdict for a given (src, dst, tag, seq) tuple depends only on the plan's
// seed, so a failing run replays bit-for-bit from its logged spec string.
//
// Spec grammar (comma-separated clauses, e.g. "seed=42,drop=0.05,kill=3@20"):
//   seed=N        hash seed (default 1)
//   drop=P        drop a message with probability P (sender retries with
//                 exponential backoff; recoverable)
//   delay=P       delay a message with probability P (delay_ms each)
//   dup=P         duplicate a message (receiver discards the stale copy)
//   reorder=P     enqueue out of order (receiver re-sequences by seq number)
//   bitflip=P     corrupt the payload in flight (receiver detects the
//                 checksum mismatch, discards, and accepts the clean
//                 retransmission)
//   kill=R@M      rank R throws RankFailure at its M-th plan consultation
//                 (models a rank dying mid-collective)
//   delay_ms=X    delay duration in milliseconds (default 1)
//   repeat=N      a faulted message stays faulty for N attempts (default 1);
//                 repeat > max_retries makes the fault unrecoverable
//   max_retries=N sender retry budget before declaring the link dead
//                 (default 8)
//
// The plan is wired in through par::FabricOptions (programmatically or via
// the KESTREL_AEGIS environment variable / the -aegis_faults option).

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace kestrel::prof {
class Profiler;
}

namespace kestrel::aegis {

enum class FaultKind {
  kNone,
  kDrop,
  kDelay,
  kDuplicate,
  kReorder,
  kBitFlip,
  kKillRank,
};

const char* fault_kind_name(FaultKind kind);

/// Decision for one message attempt. `repeat` is how many consecutive
/// attempts the fault afflicts before the link heals.
struct FaultVerdict {
  FaultKind kind = FaultKind::kNone;
  int repeat = 0;
};

class FaultPlan {
 public:
  /// Parses the spec grammar above; throws OptionsError (key "aegis_faults")
  /// on a malformed clause. Returns nullptr for an empty spec.
  static std::shared_ptr<const FaultPlan> parse(const std::string& spec);
  /// Plan from $KESTREL_AEGIS, or nullptr when unset/empty.
  static std::shared_ptr<const FaultPlan> from_env();

  /// Deterministic verdict for one message (mailbox or channel): depends
  /// only on (seed, src, dst, tag, seq).
  FaultVerdict message_fault(int src, int dst, int tag,
                             std::uint64_t seq) const;

  /// True exactly once: when `rank` reaches its configured kill point.
  /// Counts this rank's plan consultations as a side effect.
  bool check_kill(int rank) const;

  int max_retries() const { return max_retries_; }
  double delay_ms() const { return delay_ms_; }
  std::uint64_t seed() const { return seed_; }
  const std::string& spec() const { return spec_; }
  /// True when any message-level fault has nonzero probability (lets the
  /// transport skip checksum work for kill-only plans).
  bool corrupts_messages() const {
    return drop_ > 0 || delay_ > 0 || dup_ > 0 || reorder_ > 0 ||
           bitflip_ > 0;
  }

 private:
  FaultPlan() = default;

  std::string spec_;
  std::uint64_t seed_ = 1;
  double drop_ = 0.0;
  double delay_ = 0.0;
  double dup_ = 0.0;
  double reorder_ = 0.0;
  double bitflip_ = 0.0;
  double delay_ms_ = 1.0;
  int repeat_ = 1;
  int max_retries_ = 8;
  int kill_rank_ = -1;
  std::uint64_t kill_at_ = 0;
  /// Consultation counters, one per rank (single mutable piece of state;
  /// the plan itself is shared const across rank threads).
  static constexpr int kMaxRanks = 256;
  mutable std::vector<std::atomic<std::uint64_t>> consults_;
};

/// Process-wide fault-tolerance counters. Atomics: every rank thread (and
/// the ABFT verifier on any thread) bumps them concurrently.
struct AegisStats {
  std::atomic<std::uint64_t> faults_injected{0};
  std::atomic<std::uint64_t> retries{0};
  std::atomic<std::uint64_t> checksum_failures{0};
  std::atomic<std::uint64_t> duplicates_dropped{0};
  std::atomic<std::uint64_t> reorders_healed{0};
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> rank_kills{0};
  std::atomic<std::uint64_t> abft_verifications{0};
  std::atomic<std::uint64_t> abft_failures{0};
  std::atomic<std::uint64_t> abft_retries{0};
  std::atomic<std::uint64_t> rollbacks{0};
  std::atomic<std::uint64_t> solver_restarts{0};
  std::atomic<std::uint64_t> recoveries{0};

  void reset();
};

AegisStats& stats();

/// Records every counter as an `aegis/...` metric on the given profiler
/// (kestrel-scope-metrics-v2 names; flows into -log_json via prof).
void publish_metrics(prof::Profiler& prof);

/// FNV-1a over a byte range: the transport payload checksum. Cheap, and
/// any single bit flip changes it.
std::uint64_t checksum_bytes(const void* data, std::size_t nbytes);

/// Exponential-backoff sleep for retry attempt `attempt` (0-based).
void backoff_sleep(int attempt);

}  // namespace kestrel::aegis
