"""Argus abstract interpreter.

Executes a kernel function symbolically over the interval/polynomial domain:
pointers carry (array, offset-poly), vectors carry a per-lane offset poly
over the distinguished `__lane` symbol, masks carry a shape (all-on,
lane < e, mask-table bits) plus provenance. Loops run one symbolic
iteration plus an exit state; branches fork the state. Every memory access
emits proof obligations discharged by aprover; failures become Violations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field as dfield
from typing import Dict, List, Optional, Tuple

from apoly import ArrElem, OpTerm, Poly, Sym, pdiv, pmod
from aprover import FactDB, Prover
from acontracts import (ContractError, Fact, KernelContract, ParamSpec,
                        TUContract, ViewContract)
import aparser as A

LANE = Sym("__lane")
MAX_INLINE_DEPTH = 16
MAX_STATES = 48

_TYPE_SIZES = {
    "Scalar": 8, "double": 8, "float": 4, "Index": 4, "int": 4,
    "unsigned": 4, "std::uint64_t": 8, "std::uint32_t": 4,
    "std::uint16_t": 2, "std::uint8_t": 1,
    "std::size_t": 8, "std::int64_t": 8, "__m512d": 64, "__m512": 64,
    "__m256d": 32, "__m128d": 16, "__m256i": 32, "__m128i": 16,
    "__m256": 32, "__m128": 16,
}
_BUILTIN_INTS = {"kZmmDoubles": 8}


@dataclass
class Violation:
    path: str
    line: int
    category: str   # bounds|tail-mask|mask-provenance|packed-stream|
    #               # shift-range|unsupported|contract
    message: str
    kernel: str = ""

    def render(self) -> str:
        k = f" [{self.kernel}]" if self.kernel else ""
        return f"{self.path}:{self.line}: {self.category}{k}: {self.message}"


@dataclass
class ArrayInfo:
    name: str
    extent: Optional[Poly]    # in elements; None = unknown
    esize: int
    kind: str                 # view|param|local|table
    stream: str = ""          # traffic stream name ("" = not counted)
    fkind: str = "int"        # element kind: int|float


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

class Val:
    pass


class FloatV(Val):
    pass


@dataclass
class FloatVecV(Val):
    width: int = 8


@dataclass
class IntV(Val):
    poly: Poly
    tag: Optional[tuple] = None
    # tags: ("pow2m1", e_poly)          value == (1 << e) - 1
    #       ("shr", word IntV, shift)   word >> shift (mask extraction)
    #       ("maskbyte", src, byte_poly) byte of a mask-table word
    #       ("packedbytes", row_ptr, start) memcpy'd set-bit positions
    #       ("popcount", src IntV)      popcount of a mask byte


@dataclass
class VecV(Val):
    lane: Poly                # offset poly over LANE (int lanes)
    width: int
    esize: int
    tag: Optional[tuple] = None


@dataclass
class MaskV(Val):
    kind: str                 # all|lanelt|bits|const|unknown
    width: int = 8
    expr: Optional[Poly] = None     # lanelt bound e
    word: Optional["IntV"] = None   # bits: the mask byte IntV (with tag)
    const: int = 0
    prov: str = "unknown"     # lanecount|masktable|constdecl|unknown


@dataclass
class PackedState:
    pos: Poly                           # elements consumed since anchor
    win_start: Optional[Poly] = None    # current budget window
    win_budget: Optional[Poly] = None
    win_tag: Optional[tuple] = None


@dataclass
class PtrV(Val):
    array: str
    off: Poly
    packed: Optional[PackedState] = None


@dataclass
class ViewV(Val):
    prefix: str
    contract: ViewContract


@dataclass
class TableV(Val):
    name: str
    sem: str                  # "setbits"


@dataclass
class TableRowV(Val):
    table: str
    sem: str
    word: "IntV"              # the row selector (mask byte)


class NullV(Val):
    pass


class State:
    def __init__(self, env=None, db=None):
        self.env: Dict[str, Val] = env if env is not None else {}
        self.db: FactDB = db if db is not None else FactDB()
        self.flow: Optional[str] = None      # return|break|continue
        self.retval: Optional[Val] = None
        self.grl_seen: List[Tuple[str, Poly]] = []   # (grl array, index poly)
        self.base_seen: List[Tuple[str, Poly]] = []  # (base array, index poly)
        self.types: Dict[str, str] = {}      # declared var -> type name

    def fork(self) -> "State":
        st = State(dict(self.env), self.db.copy())
        st.grl_seen = list(self.grl_seen)
        st.base_seen = list(self.base_seen)
        st.types = dict(self.types)
        return st


class Unsupported(Exception):
    def __init__(self, line: int, msg: str):
        super().__init__(msg)
        self.line = line
        self.msg = msg


def _p(v: Val, line: int) -> Poly:
    if isinstance(v, IntV):
        return v.poly
    raise Unsupported(line, f"expected integer value, got {type(v).__name__}")


def _is_float(v: Val) -> bool:
    return isinstance(v, (FloatV, FloatVecV))


# ---------------------------------------------------------------------------
# Interpreter
# ---------------------------------------------------------------------------

class Interp:
    def __init__(self, tu: A.TUnit, tuc: TUContract,
                 views: Dict[str, ViewContract],
                 field_types: Dict[str, Dict[str, Tuple[str, int]]]):
        self.tu = tu
        self.tuc = tuc
        self.views = views
        self.field_types = field_types   # view -> field -> (kind,esize,fkind)
        self.pinned: Dict[str, int] = {}   # "a.c" -> pinned constant
        self.funcs = {f.name: f for f in tu.funcs}
        self.violations: List[Violation] = []
        self.reads: Dict[str, int] = {}
        self.writes: Dict[str, int] = {}
        self.arrays: Dict[str, ArrayInfo] = {}
        self.maskbits: List[Tuple[str, str, Poly]] = []  # mask arr, col arr, n
        self.mask_words: set = set()        # arrays whose elems are mask words
        self.packed_arrays: set = set()     # arrays with packed discipline
        self.elem_div_sym: Dict[str, Poly] = {}
        self.groups: List[Tuple[str, str, str, str]] = []
        self.spans: List[Tuple[str, str, str, Poly]] = []  # off,base,seg,bound
        self.kernel = ""
        self._fresh = itertools.count()
        self._depth = 0

    # -- small helpers ------------------------------------------------------
    def fresh(self, hint: str) -> Poly:
        return Poly.sym(f"{hint}%{next(self._fresh)}")

    def fail(self, line: int, cat: str, msg: str) -> None:
        self.violations.append(
            Violation(self.tu.path, line, cat, msg, self.kernel))

    def record(self, arr: ArrayInfo, esize: int, write: bool) -> None:
        if arr.kind in ("local", "table") or not arr.stream:
            return
        book = self.writes if write else self.reads
        book[arr.stream] = max(book.get(arr.stream, 0), esize)

    # -- annotation expression -> Poly --------------------------------------
    def annot_poly(self, e: A.Expr, scope: Dict[str, Poly],
                   prefix: str, where: str) -> Poly:
        if isinstance(e, A.Num):
            return Poly.const(e.value)
        if isinstance(e, A.Ident):
            if e.name in scope:
                return scope[e.name]
            return Poly.sym(prefix + e.name)
        if isinstance(e, A.Member):
            d = self._dotted(e, where)
            if d in scope:
                return scope[d]
            return Poly.sym(prefix + d)
        if isinstance(e, A.Subscript):
            arr = prefix + self._dotted(e.base, where)
            return Poly.atom(ArrElem(
                arr, self.annot_poly(e.index, scope, prefix, where)))
        if isinstance(e, A.Binary):
            a = self.annot_poly(e.lhs, scope, prefix, where)
            b = self.annot_poly(e.rhs, scope, prefix, where)
            if e.op == "+":
                return a + b
            if e.op == "-":
                return a - b
            if e.op == "*":
                return a * b
            if e.op == "/":
                return pdiv(a, b)
            if e.op == "%":
                return pmod(a, b)
        if isinstance(e, A.Unary) and e.op == "-":
            return -self.annot_poly(e.operand, scope, prefix, where)
        if isinstance(e, A.Call):
            args = [self.annot_poly(x, scope, prefix, where) for x in e.args]
            if e.fn in ("ceil_div", "ceildiv"):
                return Poly.atom(OpTerm("ceildiv", (args[0], args[1])))
            if e.fn == "popcount":
                return Poly.atom(OpTerm("popcount", (args[0],)))
            if e.fn == "len":
                nm = e.args[0]
                arr = prefix + self._dotted(nm, where)
                info = self.arrays.get(arr)
                if info is not None and info.extent is not None:
                    return info.extent
                return Poly.sym(f"__len({arr})")
        raise ContractError(where, f"unsupported annotation expr {e}")

    def _dotted(self, e: A.Expr, where: str) -> str:
        if isinstance(e, A.Ident):
            return e.name
        if isinstance(e, A.Member):
            return self._dotted(e.base, where) + "." + e.name
        raise ContractError(where, "expected a (dotted) name")

    # -- contract instantiation ---------------------------------------------
    def bind_view(self, st: State, prefix: str, vc: ViewContract,
                  const_fields: Dict[str, int]) -> Dict[str, Poly]:
        """Instantiate a view contract under `prefix` ("a."). Returns the
        scope mapping field/let names to polys."""
        ftypes = self.field_types.get(vc.name, {})
        scope: Dict[str, Poly] = {}
        where = f"{self.tu.path}:<contract {vc.name}>"
        for fname, (kind, esize, fkind) in ftypes.items():
            if kind == "int":
                if fname in const_fields:
                    scope[fname] = Poly.const(const_fields[fname])
                    self.pinned[prefix + fname] = const_fields[fname]
                else:
                    scope[fname] = Poly.sym(prefix + fname)
        for name, expr in vc.lets:
            scope[name] = self.annot_poly(expr, scope, prefix, where)
        for fname, (kind, esize, fkind) in ftypes.items():
            if kind != "ptr":
                continue
            ext = None
            if fname in vc.extents:
                ext = self.annot_poly(vc.extents[fname], scope, prefix, where)
            arr = prefix + fname
            self.arrays[arr] = ArrayInfo(arr, ext, esize, "view",
                                         stream=fname, fkind=fkind)
        for fact in vc.facts:
            self._apply_fact(st, fact, scope, prefix, where)
        for member, vtype in vc.nested.items():
            sub = self.views.get(vtype)
            if sub is None:
                raise ContractError(where, f"unknown nested view {vtype}")
            subscope = self.bind_view(st, prefix + member + ".", sub, {})
            for k, v in subscope.items():
                scope[member + "." + k] = v
        return scope

    def _apply_fact(self, st: State, fact: Fact, scope: Dict[str, Poly],
                    prefix: str, where: str) -> None:
        if fact.kind == "cmp":
            op, lhs, rhs = fact.args
            a = self.annot_poly(lhs, scope, prefix, where)
            b = self.annot_poly(rhs, scope, prefix, where)
            if op == "==":
                st.db.add_eq(a, b)
            elif op == "<=":
                st.db.add_le(a, b)
            elif op == "<":
                st.db.add_lt(a, b)
            elif op == ">=":
                st.db.add_le(b, a)
            elif op == ">":
                st.db.add_lt(b, a)
        elif fact.kind == "monotone":
            st.db.monotone.add(prefix + fact.args[0])
        elif fact.kind == "elem":
            arr, lo, hi, incl = fact.args
            lop = self.annot_poly(lo, scope, prefix, where)
            hip = self.annot_poly(hi, scope, prefix, where)
            if incl:
                hip = hip + 1
            st.db.elem_range[prefix + arr] = (lop, hip)
        elif fact.kind == "divides_elem":
            c, arr = fact.args
            st.db.elem_divides[prefix + arr] = c
        elif fact.kind == "divides_elem_sym":
            divisor, arr = fact.args
            self.elem_div_sym[prefix + arr] = \
                self.annot_poly(divisor, scope, prefix, where)
        elif fact.kind == "divides":
            c, expr = fact.args
            st.db.add_divides(c, self.annot_poly(expr, scope, prefix, where))
        elif fact.kind == "stride":
            arr, vals = fact.args
            st.db.stride[prefix + arr] = vals
        elif fact.kind == "maskbit":
            marr, carr, bound = fact.args
            self.maskbits.append(
                (prefix + marr, prefix + carr,
                 self.annot_poly(bound, scope, prefix, where)))
            self.mask_words.add(prefix + marr)
        elif fact.kind == "maskword":
            self.mask_words.add(prefix + fact.args[0])
        elif fact.kind == "packed":
            self.packed_arrays.add(prefix + fact.args[0])
        elif fact.kind == "group":
            perm, gb, grl, rowptr = fact.args
            self.groups.append((prefix + perm, prefix + gb, prefix + grl,
                                prefix + rowptr))
        elif fact.kind == "span":
            off, base, seg, bound = fact.args
            self.spans.append((prefix + off, prefix + base, prefix + seg,
                               self.annot_poly(bound, scope, prefix, where)))
        else:
            raise ContractError(where, f"unhandled fact kind {fact.kind}")

    # -- kernel entry --------------------------------------------------------
    def analyze_kernel(self, func: A.Func, kc: KernelContract) -> None:
        self.kernel = kc.fn
        st = State()
        where = kc.where or f"{self.tu.path}:{func.line}"
        declared = {p.name for p in kc.params}
        for fp in func.params:
            if fp.name not in declared:
                self.fail(func.line, "contract",
                          f"parameter {fp.name!r} missing an argus-param")
                return
        # Pre-scan for `<field> == <const>` requires so view facts can be
        # instantiated with the constant substituted (makes ceildiv(m, c)
        # linearizable when c is pinned).
        const_fields: Dict[str, int] = {}
        for fact in kc.requires:
            if fact.kind == "cmp" and fact.args[0] == "==":
                lhs, rhs = fact.args[1], fact.args[2]
                if isinstance(lhs, A.Ident) and isinstance(rhs, A.Num):
                    const_fields[lhs.name] = rhs.value
        scope: Dict[str, Poly] = {}
        view_prefixes: List[Tuple[str, str]] = []
        by_name = {fp.name: fp for fp in func.params}
        for ps in kc.params:
            fp = by_name.get(ps.name)
            if fp is None:
                self.fail(func.line, "contract",
                          f"argus-param {ps.name!r} not in signature")
                return
            if ps.role == "view":
                vc = self.views.get(ps.view_type)
                if vc is None:
                    self.fail(func.line, "contract",
                              f"unknown view type {ps.view_type}")
                    return
                prefix = ps.name + "."
                sub = self.bind_view(st, prefix, vc, const_fields)
                for k, v in sub.items():
                    scope.setdefault(k, v)
                st.env[ps.name] = ViewV(prefix, vc)
                view_prefixes.append((ps.name, prefix))
            elif ps.role == "int":
                st.env[ps.name] = IntV(Poly.sym(ps.name))
                scope.setdefault(ps.name, Poly.sym(ps.name))
        # Second pass: pointer params (their extents may reference view
        # fields or other params, e.g. `rows : in extent m elem [0, len(y))`).
        for ps in kc.params:
            if ps.role not in ("in", "out"):
                continue
            fp = by_name[ps.name]
            esize = _TYPE_SIZES.get(fp.ptype, 8)
            fkind = "float" if fp.ptype in ("Scalar", "double",
                                            "float") else "int"
            ext = None
            if ps.extent is not None:
                ext = self.annot_poly(ps.extent, scope, "", where)
            else:
                ext = Poly.sym(f"__len({ps.name})")
            self.arrays[ps.name] = ArrayInfo(ps.name, ext, esize, "param",
                                             stream=ps.name, fkind=fkind)
            st.env[ps.name] = PtrV(ps.name, Poly.const(0))
            scope.setdefault("len(%s)" % ps.name, ext)
        for ps in kc.params:
            if ps.elem_lo is not None:
                lo = self.annot_poly(ps.elem_lo, scope, "", where)
                hi = self.annot_poly(ps.elem_hi, scope, "", where)
                if ps.elem_hi_incl:
                    hi = hi + 1
                st.db.elem_range[ps.name] = (lo, hi)
        req_prefix = view_prefixes[0][1] if view_prefixes else ""
        for fact in kc.requires:
            self._apply_fact(st, fact, scope, req_prefix, where)
        for name, val in _BUILTIN_INTS.items():
            st.env.setdefault(name, IntV(Poly.const(val)))
        for td in self.tu.decls:
            if td.name in self.tuc.tables:
                st.env[td.name] = TableV(td.name, self.tuc.tables[td.name])
        try:
            self.exec_block(func.body, [st])
        except Unsupported as ex:
            self.fail(ex.line, "unsupported", ex.msg)

    # -- access checking ----------------------------------------------------
    def lane_db(self, st: State, width: int,
                bound: Optional[Poly]) -> FactDB:
        db = st.db.copy()
        lane = Poly.atom(LANE)
        db.add_ge0(lane)
        db.add_lt(lane, Poly.const(width))
        if bound is not None:
            db.add_lt(lane, bound)
        return db

    def check_ptr(self, st: State, v: Val, width: int, line: int,
                  write: bool, lane_bound: Optional[Poly] = None,
                  what: str = "access") -> None:
        """Contiguous access of `width` elements at pointer v. lane_bound
        (from a lane-count mask) restricts the touched lanes to < bound."""
        if not isinstance(v, PtrV):
            raise Unsupported(line, f"{what}: not a pointer")
        if isinstance(v, PtrV) and v.packed is not None:
            self._check_packed(st, v, width, line, lane_bound)
            info = self.arrays.get(v.array)
            if info is not None:
                self.record(info, info.esize, write)
            return
        info = self.arrays.get(v.array)
        if info is None:
            raise Unsupported(line, f"{what}: unknown array {v.array}")
        self.record(info, info.esize, write)
        pr = Prover(st.db)
        if not pr.prove_ge0(v.off):
            self.fail(line, "bounds",
                      f"cannot prove {v.array}[{v.off}] >= 0")
            return
        if info.extent is None:
            return
        if lane_bound is None:
            if not self._fits(st.db, v.off + width, info.extent):
                self.fail(line, "bounds",
                          f"cannot prove {v.array}[{v.off} + {width}] "
                          f"<= extent {info.extent}")
        else:
            db = self.lane_db(st, width, lane_bound)
            if not Prover(db).prove_lt(v.off + Poly.atom(LANE), info.extent):
                self.fail(line, "tail-mask",
                          f"masked lanes of {v.array}[{v.off} + lane] "
                          f"not provably within extent {info.extent}")

    def _fits(self, db: FactDB, end: Poly, extent: Poly) -> bool:
        if Prover(db).prove_le(end, extent):
            return True
        # Scaled-extent rule: idx = div(p, d), extent = div(q, d) with a
        # symbolic divisor d. Sound when p in [0, q) and d | q.
        em = list(extent.monomials())
        nm = list((end - 1).monomials())
        if len(em) == 1 and len(nm) == 1 and extent.coeff(()) == 0 \
                and (end - 1).coeff(()) == 0:
            ea, na = em[0], nm[0]
            if (len(ea) == 1 and len(na) == 1 and extent.coeff(ea) == 1
                    and (end - 1).coeff(na) == 1):
                et, nt = ea[0][0], na[0][0]
                if (isinstance(et, OpTerm) and isinstance(nt, OpTerm)
                        and et.op == "div" and nt.op == "div"
                        and et.args[1].key() == nt.args[1].key()):
                    q, p = et.args[0], nt.args[0]
                    div_ok = False
                    qm = list(q.monomials())
                    if len(qm) == 1 and q.coeff(()) == 0:
                        qa = qm[0]
                        if len(qa) == 1 and isinstance(qa[0][0], ArrElem) \
                                and q.coeff(qa) == 1:
                            reg = self.elem_div_sym.get(qa[0][0].arr)
                            div_ok = (reg is not None
                                      and reg.key() == et.args[1].key())
                    pr = Prover(db)
                    if div_ok and pr.prove_ge0(p) and pr.prove_lt(p, q):
                        return True
        return False

    def check_lane_read(self, st: State, base: PtrV, idx_lane: Poly,
                        width: int, line: int, write: bool,
                        lane_bound: Optional[Poly],
                        what: str = "gather") -> None:
        """Gather/scatter: per-lane index poly over LANE added to base."""
        info = self.arrays.get(base.array)
        if info is None:
            raise Unsupported(line, f"{what}: unknown array {base.array}")
        self.record(info, info.esize, write)
        f = base.off + idx_lane
        db = self.lane_db(st, width, lane_bound)
        pr = Prover(db)
        if not pr.prove_ge0(f):
            self.fail(line, "bounds",
                      f"{what}: cannot prove {base.array}[{f}] >= 0")
            return
        if info.extent is not None and not pr.prove_lt(f, info.extent):
            self.fail(line, "bounds",
                      f"{what}: cannot prove {base.array}[{f}] < "
                      f"extent {info.extent}")

    def _check_packed(self, st: State, v: PtrV, width: int, line: int,
                      lane_bound: Optional[Poly]) -> None:
        ps = v.packed
        if ps.win_start is None:
            self.fail(line, "packed-stream",
                      f"read of packed stream {v.array} outside any "
                      "mask-byte budget window")
            return
        pr = Prover(st.db)
        ok = (pr.prove_ge0(v.off - ps.win_start) and
              pr.prove_le(v.off + width, ps.win_start + ps.win_budget))
        if not ok:
            self.fail(line, "packed-stream",
                      f"packed read {v.array}[{v.off}..+{width}] exceeds "
                      f"budget {ps.win_budget} at window {ps.win_start}")

    # -- expression evaluation ----------------------------------------------
    # eval() returns a list of (state, value) pairs: ternaries and inlined
    # calls can fork the path mid-expression.
    def eval(self, e: A.Expr, st: State) -> List[Tuple[State, Val]]:
        if isinstance(e, A.Num):
            return [(st, IntV(Poly.const(e.value)))]
        if isinstance(e, A.Ident):
            if e.name == "nullptr":
                return [(st, NullV())]
            if e.name in st.env:
                return [(st, st.env[e.name])]
            if e.name in _BUILTIN_INTS:
                return [(st, IntV(Poly.const(_BUILTIN_INTS[e.name])))]
            raise Unsupported(e.line, f"unknown identifier {e.name!r}")
        if isinstance(e, A.Member):
            return self._eval_member(e, st)
        if isinstance(e, A.Subscript):
            out = []
            for st1, base in self.eval(e.base, st):
                for st2, idx in self.eval(e.index, st1):
                    out.append(self._subscript_read(st2, base, idx, e.line))
            return out
        if isinstance(e, A.Call):
            return self._eval_call(e, st)
        if isinstance(e, A.Unary):
            return self._eval_unary(e, st)
        if isinstance(e, A.Binary):
            if e.op in ("&&", "||", "<", "<=", ">", ">=", "==", "!="):
                # Condition used as a value (rare): opaque int.
                return [(st, IntV(self.fresh("cmp")))]
            out = []
            for st1, a in self.eval(e.lhs, st):
                for st2, b in self.eval(e.rhs, st1):
                    out.append((st2, self._binop(st2, e.op, a, b, e.line)))
            return out
        if isinstance(e, A.Ternary):
            out = []
            for st1 in self.assume(st.fork(), e.cond, True):
                out.extend(self.eval(e.then, st1))
            for st2 in self.assume(st.fork(), e.cond, False):
                out.extend(self.eval(e.other, st2))
            if not out:   # condition decided both ways infeasible? keep going
                raise Unsupported(e.line, "infeasible ternary")
            return out
        if isinstance(e, A.Cast):
            out = []
            for st1, v in self.eval(e.operand, st):
                out.append((st1, self._cast(v, e.ctype, e.line)))
            return out
        if isinstance(e, A.Sizeof):
            key = e.arg if e.arg in _TYPE_SIZES else st.types.get(e.arg, "")
            sz = _TYPE_SIZES.get(key)
            if sz is None:
                raise Unsupported(e.line, f"sizeof({e.arg})")
            return [(st, IntV(Poly.const(sz)))]
        raise Unsupported(getattr(e, "line", 0),
                          f"unsupported expression {type(e).__name__}")

    def _eval_member(self, e: A.Expr, st: State) -> List[Tuple[State, Val]]:
        outs = []
        for st1, base in self.eval(e.base, st):
            if not isinstance(base, ViewV):
                raise Unsupported(e.line, f"member access .{e.name} on "
                                  f"{type(base).__name__}")
            ft = self.field_types.get(base.contract.name, {}).get(e.name)
            if ft is None:
                if e.name in base.contract.nested:
                    sub = self.views[base.contract.nested[e.name]]
                    outs.append((st1, ViewV(base.prefix + e.name + ".", sub)))
                    continue
                raise Unsupported(e.line, f"unknown view field {e.name}")
            kind, esize, fkind = ft
            full = base.prefix + e.name
            if kind == "int":
                c = self.pinned.get(full)
                poly = Poly.const(c) if c is not None else Poly.sym(full)
                outs.append((st1, IntV(poly)))
            else:
                outs.append((st1, PtrV(full, Poly.const(0))))
        return outs

    def _subscript_read(self, st: State, base: Val, idx: Val,
                        line: int) -> Tuple[State, Val]:
        if isinstance(base, TableV):
            if not isinstance(idx, IntV):
                raise Unsupported(line, "table subscript")
            return st, TableRowV(base.name, base.sem, idx)
        if not isinstance(base, PtrV):
            raise Unsupported(line, f"subscript on {type(base).__name__}")
        off = base.off + _p(idx, line)
        ptr = PtrV(base.array, off, base.packed)
        ptr.meta = getattr(base, "meta", None)
        self.check_ptr(st, ptr, 1, line, write=False)
        return st, self._load_elem(st, ptr, line)

    def _load_elem(self, st: State, ptr: PtrV, line: int) -> Val:
        """Value of a 1-element load at ptr (bounds already checked)."""
        meta = getattr(ptr, "meta", None)
        if meta is not None and meta[0] == "tablerow":
            return self._setbit_value(st, meta[2], line)
        info = self.arrays.get(ptr.array)
        if info is not None and info.fkind == "float":
            return FloatV()
        val = IntV(Poly.atom(ArrElem(ptr.array, ptr.off)))
        if ptr.array in self.mask_words:
            val.tag = ("maskword", ptr.array, ptr.off)
        if info is not None and info.kind in ("view", "param"):
            self._group_hook(st, ptr.array, ptr.off)
            self._span_hook(st, ptr.array, ptr.off)
        return val

    def _group_hook(self, st: State, arr: str, idx: Poly) -> None:
        """group(perm, gb, grl, rowptr): reading grl[g] records g; reading
        perm[p] with a provable gb[g] <= p < gb[g+1] adds
        rowptr[perm[p]+1] == rowptr[perm[p]] + grl[g]."""
        for perm, gb, grl, rowptr in self.groups:
            if arr == grl:
                if all(idx.key() != k for _a, g in st.grl_seen
                       for k in [g.key()]):
                    st.grl_seen.append((grl, idx))
            elif arr == perm:
                pe = Poly.atom(ArrElem(perm, idx))
                lane_in = LANE.key() in {
                    a.key() if isinstance(a, Sym) else None
                    for a in idx.atoms()}
                db = self.lane_db(st, 8, None) if lane_in else st.db
                pr = Prover(db)
                for _grl_arr, g in st.grl_seen:
                    lo = Poly.atom(ArrElem(gb, g))
                    hi = Poly.atom(ArrElem(gb, g + 1))
                    if pr.prove_ge0(idx - lo) and pr.prove_lt(idx, hi):
                        rp0 = Poly.atom(ArrElem(rowptr, pe))
                        rp1 = Poly.atom(ArrElem(rowptr, pe + 1))
                        ln = Poly.atom(ArrElem(grl, g))
                        st.db.add_eq(rp1, rp0 + ln)

    def _span_hook(self, st: State, arr: str, idx: Poly,
                   width: Optional[int] = None,
                   bound: Optional[Poly] = None) -> None:
        """span(off, base, seg, B): reading base[i] records i; reading
        off[k] with a provable seg[i] <= k < seg[i+1] establishes
        0 <= base[i] + off[k] < B for the recorded segment i. `width`
        and `bound` carry the lane count / mask bound of a vector load
        whose index poly contains LANE."""
        for off_arr, base_arr, seg_arr, b in self.spans:
            if arr == base_arr:
                if all(idx.key() != g.key() for _a, g in st.base_seen):
                    st.base_seen.append((base_arr, idx))
            elif arr == off_arr:
                db = st.db if width is None else self.lane_db(st, width,
                                                              bound)
                pr = Prover(db)
                for b_arr, i in st.base_seen:
                    if b_arr != base_arr:
                        continue
                    lo = Poly.atom(ArrElem(seg_arr, i))
                    hi = Poly.atom(ArrElem(seg_arr, i + 1))
                    if pr.prove_ge0(idx - lo) and pr.prove_lt(idx, hi):
                        s = Poly.atom(ArrElem(base_arr, i)) + \
                            Poly.atom(ArrElem(off_arr, idx))
                        st.db.add_ge0(s)
                        st.db.add_lt(s, b)

    def _setbit_value(self, st: State, word: IntV, line: int) -> Val:
        """Reading a set-bit-position table row: fresh value in [0,8) plus
        the maskbit guarantee if the row selector is a genuine mask byte."""
        s = self.fresh("setbit")
        st.db.add_ge0(s)
        st.db.add_lt(s, Poly.const(8))
        self._maskbit_facts(st, word, s)
        return IntV(s, tag=("setbit", word))

    def _maskbit_facts(self, st: State, word: IntV, s: Poly) -> None:
        tag = word.tag
        if tag is None:
            return
        if tag[0] in ("maskbyte", "maskbyte-sub"):
            marr, midx = tag[1], tag[2]
            for m_arr, c_arr, bound in self.maskbits:
                if m_arr == marr:
                    col = Poly.atom(ArrElem(c_arr, midx))
                    st.db.add_ge0(col + s)
                    st.db.add_lt(col + s, bound)

    # -- operators -----------------------------------------------------------
    def _binop(self, st: State, op: str, a: Val, b: Val, line: int) -> Val:
        if isinstance(a, PtrV) and isinstance(b, IntV) and op in ("+", "-"):
            d = b.poly if op == "+" else -b.poly
            newoff = a.off + d
            packed = a.packed
            if (packed is None and a.array in self.packed_arrays
                    and op == "+" and self._is_ptr_anchor(b.poly)):
                packed = PackedState(pos=newoff)
            out = PtrV(a.array, newoff, packed)
            out.meta = getattr(a, "meta", None)
            return out
        if isinstance(b, PtrV) and isinstance(a, IntV) and op == "+":
            return self._binop(st, op, b, a, line)
        if _is_float(a) or _is_float(b):
            return FloatV()
        if isinstance(a, VecV) and isinstance(b, IntV):
            if op in ("+", "-"):
                d = b.poly if op == "+" else -b.poly
                return VecV(a.lane + d, a.width, a.esize)
        if not isinstance(a, IntV) or not isinstance(b, IntV):
            raise Unsupported(line, f"binop {op} on "
                              f"{type(a).__name__}/{type(b).__name__}")
        pa, pb = a.poly, b.poly
        if op == "+":
            return IntV(pa + pb)
        if op == "-":
            if a.tag and a.tag[0] == "pow2" and pb.is_const() \
                    and pb.const_value() == 1:
                return IntV(pa - 1, tag=("pow2m1", a.tag[1]))
            return IntV(pa - pb)
        if op == "*":
            return IntV(pa * pb)
        if op == "/":
            return IntV(pdiv(pa, pb))
        if op == "%":
            return IntV(pmod(pa, pb))
        if op == "<<":
            self._check_shift(st, a, pb, line)
            if pa.is_const() and pb.is_const():
                return IntV(Poly.const(pa.const_value() << pb.const_value()))
            if pa.is_const() and pa.const_value() == 1:
                return IntV(Poly.atom(OpTerm("shl", (pa, pb))),
                            tag=("pow2", pb))
            return IntV(Poly.atom(OpTerm("shl", (pa, pb))))
        if op == ">>":
            self._check_shift(st, a, pb, line)
            out = IntV(Poly.atom(OpTerm("shr", (pa, pb))))
            if a.tag and a.tag[0] == "maskword":
                out.tag = ("shr", a.tag[1], a.tag[2], pb)
            return out
        if op == "&":
            if pb.is_const() and pb.const_value() == 0xFF and a.tag:
                if a.tag[0] == "shr":
                    v = self._fresh_byte(st)
                    return IntV(v, tag=("maskbyte", a.tag[1], a.tag[2],
                                        a.tag[3]))
                if a.tag[0] == "maskword":
                    v = self._fresh_byte(st)
                    return IntV(v, tag=("maskbyte", a.tag[1], a.tag[2],
                                        Poly.const(0)))
            if a.tag and a.tag[0] in ("maskbyte", "maskbyte-sub"):
                # bits &= bits - 1 and friends: result is a submask.
                v = self.fresh("sub")
                st.db.add_ge0(v)
                st.db.add_le(v, pa)
                return IntV(v, tag=("maskbyte-sub",) + tuple(a.tag[1:]))
            return IntV(self.fresh("and"))
        if op in ("|", "^"):
            return IntV(self.fresh("bit"))
        raise Unsupported(line, f"operator {op}")

    def _fresh_byte(self, st: State) -> Poly:
        v = self.fresh("byte")
        st.db.add_ge0(v)
        st.db.add_le(v, Poly.const(255))
        return v

    def _is_ptr_anchor(self, p: Poly) -> bool:
        monos = list(p.monomials())
        if p.coeff(()) != 0 or len(monos) != 1 or p.coeff(monos[0]) != 1:
            return False
        m = monos[0]
        return len(m) == 1 and isinstance(m[0][0], ArrElem)

    def _check_shift(self, st: State, word: IntV, sh: Poly, line: int):
        limit = 31
        if word.tag and word.tag[0] == "maskword":
            info = self.arrays.get(word.tag[1])
            if info is not None and info.esize == 8:
                limit = 63
        pr = Prover(st.db)
        if not (pr.prove_ge0(sh) and pr.prove_le(sh, Poly.const(limit))):
            self.fail(line, "shift-range",
                      f"shift amount {sh} not provably in [0, {limit}]")

    def _cast(self, v: Val, ctype: str, line: int) -> Val:
        if "__mmask" in ctype:
            width = 16 if "16" in ctype else 8
            return self._to_mask(v, width)
        return v

    def _to_mask(self, v: Val, width: int) -> MaskV:
        if isinstance(v, MaskV):
            return v
        if isinstance(v, IntV):
            if v.tag and v.tag[0] == "pow2m1":
                return MaskV("lanelt", width, expr=v.tag[1], prov="lanecount")
            if v.tag and v.tag[0] in ("shr", "maskbyte", "maskbyte-sub"):
                return MaskV("bits", width, word=v, prov="masktable")
            if v.poly.is_const():
                return MaskV("const", width, const=v.poly.const_value(),
                             prov="constdecl")
        return MaskV("unknown", width)

    def _mask_of(self, v: Val, width: int, line: int,
                 what: str) -> MaskV:
        m = self._to_mask(v, width) if not isinstance(v, MaskV) else v
        if m.prov == "unknown":
            self.fail(line, "mask-provenance",
                      f"{what}: mask has no provable provenance "
                      "(not derived from lane counts or mask tables)")
        return m

    def _lane_bound(self, m: MaskV) -> Optional[Poly]:
        """Upper bound B such that all ON lanes are < B (None = width)."""
        if m.kind == "lanelt":
            return m.expr
        if m.kind == "const":
            return Poly.const(m.const.bit_length())
        return None

    # -- unary ---------------------------------------------------------------
    def _eval_unary(self, e: A.Unary, st: State) -> List[Tuple[State, Val]]:
        if e.op in ("++", "--"):
            if not isinstance(e.operand, A.Ident):
                raise Unsupported(e.line, f"{e.op} on non-variable")
            name = e.operand.name
            old = st.env.get(name)
            if old is None:
                raise Unsupported(e.line, f"{e.op} on unknown {name}")
            delta = 1 if e.op == "++" else -1
            if isinstance(old, IntV):
                new = IntV(old.poly + delta)
            elif isinstance(old, PtrV):
                new = self._advance_ptr(st, old, IntV(Poly.const(delta)),
                                        e.line)
            else:
                raise Unsupported(e.line, f"{e.op} on {type(old).__name__}")
            st.env[name] = new
            return [(st, new if not e.postfix else old)]
        out = []
        for st1, v in self.eval(e.operand, st):
            if e.op == "-":
                out.append((st1, FloatV() if _is_float(v)
                            else IntV(-_p(v, e.line))))
            elif e.op == "*":
                if not isinstance(v, PtrV):
                    raise Unsupported(e.line, "deref of non-pointer")
                self.check_ptr(st1, v, 1, e.line, write=False)
                out.append((st1, self._load_elem(st1, v, e.line)))
            elif e.op in ("~", "!"):
                out.append((st1, IntV(self.fresh("un"))))
            else:
                raise Unsupported(e.line, f"unary {e.op}")
        return out

    def _advance_ptr(self, st: State, p: PtrV, amt: IntV, line: int) -> PtrV:
        """p += amt, enforcing packed-stream advance discipline."""
        newoff = p.off + amt.poly
        if p.packed is None:
            out = PtrV(p.array, newoff)
            out.meta = getattr(p, "meta", None)
            return out
        ps = p.packed
        if ps.win_start is None:
            return PtrV(p.array, newoff, PackedState(pos=newoff))
        endp = ps.win_start + ps.win_budget
        if Prover(st.db).prove_eq(newoff, endp):
            return PtrV(p.array, newoff, PackedState(pos=newoff))
        if Prover(st.db).prove_le(newoff, endp):
            # partial advance inside the window (scalar *v++ consumption)
            return PtrV(p.array, newoff, PackedState(
                pos=newoff, win_start=ps.win_start,
                win_budget=ps.win_budget, win_tag=ps.win_tag))
        self.fail(line, "packed-stream",
                  f"pointer into {p.array} advanced past the mask-byte "
                  f"budget (to {newoff}, window ends at {endp})")
        return PtrV(p.array, newoff, PackedState(pos=newoff))

    # -- calls ---------------------------------------------------------------
    def _eval_args(self, st: State,
                   exprs) -> List[Tuple[State, List[Val]]]:
        outs: List[Tuple[State, List[Val]]] = [(st, [])]
        for ex in exprs:
            nxt = []
            for s, vals in outs:
                for s2, v in self.eval(ex, s):
                    nxt.append((s2, vals + [v]))
            outs = nxt
        return outs

    def _eval_call(self, e: A.Call, st: State) -> List[Tuple[State, Val]]:
        name = e.fn
        if e.method_of is not None:
            if name == "data":
                out = []
                for st1, recv in self.eval(e.method_of, st):
                    if not isinstance(recv, TableRowV):
                        raise Unsupported(e.line, ".data() on non-table-row")
                    arr = "@" + recv.table
                    self.arrays.setdefault(arr, ArrayInfo(
                        arr, Poly.const(8), 1, "table"))
                    p = PtrV(arr, Poly.const(0))
                    p.meta = ("tablerow", recv.sem, recv.word)
                    out.append((st1, p))
                return out
            raise Unsupported(e.line, f"method call .{name}()")
        if name == "_mm_prefetch":          # hint only; never faults
            return [(st, NullV())]
        if name in ("std::memcpy", "memcpy"):
            return self._memcpy(e, st)
        if name.startswith(("_mm512_", "_mm256_", "_mm_")):
            outs = []
            for st1, vals in self._eval_args(st, e.args):
                outs.append((st1, self._intrinsic(st1, name, vals, e.line)))
            return outs
        if name in ("std::popcount", "std::countr_zero"):
            outs = []
            for st1, (v,) in self._eval_args(st, e.args):
                outs.append((st1, self._bit_builtin(st1, name, v, e.line)))
            return outs
        if name in ("std::min", "std::max"):
            op = "min" if name.endswith("min") else "max"
            outs = []
            for st1, (a, b) in self._eval_args(st, e.args):
                r = Poly.atom(OpTerm(op, (_p(a, e.line), _p(b, e.line))))
                outs.append((st1, IntV(r)))
            return outs
        fn = self.funcs.get(name)
        if fn is not None and fn.body is not None:
            return self._inline_call(e, fn, st)
        raise Unsupported(e.line, f"call to unknown function {name!r}")

    def _memcpy(self, e: A.Call, st: State) -> List[Tuple[State, Val]]:
        dst, src, size = e.args
        if not (isinstance(dst, A.Unary) and dst.op == "&"
                and isinstance(dst.operand, A.Ident)):
            raise Unsupported(e.line, "memcpy to non-&var destination")
        target = dst.operand.name
        outs = []
        for st1, (sv, zv) in self._eval_args(st, [src, size]):
            if not isinstance(sv, PtrV):
                raise Unsupported(e.line, "memcpy from non-pointer")
            nbytes = _p(zv, e.line)
            if not nbytes.is_const():
                raise Unsupported(e.line, "memcpy with non-constant size")
            info = self.arrays.get(sv.array)
            esize = info.esize if info else 1
            width = max(1, nbytes.const_value() // esize)
            self.check_ptr(st1, sv, width, e.line, write=False)
            word = IntV(self.fresh("mem"))
            meta = getattr(sv, "meta", None)
            if meta is not None and meta[0] == "tablerow":
                word.tag = ("packedbytes", meta[2], sv.off, width)
            st1.env[target] = word
            outs.append((st1, NullV()))
        return outs

    def _bit_builtin(self, st: State, name: str, v: Val,
                     line: int) -> Val:
        if isinstance(v, MaskV):
            if v.kind == "bits" and v.word is not None:
                v = v.word
            elif v.kind == "lanelt" and v.expr is not None:
                v = IntV(v.expr) if name.endswith("popcount") else \
                    IntV(Poly.const(0))
                if name.endswith("popcount"):
                    return v
        if not isinstance(v, IntV):
            raise Unsupported(line, f"{name} on {type(v).__name__}")
        if name.endswith("popcount"):
            out = IntV(Poly.atom(OpTerm("popcount", (v.poly,))),
                       tag=("popcount", v))
            st.db.add_ge0(out.poly)
            st.db.add_le(out.poly, Poly.const(8))
            self._open_windows(st, out)
            return out
        # countr_zero of a mask byte: position of the lowest set bit.
        return self._setbit_value(st, v, line)

    def _open_windows(self, st: State, cnt: IntV) -> None:
        """A popcount of a mask byte budgets the packed streams: any packed
        pointer without an open window gets [off, off+cnt)."""
        if not (cnt.tag and cnt.tag[0] == "popcount"
                and cnt.tag[1].tag and str(cnt.tag[1].tag[0]).startswith(
                    ("maskbyte", "shr", "maskword"))):
            return
        for nm, v in list(st.env.items()):
            if isinstance(v, PtrV) and v.packed is not None \
                    and v.packed.win_start is None:
                st.env[nm] = PtrV(v.array, v.off, PackedState(
                    pos=v.off, win_start=v.off, win_budget=cnt.poly,
                    win_tag=("cnt",)))

    def _inline_call(self, e: A.Call, fn: A.Func,
                     st: State) -> List[Tuple[State, Val]]:
        if self._depth >= MAX_INLINE_DEPTH:
            raise Unsupported(e.line, f"inline depth exceeded at {fn.name}")
        outs = []
        for st1, vals in self._eval_args(st, e.args):
            if len(vals) != len(fn.params):
                raise Unsupported(e.line, f"arity mismatch calling {fn.name}")
            callee_env: Dict[str, Val] = {}
            for (kind, tname), text in zip(fn.tparams, e.targs):
                callee_env[tname] = self._resolve_targ(text, st1, e.line)
            if len(e.targs) not in (0, len(fn.tparams)):
                raise Unsupported(e.line, "template argument mismatch")
            for p, v in zip(fn.params, vals):
                callee_env[p.name] = v
            for bname, bval in st1.env.items():
                if isinstance(bval, TableV):
                    callee_env.setdefault(bname, bval)
            for bname, bval in _BUILTIN_INTS.items():
                callee_env.setdefault(bname, IntV(Poly.const(bval)))
            callee = State(callee_env, st1.db)
            callee.grl_seen = list(st1.grl_seen)
            callee.base_seen = list(st1.base_seen)
            self._depth += 1
            try:
                ends = self.exec_block(fn.body, [callee])
            finally:
                self._depth -= 1
            for es in ends:
                ret = State(dict(st1.env), es.db)
                ret.grl_seen = list(es.grl_seen)
                ret.base_seen = list(es.base_seen)
                outs.append((ret, es.retval if es.retval is not None
                             else NullV()))
        return outs

    def _resolve_targ(self, text: str, st: State, line: int) -> Val:
        t = text.strip()
        if t == "true":
            return IntV(Poly.const(1))
        if t == "false":
            return IntV(Poly.const(0))
        try:
            return IntV(Poly.const(int(t, 0)))
        except ValueError:
            pass
        if t in st.env:
            return st.env[t]
        if t in _BUILTIN_INTS:
            return IntV(Poly.const(_BUILTIN_INTS[t]))
        raise Unsupported(line, f"cannot resolve template argument {t!r}")

    # -- SIMD intrinsics -----------------------------------------------------
    _FLOAT_SHUFFLES = (
        "castpd", "insertf128", "extractf128", "hadd_pd", "unpacklo_pd",
        "unpackhi_pd", "add_sd", "set_pd", "permute", "shuffle_pd",
        "blend_pd", "broadcast",
    )

    def _intrinsic(self, st: State, name: str, vals: List[Val],
                   line: int) -> Val:
        bits = 512 if name.startswith("_mm512_") else \
            256 if name.startswith("_mm256_") else 128
        op = name.split("_", 2)[2]
        wd = bits // 64           # double lanes
        wi = bits // 32           # int32 lanes

        if op == "setzero_pd":
            return FloatVecV(wd)
        if op == "set1_epi32":
            return VecV(_p(vals[0], line), wi, 4)
        if op == "reduce_add_pd" or op == "cvtsd_f64":
            return FloatV()
        if any(s in op for s in self._FLOAT_SHUFFLES):
            return FloatVecV(wd)
        if op in ("fmadd_pd", "add_pd", "mul_pd", "sub_pd"):
            return FloatVecV(wd)
        if op == "mask3_fmadd_pd":
            self._mask_of(vals[3], wd, line, name)
            return FloatVecV(wd)
        if op == "maskz_mul_pd":
            self._mask_of(vals[0], wd, line, name)
            return FloatVecV(wd)
        if op in ("loadu_pd", "load_pd"):
            self._mem(st, vals[0], wd, line, write=False, what=name)
            return FloatVecV(wd)
        if op in ("storeu_pd", "store_pd"):
            self._mem(st, vals[0], wd, line, write=True, what=name)
            return NullV()
        if op == "mask_storeu_pd":
            m = self._mask_of(vals[1], wd, line, name)
            self._mem(st, vals[0], wd, line, write=True, mask=m, what=name)
            return NullV()
        if op == "maskz_loadu_pd":
            m = self._mask_of(vals[0], wd, line, name)
            self._mem(st, vals[1], wd, line, write=False, mask=m, what=name)
            return FloatVecV(wd)
        if op == "maskz_expandloadu_pd":
            m = self._mask_of(vals[0], wd, line, name)
            self._expandload(st, m, vals[1], line)
            return FloatVecV(wd)
        if op in ("loadu_si256", "loadu_si128"):
            return self._int_vload(st, vals[0], bits, line, None, name)
        if op == "loadl_epi64":
            return self._int_vload(st, vals[0], 64, line, None, name)
        if op == "maskz_loadu_epi32":
            m = self._mask_of(vals[0], wi, line, name)
            return self._int_vload(st, vals[1], bits, line, m, name)
        if op == "maskz_loadu_epi16":
            m = self._mask_of(vals[0], bits // 16, line, name)
            return self._int_vload(st, vals[1], bits, line, m, name)
        if op == "cvtepu16_epi32":
            v = vals[0]
            if not isinstance(v, VecV):
                raise Unsupported(line, f"{name} on non-vector")
            # Zero-extend the low `wi` 16-bit lanes; lane polys carry over.
            return VecV(v.lane, min(v.width, wi), 4, v.tag)
        if op in ("loadu_ps", "load_ps"):
            self._mem(st, vals[0], wi, line, write=False, what=name)
            return FloatVecV(wi)
        if op == "maskz_loadu_ps":
            m = self._mask_of(vals[0], wi, line, name)
            self._mem(st, vals[1], wi, line, write=False, mask=m, what=name)
            return FloatVecV(wi)
        if op == "maskz_expandloadu_ps":
            m = self._mask_of(vals[0], wi, line, name)
            self._expandload(st, m, vals[1], line)
            return FloatVecV(wi)
        if op == "cvtps_pd":
            return FloatVecV(wd)
        if op == "cvtsi32_si128":
            return vals[0]                      # keep the tag flowing
        if op == "cvtepu8_epi32":
            return self._setbit_vec(st, vals[0], line)
        if op == "add_epi32":
            a, b = vals
            if isinstance(a, VecV) and isinstance(b, VecV):
                return VecV(a.lane + b.lane, a.width, a.esize, a.tag)
            raise Unsupported(line, f"{name} on non-vectors")
        if op == "i32gather_pd":
            base, idx = self._base_idx(vals[:2], line, name)
            self._gather(st, base, idx, wd, line, mask=None, write=False,
                         what=name)
            return FloatVecV(wd)
        if op == "mask_i32gather_pd":
            m = self._mask_of(vals[1], wd, line, name)
            base, idx = self._base_idx(vals[2:4], line, name)
            self._gather(st, base, idx, wd, line, mask=m, write=False,
                         what=name)
            return FloatVecV(wd)
        if op == "i32gather_epi32":
            base, idx = self._base_idx(vals[:2], line, name)
            self._gather(st, base, idx, wi, line, mask=None, write=False,
                         what=name)
            return VecV(Poly.atom(ArrElem(base.array, base.off + idx.lane)),
                        idx.width, 4)
        if op == "i32scatter_pd":
            base = vals[0]
            idx = vals[1]
            if not isinstance(base, PtrV) or not isinstance(idx, VecV):
                raise Unsupported(line, f"{name} operands")
            self._gather(st, base, idx, wd, line, mask=None, write=True,
                         what=name)
            return NullV()
        raise Unsupported(line, f"unmodeled intrinsic {name}")

    def _mem(self, st: State, ptr: Val, width: int, line: int, write: bool,
             mask: Optional[MaskV] = None, what: str = "access") -> None:
        if not isinstance(ptr, PtrV):
            raise Unsupported(line, f"{what}: not a pointer")
        bound = self._lane_bound(mask) if mask is not None else None
        if mask is None or bound is None:
            self.check_ptr(st, ptr, width, line, write, what=what)
        else:
            self.check_ptr(st, ptr, width, line, write, lane_bound=bound,
                           what=what)

    def _int_vload(self, st: State, ptr: Val, bits: int, line: int,
                   mask: Optional[MaskV], what: str) -> VecV:
        if not isinstance(ptr, PtrV):
            raise Unsupported(line, f"{what}: not a pointer")
        info = self.arrays.get(ptr.array)
        esz = info.esize if info is not None else 4
        width = max(1, bits // (8 * esz))   # lanes in array-element units
        bound = self._lane_bound(mask) if mask is not None else None
        self._mem(st, ptr, width, line, write=False, mask=mask, what=what)
        lane = Poly.atom(ArrElem(ptr.array, ptr.off + Poly.atom(LANE)))
        v = VecV(lane, width, esz)
        if bound is not None:
            v.tag = ("maskedload", bound)
        self._group_hook(st, ptr.array, ptr.off + Poly.atom(LANE))
        self._span_hook(st, ptr.array, ptr.off + Poly.atom(LANE), width,
                        bound)
        return v

    def _base_idx(self, two: List[Val], line: int,
                  what: str) -> Tuple[PtrV, VecV]:
        a, b = two
        if isinstance(a, PtrV) and isinstance(b, VecV):
            return a, b
        if isinstance(a, VecV) and isinstance(b, PtrV):
            return b, a
        raise Unsupported(line, f"{what}: expected pointer+index vector")

    def _gather(self, st: State, base: PtrV, idx: VecV, width: int,
                line: int, mask: Optional[MaskV], write: bool,
                what: str) -> None:
        bound = self._lane_bound(mask) if mask is not None else None
        if idx.tag and idx.tag[0] == "maskedload":
            src_bound = idx.tag[1]
            covered = bound is not None and \
                Prover(st.db).prove_le(bound, src_bound)
            if not covered:
                self.fail(line, "tail-mask",
                          f"{what}: consumes lanes beyond the masked index "
                          f"load's bound {src_bound}")
                return
        self.check_lane_read(st, base, idx.lane, width, line, write,
                             bound, what)

    def _expandload(self, st: State, m: MaskV, ptr: Val, line: int) -> None:
        if not isinstance(ptr, PtrV):
            raise Unsupported(line, "expandload of non-pointer")
        if m.kind != "bits" or m.word is None:
            self.fail(line, "mask-provenance",
                      "expandload mask is not a mask-table byte")
            return
        budget = Poly.atom(OpTerm("popcount", (m.word.poly,)))
        if ptr.packed is None:
            if ptr.array in self.packed_arrays:
                ps = PackedState(pos=ptr.off)
            else:
                self.check_ptr(st, ptr, 1, line, write=False)
                return
        else:
            ps = ptr.packed
        if ps.win_start is not None:
            same = Prover(st.db).prove_eq(ptr.off, ps.win_start) and \
                ps.win_budget is not None and \
                (ps.win_budget - budget).is_const() and \
                (ps.win_budget - budget).const_value() == 0
            if not same:
                self.fail(line, "packed-stream",
                          f"expandload from {ptr.array} while the previous "
                          "mask-byte budget is still unconsumed")
                return
        newp = PtrV(ptr.array, ptr.off, PackedState(
            pos=ptr.off, win_start=ptr.off, win_budget=budget,
            win_tag=("expand", m.word.poly.key())))
        self._rebind_ptr(st, ptr, newp)
        info = self.arrays.get(ptr.array)
        if info is not None:
            self.record(info, info.esize, False)

    def _setbit_vec(self, st: State, v: Val, line: int) -> VecV:
        """cvtepu8_epi32 of memcpy'd offset-table bytes: one shared symbol
        in [0,8) carrying the maskbit guarantee covers every lane."""
        if not (isinstance(v, IntV) and v.tag
                and v.tag[0] == "packedbytes"):
            raise Unsupported(line, "cvtepu8_epi32 of unknown bytes")
        word = v.tag[1]
        s = self.fresh("setbit")
        st.db.add_ge0(s)
        st.db.add_lt(s, Poly.const(8))
        self._maskbit_facts(st, word, s)
        return VecV(s, 4, 4)

    def _rebind_ptr(self, st: State, old: PtrV, new: PtrV) -> None:
        for k, v in list(st.env.items()):
            if v is old:
                st.env[k] = new

    # -- statements ----------------------------------------------------------
    _FLOAT_TYPES = ("Scalar", "double", "float", "__m512d", "__m256d",
                    "__m128d")

    def exec_block(self, block, states: List[State]) -> List[State]:
        stmts = block.stmts if isinstance(block, A.Block) else [block]
        for s in stmts:
            nxt: List[State] = []
            for st in states:
                if st.flow is not None:
                    nxt.append(st)
                else:
                    nxt.extend(self.exec_stmt(s, st))
            if len(nxt) > MAX_STATES:
                raise Unsupported(getattr(s, "line", 0),
                                  f"path explosion ({len(nxt)} states)")
            states = nxt
        return states

    def exec_stmt(self, s: A.Stmt, st: State) -> List[State]:
        if isinstance(s, A.Block):
            return self.exec_block(s, [st])
        if isinstance(s, A.Decl):
            return self._exec_decl(s, st)
        if isinstance(s, A.Assign):
            return self._exec_assign(s, st)
        if isinstance(s, A.ExprStmt):
            return [p[0] for p in self.eval(s.expr, st)]
        if isinstance(s, A.If):
            outs = []
            for st1 in self.assume(st.fork(), s.cond, True):
                outs.extend(self.exec_stmt(s.then, st1))
            for st2 in self.assume(st.fork(), s.cond, False):
                if s.other is not None:
                    outs.extend(self.exec_stmt(s.other, st2))
                else:
                    outs.append(st2)
            return outs
        if isinstance(s, A.For):
            pre = [st] if s.init is None else self.exec_stmt(s.init, st)
            outs = []
            for st1 in pre:
                outs.extend(self._exec_loop(st1, s.cond, s.step, s.body,
                                            s.line))
            return outs
        if isinstance(s, A.While):
            wb = self._while_bits_info(s)
            if wb is not None:
                return self._exec_while_bits(st, s, wb)
            return self._exec_loop(st, s.cond, None, s.body, s.line)
        if isinstance(s, A.Switch):
            return self._exec_switch(s, st)
        if isinstance(s, A.Return):
            if s.value is not None:
                outs = []
                for st1, v in self.eval(s.value, st):
                    st1.flow = "return"
                    st1.retval = v
                    outs.append(st1)
                return outs
            st.flow = "return"
            return [st]
        if isinstance(s, A.Jump):
            st.flow = s.kind
            return [st]
        raise Unsupported(s.line, f"unsupported statement "
                          f"{type(s).__name__}")

    def _base_type(self, dtype: str) -> str:
        t = dtype.replace("const", "").replace("&", "").replace("*", "")
        t = t.replace("constexpr", "").strip()
        return t.split()[-1] if t else ""

    def _exec_decl(self, s: A.Decl, st: State) -> List[State]:
        bt = self._base_type(s.dtype)
        st.types[s.name] = bt
        if s.array_size is not None:
            outs = []
            for st1, sz in self.eval(s.array_size, st):
                arr = f"{s.name}@{s.line}#{next(self._fresh)}"
                esize = _TYPE_SIZES.get(bt, 8)
                fkind = "float" if bt in self._FLOAT_TYPES else "int"
                self.arrays[arr] = ArrayInfo(arr, _p(sz, s.line), esize,
                                             "local", fkind=fkind)
                st1.env[s.name] = PtrV(arr, Poly.const(0))
                outs.append(st1)
            return outs
        if s.init is None:
            if bt in self._FLOAT_TYPES:
                st.env[s.name] = FloatV()
            else:
                st.env[s.name] = IntV(self.fresh(s.name))
            return [st]
        outs = []
        for st1, v in self.eval(s.init, st):
            st1.env[s.name] = v
            outs.append(st1)
        return outs

    def _exec_assign(self, s: A.Assign, st: State) -> List[State]:
        t = s.target
        if isinstance(t, A.Ident):
            cur = st.env.get(t.name)
            if s.op != "=" and isinstance(cur, PtrV) \
                    and s.op in ("+=", "-="):
                outs = []
                for st1, amt in self.eval(s.value, st):
                    iv = amt if s.op == "+=" else \
                        IntV(-_p(amt, s.line))
                    st1.env[t.name] = self._advance_ptr(
                        st1, st1.env[t.name], iv, s.line)
                    outs.append(st1)
                return outs
            rhs = s.value if s.op == "=" else A.Binary(
                line=s.line, op=s.op[:-1], lhs=t, rhs=s.value)
            outs = []
            for st1, v in self.eval(rhs, st):
                st1.env[t.name] = v
                outs.append(st1)
            return outs
        if isinstance(t, A.Subscript):
            outs = []
            for st1, base in self.eval(t.base, st):
                for st2, idx in self.eval(t.index, st1):
                    if not isinstance(base, PtrV):
                        raise Unsupported(s.line, "assign to non-pointer "
                                          "subscript")
                    ptr = PtrV(base.array, base.off + _p(idx, s.line),
                               base.packed)
                    if s.op != "=":
                        self.check_ptr(st2, ptr, 1, s.line, write=False)
                    self.check_ptr(st2, ptr, 1, s.line, write=True)
                    for st3, _v in self.eval(s.value, st2):
                        outs.append(st3)
            return outs
        if isinstance(t, A.Unary) and t.op == "*":
            outs = []
            for st1, ptr in self.eval(t.operand, st):
                if not isinstance(ptr, PtrV):
                    raise Unsupported(s.line, "assign through non-pointer")
                if s.op != "=":
                    self.check_ptr(st1, ptr, 1, s.line, write=False)
                self.check_ptr(st1, ptr, 1, s.line, write=True)
                for st2, _v in self.eval(s.value, st1):
                    outs.append(st2)
            return outs
        raise Unsupported(s.line, "unsupported assignment target")

    # -- conditions ----------------------------------------------------------
    def assume(self, st: State, e: A.Expr, truth: bool) -> List[State]:
        if isinstance(e, A.Unary) and e.op == "!":
            return self.assume(st, e.operand, not truth)
        if isinstance(e, A.Binary) and e.op in ("&&", "||"):
            is_and = (e.op == "&&")
            if is_and == truth:
                outs = []
                for s1 in self.assume(st, e.lhs, truth):
                    outs.extend(self.assume(s1, e.rhs, truth))
                return outs
            outs = list(self.assume(st.fork(), e.lhs, not is_and))
            for s1 in self.assume(st, e.lhs, is_and):
                outs.extend(self.assume(s1, e.rhs, not is_and))
            return outs
        if isinstance(e, A.Binary) and e.op in ("<", "<=", ">", ">=",
                                                "==", "!="):
            op, lhs, rhs = e.op, e.lhs, e.rhs
        else:
            op, lhs, rhs = "!=", e, A.Num(line=e.line, value=0)
        outs = []
        for st1, a in self.eval(lhs, st):
            for st2, b in self.eval(rhs, st1):
                outs.extend(self._assume_cmp(st2, op, a, b, truth, e.line))
        return outs

    _NEG = {"<": ">=", "<=": ">", ">": "<=", ">=": "<",
            "==": "!=", "!=": "=="}

    def _assume_cmp(self, st: State, op: str, a: Val, b: Val, truth: bool,
                    line: int) -> List[State]:
        if isinstance(a, NullV) or isinstance(b, NullV):
            return [st]
        if not isinstance(a, IntV) or not isinstance(b, IntV):
            return [st]
        if not truth:
            op = self._NEG[op]
        pa, pb = a.poly, b.poly
        d = pa - pb
        if d.is_const():
            c = d.const_value()
            holds = {"<": c < 0, "<=": c <= 0, ">": c > 0, ">=": c >= 0,
                     "==": c == 0, "!=": c != 0}[op]
            return [st] if holds else []
        if op == "<":
            st.db.add_lt(pa, pb)
        elif op == "<=":
            st.db.add_le(pa, pb)
        elif op == ">":
            st.db.add_lt(pb, pa)
        elif op == ">=":
            st.db.add_le(pb, pa)
        elif op == "==":
            st.db.add_eq(pa, pb)
        elif op == "!=":
            tagged = (a.tag and a.tag[0] in ("maskbyte", "maskbyte-sub",
                                             "popcount"))
            if pb.is_const() and pb.const_value() == 0 and tagged:
                st.db.add_le(Poly.const(1), pa)
            elif pa.is_const() and pa.const_value() == 0 and b.tag:
                st.db.add_le(Poly.const(1), pb)
        return [st]

    # -- loops ---------------------------------------------------------------
    def _walk_stmts(self, s):
        if s is None:
            return
        yield s
        if isinstance(s, A.Block):
            for c in s.stmts:
                yield from self._walk_stmts(c)
        elif isinstance(s, A.If):
            yield from self._walk_stmts(s.then)
            yield from self._walk_stmts(s.other)
        elif isinstance(s, (A.For, A.While)):
            if isinstance(s, A.For):
                yield from self._walk_stmts(s.init)
                yield from self._walk_stmts(s.step)
            yield from self._walk_stmts(s.body)
        elif isinstance(s, A.Switch):
            for c in s.cases:
                for b in c.body:
                    yield from self._walk_stmts(b)

    def _walk_exprs(self, e):
        if e is None or not isinstance(e, A.Expr):
            return
        yield e
        for f in ("base", "index", "lhs", "rhs", "operand", "cond", "then",
                  "other", "value", "method_of"):
            yield from self._walk_exprs(getattr(e, f, None))
        for a in getattr(e, "args", ()) or ():
            yield from self._walk_exprs(a)

    def _stmt_exprs(self, s):
        for f in ("init", "cond", "step", "expr", "value", "target",
                  "array_size"):
            v = getattr(s, f, None)
            if isinstance(v, A.Expr):
                yield from self._walk_exprs(v)

    def _assigned_names(self, body) -> set:
        names = set()
        for s in self._walk_stmts(body):
            if isinstance(s, A.Assign) and isinstance(s.target, A.Ident):
                names.add(s.target.name)
            if isinstance(s, A.Decl):
                names.add(s.name)
            for e in self._stmt_exprs(s):
                if isinstance(e, A.Unary) and e.op in ("++", "--") \
                        and isinstance(e.operand, A.Ident):
                    names.add(e.operand.name)
        return names

    def _idents(self, e) -> set:
        return {x.name for x in self._walk_exprs(e)
                if isinstance(x, A.Ident)}

    def _counter_info(self, step: A.Stmt):
        """(name, delta_expr, sign) from a loop step statement."""
        if isinstance(step, A.Assign) and isinstance(step.target, A.Ident):
            if step.op == "+=":
                return step.target.name, step.value, 1
            if step.op == "-=":
                return step.target.name, step.value, -1
            if step.op == "=" and isinstance(step.value, A.Binary) \
                    and step.value.op in ("+", "-") \
                    and isinstance(step.value.lhs, A.Ident) \
                    and step.value.lhs.name == step.target.name:
                return (step.target.name, step.value.rhs,
                        1 if step.value.op == "+" else -1)
        if isinstance(step, A.ExprStmt) and isinstance(step.expr, A.Unary) \
                and step.expr.op in ("++", "--") \
                and isinstance(step.expr.operand, A.Ident):
            return (step.expr.operand.name, A.Num(line=step.line, value=1),
                    1 if step.expr.op == "++" else -1)
        return None

    def _affine_delta(self, body, name: str) -> Optional[int]:
        """Constant per-iteration increment of `name` inside body, or None."""
        sites = []
        for s in self._walk_stmts(body):
            if isinstance(s, A.Assign) and isinstance(s.target, A.Ident) \
                    and s.target.name == name:
                sites.append(s)
            for e in self._stmt_exprs(s):
                if isinstance(e, A.Unary) and e.op in ("++", "--") \
                        and isinstance(e.operand, A.Ident) \
                        and e.operand.name == name:
                    sites.append(None)   # bare inc/dec: treat as non-affine
        if len(sites) != 1 or sites[0] is None:
            return None
        s = sites[0]
        if s.op in ("+=", "-=") and isinstance(s.value, A.Num):
            return s.value.value if s.op == "+=" else -s.value.value
        if s.op == "=" and isinstance(s.value, A.Binary) \
                and s.value.op in ("+", "-") \
                and isinstance(s.value.lhs, A.Ident) \
                and s.value.lhs.name == name \
                and isinstance(s.value.rhs, A.Num):
            return s.value.rhs.value if s.value.op == "+" \
                else -s.value.rhs.value
        if s.op == "=" and isinstance(s.value, A.Call) \
                and s.value.fn.endswith("add_epi32") \
                and len(s.value.args) == 2 \
                and isinstance(s.value.args[0], A.Ident) \
                and s.value.args[0].name == name \
                and isinstance(s.value.args[1], A.Call) \
                and s.value.args[1].fn.endswith("set1_epi32") \
                and isinstance(s.value.args[1].args[0], A.Num):
            return s.value.args[1].args[0].value
        return None

    def _havoc(self, st: State, v: Val) -> Val:
        if isinstance(v, IntV):
            return IntV(self.fresh("h"))
        if isinstance(v, PtrV):
            off = self.fresh("hp")
            st.db.add_ge0(off)
            packed = PackedState(pos=off) if v.packed is not None else None
            np = PtrV(v.array, off, packed)
            np.meta = getattr(v, "meta", None)
            return np
        if isinstance(v, VecV):
            return VecV(self.fresh("hv"), v.width, v.esize)
        return v

    def _step_divides(self, db: FactDB, step: Poly, diff: Poly) -> bool:
        cstep = step.const_value() if step.is_const() else None
        if cstep == 1:
            return True
        if cstep == 0:
            return False
        pr = Prover(db)
        c0 = diff.coeff(())
        if cstep is not None:
            if c0 % cstep != 0:
                return False
        elif c0 != 0:
            return False
        for m in diff.monomials():
            if len(m) != 1 or m[0][1] != 1:
                return False
            at = m[0][0]
            if not isinstance(at, ArrElem):
                return False
            coeff = diff.coeff(m)
            idiv = db.elem_divides.get(at.arr)
            sdiv = self.elem_div_sym.get(at.arr)
            if cstep is not None:
                if idiv is not None and (coeff * idiv) % cstep == 0:
                    continue
                if sdiv is not None and pr.prove_eq(sdiv,
                                                   Poly.const(cstep)):
                    continue
                return False
            else:
                if sdiv is not None and sdiv.key() == step.key():
                    continue
                return False
        return True

    def _exec_loop(self, st: State, cond, step_stmt, body,
                   line: int) -> List[State]:
        if cond is None:
            raise Unsupported(line, "loop without condition")
        assigned = self._assigned_names(body)
        info = self._counter_info(step_stmt) if step_stmt is not None \
            else None
        if info is None and step_stmt is not None:
            raise Unsupported(line, "unrecognized loop step")
        cname = step_poly = k0 = None
        if info is not None:
            cname, dexpr, sign = info
            assigned.add(cname)
            res = self.eval(dexpr, st)
            if len(res) != 1:
                raise Unsupported(line, "forking loop step")
            step_poly = _p(res[0][1], line) * sign
            cur = st.env.get(cname)
            if not isinstance(cur, IntV):
                raise Unsupported(line, f"loop counter {cname} is not an "
                                  "integer")
            k0 = cur.poly
            if step_poly.is_const() and step_poly.const_value() <= 0:
                raise Unsupported(line, "non-increasing loop counter")
        # Carried-variable plan for everything else the body assigns.
        carried: Dict[str, Optional[int]] = {}
        for nm in assigned:
            if nm == cname or nm not in st.env:
                continue
            carried[nm] = self._affine_delta(body, nm)
        # Strong mode: exact trip count when cond is `k < E` with E loop-
        # invariant and step | (E - k0) (slice/panel loops).
        strong = None
        if (cname is not None and isinstance(cond, A.Binary)
                and cond.op == "<" and isinstance(cond.lhs, A.Ident)
                and cond.lhs.name == cname
                and not (self._idents(cond.rhs) & assigned)):
            res = self.eval(cond.rhs, st.fork())
            if len(res) == 1 and isinstance(res[0][1], IntV):
                bound = res[0][1].poly
                if self._step_divides(st.db, step_poly, bound - k0):
                    strong = bound
        w = self.fresh("w") if strong is not None else None

        def apply_frame(tgt: State, tpoly: Poly) -> None:
            if cname is not None:
                tgt.env[cname] = IntV(k0 + step_poly * tpoly)
            for nm, dc in carried.items():
                old = st.env[nm]
                if dc is None:
                    tgt.env[nm] = self._havoc(tgt, old)
                elif isinstance(old, IntV):
                    tgt.env[nm] = IntV(old.poly + dc * tpoly)
                elif isinstance(old, VecV):
                    tgt.env[nm] = VecV(old.lane + dc * tpoly, old.width,
                                       old.esize)
                else:
                    tgt.env[nm] = self._havoc(tgt, old)

        returns: List[State] = []
        breaks: List[State] = []
        # One symbolic iteration.
        it = st.fork()
        t = self.fresh("t")
        it.db.add_ge0(t)
        if strong is not None:
            it.db.add_ge0(w)
            it.db.add_eq(step_poly * w, strong - k0)
            it.db.add_le(t, w - 1)
        if cname is not None:
            apply_frame(it, t)
        else:
            for nm in assigned:
                if nm in st.env:
                    it.env[nm] = self._havoc(it, st.env[nm])
        for it1 in self.assume(it, cond, True):
            for out in self.exec_block(body, [it1]):
                if out.flow == "return":
                    returns.append(out)
                elif out.flow == "break":
                    out.flow = None
                    breaks.append(out)
        # Exit state.
        ex = st.fork()
        if strong is not None:
            ex.db.add_ge0(w)
            ex.db.add_eq(step_poly * w, strong - k0)
            apply_frame(ex, w)
            ex.env[cname] = IntV(strong)
            exits = [ex]
        else:
            tx = self.fresh("t")
            ex.db.add_ge0(tx)
            if cname is not None:
                apply_frame(ex, tx)
            else:
                for nm in assigned:
                    if nm in st.env:
                        ex.env[nm] = self._havoc(ex, st.env[nm])
            exits = self.assume(ex, cond, False)
        return exits + breaks + returns

    # -- while (bits) { ... bits &= bits - 1; } ------------------------------
    def _while_bits_info(self, s: A.While) -> Optional[str]:
        cond = s.cond
        name = None
        if isinstance(cond, A.Ident):
            name = cond.name
        elif isinstance(cond, A.Binary) and cond.op == "!=" \
                and isinstance(cond.lhs, A.Ident) \
                and isinstance(cond.rhs, A.Num) and cond.rhs.value == 0:
            name = cond.lhs.name
        if name is None:
            return None
        for b in self._walk_stmts(s.body):
            if isinstance(b, A.Assign) and isinstance(b.target, A.Ident) \
                    and b.target.name == name:
                v = b.value
                if b.op == "&=" and isinstance(v, A.Binary) \
                        and v.op == "-" and isinstance(v.lhs, A.Ident) \
                        and v.lhs.name == name:
                    return name
                if b.op == "=" and isinstance(v, A.Binary) and v.op == "&":
                    return name
        return None

    def _exec_while_bits(self, st: State, s: A.While,
                         name: str) -> List[State]:
        b0 = st.env.get(name)
        if not (isinstance(b0, IntV) and b0.tag
                and b0.tag[0] in ("maskbyte", "maskbyte-sub")):
            return self._exec_loop(st, s.cond, None, s.body, s.line)
        budget = Poly.atom(OpTerm("popcount", (b0.poly,)))
        st.db.add_ge0(budget)
        st.db.add_le(budget, Poly.const(8))
        # The loop consumes exactly popcount(bits) packed elements: open a
        # budget window on every packed pointer that lacks one.
        opened = []
        for nm, v in list(st.env.items()):
            if isinstance(v, PtrV) and v.packed is not None \
                    and v.packed.win_start is None:
                st.env[nm] = PtrV(v.array, v.off, PackedState(
                    pos=v.off, win_start=v.off, win_budget=budget,
                    win_tag=("whilebits", name)))
                opened.append(nm)
        assigned = self._assigned_names(s.body)
        returns: List[State] = []
        breaks: List[State] = []
        it = st.fork()
        nb = self.fresh("bits")
        it.db.add_le(Poly.const(1), nb)
        it.db.add_le(nb, b0.poly)
        it.env[name] = IntV(nb, tag=b0.tag)
        for nm in assigned:
            if nm == name or nm not in st.env:
                continue
            v = st.env[nm]
            if isinstance(v, PtrV) and v.packed is not None \
                    and v.packed.win_start is not None:
                off = self.fresh("hp")
                ps = v.packed
                it.db.add_le(ps.win_start, off)
                it.db.add_le(off + 1, ps.win_start + ps.win_budget)
                it.env[nm] = PtrV(v.array, off, PackedState(
                    pos=off, win_start=ps.win_start,
                    win_budget=ps.win_budget, win_tag=ps.win_tag))
            else:
                it.env[nm] = self._havoc(it, v)
        for out in self.exec_block(s.body, [it]):
            if out.flow == "return":
                returns.append(out)
            elif out.flow == "break":
                out.flow = None
                breaks.append(out)
        ex = st.fork()
        ex.env[name] = IntV(Poly.const(0))
        for nm in assigned:
            if nm == name or nm not in st.env:
                continue
            v = st.env[nm]
            if isinstance(v, PtrV) and v.packed is not None \
                    and v.packed.win_start is not None:
                end = v.packed.win_start + v.packed.win_budget
                ex.env[nm] = PtrV(v.array, end, PackedState(pos=end))
            else:
                ex.env[nm] = self._havoc(ex, v)
        return [ex] + breaks + returns

    # -- switch --------------------------------------------------------------
    def _exec_switch(self, s: A.Switch, st: State) -> List[State]:
        outs: List[State] = []
        for st1, scr in self.eval(s.expr, st):
            p = _p(scr, s.line)
            labels = [c.label for c in s.cases if c.label is not None]
            for i, case in enumerate(s.cases):
                if not case.body:
                    raise Unsupported(s.line, "switch fallthrough")
                last = case.body[-1]
                if not isinstance(last, (A.Jump, A.Return)):
                    raise Unsupported(s.line, "switch case does not end "
                                      "with break/return")
                cs = st1.fork()
                if case.label is not None:
                    cs.db.add_eq(p, Poly.const(case.label))
                else:
                    self._refine_default(cs, p, labels)
                blk = A.Block(line=s.line, stmts=case.body)
                for out in self.exec_block(blk, [cs]):
                    if out.flow == "break":
                        out.flow = None
                    outs.append(out)
            if not any(c.label is None for c in s.cases):
                outs.append(st1.fork())     # no default: fallthrough past
        return outs

    def _refine_default(self, cs: State, p: Poly, labels: List[int]) -> None:
        """If the scrutinee is the stride of a stride-annotated array,
        the default case pins it to the remaining stride value."""
        monos = list(p.monomials())
        if p.coeff(()) != 0 or len(monos) != 2:
            return
        pos = neg = None
        for m in monos:
            if len(m) != 1 or m[0][1] != 1 \
                    or not isinstance(m[0][0], ArrElem):
                return
            if p.coeff(m) == 1:
                pos = m[0][0]
            elif p.coeff(m) == -1:
                neg = m[0][0]
        if pos is None or neg is None or pos.arr != neg.arr:
            return
        vals = cs.db.stride.get(pos.arr)
        if vals is None:
            return
        d = pos.idx - neg.idx
        if not (d.is_const() and d.const_value() == 1):
            return
        remaining = [v for v in vals if v not in labels]
        if len(remaining) == 1:
            cs.db.add_eq(p, Poly.const(remaining[0]))
