#pragma once
// Steady advection–diffusion operator: -eps ∇²u + (bx, by)·∇u with
// homogeneous Dirichlet boundary, first-order upwind advection. Produces
// the nonsymmetric, possibly advection-dominated systems that motivate
// GMRES/BiCGStab + ILU in the PETSc solver stack the paper builds on (its
// test code lives in PETSc's advection-diffusion tutorial directory).

#include "base/types.hpp"
#include "mat/csr.hpp"
#include "vec/vector.hpp"

namespace kestrel::app {

struct AdvectionDiffusionParams {
  Scalar eps = 1.0;  ///< diffusion coefficient
  Scalar bx = 1.0;   ///< advection velocity, x
  Scalar by = 0.5;   ///< advection velocity, y
};

/// Operator on an n x n interior grid of the unit square (h = 1/(n+1)),
/// upwinded by the sign of (bx, by).
mat::Csr advection_diffusion(Index n, AdvectionDiffusionParams params = {});

/// Right-hand side for a constant source f = 1 on the same grid.
Vector advection_diffusion_rhs(Index n);

}  // namespace kestrel::app
