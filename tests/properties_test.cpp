// Property-based sweeps over randomized inputs: format conversions must
// round-trip, every solver must reproduce the dense direct solution on
// well-conditioned random systems, SpGEMM must be associative, and
// distributed BAIJ matrices must respect block-aligned layouts.

#include <gtest/gtest.h>

#include <cmath>

#include "app/gray_scott.hpp"
#include "ksp/context.hpp"
#include "mat/dense.hpp"
#include "mat/sell.hpp"
#include "mat/spgemm.hpp"
#include "mat/talon.hpp"
#include "par/parmat.hpp"
#include "pc/jacobi.hpp"
#include "simd/isa.hpp"
#include "test_matrices.hpp"

namespace kestrel {
namespace {

// ---- conversion round trips over a randomized parameter grid ------------

class ConversionSweep
    : public ::testing::TestWithParam<std::tuple<Index, Index, Index>> {};

TEST_P(ConversionSweep, SellRoundTripsForAllConfigs) {
  const auto [n, slice_height, sigma] = GetParam();
  const mat::Csr csr = testing::power_law(n, 100 + n);
  mat::SellOptions opts;
  opts.slice_height = slice_height;
  opts.sigma = std::min<Index>(sigma, n);
  opts.build_bitmask = (n % 2 == 0);  // alternate variants
  const mat::Sell sell(csr, opts);
  const mat::Csr back = sell.to_csr();
  ASSERT_EQ(back.nnz(), csr.nnz());
  for (Index i = 0; i < n; ++i) {
    const auto c1 = csr.row_cols(i);
    const auto c2 = back.row_cols(i);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t k = 0; k < c1.size(); ++k) {
      EXPECT_EQ(c1[k], c2[k]);
      EXPECT_DOUBLE_EQ(csr.row_vals(i)[k], back.row_vals(i)[k]);
    }
  }
  // and SpMV through the SELL matches CSR
  const auto x = testing::random_x(n, 9);
  Vector xv(n), y1, y2;
  for (Index i = 0; i < n; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  csr.spmv(xv, y1);
  sell.spmv(xv, y2);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConversionSweep,
    ::testing::Values(std::tuple<Index, Index, Index>{17, 8, 1},
                      std::tuple<Index, Index, Index>{64, 8, 16},
                      std::tuple<Index, Index, Index>{65, 4, 32},
                      std::tuple<Index, Index, Index>{100, 16, 1},
                      std::tuple<Index, Index, Index>{33, 3, 8},
                      std::tuple<Index, Index, Index>{128, 32, 64},
                      std::tuple<Index, Index, Index>{7, 8, 4}),
    [](const ::testing::TestParamInfo<std::tuple<Index, Index, Index>>& p) {
      return "n" + std::to_string(std::get<0>(p.param)) + "_c" +
             std::to_string(std::get<1>(p.param)) + "_s" +
             std::to_string(std::get<2>(p.param));
    });

// ---- Talon round trips and SpMV over the same parameter grid ------------

class TalonSweep : public ::testing::TestWithParam<std::tuple<Index, Index>> {
};

TEST_P(TalonSweep, RoundTripsAndMatchesCsrSpmv) {
  const auto [n, force_r] = GetParam();
  const mat::Csr csr = testing::power_law(n, 300 + n);
  mat::TalonOptions opts;
  opts.force_r = force_r;
  const mat::Talon talon(csr, opts);
  EXPECT_EQ(talon.nnz(), csr.nnz());
  const mat::Csr back = talon.to_csr();
  ASSERT_EQ(back.nnz(), csr.nnz());
  for (Index i = 0; i < n; ++i) {
    const auto c1 = csr.row_cols(i);
    const auto c2 = back.row_cols(i);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t k = 0; k < c1.size(); ++k) {
      EXPECT_EQ(c1[k], c2[k]);
      EXPECT_DOUBLE_EQ(csr.row_vals(i)[k], back.row_vals(i)[k]);
    }
  }
  const auto x = testing::random_x(n, 23);
  Vector xv(n), y1, y2;
  for (Index i = 0; i < n; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  csr.spmv(xv, y1);
  talon.spmv(xv, y2);
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(y1[i], y2[i], 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TalonSweep,
    ::testing::Combine(::testing::Values<Index>(7, 17, 64, 65, 100),
                       ::testing::Values<Index>(0, 1, 2, 4)),
    [](const ::testing::TestParamInfo<std::tuple<Index, Index>>& p) {
      return "n" + std::to_string(std::get<0>(p.param)) + "_r" +
             std::to_string(std::get<1>(p.param));
    });

// ---- all Krylov solvers vs the dense direct solution --------------------

class SolverSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(SolverSweep, MatchesDenseDirectSolve) {
  const std::string type = GetParam();
  const Index n = 40;
  // well-conditioned diagonally dominant nonsymmetric matrix; for CG use a
  // symmetrized SPD variant
  mat::Coo coo(n, n);
  Rng rng(1234);
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 6.0 + rng.next_double());
    coo.add(i, (i + 1) % n, rng.uniform(-1.0, 1.0));
    coo.add(i, (i + 7) % n, rng.uniform(-1.0, 1.0));
  }
  mat::Csr a = coo.to_csr();
  if (type == "cg") {
    const mat::Csr at = a.transpose();
    a = mat::add(0.5, a, 0.5, at);
    a = mat::add(1.0, a, 3.0, mat::identity(n));  // push SPD
  }

  const auto x = testing::random_x(n, 55);
  Vector b(n);
  {
    Vector xv(n);
    for (Index i = 0; i < n; ++i) xv[i] = x[static_cast<std::size_t>(i)];
    a.spmv(xv, b);
  }

  // dense reference
  mat::Dense dense = mat::Dense::from_csr(a);
  dense.lu_factor();
  Vector x_direct(n);
  dense.lu_solve(b.data(), x_direct.data());

  Vector u(n);
  ksp::Settings settings;
  settings.rtol = 1e-12;
  settings.max_iterations = 5000;
  const auto solver = ksp::make_solver(type, settings);
  const pc::Jacobi jacobi(a);
  ksp::SeqContext ctx(a, &jacobi);
  const auto res = solver->solve(ctx, b, u);
  ASSERT_TRUE(res.converged) << type;
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(u[i], x_direct[i], 1e-7) << type << " entry " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, SolverSweep,
                         ::testing::Values("cg", "gmres", "fgmres",
                                           "bicgstab", "richardson"),
                         [](const ::testing::TestParamInfo<const char*>& p) {
                           return std::string(p.param);
                         });

// ---- SpGEMM algebra -------------------------------------------------------

TEST(SpgemmProperties, AssociativityOnRandomTriples) {
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const mat::Csr a = testing::uniform_random(12, 9, 3, seed);
    const mat::Csr b = testing::uniform_random(9, 14, 3, seed + 10);
    const mat::Csr c = testing::uniform_random(14, 7, 3, seed + 20);
    const mat::Csr left = mat::spgemm(mat::spgemm(a, b), c);
    const mat::Csr right = mat::spgemm(a, mat::spgemm(b, c));
    ASSERT_EQ(left.rows(), right.rows());
    for (Index i = 0; i < left.rows(); ++i) {
      for (Index j = 0; j < left.cols(); ++j) {
        EXPECT_NEAR(left.at(i, j), right.at(i, j), 1e-11);
      }
    }
  }
}

TEST(SpgemmProperties, TransposeOfProduct) {
  // (A B)^T == B^T A^T
  const mat::Csr a = testing::uniform_random(10, 8, 3, 5);
  const mat::Csr b = testing::uniform_random(8, 11, 3, 6);
  const mat::Csr lhs = mat::spgemm(a, b).transpose();
  const mat::Csr rhs = mat::spgemm(b.transpose(), a.transpose());
  for (Index i = 0; i < lhs.rows(); ++i) {
    for (Index j = 0; j < lhs.cols(); ++j) {
      EXPECT_NEAR(lhs.at(i, j), rhs.at(i, j), 1e-12);
    }
  }
}

// ---- block-aligned distributed BAIJ ---------------------------------------

TEST(BlockedLayout, EvenBlockedRespectsBlockSize) {
  const par::Layout l = par::Layout::even_blocked(2 * 13, 3, 2);
  EXPECT_EQ(l.global_size(), 26);
  for (int r = 0; r < 3; ++r) EXPECT_EQ(l.local_size(r) % 2, 0);
  EXPECT_THROW(par::Layout::even_blocked(7, 2, 2), Error);
}

TEST(BlockedLayout, DistributedBcsrGrayScott) {
  app::GrayScott gs(8);
  Vector u0;
  gs.initial_condition(u0);
  const mat::Csr global = gs.rhs_jacobian(u0);
  const auto x = testing::random_x(global.cols(), 19);
  Vector xg(global.cols());
  for (Index i = 0; i < xg.size(); ++i) {
    xg[i] = x[static_cast<std::size_t>(i)];
  }
  Vector y_seq;
  global.spmv(xg, y_seq);

  auto layout = std::make_shared<par::Layout>(
      par::Layout::even_blocked(global.rows(), 3, 2));
  par::Fabric::run(3, [&](par::Comm& comm) {
    par::ParMatrixOptions opts;
    opts.diag_format = par::DiagFormat::kBcsr;
    opts.block_size = 2;
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, opts);
    EXPECT_EQ(a.diag_block().format_name(), "bcsr");
    par::ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
    xp.set_from_global(xg);
    a.spmv(xp, yp, comm);
    const Vector y_par = yp.gather_all(comm);
    for (Index i = 0; i < y_seq.size(); ++i) {
      EXPECT_NEAR(y_par[i], y_seq[i], 1e-11);
    }
  });
}

// ---- distributed Talon across rank counts and ISA tiers -------------------

TEST(DistributedTalon, MatchesSequentialAcrossRankCountsAndTiers) {
  // Acceptance sweep: Talon as BOTH the diagonal and the full-row
  // off-diagonal block of the distributed matrix must reproduce the
  // sequential CSR product at 1, 2, and 8 ranks on every ISA tier the host
  // supports.
  app::GrayScott gs(8);
  Vector u0;
  gs.initial_condition(u0);
  const mat::Csr global = gs.rhs_jacobian(u0);
  const auto x = testing::random_x(global.cols(), 31);
  Vector xg(global.cols());
  for (Index i = 0; i < xg.size(); ++i) {
    xg[i] = x[static_cast<std::size_t>(i)];
  }
  Vector y_seq;
  global.spmv(xg, y_seq);

  const int best = static_cast<int>(simd::detect_best_tier());
  for (int nranks : {1, 2, 8}) {
    auto layout = std::make_shared<par::Layout>(
        par::Layout::even(global.rows(), nranks));
    for (int t = 0; t <= best; ++t) {
      const auto tier = static_cast<simd::IsaTier>(t);
      par::Fabric::run(nranks, [&](par::Comm& comm) {
        par::ParMatrixOptions opts;
        opts.diag_format = par::DiagFormat::kTalon;
        opts.offdiag_format = par::OffdiagFormat::kTalon;
        opts.tier = tier;
        const par::ParMatrix a =
            par::ParMatrix::from_global(global, layout, comm, opts);
        EXPECT_EQ(a.diag_block().format_name(), std::string("talon"));
        par::ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
        xp.set_from_global(xg);
        a.spmv(xp, yp, comm);
        const Vector y_par = yp.gather_all(comm);
        for (Index i = 0; i < y_seq.size(); ++i) {
          EXPECT_NEAR(y_par[i], y_seq[i], 1e-11)
              << "rank count " << nranks << " tier " << simd::tier_name(tier);
        }
      });
    }
  }
}

TEST(DistributedTalon, AdversarialPatternsAcrossRanks) {
  // The patterns that historically break block formats, pushed through the
  // distributed path (uneven ghost traffic, empty local rows, edge blocks).
  for (const mat::Csr& global :
       {testing::with_empty_rows(64), testing::last_row_only_column(48),
        testing::straddling_boundaries(56)}) {
    const auto x = testing::random_x(global.cols(), 37);
    Vector xg(global.cols());
    for (Index i = 0; i < xg.size(); ++i) {
      xg[i] = x[static_cast<std::size_t>(i)];
    }
    Vector y_seq;
    global.spmv(xg, y_seq);
    for (int nranks : {2, 8}) {
      auto layout = std::make_shared<par::Layout>(
          par::Layout::even(global.rows(), nranks));
      par::Fabric::run(nranks, [&](par::Comm& comm) {
        par::ParMatrixOptions opts;
        opts.diag_format = par::DiagFormat::kTalon;
        opts.offdiag_format = par::OffdiagFormat::kTalon;
        const par::ParMatrix a =
            par::ParMatrix::from_global(global, layout, comm, opts);
        par::ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
        xp.set_from_global(xg);
        a.spmv(xp, yp, comm);
        const Vector y_par = yp.gather_all(comm);
        for (Index i = 0; i < y_seq.size(); ++i) {
          EXPECT_NEAR(y_par[i], y_seq[i], 1e-11) << "ranks " << nranks;
        }
      });
    }
  }
}

}  // namespace
}  // namespace kestrel
