#include "vec/index_set.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace kestrel {

IndexSet::IndexSet(std::vector<Index> indices) : idx_(std::move(indices)) {
  for (Index v : idx_) KESTREL_CHECK(v >= 0, "negative index in IndexSet");
}

IndexSet IndexSet::stride(Index first, Index n) {
  KESTREL_CHECK(first >= 0 && n >= 0, "invalid stride IndexSet");
  std::vector<Index> v(static_cast<std::size_t>(n));
  for (Index i = 0; i < n; ++i) v[static_cast<std::size_t>(i)] = first + i;
  return IndexSet(std::move(v));
}

bool IndexSet::is_sorted() const {
  return std::is_sorted(idx_.begin(), idx_.end());
}

bool IndexSet::contains(Index v) const {
  KESTREL_ASSERT(is_sorted(), "contains() requires a sorted IndexSet");
  return std::binary_search(idx_.begin(), idx_.end(), v);
}

IndexSet IndexSet::sorted_unique() const {
  std::vector<Index> v = idx_;
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return IndexSet(std::move(v));
}

}  // namespace kestrel
