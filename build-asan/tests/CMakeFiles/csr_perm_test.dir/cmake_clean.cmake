file(REMOVE_RECURSE
  "CMakeFiles/csr_perm_test.dir/csr_perm_test.cpp.o"
  "CMakeFiles/csr_perm_test.dir/csr_perm_test.cpp.o.d"
  "csr_perm_test"
  "csr_perm_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/csr_perm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
