#pragma once
// VecScatter: precomputed gather/scatter plan between index spaces.
// The parallel matrix layer uses it to pack the local x entries other ranks
// need and to place received ghost values into the compact ghost buffer
// that the off-diagonal block's column space refers to (paper section 2.2).

#include "vec/index_set.hpp"
#include "vec/vector.hpp"

namespace kestrel {

class Scatter {
 public:
  Scatter() = default;
  /// Plan copying src[from[i]] -> dst[to[i]] for all i.
  Scatter(IndexSet from, IndexSet to);

  /// dst[to[i]] = src[from[i]]
  void forward(const Vector& src, Vector& dst) const;
  /// src[from[i]] += dst[to[i]] (transpose action with accumulation)
  void reverse_add(const Vector& dst, Vector& src) const;

  /// Pack: out[i] = src[from[i]] (ignores `to`).
  void gather(const Scalar* src, Scalar* out) const;
  /// Unpack: dst[to[i]] = in[i] (ignores `from`).
  void scatter_to(const Scalar* in, Scalar* dst) const;

  Index size() const { return from_.size(); }
  const IndexSet& from() const { return from_; }
  const IndexSet& to() const { return to_; }

 private:
  IndexSet from_;
  IndexSet to_;
};

}  // namespace kestrel
