#include "mat/partition.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace kestrel::mat {

namespace {

FlockPartition even_split(Index nunits, int nparts) {
  FlockPartition part;
  part.bounds.resize(static_cast<std::size_t>(nparts) + 1);
  for (int k = 0; k <= nparts; ++k) {
    part.bounds[static_cast<std::size_t>(k)] = static_cast<Index>(
        static_cast<std::int64_t>(nunits) * k / nparts);
  }
  return part;
}

}  // namespace

FlockPartition nnz_balance(const std::int64_t* prefix, Index nunits,
                           int nparts) {
  KESTREL_CHECK(nparts >= 1, "flock: nnz_balance needs nparts >= 1");
  KESTREL_CHECK(nunits >= 0, "flock: negative unit count");
  const std::int64_t total = nunits > 0 ? prefix[nunits] : 0;
  if (total <= 0) return even_split(nunits, nparts);

  FlockPartition part;
  part.bounds.resize(static_cast<std::size_t>(nparts) + 1);
  part.bounds.front() = 0;
  part.bounds.back() = nunits;
  for (int k = 1; k < nparts; ++k) {
    const std::int64_t target = total * k / nparts;
    const std::int64_t* it =
        std::lower_bound(prefix, prefix + nunits + 1, target);
    Index b = static_cast<Index>(it - prefix);
    // Monotone clamp: equal-weight targets (many empty units) must not
    // produce decreasing bounds.
    const Index prev = part.bounds[static_cast<std::size_t>(k) - 1];
    if (b < prev) b = prev;
    if (b > nunits) b = nunits;
    part.bounds[static_cast<std::size_t>(k)] = b;
  }
  return part;
}

FlockPartition nnz_balance(const Index* prefix, Index nunits, int nparts) {
  std::vector<std::int64_t> wide(static_cast<std::size_t>(nunits) + 1);
  for (Index u = 0; u <= nunits; ++u) {
    wide[static_cast<std::size_t>(u)] = prefix[u];
  }
  return nnz_balance(wide.data(), nunits, nparts);
}

FlockPartition nnz_balance_weights(const std::vector<std::int64_t>& weights,
                                   int nparts) {
  std::vector<std::int64_t> prefix(weights.size() + 1, 0);
  for (std::size_t u = 0; u < weights.size(); ++u) {
    prefix[u + 1] = prefix[u] + weights[u];
  }
  return nnz_balance(prefix.data(), static_cast<Index>(weights.size()),
                     nparts);
}

}  // namespace kestrel::mat
