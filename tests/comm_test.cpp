// Message-passing fabric tests: point-to-point, collectives, failure
// propagation.

#include <gtest/gtest.h>

#include <atomic>

#include "base/error.hpp"
#include "par/comm.hpp"

namespace kestrel::par {
namespace {

TEST(Fabric, SingleRankRunsInline) {
  int calls = 0;
  Fabric::run(1, [&](Comm& comm) {
    EXPECT_EQ(comm.rank(), 0);
    EXPECT_EQ(comm.size(), 1);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(Fabric, PointToPointRoundTrip) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.isend(1, 7, {1.0, 2.0, 3.0});
      const auto echoed = comm.recv(1, 8);
      ASSERT_EQ(echoed.size(), 3u);
      EXPECT_DOUBLE_EQ(echoed[2], 6.0);
    } else {
      auto data = comm.recv(0, 7);
      for (auto& v : data) v *= 2.0;
      comm.isend(0, 8, data);
    }
  });
}

TEST(Fabric, MessagesMatchOnSourceAndTag) {
  Fabric::run(3, [](Comm& comm) {
    if (comm.rank() == 0) {
      // receive in the opposite order of sending; matching must be by
      // (source, tag), not arrival order
      const auto from2 = comm.recv(2, 5);
      const auto from1 = comm.recv(1, 5);
      EXPECT_DOUBLE_EQ(from1[0], 1.0);
      EXPECT_DOUBLE_EQ(from2[0], 2.0);
    } else {
      comm.isend(0, 5, {static_cast<Scalar>(comm.rank())});
    }
  });
}

TEST(Fabric, FifoOrderPerSourceTag) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.isend(1, 3, {10.0});
      comm.isend(1, 3, {20.0});
      comm.isend(1, 3, {30.0});
    } else {
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 10.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 20.0);
      EXPECT_DOUBLE_EQ(comm.recv(0, 3)[0], 30.0);
    }
  });
}

TEST(Fabric, IrecvWaitFillsSink) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Scalar> sink;
      Request req = comm.irecv(1, 2, &sink);
      comm.wait(req);
      EXPECT_TRUE(req.done);
      ASSERT_EQ(sink.size(), 2u);
      EXPECT_DOUBLE_EQ(sink[1], -4.0);
    } else {
      comm.isend(0, 2, {3.0, -4.0});
    }
  });
}

TEST(Fabric, AllreduceSumMaxMin) {
  for (int nranks : {1, 2, 5}) {
    Fabric::run(nranks, [nranks](Comm& comm) {
      const Scalar mine = comm.rank() + 1.0;
      EXPECT_DOUBLE_EQ(comm.allreduce(mine, Comm::ReduceOp::kSum),
                       nranks * (nranks + 1) / 2.0);
      EXPECT_DOUBLE_EQ(comm.allreduce(mine, Comm::ReduceOp::kMax),
                       static_cast<Scalar>(nranks));
      EXPECT_DOUBLE_EQ(comm.allreduce(mine, Comm::ReduceOp::kMin), 1.0);
    });
  }
}

TEST(Fabric, AllreduceInt64) {
  Fabric::run(4, [](Comm& comm) {
    const std::int64_t total =
        comm.allreduce(static_cast<std::int64_t>(1000000 + comm.rank()));
    EXPECT_EQ(total, 4000006);
  });
}

TEST(Fabric, SuccessiveAllreducesStayOrdered) {
  Fabric::run(3, [](Comm& comm) {
    for (int round = 0; round < 10; ++round) {
      const Scalar sum =
          comm.allreduce(static_cast<Scalar>(round), Comm::ReduceOp::kSum);
      EXPECT_DOUBLE_EQ(sum, 3.0 * round);
    }
  });
}

TEST(Fabric, AllgathervConcatenatesInRankOrder) {
  Fabric::run(3, [](Comm& comm) {
    std::vector<Scalar> local(static_cast<std::size_t>(comm.rank()) + 1,
                              static_cast<Scalar>(comm.rank()));
    const auto all = comm.allgatherv(local);
    ASSERT_EQ(all.size(), 6u);  // 1 + 2 + 3
    EXPECT_DOUBLE_EQ(all[0], 0.0);
    EXPECT_DOUBLE_EQ(all[1], 1.0);
    EXPECT_DOUBLE_EQ(all[2], 1.0);
    EXPECT_DOUBLE_EQ(all[5], 2.0);
  });
}

TEST(Fabric, BarrierCompletes) {
  std::atomic<int> counter{0};
  Fabric::run(4, [&](Comm& comm) {
    counter.fetch_add(1);
    comm.barrier();
    EXPECT_EQ(counter.load(), 4);
  });
}

TEST(Fabric, RankExceptionPropagatesWithoutDeadlock) {
  EXPECT_THROW(Fabric::run(3,
                           [](Comm& comm) {
                             if (comm.rank() == 1) {
                               KESTREL_FAIL("rank 1 exploded");
                             }
                             // other ranks block on a message that will
                             // never arrive; abort must wake them
                             (void)comm.recv((comm.rank() + 1) % 3, 9);
                           }),
               Error);
}

TEST(Fabric, RootCauseExceptionIsRethrown) {
  try {
    Fabric::run(3, [](Comm& comm) {
      if (comm.rank() == 2) KESTREL_FAIL("root cause");
      (void)comm.recv(2, 1);
    });
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("root cause"), std::string::npos);
  }
}

TEST(Fabric, InvalidArgumentsRejected) {
  Fabric::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_THROW(comm.isend(5, 0, {1.0}), Error);
      EXPECT_THROW(comm.isend(1, -3, {1.0}), Error);
      std::vector<Scalar> sink;
      EXPECT_THROW(comm.irecv(-1, 0, &sink), Error);
      comm.isend(1, 0, {0.0});  // unblock peer
    } else {
      (void)comm.recv(0, 0);
    }
  });
}

}  // namespace
}  // namespace kestrel::par
