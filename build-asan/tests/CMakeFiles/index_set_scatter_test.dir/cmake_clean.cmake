file(REMOVE_RECURSE
  "CMakeFiles/index_set_scatter_test.dir/index_set_scatter_test.cpp.o"
  "CMakeFiles/index_set_scatter_test.dir/index_set_scatter_test.cpp.o.d"
  "index_set_scatter_test"
  "index_set_scatter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_set_scatter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
