#pragma once
// Coordinate-format assembly buffer: the MatSetValues stage. Entries may be
// added in any order; duplicates are summed at finalization (PETSc
// ADD_VALUES semantics). Every structured-grid assembly path in Kestrel
// builds a Coo first and converts to the compute format.

#include <vector>

#include "base/types.hpp"

namespace kestrel::mat {

class Csr;

class Coo {
 public:
  Coo(Index m, Index n);

  Index rows() const { return m_; }
  Index cols() const { return n_; }

  /// Adds v to entry (i, j); duplicates accumulate.
  void add(Index i, Index j, Scalar v);

  /// Adds a dense block rows x cols at (i0, j0), row-major values.
  void add_block(Index i0, Index j0, Index rows, Index cols,
                 const Scalar* v);

  /// Number of raw (pre-merge) triplets.
  std::size_t entries() const { return ij_.size(); }

  void reserve(std::size_t n) { ij_.reserve(n); val_.reserve(n); }
  void clear();

  /// Sorts, merges duplicates, and drops explicit zeros created by
  /// cancellation if `drop_zeros` is set.
  Csr to_csr(bool drop_zeros = false) const;

 private:
  friend class Csr;
  Index m_, n_;
  // (row, col) packed into one 64-bit key for a cheap single-array sort
  std::vector<std::uint64_t> ij_;
  std::vector<Scalar> val_;
};

}  // namespace kestrel::mat
