#pragma once
// PETSc MatSetValues-style assembly: entries may be INSERTed (last write
// wins) or ADDed (accumulate), negative indices are silently ignored (the
// PETSc convention for rows/columns eliminated by boundary conditions),
// and assembly ends with an explicit assemble() that produces the compute
// format. This is the API the paper's application layer uses to build
// Jacobians; Coo remains the lower-level ADD-only fast path.

#include <vector>

#include "base/types.hpp"
#include "mat/csr.hpp"

namespace kestrel::mat {

class Assembler {
 public:
  enum class Mode { kInsert, kAdd };

  Assembler(Index m, Index n);

  Index rows() const { return m_; }
  Index cols() const { return n_; }

  /// Stages one entry. Negative i or j is ignored (PETSc convention).
  void set(Index i, Index j, Scalar v, Mode mode = Mode::kInsert);
  void add(Index i, Index j, Scalar v) { set(i, j, v, Mode::kAdd); }

  /// Stages a dense row-major block at (i0, j0); negative origin rejects
  /// the whole block edge-by-edge like PETSc (per-entry skip).
  void set_block(Index i0, Index j0, Index rows, Index cols,
                 const Scalar* v, Mode mode = Mode::kInsert);

  std::size_t staged() const { return entries_.size(); }
  void clear();

  /// Folds staged entries in insertion order: for each (i, j), an INSERT
  /// resets the running value, an ADD accumulates — matching PETSc's
  /// per-entry semantics.
  Csr assemble(bool drop_zeros = false) const;

 private:
  struct Entry {
    Index i, j;
    Scalar v;
    Mode mode;
  };
  Index m_, n_;
  std::vector<Entry> entries_;
};

}  // namespace kestrel::mat
