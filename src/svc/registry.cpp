#include "svc/registry.hpp"

#include <utility>

#include "base/error.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"

namespace kestrel::svc {

namespace {

mat::MatrixPtr build_format(const mat::Csr& csr, const HandleOptions& opts) {
  const std::string& f = opts.format;
  if (f == "csr") return std::make_shared<const mat::Csr>(csr);
  if (f == "csrperm") return std::make_shared<const mat::CsrPerm>(csr);
  if (f == "sell") return std::make_shared<const mat::Sell>(csr);
  if (f == "bcsr") {
    return std::make_shared<const mat::Bcsr>(csr, opts.block_size);
  }
  if (f == "talon") return std::make_shared<const mat::Talon>(csr);
  KESTREL_FAIL("svc: unknown handle format '" + f +
               "' (expected csr|csrperm|sell|bcsr|talon)");
}

}  // namespace

MatrixRegistry::~MatrixRegistry() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, handle] : handles_) {
    budget_.release(handle->info.bytes);
  }
  handles_.clear();
}

MatrixRegistry::HandlePtr MatrixRegistry::add(const std::string& name,
                                              const mat::Csr& csr,
                                              HandleOptions opts) {
  return insert(name, build_format(csr, opts), opts);
}

MatrixRegistry::HandlePtr MatrixRegistry::add_matrix(const std::string& name,
                                                     mat::MatrixPtr m,
                                                     HandleOptions opts) {
  KESTREL_CHECK(m != nullptr, "svc: null matrix for handle '" + name + "'");
  opts.format = m->format_name();
  return insert(name, std::move(m), opts);
}

MatrixRegistry::HandlePtr MatrixRegistry::insert(const std::string& name,
                                                 mat::MatrixPtr built,
                                                 const HandleOptions& opts) {
  auto handle = std::make_shared<Handle>();
  handle->info.name = name;
  handle->info.rows = built->rows();
  handle->info.cols = built->cols();
  handle->info.nnz = built->nnz();
  handle->info.abft = opts.abft;
  if (opts.abft) {
    KESTREL_CHECK(opts.degraded_verify_every >= opts.abft_opts.verify_every,
                  "svc: degraded verify_every must not verify more often "
                  "than the full wrapper");
    aegis::AbftOptions degraded_opts = opts.abft_opts;
    degraded_opts.verify_every = opts.degraded_verify_every;
    // Both wrappers share the one inner matrix: the resident bytes are paid
    // once, and the watchdog switch costs a pointer swap, not a rebuild.
    handle->full =
        std::make_shared<const aegis::AbftMatrix>(built, opts.abft_opts);
    handle->degraded =
        std::make_shared<const aegis::AbftMatrix>(built, degraded_opts);
  } else {
    handle->full = built;
    handle->degraded = built;
  }
  handle->info.format = handle->full->format_name();
  handle->info.bytes =
      static_cast<std::uint64_t>(handle->full->storage_bytes());

  std::lock_guard<std::mutex> lock(mu_);
  KESTREL_CHECK(handles_.find(name) == handles_.end(),
                "svc: handle '" + name + "' already registered");
  // May throw BudgetError: the build above is then discarded whole — the
  // registry never retains a handle it could not account for.
  budget_.reserve(handle->info.bytes, "svc handle '" + name + "'");
  HandlePtr out = handle;
  handles_.emplace(name, out);
  return out;
}

MatrixRegistry::HandlePtr MatrixRegistry::get(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(name);
  KESTREL_CHECK(it != handles_.end(),
                "svc: unknown handle '" + name + "'");
  return it->second;
}

bool MatrixRegistry::has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return handles_.find(name) != handles_.end();
}

void MatrixRegistry::remove(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = handles_.find(name);
  KESTREL_CHECK(it != handles_.end(),
                "svc: unknown handle '" + name + "'");
  budget_.release(it->second->info.bytes);
  handles_.erase(it);
}

std::vector<HandleInfo> MatrixRegistry::list() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<HandleInfo> out;
  out.reserve(handles_.size());
  for (const auto& [name, handle] : handles_) out.push_back(handle->info);
  return out;
}

std::uint64_t MatrixRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [name, handle] : handles_) total += handle->info.bytes;
  return total;
}

}  // namespace kestrel::svc
