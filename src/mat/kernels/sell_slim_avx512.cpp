// AVX-512 Kestrel Slim SELL SpMV — Algorithm 2 over the compressed streams
// at the production slice height c == 8 (other heights take the scalar slim
// kernel through dispatch). One slice-column iteration unpacks eight 16-bit
// offsets with vpmovzxwd, rebases them with the slice's base column and
// gathers from x; fp32 values widen with vcvtps2pd so FMA and accumulation
// stay double. Padding keeps every slice a whole number of 8-element
// columns, so the inner loop needs no masks; only the final short slice's
// store is masked, exactly like the fat kernel.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell_slim isa=avx512

namespace kestrel::mat::kernels {

namespace {

inline void store_slice(Scalar* y, Index nrows, __m512d acc) {
  if (nrows >= 8) {
    _mm512_storeu_pd(y, acc);
  } else if (nrows > 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << nrows) - 1u);
    _mm512_mask_storeu_pd(y, mask, acc);
  }
}

// argus-kernel: sell_slim_spmv_avx512
// argus-param: a : view SellSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: c == 8
// argus-traffic: sell_slim
void sell_slim_spmv_avx512(const SellSlimView& a, const Scalar* x, Scalar* y) {
  for (Index s = 0; s < a.nslices; ++s) {
    __m512d acc = _mm512_setzero_pd();
    const Index begin = a.sliceptr[s];
    const Index end = a.sliceptr[s + 1];
    if (a.idx16 != 0) {
      const __m256i vb = _mm256_set1_epi32(a.base[s]);
      if (a.fp32 != 0) {
        for (Index k = begin; k < end; k += 8) {
          const __m128i raw =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.off16 + k));
          const __m256i idx = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vb);
          const __m512d vals = _mm512_cvtps_pd(_mm256_loadu_ps(a.val32 + k));
          acc = _mm512_fmadd_pd(vals, _mm512_i32gather_pd(idx, x, 8), acc);
        }
      } else {
        for (Index k = begin; k < end; k += 8) {
          const __m128i raw =
              _mm_loadu_si128(reinterpret_cast<const __m128i*>(a.off16 + k));
          const __m256i idx = _mm256_add_epi32(_mm256_cvtepu16_epi32(raw), vb);
          const __m512d vals = _mm512_loadu_pd(a.val + k);
          acc = _mm512_fmadd_pd(vals, _mm512_i32gather_pd(idx, x, 8), acc);
        }
      }
    } else {
      // fp32-only mode: fat column indices, float values.
      for (Index k = begin; k < end; k += 8) {
        const __m256i idx =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
        const __m512d vals = _mm512_cvtps_pd(_mm256_loadu_ps(a.val32 + k));
        acc = _mm512_fmadd_pd(vals, _mm512_i32gather_pd(idx, x, 8), acc);
      }
    }
    const Index row0 = s * 8;
    const Index nrows = (row0 + 8 <= a.m) ? 8 : (a.m - row0);
    store_slice(y + row0, nrows, acc);
  }
}

}  // namespace

void register_sell_slim_avx512() {
  KESTREL_REGISTER_KERNEL(kSellSlimSpmv, kAvx512, sell_slim_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
