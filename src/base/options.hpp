#pragma once
// PETSc-style options database: "-key value" (or bare "-flag") pairs parsed
// from the command line or set programmatically. Solver components read
// their configuration from here, so examples accept the same option names
// the paper lists (e.g. -pc_type mg -pc_mg_levels 3 -mg_levels_pc_type
// jacobi -mat_type sell -spmv_isa avx512).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "base/types.hpp"

namespace kestrel {

class Options {
 public:
  Options() = default;
  Options(int argc, const char* const* argv) { parse(argc, argv); }

  /// Parses "-key [value]" pairs; later settings override earlier ones.
  /// A token starting with '-' that is not parseable as a number starts a
  /// new key; anything else is the value of the preceding key.
  void parse(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  void set_flag(const std::string& key) { set(key, ""); }

  bool has(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  /// The typed getters throw kestrel::OptionsError (carrying key, raw value
  /// and the expected form) on a malformed value — a structured error
  /// instead of a silent default or a bare abort.
  Index get_index(const std::string& key, Index fallback) const;
  Scalar get_scalar(const std::string& key, Scalar fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Keys starting with `prefix` that are not in `known` (typo detection).
  std::vector<std::string> unknown_keys(
      const std::string& prefix,
      const std::vector<std::string>& known) const;
  /// Warning lines for unknown -aegis_* / -ksp_* option names; empty when
  /// every such option is recognized. Examples print these at startup.
  std::vector<std::string> unknown_option_warnings() const;

  /// All keys in insertion-independent (sorted) order; for -help output.
  std::vector<std::string> keys() const;

  /// Global database used by components that are not handed one explicitly.
  static Options& global();

 private:
  std::optional<std::string> raw(const std::string& key) const;
  std::map<std::string, std::string> kv_;
};

}  // namespace kestrel
