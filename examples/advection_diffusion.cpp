// Advection-diffusion scenario: a nonsymmetric, advection-dominated system
// solved with GMRES/BiCGStab + ILU(0), with the operator held in CSR or
// SELL — the second PDE family the paper's introduction motivates (its
// test code lives in PETSc's advection-diffusion tutorial directory).
//
//   ./advection_diffusion [-n 96] [-eps 0.01] [-bx 1.0] [-by 0.5]
//                         [-ksp_type gmres|bicgstab] [-pc_type ilu|jacobi]
//                         [-mat_type sell|csr]
//                         [-mat_index 32|16] [-mat_scalar fp64|fp32]

#include <cstdio>

#include "app/advection_diffusion.hpp"
#include "base/options.hpp"
#include "ksp/context.hpp"
#include "mat/sell.hpp"
#include "mat/slim.hpp"
#include "pc/ilu0.hpp"
#include "pc/jacobi.hpp"

using namespace kestrel;

int main(int argc, char** argv) {
  Options& opts = Options::global();
  opts.parse(argc, argv);
  const Index n = opts.get_index("n", 96);
  app::AdvectionDiffusionParams params;
  params.eps = opts.get_scalar("eps", 0.01);
  params.bx = opts.get_scalar("bx", 1.0);
  params.by = opts.get_scalar("by", 0.5);
  const std::string ksp_type = opts.get_string("ksp_type", "gmres");
  const std::string pc_type = opts.get_string("pc_type", "ilu");
  const bool use_sell = opts.get_string("mat_type", "sell") == "sell";

  const Scalar h = 1.0 / (n + 1);
  std::printf("advection-diffusion: %dx%d grid, eps=%g, b=(%g, %g), "
              "cell Peclet = %.2f\n",
              n, n, params.eps, params.bx, params.by,
              std::abs(params.bx) * h / params.eps);

  const mat::Csr csr = app::advection_diffusion(n, params);
  std::shared_ptr<mat::Matrix> a;
  if (use_sell) {
    a = std::make_shared<mat::Sell>(csr);
  } else {
    a = std::make_shared<mat::Csr>(csr);
  }
  // Optional Kestrel Slim streams (-mat_index 16 / -mat_scalar fp32).
  if (!mat::apply_slim_options(*a, opts)) {
    std::printf("slim storage declined (16-bit column span exceeded); "
                "keeping fat streams\n");
  }
  std::printf("operator: %s, %lld nonzeros\n", a->format_name().c_str(),
              static_cast<long long>(a->nnz()));

  std::unique_ptr<pc::Pc> prec;
  if (pc_type == "ilu") {
    prec = std::make_unique<pc::Ilu0>(csr);
  } else {
    prec = std::make_unique<pc::Jacobi>(*a);
  }

  const Vector b = app::advection_diffusion_rhs(n);
  Vector u(csr.rows());
  ksp::Settings settings;
  settings.rtol = 1e-10;
  settings.max_iterations = 2000;
  auto solver = ksp::make_solver(ksp_type, settings);
  ksp::SeqContext ctx(*a, prec.get());
  const ksp::SolveResult res = solver->solve(ctx, b, u);

  std::printf("%s + %s: %s in %d iterations, residual %.3e\n",
              ksp_type.c_str(), prec->name().c_str(),
              res.converged ? "converged" : "FAILED", res.iterations,
              res.residual_norm);

  // physical sanity: downstream (high-x, high-y corner) boundary layer
  Scalar umax = 0.0;
  for (Index i = 0; i < u.size(); ++i) umax = std::max(umax, u[i]);
  std::printf("max(u) = %.4f (positive, bounded)\n", umax);
  return res.converged ? 0 : 1;
}
