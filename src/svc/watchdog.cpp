#include "svc/watchdog.hpp"

#include "base/error.hpp"

namespace kestrel::svc {

LoadWatchdog::LoadWatchdog(WatchdogOptions opts) : opts_(opts) {
  KESTREL_CHECK(opts_.window >= 1, "svc: watchdog window must be >= 1");
  KESTREL_CHECK(opts_.low_watermark >= 0.0 &&
                    opts_.low_watermark <= opts_.high_watermark &&
                    opts_.high_watermark <= 1.0,
                "svc: watchdog watermarks must satisfy 0 <= low <= high <= 1");
  ring_.assign(static_cast<std::size_t>(opts_.window), 0.0);
}

void LoadWatchdog::observe(int depth, int capacity) {
  double occ = 0.0;
  if (capacity > 0) {
    occ = static_cast<double>(depth < 0 ? 0 : depth) /
          static_cast<double>(capacity);
    if (occ > 1.0) occ = 1.0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  sum_ -= ring_[next_];
  ring_[next_] = occ;
  sum_ += occ;
  next_ = (next_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
  const double mean = sum_ / static_cast<double>(filled_);
  // Hysteresis: the mean must cross the *other* watermark to flip back, so
  // the mode is stable when load hovers at one boundary.
  if (!degraded_ && mean >= opts_.high_watermark &&
      filled_ == ring_.size()) {
    degraded_ = true;
    ++degrade_events_;
  } else if (degraded_ && mean <= opts_.low_watermark) {
    degraded_ = false;
    ++recover_events_;
  }
}

bool LoadWatchdog::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degraded_;
}

double LoadWatchdog::occupancy() const {
  std::lock_guard<std::mutex> lock(mu_);
  return filled_ == 0 ? 0.0 : sum_ / static_cast<double>(filled_);
}

std::uint64_t LoadWatchdog::degrade_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return degrade_events_;
}

std::uint64_t LoadWatchdog::recover_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recover_events_;
}

}  // namespace kestrel::svc
