// Section 6 memory-traffic analysis: prints the minimum-traffic model for
// CSR vs SELL alongside actual storage footprints and the achieved
// effective bandwidth of the measured kernels — the quantitative backbone
// of the paper's "SpMV is bandwidth bound" argument.

#include <cstdio>

#include "bench_common.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header("Section 6: SpMV minimum memory traffic, CSR vs SELL");

  std::printf("%10s %14s %14s %14s %9s\n", "grid", "nnz", "CSR bytes",
              "SELL bytes", "saved");
  for (Index n : {128, 256, 512, 1024}) {
    const mat::Csr csr = bench::gray_scott_matrix(bench::scaled(n, n / 16));
    const mat::Sell sell(csr);
    const double saved =
        100.0 * (1.0 - static_cast<double>(sell.spmv_traffic_bytes()) /
                           static_cast<double>(csr.spmv_traffic_bytes()));
    std::printf("%6dx%-3d %14lld %14zu %14zu %8.2f%%\n", n, n,
                static_cast<long long>(csr.nnz()), csr.spmv_traffic_bytes(),
                sell.spmv_traffic_bytes(), saved);
  }
  std::printf("\nclosed forms: CSR 12*nnz + 24m + 8n | SELL 12*nnz + 10m + 8n\n");

  bench::header("Storage footprint (actual arrays incl. padding)");
  const mat::Csr csr = bench::gray_scott_matrix(bench::scaled(384));
  const mat::Sell sell(csr);
  const mat::CsrPerm perm{mat::Csr(csr)};
  std::printf("%-10s %14zu bytes\n", "CSR", csr.storage_bytes());
  std::printf("%-10s %14zu bytes (fill ratio %.4f)\n", "SELL",
              sell.storage_bytes(), sell.fill_ratio());
  std::printf("%-10s %14zu bytes\n", "CSRPerm", perm.storage_bytes());

  bench::header("Achieved effective bandwidth of the measured kernels");
  std::printf("%-10s %10s %12s\n", "format", "Gflop/s", "GB/s (model)");
  const double t_csr = bench::time_spmv(csr);
  const double t_sell = bench::time_spmv(sell);
  std::printf("%-10s %10.2f %12.2f\n", "CSR", bench::gflops(csr, t_csr),
              bench::achieved_gbs(csr, t_csr));
  std::printf("%-10s %10.2f %12.2f\n", "SELL", bench::gflops(sell, t_sell),
              bench::achieved_gbs(sell, t_sell));
  return 0;
}
