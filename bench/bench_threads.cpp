// Kestrel Flock — intra-rank thread scaling: SpMV throughput of every
// format at 1..8 pool threads with nnz-balanced partitions.
//
// Two Gray–Scott sizes bracket the roofline: a cache-resident "small"
// matrix where the kernels are compute-bound and threads should scale
// (this is the size the CI speedup gate watches), and a memory-resident
// "large" one where shared bandwidth caps the gain — the measured contrast
// is the efficiency input of the perf::ThreadModel term (spmv_model.hpp).
//
//   ./bench_threads [--smoke] [--json BENCH_threads.json]
//
// Exported metrics: <fmt>_t<N>_gflops / <fmt>_t<N>_speedup per small-size
// config, threads_hw_cores, and threads_gate_speedup — the best speedup at
// 4 threads across formats, gated >= 2x in scripts/check.sh and CI when
// the host has at least 4 cores (threads_gate_eligible).

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/options.hpp"
#include "bench_common.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace {

using namespace kestrel;

struct FormatEntry {
  const char* label;
  std::shared_ptr<mat::Matrix> m;
};

std::vector<FormatEntry> build_formats(const mat::Csr& csr) {
  std::vector<FormatEntry> out;
  out.push_back({"csr", std::make_shared<mat::Csr>(csr)});
  out.push_back({"csrperm", std::make_shared<mat::CsrPerm>(csr)});
  out.push_back({"sell", std::make_shared<mat::Sell>(csr)});
  out.push_back({"bcsr", std::make_shared<mat::Bcsr>(csr, 2)});
  out.push_back({"talon", std::make_shared<mat::Talon>(csr)});
  return out;
}

double time_cfg(const mat::Matrix& a) {
  // The small matrix is fast; keep real repetitions even under --smoke so
  // the gate metric is a measurement, not a wiring check.
  const int reps = bench::smoke_mode() ? 5 : 30;
  const double secs = bench::smoke_mode() ? 0.02 : 0.2;
  Vector x(a.cols()), y(a.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + 0.25 * ((i * 2654435761u) % 1024) / 1024.0;
  }
  a.spmv(x.data(), y.data());
  double best = 1e300, spent = 0.0;
  int k = 0;
  while (k < reps || spent < secs) {
    const double t0 = wall_time();
    a.spmv(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = std::min(best, dt);
    spent += dt;
    ++k;
  }
  volatile double sink = y[0];
  (void)sink;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  bench::parse_args(argc, argv);
  Options::global().parse(argc, argv);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> counts = {1, 2, 4, 8};

  // The small size is fixed (not --smoke scaled): the >= 2x gate needs a
  // matrix big enough that the pool barrier is noise, yet small enough to
  // stay cache-resident (~180k nnz, ~2.6 MB of values+indices).
  const Index small_n = 96;
  const mat::Csr small = bench::gray_scott_matrix(small_n);
  bench::header("Kestrel Flock: thread scaling, cache-resident Gray-Scott " +
                std::to_string(small.rows()) + " rows");
  std::printf("host: %d hardware threads\n\n", hw);

  const std::string saved_threads =
      Options::global().get_string("threads", "");

  prof::Profiler log;
  log.set_metric("threads_hw_cores", static_cast<double>(hw));
  double gate_speedup = 0.0;

  auto formats = build_formats(small);
  std::printf("%-10s", "format");
  for (int t : counts) std::printf("   t=%d [Gflop/s]", t);
  std::printf("   speedup@4\n");
  for (auto& fe : formats) {
    std::printf("%-10s", fe.label);
    double t1 = 0.0, sp4 = 0.0;
    for (int t : counts) {
      Options::global().set("threads", std::to_string(t));
      fe.m->repartition(t);
      const double dt = time_cfg(*fe.m);
      if (t == 1) t1 = dt;
      const double speedup = t1 / dt;
      if (t == 4) sp4 = speedup;
      std::printf("   %13.2f", bench::gflops(*fe.m, dt));
      log.set_metric(std::string(fe.label) + "_t" + std::to_string(t) +
                         "_gflops",
                     bench::gflops(*fe.m, dt));
      log.set_metric(std::string(fe.label) + "_t" + std::to_string(t) +
                         "_speedup",
                     speedup);
    }
    gate_speedup = std::max(gate_speedup, sp4);
    std::printf("   %8.2fx\n", sp4);
  }

  log.set_metric("threads_gate_speedup", gate_speedup);
  log.set_metric("threads_gate_eligible", hw >= 4 ? 1.0 : 0.0);
  std::printf("\nbest speedup at 4 threads: %.2fx (gate %s: host has %d "
              "cores)\n",
              gate_speedup, hw >= 4 ? "ELIGIBLE, needs >= 2x" : "SKIPPED",
              hw);

  // Memory-resident contrast (skipped under --smoke): shared bandwidth
  // caps scaling here — this is the regime the ThreadModel keeps t_mem
  // constant in.
  if (!bench::smoke_mode()) {
    const mat::Csr large = bench::gray_scott_matrix(384);
    bench::header("Kestrel Flock: thread scaling, memory-resident Gray-"
                  "Scott " + std::to_string(large.rows()) + " rows");
    auto lformats = build_formats(large);
    std::printf("%-10s", "format");
    for (int t : counts) std::printf("   t=%d [Gflop/s]", t);
    std::printf("\n");
    for (auto& fe : lformats) {
      std::printf("%-10s", fe.label);
      for (int t : counts) {
        Options::global().set("threads", std::to_string(t));
        fe.m->repartition(t);
        const double dt = time_cfg(*fe.m);
        std::printf("   %13.2f", bench::gflops(*fe.m, dt));
        log.set_metric(std::string("large_") + fe.label + "_t" +
                           std::to_string(t) + "_gflops",
                       bench::gflops(*fe.m, dt));
      }
      std::printf("\n");
    }
  }

  // Restore the caller's -threads so the option state is as we found it.
  Options::global().set("threads",
                        saved_threads.empty() ? "1" : saved_threads);

  if (!bench::json_path().empty()) {
    std::ofstream out(bench::json_path());
    prof::write_json_metrics(out, prof::reduce(log));
    std::printf("\nmetrics written to %s\n", bench::json_path().c_str());
  }
  return 0;
}
