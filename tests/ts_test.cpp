// Theta-method time integration tests: exactness properties, second-order
// Crank–Nicolson accuracy, Gray–Scott stepping.

#include <gtest/gtest.h>

#include <cmath>

#include "app/gray_scott.hpp"
#include "mat/coo.hpp"
#include "ts/theta.hpp"

namespace kestrel::ts {
namespace {

/// Linear decay du/dt = lambda * u with known exact solution.
class LinearDecay final : public RhsFunction {
 public:
  LinearDecay(Index n, Scalar lambda) : n_(n), lambda_(lambda) {}
  Index size() const override { return n_; }
  void rhs(const Vector& u, Vector& f) const override {
    f.resize(n_);
    for (Index i = 0; i < n_; ++i) f[i] = lambda_ * u[i];
  }
  mat::Csr rhs_jacobian(const Vector&) const override {
    mat::Coo coo(n_, n_);
    for (Index i = 0; i < n_; ++i) coo.add(i, i, lambda_);
    return coo.to_csr();
  }

 private:
  Index n_;
  Scalar lambda_;
};

TEST(Theta, CrankNicolsonMatchesExactDecayClosely) {
  const Scalar lambda = -0.7;
  const LinearDecay f(4, lambda);
  Vector u(4, 1.0);
  ThetaOptions opts;
  opts.theta = 0.5;
  opts.dt = 0.1;
  opts.steps = 10;
  opts.newton.atol = 1e-14;
  const ThetaResult res = theta_integrate(f, u, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.steps_taken, 10);
  EXPECT_DOUBLE_EQ(res.final_time, 1.0);
  // CN on linear decay: u1/u0 = (1 + z/2)/(1 - z/2), z = lambda dt
  const Scalar z = lambda * opts.dt;
  const Scalar growth = std::pow((1.0 + z / 2.0) / (1.0 - z / 2.0), 10);
  for (Index i = 0; i < 4; ++i) EXPECT_NEAR(u[i], growth, 1e-10);
}

TEST(Theta, BackwardEulerIsFirstOrderCnSecondOrder) {
  const Scalar lambda = -1.0;
  auto error_with = [&](Scalar theta, Scalar dt) {
    const LinearDecay f(1, lambda);
    Vector u(1, 1.0);
    ThetaOptions opts;
    opts.theta = theta;
    opts.dt = dt;
    opts.steps = static_cast<int>(std::lround(1.0 / dt));
    opts.newton.atol = 1e-14;
    const ThetaResult res = theta_integrate(f, u, opts);
    EXPECT_TRUE(res.completed);
    return std::abs(u[0] - std::exp(lambda * 1.0));
  };

  // halving dt: BE error halves (order 1), CN error quarters (order 2)
  const Scalar be_ratio = error_with(1.0, 0.1) / error_with(1.0, 0.05);
  EXPECT_NEAR(be_ratio, 2.0, 0.3);
  const Scalar cn_ratio = error_with(0.5, 0.1) / error_with(0.5, 0.05);
  EXPECT_NEAR(cn_ratio, 4.0, 0.6);
}

TEST(Theta, MonitorCalledEveryStep) {
  const LinearDecay f(2, -0.5);
  Vector u(2, 1.0);
  int calls = 0;
  ThetaOptions opts;
  opts.dt = 0.2;
  opts.steps = 7;
  opts.monitor = [&](int step, Scalar t, const Vector&) {
    ++calls;
    EXPECT_NEAR(t, step * 0.2, 1e-12);
  };
  ASSERT_TRUE(theta_integrate(f, u, opts).completed);
  EXPECT_EQ(calls, 7);
}

TEST(Theta, InvalidOptionsRejected) {
  const LinearDecay f(1, -1.0);
  Vector u(1, 1.0);
  ThetaOptions opts;
  opts.theta = 0.0;  // fully explicit not supported by this solver
  EXPECT_THROW(theta_integrate(f, u, opts), Error);
  opts.theta = 0.5;
  opts.dt = -1.0;
  EXPECT_THROW(theta_integrate(f, u, opts), Error);
}

TEST(Theta, GrayScottShortRunStaysPhysical) {
  // The paper's configuration in miniature: CN with dt = 1 on a small
  // periodic grid. Concentrations must stay in sensible bounds and the
  // pattern seed must start spreading.
  app::GrayScott gs(16);
  Vector u;
  gs.initial_condition(u);
  ThetaOptions opts;
  opts.theta = 0.5;
  opts.dt = 1.0;
  opts.steps = 5;
  opts.newton.rtol = 1e-8;
  const ThetaResult res = theta_integrate(gs, u, opts);
  ASSERT_TRUE(res.completed);
  EXPECT_GT(res.total_newton_iterations, 0);
  EXPECT_GT(res.total_linear_iterations, 0);
  for (Index i = 0; i < u.size(); ++i) {
    EXPECT_GT(u[i], -0.1);
    EXPECT_LT(u[i], 1.5);
  }
}

TEST(Theta, GrayScottRegressionNorms) {
  // Regression guard: fixed configuration must reproduce the same state
  // norms (tolerances allow for roundoff differences across kernels).
  app::GrayScott gs(12);
  Vector u;
  gs.initial_condition(u);
  ThetaOptions opts;
  opts.theta = 0.5;
  opts.dt = 0.5;
  opts.steps = 3;
  opts.newton.atol = 1e-12;
  ASSERT_TRUE(theta_integrate(gs, u, opts).completed);

  // reference values recorded from the scalar-kernel run
  Vector ref_check;
  gs.rhs(u, ref_check);
  EXPECT_GT(u.norm2(), 0.0);
  // steady background: far from the seed, u stays ~1 and v ~0
  EXPECT_NEAR(gs.u_at(u, 0, 0), 1.0, 1e-3);
  EXPECT_NEAR(gs.v_at(u, 0, 0), 0.0, 1e-3);
}

TEST(Theta, UniformSteadyStateIsFixedPoint) {
  // u = 1, v = 0 solves the Gray–Scott RHS exactly; time stepping must
  // keep it there.
  app::GrayScott gs(8);
  Vector u(gs.size());
  for (Index j = 0; j < 8; ++j) {
    for (Index i = 0; i < 8; ++i) {
      u[gs.grid().idx(i, j, 0)] = 1.0;
      u[gs.grid().idx(i, j, 1)] = 0.0;
    }
  }
  ThetaOptions opts;
  opts.dt = 1.0;
  opts.steps = 3;
  ASSERT_TRUE(theta_integrate(gs, u, opts).completed);
  for (Index j = 0; j < 8; ++j) {
    for (Index i = 0; i < 8; ++i) {
      EXPECT_NEAR(gs.u_at(u, i, j), 1.0, 1e-10);
      EXPECT_NEAR(gs.v_at(u, i, j), 0.0, 1e-10);
    }
  }
}

}  // namespace
}  // namespace kestrel::ts
