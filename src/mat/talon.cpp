#include "mat/talon.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <span>
#include <vector>

#include "base/error.hpp"
#include "mat/csr.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

namespace {

/// Output sink for walk_panel; null pointers mean count-only.
struct PanelSink {
  std::vector<Index>* block_col = nullptr;
  std::vector<std::uint32_t>* block_mask = nullptr;
  std::vector<Scalar>* val = nullptr;
};

/// Covers rows [row0, row0+r) with beta blocks: each block starts at the
/// smallest not-yet-covered column over all r rows and spans kZmmDoubles
/// consecutive columns. Returns the block count; when `out` has sinks,
/// appends the block metadata and the packed values in (block, row,
/// ascending-column) order — exactly the order the kernels consume.
Index walk_panel(const Csr& csr, Index row0, Index r, const PanelSink& out) {
  std::span<const Index> cols[4];
  std::span<const Scalar> vals[4];
  Index cur[4] = {0, 0, 0, 0};
  for (Index j = 0; j < r; ++j) {
    cols[j] = csr.row_cols(row0 + j);
    vals[j] = csr.row_vals(row0 + j);
  }
  Index nblocks = 0;
  for (;;) {
    Index c0 = std::numeric_limits<Index>::max();
    for (Index j = 0; j < r; ++j) {
      if (cur[j] < static_cast<Index>(cols[j].size())) {
        c0 = std::min(c0, cols[j][static_cast<std::size_t>(cur[j])]);
      }
    }
    if (c0 == std::numeric_limits<Index>::max()) break;
    ++nblocks;
    std::uint32_t mask = 0;
    for (Index j = 0; j < r; ++j) {
      std::uint32_t row_bits = 0;
      const auto len = static_cast<Index>(cols[j].size());
      while (cur[j] < len &&
             cols[j][static_cast<std::size_t>(cur[j])] < c0 + kZmmDoubles) {
        const Index col = cols[j][static_cast<std::size_t>(cur[j])];
        row_bits |= 1u << static_cast<unsigned>(col - c0);
        if (out.val != nullptr) {
          out.val->push_back(vals[j][static_cast<std::size_t>(cur[j])]);
        }
        ++cur[j];
      }
      mask |= row_bits << (8u * static_cast<unsigned>(j));
    }
    if (out.block_col != nullptr) {
      out.block_col->push_back(c0);
      out.block_mask->push_back(mask);
    }
  }
  return nblocks;
}

}  // namespace

Talon::Talon(const Csr& csr, TalonOptions opts) { build(csr, opts); }

void Talon::build(const Csr& csr, const TalonOptions& opts) {
  KESTREL_CHECK(opts.force_r == 0 || opts.force_r == 1 || opts.force_r == 2 ||
                    opts.force_r == 4,
                "Talon panel height must be 1, 2 or 4 (0 = auto)");
  m_ = csr.rows();
  n_ = csr.cols();
  nnz_ = csr.nnz();
  // Blocks cover consecutive columns, so the inspector needs column-sorted
  // rows (Coo::to_csr produces them; assert rather than silently miscount).
  for (Index i = 0; i < m_; ++i) {
    const auto cols = csr.row_cols(i);
    KESTREL_CHECK(std::is_sorted(cols.begin(), cols.end()),
                  "Talon requires column-sorted CSR rows");
  }

  std::vector<Index> panel_row{0};
  std::vector<Index> panel_blockptr{0};
  std::vector<Index> panel_valptr{0};
  std::vector<Index> block_col;
  std::vector<std::uint32_t> block_mask;
  std::vector<Scalar> val;
  block_col.reserve(static_cast<std::size_t>(nnz_ / 4 + 1));
  val.reserve(static_cast<std::size_t>(nnz_));

  Index pos = 0;
  while (pos < m_) {
    const Index remaining = m_ - pos;
    Index r = 1;
    if (opts.force_r != 0) {
      // Uniform height; the tail decomposes into the largest legal heights.
      r = opts.force_r;
      while (r > remaining) r /= 2;
    } else {
      // Inspector: per-row cost of covering rows [pos, pos+r) as one panel
      // is nblocks * (r value streams + 1 block of x/metadata) / r. Ties go
      // to the taller panel (fewer panels, wider accumulator reuse).
      double best = std::numeric_limits<double>::max();
      for (const Index cand : {Index{4}, Index{2}, Index{1}}) {
        if (cand > remaining) continue;
        const Index nb = walk_panel(csr, pos, cand, PanelSink{});
        const double score = static_cast<double>(nb) *
                             static_cast<double>(cand + 1) /
                             static_cast<double>(cand);
        if (score < best) {
          best = score;
          r = cand;
        }
      }
    }
    const PanelSink sink{&block_col, &block_mask, &val};
    walk_panel(csr, pos, r, sink);
    pos += r;
    panel_row.push_back(pos);
    panel_blockptr.push_back(static_cast<Index>(block_col.size()));
    panel_valptr.push_back(static_cast<Index>(val.size()));
  }
  npanels_ = static_cast<Index>(panel_row.size()) - 1;
  KESTREL_CHECK(static_cast<std::int64_t>(val.size()) == nnz_,
                "Talon inspector lost nonzeros");

  const auto copy_to = [](auto& dst, const auto& src) {
    dst.resize(src.size());
    std::copy(src.begin(), src.end(), dst.data());
  };
  copy_to(panel_row_, panel_row);
  copy_to(panel_blockptr_, panel_blockptr);
  copy_to(panel_valptr_, panel_valptr);
  copy_to(block_col_, block_col);
  copy_to(block_mask_, block_mask);
  copy_to(val_, val);
  repartition(par::configured_threads());
}

void Talon::repartition(int nparts) {
  part_ = nnz_balance(panel_valptr_.data(), npanels_, nparts);
}

void Talon::run_partitioned(simd::TalonSpmvFn fn, const Scalar* x,
                            Scalar* y) const {
  if (part_.nparts() <= 1) {
    fn(view(), x, y);
    return;
  }
  // Flock: contiguous panel ranges through offset sub-views. All three
  // panel arrays hold absolute positions (rows, blocks, values), so only
  // their pointers shift; the kernels write y[panel_row[p] + j] absolutely,
  // so y does not move and panels' disjoint row ranges keep writes
  // race-free.
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index p0 = part_.begin(p);
    const Index p1 = part_.end(p);
    if (p0 == p1) return;
    const TalonView sub{m_,
                        n_,
                        p1 - p0,
                        panel_row_.data() + p0,
                        panel_blockptr_.data() + p0,
                        panel_valptr_.data() + p0,
                        block_col_.data(),
                        block_mask_.data(),
                        val_.data()};
    fn(sub, x, y);
  });
}

void Talon::spmv(const Scalar* x, Scalar* y) const {
  if (slim_.active()) {
    spmv_slim(x, y);
    return;
  }
  spmv_fat(x, y);
}

void Talon::spmv_wide(const Scalar* x, Scalar* y) const { spmv_fat(x, y); }

void Talon::spmv_fat(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(talon)", 2 * nnz(), fat_spmv_traffic_bytes());
  // No tier constraints: every kernel handles all panel heights, and the
  // missing AVX tier falls back to scalar through dispatch.
  auto fn = simd::lookup_as<simd::TalonSpmvFn>(simd::Op::kTalonSpmv, tier_);
  run_partitioned(fn, x, y);
}

void Talon::spmv_slim(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(talon_slim)", 2 * nnz(), spmv_traffic_bytes());
  auto fn = simd::lookup_as<simd::TalonSlimSpmvFn>(simd::Op::kTalonSlimSpmv,
                                                   tier_);
  run_partitioned_slim(fn, x, y);
}

void Talon::run_partitioned_slim(simd::TalonSlimSpmvFn fn, const Scalar* x,
                                 Scalar* y) const {
  const TalonSlimView v = slim_view();
  if (part_.nparts() <= 1) {
    fn(v, x, y);
    return;
  }
  // Same shift rules as the fat sub-view: the panel arrays hold absolute
  // positions into block_col/block_mask/val32, so only their pointers move.
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index p0 = part_.begin(p);
    const Index p1 = part_.end(p);
    if (p0 == p1) return;
    TalonSlimView sub = v;
    sub.npanels = p1 - p0;
    sub.panel_row = v.panel_row + p0;
    sub.panel_blockptr = v.panel_blockptr + p0;
    sub.panel_valptr = v.panel_valptr + p0;
    fn(sub, x, y);
  });
}

TalonSlimView Talon::slim_view() const {
  return {m_,
          n_,
          npanels_,
          slim_.fp32() ? Index{1} : Index{0},
          panel_row_.data(),
          panel_blockptr_.data(),
          panel_valptr_.data(),
          block_col_.data(),
          block_mask_.data(),
          val_.data(),
          slim_.val32()};
}

bool Talon::set_slim(const SlimOptions& opts) {
  // idx16 is a no-op here (block_col + mask already is the compressed
  // index stream); only fp32 materializes a side stream, mirroring the
  // packed value order exactly.
  return slim_.attach_values(opts, val_.data(), val_.size());
}

void Talon::spmv_add(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMultAdd(talon)", 2 * nnz(), fat_spmv_traffic_bytes());
  auto fn =
      simd::lookup_as<simd::TalonSpmvFn>(simd::Op::kTalonSpmvAdd, tier_);
  run_partitioned(fn, x, y);
}

double Talon::block_fill() const {
  std::int64_t capacity = 0;
  for (Index p = 0; p < npanels_; ++p) {
    const Index r = panel_row_[static_cast<std::size_t>(p) + 1] -
                    panel_row_[static_cast<std::size_t>(p)];
    const Index nb = panel_blockptr_[static_cast<std::size_t>(p) + 1] -
                     panel_blockptr_[static_cast<std::size_t>(p)];
    capacity += static_cast<std::int64_t>(r) * kZmmDoubles * nb;
  }
  return capacity == 0
             ? 1.0
             : static_cast<double>(nnz_) / static_cast<double>(capacity);
}

Index Talon::panels_with_r(Index r) const {
  Index count = 0;
  for (Index p = 0; p < npanels_; ++p) {
    if (panel_row_[static_cast<std::size_t>(p) + 1] -
            panel_row_[static_cast<std::size_t>(p)] ==
        r) {
      ++count;
    }
  }
  return count;
}

void Talon::get_diagonal(Vector& d) const {
  KESTREL_CHECK(m_ == n_, "get_diagonal requires a square matrix");
  d.resize(m_);
  d.set(0.0);
  for (Index p = 0; p < npanels_; ++p) {
    const Index row0 = panel_row_[static_cast<std::size_t>(p)];
    const Index r = panel_row_[static_cast<std::size_t>(p) + 1] - row0;
    Index v = panel_valptr_[static_cast<std::size_t>(p)];
    for (Index b = panel_blockptr_[static_cast<std::size_t>(p)];
         b < panel_blockptr_[static_cast<std::size_t>(p) + 1]; ++b) {
      const Index c0 = block_col_[static_cast<std::size_t>(b)];
      const std::uint32_t mask = block_mask_[static_cast<std::size_t>(b)];
      for (Index j = 0; j < r; ++j) {
        std::uint32_t bits = (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
        while (bits != 0) {
          const int k = std::countr_zero(bits);
          if (c0 + k == row0 + j) d[row0 + j] = val_[static_cast<std::size_t>(v)];
          ++v;
          bits &= bits - 1;
        }
      }
    }
  }
}

void Talon::abft_col_checksum(Vector& c) const {
  c.resize(n_);
  c.set(0.0);
  for (Index p = 0; p < npanels_; ++p) {
    const Index row0 = panel_row_[static_cast<std::size_t>(p)];
    const Index r = panel_row_[static_cast<std::size_t>(p) + 1] - row0;
    Index v = panel_valptr_[static_cast<std::size_t>(p)];
    for (Index b = panel_blockptr_[static_cast<std::size_t>(p)];
         b < panel_blockptr_[static_cast<std::size_t>(p) + 1]; ++b) {
      const Index c0 = block_col_[static_cast<std::size_t>(b)];
      const std::uint32_t mask = block_mask_[static_cast<std::size_t>(b)];
      for (Index j = 0; j < r; ++j) {
        std::uint32_t bits = (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
        while (bits != 0) {
          const int k = std::countr_zero(bits);
          c[c0 + k] += val_[static_cast<std::size_t>(v)];
          ++v;
          bits &= bits - 1;
        }
      }
    }
  }
}

std::size_t Talon::storage_bytes() const {
  return (panel_row_.size() + panel_blockptr_.size() + panel_valptr_.size() +
          block_col_.size()) *
             sizeof(Index) +
         block_mask_.size() * sizeof(std::uint32_t) +
         val_.size() * sizeof(Scalar);
}

// argus-traffic-model: talon
// argus-traffic-stream: val = 8 * nnz
// argus-traffic-stream: block_col = 4 * nblocks
// argus-traffic-stream: block_mask = 4 * nblocks
// argus-traffic-stream: panel_row = 4 * npanels
// argus-traffic-stream: panel_blockptr = 4 * npanels
// argus-traffic-stream: panel_valptr = 4 * npanels
// argus-traffic-stream: y = 8 * m : wa
// argus-traffic-stream: x = 8 * n
// argus-traffic-bind: num_blocks() = nblocks
// argus-traffic-bind: nnz_ = nnz
// argus-traffic-bind: npanels_ = npanels
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-cpp: fat_spmv_traffic_bytes
std::size_t Talon::fat_spmv_traffic_bytes() const {
  // Section 6-style model: 8 bytes per stored value (no per-entry column
  // index — that is the point of the format), 8 bytes per block (4 start
  // column + 4 mask), 12 bytes per panel (row/blockptr/valptr entries),
  // plus the x and y vectors.
  return 8 * static_cast<std::size_t>(nnz_) +
         8 * static_cast<std::size_t>(num_blocks()) +
         12 * static_cast<std::size_t>(npanels_) +
         8 * static_cast<std::size_t>(n_) + 8 * static_cast<std::size_t>(m_);
}

// Kestrel Slim traffic: only the packed value stream changes (4 B fp32
// instead of 8 B double); the block/panel metadata is identical and the fat
// val array is not touched (`alt`).
// argus-traffic-model: talon_slim
// argus-traffic-stream: val32 = 4 * nnz : esize 4
// argus-traffic-stream: block_col = 4 * nblocks
// argus-traffic-stream: block_mask = 4 * nblocks
// argus-traffic-stream: panel_row = 4 * npanels
// argus-traffic-stream: panel_blockptr = 4 * npanels
// argus-traffic-stream: panel_valptr = 4 * npanels
// argus-traffic-stream: y = 8 * m : wa
// argus-traffic-stream: x = 8 * n
// argus-traffic-stream: val = 0 : alt
// argus-traffic-bind: num_blocks() = nblocks
// argus-traffic-bind: nnz_ = nnz
// argus-traffic-bind: npanels_ = npanels
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-cpp: slim_spmv_traffic_bytes
std::size_t Talon::slim_spmv_traffic_bytes() const {
  return 4 * static_cast<std::size_t>(nnz_) +
         8 * static_cast<std::size_t>(num_blocks()) +
         12 * static_cast<std::size_t>(npanels_) +
         8 * static_cast<std::size_t>(n_) + 8 * static_cast<std::size_t>(m_);
}

std::size_t Talon::spmv_traffic_bytes() const {
  return slim_.fp32() ? slim_spmv_traffic_bytes() : fat_spmv_traffic_bytes();
}

void Talon::copy_values_from(const Csr& csr) {
  KESTREL_CHECK(csr.rows() == m_ && csr.cols() == n_ && csr.nnz() == nnz_,
                "copy_values_from: shape mismatch");
  std::vector<Index> cursor(static_cast<std::size_t>(m_), 0);
  Index v = 0;
  for (Index p = 0; p < npanels_; ++p) {
    const Index row0 = panel_row_[static_cast<std::size_t>(p)];
    const Index r = panel_row_[static_cast<std::size_t>(p) + 1] - row0;
    for (Index b = panel_blockptr_[static_cast<std::size_t>(p)];
         b < panel_blockptr_[static_cast<std::size_t>(p) + 1]; ++b) {
      const Index c0 = block_col_[static_cast<std::size_t>(b)];
      const std::uint32_t mask = block_mask_[static_cast<std::size_t>(b)];
      for (Index j = 0; j < r; ++j) {
        std::uint32_t bits = (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
        const Index row = row0 + j;
        const auto cols = csr.row_cols(row);
        const auto vals = csr.row_vals(row);
        while (bits != 0) {
          const int k = std::countr_zero(bits);
          auto& cur = cursor[static_cast<std::size_t>(row)];
          KESTREL_CHECK(cur < static_cast<Index>(cols.size()) &&
                            cols[static_cast<std::size_t>(cur)] == c0 + k,
                        "copy_values_from: sparsity pattern changed");
          val_[static_cast<std::size_t>(v)] =
              vals[static_cast<std::size_t>(cur)];
          ++cur;
          ++v;
          bits &= bits - 1;
        }
      }
    }
  }
  for (Index i = 0; i < m_; ++i) {
    KESTREL_CHECK(cursor[static_cast<std::size_t>(i)] == csr.row_nnz(i),
                  "copy_values_from: sparsity pattern changed");
  }
  slim_.refresh_values(val_.data(), val_.size());
}

Csr Talon::to_csr() const {
  std::vector<Index> rowptr(static_cast<std::size_t>(m_) + 1, 0);
  for (Index p = 0; p < npanels_; ++p) {
    const Index row0 = panel_row_[static_cast<std::size_t>(p)];
    const Index r = panel_row_[static_cast<std::size_t>(p) + 1] - row0;
    for (Index b = panel_blockptr_[static_cast<std::size_t>(p)];
         b < panel_blockptr_[static_cast<std::size_t>(p) + 1]; ++b) {
      const std::uint32_t mask = block_mask_[static_cast<std::size_t>(b)];
      for (Index j = 0; j < r; ++j) {
        rowptr[static_cast<std::size_t>(row0 + j) + 1] += std::popcount(
            (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu);
      }
    }
  }
  for (Index i = 0; i < m_; ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] +=
        rowptr[static_cast<std::size_t>(i)];
  }
  const std::size_t total =
      m_ == 0 ? 0 : static_cast<std::size_t>(rowptr[static_cast<std::size_t>(m_)]);
  std::vector<Index> colidx(total);
  std::vector<Scalar> val(total);
  std::vector<Index> cursor(rowptr.begin(), rowptr.end() - 1);
  Index v = 0;
  // Blocks ascend in start column and bits ascend within a block, so each
  // row's entries come out column-sorted.
  for (Index p = 0; p < npanels_; ++p) {
    const Index row0 = panel_row_[static_cast<std::size_t>(p)];
    const Index r = panel_row_[static_cast<std::size_t>(p) + 1] - row0;
    for (Index b = panel_blockptr_[static_cast<std::size_t>(p)];
         b < panel_blockptr_[static_cast<std::size_t>(p) + 1]; ++b) {
      const Index c0 = block_col_[static_cast<std::size_t>(b)];
      const std::uint32_t mask = block_mask_[static_cast<std::size_t>(b)];
      for (Index j = 0; j < r; ++j) {
        std::uint32_t bits = (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
        while (bits != 0) {
          const int k = std::countr_zero(bits);
          auto& cur = cursor[static_cast<std::size_t>(row0 + j)];
          colidx[static_cast<std::size_t>(cur)] = c0 + k;
          val[static_cast<std::size_t>(cur)] = val_[static_cast<std::size_t>(v)];
          ++cur;
          ++v;
          bits &= bits - 1;
        }
      }
    }
  }
  return Csr(m_, n_, std::move(rowptr), std::move(colidx), std::move(val));
}

}  // namespace kestrel::mat
