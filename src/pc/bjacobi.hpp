#pragma once
// Block-Jacobi with small dense blocks: inverts each bs x bs diagonal block
// exactly. For PDE systems with multiple coupled degrees of freedom per
// grid point (Gray–Scott has 2) this captures the local reaction coupling
// that point Jacobi ignores.

#include "base/aligned.hpp"
#include "pc/pc.hpp"

namespace kestrel::mat {
class Csr;
}

namespace kestrel::pc {

class BlockJacobi final : public Pc {
 public:
  BlockJacobi(const mat::Csr& a, Index block_size);

  void apply(const Vector& r, Vector& z) const override;
  std::string name() const override { return "bjacobi"; }
  Index block_size() const { return bs_; }

 private:
  Index bs_ = 0;
  Index nblocks_ = 0;
  AlignedBuffer<Scalar> inv_blocks_;  ///< bs*bs per block, row-major
};

}  // namespace kestrel::pc
