// Ablation (paper section 5.1): slice height sweep. C = 8 (one ZMM of
// doubles) is the paper's choice for KNL; smaller C pads less but
// under-fills the vector registers, larger C pads more for no gain.

#include <cstdio>

#include "base/rng.hpp"
#include "bench_common.hpp"
#include "mat/coo.hpp"
#include "mat/sell.hpp"

namespace {

using namespace kestrel;

mat::Csr mildly_irregular(Index n) {
  Rng rng(11);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    const Index len = 6 + rng.next_index(9);  // 6..14 nonzeros
    for (Index k = 0; k < len; ++k) {
      coo.add(i, (i + rng.next_index(129) - 64 + n) % n,
              rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csr();
}

void sweep(const char* label, const mat::Csr& csr) {
  std::printf("\n-- %s --\n", label);
  std::printf("%8s %12s %10s %12s\n", "C", "fill ratio", "Gflop/s",
              "kernel tier");
  for (Index c : {1, 2, 4, 8, 16, 32}) {
    mat::SellOptions opts;
    opts.slice_height = c;
    const mat::Sell sell(csr, opts);
    const double t = bench::time_spmv(sell);
    const char* tier = c % 8 == 0   ? "avx512"
                       : c % 4 == 0 ? "avx2"
                                    : "scalar";
    std::printf("%8d %12.4f %10.2f %12s\n", c, sell.fill_ratio(),
                bench::gflops(sell, t), tier);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header("Ablation 5.1: SELL slice height sweep");
  sweep("gray-scott 320^2 (uniform 10/row)",
        bench::gray_scott_matrix(bench::scaled(320)));
  sweep("mildly irregular 80k", mildly_irregular(bench::scaled(80000, 1000)));
  std::printf(
      "\nExpected (paper): C = 8 — the 512-bit register height — is the\n"
      "sweet spot: full-width unmasked vectors with minimal padding.\n"
      "C < 8 can't fill a ZMM register; C > 8 pads more without adding\n"
      "parallelism.\n");
  return 0;
}
