#pragma once
// Shared deterministic matrix generators for the test suite: the sparsity
// shapes that stress SpMV kernels differently (banded PDE-like, uniform
// random, power-law row lengths, empty rows, a dense row, tiny edge cases).

#include <vector>

#include "base/rng.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"

namespace kestrel::testing {

/// Banded matrix with the given symmetric band offsets (clipped at edges).
inline mat::Csr banded(Index n, std::vector<Index> offsets,
                       std::uint64_t seed = 1) {
  Rng rng(seed);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index off : offsets) {
      const Index j = i + off;
      if (j >= 0 && j < n) coo.add(i, j, rng.uniform(-1.0, 1.0));
    }
    coo.add(i, i, 4.0 + rng.uniform(0.0, 1.0));  // strong diagonal
  }
  return coo.to_csr();
}

/// Every row gets `per_row` entries at uniformly random columns.
inline mat::Csr uniform_random(Index m, Index n, Index per_row,
                               std::uint64_t seed = 2) {
  Rng rng(seed);
  mat::Coo coo(m, n);
  for (Index i = 0; i < m; ++i) {
    for (Index k = 0; k < per_row; ++k) {
      coo.add(i, rng.next_index(n), rng.uniform(-2.0, 2.0));
    }
  }
  return coo.to_csr();
}

/// Row lengths follow a rough power law: a few long rows, many short —
/// the SELL worst case that motivates slicing/sorting.
inline mat::Csr power_law(Index n, std::uint64_t seed = 3) {
  Rng rng(seed);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    const double u = rng.next_double();
    Index len = static_cast<Index>(1.0 + 3.0 / (0.05 + u));
    if (len > n) len = n;
    for (Index k = 0; k < len; ++k) {
      coo.add(i, rng.next_index(n), rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csr();
}

/// Matrix where a stretch of rows in the middle is completely empty.
inline mat::Csr with_empty_rows(Index n, std::uint64_t seed = 4) {
  Rng rng(seed);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    if (i >= n / 3 && i < n / 3 + n / 4) continue;  // empty band
    for (Index k = 0; k < 3; ++k) {
      coo.add(i, rng.next_index(n), rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csr();
}

/// Sparse matrix with one fully dense row (long inner loop, remainder 0).
inline mat::Csr with_dense_row(Index n, std::uint64_t seed = 5) {
  Rng rng(seed);
  mat::Coo coo(n, n);
  for (Index j = 0; j < n; ++j) coo.add(n / 2, j, rng.uniform(-1.0, 1.0));
  for (Index i = 0; i < n; ++i) {
    coo.add(i, i, 2.0);
    coo.add(i, (i * 7 + 1) % n, -1.0);
  }
  return coo.to_csr();
}

/// Single-column matrix (n x 1): the narrowest gather/block edge case —
/// every format's column space is one entry wide. Some rows are empty.
inline mat::Csr single_column(Index m, std::uint64_t seed = 6) {
  Rng rng(seed);
  mat::Coo coo(m, 1);
  for (Index i = 0; i < m; ++i) {
    if (i % 3 == 2) continue;  // sprinkle empty rows
    coo.add(i, 0, rng.uniform(-1.0, 1.0));
  }
  return coo.to_csr();
}

/// The LAST column's only nonzero sits in the LAST row: a block/slice that
/// starts near n-1 must edge-mask its x load, and any kernel that touches
/// x past the mask reads out of bounds (caught under ASan).
inline mat::Csr last_row_only_column(Index n, std::uint64_t seed = 7) {
  Rng rng(seed);
  mat::Coo coo(n, n);
  for (Index i = 0; i + 1 < n; ++i) {
    coo.add(i, i, 3.0 + rng.uniform(0.0, 1.0));
    if (i > 0) coo.add(i, rng.next_index(n - 1), rng.uniform(-1.0, 1.0));
  }
  coo.add(n - 1, n - 1, 5.0);  // sole entry in column n-1
  coo.add(n - 1, 0, rng.uniform(-1.0, 1.0));
  return coo.to_csr();
}

/// Nonzero runs deliberately straddle every width-8 slice/block boundary:
/// clusters of 3 columns centered on multiples of 8, and row lengths that
/// shift by one across each row-group-of-8 boundary.
inline mat::Csr straddling_boundaries(Index n, std::uint64_t seed = 8) {
  Rng rng(seed);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index c = 8; c < n; c += 8) {
      if ((i + c / 8) % 3 == 0) continue;  // gaps so blocks break up
      for (Index j = c - 1; j <= c + 1 && j < n; ++j) {
        coo.add(i, j, rng.uniform(-1.0, 1.0));
      }
    }
    coo.add(i, i, 4.0);
    if (i % 8 == 7 && i + 1 < n) coo.add(i, i + 1, rng.uniform(-1.0, 1.0));
  }
  return coo.to_csr();
}

/// Deterministic dense reference product y = A x.
inline std::vector<Scalar> dense_spmv(const mat::Csr& a,
                                      const std::vector<Scalar>& x) {
  std::vector<Scalar> y(static_cast<std::size_t>(a.rows()), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    Scalar sum = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      sum += vals[k] * x[static_cast<std::size_t>(cols[k])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
  return y;
}

inline std::vector<Scalar> random_x(Index n, std::uint64_t seed = 9) {
  Rng rng(seed);
  std::vector<Scalar> x(static_cast<std::size_t>(n));
  for (auto& v : x) v = rng.uniform(-1.0, 1.0);
  return x;
}

}  // namespace kestrel::testing
