// Chebyshev semi-iteration over the spectrum [emin, emax] of the
// preconditioned operator. No inner products per iteration, which is why
// PETSc prefers it as a parallel multigrid smoother; here it doubles as an
// alternative smoother for the MG preconditioner.

#include "base/error.hpp"
#include "ksp/ksp.hpp"

namespace kestrel::ksp {

SolveResult Chebyshev::solve_once(LinearContext& ctx, const Vector& b,
                                  Vector& x) const {
  const Index n = ctx.local_size();
  KESTREL_CHECK(b.size() == n, "chebyshev: rhs size mismatch");
  KESTREL_CHECK(x.size() == n, "chebyshev: solution size mismatch");
  KESTREL_CHECK(emax_ > 0.0 && emax_ > emin_,
                "chebyshev: invalid eigenvalue bounds");
  SolveResult result;

  const Scalar theta = 0.5 * (emax_ + emin_);  // center
  const Scalar delta = 0.5 * (emax_ - emin_);  // half-width

  Vector r(n), z(n), p(n);
  ctx.apply_operator(x, r);
  r.aypx(-1.0, b);
  const Scalar rnorm0 = ctx.norm2(r);
  if (check(rnorm0, rnorm0, 0, &result)) return result;

  Scalar alpha = 0.0;
  for (int it = 1;; ++it) {
    ctx.apply_pc(r, z);
    if (it == 1) {
      p.copy_from(z);
      alpha = 1.0 / theta;
    } else {
      Scalar beta;
      if (it == 2) {
        beta = 0.5 * (delta * alpha) * (delta * alpha);
      } else {
        beta = (delta * alpha / 2.0) * (delta * alpha / 2.0);
      }
      alpha = 1.0 / (theta - beta / alpha);
      p.aypx(beta, z);  // p = z + beta p
    }
    x.axpy(alpha, p);
    ctx.apply_operator(x, r);
    r.aypx(-1.0, b);
    const Scalar rnorm = ctx.norm2(r);
    if (check(rnorm, rnorm0, it, &result)) return result;
  }
}

}  // namespace kestrel::ksp
