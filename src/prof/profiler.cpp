#include "prof/profiler.hpp"

#include <atomic>
#include <cstdlib>
#include <thread>
#include <unordered_map>

#include "base/error.hpp"
#include "base/options.hpp"

namespace kestrel {

double wall_time() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace kestrel

namespace kestrel::prof {

namespace {

/// Locked name <-> id registry. Lookup is hash-map O(1) (the old EventLog
/// scanned linearly per lookup); call sites additionally cache the id in a
/// function-local static so the hot path never takes this lock.
class NameRegistry {
 public:
  int id_of(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const int id = static_cast<int>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }
  const std::string& name_of(int id) const {
    std::lock_guard<std::mutex> lock(mu_);
    KESTREL_CHECK(id >= 0 && id < static_cast<int>(names_.size()),
                  "prof: unknown registry id");
    return names_[static_cast<std::size_t>(id)];
  }
  int size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(names_.size());
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

NameRegistry& event_registry() {
  static NameRegistry reg;
  return reg;
}

NameRegistry& stage_registry() {
  static NameRegistry reg;
  static const int main_stage = reg.id_of("Main Stage");  // kMainStage == 0
  (void)main_stage;
  return reg;
}

std::atomic<bool> g_enabled{false};
std::atomic<bool> g_tracing{false};

thread_local Profiler* t_attached = nullptr;

/// Hard cap on recorded spans per profiler: long solves would otherwise
/// grow the trace without bound. Overflow is counted, never silent.
constexpr std::size_t kMaxSpans = 1u << 20;

}  // namespace

int registered_event(const std::string& name) {
  return event_registry().id_of(name);
}

int registered_stage(const std::string& name) {
  return stage_registry().id_of(name);
}

const std::string& event_name(int id) { return event_registry().name_of(id); }

const std::string& stage_name(int id) { return stage_registry().name_of(id); }

int num_registered_events() { return event_registry().size(); }

int num_registered_stages() { return stage_registry().size(); }

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) { g_enabled.store(on, std::memory_order_relaxed); }

bool tracing() { return g_tracing.load(std::memory_order_relaxed); }

void set_tracing(bool on) { g_tracing.store(on, std::memory_order_relaxed); }

LogConfig configure(const Options& opts) {
  LogConfig cfg;
  cfg.view = opts.get_bool("log_view", false);
  cfg.trace_path = opts.get_string("log_trace", "");
  cfg.json_path = opts.get_string("log_json", "");
  if (const char* v = std::getenv("KESTREL_LOG_VIEW")) {
    if (*v != '\0' && !(v[0] == '0' && v[1] == '\0')) cfg.view = true;
  }
  if (const char* v = std::getenv("KESTREL_LOG_TRACE")) {
    if (cfg.trace_path.empty() && *v != '\0') cfg.trace_path = v;
  }
  if (const char* v = std::getenv("KESTREL_LOG_JSON")) {
    if (cfg.json_path.empty() && *v != '\0') cfg.json_path = v;
  }
  cfg.hwc = opts.get_bool("log_hwc", false);
  if (const char* v = std::getenv("KESTREL_LOG_HWC")) {
    if (*v != '\0' && !(v[0] == '0' && v[1] == '\0')) cfg.hwc = true;
  }
  if (cfg.any()) set_enabled(true);
  if (!cfg.trace_path.empty()) set_tracing(true);
  // Kestrel Pulse: turn counter sampling on only if the host can deliver it;
  // otherwise enable_if_capable() warns once and the run keeps the modeled
  // bytes-only path. cfg.hwc reports what actually happened.
  if (cfg.hwc) cfg.hwc = hwc::enable_if_capable();
  return cfg;
}

// ---- Profiler ------------------------------------------------------------

Profiler::Profiler() : created_(wall_time()) {
  stage_stack_.push_back(kMainStage);
}

EventPerf& Profiler::cell(int stage, int event) {
  KESTREL_CHECK(stage >= 0 && event >= 0, "prof: bad stage/event id");
  if (static_cast<std::size_t>(stage) >= perf_.size()) {
    perf_.resize(static_cast<std::size_t>(stage) + 1);
  }
  auto& row = perf_[static_cast<std::size_t>(stage)];
  if (static_cast<std::size_t>(event) >= row.size()) {
    row.resize(static_cast<std::size_t>(event) + 1);
  }
  return row[static_cast<std::size_t>(event)];
}

std::vector<Profiler::Running>& Profiler::running_stack() {
  // Keyed per thread: Flock pool workers begin/end concurrently against the
  // rank profiler, and a shared LIFO would cross-pair their spans. The map
  // node outlives the job (stale empty stacks cost a few bytes until
  // reset()); the reference is only used under mu_.
  return running_[std::this_thread::get_id()];
}

void Profiler::begin(int event) {
  // Snapshot counters and clock before taking the lock: lock wait time must
  // not be attributed to the event.
  hwc::Reading hwc0;
  if (hwc::enabled()) hwc0 = hwc::read_thread();
  const double now = wall_time();
  std::lock_guard<std::mutex> lock(mu_);
  running_stack().push_back({event, now, hwc0});
}

void Profiler::end(int event, std::uint64_t flops, std::uint64_t bytes) {
  hwc::Reading hwc1;
  if (hwc::enabled()) hwc1 = hwc::read_thread();
  const double now = wall_time();
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Running>& running = running_stack();
  KESTREL_CHECK(!running.empty(), "prof: end('" + event_name(event) +
                                      "') with no running event");
  const Running top = running.back();
  if (top.event != event) {
    KESTREL_FAIL("prof: end('" + event_name(event) +
                 "') does not match the innermost running event '" +
                 event_name(top.event) + "' — begin/end must nest");
  }
  running.pop_back();
  const int stage = stage_stack_.back();
  EventPerf& p = cell(stage, event);
  p.seconds += now - top.t0;
  p.calls += 1;
  p.flops += flops;
  p.bytes += bytes;
  const hwc::Reading d = hwc::delta(top.hwc0, hwc1);
  p.cycles += d.cycles;
  p.instructions += d.instructions;
  p.llc_misses += d.llc_misses;
  p.hwc_bytes += d.dram_bytes;
  if (tracing()) {
    if (spans_.size() < kMaxSpans) {
      spans_.push_back({event, stage, top.t0, now,
                        static_cast<int>(running.size()), d.cycles,
                        d.instructions, d.llc_misses, d.dram_bytes});
    } else {
      ++dropped_spans_;
    }
  }
}

void Profiler::message(std::uint64_t count, std::uint64_t payload_bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  total_messages_ += count;
  total_message_bytes_ += payload_bytes;
  static const int comm_event = registered_event("Comm");
  const std::vector<Running>& running = running_stack();
  const int event = running.empty() ? comm_event : running.back().event;
  EventPerf& p = cell(stage_stack_.back(), event);
  p.messages += count;
  p.message_bytes += payload_bytes;
}

void Profiler::reduction() {
  std::lock_guard<std::mutex> lock(mu_);
  total_reductions_ += 1;
  static const int comm_event = registered_event("Comm");
  const std::vector<Running>& running = running_stack();
  const int event = running.empty() ? comm_event : running.back().event;
  cell(stage_stack_.back(), event).reductions += 1;
}

void Profiler::stage_push(int stage) {
  std::lock_guard<std::mutex> lock(mu_);
  KESTREL_CHECK(stage >= 0 && stage < num_registered_stages(),
                "prof: stage_push with unregistered stage id");
  stage_stack_.push_back(stage);
}

void Profiler::stage_pop() {
  std::lock_guard<std::mutex> lock(mu_);
  KESTREL_CHECK(stage_stack_.size() > 1,
                "prof: stage_pop would pop the main stage");
  stage_stack_.pop_back();
}

int Profiler::current_stage() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stage_stack_.back();
}

void Profiler::record_history(const std::string& series, double x, double y) {
  std::lock_guard<std::mutex> lock(mu_);
  histories_[series].emplace_back(x, y);
}

void Profiler::set_metric(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  metrics_[name] = value;
}

EventPerf Profiler::perf_in(int stage, int event) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (static_cast<std::size_t>(stage) >= perf_.size()) return {};
  const auto& row = perf_[static_cast<std::size_t>(stage)];
  if (static_cast<std::size_t>(event) >= row.size()) return {};
  return row[static_cast<std::size_t>(event)];
}

namespace {
template <class Get>
auto sum_over_stages(const std::vector<std::vector<EventPerf>>& perf,
                     int event, Get get) {
  decltype(get(EventPerf{})) acc{};
  for (const auto& row : perf) {
    if (static_cast<std::size_t>(event) < row.size()) {
      acc += get(row[static_cast<std::size_t>(event)]);
    }
  }
  return acc;
}
}  // namespace

double Profiler::seconds(int event) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_over_stages(perf_, event,
                         [](const EventPerf& p) { return p.seconds; });
}

std::uint64_t Profiler::calls(int event) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_over_stages(perf_, event,
                         [](const EventPerf& p) { return p.calls; });
}

std::uint64_t Profiler::flops(int event) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_over_stages(perf_, event,
                         [](const EventPerf& p) { return p.flops; });
}

std::uint64_t Profiler::bytes(int event) const {
  std::lock_guard<std::mutex> lock(mu_);
  return sum_over_stages(perf_, event,
                         [](const EventPerf& p) { return p.bytes; });
}

double Profiler::total_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  double t = 0.0;
  for (const auto& row : perf_) {
    for (const auto& p : row) t += p.seconds;
  }
  return t;
}

double Profiler::elapsed_seconds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wall_time() - created_;
}

std::uint64_t Profiler::total_messages() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_messages_;
}

std::uint64_t Profiler::total_message_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_message_bytes_;
}

std::uint64_t Profiler::total_reductions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_reductions_;
}

std::vector<PerfRow> Profiler::rows() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PerfRow> out;
  for (std::size_t s = 0; s < perf_.size(); ++s) {
    const auto& row = perf_[s];
    for (std::size_t e = 0; e < row.size(); ++e) {
      const EventPerf& p = row[e];
      if (p.calls == 0 && p.messages == 0 && p.reductions == 0) continue;
      out.push_back({static_cast<int>(s), static_cast<int>(e), p});
    }
  }
  return out;
}

std::vector<TraceSpan> Profiler::trace() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::uint64_t Profiler::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_spans_;
}

std::map<std::string, std::vector<std::pair<double, double>>>
Profiler::histories() const {
  std::lock_guard<std::mutex> lock(mu_);
  return histories_;
}

std::map<std::string, double> Profiler::metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  return metrics_;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  perf_.clear();
  running_.clear();
  stage_stack_.assign(1, kMainStage);
  spans_.clear();
  dropped_spans_ = 0;
  total_messages_ = 0;
  total_message_bytes_ = 0;
  total_reductions_ = 0;
  histories_.clear();
  metrics_.clear();
  created_ = wall_time();
}

Profiler& Profiler::global() {
  static Profiler instance;
  return instance;
}

Profiler* attach(Profiler* p) {
  Profiler* prev = t_attached;
  t_attached = p;
  return prev;
}

Profiler* attached() { return t_attached; }

Profiler& current() {
  return t_attached != nullptr ? *t_attached : Profiler::global();
}

}  // namespace kestrel::prof
