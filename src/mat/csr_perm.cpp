#include "mat/csr_perm.hpp"

#include <algorithm>
#include <numeric>

#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

CsrPerm::CsrPerm(Csr csr) : csr_(std::move(csr)) {
  const Index m = csr_.rows();
  std::vector<Index> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), Index{0});
  // Stable sort by row length keeps ascending row order within a group,
  // which preserves some locality in the output vector.
  std::stable_sort(order.begin(), order.end(), [this](Index a, Index b) {
    return csr_.row_nnz(a) < csr_.row_nnz(b);
  });

  perm_.resize(static_cast<std::size_t>(m));
  std::copy(order.begin(), order.end(), perm_.begin());

  std::vector<Index> begins;
  std::vector<Index> rlens;
  Index i = 0;
  while (i < m) {
    const Index len = csr_.row_nnz(order[static_cast<std::size_t>(i)]);
    begins.push_back(i);
    rlens.push_back(len);
    while (i < m && csr_.row_nnz(order[static_cast<std::size_t>(i)]) == len) {
      ++i;
    }
  }
  begins.push_back(m);
  ngroups_ = static_cast<Index>(rlens.size());
  group_begin_.resize(begins.size());
  std::copy(begins.begin(), begins.end(), group_begin_.begin());
  group_rlen_.resize(rlens.size());
  std::copy(rlens.begin(), rlens.end(), group_rlen_.begin());
}

void CsrPerm::spmv(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(csr_perm)", 2 * nnz(), spmv_traffic_bytes());
  auto fn =
      simd::lookup_as<simd::CsrPermSpmvFn>(simd::Op::kCsrPermSpmv, tier_);
  fn(view(), x, y);
}

std::size_t CsrPerm::storage_bytes() const {
  return csr_.storage_bytes() +
         (group_begin_.size() + perm_.size() + group_rlen_.size()) *
             sizeof(Index);
}

}  // namespace kestrel::mat
