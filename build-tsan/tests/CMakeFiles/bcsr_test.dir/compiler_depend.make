# Empty compiler generated dependencies file for bcsr_test.
# This may be replaced when dependencies are built.
