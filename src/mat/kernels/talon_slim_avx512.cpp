// AVX-512 Kestrel Slim Talon SpMV. Identical block walk to the fat kernel —
// one (edge-masked) contiguous load of x per block, vpexpandps
// (_mm256_maskz_expandloadu_ps) to scatter the packed fp32 values into the
// mask's lanes, then vcvtps2pd so the FMA and the accumulators stay double.
// The value pointer advances by popcount(mask) exactly like the fat walk.

#include <immintrin.h>

#include <bit>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon_slim isa=avx512

namespace kestrel::mat::kernels {

namespace {

template <int R>
void talon_slim_panel_avx512(const TalonSlimView& a, Index p, const Scalar* x,
                             Scalar* y) {
  const Index row0 = a.panel_row[p];
  const float* v = a.val32 + a.panel_valptr[p];
  __m512d acc[R];
  for (int j = 0; j < R; ++j) acc[j] = _mm512_setzero_pd();
  for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
    const Index c0 = a.block_col[b];
    const std::uint32_t mask = a.block_mask[b];
    // One contiguous load of x covers the whole block; mask the tail off
    // at the right matrix edge so no out-of-bounds lane is touched.
    __m512d xv;
    if (c0 + kZmmDoubles <= a.n) {
      xv = _mm512_loadu_pd(x + c0);
    } else {
      const auto edge = static_cast<__mmask8>(
          (1u << static_cast<unsigned>(a.n - c0)) - 1u);
      xv = _mm512_maskz_loadu_pd(edge, x + c0);
    }
    for (int j = 0; j < R; ++j) {
      const auto mj = static_cast<__mmask8>(
          (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu);
      const __m512d vals =
          _mm512_cvtps_pd(_mm256_maskz_expandloadu_ps(mj, v));
      // mask3 keeps lanes outside mj untouched, so an Inf/NaN in an
      // uncovered x lane can never leak into the accumulator.
      acc[j] = _mm512_mask3_fmadd_pd(vals, xv, acc[j], mj);
      v += std::popcount(static_cast<unsigned>(mj));
    }
  }
  for (int j = 0; j < R; ++j) {
    y[row0 + j] = _mm512_reduce_add_pd(acc[j]);
  }
}

// argus-kernel: talon_slim_spmv_avx512
// argus-param: a : view TalonSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon_slim
void talon_slim_spmv_avx512(const TalonSlimView& a, const Scalar* x,
                            Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    switch (a.panel_row[p + 1] - a.panel_row[p]) {
      case 1:
        talon_slim_panel_avx512<1>(a, p, x, y);
        break;
      case 2:
        talon_slim_panel_avx512<2>(a, p, x, y);
        break;
      default:
        talon_slim_panel_avx512<4>(a, p, x, y);
        break;
    }
  }
}

}  // namespace

void register_talon_slim_avx512() {
  KESTREL_REGISTER_KERNEL(kTalonSlimSpmv, kAvx512, talon_slim_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
