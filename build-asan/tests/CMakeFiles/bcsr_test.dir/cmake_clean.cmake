file(REMOVE_RECURSE
  "CMakeFiles/bcsr_test.dir/bcsr_test.cpp.o"
  "CMakeFiles/bcsr_test.dir/bcsr_test.cpp.o.d"
  "bcsr_test"
  "bcsr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bcsr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
