// IndexSet and Scatter plan tests.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "vec/index_set.hpp"
#include "vec/scatter.hpp"

namespace kestrel {
namespace {

TEST(IndexSet, StrideConstruction) {
  IndexSet is = IndexSet::stride(5, 4);
  ASSERT_EQ(is.size(), 4);
  EXPECT_EQ(is[0], 5);
  EXPECT_EQ(is[3], 8);
  EXPECT_TRUE(is.is_sorted());
  EXPECT_TRUE(is.contains(7));
  EXPECT_FALSE(is.contains(9));
}

TEST(IndexSet, RejectsNegative) {
  EXPECT_THROW(IndexSet({1, -2, 3}), Error);
}

TEST(IndexSet, SortedUnique) {
  IndexSet is({5, 1, 3, 1, 5});
  EXPECT_FALSE(is.is_sorted());
  IndexSet su = is.sorted_unique();
  ASSERT_EQ(su.size(), 3);
  EXPECT_EQ(su[0], 1);
  EXPECT_EQ(su[1], 3);
  EXPECT_EQ(su[2], 5);
}

TEST(Scatter, ForwardMovesValues) {
  Scatter sc(IndexSet({0, 2, 4}), IndexSet({1, 0, 2}));
  Vector src{10.0, 11.0, 12.0, 13.0, 14.0};
  Vector dst(3, -1.0);
  sc.forward(src, dst);
  EXPECT_DOUBLE_EQ(dst[1], 10.0);
  EXPECT_DOUBLE_EQ(dst[0], 12.0);
  EXPECT_DOUBLE_EQ(dst[2], 14.0);
}

TEST(Scatter, ReverseAddAccumulates) {
  Scatter sc(IndexSet({0, 0}), IndexSet({1, 2}));
  Vector src{100.0};
  Vector dst{0.0, 5.0, 7.0};
  sc.reverse_add(dst, src);
  EXPECT_DOUBLE_EQ(src[0], 112.0);
}

TEST(Scatter, GatherPacks) {
  Scatter sc(IndexSet({3, 1}), IndexSet({0, 1}));
  const double src[] = {0.0, 10.0, 20.0, 30.0};
  double out[2] = {};
  sc.gather(src, out);
  EXPECT_DOUBLE_EQ(out[0], 30.0);
  EXPECT_DOUBLE_EQ(out[1], 10.0);
}

TEST(Scatter, LengthMismatchThrows) {
  EXPECT_THROW(Scatter(IndexSet({1, 2}), IndexSet({0})), Error);
}

TEST(Scatter, EmptyScatterIsNoop) {
  Scatter sc;
  Vector src{1.0}, dst{2.0};
  EXPECT_NO_THROW(sc.forward(src, dst));
  EXPECT_DOUBLE_EQ(dst[0], 2.0);
}

}  // namespace
}  // namespace kestrel
