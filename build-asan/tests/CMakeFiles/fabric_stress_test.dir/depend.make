# Empty dependencies file for fabric_stress_test.
# This may be replaced when dependencies are built.
