#pragma once
// Compressed sparse row (PETSc AIJ): the baseline format of the paper.
// Storage is cache-line aligned; SpMV dispatches to the ISA tier selected
// at runtime (scalar baseline = compiler-autovectorized loop, or the
// hand-written AVX/AVX2/AVX-512 kernels of Algorithm 1).

#include <cstdint>
#include <span>
#include <vector>

#include "base/aligned.hpp"
#include "mat/kernels/views.hpp"
#include "mat/matrix.hpp"
#include "mat/partition.hpp"

namespace kestrel::mat {

class Coo;

class Csr final : public Matrix {
 public:
  Csr() = default;
  /// Takes ownership of standard CSR arrays. rowptr.size() == m+1,
  /// colidx/val sized rowptr[m]; column indices must lie in [0, n) and be
  /// sorted within each row.
  Csr(Index m, Index n, std::vector<Index> rowptr, std::vector<Index> colidx,
      std::vector<Scalar> val);

  static Csr from_coo(const Coo& coo, bool drop_zeros = false);

  // Matrix interface -------------------------------------------------------
  Index rows() const override { return m_; }
  Index cols() const override { return n_; }
  std::int64_t nnz() const override {
    return m_ == 0 ? 0 : rowptr_[static_cast<std::size_t>(m_)];
  }
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  void spmv_wide(const Scalar* x, Scalar* y) const override;
  bool set_slim(const SlimOptions& opts) override;
  bool slim_active() const override { return slim_.active(); }
  void get_diagonal(Vector& d) const override;
  void abft_col_checksum(Vector& c) const override;
  std::string format_name() const override { return "csr"; }
  std::size_t storage_bytes() const override;
  std::size_t spmv_traffic_bytes() const override;

  // CSR-specific access ----------------------------------------------------
  const Index* rowptr() const { return rowptr_.data(); }
  const Index* colidx() const { return colidx_.data(); }
  const Scalar* val() const { return val_.data(); }
  Scalar* mutable_val() { return val_.data(); }

  Index row_nnz(Index i) const { return rowptr_[i + 1] - rowptr_[i]; }
  std::span<const Index> row_cols(Index i) const {
    return {colidx_.data() + rowptr_[i],
            static_cast<std::size_t>(row_nnz(i))};
  }
  std::span<const Scalar> row_vals(Index i) const {
    return {val_.data() + rowptr_[i], static_cast<std::size_t>(row_nnz(i))};
  }

  /// A(i, j), zero if not stored (binary search within the row).
  Scalar at(Index i, Index j) const;

  Csr transpose() const;

  /// y = A^T * x without forming the transpose (column-scatter pass).
  void spmv_transpose(const Scalar* x, Scalar* y) const;

  /// Refreshes values in place from a same-pattern CSR (structure reuse).
  void copy_values_from(const Csr& other);

  /// Extracts the submatrix with the given (sorted, unique) rows/cols,
  /// renumbered to 0..len-1 — used to split parallel matrices into
  /// diagonal/off-diagonal blocks.
  Csr extract(const std::vector<Index>& rows,
              const std::vector<Index>& cols) const;

  /// Maximum nonzeros in any row.
  Index max_row_nnz() const;

  CsrView view() const {
    return {m_, n_, rowptr_.data(), colidx_.data(), val_.data()};
  }

  // Kestrel Slim ----------------------------------------------------------
  const SlimStore& slim() const { return slim_; }
  CsrSlimView slim_view() const;
  /// Traffic of the fat double/int32 SpMV (paper section 6 model).
  std::size_t fat_spmv_traffic_bytes() const;
  /// Traffic of the fully slim (idx16 + fp32) SpMV.
  std::size_t slim_spmv_traffic_bytes() const;

  // Kestrel Flock ----------------------------------------------------------
  // flock-pool-safe: row
  /// Re-plans the stored nnz-balanced row partition (units = rows, weights
  /// straight from rowptr). Planned at construction for
  /// par::configured_threads().
  void repartition(int nparts) override;
  const FlockPartition& partition() const { return part_; }

 private:
  void validate() const;
  void spmv_fat(const Scalar* x, Scalar* y) const;
  void spmv_slim(const Scalar* x, Scalar* y) const;

  Index m_ = 0, n_ = 0;
  AlignedBuffer<Index> rowptr_;
  AlignedBuffer<Index> colidx_;
  AlignedBuffer<Scalar> val_;
  FlockPartition part_;
  SlimStore slim_;
};

}  // namespace kestrel::mat
