#pragma once
// Gray–Scott reaction–diffusion system — the paper's evaluation problem
// (section 7, equation (1)):
//
//   du/dt = D1 ∇²u - u v² + γ (1 - u)
//   dv/dt = D2 ∇²v + u v² - (γ + κ) v
//
// discretized with central finite differences (5-point stencil) on a 2D
// periodic grid with two interleaved dof per node. Parameter defaults
// follow Hundsdorfer & Verwer (2003), p. 21 — the reference the paper
// cites — with periodic instead of homogeneous Neumann boundaries, exactly
// the paper's simplification.

#include "app/grid2d.hpp"
#include "ts/theta.hpp"

namespace kestrel::app {

struct GrayScottParams {
  Scalar d1 = 8.0e-5;     ///< diffusion of u
  Scalar d2 = 4.0e-5;     ///< diffusion of v
  Scalar gamma = 0.024;   ///< feed rate
  Scalar kappa = 0.06;    ///< kill rate
  Scalar domain = 2.5;    ///< square domain edge length
};

class GrayScott final : public ts::RhsFunction {
 public:
  GrayScott(Index n, GrayScottParams params = {});

  const Grid2D& grid() const { return grid_; }
  const GrayScottParams& params() const { return params_; }

  // ts::RhsFunction ---------------------------------------------------------
  Index size() const override { return grid_.size(); }
  void rhs(const Vector& u, Vector& f) const override;
  mat::Csr rhs_jacobian(const Vector& u) const override;

  /// Standard pattern-forming initial state: u = 1, v = 0 everywhere except
  /// a centered square (side = 1/4 of the domain) seeded with u = 1/2,
  /// v = 1/4 plus a small deterministic perturbation to break symmetry.
  void initial_condition(Vector& u) const;

  /// Component accessors into an interleaved state vector.
  Scalar u_at(const Vector& state, Index i, Index j) const {
    return state[grid_.idx(i, j, 0)];
  }
  Scalar v_at(const Vector& state, Index i, Index j) const {
    return state[grid_.idx(i, j, 1)];
  }

 private:
  Grid2D grid_;
  GrayScottParams params_;
};

/// Builds the multigrid interpolation chain for `levels` grid levels
/// starting at the Gray–Scott fine grid (levels-1 interpolation matrices).
std::vector<mat::Csr> gray_scott_interpolation_chain(const Grid2D& fine,
                                                     int levels);

}  // namespace kestrel::app
