// SELF-TEST FIXTURE — Talon AVX-512 kernel with the right-edge branch of
// the x load deleted. block_col only promises c0 < n, so an unconditional
// 8-wide load of x + c0 reads up to 7 doubles past the vector on blocks
// that straddle the matrix edge.
//
// expect-violation: bounds :: x

#include <immintrin.h>

#include <bit>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: talon_spmv_avx512
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void talon_spmv_avx512(const TalonView& a, const Scalar* x, Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    const Index row0 = a.panel_row[p];
    const Scalar* v = a.val + a.panel_valptr[p];
    __m512d acc = _mm512_setzero_pd();
    for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
      const Index c0 = a.block_col[b];
      const std::uint32_t mask = a.block_mask[b];
      // BUG: edge branch removed — always loads a full vector of x.
      const __m512d xv = _mm512_loadu_pd(x + c0);
      const auto mj = static_cast<__mmask8>(mask & 0xFFu);
      const __m512d vals = _mm512_maskz_expandloadu_pd(mj, v);
      acc = _mm512_mask3_fmadd_pd(vals, xv, acc, mj);
      v += std::popcount(static_cast<unsigned>(mj));
    }
    y[row0] = _mm512_reduce_add_pd(acc);
  }
}

}  // namespace

void register_talon_edge_fixture() {
  KESTREL_REGISTER_KERNEL(kTalonSpmv, kAvx512, talon_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
