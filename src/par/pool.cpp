#include "par/pool.hpp"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "base/error.hpp"
#include "base/options.hpp"
#include "prof/profiler.hpp"

namespace kestrel::par {

namespace {

/// True on pool worker threads: their rank_pool() is always serial, so a
/// threaded spmv reached from inside a part runs inline instead of nesting.
thread_local bool t_pool_worker = false;

}  // namespace

int configured_threads() {
  if (t_pool_worker) return 1;
  std::int64_t n = Options::global().get_index("threads", 0);
  if (n <= 0) {
    if (const char* env = std::getenv("KESTREL_THREADS")) n = std::atol(env);
  }
  if (n <= 0) n = 1;
  // Kestrel Bastion: a request past the machine's core count would only
  // park oversubscribed workers on the scheduler; clamp it and say so once
  // instead of silently degrading every threaded kernel.
  const std::int64_t hw =
      static_cast<std::int64_t>(std::thread::hardware_concurrency());
  if (hw > 0 && n > hw) {
    static std::once_flag warned;
    std::call_once(warned, [&] {
      std::fprintf(stderr,
                   "kestrel: [flock] requested %lld threads exceeds "
                   "hardware_concurrency=%lld; clamping\n",
                   static_cast<long long>(n), static_cast<long long>(hw));
    });
    n = hw;
  }
  if (n > kMaxPoolThreads) n = kMaxPoolThreads;
  return static_cast<int>(n);
}

ThreadPool::ThreadPool(int nthreads) : nthreads_(nthreads) {
  KESTREL_CHECK(nthreads >= 1 && nthreads <= kMaxPoolThreads,
                "flock: pool size out of [1, 64]");
  workers_.reserve(static_cast<std::size_t>(nthreads - 1));
  for (int tid = 1; tid < nthreads; ++tid) {
    workers_.emplace_back([this, tid] { worker_main(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_impl(int nparts, JobFn fn, void* ctx) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = fn;
    ctx_ = ctx;
    nparts_ = nparts;
    job_prof_ = prof::attached();
    pending_ = nthreads_ - 1;
    ++epoch_;
  }
  cv_work_.notify_all();
  in_job_ = true;
  for (int p = 0; p < nparts; p += nthreads_) fn(ctx, p, 0);
  in_job_ = false;
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] { return pending_ == 0; });
}

void ThreadPool::worker_main(int tid) {
  t_pool_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    JobFn fn;
    void* ctx;
    int nparts;
    prof::Profiler* job_prof;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_work_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      fn = fn_;
      ctx = ctx_;
      nparts = nparts_;
      job_prof = job_prof_;
    }
    {
      // Record into the caller rank's profiler for the job's duration, so
      // spans/flops/hwc from inside a part are attributed per-rank, not to
      // a detached global.
      prof::AttachGuard guard(job_prof);
      for (int part = tid; part < nparts; part += nthreads_) {
        fn(ctx, part, tid);
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

ThreadPool& ThreadPool::rank_pool() {
  thread_local std::unique_ptr<ThreadPool> pool;
  const int want = configured_threads();
  if (pool == nullptr || pool->nthreads() != want) {
    pool.reset();  // join the old workers before spawning the new set
    pool = std::make_unique<ThreadPool>(want);
  }
  return *pool;
}

}  // namespace kestrel::par
