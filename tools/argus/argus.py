#!/usr/bin/env python3
"""Argus — static analyzer for Kestrel's SIMD kernel translation units.

Parses every kernel TU into an intrinsic-level mini-IR, instantiates the
view contracts declared in src/mat/kernels/views.hpp, and abstractly
interprets each registered kernel over symbolic interval/polynomial domains
to prove, per TU:

  * every load/store/gather/scatter (masked included) stays inside the
    declared view extents                                    [bounds]
  * lanes beyond the row/slice end are provably masked       [tail-mask]
  * every vector mask derives from row-length arithmetic or a
    declared constant table                                  [mask-provenance]
  * packed value streams advance exactly by popcount         [packed-stream]
  * the set of arrays a kernel touches matches the format's
    spmv_traffic_bytes() model, and that model's stream
    decomposition sums to the C++ formula                    [traffic]

Usage:
  python3 tools/argus/argus.py --repo .            # analyze the repo
  python3 tools/argus/argus.py --repo . --json     # machine-readable report
  python3 tools/argus/argus.py --self-test         # mutation fixtures

Exit status is non-zero when any violation (or self-test miss) is found.
No dependencies outside the Python 3 standard library.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import aparser
import atraffic
from acontracts import (ContractError, TUContract, ViewContract,
                        parse_traffic_models, parse_tu_contract,
                        parse_view_contracts)
from ainterp import Interp, Violation

REGISTER_RE = re.compile(
    r"KESTREL_REGISTER_KERNEL\(\s*\w+\s*,\s*\w+\s*,\s*(\w+)\s*\)")

# Field scraping for view structs (views.hpp): scalar integer fields and
# typed data pointers. Nested view members are declared to Argus through
# `argus-field:` annotations, not scraped here.
_INT_FIELD_RE = re.compile(r"^\s*(Index|int|std::u?int\d+_t)\s+(\w+)\s*=")
_PTR_FIELD_RE = re.compile(
    r"^\s*const\s+([\w:]+)\s*\*\s*(\w+)\s*=\s*nullptr\s*;")

_PTR_SIZES = {
    "Index": (4, "int"),
    "int": (4, "int"),
    "std::uint32_t": (4, "int"),
    "std::int32_t": (4, "int"),
    "std::uint64_t": (8, "int"),
    "std::int64_t": (8, "int"),
    "Scalar": (8, "float"),
    "double": (8, "float"),
    "float": (4, "float"),
    "std::uint16_t": (2, "int"),
}


def scan_annots(text: str) -> List[Tuple[int, str]]:
    """Collect `// argus-*` lines (header files are not run through the
    kernel parser)."""
    out: List[Tuple[int, str]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if stripped.startswith("//"):
            body = stripped[2:].strip()
            if body.startswith("argus-"):
                out.append((lineno, body))
    return out


def scrape_field_types(text: str) -> Dict[str, Dict[str, Tuple[str, int, str]]]:
    """view name -> field -> (kind, esize, fkind) from struct bodies."""
    out: Dict[str, Dict[str, Tuple[str, int, str]]] = {}
    cur: Optional[str] = None
    for raw in text.splitlines():
        m = re.match(r"^\s*struct\s+(\w+)\s*\{", raw)
        if m:
            cur = m.group(1)
            out[cur] = {}
            continue
        if cur is None:
            continue
        if re.match(r"^\s*\};", raw):
            cur = None
            continue
        m = _INT_FIELD_RE.match(raw)
        if m:
            out[cur][m.group(2)] = ("int", 4, "int")
            continue
        m = _PTR_FIELD_RE.match(raw)
        if m and m.group(1) in _PTR_SIZES:
            esize, fkind = _PTR_SIZES[m.group(1)]
            out[cur][m.group(2)] = ("ptr", esize, fkind)
    return out


def load_views(views_path: str):
    with open(views_path, "r", encoding="utf-8") as fh:
        text = fh.read()
    views = parse_view_contracts(scan_annots(text), views_path)
    ftypes = scrape_field_types(text)
    return views, ftypes


def collect_traffic_models(repo: str):
    """Parse every argus-traffic-model in the format sources and prove each
    stream decomposition against its C++ formula."""
    models = []
    issues: List[atraffic.TrafficIssue] = []
    pats = ["src/mat/*.cpp", "src/mat/*.hpp"]
    for pat in pats:
        for path in sorted(glob.glob(os.path.join(repo, pat))):
            with open(path, "r", encoding="utf-8") as fh:
                text = fh.read()
            if "argus-traffic-model" not in text:
                continue
            rel = os.path.relpath(path, repo)
            found = parse_traffic_models(text, rel)
            for model in found:
                issues.extend(atraffic.check_model_formula(model, text))
            models.extend(found)
    return atraffic.model_index(models), issues


def analyze_tu(path: str, rel: str, views: Dict[str, ViewContract],
               ftypes, traffic_index) -> Tuple[List[Violation], int,
                                               List[atraffic.TrafficIssue]]:
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    registered = list(dict.fromkeys(REGISTER_RE.findall(text)))
    violations: List[Violation] = []
    tissues: List[atraffic.TrafficIssue] = []
    if not registered:
        return violations, 0, tissues
    try:
        tu = aparser.parse_file(path)
    except Exception as ex:
        violations.append(Violation(rel, 1, "unsupported",
                                    f"parse failure: {ex}", "<tu>"))
        return violations, 0, tissues
    tu.path = rel
    try:
        tuc = parse_tu_contract(
            tu.annots, {f.name: f.annots for f in tu.funcs if f.annots}, rel)
    except ContractError as ex:
        violations.append(Violation(rel, 1, "contract", str(ex), "<tu>"))
        return violations, 0, tissues
    if not tuc.fmt:
        violations.append(Violation(
            rel, 1, "contract",
            "kernel TU lacks an `// argus-contract: format=... isa=...` "
            "header", "<tu>"))
    funcs = {f.name: f for f in tu.funcs}
    analyzed = 0
    for fn in registered:
        func = funcs.get(fn)
        if func is None:
            violations.append(Violation(
                rel, 1, "contract",
                f"registered kernel {fn!r} has no definition in this TU",
                fn))
            continue
        kc = tuc.kernels.get(fn)
        if kc is None:
            violations.append(Violation(
                rel, func.line, "contract",
                f"registered kernel {fn!r} carries no argus-kernel "
                "contract", fn))
            continue
        interp = Interp(tu, tuc, views, ftypes)
        try:
            interp.analyze_kernel(func, kc)
        except ContractError as ex:
            violations.append(Violation(rel, func.line, "contract",
                                        str(ex), fn))
            continue
        violations.extend(interp.violations)
        analyzed += 1
        if kc.traffic and kc.traffic != "none":
            model = traffic_index.get(kc.traffic)
            where = kc.where or f"{rel}:{func.line}"
            if model is None:
                violations.append(Violation(
                    rel, func.line, "traffic",
                    f"kernel {fn} references unknown traffic model "
                    f"{kc.traffic!r}", fn))
            elif not interp.violations:
                # Stream accounting is only meaningful when the abstract
                # interpretation itself completed cleanly.
                tissues.extend(atraffic.check_kernel_streams(
                    fn, where, model, traffic_index,
                    interp.reads, interp.writes))
    return violations, analyzed, tissues


def run_repo(repo: str, tus: List[str], as_json: bool) -> int:
    views_path = os.path.join(repo, "src/mat/kernels/views.hpp")
    if not os.path.exists(views_path):
        print(f"argus: no view contracts at {views_path}", file=sys.stderr)
        return 2
    try:
        views, ftypes = load_views(views_path)
    except ContractError as ex:
        print(f"argus: {ex}", file=sys.stderr)
        return 2
    traffic_index, tissues = collect_traffic_models(repo)
    paths = tus or sorted(glob.glob(
        os.path.join(repo, "src/mat/kernels/*.cpp")))
    all_violations: List[Violation] = []
    kernels = 0
    ntus = 0
    for path in paths:
        rel = os.path.relpath(path, repo)
        v, n, ti = analyze_tu(path, rel, views, ftypes, traffic_index)
        if n or v:
            ntus += 1
        all_violations.extend(v)
        tissues.extend(ti)
        kernels += n
    for ti in tissues:
        all_violations.append(Violation(ti.path, ti.line, "traffic",
                                        ti.message, ti.fmt))
    all_violations.sort(key=lambda v: (v.path, v.line, v.category))
    if as_json:
        print(json.dumps({
            "kernels": kernels,
            "tus": ntus,
            "violations": [{
                "path": v.path, "line": v.line, "category": v.category,
                "kernel": v.kernel, "message": v.message,
            } for v in all_violations],
        }, indent=2))
    else:
        for v in all_violations:
            print(v.render())
        status = "FAIL" if all_violations else "OK"
        print(f"argus: {kernels} kernels across {ntus} TUs, "
              f"{len(all_violations)} violation(s): {status}")
    return 1 if all_violations else 0


# ---------------------------------------------------------------------------
# Self-test: mutation fixtures
# ---------------------------------------------------------------------------

_EXPECT_RE = re.compile(r"^//\s*expect-violation:\s*([\w-]+)\s*(?:::\s*(.+))?$")


def run_selftest(repo: str, as_json: bool) -> int:
    """Each fixture under tools/argus/selftest/ is a deliberately broken
    kernel TU (or traffic model). A `// expect-violation: <category> ::
    <regex>` header states what Argus must catch. The self-test fails if
    any seeded bug goes undetected."""
    views_path = os.path.join(repo, "src/mat/kernels/views.hpp")
    views, ftypes = load_views(views_path)
    traffic_index, _ = collect_traffic_models(repo)
    fixtures = sorted(glob.glob(
        os.path.join(repo, "tools/argus/selftest/*.cpp")))
    if not fixtures:
        print("argus --self-test: no fixtures found", file=sys.stderr)
        return 2
    failures: List[str] = []
    results = []
    for path in fixtures:
        rel = os.path.relpath(path, repo)
        with open(path, "r", encoding="utf-8") as fh:
            text = fh.read()
        expects: List[Tuple[str, Optional[str]]] = []
        for raw in text.splitlines():
            m = _EXPECT_RE.match(raw.strip())
            if m:
                expects.append((m.group(1), m.group(2)))
        if not expects:
            failures.append(f"{rel}: fixture has no expect-violation header")
            continue
        # Fixture-local traffic models participate (for seeded mismatches).
        local_index = dict(traffic_index)
        local_tissues: List[atraffic.TrafficIssue] = []
        if "argus-traffic-model" in text:
            local_models = parse_traffic_models(text, rel)
            for model in local_models:
                local_tissues.extend(
                    atraffic.check_model_formula(model, text))
            local_index.update(atraffic.model_index(local_models))
        violations, _, tissues = analyze_tu(path, rel, views, ftypes,
                                            local_index)
        for ti in local_tissues + tissues:
            violations.append(Violation(ti.path, ti.line, "traffic",
                                        ti.message, ti.fmt))
        rendered = [v.render() for v in violations]
        missing = []
        for cat, pat in expects:
            hit = any(
                v.category == cat and
                (pat is None or re.search(pat, r))
                for v, r in zip(violations, rendered))
            if not hit:
                missing.append((cat, pat))
        results.append({
            "fixture": rel,
            "expects": len(expects),
            "caught": len(expects) - len(missing),
            "violations": rendered,
        })
        for cat, pat in missing:
            want = f"{cat}" + (f" :: {pat}" if pat else "")
            failures.append(
                f"{rel}: seeded bug NOT detected (expected {want}); "
                f"got: {rendered or ['<clean>']}")
    if as_json:
        print(json.dumps({"fixtures": results, "failures": failures},
                         indent=2))
    else:
        for r in results:
            mark = "ok" if r["caught"] == r["expects"] else "MISS"
            print(f"  [{mark}] {r['fixture']}: caught {r['caught']}/"
                  f"{r['expects']} seeded bug(s)")
        for f in failures:
            print(f"argus --self-test: {f}")
        status = "FAIL" if failures else "OK"
        print(f"argus --self-test: {len(results)} fixtures: {status}")
    return 1 if failures else 0


def main(argv: List[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="argus", description="Kestrel SIMD kernel static analyzer")
    ap.add_argument("--repo", default=".", help="repository root")
    ap.add_argument("--self-test", action="store_true",
                    help="run the mutation-fixture self-test")
    ap.add_argument("--json", action="store_true",
                    help="emit a JSON report")
    ap.add_argument("tus", nargs="*",
                    help="specific kernel TUs (default: all registered)")
    args = ap.parse_args(argv)
    if args.self_test:
        return run_selftest(args.repo, args.json)
    return run_repo(args.repo, args.tus, args.json)


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
