// AVX2 BCSR SpMV specialized for 2x2 blocks (the Gray–Scott dof=2 shape,
// paper section 3.2): one 256-bit load grabs a whole block, the two x
// entries are broadcast as a 128-bit pair, and no gather is needed at all
// — natural blocks turn SpMV's indirect accesses into dense ones.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=bcsr isa=avx2

namespace kestrel::mat::kernels {

namespace {

void bcsr_spmv_bs2_avx2(const BcsrView& a, const Scalar* x, Scalar* y) {
  for (Index ib = 0; ib < a.mb; ++ib) {
    // acc = [s0_part0, s0_part1, s1_part0, s1_part1]
    __m256d acc = _mm256_setzero_pd();
    for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
      const Scalar* blk = a.val + static_cast<std::size_t>(k) * 4;
      // block row-major: [b00 b01 b10 b11]
      const __m256d b = _mm256_loadu_pd(blk);
      // xc pair broadcast to both 128-bit lanes: [x0 x1 x0 x1]
      const __m128d xc = _mm_loadu_pd(x + a.colidx[k] * 2);
      const __m256d xx =
          _mm256_insertf128_pd(_mm256_castpd128_pd256(xc), xc, 1);
      acc = _mm256_fmadd_pd(b, xx, acc);
    }
    // y0 = acc[0] + acc[1], y1 = acc[2] + acc[3]
    const __m256d sums = _mm256_hadd_pd(acc, acc);  // [a0+a1, a0+a1, a2+a3, a2+a3]
    const __m128d lo = _mm256_castpd256_pd128(sums);
    const __m128d hi = _mm256_extractf128_pd(sums, 1);
    _mm_storeu_pd(y + ib * 2, _mm_unpacklo_pd(lo, hi));
  }
}

// argus-kernel: bcsr_spmv_generic_avx2
// argus-param: a : view BcsrView
// argus-param: x : in extent nb * bs
// argus-param: y : out extent mb * bs
// argus-traffic: bcsr
void bcsr_spmv_generic_avx2(const BcsrView& a, const Scalar* x, Scalar* y) {
  // only bs == 2 has a vector path; everything else runs the same scalar
  // algorithm as the scalar TU
  if (a.bs == 2) {
    bcsr_spmv_bs2_avx2(a, x, y);
    return;
  }
  const Index bs = a.bs;
  for (Index ib = 0; ib < a.mb; ++ib) {
    Scalar* yr = y + ib * bs;
    for (Index r = 0; r < bs; ++r) yr[r] = 0.0;
    for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
      const Scalar* b = a.val + static_cast<std::size_t>(k) * bs * bs;
      const Scalar* xc = x + a.colidx[k] * bs;
      for (Index r = 0; r < bs; ++r) {
        Scalar sum = 0.0;
        for (Index cidx = 0; cidx < bs; ++cidx) {
          sum += b[r * bs + cidx] * xc[cidx];
        }
        yr[r] += sum;
      }
    }
  }
}

}  // namespace

void register_bcsr_avx2() {
  KESTREL_REGISTER_KERNEL(kBcsrSpmv, kAvx2, bcsr_spmv_generic_avx2);
}

}  // namespace kestrel::mat::kernels
