// The paper's evaluation problem end to end: Gray-Scott reaction-diffusion
// on a periodic 2D grid, Crank-Nicolson time stepping, Newton, and
// multigrid-preconditioned GMRES whose operators live in the matrix format
// under test. Mirrors src/ts/examples/.../ex5adj.c from PETSc plus the
// options the paper lists:
//
//   ./gray_scott [-n 128] [-steps 5] [-mat_type sell|csr]
//                [-mat_index 32|16] [-mat_scalar fp64|fp32]
//                [-pc_mg_levels 3] [-ksp_type gmres] [-spmv_isa avx512]
//                [-aegis_checkpoint_every 5] [-aegis_max_rollbacks 2]
//                [-ksp_breakdown_recovery]
//                [-log_view] [-log_trace trace.json] [-log_json metrics.json]

#include <cstdio>
#include <sstream>

#include "app/gray_scott.hpp"
#include "base/options.hpp"
#include "mat/sell.hpp"
#include "mat/slim.hpp"
#include "pc/mg.hpp"
#include "perf/spmv_model.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"
#include "ts/theta.hpp"

using namespace kestrel;

int main(int argc, char** argv) {
  Options& opts = Options::global();
  opts.parse(argc, argv);
  for (const std::string& w : opts.unknown_option_warnings()) {
    std::fprintf(stderr, "%s\n", w.c_str());
  }
  const prof::LogConfig logcfg = prof::configure(opts);
  const Index n = opts.get_index("n", 128);
  const int steps = opts.get_index("steps", 5);
  const int levels = opts.get_index("pc_mg_levels", 3);
  const std::string mat_type = opts.get_string("mat_type", "sell");
  const bool use_sell = mat_type == "sell";

  app::GrayScott gs(n);
  std::printf("Gray-Scott %dx%d grid, %d dof, dt=1 Crank-Nicolson, "
              "%d steps\n", n, n, gs.size(), steps);
  std::printf("solver: %s + %d-level MG (Jacobi smoothing), Jacobian in "
              "%s format, ISA %s\n",
              opts.get_string("ksp_type", "gmres").c_str(), levels,
              mat_type.c_str(), simd::tier_name(simd::default_tier()));

  Vector u;
  gs.initial_condition(u);

  ts::ThetaOptions topts;
  topts.theta = 0.5;
  topts.dt = 1.0;
  topts.steps = steps;
  topts.newton.rtol = 1e-8;
  topts.newton.ksp_type = opts.get_string("ksp_type", "gmres");
  topts.newton.ksp.rtol = opts.get_scalar("ksp_rtol", 1e-6);
  topts.newton.pc_lag = opts.get_index("snes_lag_preconditioner", 1);
  topts.newton.ksp.breakdown_recovery =
      opts.get_bool("ksp_breakdown_recovery", false);
  topts.newton.ksp.max_restarts =
      static_cast<int>(opts.get_index("ksp_max_restarts", 1));
  // Kestrel Aegis: checkpoint every k steps and rewind on a failed step.
  topts.checkpoint_every =
      static_cast<int>(opts.get_index("aegis_checkpoint_every", 0));
  topts.max_rollbacks =
      static_cast<int>(opts.get_index("aegis_max_rollbacks", 2));

  // Kestrel Slim applies inside the format factory: the Newton loop
  // reassembles the Jacobian every (lagged) step, and each rebuilt operator
  // re-attaches its slim streams. MG level operators stay fat — the
  // smoothers' work is not bandwidth bound at coarse sizes.
  const mat::SlimOptions slim = mat::slim_options_from(opts);
  if (use_sell) {
    topts.newton.format_factory = [slim](const mat::Csr& a) {
      auto s = std::make_shared<mat::Sell>(a);
      s->set_slim(slim);
      return std::shared_ptr<const mat::Sell>(std::move(s));
    };
  } else if (slim.any()) {
    topts.newton.format_factory = [slim](const mat::Csr& a) {
      auto c = std::make_shared<mat::Csr>(a);
      c->set_slim(slim);
      return std::shared_ptr<const mat::Csr>(std::move(c));
    };
  }
  const auto chain = app::gray_scott_interpolation_chain(gs.grid(), levels);
  topts.newton.pc_factory =
      [&chain, use_sell](const mat::Csr& a) -> std::unique_ptr<pc::Pc> {
    pc::Multigrid::Options mg_opts;
    pc::Multigrid::FormatFactory factory;
    if (use_sell) {
      factory = [](const mat::Csr& lvl) {
        return std::make_shared<const mat::Sell>(lvl);
      };
    }
    return std::make_unique<pc::Multigrid>(a, chain, mg_opts, factory);
  };
  topts.monitor = [&](int step, Scalar t, const Vector& state) {
    Scalar vmass = 0.0;
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) vmass += gs.v_at(state, i, j);
    }
    std::printf("  step %3d  t=%6.1f  total v = %10.4f\n", step, t, vmass);
  };

  const double t0 = wall_time();
  const ts::ThetaResult res = theta_integrate(gs, u, topts);
  const double elapsed = wall_time() - t0;

  std::printf("\n%s after %d steps (t = %.1f)%s\n",
              res.completed ? "completed" : "FAILED", res.steps_taken,
              res.final_time,
              res.rollbacks > 0 ? " [with Aegis rollbacks]" : "");
  std::printf("Newton iterations: %d | linear iterations: %d\n",
              res.total_newton_iterations, res.total_linear_iterations);
  std::printf("wall time: %.3f s\n", elapsed);

  if (logcfg.any()) {
    // Carry the section 6 model's per-SpMV traffic prediction into the
    // metrics dump so figure scripts plot measured vs model side by side.
    prof::Profiler& p = prof::current();
    const perf::SpmvWorkload wl = perf::SpmvWorkload::gray_scott(n);
    p.set_metric("model_spmv_traffic_bytes",
                 static_cast<double>(wl.traffic_bytes(
                     use_sell ? perf::ModelFormat::kSell
                              : perf::ModelFormat::kCsrBaseline)));
    // The measured average spans every SpMV of that format, including the
    // smaller MG coarse-level operators, so it sits below the fine-level
    // model; the strict fine-grid-only comparison is tests/prof_test.cpp.
    const int ev = prof::registered_event(use_sell ? "MatMult(sell)"
                                                   : "MatMult(csr)");
    if (p.calls(ev) > 0) {
      p.set_metric("measured_spmv_bytes_per_call_all_levels",
                   static_cast<double>(p.bytes(ev)) /
                       static_cast<double>(p.calls(ev)));
    }
    prof::export_all(logcfg, p);
  }
  return res.completed ? 0 : 1;
}
