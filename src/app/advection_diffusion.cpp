#include "app/advection_diffusion.hpp"

#include <cmath>

#include "base/error.hpp"
#include "mat/coo.hpp"

namespace kestrel::app {

mat::Csr advection_diffusion(Index n, AdvectionDiffusionParams params) {
  KESTREL_CHECK(n >= 1, "bad grid");
  KESTREL_CHECK(params.eps > 0.0, "diffusion coefficient must be positive");
  const Scalar h = 1.0 / (n + 1);
  const Scalar d = params.eps / (h * h);

  // first-order upwind: b > 0 takes the backward difference
  const Scalar ax_minus = params.bx > 0 ? -params.bx / h : 0.0;
  const Scalar ax_plus = params.bx > 0 ? 0.0 : params.bx / h;
  const Scalar ax_diag = (std::abs(params.bx)) / h;
  const Scalar ay_minus = params.by > 0 ? -params.by / h : 0.0;
  const Scalar ay_plus = params.by > 0 ? 0.0 : params.by / h;
  const Scalar ay_diag = (std::abs(params.by)) / h;

  mat::Coo coo(n * n, n * n);
  coo.reserve(static_cast<std::size_t>(n) * n * 5);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const Index row = j * n + i;
      coo.add(row, row, 4.0 * d + ax_diag + ay_diag);
      if (i > 0) coo.add(row, row - 1, -d + ax_minus);
      if (i < n - 1) coo.add(row, row + 1, -d + ax_plus);
      if (j > 0) coo.add(row, row - n, -d + ay_minus);
      if (j < n - 1) coo.add(row, row + n, -d + ay_plus);
    }
  }
  return coo.to_csr();
}

Vector advection_diffusion_rhs(Index n) { return Vector(n * n, 1.0); }

}  // namespace kestrel::app
