#pragma once
// Ready-made LinearContext implementations: sequential (Matrix + optional
// Pc) and distributed (ParMatrix + Comm + optional local Pc).

#include "ksp/ksp.hpp"
#include "mat/matrix.hpp"
#include "par/parmat.hpp"
#include "pc/pc.hpp"

namespace kestrel::ksp {

/// One-rank context over any mat::Matrix.
class SeqContext final : public LinearContext {
 public:
  explicit SeqContext(const mat::Matrix& a, const pc::Pc* pc = nullptr)
      : a_(a), pc_(pc) {}

  Index local_size() const override { return a_.rows(); }
  std::int64_t operator_nnz() const override { return a_.nnz(); }
  void apply_operator(const Vector& x, Vector& y) override {
    a_.spmv(x, y);
  }
  void apply_pc(const Vector& r, Vector& z) override;

 private:
  const mat::Matrix& a_;
  const pc::Pc* pc_;
};

/// Distributed context: operator application is the overlapped parallel
/// SpMV, dot products are allreduced. The preconditioner (if any) acts on
/// local blocks only — i.e. block-Jacobi across ranks, PETSc's default
/// composition.
class ParContext final : public LinearContext {
 public:
  ParContext(const par::ParMatrix& a, par::Comm& comm,
             const pc::Pc* local_pc = nullptr)
      : a_(a), comm_(comm), pc_(local_pc) {}

  Index local_size() const override { return a_.local_rows(); }
  std::int64_t operator_nnz() const override { return a_.local_nnz(); }
  void apply_operator(const Vector& x, Vector& y) override {
    a_.spmv_local(x.data(), y, comm_);
  }
  void apply_pc(const Vector& r, Vector& z) override;
  Scalar dot(const Vector& a, const Vector& b) override {
    return comm_.allreduce(a.dot(b), par::Comm::ReduceOp::kSum);
  }

 private:
  const par::ParMatrix& a_;
  par::Comm& comm_;
  const pc::Pc* pc_;
};

}  // namespace kestrel::ksp
