// Distributed SpMV and solve on the in-process message fabric: shows the
// paper's parallel layout (diagonal block + compressed off-diagonal block,
// section 2.1/2.2) and runs the same CG code that works sequentially on a
// rank-distributed system with allreduced dot products.
//
// Kestrel Aegis flags: -aegis_faults injects transport faults from a
// deterministic spec (see src/aegis/fault.hpp for the grammar), -aegis_abft
// turns on checksummed SpMV verification, and -ksp_breakdown_recovery lets
// the solver restart across breakdowns. Aegis counters flow into -log_json
// through the profiler metrics.
//
//   ./parallel_spmv [-ranks 4] [-n 64] [-mat_type sell|csr]
//                   [-threads N]
//                   [-ghost_exchange persistent|mailbox]
//                   [-aegis_faults "seed=42,drop=0.05"] [-aegis_abft]
//                   [-aegis_abft_tol 1e-8] [-ksp_breakdown_recovery]
//                   [-ksp_max_restarts 1]
//                   [-log_view] [-log_trace trace.json] [-log_json m.json]
//                   [-log_hwc]
//
// -log_hwc (Kestrel Pulse) samples hardware counters (cycles, instructions,
// LLC misses, DRAM bytes) around every profiler span; on hosts without
// perf-event access it degrades to modeled bytes with a single warning.

#include <cstdio>

#include "aegis/fault.hpp"
#include "app/laplacian.hpp"
#include "base/options.hpp"
#include "ksp/context.hpp"
#include "par/parmat.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

using namespace kestrel;

int main(int argc, char** argv) {
  Options::global().parse(argc, argv);
  for (const std::string& w : Options::global().unknown_option_warnings()) {
    std::fprintf(stderr, "%s\n", w.c_str());
  }
  const prof::LogConfig logcfg = prof::configure(Options::global());
  if (logcfg.hwc) {
    std::printf("hwc: measured counters on (source %s)\n",
                prof::hwc::source_name(prof::hwc::source()));
  }
  const int nranks = Options::global().get_index("ranks", 4);
  const Index n = Options::global().get_index("n", 64);
  const std::string mat_type =
      Options::global().get_string("mat_type", "sell");
  const std::string ghost_exchange =
      Options::global().get_string("ghost_exchange", "persistent");
  const std::string fault_spec =
      Options::global().get_string("aegis_faults", "");
  const bool abft = Options::global().get_bool("aegis_abft", false);

  const mat::Csr global = app::laplacian_dirichlet(n, n);
  std::printf("global matrix: %d x %d, %lld nnz, %d ranks, "
              "%d threads/rank\n",
              global.rows(), global.cols(),
              static_cast<long long>(global.nnz()), nranks,
              par::configured_threads());

  auto layout =
      std::make_shared<par::Layout>(par::Layout::even(global.rows(), nranks));

  par::FabricOptions fabric;  // env defaults (KESTREL_AEGIS et al.)
  if (!fault_spec.empty()) {
    fabric.faults = aegis::FaultPlan::parse(fault_spec);
    std::printf("aegis: fault plan \"%s\" active\n", fault_spec.c_str());
  }

  par::Fabric::run(nranks, fabric, [&](par::Comm& comm) {
    par::ParMatrixOptions opts;
    opts.diag_format = par::parse_diag_format(mat_type);
    opts.persistent_ghosts = ghost_exchange != "mailbox";
    opts.abft = abft;
    opts.abft_tol = Options::global().get_scalar("aegis_abft_tol", 1e-8);
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, opts);

    if (comm.rank() == 0) {
      std::printf("rank 0: %d local rows, diag format %s, "
                  "%d ghost columns, offdiag %d nonzero rows%s\n",
                  a.local_rows(), a.diag_block().format_name().c_str(),
                  a.num_ghosts(), a.offdiag_block().rows(),
                  abft ? ", abft on" : "");
    }
    comm.barrier();

    // distributed SpMV: y = A * 1
    par::ParVector x(layout, comm.rank()), y(layout, comm.rank());
    x.local().set(1.0);
    a.spmv(x, y, comm);
    const Scalar ynorm = y.norm2(comm);
    if (comm.rank() == 0) {
      std::printf("||A*1||_2 = %.6f (collective norm)\n", ynorm);
    }

    // distributed CG solve of A u = b
    par::ParVector b(layout, comm.rank());
    b.local().set(1.0);
    Vector u(a.local_rows());
    ksp::Settings settings;
    settings.rtol = 1e-8;
    settings.breakdown_recovery =
        Options::global().get_bool("ksp_breakdown_recovery", false);
    settings.max_restarts = static_cast<int>(
        Options::global().get_index("ksp_max_restarts", 1));
    const ksp::Cg cg(settings);
    ksp::ParContext ctx(a, comm);
    const ksp::SolveResult res = cg.solve(ctx, b.local(), u);
    if (comm.rank() == 0) {
      std::printf("distributed CG: %s in %d iterations, residual %.3e"
                  " (%d restarts)\n",
                  res.converged ? "converged" : "FAILED", res.iterations,
                  res.residual_norm, res.restarts);
    }

    // Collective: totals the fabric counters into `fabric/...` metrics and
    // the Aegis fault-tolerance counters into `aegis/...` metrics, then
    // reduces per-rank profilers (min/max/ratio) and, on rank 0, prints
    // the table / writes the trace and metrics files.
    comm.publish_stats_metrics();
    prof::export_all(logcfg, prof::current(), &comm);

    if (comm.rank() == 0 && (!fault_spec.empty() || abft)) {
      const aegis::AegisStats& st = aegis::stats();
      std::printf(
          "aegis: %llu faults injected, %llu retries, %llu checksum "
          "failures, %llu abft verifications, %llu abft failures, "
          "%llu recoveries\n",
          static_cast<unsigned long long>(st.faults_injected.load()),
          static_cast<unsigned long long>(st.retries.load()),
          static_cast<unsigned long long>(st.checksum_failures.load()),
          static_cast<unsigned long long>(st.abft_verifications.load()),
          static_cast<unsigned long long>(st.abft_failures.load()),
          static_cast<unsigned long long>(st.recoveries.load()));
    }
  });
  return 0;
}
