#pragma once
// Kestrel Pulse: measured hardware counters for Kestrel Scope, closing the
// model-vs-machine loop. A dependency-free perf_event_open(2) sampler —
// PAPI-style grouped fd reads, no external library — that attaches a
// per-thread counter set (cycles, instructions, LLC misses, and DRAM-read
// bytes where the uncore IMC PMU is exposed) to every profiler span, so the
// -log_view table, the Chrome trace and the metrics JSON carry MEASURED
// bytes and IPC next to the wall time / flops / modeled bytes that
// spmv_traffic_bytes() predicts.
//
// Counter semantics:
//   * The three core counters form one perf event GROUP (leader: cycles),
//     so they are scheduled onto the PMU together and a single read(2)
//     returns a consistent snapshot. Groups can be multiplexed off the PMU
//     by the kernel; reads carry time_enabled/time_running and raw values
//     are scaled by enabled/running (the standard PAPI/perf correction —
//     see scale_multiplexed()). Counters free-run from open; spans record
//     wrap-safe deltas between begin and end snapshots.
//   * DRAM traffic: where /sys/bus/event_source/devices/uncore_imc_* is
//     available, dram_bytes counts memory-controller CAS reads x 64
//     (socket-wide — attribute with care on shared machines). Everywhere
//     else the documented fallback is LLC-miss x 64 (kCacheLineBytes):
//     an undercount when hardware prefetchers bypass the miss counter, an
//     overcount never, so it brackets the model from below.
//   * Capability probing is runtime, not compile-time: perf_event_paranoid,
//     missing PMUs (VMs, containers) and seccomp all degrade to the
//     modeled-bytes-only path with a single structured warning
//     (enable_if_capable()), never an error.
//
// Everything syscall-shaped lives in hwc.cpp behind #ifdef __linux__; this
// header is freestanding C++ so the profiler core stays portable and tests
// can exercise the pure counter math (scale_multiplexed, wrap_delta,
// llc_fallback_bytes) on any host.

#include <cstdint>
#include <string>
#include <vector>

namespace kestrel::prof::hwc {

// ---- pure counter math (unit-tested, no syscalls) ------------------------

/// DRAM transfers happen in cache-line units; the LLC-miss fallback and the
/// IMC CAS-count conversion both scale by this.
inline constexpr std::uint64_t kCacheLineBytes = 64;

/// Multiplexing correction: when the kernel time-shares the PMU between
/// groups, a group is only counting for time_running of the time_enabled
/// window and the raw value is extrapolated by enabled/running (exactly
/// what PAPI and `perf stat` report). running == 0 means the group never
/// got scheduled: the honest answer is 0, not infinity.
std::uint64_t scale_multiplexed(std::uint64_t raw, std::uint64_t time_enabled,
                                std::uint64_t time_running);

/// now - before in wrap-safe unsigned arithmetic: a counter that wrapped
/// its 64-bit range between snapshots still yields the true small delta.
std::uint64_t wrap_delta(std::uint64_t before, std::uint64_t now);

/// The documented DRAM-traffic fallback: LLC misses x 64-byte lines.
std::uint64_t llc_fallback_bytes(std::uint64_t llc_misses);

// ---- capability probing ---------------------------------------------------

/// Where dram_bytes comes from (also the "source" string in the JSON hwc
/// block, via source_name()).
enum class Source {
  kNone,          ///< hwc disabled or unavailable
  kLlcFallback,   ///< core PMU only: LLC misses x 64
  kUncoreImc,     ///< memory-controller CAS reads x 64 (socket-wide)
  kSoftwareDebug  ///< KESTREL_HWC_SOFTWARE=1: software perf events stand in
                  ///< for the PMU so the full pipeline runs in VMs/CI
};

const char* source_name(Source s);

/// One-time runtime probe of what this host/kernel/container allows.
struct Capability {
  bool counters = false;     ///< hardware cycles/instructions/LLC group opens
  bool dram_uncore = false;  ///< uncore IMC CAS counters open
  bool sw_counters = false;  ///< software events open (debug source)
  int paranoid = -1;         ///< /proc/sys/kernel/perf_event_paranoid (-1 =
                             ///< unreadable: no perf_event support at all)
  std::string detail;        ///< human-readable reason when counters == false
};

/// Probes once (first call) and caches; never throws.
const Capability& capability();

// ---- global switch --------------------------------------------------------

/// True when profiler begin/end snapshots counters. Off by default; flipped
/// by -log_hwc / KESTREL_LOG_HWC through enable_if_capable().
bool enabled();
void set_enabled(bool on);
/// The active dram_bytes source (kNone while disabled).
Source source();

/// Enables collection if the probe says this host can deliver it (or if
/// KESTREL_HWC_SOFTWARE=1 asks for the software debug source). On an
/// incapable host it leaves hwc off and emits ONE structured warning on
/// stderr ("kestrel: [hwc] ... ; continuing with modeled bytes only"),
/// so runs degrade loudly-once rather than silently or fatally.
bool enable_if_capable();

// ---- readings -------------------------------------------------------------

/// One multiplexing-corrected counter snapshot (or a span delta of two).
struct Reading {
  bool valid = false;  ///< false: host incapable / hwc disabled — all zero
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t dram_bytes = 0;  ///< per source(); see header comment
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
};

/// Snapshot of this thread's counter group (lazily opened per thread on
/// first use). Invalid (all-zero) when hwc is disabled or the open failed.
Reading read_thread();

/// Span delta now - before, wrap-safe per counter; invalid unless both
/// endpoints are valid.
Reading delta(const Reading& before, const Reading& now);

// ---- low-level grouped-fd access (tests use this with software events) ---

/// perf_event_attr (type, config) pair. The constants below mirror the
/// <linux/perf_event.h> values used here so callers (tests, benches) need
/// no kernel headers.
struct CounterSpec {
  std::uint32_t type = 0;
  std::uint64_t config = 0;
};

inline constexpr std::uint32_t kTypeHardware = 0;  // PERF_TYPE_HARDWARE
inline constexpr std::uint32_t kTypeSoftware = 1;  // PERF_TYPE_SOFTWARE
inline constexpr std::uint64_t kHwCycles = 0;       // PERF_COUNT_HW_CPU_CYCLES
inline constexpr std::uint64_t kHwInstructions = 1;  // ..._HW_INSTRUCTIONS
inline constexpr std::uint64_t kHwCacheMisses = 3;   // ..._HW_CACHE_MISSES
inline constexpr std::uint64_t kSwTaskClock = 1;     // ..._SW_TASK_CLOCK (ns)
inline constexpr std::uint64_t kSwPageFaults = 2;    // ..._SW_PAGE_FAULTS

/// A group of perf counters behind one leader fd: one read(2) returns every
/// member plus time_enabled/time_running for the multiplexing correction.
/// Move-only (owns fds). On non-Linux hosts open() always returns false.
class Group {
 public:
  Group() = default;
  ~Group();
  Group(Group&& other) noexcept;
  Group& operator=(Group&& other) noexcept;
  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  /// Opens specs[0] as the group leader and the rest as members, counting
  /// `pid` (0 = calling thread, -1 = whole system) on `cpu` (-1 = any).
  /// Counters free-run from the moment the group is enabled here. Returns
  /// false (with errno detail in error()) without throwing on any failure.
  bool open(const std::vector<CounterSpec>& specs, int pid = 0, int cpu = -1);
  bool valid() const { return !fds_.empty(); }
  void close();
  const std::string& error() const { return error_; }

  struct Sample {
    std::vector<std::uint64_t> values;  ///< multiplexing-corrected, per spec
    std::uint64_t time_enabled = 0;
    std::uint64_t time_running = 0;
  };
  /// One consistent snapshot of the whole group; false on read failure.
  bool sample(Sample* out) const;

 private:
  std::vector<int> fds_;
  std::string error_;
};

}  // namespace kestrel::prof::hwc
