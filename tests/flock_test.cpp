// Kestrel Flock acceptance battery: the in-rank thread pool must never
// change a single bit of any SpMV result.
//
// Four layers, mirroring the feature's structure:
//   1. nnz_balance partitioner units — monotone boundaries covering
//      [0, nunits), the documented max-partition bound
//      weight(part) < ceil(T/P) + w_max on pathological distributions,
//      and the even-split fallback for zero total weight.
//   2. ThreadPool units — every part runs exactly once, on the
//      deterministic part % nthreads thread; serial and nested calls
//      degrade to inline execution instead of deadlocking.
//   3. Differential battery — every registered format x the sparsity zoo
//      (plus adversarial shapes: empty rows, one dense row, power-law,
//      rows << threads) x every supported ISA tier x threads in
//      {2, 3, 4, 8}: the threaded result is bitwise memcmp-identical to
//      the same matrix repartitioned to one thread.
//   4. Distributed stress — ranks x pool threads hammering the
//      persistent-exchange and ABFT paths (the TSan target, label
//      `flock`), and the Aegis fault sweep re-run with the pool active.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "aegis/abft.hpp"
#include "aegis/fault.hpp"
#include "app/laplacian.hpp"
#include "base/options.hpp"
#include "ksp/context.hpp"
#include "ksp/ksp.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/partition.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "par/parmat.hpp"
#include "par/pool.hpp"
#include "test_matrices.hpp"

namespace kestrel {
namespace {

/// Sets -threads for the scope and restores the previous value on exit, so
/// no test leaks a thread count into the rest of the suite.
class ThreadsGuard {
 public:
  explicit ThreadsGuard(int t)
      : saved_(Options::global().get_string("threads", "")) {
    Options::global().set("threads", std::to_string(t));
  }
  ~ThreadsGuard() {
    Options::global().set("threads", saved_.empty() ? "1" : saved_);
  }
  ThreadsGuard(const ThreadsGuard&) = delete;
  ThreadsGuard& operator=(const ThreadsGuard&) = delete;

 private:
  std::string saved_;
};

// --------------------------------------------------------------------------
// 1. nnz_balance partitioner
// --------------------------------------------------------------------------

std::int64_t part_weight(const std::vector<std::int64_t>& prefix,
                         const mat::FlockPartition& part, int k) {
  return prefix[static_cast<std::size_t>(part.end(k))] -
         prefix[static_cast<std::size_t>(part.begin(k))];
}

void expect_valid_cover(const mat::FlockPartition& part, Index nunits,
                        int nparts) {
  ASSERT_EQ(part.nparts(), nparts);
  EXPECT_EQ(part.begin(0), 0);
  EXPECT_EQ(part.end(nparts - 1), nunits);
  for (int k = 0; k < nparts; ++k) {
    EXPECT_LE(part.begin(k), part.end(k)) << "part " << k;
    if (k > 0) {
      EXPECT_EQ(part.begin(k), part.end(k - 1)) << "part " << k;
    }
  }
}

/// The header's proven guarantee: every part's weight stays below
/// ceil(T/P) + w_max, where w_max is the heaviest single unit.
void expect_balance_bound(const std::vector<std::int64_t>& weights,
                          int nparts) {
  std::vector<std::int64_t> prefix(weights.size() + 1, 0);
  std::int64_t wmax = 0;
  for (std::size_t u = 0; u < weights.size(); ++u) {
    prefix[u + 1] = prefix[u] + weights[u];
    wmax = std::max(wmax, weights[u]);
  }
  const std::int64_t total = prefix.back();
  const auto part = mat::nnz_balance_weights(weights, nparts);
  expect_valid_cover(part, static_cast<Index>(weights.size()), nparts);
  const std::int64_t bound =
      (total + nparts - 1) / nparts + wmax;  // ceil(T/P) + w_max
  for (int k = 0; k < nparts; ++k) {
    EXPECT_LE(part_weight(prefix, part, k), bound)
        << "part " << k << " of " << nparts;
  }
}

TEST(FlockPartitioner, UniformWeightsSplitEvenly) {
  const std::vector<std::int64_t> weights(64, 5);
  for (int p : {1, 2, 4, 8, 64}) {  // p | 64: every part is exactly T/P
    const auto part = mat::nnz_balance_weights(weights, p);
    expect_valid_cover(part, 64, p);
    std::vector<std::int64_t> prefix(65, 0);
    for (int u = 0; u < 64; ++u) prefix[u + 1] = prefix[u] + 5;
    for (int k = 0; k < p; ++k) {
      EXPECT_EQ(part_weight(prefix, part, k), 64 * 5 / p) << "parts=" << p;
    }
  }
  // non-divisible counts still satisfy the documented bound
  for (int p : {3, 5, 7}) expect_balance_bound(weights, p);
}

TEST(FlockPartitioner, AllWeightInOneUnitKeepsOthersLight) {
  // One unit holds every nonzero: the heavy unit is unsplittable (format
  // granularity), but the partitioner must not drag neighbours into its
  // part — the split lands immediately around it.
  for (int heavy_at : {0, 17, 49}) {
    std::vector<std::int64_t> weights(50, 0);
    weights[static_cast<std::size_t>(heavy_at)] = 1000;
    for (int p : {2, 4, 8}) {
      expect_balance_bound(weights, p);
      const auto part = mat::nnz_balance_weights(weights, p);
      std::vector<std::int64_t> prefix(51, 0);
      for (int u = 0; u < 50; ++u) prefix[u + 1] = prefix[u] + weights[u];
      int heavy_parts = 0;
      for (int k = 0; k < p; ++k) {
        if (part_weight(prefix, part, k) > 0) ++heavy_parts;
      }
      EXPECT_EQ(heavy_parts, 1) << "heavy_at=" << heavy_at << " p=" << p;
    }
  }
}

TEST(FlockPartitioner, AllEmptyButLastStaysWithinBound) {
  std::vector<std::int64_t> weights(97, 0);
  weights.back() = 12345;
  for (int p : {2, 3, 4, 8}) expect_balance_bound(weights, p);
}

TEST(FlockPartitioner, PowerLawRowsStayWithinBound) {
  // Deterministic rough power law, the distribution the nnz target exists
  // for: row-balanced splits would serialize behind the long rows.
  std::vector<std::int64_t> weights(200);
  for (std::size_t u = 0; u < weights.size(); ++u) {
    weights[u] = 1 + static_cast<std::int64_t>(600.0 / (1.0 + u));
  }
  for (int p : {2, 3, 4, 8, 16}) expect_balance_bound(weights, p);
}

TEST(FlockPartitioner, ZeroTotalWeightFallsBackToEvenSplit) {
  const std::vector<std::int64_t> weights(24, 0);
  const auto part = mat::nnz_balance_weights(weights, 4);
  expect_valid_cover(part, 24, 4);
  for (int k = 0; k < 4; ++k) {
    EXPECT_EQ(part.end(k) - part.begin(k), 6) << "part " << k;
  }
}

TEST(FlockPartitioner, MorePartsThanUnitsYieldsEmptyTailParts) {
  const std::vector<std::int64_t> weights = {3, 7, 1};
  const auto part = mat::nnz_balance_weights(weights, 8);
  expect_valid_cover(part, 3, 8);  // empty parts allowed, cover exact
}

TEST(FlockPartitioner, IndexPrefixOverloadMatchesInt64) {
  const std::vector<Index> rowptr = {0, 4, 4, 10, 11, 30, 31};
  std::vector<std::int64_t> wide(rowptr.begin(), rowptr.end());
  const auto a = mat::nnz_balance(rowptr.data(), 6, 3);
  const auto b = mat::nnz_balance(wide.data(), 6, 3);
  ASSERT_EQ(a.bounds.size(), b.bounds.size());
  for (std::size_t i = 0; i < a.bounds.size(); ++i) {
    EXPECT_EQ(a.bounds[i], b.bounds[i]) << "bound " << i;
  }
}

TEST(FlockPartitioner, FormatUnitsMatchEachGranularity) {
  // repartition() must plan over each format's own vector-safe units:
  // rows (CSR), slices (SELL), block rows (BCSR), panels (Talon). The
  // partition's final bound exposes which unit space was used.
  const mat::Csr csr = testing::banded(97, {-5, -1, 1, 5});
  mat::Csr c(csr);
  c.repartition(4);
  EXPECT_EQ(c.partition().bounds.back(), c.rows());

  mat::Sell s(csr);
  s.repartition(4);
  EXPECT_EQ(s.partition().bounds.back(), s.num_slices());

  mat::Talon t(csr);
  t.repartition(4);
  EXPECT_EQ(t.partition().bounds.back(), t.num_panels());

  const mat::Csr even = testing::banded(96, {-3, -1, 1, 3});
  mat::Bcsr b(even, 2);
  b.repartition(4);
  EXPECT_EQ(b.partition().bounds.back(), b.block_rows());
}

// --------------------------------------------------------------------------
// 2. ThreadPool
// --------------------------------------------------------------------------

TEST(FlockPool, EveryPartRunsExactlyOnceOnItsThread) {
  par::ThreadPool pool(4);
  ASSERT_EQ(pool.nthreads(), 4);
  constexpr int kParts = 23;
  std::atomic<int> runs[kParts];
  for (auto& r : runs) r.store(0);
  std::atomic<int> bad_tid{0};
  pool.run(kParts, [&](int part, int tid) {
    runs[part].fetch_add(1);
    if (tid != part % 4) bad_tid.fetch_add(1);
  });
  for (int p = 0; p < kParts; ++p) {
    EXPECT_EQ(runs[p].load(), 1) << "part " << p;
  }
  EXPECT_EQ(bad_tid.load(), 0) << "part->thread mapping not deterministic";
}

TEST(FlockPool, SerialPoolRunsInlineOnCaller) {
  par::ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  int runs = 0;
  pool.run(5, [&](int, int tid) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    EXPECT_EQ(tid, 0);
    ++runs;
  });
  EXPECT_EQ(runs, 5);
}

TEST(FlockPool, WorkersGetSerialRankPoolSoNestingCannotDeadlock) {
  par::ThreadPool pool(4);
  std::atomic<int> inner_runs{0};
  std::atomic<int> worker_pool_threads{0};
  pool.run(8, [&](int part, int tid) {
    // Library code inside a part reaching another threaded spmv goes
    // through rank_pool(); on a worker that must be a serial pool.
    par::ThreadPool& nested = par::ThreadPool::rank_pool();
    if (tid != 0 && nested.nthreads() != 1) worker_pool_threads.fetch_add(1);
    nested.run(3, [&](int, int) { inner_runs.fetch_add(1); });
    (void)part;
  });
  EXPECT_EQ(inner_runs.load(), 8 * 3);
  EXPECT_EQ(worker_pool_threads.load(), 0)
      << "a pool worker was handed a threaded rank_pool";
}

TEST(FlockPool, ConfiguredThreadsReadsOptionAndClamps) {
  // Kestrel Bastion clamps requests above hardware_concurrency() (when the
  // runtime can report it) before the [1, kMaxPoolThreads] clamp.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const auto clamped = [hw](int request) {
    int n = request;
    if (hw > 0 && n > hw) n = hw;
    if (n > par::kMaxPoolThreads) n = par::kMaxPoolThreads;
    return n;
  };
  {
    ThreadsGuard g(6);
    EXPECT_EQ(par::configured_threads(), clamped(6));
  }
  {
    ThreadsGuard g(0);  // nonsense values clamp to a serial pool
    EXPECT_EQ(par::configured_threads(), 1);
  }
  {
    ThreadsGuard g(100000);
    EXPECT_EQ(par::configured_threads(), clamped(100000));
    EXPECT_LE(par::configured_threads(), par::kMaxPoolThreads);
  }
  {
    // An explicit request at or below the core count passes untouched.
    const int modest = hw > 0 ? std::min(hw, 2) : 2;
    ThreadsGuard g(modest);
    EXPECT_EQ(par::configured_threads(), modest);
  }
}

// --------------------------------------------------------------------------
// 3. Differential battery: threaded == serial, bitwise, for every format
// --------------------------------------------------------------------------

struct Pattern {
  const char* name;
  mat::Csr (*make)();
};

const Pattern kPatterns[] = {
    {"banded", [] { return testing::banded(97, {-7, -3, -1, 1, 3, 7}); }},
    {"uniform", [] { return testing::uniform_random(80, 80, 4); }},
    {"power_law", [] { return testing::power_law(100); }},
    {"empty_rows", [] { return testing::with_empty_rows(60); }},
    {"dense_row", [] { return testing::with_dense_row(64); }},
    {"straddling", [] { return testing::straddling_boundaries(48); }},
    {"last_col", [] { return testing::last_row_only_column(33); }},
    // rows << threads: 3 rows split 8 ways leaves most parts empty
    {"tiny", [] { return testing::banded(3, {-1, 1}); }},
    {"single_row", [] { return testing::banded(1, {}); }},
};

struct Variant {
  const char* name;
  std::function<std::unique_ptr<mat::Matrix>(const mat::Csr&)> make;
  bool (*applies)(const mat::Csr&);
};

bool always(const mat::Csr&) { return true; }
bool blocks2(const mat::Csr& a) {
  return a.rows() % 2 == 0 && a.cols() % 2 == 0;
}

std::vector<Variant> variants() {
  using std::make_unique;
  std::vector<Variant> v;
  v.push_back({"csr",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 return make_unique<mat::Csr>(a);
               },
               always});
  v.push_back({"csrperm",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 return make_unique<mat::CsrPerm>(mat::Csr(a));
               },
               always});
  v.push_back({"sell_c8",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 return make_unique<mat::Sell>(a);
               },
               always});
  v.push_back({"sell_c4",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 mat::SellOptions o;
                 o.slice_height = 4;
                 return make_unique<mat::Sell>(a, o);
               },
               always});
  v.push_back({"sell_sigma4",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 mat::SellOptions o;
                 o.sigma = 4;  // sorted path + scatter fixup
                 return make_unique<mat::Sell>(a, o);
               },
               always});
  v.push_back({"sell_bitmask",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 mat::SellOptions o;
                 o.build_bitmask = true;
                 return make_unique<mat::Sell>(a, o);
               },
               always});
  v.push_back({"bcsr2",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 return make_unique<mat::Bcsr>(a, 2);
               },
               blocks2});
  v.push_back({"talon",
               [](const mat::Csr& a) -> std::unique_ptr<mat::Matrix> {
                 return make_unique<mat::Talon>(a);
               },
               always});
  return v;
}

std::vector<simd::IsaTier> supported_tiers() {
  std::vector<simd::IsaTier> tiers;
  for (int t = 0; t <= static_cast<int>(simd::detect_best_tier()); ++t) {
    tiers.push_back(static_cast<simd::IsaTier>(t));
  }
  return tiers;
}

/// The battery's core assertion: for every thread count the result is
/// memcmp-identical to the one-thread plan of the SAME matrix object —
/// repartitioning must be the only variable.
void expect_thread_invariant(mat::Matrix& m, const std::string& ctx) {
  const std::vector<Scalar> x = testing::random_x(m.cols(), 123);
  const std::size_t bytes =
      static_cast<std::size_t>(m.rows()) * sizeof(Scalar);
  std::vector<Scalar> y1(static_cast<std::size_t>(m.rows()), -7.0);
  {
    ThreadsGuard g(1);
    m.repartition(1);
    m.spmv(x.data(), y1.data());
  }
  for (int t : {2, 3, 4, 8}) {
    ThreadsGuard g(t);
    m.repartition(t);
    std::vector<Scalar> yt(static_cast<std::size_t>(m.rows()), -9.0);
    m.spmv(x.data(), yt.data());
    ASSERT_EQ(std::memcmp(y1.data(), yt.data(), bytes), 0)
        << ctx << " diverged at threads=" << t;
  }
}

TEST(FlockDifferential, EveryFormatPatternTierIsBitwiseThreadInvariant) {
  for (const Pattern& pat : kPatterns) {
    const mat::Csr csr = pat.make();
    for (const Variant& var : variants()) {
      if (!var.applies(csr)) continue;
      for (simd::IsaTier tier : supported_tiers()) {
        std::unique_ptr<mat::Matrix> m = var.make(csr);
        m->set_tier(tier);
        expect_thread_invariant(
            *m, std::string(pat.name) + "/" + var.name + "/" +
                    simd::tier_name(tier));
      }
    }
  }
}

TEST(FlockDifferential, ThreadedResultStillMatchesDenseReference) {
  // Bitwise identity to serial is the headline; anchor serial itself to
  // the dense reference so the pair cannot drift together.
  const mat::Csr csr = testing::banded(96, {-9, -2, 1, 4});
  const std::vector<Scalar> x = testing::random_x(96, 7);
  const std::vector<Scalar> want = testing::dense_spmv(csr, x);
  ThreadsGuard g(4);
  mat::Sell sell(csr);
  sell.repartition(4);
  std::vector<Scalar> y(96, 0.0);
  sell.spmv(x.data(), y.data());
  for (Index i = 0; i < 96; ++i) {
    EXPECT_NEAR(y[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-12)
        << "row " << i;
  }
}

TEST(FlockDifferential, SellAndTalonAddPathsAreThreadInvariant) {
  // The off-diagonal y += A*x entry points thread over the same partitions
  // but must preserve (not overwrite) y — exercised directly because
  // ParMatrix is their only other caller.
  const mat::Csr csr = testing::power_law(90);
  const std::vector<Scalar> x = testing::random_x(90, 31);
  std::vector<Scalar> base(90);
  for (Index i = 0; i < 90; ++i) {
    base[static_cast<std::size_t>(i)] = 0.125 * static_cast<Scalar>(i) - 3.0;
  }
  const std::size_t bytes = 90 * sizeof(Scalar);

  mat::Sell sell(csr);
  mat::Talon talon(csr);
  std::vector<Scalar> ys1(base), yt1(base);
  {
    ThreadsGuard g(1);
    sell.repartition(1);
    talon.repartition(1);
    sell.spmv_add(x.data(), ys1.data());
    talon.spmv_add(x.data(), yt1.data());
  }
  for (int t : {2, 3, 8}) {
    ThreadsGuard g(t);
    sell.repartition(t);
    talon.repartition(t);
    std::vector<Scalar> ys(base), yt(base);
    sell.spmv_add(x.data(), ys.data());
    talon.spmv_add(x.data(), yt.data());
    EXPECT_EQ(std::memcmp(ys1.data(), ys.data(), bytes), 0)
        << "sell spmv_add diverged at threads=" << t;
    EXPECT_EQ(std::memcmp(yt1.data(), yt.data(), bytes), 0)
        << "talon spmv_add diverged at threads=" << t;
  }
}

TEST(FlockDifferential, AbftMatrixOverThreadedFormatRecoversBitwise) {
  // The pooled verify reductions (fixed part order, fixed chunking) must
  // leave ABFT detection and bitwise recovery intact.
  aegis::stats().reset();
  ThreadsGuard g(4);
  auto inner = std::make_shared<mat::Sell>(testing::banded(80, {-2, -1, 1, 2}));
  inner->repartition(4);
  const aegis::AbftMatrix a(inner);
  const std::vector<Scalar> xs = testing::random_x(80, 9);
  Vector x(80);
  std::memcpy(x.data(), xs.data(), 80 * sizeof(Scalar));
  Vector y_clean;
  a.inner().spmv(x, y_clean);
  a.inject_fault_once([](Scalar* y, Index n) {
    std::uint64_t bits;
    std::memcpy(&bits, &y[n / 2], sizeof(bits));
    bits ^= 1ull << 62;
    std::memcpy(&y[n / 2], &bits, sizeof(bits));
  });
  Vector y;
  a.spmv(x, y);
  for (Index i = 0; i < y.size(); ++i) EXPECT_EQ(y[i], y_clean[i]);
  EXPECT_EQ(aegis::stats().abft_failures.load(), 1u);
  EXPECT_EQ(aegis::stats().abft_retries.load(), 1u);
  aegis::stats().reset();
}

// --------------------------------------------------------------------------
// 4. Distributed stress: ranks x threads (the TSan target) + fault sweep
// --------------------------------------------------------------------------

/// parmat_persistent_test's power-method history with a thread count knob:
/// the gathered iterates compound any divergence, even one ulp.
std::vector<Vector> run_history_threaded(const mat::Csr& global, int nranks,
                                         int iters, int threads,
                                         bool persistent, bool abft) {
  std::vector<Vector> history(static_cast<std::size_t>(iters));
  auto layout =
      std::make_shared<par::Layout>(par::Layout::even(global.rows(), nranks));
  ThreadsGuard g(threads);
  par::Fabric::run(nranks, [&](par::Comm& comm) {
    par::ParMatrixOptions opts;
    opts.persistent_ghosts = persistent;
    opts.abft = abft;
    opts.threads = threads;
    const par::ParMatrix a =
        par::ParMatrix::from_global(global, layout, comm, opts);
    par::ParVector x(layout, comm.rank()), y(layout, comm.rank());
    for (Index i = 0; i < x.local_size(); ++i) {
      x.local()[i] = 1.0 + 1e-3 * static_cast<Scalar>(x.own_begin() + i);
    }
    for (int it = 0; it < iters; ++it) {
      a.spmv(x, y, comm);
      const Vector full = y.gather_all(comm);
      if (comm.rank() == 0) history[static_cast<std::size_t>(it)] = full;
      Scalar norm = 0.0;
      for (Index i = 0; i < full.size(); ++i) {
        norm = std::max(norm, std::abs(full[i]));
      }
      for (Index i = 0; i < x.local_size(); ++i) {
        x.local()[i] = full[x.own_begin() + i] / norm;
      }
    }
  });
  return history;
}

void expect_histories_bitwise_equal(const std::vector<Vector>& a,
                                    const std::vector<Vector>& b,
                                    const char* what) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t it = 0; it < a.size(); ++it) {
    ASSERT_EQ(a[it].size(), b[it].size()) << what << " iteration " << it;
    EXPECT_EQ(std::memcmp(a[it].data(), b[it].data(),
                          static_cast<std::size_t>(a[it].size()) *
                              sizeof(Scalar)),
              0)
        << what << " diverged at iteration " << it;
  }
}

/// The TSan headline stress: 8 ranks x 4 pool threads x 100 iterations of
/// persistent-exchange + ABFT-verified SpMV. Run under `ctest -L flock` in
/// the thread-sanitizer CI job; here the bitwise assertions double as the
/// functional check.
TEST(FlockStress, EightRanksFourThreadsHundredIterationsBitwise) {
  const mat::Csr global = testing::banded(96, {-12, -3, -1, 1, 3, 12});
  const int nranks = 8;
  const int iters = 100;
  const auto serial =
      run_history_threaded(global, nranks, iters, 1, true, true);
  const auto threaded =
      run_history_threaded(global, nranks, iters, 4, true, true);
  expect_histories_bitwise_equal(serial, threaded, "persistent+abft");
}

TEST(FlockStress, MailboxTransportAlsoThreadInvariant) {
  const mat::Csr global = testing::banded(96, {-12, -3, -1, 1, 3, 12});
  const auto serial = run_history_threaded(global, 8, 25, 1, false, false);
  const auto threaded = run_history_threaded(global, 8, 25, 3, false, false);
  expect_histories_bitwise_equal(serial, threaded, "mailbox");
}

TEST(FlockStress, RanksTimesThreadsExceedingCoresStillBitwise) {
  // Deliberate oversubscription (8 ranks x 8 threads = 64 runnable
  // threads): scheduling jitter must not be observable in the results.
  const mat::Csr global = testing::banded(96, {-12, -3, -1, 1, 3, 12});
  const auto serial = run_history_threaded(global, 8, 10, 1, true, true);
  const auto threaded = run_history_threaded(global, 8, 10, 8, true, true);
  expect_histories_bitwise_equal(serial, threaded, "oversubscribed");
}

std::vector<std::vector<Scalar>> flock_cg(
    const mat::Csr& a, const Vector& b, int nranks, int threads,
    std::shared_ptr<const aegis::FaultPlan> plan) {
  auto layout =
      std::make_shared<par::Layout>(par::Layout::even(a.rows(), nranks));
  par::FabricOptions fopts;
  fopts.faults = std::move(plan);
  std::vector<std::vector<Scalar>> solution(
      static_cast<std::size_t>(nranks));
  ThreadsGuard g(threads);
  par::Fabric::run(nranks, fopts, [&](par::Comm& comm) {
    par::ParMatrixOptions popts;
    popts.persistent_ghosts = true;
    popts.abft = true;
    popts.threads = threads;
    const par::ParMatrix pa =
        par::ParMatrix::from_global(a, layout, comm, popts);
    par::ParVector pb(layout, comm.rank());
    pb.set_from_global(b);
    Vector x(pa.local_rows());
    ksp::Settings settings;
    settings.rtol = 1e-10;
    settings.max_iterations = 500;
    const ksp::Cg cg(settings);
    ksp::ParContext ctx(pa, comm);
    const ksp::SolveResult res = cg.solve(ctx, pb.local(), x);
    EXPECT_TRUE(res.converged) << "rank " << comm.rank();
    solution[static_cast<std::size_t>(comm.rank())].assign(
        x.data(), x.data() + x.size());
  });
  return solution;
}

TEST(FlockStress, FaultSweepStaysCleanWithPoolActive) {
  // Aegis's heal-or-fail guarantee must be unchanged by in-rank threading:
  // a faulted transport under a 4-thread pool still yields the bitwise
  // solution of the fault-free 4-thread run.
  const int nranks = 8;
  const mat::Csr a = app::laplacian_dirichlet(12, 8);
  Vector b(96);
  for (Index i = 0; i < 96; ++i) b[i] = std::sin(0.3 * (i + 1));
  const auto baseline = flock_cg(a, b, nranks, 4, nullptr);
  const char* specs[] = {
      "seed=11,drop=0.3",
      "seed=11,bitflip=0.2",
      "seed=13,drop=0.1,delay=0.1,dup=0.1,reorder=0.1,bitflip=0.05",
  };
  for (const char* spec : specs) {
    aegis::stats().reset();
    const auto faulted =
        flock_cg(a, b, nranks, 4, aegis::FaultPlan::parse(spec));
    EXPECT_GT(aegis::stats().faults_injected.load(), 0u) << spec;
    for (int r = 0; r < nranks; ++r) {
      const auto& want = baseline[static_cast<std::size_t>(r)];
      const auto& got = faulted[static_cast<std::size_t>(r)];
      ASSERT_EQ(got.size(), want.size()) << spec << " rank " << r;
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i], want[i]) << spec << " rank " << r << " idx " << i;
      }
    }
  }
  aegis::stats().reset();
}

}  // namespace
}  // namespace kestrel
