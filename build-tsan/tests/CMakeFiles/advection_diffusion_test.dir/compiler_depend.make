# Empty compiler generated dependencies file for advection_diffusion_test.
# This may be replaced when dependencies are built.
