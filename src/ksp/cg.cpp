// Preconditioned conjugate gradient (Hestenes–Stiefel), for SPD operators
// with an SPD preconditioner.

#include "base/error.hpp"
#include "ksp/ksp.hpp"

namespace kestrel::ksp {

SolveResult Cg::solve_once(LinearContext& ctx, const Vector& b,
                           Vector& x) const {
  const Index n = ctx.local_size();
  KESTREL_CHECK(b.size() == n, "cg: rhs size mismatch");
  KESTREL_CHECK(x.size() == n, "cg: solution size mismatch");
  SolveResult result;

  Vector r(n), z(n), p(n), ap(n);

  // r = b - A x
  ctx.apply_operator(x, r);
  r.aypx(-1.0, b);

  ctx.apply_pc(r, z);
  p.copy_from(z);
  Scalar rz = ctx.dot(r, z);
  const Scalar rnorm0 = ctx.norm2(r);
  if (check(rnorm0, rnorm0, 0, &result)) return result;

  for (int it = 1;; ++it) {
    ctx.apply_operator(p, ap);
    const Scalar pap = ctx.dot(p, ap);
    // Negated comparison also trips on NaN: a corrupted ap must not become
    // the alpha denominator.
    if (!(pap > 0.0)) {
      // operator not SPD (or breakdown)
      result.converged = false;
      result.reason = Reason::kDivergedBreakdown;
      result.iterations = it;
      return result;
    }
    const Scalar alpha = rz / pap;
    x.axpy(alpha, p);
    r.axpy(-alpha, ap);

    const Scalar rnorm = ctx.norm2(r);
    if (check(rnorm, rnorm0, it, &result)) return result;

    ctx.apply_pc(r, z);
    const Scalar rz_next = ctx.dot(r, z);
    const Scalar beta = rz_next / rz;
    rz = rz_next;
    p.aypx(beta, z);  // p = z + beta p
  }
}

}  // namespace kestrel::ksp
