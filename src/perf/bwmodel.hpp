#pragma once
// Saturating memory-bandwidth model calibrated to the paper's Figure 4
// (STREAM on a 68-core KNL 7250): bandwidth rises with process count and
// saturates near `bw_saturation_procs`; without vector loads, flat-mode
// MCDRAM bandwidth is drastically lower while cache mode barely cares.

#include "perf/machine.hpp"

namespace kestrel::perf {

/// Achieved bandwidth (GB/s) for `procs` MPI ranks on `machine` under
/// `mode`, with (`vectorized`) or without vector loads/stores.
double modeled_bandwidth(const MachineProfile& machine, MemoryMode mode,
                         int procs, bool vectorized);

/// One row of a STREAM sweep (Figure 4 series).
struct StreamPoint {
  int procs;
  double flat_avx512;
  double flat_novec;
  double cache_avx512;
  double cache_novec;
};

/// Regenerates Figure 4's four series over the given process counts.
std::vector<StreamPoint> modeled_stream_sweep(const MachineProfile& machine,
                                              const std::vector<int>& procs);

}  // namespace kestrel::perf
