// Ablation (paper section 5.4): SELL-C-sigma row sorting. Sorting
// windows shrink padding on irregular matrices but cost a permuted output
// pass and can hurt input-vector locality — the reason the paper leaves
// ordering to the grid layer.

#include <cstdio>

#include "base/rng.hpp"
#include "bench_common.hpp"
#include "mat/coo.hpp"
#include "mat/sell.hpp"

namespace {

using namespace kestrel;

mat::Csr irregular_matrix(Index n) {
  Rng rng(7);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    const double u = rng.next_double();
    Index len = static_cast<Index>(1.0 + 5.0 / (0.03 + u));
    if (len > 96) len = 96;
    // banded around the diagonal to keep some locality
    for (Index k = 0; k < len; ++k) {
      const Index j =
          (i + rng.next_index(257) - 128 + n) % n;
      coo.add(i, j, rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csr();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header("Ablation 5.4: SELL-C-sigma sorting window sweep");

  const struct {
    const char* label;
    mat::Csr matrix;
  } cases[] = {
      {"gray-scott 256^2 (uniform rows)",
       bench::gray_scott_matrix(bench::scaled(256))},
      {"irregular 60k (power-law rows)",
       irregular_matrix(bench::scaled(60000, 1000))},
  };

  for (const auto& c : cases) {
    std::printf("\n-- %s --\n", c.label);
    std::printf("%10s %12s %14s %10s\n", "sigma", "fill ratio",
                "stored elems", "Gflop/s");
    for (Index sigma : {1, 8, 64, 512, 1 << 20}) {
      mat::SellOptions opts;
      opts.sigma = std::min<Index>(sigma, c.matrix.rows());
      const mat::Sell sell(c.matrix, opts);
      const double t = bench::time_spmv(sell);
      std::printf("%10d %12.4f %14lld %10.2f\n", opts.sigma,
                  sell.fill_ratio(),
                  static_cast<long long>(sell.stored_elements()),
                  bench::gflops(sell, t));
    }
  }
  std::printf(
      "\nExpected (paper): sorting buys nothing on uniform-row PDE\n"
      "matrices (fill is already ~1) and trades padding for permutation\n"
      "overhead and lost locality on irregular ones — supporting the\n"
      "paper's default of no sorting in the kernel layer.\n");
  return 0;
}
