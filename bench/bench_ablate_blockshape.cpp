// Ablation (SPC5 / Talon): beta(r,c) block-shape sweep. The inspector
// normally picks the panel height r per row panel by scoring the block
// count each candidate produces; this bench pins r to 1, 2, and 4 and
// compares geometry (panels, blocks, fill) and throughput against the
// auto choice, on the paper's regular Gray-Scott operator and on an
// irregular matrix where tall panels shatter into many sparse blocks.
//
// Expected: on block-structured matrices (Gray-Scott's 2x2 dof coupling)
// r = 2/4 cuts the block count and metadata stream; on scattered patterns
// tall panels produce near-empty blocks and r = 1 wins. "auto" should
// track the better of the two everywhere — that is the inspector's job.

#include <cstdio>

#include "base/rng.hpp"
#include "bench_common.hpp"
#include "mat/coo.hpp"
#include "mat/talon.hpp"

namespace {

using namespace kestrel;

mat::Csr scattered_matrix(Index n) {
  Rng rng(17);
  mat::Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index k = 0; k < 6; ++k) {
      coo.add(i, rng.next_index(n), rng.uniform(-1.0, 1.0));
    }
  }
  return coo.to_csr();
}

void sweep(const char* label, const mat::Csr& csr) {
  std::printf("\n-- %s (%d rows, %lld nnz) --\n", label, csr.rows(),
              static_cast<long long>(csr.nnz()));
  std::printf("%8s %10s %10s %10s %10s %12s\n", "r", "panels", "blocks",
              "fill", "Gflop/s", "bytes/nnz");
  for (Index force_r : {Index(0), Index(1), Index(2), Index(4)}) {
    mat::TalonOptions opts;
    opts.force_r = force_r;
    const mat::Talon talon(csr, opts);
    const double t = bench::time_spmv(talon);
    char rlabel[8];
    if (force_r == 0) {
      std::snprintf(rlabel, sizeof(rlabel), "auto");
    } else {
      std::snprintf(rlabel, sizeof(rlabel), "%d", force_r);
    }
    std::printf("%8s %10d %10lld %10.4f %10.2f %12.2f\n", rlabel,
                talon.num_panels(),
                static_cast<long long>(talon.num_blocks()),
                talon.block_fill(), bench::gflops(talon, t),
                static_cast<double>(talon.spmv_traffic_bytes()) /
                    static_cast<double>(talon.nnz()));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  bench::parse_args(argc, argv);
  bench::header("Ablation: Talon beta(r,c) block-shape sweep");
  sweep("gray-scott 384^2 (2x2 dof blocks)",
        bench::gray_scott_matrix(bench::scaled(384)));
  sweep("scattered 60k (6 random nnz/row)",
        scattered_matrix(bench::scaled(60000, 1000)));
  return 0;
}
