// Runtime enforcement of the Argus view contracts (src/mat/kernels/views.hpp).
//
// Every `argus-fact:` / `argus-extent:` annotation that the static analyzer
// assumes about a view is asserted here against views actually constructed
// by the format inspectors, over adversarial matrices: empty rows, a fully
// dense row, one-column matrices, rectangular shapes, power-law row lengths
// and patterns that straddle slice/panel boundaries. If an inspector ever
// emits a view violating its annotated invariant, this test fails before
// the abstract interpreter's proofs could be invalidated silently.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "mat/bcsr.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

Index ceil_div(Index a, Index b) { return (a + b - 1) / b; }

// argus-view: CsrView — monotone(rowptr), rowptr[0] == 0,
// elem(colidx) in [0, n).
void check_csr_view(const CsrView& v) {
  ASSERT_GE(v.m, 0);
  ASSERT_GE(v.n, 0);
  ASSERT_EQ(v.rowptr[0], 0);
  for (Index i = 0; i < v.m; ++i) {
    ASSERT_LE(v.rowptr[i], v.rowptr[i + 1]) << "rowptr not monotone at " << i;
  }
  const Index nnz = v.rowptr[v.m];
  for (Index k = 0; k < nnz; ++k) {
    ASSERT_GE(v.colidx[k], 0) << "colidx[" << k << "]";
    ASSERT_LT(v.colidx[k], v.n) << "colidx[" << k << "]";
  }
}

// argus-view: SellView — c in [1, 64], nslices == ceil_div(m, c),
// monotone(sliceptr), sliceptr[0] == 0, divides(c, elem(sliceptr)),
// elem(colidx) in [0, n), elem(rlen) in [0, n], maskword(bitmask).
void check_sell_view(const SellView& v) {
  ASSERT_GE(v.c, 1);
  ASSERT_LE(v.c, 64);
  ASSERT_EQ(v.nslices, ceil_div(v.m, v.c));
  ASSERT_EQ(v.sliceptr[0], 0);
  for (Index s = 0; s < v.nslices; ++s) {
    ASSERT_LE(v.sliceptr[s], v.sliceptr[s + 1]);
    ASSERT_EQ(v.sliceptr[s] % v.c, 0)
        << "sliceptr[" << s << "] not a multiple of the slice height";
  }
  const Index stored = v.sliceptr[v.nslices];
  for (Index k = 0; k < stored; ++k) {
    ASSERT_GE(v.colidx[k], 0);
    ASSERT_LT(v.colidx[k], v.n) << "padded colidx must copy a real index";
  }
  for (Index i = 0; i < v.m; ++i) {
    ASSERT_GE(v.rlen[i], 0);
    ASSERT_LE(v.rlen[i], v.n);
  }
  if (v.bitmask != nullptr) {
    // One bit per stored element, c bits per slice-column word group; a
    // set bit k in word w must address a lane < c, and padded lanes of the
    // final slice (rows >= m) must be clear.
    const Index words = stored / v.c;
    std::int64_t bits = 0;
    for (Index w = 0; w < words; ++w) {
      const std::uint64_t word = v.bitmask[w];
      if (v.c < 64) {
        ASSERT_EQ(word >> v.c, 0u)
            << "bitmask word " << w << " sets lanes beyond slice height";
      }
      bits += std::popcount(word);
    }
    // Exactly the true nonzeros are marked: sum(popcount) == sum(rlen).
    std::int64_t true_nnz = 0;
    for (Index i = 0; i < v.m; ++i) true_nnz += v.rlen[i];
    ASSERT_EQ(bits, true_nnz);
  }
}

// argus-view: CsrPermView — monotone(group_begin), group_begin[0] == 0,
// group_begin[ngroups] == csr.m, elem(perm) in [0, csr.m) (a permutation),
// group(perm, group_begin, group_rlen, csr.rowptr).
void check_csr_perm_view(const CsrPermView& v) {
  check_csr_view(v.csr);
  ASSERT_GE(v.ngroups, 0);
  ASSERT_EQ(v.group_begin[0], 0);
  ASSERT_EQ(v.group_begin[v.ngroups], v.csr.m);
  std::vector<char> seen(static_cast<std::size_t>(v.csr.m), 0);
  for (Index g = 0; g < v.ngroups; ++g) {
    ASSERT_LE(v.group_begin[g], v.group_begin[g + 1]);
    for (Index p = v.group_begin[g]; p < v.group_begin[g + 1]; ++p) {
      const Index row = v.perm[p];
      ASSERT_GE(row, 0);
      ASSERT_LT(row, v.csr.m);
      ASSERT_FALSE(seen[static_cast<std::size_t>(row)])
          << "perm repeats row " << row;
      seen[static_cast<std::size_t>(row)] = 1;
      // The group fact: every row in group g has exactly group_rlen[g]
      // stored elements. The vectorized kernels bank on this equality to
      // run one gather per iteration across the whole group.
      ASSERT_EQ(v.csr.rowptr[row + 1] - v.csr.rowptr[row], v.group_rlen[g])
          << "row " << row << " disagrees with its group length";
    }
  }
}

// argus-view: TalonView — monotone panel arrays starting at 0,
// panel_row[npanels] == m, stride(panel_row) in {1, 2, 4},
// elem(block_col) in [0, n), maskbit(block_mask, block_col, n),
// packed(val, panel_valptr, block_mask).
void check_talon_view(const TalonView& v) {
  ASSERT_EQ(v.panel_row[0], 0);
  ASSERT_EQ(v.panel_blockptr[0], 0);
  ASSERT_EQ(v.panel_valptr[0], 0);
  ASSERT_EQ(v.panel_row[v.npanels], v.m);
  for (Index p = 0; p < v.npanels; ++p) {
    const Index r = v.panel_row[p + 1] - v.panel_row[p];
    ASSERT_TRUE(r == 1 || r == 2 || r == 4) << "panel " << p << " height " << r;
    ASSERT_LE(v.panel_blockptr[p], v.panel_blockptr[p + 1]);
    ASSERT_LE(v.panel_valptr[p], v.panel_valptr[p + 1]);
    std::int64_t popsum = 0;
    for (Index b = v.panel_blockptr[p]; b < v.panel_blockptr[p + 1]; ++b) {
      const Index c0 = v.block_col[b];
      ASSERT_GE(c0, 0);
      ASSERT_LT(c0, v.n);
      const std::uint32_t mask = v.block_mask[b];
      for (Index j = 0; j < r; ++j) {
        const auto byte = (mask >> (8 * j)) & 0xFFu;
        // maskbit: a set bit k means column c0 + k exists, so it must be
        // inside the matrix.
        for (int k = 0; k < 8; ++k) {
          if (byte & (1u << k)) {
            ASSERT_LT(c0 + k, v.n);
          }
        }
        popsum += std::popcount(byte);
      }
      // Bytes above the panel height must be clear, or the packed stream
      // accounting below would disagree with what the kernels consume.
      if (r < 4) {
        ASSERT_EQ(mask >> (8 * r), 0u) << "block " << b;
      }
    }
    // packed: the panel's val run holds exactly one scalar per set mask
    // bit — no padding, nothing skipped.
    ASSERT_EQ(popsum, v.panel_valptr[p + 1] - v.panel_valptr[p])
        << "panel " << p << " packed-stream length mismatch";
  }
}

// argus-view: BcsrView — bs >= 1, monotone(rowptr), rowptr[0] == 0,
// elem(colidx) in [0, nb).
void check_bcsr_view(const BcsrView& v) {
  ASSERT_GE(v.mb, 0);
  ASSERT_GE(v.nb, 0);
  ASSERT_GE(v.bs, 1);
  ASSERT_EQ(v.rowptr[0], 0);
  for (Index i = 0; i < v.mb; ++i) {
    ASSERT_LE(v.rowptr[i], v.rowptr[i + 1]);
  }
  const Index nblocks = v.rowptr[v.mb];
  for (Index k = 0; k < nblocks; ++k) {
    ASSERT_GE(v.colidx[k], 0);
    ASSERT_LT(v.colidx[k], v.nb);
  }
}

std::vector<Csr> adversarial_matrices() {
  std::vector<Csr> out;
  out.push_back(testing::banded(64, {1, 8}));
  out.push_back(testing::uniform_random(37, 53, 5));  // rectangular, m != n
  out.push_back(testing::power_law(100));
  out.push_back(testing::with_empty_rows(48));
  out.push_back(testing::with_dense_row(40));
  out.push_back(testing::single_column(33));
  out.push_back(testing::last_row_only_column(29));
  out.push_back(testing::straddling_boundaries(64));
  out.push_back(Coo(7, 7).to_csr());  // fully empty matrix
  return out;
}

TEST(ViewsContract, Csr) {
  for (const Csr& csr : adversarial_matrices()) {
    check_csr_view(csr.view());
  }
}

TEST(ViewsContract, SellAllSliceHeights) {
  for (const Csr& csr : adversarial_matrices()) {
    for (Index c : {2, 8, 16}) {
      for (bool bitmask : {false, true}) {
        SellOptions opts;
        opts.slice_height = c;
        opts.build_bitmask = bitmask;
        const Sell sell(csr, opts);
        check_sell_view(sell.view());
      }
    }
    SellOptions sorted;
    sorted.sigma = 4;
    check_sell_view(Sell(csr, sorted).view());
  }
}

TEST(ViewsContract, CsrPerm) {
  for (const Csr& csr : adversarial_matrices()) {
    const CsrPerm perm(csr);
    check_csr_perm_view(perm.view());
  }
}

TEST(ViewsContract, TalonAllPanelHeights) {
  for (const Csr& csr : adversarial_matrices()) {
    for (Index r : {0, 1, 2, 4}) {
      TalonOptions opts;
      opts.force_r = r;
      const Talon talon(csr, opts);
      check_talon_view(talon.view());
    }
  }
}

TEST(ViewsContract, Bcsr) {
  // Bcsr wants dimensions divisible by bs; use shapes that are.
  for (Index bs : {2, 4}) {
    check_bcsr_view(Bcsr(testing::banded(64, {1, 8}), bs).view());
    check_bcsr_view(Bcsr(testing::straddling_boundaries(64), bs).view());
    check_bcsr_view(Bcsr(Coo(8, 8).to_csr(), bs).view());
  }
}

}  // namespace
}  // namespace kestrel::mat
