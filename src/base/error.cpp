#include "base/error.hpp"

namespace kestrel {

Error::Error(const std::string& what, const char* file, int line)
    : std::runtime_error(what + " [" + file + ":" + std::to_string(line) +
                         "]"),
      file_(file),
      line_(line) {}

namespace detail {

void throw_error(const std::string& msg, const char* file, int line) {
  throw Error(msg, file, line);
}

std::string format_check_failure(const char* expr, const std::string& msg) {
  std::string out = "check failed: ";
  out += expr;
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  return out;
}

}  // namespace detail
}  // namespace kestrel
