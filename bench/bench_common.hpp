#pragma once
// Shared helpers for the figure-reproduction benches: workload builders,
// wall-clock kernel timing, and table formatting.

#include <cstdio>
#include <string>

#include "app/gray_scott.hpp"
#include "prof/profiler.hpp"
#include "mat/csr.hpp"
#include "mat/matrix.hpp"
#include "vec/vector.hpp"

namespace kestrel::bench {

/// The paper's test matrix at a laptop-scale resolution: the Gray–Scott
/// Jacobian at the initial condition (10 nonzeros in every row).
inline mat::Csr gray_scott_matrix(Index n) {
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);
  return gs.rhs_jacobian(u);
}

/// Best-of-k timing of y = A x. Returns seconds per multiply.
inline double time_spmv(const mat::Matrix& a, int min_reps = 20,
                        double min_seconds = 0.15) {
  Vector x(a.cols()), y(a.rows());
  for (Index i = 0; i < x.size(); ++i) {
    x[i] = 0.5 + 0.25 * ((i * 2654435761u) % 1024) / 1024.0;
  }
  // warm up (page in the matrix)
  a.spmv(x.data(), y.data());

  double best = 1e300;
  double spent = 0.0;
  int reps = 0;
  while (reps < min_reps || spent < min_seconds) {
    const double t0 = wall_time();
    a.spmv(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = dt < best ? dt : best;
    spent += dt;
    ++reps;
  }
  // keep y alive
  volatile double sink = y[0];
  (void)sink;
  return best;
}

inline double gflops(const mat::Matrix& a, double seconds) {
  return 2.0 * static_cast<double>(a.nnz()) / seconds / 1e9;
}

inline double achieved_gbs(const mat::Matrix& a, double seconds) {
  return static_cast<double>(a.spmv_traffic_bytes()) / seconds / 1e9;
}

inline void header(const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("============================================================\n");
}

}  // namespace kestrel::bench
