// AVX SELL SpMV: Algorithm 2 without gather or FMA. Gathers are emulated
// with two 128-bit set/load + insert sequences, and mul/add are issued
// separately — exactly the instruction substitution described at the end of
// section 5.5.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell isa=avx

namespace kestrel::mat::kernels {

namespace {

inline __m256d gather4_avx(const Scalar* x, const Index* idx) {
  const __m128d lo = _mm_set_pd(x[idx[1]], x[idx[0]]);
  const __m128d hi = _mm_set_pd(x[idx[3]], x[idx[2]]);
  return _mm256_insertf128_pd(_mm256_castpd128_pd256(lo), hi, 1);
}

template <bool Add>
inline void store4(Scalar* y, Index valid, __m256d acc) {
  alignas(32) Scalar tmp[4];
  if (valid >= 4) {
    if constexpr (Add) {
      _mm256_storeu_pd(y, _mm256_add_pd(_mm256_loadu_pd(y), acc));
    } else {
      _mm256_storeu_pd(y, acc);
    }
  } else if (valid > 0) {
    // kestrel-aligned: tmp is alignas(32) stack storage declared above
    _mm256_store_pd(tmp, acc);
    for (Index lane = 0; lane < valid; ++lane) {
      if constexpr (Add) {
        y[lane] += tmp[lane];
      } else {
        y[lane] = tmp[lane];
      }
    }
  }
}

template <bool Add>
void sell_spmv_avx_impl(const SellView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;  // multiple of 4, enforced by caller
  const Index nv = c / 4;
  __m256d acc[16];
  for (Index s = 0; s < a.nslices; ++s) {
    for (Index v = 0; v < nv; ++v) acc[v] = _mm256_setzero_pd();
    const Index begin = a.sliceptr[s];
    const Index end = a.sliceptr[s + 1];
    for (Index k = begin; k < end; k += c) {
      for (Index v = 0; v < nv; ++v) {
        const __m256d vals = _mm256_loadu_pd(a.val + k + v * 4);
        const __m256d vx = gather4_avx(x, a.colidx + k + v * 4);
        acc[v] = _mm256_add_pd(acc[v], _mm256_mul_pd(vals, vx));
      }
    }
    const Index row0 = s * c;
    const Index nrows = (row0 + c <= a.m) ? c : (a.m - row0);
    for (Index v = 0; v < nv && v * 4 < nrows; ++v) {
      store4<Add>(y + row0 + v * 4, nrows - v * 4, acc[v]);
    }
  }
}

// argus-kernel: sell_spmv_avx
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: divides(4, c)
// argus-traffic: sell
void sell_spmv_avx(const SellView& a, const Scalar* x, Scalar* y) {
  sell_spmv_avx_impl<false>(a, x, y);
}
// argus-kernel: sell_spmv_add_avx
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: divides(4, c)
// argus-traffic: sell
void sell_spmv_add_avx(const SellView& a, const Scalar* x, Scalar* y) {
  sell_spmv_avx_impl<true>(a, x, y);
}

}  // namespace

void register_sell_avx() {
  KESTREL_REGISTER_KERNEL(kSellSpmv, kAvx, sell_spmv_avx);
  KESTREL_REGISTER_KERNEL(kSellSpmvAdd, kAvx, sell_spmv_add_avx);
}

}  // namespace kestrel::mat::kernels
