#include "ts/theta.hpp"

#include "aegis/fault.hpp"
#include "base/error.hpp"
#include "mat/spgemm.hpp"
#include "prof/profiler.hpp"

namespace kestrel::ts {

namespace {

/// Nonlinear stage problem for one theta step.
class ThetaStage final : public snes::NonlinearFunction {
 public:
  ThetaStage(const RhsFunction& f, const Vector& u_old, Scalar theta,
             Scalar dt)
      : f_(f), u_old_(u_old), theta_(theta), dt_(dt), fwork_(f.size()) {
    // explicit part: u_old + dt*(1-theta)*f(u_old)
    explicit_.resize(f.size());
    f_.rhs(u_old_, explicit_);
    explicit_.scale(dt_ * (1.0 - theta_));
    explicit_.axpy(1.0, u_old_);
  }

  Index size() const override { return f_.size(); }

  void residual(const Vector& u, Vector& g) const override {
    f_.rhs(u, fwork_);
    g.resize(size());
    for (Index i = 0; i < size(); ++i) {
      g[i] = u[i] - dt_ * theta_ * fwork_[i] - explicit_[i];
    }
  }

  mat::Csr jacobian(const Vector& u) const override {
    // G'(u) = I - dt*theta*J_f(u)
    const mat::Csr jf = f_.rhs_jacobian(u);
    return mat::add(1.0, mat::identity(size()), -dt_ * theta_, jf);
  }

 private:
  const RhsFunction& f_;
  const Vector& u_old_;
  Scalar theta_, dt_;
  Vector explicit_;
  mutable Vector fwork_;
};

}  // namespace

ThetaResult theta_integrate(const RhsFunction& f, Vector& u,
                            const ThetaOptions& opts) {
  KESTREL_CHECK(u.size() == f.size(), "theta: state size mismatch");
  KESTREL_CHECK(opts.theta > 0.0 && opts.theta <= 1.0,
                "theta: implicit weight must be in (0, 1]");
  KESTREL_CHECK(opts.dt > 0.0 && opts.steps >= 0, "theta: bad step setup");

  KESTREL_CHECK(opts.checkpoint_every >= 0 && opts.max_rollbacks >= 0,
                "theta: bad checkpoint setup");

  ThetaResult result;
  Vector u_old(f.size());

  // Kestrel Aegis checkpointing: u_ckpt holds the state after step
  // ckpt_step; on a failed step the loop rewinds there and replays.
  const bool checkpointing = opts.checkpoint_every > 0;
  Vector u_ckpt;
  int ckpt_step = 0;
  if (checkpointing) {
    u_ckpt.resize(f.size());
    u_ckpt.copy_from(u);
  }

  // Kestrel Bastion: the integration deadline also bounds every nested
  // Newton (and transitively its KSP), unless the caller armed a tighter
  // per-step token already.
  snes::NewtonOptions newton_opts = opts.newton;
  if (opts.deadline.active() && !newton_opts.deadline.active()) {
    newton_opts.deadline = opts.deadline;
  }

  static const int ev_step = prof::registered_event("TSStep");
  for (int step = 1; step <= opts.steps; ++step) {
    // Kestrel Bastion: cooperative stop between steps — u holds the state
    // after the last completed step.
    if (opts.deadline.expired()) {
      result.completed = false;
      result.deadline_exceeded = true;
      return result;
    }
    // One profiler event per time step (nested SNESSolve/KSPSolve events
    // break it down); RAII keeps begin/end paired across rollback paths.
    prof::ScopedEvent step_scope(ev_step);
    u_old.copy_from(u);
    ThetaStage stage(f, u_old, opts.theta, opts.dt);
    // warm start from the previous state
    snes::NewtonResult newton;
    bool step_failed = false;
    try {
      newton = snes::newton_solve(stage, u, newton_opts);
      step_failed = !newton.converged;
    } catch (const AbftError&) {
      if (!checkpointing || result.rollbacks >= opts.max_rollbacks) throw;
      step_failed = true;
    }
    result.total_newton_iterations += newton.iterations;
    result.total_linear_iterations += newton.total_linear_iterations;
    if (newton.deadline_exceeded) {
      // Half-finished step: rewind to the step entry state so u reflects
      // exactly steps_taken completed steps, then stop.
      u.copy_from(u_old);
      result.completed = false;
      result.deadline_exceeded = true;
      return result;
    }
    if (step_failed) {
      if (!checkpointing || result.rollbacks >= opts.max_rollbacks) {
        result.completed = false;
        return result;
      }
      result.rollbacks++;
      aegis::stats().rollbacks++;
      u.copy_from(u_ckpt);
      step = ckpt_step;  // the for-increment replays ckpt_step + 1 next
      continue;
    }
    result.steps_taken = step;
    result.final_time = step * opts.dt;
    if (opts.monitor) opts.monitor(step, result.final_time, u);
    if (prof::enabled()) {
      prof::current().record_history("TS(theta) newton_its",
                                     result.final_time,
                                     static_cast<double>(newton.iterations));
    }
    if (checkpointing && step % opts.checkpoint_every == 0) {
      u_ckpt.copy_from(u);
      ckpt_step = step;
    }
  }
  result.completed = true;
  if (result.rollbacks > 0) aegis::stats().recoveries++;
  return result;
}

}  // namespace kestrel::ts
