#include "aegis/fault.hpp"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "base/error.hpp"
#include "prof/profiler.hpp"

namespace kestrel::aegis {

namespace {

/// splitmix64: the standard 64-bit finalizer-style mixer. Each message
/// tuple hashes to an independent-looking uniform value, so a probability
/// threshold on the hash gives deterministic per-message coin flips.
std::uint64_t mix64(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t hash_message(std::uint64_t seed, int src, int dst, int tag,
                          std::uint64_t seq) {
  std::uint64_t h = mix64(seed);
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(src)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst)));
  h = mix64(h ^ static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag)));
  h = mix64(h ^ seq);
  return h;
}

/// Uniform [0,1) from a hash.
double unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_prob(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const double p = std::strtod(v.c_str(), &end);
  if (end != v.c_str() + v.size() || !(p >= 0.0) || p > 1.0) {
    throw OptionsError("aegis_faults", key + "=" + v,
                       "a probability in [0, 1]", __FILE__, __LINE__);
  }
  return p;
}

long parse_long(const std::string& key, const std::string& v) {
  char* end = nullptr;
  const long n = std::strtol(v.c_str(), &end, 10);
  if (end != v.c_str() + v.size() || v.empty()) {
    throw OptionsError("aegis_faults", key + "=" + v, "an integer", __FILE__,
                       __LINE__);
  }
  return n;
}

}  // namespace

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDelay:
      return "delay";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kBitFlip:
      return "bitflip";
    case FaultKind::kKillRank:
      return "killrank";
  }
  return "?";
}

std::shared_ptr<const FaultPlan> FaultPlan::parse(const std::string& spec) {
  if (spec.empty()) return nullptr;
  auto plan = std::shared_ptr<FaultPlan>(new FaultPlan());
  plan->spec_ = spec;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (clause.empty()) continue;
    const std::size_t eq = clause.find('=');
    if (eq == std::string::npos) {
      throw OptionsError("aegis_faults", clause, "a key=value clause",
                         __FILE__, __LINE__);
    }
    const std::string key = clause.substr(0, eq);
    const std::string val = clause.substr(eq + 1);
    if (key == "seed") {
      plan->seed_ = static_cast<std::uint64_t>(parse_long(key, val));
    } else if (key == "drop") {
      plan->drop_ = parse_prob(key, val);
    } else if (key == "delay") {
      plan->delay_ = parse_prob(key, val);
    } else if (key == "dup") {
      plan->dup_ = parse_prob(key, val);
    } else if (key == "reorder") {
      plan->reorder_ = parse_prob(key, val);
    } else if (key == "bitflip") {
      plan->bitflip_ = parse_prob(key, val);
    } else if (key == "delay_ms") {
      char* end = nullptr;
      const double ms = std::strtod(val.c_str(), &end);
      if (end != val.c_str() + val.size() || !(ms >= 0.0)) {
        throw OptionsError("aegis_faults", clause, "a duration in ms",
                           __FILE__, __LINE__);
      }
      plan->delay_ms_ = ms;
    } else if (key == "repeat") {
      const long n = parse_long(key, val);
      if (n < 1) {
        throw OptionsError("aegis_faults", clause, "repeat >= 1", __FILE__,
                           __LINE__);
      }
      plan->repeat_ = static_cast<int>(n);
    } else if (key == "max_retries") {
      const long n = parse_long(key, val);
      if (n < 0) {
        throw OptionsError("aegis_faults", clause, "max_retries >= 0",
                           __FILE__, __LINE__);
      }
      plan->max_retries_ = static_cast<int>(n);
    } else if (key == "kill") {
      const std::size_t at = val.find('@');
      if (at == std::string::npos) {
        throw OptionsError("aegis_faults", clause, "kill=RANK@CONSULT",
                           __FILE__, __LINE__);
      }
      plan->kill_rank_ =
          static_cast<int>(parse_long(key, val.substr(0, at)));
      plan->kill_at_ =
          static_cast<std::uint64_t>(parse_long(key, val.substr(at + 1)));
      if (plan->kill_rank_ < 0 || plan->kill_rank_ >= kMaxRanks ||
          plan->kill_at_ == 0) {
        throw OptionsError("aegis_faults", clause,
                           "kill=RANK@CONSULT with RANK >= 0, CONSULT >= 1",
                           __FILE__, __LINE__);
      }
    } else {
      throw OptionsError("aegis_faults", clause, "a known fault clause",
                         __FILE__, __LINE__);
    }
  }
  plan->consults_ = std::vector<std::atomic<std::uint64_t>>(kMaxRanks);
  return plan;
}

std::shared_ptr<const FaultPlan> FaultPlan::from_env() {
  const char* v = std::getenv("KESTREL_AEGIS");
  if (v == nullptr || *v == '\0') return nullptr;
  return parse(v);
}

FaultVerdict FaultPlan::message_fault(int src, int dst, int tag,
                                      std::uint64_t seq) const {
  const std::uint64_t h = hash_message(seed_, src, dst, tag, seq);
  const double u = unit(h);
  // The fault kinds partition [0, sum of probabilities): one message draws
  // at most one fault, and the per-kind rates match the spec exactly.
  double lo = 0.0;
  const struct {
    double p;
    FaultKind kind;
  } bands[] = {
      {drop_, FaultKind::kDrop},         {delay_, FaultKind::kDelay},
      {dup_, FaultKind::kDuplicate},     {reorder_, FaultKind::kReorder},
      {bitflip_, FaultKind::kBitFlip},
  };
  for (const auto& band : bands) {
    if (u < lo + band.p) return {band.kind, repeat_};
    lo += band.p;
  }
  return {FaultKind::kNone, 0};
}

bool FaultPlan::check_kill(int rank) const {
  if (kill_rank_ < 0 || rank != kill_rank_ || rank >= kMaxRanks) return false;
  const std::uint64_t n =
      consults_[static_cast<std::size_t>(rank)].fetch_add(
          1, std::memory_order_relaxed) +
      1;
  return n == kill_at_;
}

void AegisStats::reset() {
  faults_injected.store(0);
  retries.store(0);
  checksum_failures.store(0);
  duplicates_dropped.store(0);
  reorders_healed.store(0);
  delays.store(0);
  rank_kills.store(0);
  abft_verifications.store(0);
  abft_failures.store(0);
  abft_retries.store(0);
  rollbacks.store(0);
  solver_restarts.store(0);
  recoveries.store(0);
}

AegisStats& stats() {
  static AegisStats instance;
  return instance;
}

void publish_metrics(prof::Profiler& prof) {
  const AegisStats& st = stats();
  const struct {
    const char* name;
    std::uint64_t value;
  } counters[] = {
      {"aegis/faults_injected", st.faults_injected.load()},
      {"aegis/retries", st.retries.load()},
      {"aegis/checksum_failures", st.checksum_failures.load()},
      {"aegis/duplicates_dropped", st.duplicates_dropped.load()},
      {"aegis/reorders_healed", st.reorders_healed.load()},
      {"aegis/delays", st.delays.load()},
      {"aegis/rank_kills", st.rank_kills.load()},
      {"aegis/abft_verifications", st.abft_verifications.load()},
      {"aegis/abft_failures", st.abft_failures.load()},
      {"aegis/abft_retries", st.abft_retries.load()},
      {"aegis/rollbacks", st.rollbacks.load()},
      {"aegis/solver_restarts", st.solver_restarts.load()},
      {"aegis/recoveries", st.recoveries.load()},
  };
  for (const auto& c : counters) {
    prof.set_metric(c.name, static_cast<double>(c.value));
  }
}

std::uint64_t checksum_bytes(const void* data, std::size_t nbytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < nbytes; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void backoff_sleep(int attempt) {
  // 50us, 100us, 200us, ... capped at ~6.4ms: long enough to model a real
  // retransmission delay, short enough that tests injecting thousands of
  // drops stay fast.
  const int shift = attempt < 7 ? attempt : 7;
  std::this_thread::sleep_for(std::chrono::microseconds(50L << shift));
}

}  // namespace kestrel::aegis
