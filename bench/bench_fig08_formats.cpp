// Figure 8 — "Comparison of various matrix formats on a single KNL node":
// SpMV Gflop/s for nine kernel variants (SELL/CSR x AVX-512/AVX2/AVX,
// CSRPerm, CSR baseline, MKL CSR) as the MPI rank count grows.
//
// Section 1 is the modeled KNL sweep (paper hardware). Section 2 is the
// real thing at this host's scale: every variant this CPU can execute, run
// on an actual Gray–Scott Jacobian — this is the measured evidence for the
// paper's core claim that SELL + AVX-512 beats CSR.

#include <cstdio>
#include <fstream>
#include <memory>

#include "aegis/abft.hpp"
#include "bench_common.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "perf/spmv_model.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace {

using namespace kestrel;
using simd::IsaTier;

struct ModelVariant {
  const char* label;
  perf::ModelFormat fmt;
  IsaTier tier;
};

constexpr ModelVariant kVariants[] = {
    {"SELL using AVX512", perf::ModelFormat::kSell, IsaTier::kAvx512},
    {"SELL using AVX2", perf::ModelFormat::kSell, IsaTier::kAvx2},
    {"SELL using AVX", perf::ModelFormat::kSell, IsaTier::kAvx},
    {"CSR using AVX512", perf::ModelFormat::kCsr, IsaTier::kAvx512},
    {"CSR using AVX2", perf::ModelFormat::kCsr, IsaTier::kAvx2},
    {"CSR using AVX", perf::ModelFormat::kCsr, IsaTier::kAvx},
    {"CSRPerm", perf::ModelFormat::kCsrPerm, IsaTier::kAvx512},
    {"CSR baseline", perf::ModelFormat::kCsrBaseline, IsaTier::kScalar},
    {"MKL CSR", perf::ModelFormat::kMklCsr, IsaTier::kScalar},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;

  bench::parse_args(argc, argv);
  bench::header(
      "Figure 8 (modeled): SpMV on one KNL node, Gray-Scott 2048^2 "
      "(~8M dof) [Gflop/s]");
  const perf::MachineProfile knl = perf::knl7230();
  const auto w = perf::SpmvWorkload::gray_scott(2048);
  std::printf("%-18s", "variant \\ procs");
  for (int p : {4, 8, 16, 32, 64}) std::printf(" %8d", p);
  std::printf("\n");
  for (const ModelVariant& v : kVariants) {
    std::printf("%-18s", v.label);
    for (int p : {4, 8, 16, 32, 64}) {
      std::printf(" %8.2f", perf::modeled_spmv_gflops(
                                knl, perf::MemoryMode::kFlatMcdram, p, v.fmt,
                                v.tier, w));
    }
    std::printf("\n");
  }
  std::printf(
      "\nExpected shape (paper): SELL-AVX512 ~2x the CSR baseline;\n"
      "SELL-AVX ~1.8x, SELL-AVX2 ~1.7x; hand-vectorized CSR-AVX512 +54%%;\n"
      "CSR-AVX2 regresses below CSR-AVX; CSRPerm ~= baseline; MKL below\n"
      "baseline; good strong scaling to 64 ranks.\n");

  bench::header(
      "Figure 8 (measured): all kernel variants on this host (1 process)");
  mat::Csr csr = bench::gray_scott_matrix(bench::scaled(512));
  std::printf("matrix: %d rows, %lld nnz (10 per row)\n\n", csr.rows(),
              static_cast<long long>(csr.nnz()));
  std::printf("%-20s %10s %10s %10s\n", "variant", "Gflop/s", "GB/s",
              "vs base");

  csr.set_tier(IsaTier::kScalar);
  const double t_base = bench::time_spmv(csr);

  auto report = [&](const char* label, const mat::Matrix& a) {
    const double t = bench::time_spmv(a);
    std::printf("%-20s %10.2f %10.2f %9.2fx\n", label, bench::gflops(a, t),
                bench::achieved_gbs(a, t), t_base / t);
    return bench::gflops(a, t);
  };

  const IsaTier best = simd::detect_best_tier();
  const mat::Sell sell(csr);
  const mat::CsrPerm perm{mat::Csr(csr)};
  double gf_sell = 0.0, gf_csr = 0.0;
  for (int ti = static_cast<int>(best); ti >= 0; --ti) {
    const IsaTier tier = static_cast<IsaTier>(ti);
    mat::Sell s2(csr);
    s2.set_tier(tier);
    const std::string label =
        std::string("SELL using ") + simd::tier_name(tier);
    const double gf = report(label.c_str(), s2);
    if (tier == best) gf_sell = gf;
  }
  for (int ti = static_cast<int>(best); ti >= 1; --ti) {
    const IsaTier tier = static_cast<IsaTier>(ti);
    mat::Csr c2 = csr;
    c2.set_tier(tier);
    const std::string label =
        std::string("CSR using ") + simd::tier_name(tier);
    const double gf = report(label.c_str(), c2);
    if (tier == best) gf_csr = gf;
  }
  double gf_talon = 0.0;
  for (int ti = static_cast<int>(best); ti >= 0; --ti) {
    const IsaTier tier = static_cast<IsaTier>(ti);
    mat::Talon t2(csr);
    t2.set_tier(tier);
    const std::string label =
        std::string("Talon using ") + simd::tier_name(tier);
    const double gf = report(label.c_str(), t2);
    if (tier == best) gf_talon = gf;
  }
  double gf_bcsr = 0.0;
  {
    mat::Bcsr b2(csr, 2);  // natural 2x2 dof blocks of Gray-Scott
    b2.set_tier(best);
    gf_bcsr = report("BCSR bs=2", b2);
  }
  {
    mat::CsrPerm p2{mat::Csr(csr)};
    p2.set_tier(best);
    report("CSRPerm", p2);
  }
  const double gf_base = report("CSR baseline", csr);

  // Kestrel Aegis: ABFT verification overhead (EXPERIMENTS.md procedure).
  // The checksum verify is one c·x dot plus one Σy reduction per spmv —
  // O(n) against the O(nnz) multiply — so on nnz/row ≈ 10 matrices it
  // should stay well under the 10% budget.
  bench::header("Kestrel Aegis: ABFT-checksummed SpMV overhead");
  std::printf("%-20s %10s %10s %10s\n", "variant", "plain", "abft",
              "overhead");
  auto abft_overhead = [&](const char* label,
                           std::shared_ptr<const mat::Matrix> inner,
                           int verify_every) {
    const double t_plain = bench::time_spmv(*inner);
    aegis::AbftOptions aopts;
    aopts.verify_every = verify_every;
    const aegis::AbftMatrix guarded(std::move(inner), aopts);
    const double t_abft = bench::time_spmv(guarded);
    const double pct = 100.0 * (t_abft - t_plain) / t_plain;
    std::printf("%-20s %9.2fns %9.2fns %9.2f%%\n", label, t_plain * 1e9,
                t_abft * 1e9, pct);
    return pct;
  };
  auto sell_best = std::make_shared<mat::Sell>(csr);
  sell_best->set_tier(best);
  const double abft_pct_sell = abft_overhead("SELL best-ISA", sell_best, 1);
  auto sell_every2 = std::make_shared<mat::Sell>(csr);
  sell_every2->set_tier(best);
  const double abft_pct_sell2 =
      abft_overhead("SELL, verify 1-in-2", sell_every2, 2);
  auto csr_best = std::make_shared<mat::Csr>(csr);
  csr_best->set_tier(best);
  const double abft_pct_csr = abft_overhead("CSR best-ISA", csr_best, 1);

  if (!bench::json_path().empty()) {
    // kestrel-scope-metrics-v1 artifact with the per-format Gflop/s at the
    // host's best ISA tier, for the bench-smoke CI job and figure scripts.
    prof::Profiler log;
    log.set_metric("spmv_gflops/csr", gf_csr > 0.0 ? gf_csr : gf_base);
    log.set_metric("spmv_gflops/csr_baseline", gf_base);
    log.set_metric("spmv_gflops/sell", gf_sell);
    log.set_metric("spmv_gflops/bcsr", gf_bcsr);
    log.set_metric("spmv_gflops/talon", gf_talon);
    log.set_metric("matrix_rows", static_cast<double>(csr.rows()));
    log.set_metric("matrix_nnz", static_cast<double>(csr.nnz()));
    log.set_metric("abft_overhead_pct/sell", abft_pct_sell);
    log.set_metric("abft_overhead_pct/sell_every2", abft_pct_sell2);
    log.set_metric("abft_overhead_pct/csr", abft_pct_csr);
    std::ofstream out(bench::json_path());
    if (!out.good()) {
      std::fprintf(stderr, "cannot open %s\n", bench::json_path().c_str());
      return 1;
    }
    prof::write_json_metrics(out, prof::reduce(log));
    std::printf("\nwrote %s\n", bench::json_path().c_str());
  }
  return 0;
}
