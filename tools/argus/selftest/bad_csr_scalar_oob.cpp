// SELF-TEST FIXTURE — scalar CSR kernel with an off-by-one on the x
// subscript: x[colidx[k] + 1] instead of x[colidx[k]]. elem(colidx) lies
// in [0, n), so the shifted index reaches x[n].
//
// expect-violation: bounds :: x

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_spmv_scalar
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void csr_spmv_scalar(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    for (Index k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      sum += a.val[k] * x[a.colidx[k] + 1];  // BUG: off-by-one column
    }
    y[i] = sum;
  }
}

}  // namespace

void register_csr_scalar_oob_fixture() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kScalar, csr_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
