// SELL format construction invariants, conversions and variants
// (bit array, sigma sorting, slice heights).

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "mat/sell.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

void expect_same_matrix(const Csr& a, const Csr& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  ASSERT_EQ(a.nnz(), b.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    const auto c1 = a.row_cols(i);
    const auto c2 = b.row_cols(i);
    ASSERT_EQ(c1.size(), c2.size()) << "row " << i;
    for (std::size_t k = 0; k < c1.size(); ++k) {
      EXPECT_EQ(c1[k], c2[k]) << "row " << i;
      EXPECT_DOUBLE_EQ(a.row_vals(i)[k], b.row_vals(i)[k]) << "row " << i;
    }
  }
}

TEST(Sell, StructuralInvariants) {
  const Csr csr = testing::power_law(100);
  const Sell sell(csr);
  EXPECT_EQ(sell.slice_height(), 8);
  EXPECT_EQ(sell.num_slices(), (100 + 7) / 8);
  EXPECT_EQ(sell.nnz(), csr.nnz());
  EXPECT_GE(sell.stored_elements(), sell.nnz());
  EXPECT_GE(sell.fill_ratio(), 1.0);

  // sliceptr is monotone and multiples of c
  const Index* sp = sell.sliceptr();
  for (Index s = 0; s < sell.num_slices(); ++s) {
    EXPECT_LE(sp[s], sp[s + 1]);
    EXPECT_EQ((sp[s + 1] - sp[s]) % sell.slice_height(), 0);
  }
  // slice width equals the max rlen in the slice
  for (Index s = 0; s < sell.num_slices(); ++s) {
    Index maxlen = 0;
    for (Index lane = 0; lane < 8; ++lane) {
      const Index p = s * 8 + lane;
      if (p < sell.rows()) maxlen = std::max(maxlen, sell.rlen()[p]);
    }
    EXPECT_EQ((sp[s + 1] - sp[s]) / 8, maxlen);
  }
}

TEST(Sell, RlenMatchesCsr) {
  const Csr csr = testing::power_law(64);
  const Sell sell(csr);
  for (Index i = 0; i < 64; ++i) {
    EXPECT_EQ(sell.rlen()[i], csr.row_nnz(i));
  }
}

TEST(Sell, PaddedColumnIndicesAreValidAndLocal) {
  // Section 5.5: padding copies a column index the row already uses, so
  // gathers never touch memory the row does not reference.
  const Csr csr = testing::power_law(40);
  const Sell sell(csr);
  const Index c = sell.slice_height();
  for (Index s = 0; s < sell.num_slices(); ++s) {
    const Index base = sell.sliceptr()[s];
    const Index width = (sell.sliceptr()[s + 1] - base) / c;
    for (Index lane = 0; lane < c; ++lane) {
      const Index p = s * c + lane;
      const Index len = p < sell.rows() ? sell.rlen()[p] : 0;
      for (Index j = len; j < width; ++j) {
        const Index k = base + j * c + lane;
        EXPECT_DOUBLE_EQ(sell.val()[k], 0.0);
        const Index col = sell.colidx()[k];
        EXPECT_GE(col, 0);
        EXPECT_LT(col, sell.cols());
        if (len > 0) {
          // must equal one of the row's real columns (we use the last)
          EXPECT_EQ(col, csr.row_cols(p)[static_cast<std::size_t>(len - 1)]);
        }
      }
    }
  }
}

TEST(Sell, RoundTripsThroughCsr) {
  for (auto make : {+[] { return testing::banded(50, {-2, -1, 1, 2}); },
                    +[] { return testing::power_law(50); },
                    +[] { return testing::with_empty_rows(50); },
                    +[] { return testing::with_dense_row(50); }}) {
    const Csr csr = make();
    expect_same_matrix(Sell(csr).to_csr(), csr);
  }
}

TEST(Sell, RoundTripWithSigmaSorting) {
  const Csr csr = testing::power_law(100);
  SellOptions opts;
  opts.sigma = 32;
  const Sell sell(csr, opts);
  EXPECT_TRUE(sell.is_sorted());
  expect_same_matrix(sell.to_csr(), csr);
}

TEST(Sell, SigmaSortingReducesPadding) {
  const Csr csr = testing::power_law(512);
  const Sell plain(csr);
  SellOptions opts;
  opts.sigma = 64;
  const Sell sorted(csr, opts);
  EXPECT_LE(sorted.stored_elements(), plain.stored_elements());
}

TEST(Sell, SortedPermutationIsAPermutation) {
  const Csr csr = testing::power_law(70);
  SellOptions opts;
  opts.sigma = 16;
  const Sell sell(csr, opts);
  std::vector<bool> seen(70, false);
  for (Index p = 0; p < 70; ++p) {
    const Index r = sell.perm(p);
    ASSERT_GE(r, 0);
    ASSERT_LT(r, 70);
    EXPECT_FALSE(seen[static_cast<std::size_t>(r)]);
    seen[static_cast<std::size_t>(r)] = true;
  }
}

TEST(Sell, BitmaskMarksExactlyRealEntries) {
  const Csr csr = testing::power_law(30);
  SellOptions opts;
  opts.build_bitmask = true;
  const Sell sell(csr, opts);
  ASSERT_TRUE(sell.has_bitmask());
  const Index c = sell.slice_height();
  std::int64_t bits = 0;
  for (Index s = 0; s < sell.num_slices(); ++s) {
    const Index base = sell.sliceptr()[s];
    const Index width = (sell.sliceptr()[s + 1] - base) / c;
    for (Index j = 0; j < width; ++j) {
      const std::uint64_t mask = sell.view().bitmask[(base + j * c) / c];
      for (Index lane = 0; lane < c; ++lane) {
        const Index p = s * c + lane;
        const bool real = p < sell.rows() && j < sell.rlen()[p];
        EXPECT_EQ(((mask >> lane) & 1u) != 0, real);
        bits += ((mask >> lane) & 1u);
      }
    }
  }
  EXPECT_EQ(bits, sell.nnz());
}

TEST(Sell, SliceHeightVariants) {
  const Csr csr = testing::power_law(61);
  for (Index c : {1, 3, 4, 8, 16, 32}) {
    SellOptions opts;
    opts.slice_height = c;
    const Sell sell(csr, opts);
    EXPECT_EQ(sell.slice_height(), c);
    expect_same_matrix(sell.to_csr(), csr);
  }
  SellOptions bad;
  bad.slice_height = 65;
  EXPECT_THROW(Sell(csr, bad), Error);
  bad.slice_height = 0;
  EXPECT_THROW(Sell(csr, bad), Error);
}

TEST(Sell, SliceHeightOneIsCsrStorage) {
  // Section 2.5: C = 1 makes sliced ELLPACK identical to CSR — no padding.
  const Csr csr = testing::power_law(33);
  SellOptions opts;
  opts.slice_height = 1;
  const Sell sell(csr, opts);
  EXPECT_EQ(sell.stored_elements(), sell.nnz());
  EXPECT_DOUBLE_EQ(sell.fill_ratio(), 1.0);
}

TEST(Sell, GetDiagonal) {
  const Csr csr = testing::banded(20, {-1, 1});
  const Sell sell(csr);
  Vector d;
  sell.get_diagonal(d);
  for (Index i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(d[i], csr.at(i, i));
}

TEST(Sell, GetDiagonalWithSorting) {
  const Csr csr = testing::power_law(24);
  SellOptions opts;
  opts.sigma = 24;
  const Sell sell(csr, opts);
  Vector d;
  sell.get_diagonal(d);
  for (Index i = 0; i < 24; ++i) EXPECT_DOUBLE_EQ(d[i], csr.at(i, i));
}

TEST(Sell, EmptyMatrix) {
  const Csr csr(0, 0, {0}, {}, {});
  const Sell sell(csr);
  EXPECT_EQ(sell.num_slices(), 0);
  EXPECT_EQ(sell.stored_elements(), 0);
  Vector x, y;
  EXPECT_NO_THROW(sell.spmv(x, y));
}

TEST(Sell, UniformRowsHaveNoPadding) {
  // Gray–Scott-like: every row the same length -> fill ratio of exactly 1
  // when rows divide the slice height.
  const Csr csr = testing::uniform_random(64, 64, 1, 11);
  // uniform_random may merge duplicates; build strictly uniform instead
  Coo coo(64, 64);
  for (Index i = 0; i < 64; ++i) {
    coo.add(i, i, 2.0);
    coo.add(i, (i + 1) % 64, -1.0);
  }
  const Sell sell(coo.to_csr());
  EXPECT_DOUBLE_EQ(sell.fill_ratio(), 1.0);
}

TEST(Sell, TrafficModelBeatsCsr) {
  // Section 6: SELL moves 14 bytes per row less than CSR.
  const Csr csr = testing::banded(1000, {-1, 1});
  const Sell sell(csr);
  EXPECT_EQ(csr.spmv_traffic_bytes() - sell.spmv_traffic_bytes(),
            14u * 1000u);
}

}  // namespace
}  // namespace kestrel::mat
