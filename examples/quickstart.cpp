// Quickstart: assemble a sparse matrix, convert it to the SELL format, do
// a vectorized SpMV, and solve a linear system with preconditioned CG.
//
//   ./quickstart [-n 64] [-mat_type sell|csr] [-spmv_isa avx512|avx2|avx|scalar]
//               [-mat_index 32|16] [-mat_scalar fp64|fp32]

#include <cstdio>

#include "app/laplacian.hpp"
#include "base/options.hpp"
#include "ksp/context.hpp"
#include "mat/sell.hpp"
#include "mat/slim.hpp"
#include "pc/jacobi.hpp"
#include "simd/isa.hpp"

using namespace kestrel;

int main(int argc, char** argv) {
  Options::global().parse(argc, argv);
  const Index n = Options::global().get_index("n", 64);
  const std::string mat_type =
      Options::global().get_string("mat_type", "sell");

  // 1. Assemble a matrix. Any assembly goes through the COO builder; here
  //    we use the ready-made 2D Dirichlet Laplacian (SPD, 5-point stencil).
  const mat::Csr csr = app::laplacian_dirichlet(n, n);
  std::printf("assembled %d x %d Laplacian, %lld nonzeros\n", csr.rows(),
              csr.cols(), static_cast<long long>(csr.nnz()));

  // 2. Pick the compute format. SELL is the paper's vectorization-friendly
  //    sliced-ELLPACK format; the ISA tier is auto-detected (override with
  //    -spmv_isa).
  std::shared_ptr<mat::Matrix> a;
  if (mat_type == "sell") {
    auto sell = std::make_shared<mat::Sell>(csr);
    std::printf("SELL: slice height %d, fill ratio %.3f\n",
                sell->slice_height(), sell->fill_ratio());
    a = sell;
  } else {
    a = std::make_shared<mat::Csr>(csr);
  }
  // Optional Kestrel Slim streams (-mat_index 16 / -mat_scalar fp32).
  if (!mat::apply_slim_options(*a, Options::global())) {
    std::printf("slim storage declined (16-bit column span exceeded); "
                "keeping fat streams\n");
  } else if (a->slim_active()) {
    std::printf("slim streams active\n");
  }
  std::printf("format: %s, ISA tier: %s\n", a->format_name().c_str(),
              simd::tier_name(a->tier()));

  // 3. SpMV.
  Vector x(a->cols(), 1.0), y;
  a->spmv(x, y);
  std::printf("||A*1||_2 = %.6f\n", y.norm2());

  // 4. Solve A u = b with Jacobi-preconditioned CG.
  Vector b(a->rows(), 1.0);
  Vector u(a->rows());
  const pc::Jacobi jacobi(*a);
  ksp::Settings settings;
  settings.rtol = 1e-8;
  settings.monitor = [](int it, Scalar rnorm) {
    if (it % 20 == 0) std::printf("  it %4d  residual %.3e\n", it, rnorm);
  };
  const ksp::Cg cg(settings);
  ksp::SeqContext ctx(*a, &jacobi);
  const ksp::SolveResult res = cg.solve(ctx, b, u);
  std::printf("CG %s in %d iterations, residual %.3e (%s)\n",
              res.converged ? "converged" : "FAILED", res.iterations,
              res.residual_norm, ksp::reason_name(res.reason));
  return res.converged ? 0 : 1;
}
