#!/usr/bin/env bash
# Kestrel Sentry: the full local gate. Mirrors what CI runs — a normal
# build + test pass, the kernel-contract lint (with its self-test), and the
# ASan/UBSan sanitizer suites. The TSan suite is optional (slow) and runs
# with --tsan.
#
# Usage:  scripts/check.sh [--tsan] [-j N]

set -euo pipefail
cd "$(dirname "$0")/.."

jobs=2
run_tsan=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --tsan) run_tsan=1 ;;
    -j) jobs="$2"; shift ;;
    *) echo "unknown argument: $1" >&2; exit 2 ;;
  esac
  shift
done

banner() { printf '\n=== %s ===\n' "$*"; }

banner "lint (kernel contracts)"
python3 tools/kestrel_lint.py --self-test
python3 tools/kestrel_lint.py --repo .

banner "lint (header self-sufficiency)"
python3 tools/check_headers.py --repo . -j "$jobs"

banner "argus (kernel memory-safety / tail / traffic proofs)"
python3 tools/argus/argus.py --repo . --self-test
python3 tools/argus/argus.py --repo .

banner "build + full test suite"
cmake -B build -S . -DKESTREL_WERROR=ON >/dev/null
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure

banner "profiler suite (ctest -L prof) + sample trace"
ctest --test-dir build -L prof --output-on-failure
./build/examples/parallel_spmv -ranks 4 -n 64 \
  -log_view -log_trace build/kestrel_trace.json \
  -log_json build/kestrel_metrics.json
python3 - <<'EOF'
import json
with open("build/kestrel_trace.json") as f:
    trace = json.load(f)
assert any(e.get("ph") == "X" for e in trace["traceEvents"]), "no spans"
with open("build/kestrel_metrics.json") as f:
    metrics = json.load(f)
assert metrics["schema"] in ("kestrel-scope-metrics-v1",
                             "kestrel-scope-metrics-v2"), metrics.get("schema")
print(f"sample trace ok: {len(trace['traceEvents'])} trace events, "
      f"{len(metrics['events'])} metric rows")
EOF

banner "bench smoke (ctest -L bench-smoke) + BENCH_spmv.json"
ctest --test-dir build -L bench-smoke --output-on-failure
./build/bench/bench_fig08_formats --smoke --json build/BENCH_spmv.json
python3 - <<'EOF'
import json
with open("build/BENCH_spmv.json") as f:
    doc = json.load(f)
assert doc["schema"] in ("kestrel-scope-metrics-v1",
                         "kestrel-scope-metrics-v2"), doc.get("schema")
for fmt in ("csr", "sell", "bcsr", "talon"):
    key = f"spmv_gflops/{fmt}"
    assert doc["metrics"].get(key, 0.0) > 0.0, key
print("bench metrics ok:", {k: round(v, 2)
                            for k, v in doc["metrics"].items()})
EOF

banner "hwc counter suite (ctest -L hwc) + BENCH_hwc.json"
# Kestrel Pulse: on hosts without perf-event access the tests GTEST_SKIP
# and bench_hwc prints "hwc: skipped: no PMU access (...)" — both count as
# passing, but the reason stays visible in the log.
ctest --test-dir build -L hwc --output-on-failure
./build/bench/bench_hwc --smoke --json build/BENCH_hwc.json
python3 - <<'EOF'
import json
with open("build/BENCH_hwc.json") as f:
    doc = json.load(f)
assert doc["schema"] in ("kestrel-scope-metrics-v1",
                         "kestrel-scope-metrics-v2"), doc.get("schema")
hwc = doc.get("hwc")
assert hwc is not None, "v2 document must carry the hwc capability block"
if hwc["available"]:
    print(f"hwc ok: source {hwc['source']}, "
          f"{len([k for k in doc['metrics'] if k.startswith('bytes_')])} "
          f"byte metrics")
else:
    print(f"hwc skipped: no PMU access ({hwc['detail']}) — "
          f"modeled bytes only")
EOF

banner "fabric exchange bench + BENCH_comm.json (speedup gate)"
./build/bench/bench_comm --smoke --json build/BENCH_comm.json
python3 - <<'EOF'
import json
with open("build/BENCH_comm.json") as f:
    doc = json.load(f)
assert doc["schema"] in ("kestrel-scope-metrics-v1",
                         "kestrel-scope-metrics-v2"), doc.get("schema")
m = doc["metrics"]
assert m["comm_alpha_s"] > 0.0, "postal-model alpha not calibrated"
assert m["fabric/persistent_allocs_per_exchange"] == 0.0, \
    "persistent path allocated in steady state"
assert m["exchange_speedup"] >= 1.3, \
    f"persistent ghost exchange only {m['exchange_speedup']:.2f}x vs mailbox"
print(f"comm bench ok: {m['exchange_speedup']:.2f}x speedup, "
      f"alpha={m['comm_alpha_s'] * 1e6:.2f}us, 0 steady-state allocs")
EOF

banner "flock thread-scaling bench + BENCH_threads.json (speedup gate)"
./build/bench/bench_threads --smoke --json build/BENCH_threads.json
python3 - <<'EOF'
import json
with open("build/BENCH_threads.json") as f:
    doc = json.load(f)
assert doc["schema"] in ("kestrel-scope-metrics-v1",
                         "kestrel-scope-metrics-v2"), doc.get("schema")
m = doc["metrics"]
for fmt in ("csr", "csrperm", "sell", "bcsr", "talon"):
    for t in (1, 2, 4, 8):
        key = f"{fmt}_t{t}_gflops"
        assert m.get(key, 0.0) > 0.0, key
if m["threads_gate_eligible"] == 1.0:
    assert m["threads_gate_speedup"] >= 2.0, (
        f"best 4-thread speedup only {m['threads_gate_speedup']:.2f}x "
        f"on a {int(m['threads_hw_cores'])}-core host (gate: >= 2x)")
    print(f"flock bench ok: {m['threads_gate_speedup']:.2f}x at 4 threads "
          f"({int(m['threads_hw_cores'])} cores)")
else:
    print(f"flock gate skipped: host has only "
          f"{int(m['threads_hw_cores'])} cores (< 4); metrics exported")
EOF

banner "slim storage suite (ctest -L slim) + BENCH_slim.json (speedup gate)"
ctest --test-dir build -L slim --output-on-failure
./build/bench/bench_slim --smoke --json build/BENCH_slim.json
python3 - <<'EOF'
import json
with open("build/BENCH_slim.json") as f:
    doc = json.load(f)
assert doc["schema"] in ("kestrel-scope-metrics-v1",
                         "kestrel-scope-metrics-v2"), doc.get("schema")
m = doc["metrics"]
for fmt in ("csr", "csrperm", "sell", "bcsr", "talon"):
    for cfg in ("fat", "idx16", "fp32", "slim"):
        key = f"slim/{fmt}/{cfg}_gflops"
        assert m.get(key, 0.0) > 0.0, key
if m["slim_gate_eligible"] == 1.0:
    assert m["slim_gate_count"] >= 2.0, (
        f"only {int(m['slim_gate_count'])} format(s) reached 1.3x full-slim "
        f"speedup on a bandwidth-bound matrix (gate: >= 2)")
    print(f"slim bench ok: {int(m['slim_gate_count'])} formats >= 1.3x "
          f"with idx16+fp32 streams")
else:
    print("slim gate skipped: host lacks the AVX-512 tier; metrics exported")
EOF

banner "bastion solve-service suite (ctest -L svc) + BENCH_serve.json"
ctest --test-dir build -L svc --output-on-failure
./build/bench/bench_serve --smoke --json build/BENCH_serve.json
python3 - <<'EOF'
import json
with open("build/BENCH_serve.json") as f:
    doc = json.load(f)
assert doc["schema"] in ("kestrel-scope-metrics-v1",
                         "kestrel-scope-metrics-v2"), doc.get("schema")
m = doc["metrics"]
assert m["serve/capacity_rps"] > 0.0, "capacity never calibrated"
for load in ("half", "1x", "2x"):
    for field in ("offered_rps", "submitted", "accepted", "shed_rate",
                  "p50_s", "p99_s"):
        key = f"serve/{load}/{field}"
        assert key in m, key
# The overload proof: every over-capacity submission was a structured
# RejectedError, and shedding grows monotonically with offered load —
# admission control refuses work instead of queueing it without bound.
assert m["serve/unstructured_errors"] == 0.0, \
    f"{int(m['serve/unstructured_errors'])} submit failures were not " \
    f"structured RejectedErrors"
rates = [m[f"serve/{load}/shed_rate"] for load in ("half", "1x", "2x")]
assert rates == sorted(rates), \
    f"shed rate not monotonic in offered load: {rates}"
assert m["serve/shed_rate_monotonic"] == 1.0, "bench disagrees on monotonicity"
print(f"serve bench ok: capacity {m['serve/capacity_rps']:.0f} req/s, "
      f"shed rates {[round(r, 3) for r in rates]}, "
      f"p99(2x)/p99(0.5x) = {m['serve/p99_ratio_2x_over_half']:.2f}")
EOF

banner "aegis fault-tolerance suite (ctest -L aegis) + fault-injected solve"
ctest --test-dir build -L aegis --output-on-failure
# Deterministic end-to-end fault sweep on both ghost transports; the spec is
# printed by the example, so any failure replays with the same -aegis_faults.
for transport in mailbox persistent; do
  ./build/examples/parallel_spmv -ranks 8 -n 32 \
    -aegis_faults "seed=7,drop=0.1,delay=0.1,dup=0.1,reorder=0.1,bitflip=0.05" \
    -aegis_abft -ksp_breakdown_recovery -ghost_exchange "$transport"
done

sanitizer_suite() {
  local name="$1" label="$2"
  banner "sanitizer: $name (ctest -L $label)"
  cmake -B "build-$label" -S . -DKESTREL_SANITIZE="$name" \
    -DKESTREL_BUILD_BENCH=OFF -DKESTREL_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "build-$label" -j "$jobs"
  ctest --test-dir "build-$label" -L "$label" --output-on-failure
  # The slim differential sweep runs under every sanitizer: the compressed
  # kernels do the repo's most intricate pointer math (base + u16 rebase).
  ctest --test-dir "build-$label" -L slim --output-on-failure
  # The bastion service battery too: worker pools + shared queues + cancel
  # flags are exactly the code sanitizers exist for.
  ctest --test-dir "build-$label" -L svc --output-on-failure
}

sanitizer_suite address asan
sanitizer_suite undefined ubsan
if [[ "$run_tsan" == 1 ]]; then
  sanitizer_suite thread tsan
fi

banner "all checks passed"
