#include "perf/bwmodel.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace kestrel::perf {

double modeled_bandwidth(const MachineProfile& machine, MemoryMode mode,
                         int procs, bool vectorized) {
  KESTREL_CHECK(procs >= 1, "bandwidth model needs at least one process");
  double peak = 0.0;
  double sat = machine.bw_saturation_procs;
  double novec_fraction = 1.0;
  switch (mode) {
    case MemoryMode::kFlatMcdram:
      peak = machine.has_mcdram() ? machine.hbm_peak_gbs
                                  : machine.dram_peak_gbs;
      novec_fraction = machine.novec_bw_fraction_flat;
      break;
    case MemoryMode::kCache:
      // MCDRAM as a direct-mapped cache loses a little to conflict misses
      // and saturates earlier (Figure 4: ~40 procs vs 58).
      peak = machine.has_mcdram() ? 0.72 * machine.hbm_peak_gbs
                                  : machine.dram_peak_gbs;
      sat = machine.has_mcdram() ? 0.7 * sat : sat;
      novec_fraction = machine.novec_bw_fraction_cache;
      break;
    case MemoryMode::kFlatDram:
      peak = machine.dram_peak_gbs;
      // DRAM saturates with far fewer processes than MCDRAM
      sat = machine.has_mcdram() ? 0.25 * sat : sat;
      novec_fraction =
          std::max(machine.novec_bw_fraction_cache, 0.9);
      break;
  }
  if (!vectorized) peak *= novec_fraction;
  // saturating rise; "sat" procs reach ~95% of the plateau
  const double k = 3.0 / sat;
  return peak * (1.0 - std::exp(-k * procs));
}

std::vector<StreamPoint> modeled_stream_sweep(const MachineProfile& machine,
                                              const std::vector<int>& procs) {
  std::vector<StreamPoint> out;
  out.reserve(procs.size());
  for (int p : procs) {
    out.push_back(
        {p, modeled_bandwidth(machine, MemoryMode::kFlatMcdram, p, true),
         modeled_bandwidth(machine, MemoryMode::kFlatMcdram, p, false),
         modeled_bandwidth(machine, MemoryMode::kCache, p, true),
         modeled_bandwidth(machine, MemoryMode::kCache, p, false)});
  }
  return out;
}

}  // namespace kestrel::perf
