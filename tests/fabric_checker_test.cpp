// Fabric checker tests (Kestrel Sentry): the happens-before recorder must
// catch mismatched collectives, double-wait, un-waited requests and hangs —
// each with rank/op/source/tag context — while staying silent on correct
// programs.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "base/error.hpp"
#include "par/checker.hpp"
#include "par/comm.hpp"

namespace kestrel::par {
namespace {

/// Checker always on, regardless of build type; short hang timeout only
/// where a test intends to hang.
FabricOptions checked(double hang_timeout_s = 30.0) {
  FabricOptions opts;
  opts.check = true;
  opts.hang_timeout_s = hang_timeout_s;
  return opts;
}

std::string run_and_capture_error(int nranks,
                                  const std::function<void(Comm&)>& fn,
                                  double hang_timeout_s = 30.0) {
  try {
    Fabric::run(nranks, checked(hang_timeout_s), fn);
  } catch (const Error& e) {
    return e.what();
  }
  return {};
}

TEST(FabricChecker, CleanProgramStaysSilent) {
  Fabric::run(3, checked(), [](Comm& comm) {
    const int me = comm.rank();
    comm.isend((me + 1) % 3, 4, {static_cast<Scalar>(me)});
    std::vector<Scalar> sink;
    Request req = comm.irecv((me + 2) % 3, 4, &sink);
    comm.wait(req);
    EXPECT_EQ(sink.size(), 1u);
    comm.barrier();
    EXPECT_DOUBLE_EQ(comm.allreduce(1.0), 3.0);
    const auto all = comm.allgatherv(std::vector<Scalar>{Scalar(me)});
    EXPECT_EQ(all.size(), 3u);
  });
}

TEST(FabricChecker, MismatchedCollectiveReportsRankAndOp) {
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
    } else {
      (void)comm.allreduce(1.0);
    }
  });
  EXPECT_NE(what.find("mismatched collectives"), std::string::npos) << what;
  EXPECT_NE(what.find("barrier"), std::string::npos) << what;
  EXPECT_NE(what.find("allreduce"), std::string::npos) << what;
  EXPECT_NE(what.find("rank"), std::string::npos) << what;
}

TEST(FabricChecker, MismatchedCollectiveLaterRound) {
  // Rounds 0 and 1 agree; round 2 diverges between allgatherv and barrier.
  const std::string what = run_and_capture_error(3, [](Comm& comm) {
    (void)comm.allreduce(1.0);
    comm.barrier();
    if (comm.rank() == 2) {
      (void)comm.allgatherv(std::vector<Scalar>{1.0});
    } else {
      comm.barrier();
    }
  });
  EXPECT_NE(what.find("mismatched collectives at round 2"),
            std::string::npos)
      << what;
}

TEST(FabricChecker, DoubleWaitReported) {
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Scalar> sink;
      Request req = comm.irecv(1, 9, &sink);
      comm.wait(req);
      comm.wait(req);  // contract violation
    } else {
      comm.isend(0, 9, {2.5});
    }
  });
  EXPECT_NE(what.find("double wait"), std::string::npos) << what;
  EXPECT_NE(what.find("source=1"), std::string::npos) << what;
  EXPECT_NE(what.find("tag=9"), std::string::npos) << what;
}

TEST(FabricChecker, WaitThroughCopyReported) {
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<Scalar> sink;
      Request req = comm.irecv(1, 3, &sink);
      Request copy = req;  // copies share the posted receive
      comm.wait(req);
      comm.wait(copy);  // double wait in disguise
    } else {
      comm.isend(0, 3, {1.0});
    }
  });
  EXPECT_NE(what.find("waited on via a copy"), std::string::npos) << what;
}

TEST(FabricChecker, UnwaitedRequestAtExitReported) {
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.isend(1, 6, {1.0, 2.0});
    } else {
      std::vector<Scalar> sink;
      (void)comm.irecv(0, 6, &sink);
      // returns without wait: the message is silently dropped
    }
  });
  EXPECT_NE(what.find("un-waited request"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 1"), std::string::npos) << what;
  EXPECT_NE(what.find("source=0"), std::string::npos) << what;
  EXPECT_NE(what.find("tag=6"), std::string::npos) << what;
}

TEST(FabricChecker, UnwaitedRequestSingleRank) {
  EXPECT_THROW(Fabric::run(1, checked(),
                           [](Comm& comm) {
                             comm.isend(0, 1, {1.0});
                             std::vector<Scalar> sink;
                             (void)comm.irecv(0, 1, &sink);
                           }),
               Error);
}

TEST(FabricChecker, HangReportedAsLostWakeup) {
  const std::string what = run_and_capture_error(
      2,
      [](Comm& comm) {
        if (comm.rank() == 0) {
          (void)comm.recv(1, 5);  // rank 1 never sends
        }
      },
      /*hang_timeout_s=*/0.2);
  EXPECT_NE(what.find("lost wakeup or deadlock"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
  // Aegis hang reports always name the offending channel's (src, dst, tag).
  EXPECT_NE(what.find("recv (src=1, dst=0, tag=5)"), std::string::npos)
      << what;
}

TEST(FabricChecker, ReportsIncludeEventTrace) {
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.barrier();
    } else {
      (void)comm.allreduce(1.0);
    }
  });
  EXPECT_NE(what.find("recent fabric events"), std::string::npos) << what;
}

TEST(FabricChecker, DoubleWaitThrowsEvenWithCheckerOff) {
  // Release-mode backstop: Request lifetime is enforced unconditionally.
  FabricOptions opts;
  opts.check = false;
  EXPECT_THROW(Fabric::run(2, opts,
                           [](Comm& comm) {
                             if (comm.rank() == 0) {
                               std::vector<Scalar> sink;
                               Request req = comm.irecv(1, 2, &sink);
                               comm.wait(req);
                               comm.wait(req);
                             } else {
                               comm.isend(0, 2, {1.0});
                             }
                           }),
               Error);
}

TEST(FabricChecker, CleanPersistentExchangeStaysSilent) {
  Fabric::run(2, checked(), [](Comm& comm) {
    const int peer = 1 - comm.rank();
    std::vector<Scalar> ghost(2, 0.0);
    auto ex = comm.open_exchange({{peer, 2}}, {{peer, ghost.data(), 2}});
    const std::vector<Scalar> packed = {1.0, 2.0};
    for (int round = 0; round < 3; ++round) {
      ex->arm();
      ex->send(0, packed.data(), 2);
      ex->wait_all();
    }
  });
}

TEST(FabricChecker, ReArmAcrossExchangesWithUndrainedReceives) {
  // Per-rank accounting catches what each exchange's local state cannot:
  // arming a second exchange while the first still has posted receives.
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Scalar a = 0.0, b = 0.0;
      auto ex1 = comm.open_exchange({}, {{1, &a, 1}});
      auto ex2 = comm.open_exchange({}, {{1, &b, 1}});
      ex1->arm();
      ex2->arm();  // ex1's receive is still in flight
      ex1->wait_all();
      ex2->wait_all();
    }
    // rank 1 exits immediately; rank 0 fails before needing its sends
  });
  EXPECT_NE(what.find("undrained receive(s)"), std::string::npos) << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
}

TEST(FabricChecker, ExitWithArmedReceivesReported) {
  const std::string what = run_and_capture_error(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Scalar slot = 0.0;
      auto ex = comm.open_exchange({}, {{1, &slot, 1}});
      ex->arm();
      // returns without wait_any: the posted receive is abandoned
    } else {
      auto ex = comm.open_exchange({{0, 1}}, {});
      const Scalar v = 4.0;
      ex->send(0, &v, 1);
    }
  });
  EXPECT_NE(what.find("armed persistent receive(s) never completed"),
            std::string::npos)
      << what;
  EXPECT_NE(what.find("rank 0"), std::string::npos) << what;
}

TEST(FabricChecker, EventNamesAreStable) {
  // The lint/docs reference these names; keep them fixed.
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kIsend), "isend");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kIrecvPost), "irecv");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kWait), "wait");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kRecv), "recv");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kBarrier), "barrier");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kAllreduce), "allreduce");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kAllgatherv),
               "allgatherv");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kChannelOpen),
               "channel-open");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kChannelArm),
               "channel-arm");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kChannelSend),
               "channel-send");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kChannelComplete),
               "channel-complete");
  EXPECT_STREQ(fabric_event_name(FabricEventKind::kRankExit), "rank-exit");
}

}  // namespace
}  // namespace kestrel::par
