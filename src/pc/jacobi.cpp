#include "pc/jacobi.hpp"

#include "base/error.hpp"
#include "mat/matrix.hpp"

namespace kestrel::pc {

Jacobi::Jacobi(const mat::Matrix& a) : Jacobi(a, 1.0) {}

Jacobi::Jacobi(const mat::Matrix& a, Scalar omega) : omega_(omega) {
  a.get_diagonal(inv_diag_);
  for (Index i = 0; i < inv_diag_.size(); ++i) {
    KESTREL_CHECK(inv_diag_[i] != 0.0,
                  "jacobi: zero diagonal entry at row " + std::to_string(i));
    inv_diag_[i] = 1.0 / inv_diag_[i];
  }
}

void Jacobi::apply(const Vector& r, Vector& z) const {
  KESTREL_CHECK(r.size() == inv_diag_.size(), "jacobi: size mismatch");
  z.resize(r.size());
  for (Index i = 0; i < r.size(); ++i) {
    z[i] = omega_ * inv_diag_[i] * r[i];
  }
}

}  // namespace kestrel::pc
