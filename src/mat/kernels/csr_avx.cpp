// AVX (pre-AVX2) CSR SpMV: no hardware gather and no FMA, so x elements are
// assembled with two 128-bit loads + insert, and multiply/add are issued
// separately (paper section 5.5 — the separate mul/add chains can actually
// pipeline better than serialized FMAs on KNL).

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=avx

namespace kestrel::mat::kernels {

namespace {

inline __m256d gather4_avx(const Scalar* x, const Index* idx) {
  const __m128d lo = _mm_set_pd(x[idx[1]], x[idx[0]]);
  const __m128d hi = _mm_set_pd(x[idx[3]], x[idx[2]]);
  return _mm256_insertf128_pd(_mm256_castpd128_pd256(lo), hi, 1);
}

inline Scalar hsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

inline Scalar row_dot_avx(const Scalar* val, const Index* colidx, Index len,
                          const Scalar* x) {
  __m256d acc = _mm256_setzero_pd();
  Index k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m256d vals = _mm256_loadu_pd(val + k);
    const __m256d vx = gather4_avx(x, colidx + k);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vals, vx));
  }
  Scalar sum = hsum256(acc);
  for (; k < len; ++k) sum += val[k] * x[colidx[k]];
  return sum;
}

// argus-kernel: csr_spmv_avx
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr
void csr_spmv_avx(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[i] = row_dot_avx(a.val + begin, a.colidx + begin,
                       a.rowptr[i + 1] - begin, x);
  }
}

// argus-kernel: csr_spmv_add_rows_avx
// argus-param: a : view CsrView
// argus-param: rows : in extent m elem [0, len(y))
// argus-param: x : in extent n
// argus-param: y : out
// argus-traffic: none
void csr_spmv_add_rows_avx(const CsrView& a, const Index* rows,
                           const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[rows[i]] += row_dot_avx(a.val + begin, a.colidx + begin,
                              a.rowptr[i + 1] - begin, x);
  }
}

}  // namespace

void register_csr_avx() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kAvx, csr_spmv_avx);
  KESTREL_REGISTER_KERNEL(kCsrSpmvAddRows, kAvx, csr_spmv_add_rows_avx);
}

}  // namespace kestrel::mat::kernels
