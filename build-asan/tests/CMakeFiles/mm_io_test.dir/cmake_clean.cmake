file(REMOVE_RECURSE
  "CMakeFiles/mm_io_test.dir/mm_io_test.cpp.o"
  "CMakeFiles/mm_io_test.dir/mm_io_test.cpp.o.d"
  "mm_io_test"
  "mm_io_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mm_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
