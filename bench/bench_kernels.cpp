// google-benchmark microbenchmarks of the raw SpMV kernels: every format x
// every ISA tier this CPU supports, on the Gray-Scott Jacobian, plus the
// parallel overlapped SpMV across fabric ranks.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_common.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "par/parmat.hpp"

namespace {

using namespace kestrel;
using simd::IsaTier;

const mat::Csr& shared_matrix() {
  static const mat::Csr csr = bench::gray_scott_matrix(256);
  return csr;
}

void bench_spmv(benchmark::State& state, const mat::Matrix& a) {
  Vector x(a.cols(), 1.0), y(a.rows());
  for (auto _ : state) {
    a.spmv(x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["Gflop/s"] = benchmark::Counter(
      2.0 * static_cast<double>(a.nnz()) * state.iterations() / 1e9,
      benchmark::Counter::kIsRate);
}

void BM_CsrSpmv(benchmark::State& state) {
  const auto tier = static_cast<IsaTier>(state.range(0));
  if (!simd::cpu_supports(tier)) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  mat::Csr a = shared_matrix();
  a.set_tier(tier);
  bench_spmv(state, a);
}

void BM_SellSpmv(benchmark::State& state) {
  const auto tier = static_cast<IsaTier>(state.range(0));
  if (!simd::cpu_supports(tier)) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  mat::Sell a(shared_matrix());
  a.set_tier(tier);
  bench_spmv(state, a);
}

void BM_CsrPermSpmv(benchmark::State& state) {
  const auto tier = static_cast<IsaTier>(state.range(0));
  if (!simd::cpu_supports(tier)) {
    state.SkipWithError("tier unsupported on this CPU");
    return;
  }
  mat::CsrPerm a{mat::Csr(shared_matrix())};
  a.set_tier(tier);
  bench_spmv(state, a);
}

void BM_SellSliceHeight(benchmark::State& state) {
  mat::SellOptions opts;
  opts.slice_height = static_cast<Index>(state.range(0));
  const mat::Sell a(shared_matrix(), opts);
  bench_spmv(state, a);
}

void BM_ParallelSpmv(benchmark::State& state) {
  const int nranks = static_cast<int>(state.range(0));
  const mat::Csr& global = shared_matrix();
  auto layout = std::make_shared<par::Layout>(
      par::Layout::even(global.rows(), nranks));
  // Note: this host has one core; with >1 rank this measures the overlap
  // machinery (pack/send/recv) rather than parallel speedup.
  for (auto _ : state) {
    par::Fabric::run(nranks, [&](par::Comm& comm) {
      par::ParMatrixOptions opts;
      opts.diag_format = par::DiagFormat::kSell;
      const par::ParMatrix a =
          par::ParMatrix::from_global(global, layout, comm, opts);
      par::ParVector x(layout, comm.rank()), y(layout, comm.rank());
      for (Index i = 0; i < x.local_size(); ++i) x.local()[i] = 1.0;
      for (int rep = 0; rep < 10; ++rep) a.spmv(x, y, comm);
    });
  }
}

}  // namespace

BENCHMARK(BM_CsrSpmv)->Arg(0)->Arg(1)->Arg(2)->Arg(3);
BENCHMARK(BM_SellSpmv)->Arg(0)->Arg(1)->Arg(2)->Arg(3);
BENCHMARK(BM_CsrPermSpmv)->Arg(0)->Arg(3);
BENCHMARK(BM_SellSliceHeight)->Arg(4)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_ParallelSpmv)->Arg(1)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);
