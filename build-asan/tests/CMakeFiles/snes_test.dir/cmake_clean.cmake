file(REMOVE_RECURSE
  "CMakeFiles/snes_test.dir/snes_test.cpp.o"
  "CMakeFiles/snes_test.dir/snes_test.cpp.o.d"
  "snes_test"
  "snes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
