// Unit tests for Kestrel Pulse (kestrel::prof::hwc): the pure counter math
// (multiplexing scaling, wrap-safe deltas, the LLC-miss byte fallback), the
// grouped-fd plumbing exercised with SOFTWARE perf events (available in
// most VMs/containers where the hardware PMU is not), and the full
// profiler -> reduce -> JSON pipeline under the software debug source.
// Hardware-PMU-dependent checks GTEST_SKIP with the probe's reason.

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>

#include "prof/hwc.hpp"
#include "prof/json.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace kestrel {
namespace {

// ---- pure math -----------------------------------------------------------

TEST(HwcMath, ScaleMultiplexedExtrapolatesByEnabledOverRunning) {
  // Group on the PMU half the time: raw counts double.
  EXPECT_EQ(prof::hwc::scale_multiplexed(1000, 200, 100), 2000u);
  // Fully scheduled: raw passes through untouched.
  EXPECT_EQ(prof::hwc::scale_multiplexed(1000, 100, 100), 1000u);
  // running > enabled (clock skew inside the kernel): never scale DOWN.
  EXPECT_EQ(prof::hwc::scale_multiplexed(1000, 100, 120), 1000u);
  // Never scheduled: the honest answer is zero, not a division blowup.
  EXPECT_EQ(prof::hwc::scale_multiplexed(1000, 200, 0), 0u);
}

TEST(HwcMath, ScaleMultiplexedSurvivesLargeCounts) {
  // ~1e13 cycles (hours of uptime) at 1/3 duty cycle: the naive u64
  // raw * enabled product would overflow; the scaled result must not.
  const std::uint64_t raw = 10'000'000'000'000ull;
  const std::uint64_t scaled =
      prof::hwc::scale_multiplexed(raw, 3'000'000'000ull, 1'000'000'000ull);
  EXPECT_NEAR(static_cast<double>(scaled), 3.0e13, 1e7);
}

TEST(HwcMath, WrapDeltaHandlesCounterWrap) {
  EXPECT_EQ(prof::hwc::wrap_delta(100, 250), 150u);
  EXPECT_EQ(prof::hwc::wrap_delta(0, 0), 0u);
  // Counter wrapped its 64-bit range between the snapshots: the unsigned
  // difference is still the true small delta.
  const std::uint64_t near_max = ~std::uint64_t{0} - 5;
  EXPECT_EQ(prof::hwc::wrap_delta(near_max, 10), 16u);
}

TEST(HwcMath, LlcFallbackBytesIsMissesTimesCacheLine) {
  EXPECT_EQ(prof::hwc::kCacheLineBytes, 64u);
  EXPECT_EQ(prof::hwc::llc_fallback_bytes(0), 0u);
  EXPECT_EQ(prof::hwc::llc_fallback_bytes(1000), 64000u);
}

TEST(HwcMath, DeltaIsPerCounterAndRequiresValidEndpoints) {
  prof::hwc::Reading a;
  a.valid = true;
  a.cycles = 100;
  a.instructions = 400;
  a.llc_misses = 7;
  a.dram_bytes = 448;
  prof::hwc::Reading b = a;
  b.cycles = 150;
  b.instructions = 600;
  b.llc_misses = 9;
  b.dram_bytes = 576;

  const prof::hwc::Reading d = prof::hwc::delta(a, b);
  ASSERT_TRUE(d.valid);
  EXPECT_EQ(d.cycles, 50u);
  EXPECT_EQ(d.instructions, 200u);
  EXPECT_EQ(d.llc_misses, 2u);
  EXPECT_EQ(d.dram_bytes, 128u);

  prof::hwc::Reading invalid;  // e.g. the group failed to open mid-span
  EXPECT_FALSE(prof::hwc::delta(invalid, b).valid);
  EXPECT_FALSE(prof::hwc::delta(a, invalid).valid);
}

// ---- capability probe ----------------------------------------------------

TEST(HwcCapability, ProbeIsConsistentAndNeverThrows) {
  const prof::hwc::Capability& cap = prof::hwc::capability();
  // Unavailable hosts must say why (the single structured warning and the
  // JSON hwc block both surface this string).
  if (!cap.counters) EXPECT_FALSE(cap.detail.empty());
  // The probe is cached: a second call returns the same object.
  EXPECT_EQ(&cap, &prof::hwc::capability());
}

TEST(HwcCapability, SourceNamesAreStable) {
  using prof::hwc::Source;
  EXPECT_STREQ(prof::hwc::source_name(Source::kNone), "none");
  EXPECT_STREQ(prof::hwc::source_name(Source::kLlcFallback), "llc-fallback");
  EXPECT_STREQ(prof::hwc::source_name(Source::kUncoreImc), "uncore-imc");
  EXPECT_STREQ(prof::hwc::source_name(Source::kSoftwareDebug),
               "software-debug");
}

// ---- grouped reads with software events ----------------------------------

TEST(HwcGroup, SoftwareGroupDeliversConsistentSnapshots) {
  prof::hwc::Group group;
  const bool opened = group.open(
      {{prof::hwc::kTypeSoftware, prof::hwc::kSwTaskClock},
       {prof::hwc::kTypeSoftware, prof::hwc::kSwPageFaults}});
  if (!opened) {
    GTEST_SKIP() << "software perf events unavailable: " << group.error();
  }

  prof::hwc::Group::Sample s0;
  ASSERT_TRUE(group.sample(&s0));
  ASSERT_EQ(s0.values.size(), 2u);

  // Burn measurable CPU time; task-clock counts in nanoseconds, so even a
  // short spin moves it by thousands of counts.
  volatile double sink = 0.0;
  for (int i = 0; i < 2'000'000; ++i) sink += 1e-9 * i;
  (void)sink;

  prof::hwc::Group::Sample s1;
  ASSERT_TRUE(group.sample(&s1));
  EXPECT_GT(s1.values[0], s0.values[0]);  // task-clock advanced
  EXPECT_GE(s1.time_enabled, s0.time_enabled);
  // Software events are never multiplexed off: running tracks enabled.
  EXPECT_GE(s1.time_running, s0.time_running);
}

TEST(HwcGroup, OpenFailureIsReportedNotThrown) {
  prof::hwc::Group group;
  // type 0xffffff does not exist; the open must fail with a message.
  EXPECT_FALSE(group.open({{0xffffffu, 0}}));
  EXPECT_FALSE(group.valid());
  EXPECT_FALSE(group.error().empty());
  prof::hwc::Group::Sample s;
  EXPECT_FALSE(group.sample(&s));
}

// ---- end-to-end pipeline under the software debug source -----------------

class HwcEnvGuard {
 public:
  HwcEnvGuard() { setenv("KESTREL_HWC_SOFTWARE", "1", 1); }
  ~HwcEnvGuard() {
    unsetenv("KESTREL_HWC_SOFTWARE");
    prof::hwc::set_enabled(false);
  }
};

TEST(HwcPipeline, ProfilerAccumulatesAndExportsMeasuredCounters) {
  if (!prof::hwc::capability().sw_counters) {
    GTEST_SKIP() << "software perf events unavailable: "
                 << prof::hwc::capability().detail;
  }
  const HwcEnvGuard env;
  ASSERT_TRUE(prof::hwc::enable_if_capable());
  EXPECT_EQ(prof::hwc::source(), prof::hwc::Source::kSoftwareDebug);

  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true, /*trace=*/true);

  const int ev = prof::registered_event("hwc_test_pipeline_event");
  {
    prof::ScopedEvent scope(ev, /*flops=*/100, /*bytes=*/4096);
    volatile double sink = 0.0;
    for (int i = 0; i < 2'000'000; ++i) sink += 1e-9 * i;
    (void)sink;
  }

  // Counters accumulated into the (stage, event) cell...
  const prof::EventPerf p = log.perf_in(prof::kMainStage, ev);
  ASSERT_EQ(p.calls, 1u);
  EXPECT_GT(p.cycles, 0u) << "debug source maps task-clock ns to cycles";
  EXPECT_EQ(p.bytes, 4096u) << "modeled bytes stay untouched";

  // ...onto the recorded trace span...
  bool span_found = false;
  for (const prof::TraceSpan& s : log.trace()) {
    if (s.event != ev) continue;
    span_found = true;
    EXPECT_EQ(s.cycles, p.cycles);
  }
  EXPECT_TRUE(span_found);

  // ...and through reduce() into the v2 JSON with the hwc block.
  std::ostringstream os;
  prof::write_json_metrics(os, prof::reduce(log));
  const prof::json::Value doc = prof::json::parse(os.str());
  EXPECT_EQ(doc.find("schema")->string, prof::kMetricsSchema);
  const auto* hwc_block = doc.find("hwc");
  ASSERT_NE(hwc_block, nullptr);
  EXPECT_TRUE(hwc_block->find("available")->boolean);
  EXPECT_EQ(hwc_block->find("source")->string, "software-debug");
  bool row_found = false;
  for (const auto& e : doc.find("events")->array) {
    if (e.find("event")->string != "hwc_test_pipeline_event") continue;
    row_found = true;
    ASSERT_NE(e.find("cycles_total"), nullptr);
    EXPECT_GT(e.find("cycles_total")->number, 0.0);
    ASSERT_NE(e.find("ipc"), nullptr);
  }
  EXPECT_TRUE(row_found);

  // The Pulse table appears in the -log_view report when counters exist.
  std::ostringstream view;
  prof::report(view, prof::reduce(log));
  EXPECT_NE(view.str().find("Kestrel Pulse"), std::string::npos);
}

TEST(HwcPipeline, DisabledMeansInvalidReadingsAndNoCounters) {
  prof::hwc::set_enabled(false);
  EXPECT_FALSE(prof::hwc::read_thread().valid);
  EXPECT_EQ(prof::hwc::source(), prof::hwc::Source::kNone);

  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true);
  const int ev = prof::registered_event("hwc_test_disabled_event");
  {
    prof::ScopedEvent scope(ev);
  }
  const prof::EventPerf p = log.perf_in(prof::kMainStage, ev);
  EXPECT_EQ(p.calls, 1u);
  EXPECT_EQ(p.cycles, 0u);
  EXPECT_EQ(p.hwc_bytes, 0u);
}

}  // namespace
}  // namespace kestrel
