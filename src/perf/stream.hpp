#pragma once
// Measured STREAM benchmark (McCalpin's four kernels) for the host machine
// — the locally measured counterpart of the paper's Figure 4. On the
// paper's KNL the interesting axis is MPI process count; on this host the
// bench reports single-process sustained bandwidth, and the KNL curves are
// produced by perf::modeled_stream_sweep.

#include <cstddef>

namespace kestrel::perf {

struct StreamResult {
  double copy_gbs;
  double scale_gbs;
  double add_gbs;
  double triad_gbs;
};

/// Runs STREAM over three arrays of `n` doubles, best of `repetitions`.
StreamResult run_stream(std::size_t n = 1 << 24, int repetitions = 5);

}  // namespace kestrel::perf
