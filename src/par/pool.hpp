#pragma once
// Kestrel Flock: the per-rank thread pool behind every threaded SpMV.
//
// One pool per fabric-rank thread (see rank_pool), holding a fixed set of
// workers that park on a condition variable between jobs — no spawn cost on
// the hot path, no spinning while the rank is doing scalar work. A job is
// `run(nparts, body)`: the caller participates as thread id 0 and workers
// take ids 1..n-1, each executing the parts with part % nthreads == tid, so
// the mapping from partition to thread is deterministic for a given thread
// count. run() returns only after every part finished (parked-wait
// barrier), which is what lets callers pass stack lambdas capturing live
// kernel views.
//
// Profiler/Pulse correctness: the caller's attached prof::Profiler is
// re-attached on each worker for the duration of the job, so spans and hwc
// counter groups recorded inside a part land in the right per-rank profiler
// (hwc samplers are thread_local and open lazily per worker). The profiler
// itself keeps per-thread running stacks, so concurrent begin/end from pool
// workers neither race nor double-count.
//
// Nesting: pool workers are marked with a thread_local flag and
// rank_pool() hands them a serial (1-thread) pool, so library code that
// reaches a threaded spmv from inside a part degrades to inline execution
// instead of deadlocking or oversubscribing.

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace kestrel::prof {
class Profiler;
}

namespace kestrel::par {

/// Hard ceiling on -threads: partial-reduction scratch in the threaded
/// ABFT/verify paths is stack-sized to this.
inline constexpr int kMaxPoolThreads = 64;

/// The rank's thread count: `-threads N` (Options::global()), else the
/// KESTREL_THREADS environment variable, else 1; clamped to
/// [1, kMaxPoolThreads]. Pool workers always read 1 (see header comment).
int configured_threads();

class ThreadPool {
 public:
  /// Spawns nthreads-1 parked workers (the caller is thread 0); nthreads==1
  /// spawns none and run() is a plain serial loop.
  explicit ThreadPool(int nthreads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int nthreads() const { return nthreads_; }

  /// Executes body(part, tid) for every part in [0, nparts), part p on
  /// thread p % nthreads(). Synchronous: returns after the last part.
  /// Must not be called again from inside a body on the same pool —
  /// rank_pool() gives workers a serial pool, which makes nested library
  /// calls safe; a direct recursive call on the caller thread falls back to
  /// serial execution.
  template <class F>
  void run(int nparts, F&& body) {
    if (nparts <= 0) return;
    if (nthreads_ == 1 || nparts == 1 || in_job_) {
      for (int p = 0; p < nparts; ++p) body(p, 0);
      return;
    }
    using Body = std::remove_reference_t<F>;
    run_impl(nparts,
             [](void* ctx, int part, int tid) {
               (*static_cast<Body*>(ctx))(part, tid);
             },
             &body);
  }

  /// The calling rank-thread's pool, created on first use and rebuilt when
  /// configured_threads() changes (e.g. bench_threads resetting -threads
  /// between sweeps). Pool workers get a serial instance.
  static ThreadPool& rank_pool();

 private:
  using JobFn = void (*)(void* ctx, int part, int tid);

  void run_impl(int nparts, JobFn fn, void* ctx);
  void worker_main(int tid);

  const int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_work_;  ///< workers park here between jobs
  std::condition_variable cv_done_;  ///< caller parks here until pending_==0
  std::uint64_t epoch_ = 0;          ///< bumped per job; workers wake on !=
  int pending_ = 0;                  ///< workers still inside the job
  bool stop_ = false;
  JobFn fn_ = nullptr;
  void* ctx_ = nullptr;
  int nparts_ = 0;
  prof::Profiler* job_prof_ = nullptr;  ///< caller's attachment, per job

  bool in_job_ = false;  ///< caller-thread reentrancy guard
};

}  // namespace kestrel::par
