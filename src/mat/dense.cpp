#include "mat/dense.hpp"

#include <cmath>

#include "base/error.hpp"
#include "mat/csr.hpp"

namespace kestrel::mat {

Dense Dense::from_csr(const Csr& csr) {
  Dense d(csr.rows(), csr.cols());
  for (Index i = 0; i < csr.rows(); ++i) {
    const auto cols = csr.row_cols(i);
    const auto vals = csr.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      d.at(i, cols[k]) = vals[k];
    }
  }
  return d;
}

std::int64_t Dense::nnz() const {
  std::int64_t count = 0;
  for (Scalar v : a_) count += (v != 0.0);
  return count;
}

void Dense::spmv(const Scalar* x, Scalar* y) const {
  for (Index i = 0; i < m_; ++i) {
    const Scalar* row = a_.data() + static_cast<std::size_t>(i) * n_;
    Scalar sum = 0.0;
    for (Index j = 0; j < n_; ++j) sum += row[j] * x[j];
    y[i] = sum;
  }
}

void Dense::get_diagonal(Vector& d) const {
  KESTREL_CHECK(m_ == n_, "get_diagonal requires a square matrix");
  d.resize(m_);
  for (Index i = 0; i < m_; ++i) d[i] = at(i, i);
}

void Dense::abft_col_checksum(Vector& c) const {
  c.resize(n_);
  c.set(0.0);
  for (Index i = 0; i < m_; ++i) {
    const Scalar* row = a_.data() + static_cast<std::size_t>(i) * n_;
    for (Index j = 0; j < n_; ++j) c[j] += row[j];
  }
}

void Dense::lu_factor() {
  KESTREL_CHECK(m_ == n_, "LU requires a square matrix");
  piv_.resize(static_cast<std::size_t>(m_));
  for (Index k = 0; k < m_; ++k) {
    // partial pivoting
    Index p = k;
    Scalar best = std::abs(at(k, k));
    for (Index i = k + 1; i < m_; ++i) {
      const Scalar v = std::abs(at(i, k));
      if (v > best) {
        best = v;
        p = i;
      }
    }
    KESTREL_CHECK(best > 0.0, "LU: matrix is singular");
    piv_[static_cast<std::size_t>(k)] = p;
    if (p != k) {
      for (Index j = 0; j < n_; ++j) std::swap(at(k, j), at(p, j));
    }
    const Scalar pivot = at(k, k);
    for (Index i = k + 1; i < m_; ++i) {
      const Scalar l = at(i, k) / pivot;
      at(i, k) = l;
      for (Index j = k + 1; j < n_; ++j) at(i, j) -= l * at(k, j);
    }
  }
}

void Dense::lu_solve(const Scalar* b, Scalar* x) const {
  KESTREL_CHECK(factored(), "lu_solve requires lu_factor first");
  if (x != b) {
    for (Index i = 0; i < m_; ++i) x[i] = b[i];
  }
  // apply permutation and forward substitution (L has unit diagonal)
  for (Index k = 0; k < m_; ++k) {
    const Index p = piv_[static_cast<std::size_t>(k)];
    if (p != k) std::swap(x[k], x[p]);
    for (Index i = k + 1; i < m_; ++i) x[i] -= at(i, k) * x[k];
  }
  // back substitution
  for (Index i = m_ - 1; i >= 0; --i) {
    Scalar sum = x[i];
    for (Index j = i + 1; j < n_; ++j) sum -= at(i, j) * x[j];
    x[i] = sum / at(i, i);
  }
}

}  // namespace kestrel::mat
