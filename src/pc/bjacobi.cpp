#include "pc/bjacobi.hpp"

#include <cmath>
#include <vector>

#include "base/error.hpp"
#include "mat/csr.hpp"

namespace kestrel::pc {

namespace {

/// In-place Gauss–Jordan inverse of a small dense row-major matrix.
void invert_small(Scalar* a, Index n) {
  std::vector<Scalar> aug(static_cast<std::size_t>(n) * 2 * n, 0.0);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      aug[static_cast<std::size_t>(i) * 2 * n + j] =
          a[static_cast<std::size_t>(i) * n + j];
    }
    aug[static_cast<std::size_t>(i) * 2 * n + n + i] = 1.0;
  }
  for (Index k = 0; k < n; ++k) {
    // partial pivot
    Index p = k;
    for (Index i = k + 1; i < n; ++i) {
      if (std::abs(aug[static_cast<std::size_t>(i) * 2 * n + k]) >
          std::abs(aug[static_cast<std::size_t>(p) * 2 * n + k])) {
        p = i;
      }
    }
    KESTREL_CHECK(aug[static_cast<std::size_t>(p) * 2 * n + k] != 0.0,
                  "bjacobi: singular diagonal block");
    if (p != k) {
      for (Index j = 0; j < 2 * n; ++j) {
        std::swap(aug[static_cast<std::size_t>(k) * 2 * n + j],
                  aug[static_cast<std::size_t>(p) * 2 * n + j]);
      }
    }
    const Scalar piv = aug[static_cast<std::size_t>(k) * 2 * n + k];
    for (Index j = 0; j < 2 * n; ++j) {
      aug[static_cast<std::size_t>(k) * 2 * n + j] /= piv;
    }
    for (Index i = 0; i < n; ++i) {
      if (i == k) continue;
      const Scalar f = aug[static_cast<std::size_t>(i) * 2 * n + k];
      if (f == 0.0) continue;
      for (Index j = 0; j < 2 * n; ++j) {
        aug[static_cast<std::size_t>(i) * 2 * n + j] -=
            f * aug[static_cast<std::size_t>(k) * 2 * n + j];
      }
    }
  }
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      a[static_cast<std::size_t>(i) * n + j] =
          aug[static_cast<std::size_t>(i) * 2 * n + n + j];
    }
  }
}

}  // namespace

BlockJacobi::BlockJacobi(const mat::Csr& a, Index block_size)
    : bs_(block_size) {
  KESTREL_CHECK(bs_ >= 1, "bjacobi: block size must be positive");
  KESTREL_CHECK(a.rows() == a.cols(), "bjacobi: matrix must be square");
  KESTREL_CHECK(a.rows() % bs_ == 0,
                "bjacobi: dimension not divisible by block size");
  nblocks_ = a.rows() / bs_;
  inv_blocks_.resize(static_cast<std::size_t>(nblocks_) * bs_ * bs_);
  inv_blocks_.fill(0.0);
  for (Index ib = 0; ib < nblocks_; ++ib) {
    Scalar* blk =
        inv_blocks_.data() + static_cast<std::size_t>(ib) * bs_ * bs_;
    for (Index r = 0; r < bs_; ++r) {
      for (Index c = 0; c < bs_; ++c) {
        blk[r * bs_ + c] = a.at(ib * bs_ + r, ib * bs_ + c);
      }
    }
    invert_small(blk, bs_);
  }
}

void BlockJacobi::apply(const Vector& r, Vector& z) const {
  KESTREL_CHECK(r.size() == nblocks_ * bs_, "bjacobi: size mismatch");
  z.resize(r.size());
  for (Index ib = 0; ib < nblocks_; ++ib) {
    const Scalar* blk =
        inv_blocks_.data() + static_cast<std::size_t>(ib) * bs_ * bs_;
    for (Index i = 0; i < bs_; ++i) {
      Scalar sum = 0.0;
      for (Index j = 0; j < bs_; ++j) {
        sum += blk[i * bs_ + j] * r[ib * bs_ + j];
      }
      z[ib * bs_ + i] = sum;
    }
  }
}

}  // namespace kestrel::pc
