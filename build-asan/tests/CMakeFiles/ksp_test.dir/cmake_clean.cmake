file(REMOVE_RECURSE
  "CMakeFiles/ksp_test.dir/ksp_test.cpp.o"
  "CMakeFiles/ksp_test.dir/ksp_test.cpp.o.d"
  "ksp_test"
  "ksp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ksp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
