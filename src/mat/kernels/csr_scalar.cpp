// Scalar (compiler-autovectorized) CSR SpMV — the paper's "CSR baseline".
// Built without any -m<isa> flags so it reflects the compiler's default
// code generation, exactly like PETSc's stock MatMult_SeqAIJ.

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat::kernels {

namespace {

void csr_spmv_scalar(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    const Index end = a.rowptr[i + 1];
    for (Index k = a.rowptr[i]; k < end; ++k) {
      sum += a.val[k] * x[a.colidx[k]];
    }
    y[i] = sum;
  }
}

void csr_spmv_add_rows_scalar(const CsrView& a, const Index* rows,
                              const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    const Index end = a.rowptr[i + 1];
    for (Index k = a.rowptr[i]; k < end; ++k) {
      sum += a.val[k] * x[a.colidx[k]];
    }
    y[rows[i]] += sum;
  }
}

}  // namespace

void register_csr_scalar() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kScalar, csr_spmv_scalar);
  KESTREL_REGISTER_KERNEL(kCsrSpmvAddRows, kScalar, csr_spmv_add_rows_scalar);
}

}  // namespace kestrel::mat::kernels
