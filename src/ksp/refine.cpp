#include "ksp/refine.hpp"

#include <algorithm>
#include <cmath>

#include "aegis/abft.hpp"
#include "base/error.hpp"
#include "ksp/context.hpp"

namespace kestrel::ksp {

RefineResult refine_solve(const mat::Matrix& a, const Vector& b, Vector& x,
                          const RefineSettings& settings, const pc::Pc* pc) {
  KESTREL_CHECK(a.rows() == a.cols(), "refine_solve requires a square matrix");
  KESTREL_CHECK(b.size() == a.rows(), "refine_solve: rhs size mismatch");
  const Index n = a.rows();
  x.resize(n);

  Vector colsum;
  if (settings.abft_guard) a.abft_col_checksum(colsum);

  SeqContext ctx(a, pc);
  auto inner = make_solver(settings.inner_type, settings.inner);

  Vector ax(n);
  Vector r(n);
  Vector d(n);

  RefineResult out;
  const Scalar bnorm = b.norm2();
  const Scalar stop = std::max(settings.rtol * bnorm, settings.atol);

  for (int outer = 0;; ++outer) {
    // Wide residual: the fat double streams define what "solved" means.
    a.spmv_wide(x.data(), ax.data());
    if (settings.abft_guard) {
      Scalar drift = 0.0;
      if (!aegis::AbftMatrix::verify(colsum, x.data(), ax.data(), n,
                                     settings.abft_tol, &drift)) {
        ++out.abft_trips;
      }
    }
    for (Index i = 0; i < n; ++i) r[i] = b[i] - ax[i];
    out.residual_norm = r.norm2();
    if (settings.monitor) settings.monitor(outer, out.residual_norm);
    if (out.residual_norm <= stop) {
      out.converged = true;
      break;
    }
    if (outer >= settings.max_outer) break;

    // Correction solve on the (slim) operator; a loose inner tolerance is
    // enough — each pass only has to gain settings.inner.rtol digits.
    d.set(0.0);
    const SolveResult sr = inner->solve(ctx, r, d);
    out.inner_iterations += sr.iterations;
    out.outer_iterations = outer + 1;
    if (sr.iterations == 0 && !sr.converged) break;  // inner made no progress
    x.axpy(1.0, d);
  }
  return out;
}

}  // namespace kestrel::ksp
