// Grid2D indexing, coarsening and interpolation tests.

#include <gtest/gtest.h>

#include "app/grid2d.hpp"
#include "app/laplacian.hpp"
#include "base/error.hpp"

namespace kestrel::app {
namespace {

TEST(Grid2D, IndexingInterleavesDof) {
  const Grid2D g(4, 3, 2);
  EXPECT_EQ(g.size(), 24);
  EXPECT_EQ(g.idx(0, 0, 0), 0);
  EXPECT_EQ(g.idx(0, 0, 1), 1);
  EXPECT_EQ(g.idx(1, 0, 0), 2);
  EXPECT_EQ(g.idx(0, 1, 0), 8);
}

TEST(Grid2D, PeriodicWrapping) {
  const Grid2D g(5, 4);
  EXPECT_EQ(g.idx(-1, 0), g.idx(4, 0));
  EXPECT_EQ(g.idx(5, 0), g.idx(0, 0));
  EXPECT_EQ(g.idx(0, -1), g.idx(0, 3));
  EXPECT_EQ(g.idx(0, 4), g.idx(0, 0));
  EXPECT_EQ(g.idx(-6, -5), g.idx(4, 3));
}

TEST(Grid2D, SpacingFromDomain) {
  const Grid2D g(10, 20, 1, 2.5, 5.0);
  EXPECT_DOUBLE_EQ(g.hx(), 0.25);
  EXPECT_DOUBLE_EQ(g.hy(), 0.25);
  EXPECT_DOUBLE_EQ(g.x(4), 1.0);
}

TEST(Grid2D, CoarsenHalvesEachDimension) {
  const Grid2D g(16, 8, 2);
  const Grid2D c = g.coarsen();
  EXPECT_EQ(c.nx(), 8);
  EXPECT_EQ(c.ny(), 4);
  EXPECT_EQ(c.dof(), 2);
  EXPECT_DOUBLE_EQ(c.hx(), 2.0 * g.hx());

  const Grid2D odd(5, 4);
  EXPECT_FALSE(odd.can_coarsen());
  EXPECT_THROW(odd.coarsen(), Error);
}

TEST(Grid2D, InterpolationRowsSumToOne) {
  // Bilinear interpolation is a partition of unity on a periodic grid.
  const Grid2D g(8, 8, 2);
  const mat::Csr p = g.interpolation();
  EXPECT_EQ(p.rows(), g.size());
  EXPECT_EQ(p.cols(), g.coarsen().size());
  for (Index i = 0; i < p.rows(); ++i) {
    Scalar sum = 0.0;
    for (Scalar v : p.row_vals(i)) sum += v;
    EXPECT_NEAR(sum, 1.0, 1e-14);
  }
}

TEST(Grid2D, InterpolationIsInjectionAtCoarsePoints) {
  const Grid2D g(8, 8);
  const Grid2D c = g.coarsen();
  const mat::Csr p = g.interpolation();
  for (Index cj = 0; cj < c.ny(); ++cj) {
    for (Index ci = 0; ci < c.nx(); ++ci) {
      const Index fine_row = g.idx(2 * ci, 2 * cj);
      EXPECT_EQ(p.row_nnz(fine_row), 1);
      EXPECT_DOUBLE_EQ(p.at(fine_row, c.idx(ci, cj)), 1.0);
    }
  }
}

TEST(Grid2D, InterpolationPreservesDofSeparation) {
  // No interpolation weight may couple different components.
  const Grid2D g(4, 4, 2);
  const Grid2D c = g.coarsen();
  const mat::Csr p = g.interpolation();
  for (Index j = 0; j < g.ny(); ++j) {
    for (Index i = 0; i < g.nx(); ++i) {
      for (Index comp = 0; comp < 2; ++comp) {
        for (Index col : p.row_cols(g.idx(i, j, comp))) {
          EXPECT_EQ(col % 2, comp);
        }
      }
    }
  }
  (void)c;
}

TEST(Grid2D, RejectsOversizedGrids) {
  // 2^31 unknowns exceed 32-bit indexing (paper: 16384^2 x 2 is near the
  // limit; 46341^2 with 1 dof is over it).
  EXPECT_THROW(Grid2D(46341, 46341), Error);
}

TEST(LaplacianDirichlet, StencilStructure) {
  const mat::Csr a = laplacian_dirichlet(3, 3);
  EXPECT_EQ(a.rows(), 9);
  // center node has 5 entries, corner has 3
  EXPECT_EQ(a.row_nnz(4), 5);
  EXPECT_EQ(a.row_nnz(0), 3);
  // row sums near the boundary are positive (Dirichlet elimination)
  Scalar sum = 0.0;
  for (Scalar v : a.row_vals(0)) sum += v;
  EXPECT_GT(sum, 0.0);
}

TEST(LaplacianPeriodic, RowsSumToZero) {
  const Grid2D g(6, 6, 2);
  const mat::Csr a = laplacian_periodic(g, 0, 3.0);
  for (Index i = 0; i < a.rows(); ++i) {
    Scalar sum = 0.0;
    for (Scalar v : a.row_vals(i)) sum += v;
    EXPECT_NEAR(sum, 0.0, 1e-12);
  }
  // component 1 rows are untouched
  EXPECT_EQ(a.row_nnz(g.idx(0, 0, 1)), 0);
}

TEST(LaplacianPeriodic, ConstantVectorInKernel) {
  const Grid2D g(8, 8);
  const mat::Csr a = laplacian_periodic(g, 0, 1.0);
  Vector ones(a.rows(), 1.0), y;
  a.spmv(ones, y);
  EXPECT_NEAR(y.norm_inf(), 0.0, 1e-12);
}

}  // namespace
}  // namespace kestrel::app
