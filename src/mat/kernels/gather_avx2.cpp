// AVX2 gather-pack: out[i] = x[idx[i]] via vgatherdpd, 4 doubles per step
// (Kestrel Slipstream ghost pack). Pack indices are arbitrary (the ghost
// column lists the plan exchange produces), so a hardware gather is the
// whole kernel: load 4 int32 indices, gather 4 doubles, store contiguously.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=gather isa=avx2

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: gather_pack_avx2
// argus-param: x : in
// argus-param: idx : in extent n elem [0, len(x))
// argus-param: n : int
// argus-param: out : out extent n
// argus-traffic: none
void gather_pack_avx2(const Scalar* x, const Index* idx, Index n,
                      Scalar* out) {
  Index i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i vidx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + i));
    const __m256d vals = _mm256_i32gather_pd(x, vidx, sizeof(Scalar));
    _mm256_storeu_pd(out + i, vals);
  }
  for (; i < n; ++i) {
    out[i] = x[idx[i]];
  }
}

}  // namespace

void register_gather_avx2() {
  KESTREL_REGISTER_KERNEL(kGatherPack, kAvx2, gather_pack_avx2);
}

}  // namespace kestrel::mat::kernels
