// AVX2 CSR SpMV: Algorithm 1 at 256-bit width — 4 doubles per iteration,
// hardware gather (_mm256_i32gather_pd) and FMA. Twice as many instructions
// as the AVX-512 version for the same work (paper section 5.5).

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=avx2

namespace kestrel::mat::kernels {

namespace {

inline Scalar hsum256(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d sum2 = _mm_add_pd(lo, hi);
  const __m128d swapped = _mm_unpackhi_pd(sum2, sum2);
  return _mm_cvtsd_f64(_mm_add_sd(sum2, swapped));
}

inline Scalar row_dot_avx2(const Scalar* val, const Index* colidx, Index len,
                           const Scalar* x) {
  __m256d acc = _mm256_setzero_pd();
  Index k = 0;
  for (; k + 4 <= len; k += 4) {
    const __m256d vals = _mm256_loadu_pd(val + k);
    const __m128i idx =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(colidx + k));
    const __m256d vx = _mm256_i32gather_pd(x, idx, 8);
    acc = _mm256_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = hsum256(acc);
  for (; k < len; ++k) sum += val[k] * x[colidx[k]];
  return sum;
}

// argus-kernel: csr_spmv_avx2
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr
void csr_spmv_avx2(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[i] = row_dot_avx2(a.val + begin, a.colidx + begin,
                        a.rowptr[i + 1] - begin, x);
  }
}

// argus-kernel: csr_spmv_add_rows_avx2
// argus-param: a : view CsrView
// argus-param: rows : in extent m elem [0, len(y))
// argus-param: x : in extent n
// argus-param: y : out
// argus-traffic: none
void csr_spmv_add_rows_avx2(const CsrView& a, const Index* rows,
                            const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[rows[i]] += row_dot_avx2(a.val + begin, a.colidx + begin,
                               a.rowptr[i + 1] - begin, x);
  }
}

}  // namespace

void register_csr_avx2() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kAvx2, csr_spmv_avx2);
  KESTREL_REGISTER_KERNEL(kCsrSpmvAddRows, kAvx2, csr_spmv_add_rows_avx2);
}

}  // namespace kestrel::mat::kernels
