// The central correctness sweep: every format x every ISA tier the CPU
// supports x a family of adversarial sparsity patterns, all checked against
// a dense reference product. This is what certifies that the AVX-512
// Algorithm 1/2 kernels (and their AVX/AVX2 ports) compute exactly the
// same SpMV as the scalar baseline.

#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "mat/bcsr.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "simd/dispatch.hpp"
#include "simd/isa.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

using testing::dense_spmv;
using testing::random_x;

struct Pattern {
  std::string name;
  std::function<Csr()> make;
};

std::vector<Pattern> patterns() {
  return {
      {"banded5", [] { return testing::banded(97, {-3, -1, 1, 3}); }},
      {"banded_wide", [] { return testing::banded(64, {-8, -4, 4, 8}); }},
      {"uniform4", [] { return testing::uniform_random(80, 80, 4); }},
      {"uniform_rect", [] { return testing::uniform_random(50, 90, 6); }},
      {"power_law", [] { return testing::power_law(100); }},
      {"empty_rows", [] { return testing::with_empty_rows(60); }},
      {"dense_row", [] { return testing::with_dense_row(40); }},
      {"single_col", [] { return testing::single_column(40); }},
      {"last_row_col", [] { return testing::last_row_only_column(37); }},
      {"straddle", [] { return testing::straddling_boundaries(50); }},
      {"tiny", [] { return testing::banded(3, {-1, 1}); }},
      {"single_row",
       [] {
         Coo coo(1, 13);
         for (Index j = 0; j < 13; j += 2) coo.add(0, j, j + 1.0);
         return coo.to_csr();
       }},
      {"row_len_sweep",
       [] {
         // rows of every length 0..16: exercises all remainder paths of
         // Algorithm 1 (len < 2, masked 3..7, full multiples of 8, mixed)
         Coo coo(17, 17);
         for (Index i = 0; i < 17; ++i) {
           for (Index j = 0; j < i; ++j) coo.add(i, j, 0.5 + i + j);
         }
         return coo.to_csr();
       }},
  };
}

std::vector<simd::IsaTier> supported_tiers() {
  std::vector<simd::IsaTier> tiers;
  for (int t = 0; t <= static_cast<int>(simd::detect_best_tier()); ++t) {
    tiers.push_back(static_cast<simd::IsaTier>(t));
  }
  return tiers;
}

void expect_matches_reference(const Matrix& m, const Csr& csr,
                              const std::string& context) {
  const auto x = random_x(csr.cols(), 123);
  const auto expect = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), -7.0);  // poison to catch unwritten rows
  m.spmv(xv, yv);
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11)
        << context << " row " << i;
  }
}

class SpmvSweep
    : public ::testing::TestWithParam<std::tuple<int, simd::IsaTier>> {};

TEST_P(SpmvSweep, CsrMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  csr.set_tier(tier);
  expect_matches_reference(csr, csr, "csr");
}

TEST_P(SpmvSweep, SellC8MatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  Sell sell(csr);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-c8");
}

TEST_P(SpmvSweep, SellC16MatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.slice_height = 16;
  Sell sell(csr, opts);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-c16");
}

TEST_P(SpmvSweep, SellC4MatchesDense) {
  // c = 4 cannot use the AVX-512 kernel; exercises the downgrade path.
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.slice_height = 4;
  Sell sell(csr, opts);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-c4");
}

TEST_P(SpmvSweep, SellSigmaSortedMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.sigma = 24;
  Sell sell(csr, opts);
  sell.set_tier(tier);
  expect_matches_reference(sell, csr, "sell-sigma");
}

TEST_P(SpmvSweep, SellBitmaskMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  SellOptions opts;
  opts.build_bitmask = true;
  Sell sell(csr, opts);
  sell.set_tier(tier);

  const auto x = random_x(csr.cols(), 123);
  const auto expect = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), -7.0);
  sell.spmv_bitmask(xv.data(), yv.data());
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST_P(SpmvSweep, SellPrefetchMatchesDense) {
  // The unrolled + software-prefetch variant (section 5.5 ablation), both
  // unsorted and with sigma-sorted slices — previously only benches ran it.
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  for (Index sigma : {Index(1), Index(24)}) {
    SellOptions opts;
    opts.sigma = sigma;
    Sell sell(csr, opts);
    sell.set_tier(tier);
    const auto x = random_x(csr.cols(), 123);
    const auto expect = dense_spmv(csr, x);
    Vector xv(csr.cols());
    for (Index i = 0; i < csr.cols(); ++i) {
      xv[i] = x[static_cast<std::size_t>(i)];
    }
    Vector yv(csr.rows(), -7.0);
    sell.spmv_prefetch(xv.data(), yv.data());
    for (Index i = 0; i < csr.rows(); ++i) {
      EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11)
          << "sell-prefetch sigma " << sigma << " row " << i;
    }
  }
}

TEST_P(SpmvSweep, TalonMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  Talon talon(csr);
  talon.set_tier(tier);
  expect_matches_reference(talon, csr, "talon");
}

TEST_P(SpmvSweep, TalonForcedShapesMatchDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  for (Index r : {Index(1), Index(2), Index(4)}) {
    TalonOptions opts;
    opts.force_r = r;
    Talon talon(csr, opts);
    talon.set_tier(tier);
    expect_matches_reference(talon, csr,
                             "talon-r" + std::to_string(r));
  }
}

TEST_P(SpmvSweep, TalonAddAccumulates) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  Talon talon(csr);
  talon.set_tier(tier);
  const auto x = random_x(csr.cols(), 5);
  const auto ax = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), 1.5);
  talon.spmv_add(xv.data(), yv.data());
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], 1.5 + ax[static_cast<std::size_t>(i)], 1e-11);
  }
}

TEST_P(SpmvSweep, CsrPermMatchesDense) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  CsrPerm perm{Csr(csr)};
  perm.set_tier(tier);
  expect_matches_reference(perm, csr, "csrperm");
}

TEST_P(SpmvSweep, SellAddAccumulates) {
  const auto [pat_idx, tier] = GetParam();
  const Csr csr = patterns()[static_cast<std::size_t>(pat_idx)].make();
  Sell sell(csr);
  sell.set_tier(tier);
  const auto x = random_x(csr.cols(), 5);
  const auto ax = dense_spmv(csr, x);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), 1.5);
  sell.spmv_add(xv.data(), yv.data());
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], 1.5 + ax[static_cast<std::size_t>(i)], 1e-11);
  }
}

std::vector<std::tuple<int, simd::IsaTier>> sweep_params() {
  std::vector<std::tuple<int, simd::IsaTier>> params;
  const int npat = static_cast<int>(patterns().size());
  for (int p = 0; p < npat; ++p) {
    for (simd::IsaTier t : supported_tiers()) params.emplace_back(p, t);
  }
  return params;
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<int, simd::IsaTier>>& info) {
  const auto [p, t] = info.param;
  return patterns()[static_cast<std::size_t>(p)].name + "_" +
         simd::tier_name(t);
}

INSTANTIATE_TEST_SUITE_P(AllPatternsAllTiers, SpmvSweep,
                         ::testing::ValuesIn(sweep_params()), sweep_name);

TEST(SpmvBcsr, MatchesDenseOnBlockMatrices) {
  // Build a block-structured matrix (2x2 blocks) and compare BCSR SpMV.
  for (Index nb : {3, 8, 17}) {
    Coo coo(nb * 2, nb * 2);
    Rng rng(21);
    for (Index ib = 0; ib < nb; ++ib) {
      for (Index jb : {ib, (ib + 1) % nb}) {
        for (Index r = 0; r < 2; ++r) {
          for (Index c = 0; c < 2; ++c) {
            coo.add(ib * 2 + r, jb * 2 + c, rng.uniform(-1.0, 1.0));
          }
        }
      }
    }
    const Csr csr = coo.to_csr();
    const Bcsr bcsr(csr, 2);
    EXPECT_EQ(bcsr.block_size(), 2);
    expect_matches_reference(bcsr, csr, "bcsr2");
  }
}

// ===== Differential oracle sweep over the kernel registration table =====
//
// The parameterized sweep above certifies the formats against a dense
// reference through the Matrix::spmv dispatch path. This battery goes one
// level lower: it iterates the registration table itself (every
// KESTREL_KERNEL_TABLE cell) and calls each registered ISA kernel through
// its raw function pointer, comparing against the scalar kernel of the
// same op — the differential oracle. Matrices are randomized and include
// empty rows, an all-empty matrix, a single row, and every tail-remainder
// width 1..8 so each kernel's masked/remainder path is exercised.

using simd::IsaTier;
using simd::Op;

constexpr double kOracleTol = 1e-11;

struct NamedCsr {
  std::string name;
  Csr csr;
};

std::vector<NamedCsr> oracle_csrs() {
  std::vector<NamedCsr> out;
  // Every row exactly w entries: the vector kernels' remainder handling
  // for widths below / straddling one ZMM register (Algorithm 1 masks).
  for (Index w = 1; w <= 8; ++w) {
    Coo coo(13, 32);
    Rng rng(static_cast<std::uint64_t>(100 + w));
    for (Index i = 0; i < 13; ++i) {
      for (Index k = 0; k < w; ++k) {
        coo.add(i, rng.next_index(32), rng.uniform(-2.0, 2.0));
      }
    }
    out.push_back({"tail_w" + std::to_string(w), coo.to_csr()});
  }
  out.push_back({"empty_rows", testing::with_empty_rows(48)});
  out.push_back({"uniform", testing::uniform_random(40, 40, 5)});
  out.push_back({"power_law", testing::power_law(64)});
  out.push_back({"single_col", testing::single_column(40)});
  out.push_back({"last_row_col", testing::last_row_only_column(37)});
  out.push_back({"straddle", testing::straddling_boundaries(50)});
  {
    Coo coo(1, 13);
    for (Index j = 0; j < 13; j += 2) coo.add(0, j, j + 1.0);
    out.push_back({"single_row", coo.to_csr()});
  }
  {
    Coo coo(7, 7);  // no entries at all
    out.push_back({"all_empty", coo.to_csr()});
  }
  return out;
}

/// ISA tiers above scalar that this CPU can actually execute.
std::vector<IsaTier> oracle_tiers() {
  std::vector<IsaTier> tiers;
  for (int t = static_cast<int>(IsaTier::kScalar) + 1;
       t <= static_cast<int>(simd::detect_best_tier()); ++t) {
    tiers.push_back(static_cast<IsaTier>(t));
  }
  return tiers;
}

void expect_same(const std::vector<Scalar>& ref, const std::vector<Scalar>& got,
                 const std::string& context) {
  ASSERT_EQ(ref.size(), got.size()) << context;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_NEAR(got[i], ref[i], kOracleTol) << context << " index " << i;
  }
}

TEST(KernelOracle, EveryOpHasAScalarCounterpart) {
  // The lint enforces this statically per table cell; this is the runtime
  // proof that registration actually happened for each op.
  for (int op = 0; op < static_cast<int>(Op::kOpCount); ++op) {
    EXPECT_TRUE(simd::has_exact(static_cast<Op>(op), IsaTier::kScalar))
        << "op " << op << " has no scalar kernel registered";
  }
}

TEST(KernelOracle, CsrSpmvMatchesScalar) {
  const auto scalar =
      simd::lookup_as<simd::CsrSpmvFn>(Op::kCsrSpmv, IsaTier::kScalar);
  for (IsaTier tier : oracle_tiers()) {
    if (!simd::has_exact(Op::kCsrSpmv, tier)) continue;
    const auto fn = simd::lookup_as<simd::CsrSpmvFn>(Op::kCsrSpmv, tier);
    for (const auto& [name, csr] : oracle_csrs()) {
      const auto x = random_x(csr.cols(), 42);
      std::vector<Scalar> ref(static_cast<std::size_t>(csr.rows()), -7.0);
      std::vector<Scalar> got(ref);
      scalar(csr.view(), x.data(), ref.data());
      fn(csr.view(), x.data(), got.data());
      expect_same(ref, got,
                  "csr_spmv/" + std::string(simd::tier_name(tier)) + "/" +
                      name);
    }
  }
}

TEST(KernelOracle, CsrSpmvAddRowsMatchesScalar) {
  // The compressed off-diagonal path: the kernel scatters row i of the
  // compressed block into y[rows[i]]. Use a stride-2 scatter so a bad
  // kernel writing contiguously fails immediately.
  const auto scalar = simd::lookup_as<simd::CsrSpmvAddRowsFn>(
      Op::kCsrSpmvAddRows, IsaTier::kScalar);
  for (IsaTier tier : oracle_tiers()) {
    if (!simd::has_exact(Op::kCsrSpmvAddRows, tier)) continue;
    const auto fn =
        simd::lookup_as<simd::CsrSpmvAddRowsFn>(Op::kCsrSpmvAddRows, tier);
    for (const auto& [name, csr] : oracle_csrs()) {
      const auto x = random_x(csr.cols(), 43);
      std::vector<Index> rows(static_cast<std::size_t>(csr.rows()));
      for (std::size_t i = 0; i < rows.size(); ++i) {
        rows[i] = static_cast<Index>(2 * i);
      }
      std::vector<Scalar> ref(2 * rows.size() + 1, 0.25);
      std::vector<Scalar> got(ref);
      scalar(csr.view(), rows.data(), x.data(), ref.data());
      fn(csr.view(), rows.data(), x.data(), got.data());
      expect_same(ref, got,
                  "csr_spmv_add_rows/" +
                      std::string(simd::tier_name(tier)) + "/" + name);
    }
  }
}

TEST(KernelOracle, SellOpsMatchScalar) {
  // All four SELL table ops, at both slice heights the vector kernels
  // accept (c = 8 fills one ZMM; c = 16 exercises the multi-vector loop).
  // The bitmask variant gets a matrix built with the ESB bit array; the
  // prefetch variant is specified for c = 8 only.
  struct SellOp {
    Op op;
    bool needs_bitmask;
    bool c8_only;
    bool add;  ///< kernel accumulates into y
    const char* label;
  };
  const SellOp ops[] = {
      {Op::kSellSpmv, false, false, false, "sell_spmv"},
      {Op::kSellSpmvAdd, false, false, true, "sell_spmv_add"},
      {Op::kSellSpmvBitmask, true, false, false, "sell_spmv_bitmask"},
      {Op::kSellSpmvPrefetch, false, true, false, "sell_spmv_prefetch"},
  };
  for (const SellOp& sop : ops) {
    const auto scalar =
        simd::lookup_as<simd::SellSpmvFn>(sop.op, IsaTier::kScalar);
    for (IsaTier tier : oracle_tiers()) {
      if (!simd::has_exact(sop.op, tier)) continue;
      const auto fn = simd::lookup_as<simd::SellSpmvFn>(sop.op, tier);
      for (Index c : {Index(8), Index(16)}) {
        if (sop.c8_only && c != 8) continue;
        for (const auto& [name, csr] : oracle_csrs()) {
          SellOptions opts;
          opts.slice_height = c;
          opts.build_bitmask = sop.needs_bitmask;
          const Sell sell(csr, opts);
          const auto x = random_x(csr.cols(), 44);
          const Scalar fill = sop.add ? 0.75 : -7.0;
          std::vector<Scalar> ref(static_cast<std::size_t>(csr.rows()),
                                  fill);
          std::vector<Scalar> got(ref);
          scalar(sell.view(), x.data(), ref.data());
          fn(sell.view(), x.data(), got.data());
          expect_same(ref, got,
                      std::string(sop.label) + "/c" + std::to_string(c) +
                          "/" + simd::tier_name(tier) + "/" + name);
        }
      }
    }
  }
}

TEST(KernelOracle, SellSigmaSortedOpsMatchScalar) {
  // sigma > 1 sorted slices at the raw-kernel level: both the scalar
  // oracle and the vector kernel operate on the SAME sorted view, so the
  // comparison is tier-differential (the class-level fixup is tested by
  // the SpmvSweep above). Previously only benches built sorted views.
  const Op ops[] = {Op::kSellSpmv, Op::kSellSpmvPrefetch};
  for (const Op op : ops) {
    const auto scalar = simd::lookup_as<simd::SellSpmvFn>(op, IsaTier::kScalar);
    for (IsaTier tier : oracle_tiers()) {
      if (!simd::has_exact(op, tier)) continue;
      const auto fn = simd::lookup_as<simd::SellSpmvFn>(op, tier);
      for (Index sigma : {Index(4), Index(32)}) {
        for (const auto& [name, csr] : oracle_csrs()) {
          SellOptions opts;
          opts.sigma = sigma;
          const Sell sell(csr, opts);
          const auto x = random_x(csr.cols(), 47);
          std::vector<Scalar> ref(static_cast<std::size_t>(csr.rows()), -7.0);
          std::vector<Scalar> got(ref);
          scalar(sell.view(), x.data(), ref.data());
          fn(sell.view(), x.data(), got.data());
          expect_same(ref, got,
                      "sell_sigma" + std::to_string(sigma) + "/" +
                          simd::tier_name(tier) + "/" + name);
        }
      }
    }
  }
}

TEST(KernelOracle, TalonOpsMatchScalar) {
  // Both Talon ops, every vector tier, every block shape the inspector can
  // emit (auto plus forced r = 1/2/4), over the full oracle matrix family.
  struct TalonOp {
    Op op;
    bool add;
    const char* label;
  };
  const TalonOp ops[] = {
      {Op::kTalonSpmv, false, "talon_spmv"},
      {Op::kTalonSpmvAdd, true, "talon_spmv_add"},
  };
  for (const TalonOp& top : ops) {
    const auto scalar =
        simd::lookup_as<simd::TalonSpmvFn>(top.op, IsaTier::kScalar);
    for (IsaTier tier : oracle_tiers()) {
      if (!simd::has_exact(top.op, tier)) continue;
      const auto fn = simd::lookup_as<simd::TalonSpmvFn>(top.op, tier);
      for (Index force_r : {Index(0), Index(1), Index(2), Index(4)}) {
        for (const auto& [name, csr] : oracle_csrs()) {
          TalonOptions opts;
          opts.force_r = force_r;
          const Talon talon(csr, opts);
          const auto x = random_x(csr.cols(), 48);
          const Scalar fill = top.add ? 0.75 : -7.0;
          std::vector<Scalar> ref(static_cast<std::size_t>(csr.rows()),
                                  fill);
          std::vector<Scalar> got(ref);
          scalar(talon.view(), x.data(), ref.data());
          fn(talon.view(), x.data(), got.data());
          expect_same(ref, got,
                      std::string(top.label) + "/r" +
                          std::to_string(force_r) + "/" +
                          simd::tier_name(tier) + "/" + name);
        }
      }
    }
  }
}

TEST(KernelOracle, EveryFormatMatchesOracleOnAdversarialPatterns) {
  // Every registered format through its Matrix::spmv path, on the
  // adversarial generator family, against the CSR scalar oracle (the raw
  // scalar CSR kernel — not dense_spmv — so this is a true differential
  // test of format conversion + dispatch end to end).
  const auto oracle =
      simd::lookup_as<simd::CsrSpmvFn>(Op::kCsrSpmv, IsaTier::kScalar);
  const NamedCsr adversarial[] = {
      {"empty_rows", testing::with_empty_rows(60)},
      {"dense_row", testing::with_dense_row(40)},
      {"single_col", testing::single_column(40)},
      {"last_row_col", testing::last_row_only_column(37)},
      {"straddle", testing::straddling_boundaries(50)},
  };
  for (const auto& [name, csr] : adversarial) {
    const auto x = random_x(csr.cols(), 49);
    std::vector<Scalar> ref(static_cast<std::size_t>(csr.rows()), 0.0);
    oracle(csr.view(), x.data(), ref.data());

    std::vector<std::pair<std::string, std::shared_ptr<Matrix>>> formats;
    formats.emplace_back("csr", std::make_shared<Csr>(csr));
    formats.emplace_back("csrperm", std::make_shared<CsrPerm>(Csr(csr)));
    formats.emplace_back("sell_c8", std::make_shared<Sell>(csr));
    {
      SellOptions opts;
      opts.slice_height = 4;
      formats.emplace_back("sell_c4", std::make_shared<Sell>(csr, opts));
    }
    if (csr.rows() == csr.cols()) {
      formats.emplace_back("bcsr_bs1", std::make_shared<Bcsr>(csr, 1));
    }
    formats.emplace_back("talon", std::make_shared<Talon>(csr));
    for (simd::IsaTier tier : supported_tiers()) {
      for (const auto& [fmt_name, matrix] : formats) {
        matrix->set_tier(tier);
        std::vector<Scalar> got(static_cast<std::size_t>(csr.rows()), -7.0);
        matrix->spmv(x.data(), got.data());
        expect_same(ref, got,
                    fmt_name + "/" + simd::tier_name(tier) + "/" + name);
      }
    }
  }
}

TEST(KernelOracle, CsrPermSpmvMatchesScalar) {
  const auto scalar =
      simd::lookup_as<simd::CsrPermSpmvFn>(Op::kCsrPermSpmv, IsaTier::kScalar);
  for (IsaTier tier : oracle_tiers()) {
    if (!simd::has_exact(Op::kCsrPermSpmv, tier)) continue;
    const auto fn =
        simd::lookup_as<simd::CsrPermSpmvFn>(Op::kCsrPermSpmv, tier);
    for (const auto& [name, csr] : oracle_csrs()) {
      const CsrPerm perm{Csr(csr)};
      const auto x = random_x(csr.cols(), 45);
      std::vector<Scalar> ref(static_cast<std::size_t>(csr.rows()), -7.0);
      std::vector<Scalar> got(ref);
      scalar(perm.view(), x.data(), ref.data());
      fn(perm.view(), x.data(), got.data());
      expect_same(ref, got,
                  "csr_perm_spmv/" + std::string(simd::tier_name(tier)) +
                      "/" + name);
    }
  }
}

TEST(KernelOracle, BcsrSpmvMatchesScalar) {
  // Dimensions divisible by every block size tested; includes a band of
  // empty block rows.
  const auto scalar =
      simd::lookup_as<simd::BcsrSpmvFn>(Op::kBcsrSpmv, IsaTier::kScalar);
  for (IsaTier tier : oracle_tiers()) {
    if (!simd::has_exact(Op::kBcsrSpmv, tier)) continue;
    const auto fn = simd::lookup_as<simd::BcsrSpmvFn>(Op::kBcsrSpmv, tier);
    for (Index bs : {1, 2, 3, 4}) {
      const Index n = 24;
      Coo coo(n, n);
      Rng rng(static_cast<std::uint64_t>(55 + bs));
      for (Index i = 0; i < n; ++i) {
        if (i >= 8 && i < 12) continue;  // empty rows 8..11
        coo.add(i, i, 3.0 + rng.next_double());
        coo.add(i, (i + bs) % n, rng.uniform(-1.0, 1.0));
        coo.add(i, rng.next_index(n), rng.uniform(-1.0, 1.0));
      }
      const Bcsr bcsr(coo.to_csr(), bs);
      const auto x = random_x(n, 46);
      std::vector<Scalar> ref(static_cast<std::size_t>(n), -7.0);
      std::vector<Scalar> got(ref);
      scalar(bcsr.view(), x.data(), ref.data());
      fn(bcsr.view(), x.data(), got.data());
      expect_same(ref, got,
                  "bcsr_spmv/" + std::string(simd::tier_name(tier)) +
                      "/bs" + std::to_string(bs));
    }
  }
}

TEST(KernelOracle, GatherPackMatchesScalarAcrossTiers) {
  // The ghost-pack kernel (Kestrel Slipstream): out[i] = x[idx[i]]. Sweeps
  // every length that exercises the vector widths' remainder paths (AVX2
  // packs 4 lanes, AVX-512 packs 8 with a masked tail) plus duplicate and
  // boundary indices — gathers must tolerate reading the same slot twice
  // and the last element of x.
  const auto scalar =
      simd::lookup_as<simd::GatherPackFn>(Op::kGatherPack, IsaTier::kScalar);
  ASSERT_NE(scalar, nullptr);
  const Index xn = 200;
  const auto x = random_x(xn, 91);
  for (IsaTier tier : oracle_tiers()) {
    if (!simd::has_exact(Op::kGatherPack, tier)) continue;
    const auto fn =
        simd::lookup_as<simd::GatherPackFn>(Op::kGatherPack, tier);
    for (Index n : {0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64,
                    100}) {
      Rng rng(static_cast<std::uint64_t>(400 + n));
      std::vector<Index> idx(static_cast<std::size_t>(n));
      for (Index i = 0; i < n; ++i) {
        idx[static_cast<std::size_t>(i)] =
            i % 5 == 0 ? xn - 1 : rng.next_index(xn);
      }
      if (n > 3) idx[3] = idx[0];  // duplicate gather target
      std::vector<Scalar> ref(static_cast<std::size_t>(n) + 1, -7.0);
      std::vector<Scalar> got(ref);
      scalar(x.data(), idx.data(), n, ref.data());
      fn(x.data(), idx.data(), n, got.data());
      expect_same(ref, got,
                  "gather_pack/" + std::string(simd::tier_name(tier)) +
                      "/n" + std::to_string(n));
      // the +1 sentinel slot proves the masked tail never overwrites
      EXPECT_DOUBLE_EQ(got[static_cast<std::size_t>(n)], -7.0);
    }
  }
}

TEST(SpmvBcsr, GeneralBlockSizes) {
  for (Index bs : {1, 3, 4}) {
    const Index n = bs * 6;
    Coo coo(n, n);
    Rng rng(31);
    for (Index i = 0; i < n; ++i) {
      coo.add(i, i, 3.0);
      coo.add(i, (i + bs) % n, rng.uniform(-1.0, 1.0));
    }
    const Csr csr = coo.to_csr();
    const Bcsr bcsr(csr, bs);
    expect_matches_reference(bcsr, csr, "bcsr-general");
  }
}

}  // namespace
}  // namespace kestrel::mat
