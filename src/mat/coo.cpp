#include "mat/coo.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"
#include "mat/csr.hpp"

namespace kestrel::mat {

Coo::Coo(Index m, Index n) : m_(m), n_(n) {
  KESTREL_CHECK(m >= 0 && n >= 0, "negative matrix dimension");
}

void Coo::add(Index i, Index j, Scalar v) {
  KESTREL_ASSERT(i >= 0 && i < m_ && j >= 0 && j < n_,
                 "Coo::add index out of range");
  ij_.push_back((static_cast<std::uint64_t>(static_cast<std::uint32_t>(i))
                 << 32) |
                static_cast<std::uint32_t>(j));
  val_.push_back(v);
}

void Coo::add_block(Index i0, Index j0, Index rows, Index cols,
                    const Scalar* v) {
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      add(i0 + r, j0 + c, v[r * cols + c]);
    }
  }
}

void Coo::clear() {
  ij_.clear();
  val_.clear();
}

Csr Coo::to_csr(bool drop_zeros) const {
  const std::size_t nt = ij_.size();
  std::vector<std::size_t> order(nt);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return ij_[a] < ij_[b];
  });

  std::vector<Index> rowptr(static_cast<std::size_t>(m_) + 1, 0);
  std::vector<Index> colidx;
  std::vector<Scalar> val;
  colidx.reserve(nt);
  val.reserve(nt);

  std::size_t k = 0;
  while (k < nt) {
    const std::uint64_t key = ij_[order[k]];
    Scalar sum = 0.0;
    while (k < nt && ij_[order[k]] == key) {
      sum += val_[order[k]];
      ++k;
    }
    if (drop_zeros && sum == 0.0) continue;
    const Index i = static_cast<Index>(key >> 32);
    const Index j = static_cast<Index>(key & 0xFFFFFFFFu);
    rowptr[static_cast<std::size_t>(i) + 1]++;
    colidx.push_back(j);
    val.push_back(sum);
  }
  // The deduplicated count lives in a size_t, so it is exact even when the
  // per-row Index counters above would have wrapped; check it before the
  // prefix sum touches them.
  const GIndex total = static_cast<GIndex>(colidx.size());
  if (total > IndexOverflowError::ceiling()) {
    throw IndexOverflowError(total, "Coo::to_csr nonzero count", __FILE__,
                             __LINE__);
  }
  for (Index i = 0; i < m_; ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] +=
        rowptr[static_cast<std::size_t>(i)];
  }
  return Csr(m_, n_, std::move(rowptr), std::move(colidx), std::move(val));
}

}  // namespace kestrel::mat
