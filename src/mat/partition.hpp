#pragma once
// Kestrel Flock: nnz-balanced partitioning of a format's work units.
//
// Every threaded format splits its outer loop into contiguous unit ranges —
// CSR rows, SELL slices, BCSR block rows, Talon panels, CSR-perm vector
// chunks — and the partition is computed ONCE at inspection time from the
// format's own prefix-sum of stored work (rowptr, sliceptr, ...), then
// stored on the matrix. Balancing on nonzeros rather than rows is what
// keeps power-law matrices from serializing: with row-balanced splits one
// dense row drags its whole partition, while the nnz target puts the split
// right after it.
//
// The boundary rule is a lower_bound per target: part k starts at the first
// unit whose prefix weight reaches k·T/P (T = total weight, P = parts).
// That gives, for every part,
//     weight(part k) < ceil(T/P) + w_max
// where w_max is the heaviest single unit — the unavoidable slack, since a
// unit (one row, one slice) can never be split below format granularity.
// Proof sketch: prefix[b_k] >= floor(kT/P) and prefix[b_{k+1}] <
// floor((k+1)T/P) + w_max (the unit before the boundary was still short of
// the target). Subtracting gives the bound; flock_test checks it on the
// pathological distributions (all nnz in one unit, all-empty-but-last).

#include <cstdint>
#include <vector>

#include "base/types.hpp"

namespace kestrel::mat {

/// A planned split of [0, nunits) into contiguous, possibly empty ranges.
/// bounds has nparts()+1 entries, bounds.front() == 0, bounds.back() ==
/// nunits, monotone non-decreasing.
struct FlockPartition {
  std::vector<Index> bounds;

  int nparts() const {
    return bounds.empty() ? 0 : static_cast<int>(bounds.size()) - 1;
  }
  Index begin(int p) const { return bounds[static_cast<std::size_t>(p)]; }
  Index end(int p) const { return bounds[static_cast<std::size_t>(p) + 1]; }
  bool serial() const { return nparts() <= 1; }
};

/// Plans an nnz-balanced split of [0, nunits) into `nparts` ranges given the
/// weight prefix sum (`prefix[u]` = total weight of units before u, so
/// prefix has nunits+1 entries and prefix[0] == 0). Zero total weight falls
/// back to an even unit split so empty matrices still cover every unit.
FlockPartition nnz_balance(const std::int64_t* prefix, Index nunits,
                           int nparts);

/// Same, for the Index-typed prefix arrays the formats store (rowptr,
/// sliceptr, panel_valptr).
FlockPartition nnz_balance(const Index* prefix, Index nunits, int nparts);

/// Convenience: builds the prefix from per-unit weights, then balances.
FlockPartition nnz_balance_weights(const std::vector<std::int64_t>& weights,
                                   int nparts);

}  // namespace kestrel::mat
