// Scalar Kestrel Slim BCSR (BAIJ) SpMV. Compressed block columns resolve to
// x + base[ib] + off16[k] — base and offsets are stored in scalar column
// units (bs * block column), so the only per-block index cost is the 2-byte
// offset read. fp32 block values widen to double before the multiply.

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=bcsr_slim isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: bcsr_slim_spmv_scalar
// argus-param: a : view BcsrSlimView
// argus-param: x : in extent nb * bs
// argus-param: y : out extent mb * bs
// argus-traffic: bcsr_slim
void bcsr_slim_spmv_scalar(const BcsrSlimView& a, const Scalar* x, Scalar* y) {
  const Index bs = a.bs;
  for (Index ib = 0; ib < a.mb; ++ib) {
    Scalar* yr = y + ib * bs;
    for (Index r = 0; r < bs; ++r) yr[r] = 0.0;
    if (a.idx16 != 0) {
      const Index b = a.base[ib];
      if (a.fp32 != 0) {
        for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
          const float* blk = a.val32 + static_cast<std::size_t>(k) * bs * bs;
          const Scalar* xc = x + b + a.off16[k];
          for (Index r = 0; r < bs; ++r) {
            Scalar sum = 0.0;
            for (Index cidx = 0; cidx < bs; ++cidx) {
              const Scalar bv = blk[r * bs + cidx];
              sum += bv * xc[cidx];
            }
            yr[r] += sum;
          }
        }
      } else {
        for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
          const Scalar* blk = a.val + static_cast<std::size_t>(k) * bs * bs;
          const Scalar* xc = x + b + a.off16[k];
          for (Index r = 0; r < bs; ++r) {
            Scalar sum = 0.0;
            for (Index cidx = 0; cidx < bs; ++cidx) {
              sum += blk[r * bs + cidx] * xc[cidx];
            }
            yr[r] += sum;
          }
        }
      }
    } else {
      // fp32-only mode: fat block columns, float values.
      for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
        const float* blk = a.val32 + static_cast<std::size_t>(k) * bs * bs;
        const Scalar* xc = x + a.colidx[k] * bs;
        for (Index r = 0; r < bs; ++r) {
          Scalar sum = 0.0;
          for (Index cidx = 0; cidx < bs; ++cidx) {
            const Scalar bv = blk[r * bs + cidx];
            sum += bv * xc[cidx];
          }
          yr[r] += sum;
        }
      }
    }
  }
}

}  // namespace

void register_bcsr_slim_scalar() {
  KESTREL_REGISTER_KERNEL(kBcsrSlimSpmv, kScalar, bcsr_slim_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
