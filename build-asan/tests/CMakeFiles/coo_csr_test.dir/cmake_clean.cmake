file(REMOVE_RECURSE
  "CMakeFiles/coo_csr_test.dir/coo_csr_test.cpp.o"
  "CMakeFiles/coo_csr_test.dir/coo_csr_test.cpp.o.d"
  "coo_csr_test"
  "coo_csr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coo_csr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
