// Scalar CSRPerm (AIJPERM) SpMV: iterate group by group, rows within a
// group share a row length so the j-loop over positions is uniform —
// vector tiers vectorize ACROSS rows (paper section 2.4).

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr_perm isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_perm_spmv_scalar
// argus-param: a : view CsrPermView
// argus-param: x : in extent csr.n
// argus-param: y : out extent csr.m
// argus-traffic: csr_perm
void csr_perm_spmv_scalar(const CsrPermView& a, const Scalar* x, Scalar* y) {
  const CsrView& csr = a.csr;
  for (Index g = 0; g < a.ngroups; ++g) {
    const Index gb = a.group_begin[g];
    const Index ge = a.group_begin[g + 1];
    const Index len = a.group_rlen[g];
    for (Index p = gb; p < ge; ++p) {
      const Index row = a.perm[p];
      const Index base = csr.rowptr[row];
      Scalar sum = 0.0;
      for (Index j = 0; j < len; ++j) {
        sum += csr.val[base + j] * x[csr.colidx[base + j]];
      }
      y[row] = sum;
    }
  }
}

}  // namespace

void register_csr_perm_scalar() {
  KESTREL_REGISTER_KERNEL(kCsrPermSpmv, kScalar, csr_perm_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
