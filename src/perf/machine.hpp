#pragma once
// Machine profiles for the processors in the paper's Table 1.
//
// SUBSTITUTION NOTE (see DESIGN.md): this build runs on a single-core VM,
// so the many-core scaling and MCDRAM behavior of the paper's figures are
// regenerated from these profiles through an analytic performance model
// (bwmodel.hpp + spmv_model.hpp) calibrated to the paper's own published
// curves (Figure 4 STREAM, Figure 9 roofline ceilings, Table 1 specs).
// The vectorization story itself — the relative speed of the scalar, AVX,
// AVX2 and AVX-512 kernels — is additionally measured natively, since the
// host CPU supports AVX-512.

#include <string>
#include <vector>

#include "base/types.hpp"
#include "simd/isa.hpp"

namespace kestrel::perf {

enum class MemoryMode {
  kFlatMcdram,  ///< flat mode, allocations bound to MCDRAM (numactl)
  kFlatDram,    ///< flat mode, DRAM only
  kCache,       ///< MCDRAM as direct-mapped last-level cache
};

const char* memory_mode_name(MemoryMode mode);

struct MachineProfile {
  std::string name;
  int cores = 1;
  double freq_ghz = 1.0;        ///< sustained under heavy AVX load
  simd::IsaTier max_tier = simd::IsaTier::kAvx2;
  double l3_mb = 0.0;           ///< 0 for KNL (no shared L3)
  double dram_peak_gbs = 0.0;   ///< achievable DDR stream bandwidth
  double hbm_peak_gbs = 0.0;    ///< achievable MCDRAM bandwidth (0 = none)
  /// Process count at which the stream curve is ~95% saturated
  /// (paper Figure 4: 58 in flat mode, 40 in cache mode on KNL).
  double bw_saturation_procs = 8.0;
  /// Fraction of peak bandwidth reachable WITHOUT vector loads in flat
  /// mode (Figure 4: "dramatically higher achieved memory bandwidth"
  /// with vectorization in flat mode).
  double novec_bw_fraction_flat = 1.0;
  /// Same in cache mode ("only slightly lowers").
  double novec_bw_fraction_cache = 1.0;
  /// Per-core instruction-throughput scale relative to a KNL core
  /// (< 1 = faster core). Captures the big out-of-order Xeon cores vs the
  /// simpler KNL cores.
  double core_cycle_scale = 1.0;

  bool has_mcdram() const { return hbm_peak_gbs > 0.0; }
  /// Peak double-precision Gflop/s (2 FMA pipes * SIMD width).
  double peak_gflops() const;
};

/// KNL 7230 (Theta's chip) — the paper's main platform.
MachineProfile knl7230();
/// Haswell E5-2699v3, Broadwell E5-2699v4, Skylake 8180M (Table 1).
MachineProfile haswell();
MachineProfile broadwell();
MachineProfile skylake();

/// All Table 1 machines in the figure's order.
std::vector<MachineProfile> table1_machines();

/// Best-effort host CPU model string from /proc/cpuinfo ("" when unknown).
/// Recorded in the metrics-JSON hwc block (Kestrel Pulse) so measured
/// counter artifacts carry the machine they were measured on.
std::string host_cpu_model();

}  // namespace kestrel::perf
