
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/advection_diffusion.cpp" "src/CMakeFiles/kestrel.dir/app/advection_diffusion.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/app/advection_diffusion.cpp.o.d"
  "/root/repo/src/app/gray_scott.cpp" "src/CMakeFiles/kestrel.dir/app/gray_scott.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/app/gray_scott.cpp.o.d"
  "/root/repo/src/app/grid2d.cpp" "src/CMakeFiles/kestrel.dir/app/grid2d.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/app/grid2d.cpp.o.d"
  "/root/repo/src/app/laplacian.cpp" "src/CMakeFiles/kestrel.dir/app/laplacian.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/app/laplacian.cpp.o.d"
  "/root/repo/src/base/error.cpp" "src/CMakeFiles/kestrel.dir/base/error.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/base/error.cpp.o.d"
  "/root/repo/src/base/log.cpp" "src/CMakeFiles/kestrel.dir/base/log.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/base/log.cpp.o.d"
  "/root/repo/src/base/options.cpp" "src/CMakeFiles/kestrel.dir/base/options.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/base/options.cpp.o.d"
  "/root/repo/src/ksp/bicgstab.cpp" "src/CMakeFiles/kestrel.dir/ksp/bicgstab.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/bicgstab.cpp.o.d"
  "/root/repo/src/ksp/cg.cpp" "src/CMakeFiles/kestrel.dir/ksp/cg.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/cg.cpp.o.d"
  "/root/repo/src/ksp/chebyshev.cpp" "src/CMakeFiles/kestrel.dir/ksp/chebyshev.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/chebyshev.cpp.o.d"
  "/root/repo/src/ksp/fgmres.cpp" "src/CMakeFiles/kestrel.dir/ksp/fgmres.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/fgmres.cpp.o.d"
  "/root/repo/src/ksp/gmres.cpp" "src/CMakeFiles/kestrel.dir/ksp/gmres.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/gmres.cpp.o.d"
  "/root/repo/src/ksp/ksp.cpp" "src/CMakeFiles/kestrel.dir/ksp/ksp.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/ksp.cpp.o.d"
  "/root/repo/src/ksp/richardson.cpp" "src/CMakeFiles/kestrel.dir/ksp/richardson.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ksp/richardson.cpp.o.d"
  "/root/repo/src/mat/assembler.cpp" "src/CMakeFiles/kestrel.dir/mat/assembler.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/assembler.cpp.o.d"
  "/root/repo/src/mat/bcsr.cpp" "src/CMakeFiles/kestrel.dir/mat/bcsr.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/bcsr.cpp.o.d"
  "/root/repo/src/mat/coo.cpp" "src/CMakeFiles/kestrel.dir/mat/coo.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/coo.cpp.o.d"
  "/root/repo/src/mat/csr.cpp" "src/CMakeFiles/kestrel.dir/mat/csr.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/csr.cpp.o.d"
  "/root/repo/src/mat/csr_perm.cpp" "src/CMakeFiles/kestrel.dir/mat/csr_perm.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/csr_perm.cpp.o.d"
  "/root/repo/src/mat/dense.cpp" "src/CMakeFiles/kestrel.dir/mat/dense.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/dense.cpp.o.d"
  "/root/repo/src/mat/kernels/bcsr_avx2.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/bcsr_avx2.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/bcsr_avx2.cpp.o.d"
  "/root/repo/src/mat/kernels/bcsr_scalar.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/bcsr_scalar.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/bcsr_scalar.cpp.o.d"
  "/root/repo/src/mat/kernels/csr_avx.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_avx.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_avx.cpp.o.d"
  "/root/repo/src/mat/kernels/csr_avx2.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_avx2.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_avx2.cpp.o.d"
  "/root/repo/src/mat/kernels/csr_avx512.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_avx512.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_avx512.cpp.o.d"
  "/root/repo/src/mat/kernels/csr_perm_avx512.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_perm_avx512.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_perm_avx512.cpp.o.d"
  "/root/repo/src/mat/kernels/csr_perm_scalar.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_perm_scalar.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_perm_scalar.cpp.o.d"
  "/root/repo/src/mat/kernels/csr_scalar.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_scalar.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/csr_scalar.cpp.o.d"
  "/root/repo/src/mat/kernels/sell_avx.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_avx.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_avx.cpp.o.d"
  "/root/repo/src/mat/kernels/sell_avx2.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_avx2.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_avx2.cpp.o.d"
  "/root/repo/src/mat/kernels/sell_avx512.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_avx512.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_avx512.cpp.o.d"
  "/root/repo/src/mat/kernels/sell_scalar.cpp" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_scalar.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/kernels/sell_scalar.cpp.o.d"
  "/root/repo/src/mat/mm_io.cpp" "src/CMakeFiles/kestrel.dir/mat/mm_io.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/mm_io.cpp.o.d"
  "/root/repo/src/mat/sell.cpp" "src/CMakeFiles/kestrel.dir/mat/sell.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/sell.cpp.o.d"
  "/root/repo/src/mat/spgemm.cpp" "src/CMakeFiles/kestrel.dir/mat/spgemm.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/mat/spgemm.cpp.o.d"
  "/root/repo/src/par/checker.cpp" "src/CMakeFiles/kestrel.dir/par/checker.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/par/checker.cpp.o.d"
  "/root/repo/src/par/comm.cpp" "src/CMakeFiles/kestrel.dir/par/comm.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/par/comm.cpp.o.d"
  "/root/repo/src/par/parmat.cpp" "src/CMakeFiles/kestrel.dir/par/parmat.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/par/parmat.cpp.o.d"
  "/root/repo/src/par/parvec.cpp" "src/CMakeFiles/kestrel.dir/par/parvec.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/par/parvec.cpp.o.d"
  "/root/repo/src/pc/bjacobi.cpp" "src/CMakeFiles/kestrel.dir/pc/bjacobi.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/bjacobi.cpp.o.d"
  "/root/repo/src/pc/ilu0.cpp" "src/CMakeFiles/kestrel.dir/pc/ilu0.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/ilu0.cpp.o.d"
  "/root/repo/src/pc/ilu0_level.cpp" "src/CMakeFiles/kestrel.dir/pc/ilu0_level.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/ilu0_level.cpp.o.d"
  "/root/repo/src/pc/jacobi.cpp" "src/CMakeFiles/kestrel.dir/pc/jacobi.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/jacobi.cpp.o.d"
  "/root/repo/src/pc/mg.cpp" "src/CMakeFiles/kestrel.dir/pc/mg.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/mg.cpp.o.d"
  "/root/repo/src/pc/pc.cpp" "src/CMakeFiles/kestrel.dir/pc/pc.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/pc.cpp.o.d"
  "/root/repo/src/pc/sor.cpp" "src/CMakeFiles/kestrel.dir/pc/sor.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/pc/sor.cpp.o.d"
  "/root/repo/src/perf/bwmodel.cpp" "src/CMakeFiles/kestrel.dir/perf/bwmodel.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/perf/bwmodel.cpp.o.d"
  "/root/repo/src/perf/machine.cpp" "src/CMakeFiles/kestrel.dir/perf/machine.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/perf/machine.cpp.o.d"
  "/root/repo/src/perf/peakflops_avx512.cpp" "src/CMakeFiles/kestrel.dir/perf/peakflops_avx512.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/perf/peakflops_avx512.cpp.o.d"
  "/root/repo/src/perf/roofline.cpp" "src/CMakeFiles/kestrel.dir/perf/roofline.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/perf/roofline.cpp.o.d"
  "/root/repo/src/perf/spmv_model.cpp" "src/CMakeFiles/kestrel.dir/perf/spmv_model.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/perf/spmv_model.cpp.o.d"
  "/root/repo/src/perf/stream.cpp" "src/CMakeFiles/kestrel.dir/perf/stream.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/perf/stream.cpp.o.d"
  "/root/repo/src/simd/dispatch.cpp" "src/CMakeFiles/kestrel.dir/simd/dispatch.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/simd/dispatch.cpp.o.d"
  "/root/repo/src/simd/isa.cpp" "src/CMakeFiles/kestrel.dir/simd/isa.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/simd/isa.cpp.o.d"
  "/root/repo/src/snes/newton.cpp" "src/CMakeFiles/kestrel.dir/snes/newton.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/snes/newton.cpp.o.d"
  "/root/repo/src/ts/theta.cpp" "src/CMakeFiles/kestrel.dir/ts/theta.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/ts/theta.cpp.o.d"
  "/root/repo/src/vec/index_set.cpp" "src/CMakeFiles/kestrel.dir/vec/index_set.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/vec/index_set.cpp.o.d"
  "/root/repo/src/vec/scatter.cpp" "src/CMakeFiles/kestrel.dir/vec/scatter.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/vec/scatter.cpp.o.d"
  "/root/repo/src/vec/vector.cpp" "src/CMakeFiles/kestrel.dir/vec/vector.cpp.o" "gcc" "src/CMakeFiles/kestrel.dir/vec/vector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
