#pragma once
// Geometric multigrid preconditioner (PETSc PCMG): V-cycles over a
// user-supplied interpolation hierarchy, Galerkin coarse operators
// (A_c = P^T A P), damped-Jacobi smoothing, dense-LU coarsest solve.
//
// This is the -pc_type mg -pc_mg_levels L -mg_levels_pc_type jacobi
// -mg_coarse_pc_type jacobi configuration of the paper's experiments
// (section 7.2): the preconditioner's work is dominated by SpMV on every
// level, which is why accelerating SpMV accelerates the whole solve. A
// format factory lets each level's operator be built in the compute format
// under test (CSR, SELL, ...), so the preconditioner exercises the same
// kernel the paper benchmarks.

#include <functional>
#include <memory>
#include <vector>

#include "mat/csr.hpp"
#include "mat/dense.hpp"
#include "pc/pc.hpp"

namespace kestrel::pc {

class Multigrid final : public Pc {
 public:
  enum class Smoother {
    kJacobi,     ///< damped point Jacobi (the paper's configuration)
    kChebyshev,  ///< Chebyshev/Jacobi (PETSc's default MG smoother)
  };

  struct Options {
    int pre_smooths = 1;
    int post_smooths = 1;
    Smoother smoother = Smoother::kJacobi;
    Scalar jacobi_omega = 2.0 / 3.0;
    /// Chebyshev smoothing targets [emax_low_frac, emax_safety] * lambda_max
    /// of D^{-1}A, estimated per level by power iteration (PETSc defaults).
    Scalar cheby_low_fraction = 0.1;
    Scalar cheby_safety = 1.1;
    int cheby_power_iterations = 12;
    /// Largest coarse problem solved directly; hierarchies whose coarsest
    /// level is bigger than this use damped-Jacobi sweeps there instead
    /// (the paper's -mg_coarse_pc_type jacobi choice).
    Index direct_coarse_limit = 4096;
    int coarse_jacobi_sweeps = 8;
  };

  /// Builds an operator in the benchmarked compute format from a level's
  /// CSR (defaults to CSR itself).
  using FormatFactory =
      std::function<std::shared_ptr<const mat::Matrix>(const mat::Csr&)>;

  /// `interps[l]` interpolates level l+1 (coarser) into level l (finer);
  /// level 0 is the fine grid. Coarse operators are Galerkin products.
  Multigrid(const mat::Csr& fine, std::vector<mat::Csr> interps);
  Multigrid(const mat::Csr& fine, std::vector<mat::Csr> interps,
            Options opts, FormatFactory factory = nullptr);

  void apply(const Vector& r, Vector& z) const override;
  std::string name() const override { return "mg"; }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  const mat::Matrix& level_operator(int l) const { return *levels_[l].op; }
  const mat::Csr& level_csr(int l) const { return levels_[l].a; }

 private:
  struct Level {
    mat::Csr a;                              ///< CSR form (Galerkin, diag)
    std::shared_ptr<const mat::Matrix> op;   ///< compute-format operator
    mat::Csr interp;                         ///< P to the next-coarser level
    mat::Csr restrict_;                      ///< P^T
    Vector inv_diag;                         ///< Jacobi smoother data
    Scalar emax = 0.0;  ///< lambda_max(D^{-1}A) estimate (Chebyshev)
    // V-cycle scratch (mutable via the cycle being non-const on copies)
    mutable Vector x, r, tmp, rc, xc, p;
  };

  void smooth(const Level& level, const Vector& rhs, Vector& x,
              int sweeps) const;
  void smooth_jacobi(const Level& level, const Vector& rhs, Vector& x,
                     int sweeps) const;
  void smooth_chebyshev(const Level& level, const Vector& rhs, Vector& x,
                        int sweeps) const;
  Scalar estimate_level_emax(const Level& level) const;
  void cycle(int l, const Vector& rhs, Vector& x) const;

  Options opts_;
  std::vector<Level> levels_;
  mat::Dense coarse_lu_;
  bool use_direct_coarse_ = false;
};

}  // namespace kestrel::pc
