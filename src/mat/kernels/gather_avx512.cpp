// AVX-512 gather-pack: out[i] = x[idx[i]], 8 doubles per step (Kestrel
// Slipstream ghost pack). The main loop is one 256-bit index load + one
// vgatherdpd + one 512-bit store; the remainder reuses the same gather
// under an edge mask (paper section 3's remainder-handling idiom) instead
// of falling back to a scalar tail.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=gather isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: gather_pack_avx512
// argus-param: x : in
// argus-param: idx : in extent n elem [0, len(x))
// argus-param: n : int
// argus-param: out : out extent n
// argus-traffic: none
void gather_pack_avx512(const Scalar* x, const Index* idx, Index n,
                        Scalar* out) {
  Index i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i vidx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    const __m512d vals = _mm512_i32gather_pd(vidx, x, sizeof(Scalar));
    _mm512_storeu_pd(out + i, vals);
  }
  const Index rem = n - i;
  if (rem > 0) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    // Masked index load keeps the gather from dereferencing x at garbage
    // positions for the dead lanes.
    const __m256i vidx = _mm256_maskz_loadu_epi32(mask, idx + i);
    const __m512d vals = _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask,
                                                  vidx, x, sizeof(Scalar));
    _mm512_mask_storeu_pd(out + i, mask, vals);
  }
}

}  // namespace

void register_gather_avx512() {
  KESTREL_REGISTER_KERNEL(kGatherPack, kAvx512, gather_pack_avx512);
}

}  // namespace kestrel::mat::kernels
