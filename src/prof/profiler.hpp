#pragma once
// Kestrel Scope: a thread-safe, per-rank, hierarchical event profiler
// modeled on PETSc's -log_view (replaces the old base/log.hpp EventLog).
//
// Concepts, mirroring PETSc:
//   * Events are registered by name in a PROCESS-WIDE registry, so the same
//     name resolves to the same id in every Profiler instance — ids are
//     stable and cross-rank reduction can match on ids alone.
//   * A Profiler accumulates, per (stage, event): wall seconds, call count,
//     flops, bytes moved, messages/bytes sent and reductions. Events nest
//     (begin/end must pair LIFO); times are inclusive, as in PETSc.
//   * Stages ("Main Stage" by default) partition a run into named phases;
//     stage_push/stage_pop select where subsequent events accumulate.
//   * Each fabric rank gets its OWN Profiler, attached to the rank thread
//     by par::Fabric::run, so instrumented library code profiles race-free
//     by default. Profiler::global() remains for single-rank use; every
//     Profiler is internally locked, so even a mis-shared global is
//     thread-safe (though concurrent ranks then interleave attribution).
//   * Kestrel Flock pool workers share the rank's Profiler during a job.
//     The running begin/end stack is kept PER THREAD (keyed on thread id
//     under the profiler lock), so concurrent spans from pool workers
//     nest correctly, never cross-pair, and accumulate each flops/bytes
//     record exactly once — totals are thread-count-invariant.
//
// Collection is off unless -log_view/-log_trace/-log_json (or the
// KESTREL_LOG_* environment variables) turn it on: the instrumentation
// macros and ScopedEvent check one relaxed atomic and do nothing else when
// disabled. Reduction and the report/trace/JSON exporters live in
// prof/report.hpp; this header has no par dependency so the fabric itself
// can be instrumented.

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "prof/hwc.hpp"

namespace kestrel {
class Options;

/// Monotonic wall clock in seconds, for ad-hoc timing in benches.
double wall_time();
}  // namespace kestrel

namespace kestrel::prof {

// ---- process-wide name registries (hash-map backed, ids stable) ---------

/// Registers (or finds) an event by name. O(1) expected; ids are dense,
/// stable for the process lifetime, and shared by all Profiler instances.
int registered_event(const std::string& name);
/// Same for stages. "Main Stage" is pre-registered as id 0.
int registered_stage(const std::string& name);
const std::string& event_name(int id);
const std::string& stage_name(int id);
int num_registered_events();
int num_registered_stages();

inline constexpr int kMainStage = 0;

// ---- global collection switches -----------------------------------------

/// True when profiling data is being collected (set by -log_view and
/// friends). Instrumentation sites check this before doing any work.
bool enabled();
void set_enabled(bool on);
/// True when begin/end additionally record trace spans for -log_trace.
bool tracing();
void set_tracing(bool on);

/// RAII enable/disable for tests and benches.
class EnableGuard {
 public:
  explicit EnableGuard(bool on, bool trace = false)
      : prev_enabled_(enabled()), prev_tracing_(tracing()) {
    set_enabled(on);
    set_tracing(trace);
  }
  ~EnableGuard() {
    set_enabled(prev_enabled_);
    set_tracing(prev_tracing_);
  }
  EnableGuard(const EnableGuard&) = delete;
  EnableGuard& operator=(const EnableGuard&) = delete;

 private:
  bool prev_enabled_;
  bool prev_tracing_;
};

/// What the -log_* options asked for; produced by configure().
struct LogConfig {
  bool view = false;         ///< -log_view: print the event table
  std::string trace_path;    ///< -log_trace <file>: Chrome trace JSON
  std::string json_path;     ///< -log_json <file>: metrics JSON
  /// -log_hwc (Kestrel Pulse): true only when hardware counters were both
  /// requested AND available — configure() downgrades it (with hwc's single
  /// structured warning) on hosts without perf-event access.
  bool hwc = false;
  bool any() const {
    return view || hwc || !trace_path.empty() || !json_path.empty();
  }
};

/// Reads -log_view / -log_trace <file> / -log_json <file> / -log_hwc from
/// `opts`, with KESTREL_LOG_VIEW / KESTREL_LOG_TRACE / KESTREL_LOG_JSON /
/// KESTREL_LOG_HWC environment fallbacks, and flips the global collection
/// switches accordingly.
LogConfig configure(const Options& opts);

// ---- accumulators --------------------------------------------------------

struct EventPerf {
  double seconds = 0.0;
  std::uint64_t calls = 0;
  std::uint64_t flops = 0;
  std::uint64_t bytes = 0;          ///< bytes moved by the kernel (model)
  std::uint64_t messages = 0;       ///< fabric messages sent
  std::uint64_t message_bytes = 0;  ///< payload bytes sent
  std::uint64_t reductions = 0;     ///< collective operations
  // Kestrel Pulse: measured counters (all zero unless hwc::enabled()).
  std::uint64_t cycles = 0;        ///< measured CPU cycles
  std::uint64_t instructions = 0;  ///< measured retired instructions
  std::uint64_t llc_misses = 0;    ///< measured last-level cache misses
  std::uint64_t hwc_bytes = 0;     ///< measured DRAM bytes (see hwc::Source)
};

/// One flattened (stage, event) cell with nonzero activity.
struct PerfRow {
  int stage = kMainStage;
  int event = -1;
  EventPerf perf;
};

/// One completed event instance, recorded only while tracing() is on.
/// Times are wall_time() seconds (a common clock for all ranks in the
/// process, so per-rank tracks line up in the exported trace).
struct TraceSpan {
  int event = -1;
  int stage = kMainStage;
  double t0 = 0.0;
  double t1 = 0.0;
  int depth = 0;  ///< nesting depth at begin (0 = outermost)
  // Kestrel Pulse counter deltas over the span (zero unless hwc was on);
  // exported as Chrome-trace args.
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t hwc_bytes = 0;
};

class Profiler {
 public:
  Profiler();

  // -- recording (thread-safe; begin/end must pair LIFO per profiler) ----
  void begin(int event);
  void end(int event, std::uint64_t flops = 0, std::uint64_t bytes = 0);
  /// Accounts fabric traffic to the innermost running event (or to the
  /// implicit "Comm" event when none is running).
  void message(std::uint64_t count, std::uint64_t payload_bytes);
  /// Accounts one collective (allreduce/allgatherv/barrier).
  void reduction();

  void stage_push(int stage);
  void stage_pop();
  int current_stage() const;

  /// Appends (x, y) to a named series, e.g. residual norm per iteration.
  void record_history(const std::string& series, double x, double y);
  /// Sets a scalar metric carried into the JSON dump (measured-vs-model
  /// figures, machine info, ...).
  void set_metric(const std::string& name, double value);

  // -- queries (aggregated over all stages unless stated) ----------------
  double seconds(int event) const;
  std::uint64_t calls(int event) const;
  std::uint64_t flops(int event) const;
  std::uint64_t bytes(int event) const;
  EventPerf perf_in(int stage, int event) const;
  double total_seconds() const;  ///< sum of event seconds (old EventLog)
  /// Wall seconds since construction/reset; the -log_view %T denominator.
  double elapsed_seconds() const;

  std::uint64_t total_messages() const;
  std::uint64_t total_message_bytes() const;
  std::uint64_t total_reductions() const;

  /// All (stage, event) cells with at least one call (plus cells carrying
  /// only message/reduction counts).
  std::vector<PerfRow> rows() const;
  std::vector<TraceSpan> trace() const;
  /// Spans dropped after the recording cap was hit (reported, not silent).
  std::uint64_t dropped_spans() const;
  std::map<std::string, std::vector<std::pair<double, double>>> histories()
      const;
  std::map<std::string, double> metrics() const;

  void reset();

  /// Process-wide instance for single-rank use; internally locked like any
  /// Profiler. Fabric ranks get their own instances (see prof::current).
  static Profiler& global();

 private:
  struct Running {
    int event;
    double t0;
    hwc::Reading hwc0;  ///< counter snapshot at begin (invalid if hwc off)
  };

  EventPerf& cell(int stage, int event);  // mu_ must be held
  std::vector<Running>& running_stack();  // mu_ must be held; calling thread

  mutable std::mutex mu_;
  std::vector<std::vector<EventPerf>> perf_;  ///< [stage][event]
  /// Per-thread running-event stacks (Flock pool workers record
  /// concurrently into the rank profiler; see header comment).
  std::map<std::thread::id, std::vector<Running>> running_;
  std::vector<int> stage_stack_;
  std::vector<TraceSpan> spans_;
  std::uint64_t dropped_spans_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_message_bytes_ = 0;
  std::uint64_t total_reductions_ = 0;
  std::map<std::string, std::vector<std::pair<double, double>>> histories_;
  std::map<std::string, double> metrics_;
  double created_ = 0.0;
};

// ---- thread attachment ---------------------------------------------------

/// Attaches `p` as this thread's profiler (nullptr to detach); returns the
/// previous attachment. par::Fabric::run attaches one per rank thread.
Profiler* attach(Profiler* p);
/// This thread's attached profiler, or nullptr.
Profiler* attached();
/// The profiler instrumentation on this thread records into: the attached
/// per-rank instance if any, else the locked global().
Profiler& current();

class AttachGuard {
 public:
  explicit AttachGuard(Profiler* p) : prev_(attach(p)) {}
  ~AttachGuard() { attach(prev_); }
  AttachGuard(const AttachGuard&) = delete;
  AttachGuard& operator=(const AttachGuard&) = delete;

 private:
  Profiler* prev_;
};

/// RAII event scope against the current() profiler; a no-op (one relaxed
/// atomic load) while collection is disabled.
class ScopedEvent {
 public:
  explicit ScopedEvent(int event, std::uint64_t flops = 0,
                       std::uint64_t bytes = 0)
      : event_(event), flops_(flops), bytes_(bytes) {
    if (enabled()) {
      profiler_ = &current();
      profiler_->begin(event_);
    }
  }
  ~ScopedEvent() {
    if (profiler_ != nullptr) profiler_->end(event_, flops_, bytes_);
  }
  ScopedEvent(const ScopedEvent&) = delete;
  ScopedEvent& operator=(const ScopedEvent&) = delete;

 private:
  Profiler* profiler_ = nullptr;
  int event_;
  std::uint64_t flops_;
  std::uint64_t bytes_;
};

/// RAII stage scope against the current() profiler.
class ScopedStage {
 public:
  explicit ScopedStage(const std::string& name) {
    if (enabled()) {
      profiler_ = &current();
      profiler_->stage_push(registered_stage(name));
    }
  }
  ~ScopedStage() {
    if (profiler_ != nullptr) profiler_->stage_pop();
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Profiler* profiler_ = nullptr;
};

}  // namespace kestrel::prof

/// Hot-path hook for a format's SpMV entry point: registers the event once,
/// then times the call and accrues flops / modeled bytes-moved.
/// tools/kestrel_lint.py requires one per KESTREL_KERNEL_TABLE format
/// (rule kernel-perf-reporting), so no registered kernel can silently stop
/// reporting the numbers the -log_view table and the traffic cross-check
/// depend on.
#define KESTREL_PROF_SPMV(name, flops, bytes)                         \
  static const int kestrel_prof_spmv_event_ =                         \
      ::kestrel::prof::registered_event(name);                        \
  ::kestrel::prof::ScopedEvent kestrel_prof_spmv_scope_(              \
      kestrel_prof_spmv_event_, static_cast<std::uint64_t>(flops),    \
      static_cast<std::uint64_t>(bytes))
