#pragma once
// Krylov solver layer (PETSc KSP).
//
// Solvers are written against LinearContext, which hides whether the
// operator/preconditioner/dot-products are sequential or distributed: the
// same CG/GMRES code runs on one rank against a mat::Matrix or on many
// ranks against a ParMatrix (with allreduce dot products), mirroring how
// PETSc layers KSP above Mat/Vec (paper Figure 1).

#include <functional>
#include <memory>
#include <string>

#include "base/deadline.hpp"
#include "base/types.hpp"
#include "vec/vector.hpp"

namespace kestrel::pc {
class Pc;
}

namespace kestrel::ksp {

enum class Reason {
  kConvergedRtol,
  kConvergedAtol,
  kDivergedMaxIts,
  kDivergedNan,
  kDivergedBreakdown,
  /// Kestrel Bastion: Settings::deadline expired (wall budget or cooperative
  /// cancel) before convergence; x holds the best iterate reached.
  kDeadlineExceeded,
};

const char* reason_name(Reason r);

struct SolveResult {
  bool converged = false;
  int iterations = 0;  ///< total across recovery restarts
  Scalar residual_norm = 0.0;
  Reason reason = Reason::kDivergedMaxIts;
  /// Breakdown-recovery restarts taken (Kestrel Aegis); 0 on a clean solve.
  int restarts = 0;
};

struct Settings {
  Scalar rtol = 1e-8;
  Scalar atol = 1e-50;
  int max_iterations = 10000;
  int gmres_restart = 30;
  /// Kestrel Aegis breakdown recovery: on DIVERGED_BREAKDOWN / DIVERGED_NAN
  /// the driver restarts the method from the current iterate (or the entry
  /// guess when the iterate is NaN/Inf-poisoned), recomputing the true
  /// residual, up to max_restarts times before falling back to the
  /// structured failure.
  bool breakdown_recovery = false;
  int max_restarts = 1;
  /// Kestrel Bastion: checked in Solver::check() at every iteration; on
  /// expiry (wall budget or cooperative cancel) the method stops with
  /// Reason::kDeadlineExceeded, leaving the best iterate in x. Default is an
  /// inactive token that never expires.
  Deadline deadline;
  /// Called after each iteration with (iteration, residual norm).
  std::function<void(int, Scalar)> monitor;
};

/// The solver's window onto the linear system. Vectors passed to solvers
/// are the LOCAL blocks; dot() performs the global reduction when the
/// context is distributed.
class LinearContext {
 public:
  virtual ~LinearContext() = default;

  /// Local length of solution/rhs vectors.
  virtual Index local_size() const = 0;
  /// Stored nonzeros of the (local part of the) operator, so the KSPSolve
  /// profiler event can account ~2*nnz flops per iteration (Kestrel Pulse
  /// pairs them with measured cycles for a solver-level IPC). 0 = unknown,
  /// e.g. matrix-free contexts.
  virtual std::int64_t operator_nnz() const { return 0; }
  /// y = A * x.
  virtual void apply_operator(const Vector& x, Vector& y) = 0;
  /// z = M^{-1} r; identity by default.
  virtual void apply_pc(const Vector& r, Vector& z);
  /// Globally reduced inner product.
  virtual Scalar dot(const Vector& a, const Vector& b);

  Scalar norm2(const Vector& a);
};

class Solver {
 public:
  virtual ~Solver() = default;
  explicit Solver(Settings settings = {}) : settings_(settings) {}

  /// Solves A x = b starting from the incoming x (use x.set(0) for a zero
  /// initial guess). Non-virtual recovery driver (Kestrel Aegis): runs the
  /// method via solve_once and, when Settings::breakdown_recovery is set,
  /// restarts it on breakdown / NaN divergence / AbftError up to
  /// Settings::max_restarts times before surfacing the failure. The whole
  /// call is recorded as the "KSPSolve" profiler event with
  /// iterations * 2 * ctx.operator_nnz() flops, so every caller (SNES, TS,
  /// examples, benches) gets solver-level timing + measured counters
  /// without wrapping it themselves.
  SolveResult solve(LinearContext& ctx, const Vector& b, Vector& x) const;

  virtual std::string name() const = 0;

  Settings& settings() { return settings_; }
  const Settings& settings() const { return settings_; }

 protected:
  /// One un-recovered run of the Krylov method. Restart-from-iterate works
  /// because every method recomputes the true residual b - A x at entry.
  virtual SolveResult solve_once(LinearContext& ctx, const Vector& b,
                                 Vector& x) const = 0;

  /// Shared convergence test; returns true when iteration should stop.
  bool check(Scalar rnorm, Scalar rnorm0, int it, SolveResult* out) const;

  Settings settings_;

 private:
  /// The Aegis recovery driver (the body of solve(), minus profiling).
  SolveResult solve_driver(LinearContext& ctx, const Vector& b,
                           Vector& x) const;
};

/// Factory keyed by PETSc-style names: cg, gmres, bicgstab, richardson,
/// chebyshev.
std::unique_ptr<Solver> make_solver(const std::string& type,
                                    Settings settings = {});

// Concrete solvers ---------------------------------------------------------

class Cg final : public Solver {
 public:
  using Solver::Solver;
  SolveResult solve_once(LinearContext& ctx, const Vector& b,
                         Vector& x) const override;
  std::string name() const override { return "cg"; }
};

class Gmres final : public Solver {
 public:
  using Solver::Solver;
  SolveResult solve_once(LinearContext& ctx, const Vector& b,
                         Vector& x) const override;
  std::string name() const override { return "gmres"; }
};

/// Flexible GMRES (right-preconditioned; the preconditioner may vary per
/// iteration).
class FGmres final : public Solver {
 public:
  using Solver::Solver;
  SolveResult solve_once(LinearContext& ctx, const Vector& b,
                         Vector& x) const override;
  std::string name() const override { return "fgmres"; }
};

class BiCgStab final : public Solver {
 public:
  using Solver::Solver;
  SolveResult solve_once(LinearContext& ctx, const Vector& b,
                         Vector& x) const override;
  std::string name() const override { return "bicgstab"; }
};

class Richardson final : public Solver {
 public:
  explicit Richardson(Settings settings = {}, Scalar omega = 1.0)
      : Solver(settings), omega_(omega) {}
  SolveResult solve_once(LinearContext& ctx, const Vector& b,
                         Vector& x) const override;
  std::string name() const override { return "richardson"; }

 private:
  Scalar omega_;
};

class Chebyshev final : public Solver {
 public:
  /// Requires estimates of the preconditioned operator's extreme
  /// eigenvalues; PETSc-style smoothing defaults target the upper part of
  /// the spectrum.
  Chebyshev(Settings settings, Scalar emin, Scalar emax)
      : Solver(settings), emin_(emin), emax_(emax) {}
  SolveResult solve_once(LinearContext& ctx, const Vector& b,
                         Vector& x) const override;
  std::string name() const override { return "chebyshev"; }

 private:
  Scalar emin_, emax_;
};

/// Largest eigenvalue estimate of the preconditioned operator M^{-1}A via
/// power iteration (used to configure Chebyshev smoothers).
Scalar estimate_max_eigenvalue(LinearContext& ctx, int iterations = 20,
                               std::uint64_t seed = 12345);

// Ready-made contexts -------------------------------------------------------

}  // namespace kestrel::ksp
