# Empty dependencies file for index_set_scatter_test.
# This may be replaced when dependencies are built.
