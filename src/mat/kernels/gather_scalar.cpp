// Scalar gather-pack: out[i] = x[idx[i]] (Kestrel Slipstream ghost pack).
// The baseline the vector tiers are measured against, and the mandatory
// fallback every Op must have (tools/kestrel_lint.py kernel-op-scalar rule).

#include "mat/kernels/registration.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=gather isa=scalar
// flock-pool-safe: element  (pure elementwise map: any split is bitwise-safe)

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: gather_pack_scalar
// argus-param: x : in
// argus-param: idx : in extent n elem [0, len(x))
// argus-param: n : int
// argus-param: out : out extent n
// argus-traffic: none
void gather_pack_scalar(const Scalar* x, const Index* idx, Index n,
                        Scalar* out) {
  for (Index i = 0; i < n; ++i) {
    out[i] = x[idx[i]];
  }
}

}  // namespace

void register_gather_scalar() {
  KESTREL_REGISTER_KERNEL(kGatherPack, kScalar, gather_pack_scalar);
}

}  // namespace kestrel::mat::kernels
