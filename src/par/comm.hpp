#pragma once
// In-process message-passing fabric.
//
// The paper's parallel SpMV runs on MPI; this machine has a single core and
// no MPI, so Kestrel provides an MPI-shaped substrate whose ranks are
// std::threads and whose messages travel through in-memory mailboxes. The
// subset implemented (nonblocking send/recv + wait, allreduce, barrier,
// gather) is exactly what the overlapped SpMV of paper section 2.2 and the
// Krylov solvers need. Semantics follow MPI: sends are eager and
// nonblocking, receives match on (source, tag) in posting order.
//
// Kestrel Slipstream adds a persistent-communication fast path modeled on
// MPI_Send_init/MPI_Recv_init + MPI_Start/MPI_Waitany: both endpoints of a
// fixed ghost-exchange pattern register once (Comm::open_exchange), the
// receiver pins an in-place destination slice per peer, and steady-state
// traffic is one memcpy from the sender's pack buffer straight into that
// slice — no heap allocation, no mailbox map, no intermediate payload
// vector. Synchronization is lock-light: a seq_cst armed/delivered counter
// pair per channel carries the fast path; mutexes and condition variables
// are touched only to park when a rank genuinely has to wait.
//
// Correctness instrumentation (Kestrel Sentry): debug builds, sanitizer
// presets and KESTREL_FABRIC_CHECK=1 attach a FabricChecker (par/checker.hpp)
// that records a happens-before event trace and fails loudly on mismatched
// collectives, double-wait, un-waited requests, undrained persistent
// channels and fabric hangs.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "base/types.hpp"

namespace kestrel::aegis {
class FaultPlan;
}

namespace kestrel::par {

class Fabric;
class FabricChecker;
struct GhostChannel;

/// Handle for a pending nonblocking receive. Waiting on the same request
/// twice (directly or via a copy) is a contract violation: it throws
/// unconditionally, and with the fabric checker enabled it is reported with
/// rank/source/tag context and the recent event trace.
struct Request {
  int source = -1;
  int tag = -1;
  std::vector<Scalar>* sink = nullptr;
  bool done = false;
  /// Checker-issued id (0 when checking is disabled). Used to detect
  /// double-wait through copies and requests dropped without a wait.
  std::uint64_t id = 0;
};

/// Per-rank fabric counters (Kestrel Slipstream observability). Each rank
/// thread is the only writer of its own cell, so the fields are plain
/// integers; read them through Comm::stats() on the owning rank.
struct FabricStats {
  std::uint64_t mailbox_msgs = 0;     ///< messages sent through the mailbox
  std::uint64_t mailbox_allocs = 0;   ///< payload vectors allocated (mailbox)
  std::uint64_t payload_copies = 0;   ///< payload copies, all paths
  std::uint64_t channel_sends = 0;    ///< persistent-channel deliveries
  std::uint64_t send_parks = 0;       ///< sender blocked awaiting a re-arm
  std::uint64_t wait_any_calls = 0;   ///< PersistentExchange::wait_any calls
  std::uint64_t wait_any_wakeups = 0; ///< doorbell parks/wakeups in wait_any
};

/// One sender-side persistent channel: `count` scalars per round to `peer`.
struct GhostSendSpec {
  int peer = -1;
  Index count = 0;
};

/// One receiver-side persistent channel: `count` scalars per round from
/// `peer`, delivered in place into [dest, dest + count). `dest` must stay
/// valid for the lifetime of the exchange.
struct GhostRecvSpec {
  int peer = -1;
  Scalar* dest = nullptr;
  Index count = 0;
};

/// Persistent ghost-exchange channels (Kestrel Slipstream): the fabric
/// analogue of MPI_Send_init/MPI_Recv_init + MPI_Start/MPI_Waitany.
///
/// Lifecycle per round, on the receiver side:
///   arm()          re-posts every receive (marks the destination slices
///                  writable). Requires the previous round fully drained.
///   wait_any()     blocks until SOME armed channel has been delivered and
///                  returns its recv-spec index; each channel completes
///                  exactly once per round, in arrival order, with the data
///                  already in place at its registered destination.
/// and on the sender side:
///   send(i, p, n)  one-copy delivery of n packed scalars into peer i's
///                  registered slice. Blocks (bounded-skew rendezvous) only
///                  until the peer has re-armed the channel, i.e. senders
///                  can run at most one exchange round ahead.
///
/// Matching: the k-th channel opened from rank S to rank R on the send side
/// pairs with the k-th channel opened from S on R's receive side. Exchange
/// setup is collective in practice (ParMatrix construction), which makes
/// this ordering deterministic.
class PersistentExchange {
 public:
  PersistentExchange(const PersistentExchange&) = delete;
  PersistentExchange& operator=(const PersistentExchange&) = delete;

  int nsend() const { return static_cast<int>(sends_.size()); }
  int nrecv() const { return static_cast<int>(recvs_.size()); }

  /// Receiver: post (re-arm) every receive channel for a new round.
  void arm();
  /// Sender: deliver `count` scalars into the peer slice of send channel
  /// `send_idx`. `count` must equal the registered plan count.
  void send(int send_idx, const Scalar* packed, Index count);
  /// Receiver: block until a newly delivered channel exists; returns its
  /// index into the recv specs. Must be called exactly nrecv() times per
  /// armed round.
  int wait_any();
  /// Receiver: drain every outstanding receive of the current round.
  void wait_all();

 private:
  friend class Comm;
  PersistentExchange(Fabric* fabric, int rank);

  struct SendSlot {
    GhostChannel* ch = nullptr;
    int peer = -1;
    Index count = 0;
    std::uint64_t seq = 0;  ///< rounds sent so far on this channel
  };
  struct RecvSlot {
    GhostChannel* ch = nullptr;
    int peer = -1;
    Index count = 0;
    bool done = false;  ///< completed in the current round
  };

  Fabric* fabric_;
  int rank_;
  std::vector<SendSlot> sends_;
  std::vector<RecvSlot> recvs_;
  std::uint64_t round_ = 0;  ///< arm rounds so far (receiver side)
  int completed_ = 0;        ///< receives completed in the current round
};

/// Per-rank communicator; valid only inside Fabric::run.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const { return size_; }

  /// Eager nonblocking send: data is copied into the destination mailbox
  /// and the call returns immediately.
  void isend(int dest, int tag, const std::vector<Scalar>& data);
  void isend(int dest, int tag, const Scalar* data, std::size_t count);
  /// Typed index message: global indices travel as Index, not round-tripped
  /// through Scalar (which silently loses precision for indices >= 2^53 and
  /// doubles the bandwidth). Index and Scalar payloads queue separately, so
  /// a tag may carry only one payload type at a time. Named (rather than an
  /// isend overload) so brace-initialized payloads stay unambiguous.
  void isend_indices(int dest, int tag, const std::vector<Index>& data);

  /// Posts a receive; wait() blocks until a message from (source, tag)
  /// arrives and fills *sink. Every posted request must be waited on
  /// exactly once before the rank function returns.
  Request irecv(int source, int tag, std::vector<Scalar>* sink);
  void wait(Request& req);

  /// Blocking receive convenience.
  std::vector<Scalar> recv(int source, int tag);
  /// Blocking receive of a typed index message (see isend overload above).
  std::vector<Index> recv_indices(int source, int tag);

  enum class ReduceOp { kSum, kMax, kMin };
  Scalar allreduce(Scalar value, ReduceOp op = ReduceOp::kSum);
  std::int64_t allreduce(std::int64_t value, ReduceOp op = ReduceOp::kSum);

  /// Every rank contributes a vector; every rank receives the
  /// rank-concatenated result.
  std::vector<Scalar> allgatherv(const std::vector<Scalar>& local);
  std::vector<Index> allgatherv(const std::vector<Index>& local);

  void barrier();

  /// Registers this rank's half of a persistent ghost exchange (see
  /// PersistentExchange). Purely local: no synchronization with the peers
  /// happens until the first arm()/send().
  std::shared_ptr<PersistentExchange> open_exchange(
      const std::vector<GhostSendSpec>& sends,
      const std::vector<GhostRecvSpec>& recvs);

  /// This rank's fabric counters (single-writer: this rank's thread).
  const FabricStats& stats() const;
  /// Caller-side payload copies that belong to the fabric story (e.g. the
  /// mailbox ghost unpack in ParMatrix) so `payload_copies` counts every
  /// copy a message payload experiences end to end.
  void add_payload_copy(std::uint64_t n = 1);
  /// Collective: sums every counter across ranks and records the totals as
  /// `fabric/...` metrics on the current profiler, so -log_json dumps carry
  /// the fabric's allocation/copy/wakeup behavior.
  void publish_stats_metrics();

 private:
  friend class Fabric;
  friend class PersistentExchange;
  Comm(Fabric* fabric, int rank, int size)
      : fabric_(fabric), rank_(rank), size_(size) {}
  /// Collective bodies without checker events; the public entry points
  /// record exactly one event each so the checker sees the user's program
  /// order, not the implementation's message pattern.
  Scalar allreduce_impl(Scalar value, ReduceOp op);
  std::vector<Scalar> allgatherv_impl(const std::vector<Scalar>& local);
  std::vector<Index> allgatherv_impl(const std::vector<Index>& local);
  FabricChecker* checker() const;

  Fabric* fabric_;
  int rank_;
  int size_;
};

/// Configuration for one Fabric::run. Defaults come from the build and the
/// environment so test suites can flip checking on globally:
///   * check: KESTREL_FABRIC_CHECK=0/1 if set; else KESTREL_FABRIC_CHECK_DEFAULT
///     if compiled in (the sanitizer presets define it to 1); else on in
///     debug (!NDEBUG) builds and off in release builds.
///   * hang_timeout_s: KESTREL_FABRIC_TIMEOUT_MS milliseconds if set, else
///     KESTREL_FABRIC_HANG_TIMEOUT seconds if set, else 30s. Only active
///     while checking; <= 0 disables hang detection.
///   * faults: the Kestrel Aegis fault-injection plan; parsed from
///     KESTREL_AEGIS when set, nullptr (no injection) otherwise.
struct FabricOptions {
  FabricOptions();  // resolves the defaults described above
  bool check;
  double hang_timeout_s;
  std::shared_ptr<const aegis::FaultPlan> faults;
};

/// One mailbox message (Kestrel Aegis envelope): the payload plus the
/// per-(source, tag) sequence number and payload checksum that let the
/// receiver discard duplicates/corruption and re-sequence reordered
/// deliveries. seq stays 0 (and checks are skipped) when no fault plan is
/// attached, so the fault-free fast path pays nothing.
template <class T>
struct FabricEnvelope {
  std::uint64_t seq = 0;
  std::uint64_t sum = 0;    ///< FNV-1a of payload bytes; valid iff checked
  bool checked = false;
  std::vector<T> payload;
};

/// Owns the mailboxes, persistent channels and threads. Usage:
///   Fabric::run(4, [](Comm& comm) { ... });
class Fabric {
 public:
  /// Spawns `nranks` threads executing fn(comm); rethrows the first rank
  /// exception after all threads join.
  static void run(int nranks, const std::function<void(Comm&)>& fn);
  static void run(int nranks, const FabricOptions& opts,
                  const std::function<void(Comm&)>& fn);

 private:
  friend class Comm;
  friend class PersistentExchange;
  Fabric(int nranks, const FabricOptions& opts);
  ~Fabric();

  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    // (source, tag) -> FIFO of message envelopes, one queue per payload type
    std::map<std::pair<int, int>, std::deque<FabricEnvelope<Scalar>>> queue;
    std::map<std::pair<int, int>, std::deque<FabricEnvelope<Index>>> iqueue;
    // Highest sequence number consumed per (source, tag) stream; entries at
    // or below it are duplicates. Guarded by mu. Only populated when a
    // fault plan is active.
    std::map<std::pair<int, int>, std::uint64_t> seq_seen;
    std::map<std::pair<int, int>, std::uint64_t> iseq_seen;
  };

  /// Per-rank doorbell for PersistentExchange::wait_any: senders ring it
  /// after bumping a channel's delivered counter, but only when the
  /// receiver advertised it is parked (lock-light fast path).
  struct Doorbell {
    std::mutex mu;
    std::condition_variable cv;
    std::atomic<int> parked{0};
  };

  /// Persistent channels between one ordered (src, dst) pair, in the order
  /// they were opened. Each side claims slots independently; the slot is
  /// created by whichever endpoint registers first.
  struct ChannelSlots {
    std::vector<std::unique_ptr<GhostChannel>> channels;
    std::size_t opened_by_sender = 0;
    std::size_t opened_by_receiver = 0;
  };

  void deliver(int dest, int source, int tag, std::vector<Scalar> payload);
  void deliver(int dest, int source, int tag, std::vector<Index> payload);
  template <class T>
  void deliver_impl(
      std::map<std::pair<int, int>, std::deque<FabricEnvelope<T>>>
          Mailbox::*q,
      int dest, int source, int tag, std::vector<T> payload, bool is_index);
  std::vector<Scalar> take(int self, int source, int tag);
  std::vector<Index> take_indices(int self, int source, int tag);
  template <class T>
  std::vector<T> take_from(
      std::map<std::pair<int, int>, std::deque<FabricEnvelope<T>>>
          Mailbox::*q,
      std::map<std::pair<int, int>, std::uint64_t> Mailbox::*seen,
      int self, int source, int tag);
  /// Claims the next channel slot for (src -> dst) on the given side,
  /// creating the channel if this endpoint registers first.
  GhostChannel* open_channel_endpoint(int src, int dst, bool sender_side);
  /// Wakes every blocked rank after a rank failed, so one rank's exception
  /// cannot deadlock the rest of the fabric.
  void abort_all();
  [[noreturn]] void hang_failure(int rank, const std::string& what);
  /// Unwind path for a rank woken by abort_all: throws the structured
  /// RankFailure naming the root-cause rank when it is known, the generic
  /// fabric-aborted error otherwise.
  [[noreturn]] void abort_failure() const;
  /// Throws RankFailure if the fault plan kills `rank` at this consultation.
  void maybe_kill(int rank, const char* where) const;

  int nranks_;
  FabricOptions opts_;
  std::unique_ptr<FabricChecker> checker_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;
  std::vector<std::unique_ptr<Doorbell>> doorbells_;
  std::vector<std::unique_ptr<FabricStats>> stats_;
  /// Per-rank sender sequence counters, keyed (dest, tag, index-stream).
  /// Single-writer: only the owning rank's thread sends from it.
  std::vector<std::unique_ptr<
      std::map<std::tuple<int, int, bool>, std::uint64_t>>>
      send_seq_;
  std::mutex channels_mu_;
  std::map<std::pair<int, int>, ChannelSlots> channels_;
  std::atomic<bool> aborted_{false};
  std::atomic<int> first_failed_rank_{-1};
};

}  // namespace kestrel::par
