#pragma once
// Kestrel Bastion: registry of named, resident matrix handles.
//
// The expensive asset in a solve service is the inspected matrix (paper §6:
// assembly + format conversion dominate a single solve, so production
// workloads assemble once and solve many). The registry owns that asset:
// each add() converts a CSR into the requested compute format, optionally
// wraps it in Aegis ABFT verification, accounts its bytes against a
// MemoryBudget (declining with a structured BudgetError instead of letting
// a later solve OOM), and publishes it as an immutable shared handle.
//
// Fault isolation falls out of immutability: a handle is a
// shared_ptr<const Handle> whose matrices are const — a sabotaged tenant's
// AbftError unwinds that tenant's request only; no request can write
// through a handle, so concurrent tenants never observe each other.
//
// Every ABFT handle carries TWO wrappers over the SAME inner matrix: the
// full one (caller's verify_every) and a degraded one (sampled
// verification) the service switches to under sustained overload — the
// load-watchdog's "cheaper but still checked" mode. verify_every is fixed
// at AbftMatrix construction, hence two wrappers rather than a knob.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "aegis/abft.hpp"
#include "base/budget.hpp"
#include "mat/csr.hpp"
#include "mat/matrix.hpp"

namespace kestrel::svc {

struct HandleOptions {
  /// Compute format built from the CSR: csr | csrperm | sell | bcsr | talon.
  std::string format = "csr";
  /// Block size for bcsr (ignored otherwise).
  Index block_size = 4;
  /// Wrap the built matrix in Aegis ABFT verification.
  bool abft = false;
  aegis::AbftOptions abft_opts;
  /// verify_every of the degraded wrapper the watchdog switches to under
  /// overload (must be >= the full wrapper's to actually be cheaper).
  int degraded_verify_every = 4;
};

struct HandleInfo {
  std::string name;
  std::string format;
  Index rows = 0;
  Index cols = 0;
  std::int64_t nnz = 0;
  std::uint64_t bytes = 0;  ///< accounted against the memory budget
  bool abft = false;
};

class MatrixRegistry {
 public:
  struct Handle {
    mat::MatrixPtr full;      ///< operator served in normal mode
    mat::MatrixPtr degraded;  ///< sampled-verification twin (== full when
                              ///< the handle is not ABFT-wrapped)
    HandleInfo info;
  };
  using HandlePtr = std::shared_ptr<const Handle>;

  /// Handles are accounted against `budget` (global() by default).
  explicit MatrixRegistry(MemoryBudget& budget = MemoryBudget::global())
      : budget_(budget) {}
  ~MatrixRegistry();

  MatrixRegistry(const MatrixRegistry&) = delete;
  MatrixRegistry& operator=(const MatrixRegistry&) = delete;

  /// Builds the compute format from `csr` and registers it under `name`.
  /// Throws BudgetError when the built matrix would not fit the budget
  /// (nothing is retained), Error on a duplicate name or unknown format.
  HandlePtr add(const std::string& name, const mat::Csr& csr,
                HandleOptions opts = {});

  /// Registers an already-built matrix (tests: sabotage hooks need the
  /// concrete wrapper). ABFT wrapping per `opts` applies on top.
  HandlePtr add_matrix(const std::string& name, mat::MatrixPtr m,
                       HandleOptions opts = {});

  /// Throws Error when `name` is unknown.
  HandlePtr get(const std::string& name) const;
  bool has(const std::string& name) const;

  /// Releases the handle's bytes back to the budget. In-flight requests
  /// holding the shared_ptr keep the storage alive until they finish.
  void remove(const std::string& name);

  std::vector<HandleInfo> list() const;
  std::uint64_t resident_bytes() const;

 private:
  HandlePtr insert(const std::string& name, mat::MatrixPtr built,
                   const HandleOptions& opts);

  MemoryBudget& budget_;
  mutable std::mutex mu_;
  std::map<std::string, HandlePtr> handles_;
};

}  // namespace kestrel::svc
