// SELF-TEST FIXTURE — CSR AVX-512 tail whose gather mask enables one more
// lane than the masked index load produced. Both masks have clean
// (1 << k) - 1 provenance, so the provenance check passes; the gather
// still consumes a lane of colidx that was never loaded (it holds the
// maskz zero, so x[0] is silently folded into the row sum).
//
// expect-violation: tail-mask :: consumes lanes beyond

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_spmv_avx512
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void csr_spmv_avx512(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    const Index len = a.rowptr[i + 1] - begin;
    Scalar sum = 0.0;
    Index k = 0;
    for (; k + 8 <= len; k += 8) {
      const __m512d vals = _mm512_loadu_pd(a.val + begin + k);
      const __m256i idx = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(a.colidx + begin + k));
      const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
      sum += _mm512_reduce_add_pd(_mm512_mul_pd(vals, vx));
    }
    const Index rem = len - k;
    if (rem > 2) {
      const __mmask8 mask =
          static_cast<__mmask8>((1u << static_cast<unsigned>(rem)) - 1u);
      // BUG: gather mask widened to rem + 1 lanes.
      const __mmask8 wide =
          static_cast<__mmask8>((1u << static_cast<unsigned>(rem + 1)) - 1u);
      const __m512d vals = _mm512_maskz_loadu_pd(mask, a.val + begin + k);
      const __m256i idx = _mm256_maskz_loadu_epi32(mask, a.colidx + begin + k);
      const __m512d vx =
          _mm512_mask_i32gather_pd(_mm512_setzero_pd(), wide, idx, x, 8);
      sum += _mm512_reduce_add_pd(_mm512_maskz_mul_pd(mask, vals, vx));
    } else {
      for (; k < len; ++k) sum += a.val[begin + k] * x[a.colidx[begin + k]];
    }
    y[i] = sum;
  }
}

}  // namespace

void register_csr_tail_widened_fixture() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kAvx512, csr_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
