#pragma once
// Kestrel Slim: optional compressed side streams for the SpMV formats.
//
// SpMV on large matrices is bandwidth bound, and most of the bytes are the
// per-nonzero streams: an 8-byte value and a 4-byte column index.  Slim
// storage shrinks both without giving up the double-precision interface:
//
//   * idx16 (-mat_index 16): per-segment (row / slice / block row) base
//     column plus 16-bit offsets.  The kernels rebase in-register
//     (vpmovzxwd + vpaddd), so the gather index stream costs 2 B/nnz
//     instead of 4.  Rows whose column span does not fit 16 bits make the
//     whole attach fail (all-or-nothing) and the matrix stays fat.
//   * fp32 (-mat_scalar fp32): a single-precision shadow of the value
//     array.  Kernels widen on load (vcvtps2pd) and accumulate in double,
//     so only the memory traffic is single precision.  ksp::refine_solve
//     wraps fp32 solves in outer double iterative refinement to recover
//     full double accuracy.
//
// The fat arrays are always kept: they stay the source of truth for
// assembly, ABFT checksums and the `spmv_wide` double path the refinement
// outer loop uses.

#include <cstddef>
#include <cstdint>

#include "base/aligned.hpp"
#include "base/types.hpp"

namespace kestrel {
class Options;
}

namespace kestrel::mat {

class Matrix;

/// Requested slim modes, orthogonal to the storage format.
struct SlimOptions {
  bool idx16 = false;  ///< -mat_index 16: base + 16-bit column offsets
  bool fp32 = false;   ///< -mat_scalar fp32: single-precision value stream
  bool any() const { return idx16 || fp32; }
};

/// Parses -mat_index {32|16} and -mat_scalar {fp64|fp32} from an options
/// database; throws OptionsError on any other value.
SlimOptions slim_options_from(const Options& opts);

/// Reads the slim options from `opts` and applies them to `m`.  Returns
/// false when the format declined (e.g. a row's column span overflows 16
/// bits); the matrix then keeps its fat streams and stays fully usable.
bool apply_slim_options(Matrix& m, const Options& opts);

/// Side-stream storage owned by a format instance.  The format decides what
/// the segments are (CSR rows, SELL slices, BCSR block rows) and in which
/// units offsets are stored (BCSR uses scalar columns: offsets and base are
/// pre-multiplied by the block size so the kernel never rescales).
class SlimStore {
 public:
  bool idx16() const { return idx16_; }
  bool fp32() const { return fp32_; }
  bool active() const { return idx16_ || fp32_; }

  /// Drops all side streams and deactivates both modes.
  void clear();

  /// All-or-nothing attach for segment-indexed formats.  `seg` has
  /// `nseg + 1` entries delimiting segments of `colidx`; `scale` converts
  /// index units to x-vector offsets (1 for CSR/SELL, bs for BCSR).
  /// Returns false — leaving the store inactive — when some segment's
  /// scaled column span exceeds 16 bits and idx16 was requested.
  bool attach(const SlimOptions& opts, const Index* seg, Index nseg,
              const Index* colidx, const Scalar* val, std::size_t nvals,
              Index scale);

  /// Value-stream-only attach (Talon: block metadata is already a
  /// compressed index stream, so idx16 is trivially satisfied).
  bool attach_values(const SlimOptions& opts, const Scalar* val,
                     std::size_t nvals);

  /// Re-shadows the fp32 stream after the fat values changed in place
  /// (copy_values_from and friends).  No-op when fp32 is off.
  void refresh_values(const Scalar* val, std::size_t nvals);

  const Index* base() const { return base_.data(); }
  const std::uint16_t* off16() const { return off16_.data(); }
  const float* val32() const { return val32_.data(); }

 private:
  bool try_build_idx16(const Index* seg, Index nseg, const Index* colidx,
                       Index scale);
  void build_val32(const Scalar* val, std::size_t nvals);

  bool idx16_ = false;
  bool fp32_ = false;
  AlignedBuffer<Index> base_;            ///< per-segment base column
  AlignedBuffer<std::uint16_t> off16_;   ///< per-entry offset from base
  AlignedBuffer<float> val32_;           ///< fp32 shadow of the value array
};

}  // namespace kestrel::mat
