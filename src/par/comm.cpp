#include "par/comm.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <exception>
#include <sstream>
#include <thread>

#include "base/error.hpp"
#include "par/checker.hpp"
#include "prof/profiler.hpp"

namespace kestrel::par {

namespace {
// Internal tags for collectives; user tags must be non-negative. Collective
// calls from the same source reuse these tags, and per-(source, tag) FIFO
// ordering keeps successive collectives correctly matched.
constexpr int kTagReduceUp = -1;
constexpr int kTagReduceDown = -2;
constexpr int kTagGatherUp = -3;
constexpr int kTagGatherDown = -4;

Scalar reduce2(Scalar a, Scalar b, Comm::ReduceOp op) {
  switch (op) {
    case Comm::ReduceOp::kSum:
      return a + b;
    case Comm::ReduceOp::kMax:
      return std::max(a, b);
    case Comm::ReduceOp::kMin:
      return std::min(a, b);
  }
  return a;
}

/// Describes a blocked matching-receive for hang reports, translating the
/// internal collective tags back into user-facing operation names.
std::string take_context(int source, int tag) {
  std::ostringstream os;
  switch (tag) {
    case kTagReduceUp:
    case kTagReduceDown:
      os << "allreduce/barrier (source=" << source << ")";
      break;
    case kTagGatherUp:
    case kTagGatherDown:
      os << "allgatherv (source=" << source << ")";
      break;
    default:
      os << "recv(source=" << source << ", tag=" << tag << ")";
      break;
  }
  return os.str();
}

bool env_flag(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return !(v[0] == '0' && v[1] == '\0');
}

}  // namespace

FabricOptions::FabricOptions() {
#if defined(KESTREL_FABRIC_CHECK_DEFAULT)
  constexpr bool kBuildDefault = KESTREL_FABRIC_CHECK_DEFAULT != 0;
#elif defined(NDEBUG)
  constexpr bool kBuildDefault = false;
#else
  constexpr bool kBuildDefault = true;
#endif
  check = env_flag("KESTREL_FABRIC_CHECK", kBuildDefault);
  hang_timeout_s = 30.0;
  if (const char* v = std::getenv("KESTREL_FABRIC_HANG_TIMEOUT")) {
    hang_timeout_s = std::strtod(v, nullptr);
  }
}

// ---- Comm ------------------------------------------------------------

FabricChecker* Comm::checker() const { return fabric_->checker_.get(); }

void Comm::isend(int dest, int tag, const std::vector<Scalar>& data) {
  isend(dest, tag, data.data(), data.size());
}

void Comm::isend(int dest, int tag, const Scalar* data, std::size_t count) {
  KESTREL_CHECK(dest >= 0 && dest < size_, "isend: bad destination rank");
  KESTREL_CHECK(tag >= 0, "isend: user tags must be non-negative");
  if (FabricChecker* chk = checker()) chk->on_isend(rank_, dest, tag);
  // Send-side accounting only, so a message is never counted twice.
  if (prof::enabled()) {
    prof::current().message(1, count * sizeof(Scalar));
  }
  fabric_->deliver(dest, rank_, tag,
                   std::vector<Scalar>(data, data + count));
}

Request Comm::irecv(int source, int tag, std::vector<Scalar>* sink) {
  KESTREL_CHECK(source >= 0 && source < size_, "irecv: bad source rank");
  KESTREL_CHECK(tag >= 0, "irecv: user tags must be non-negative");
  KESTREL_CHECK(sink != nullptr, "irecv: null sink");
  Request req{source, tag, sink, false, 0};
  if (FabricChecker* chk = checker()) {
    req.id = chk->on_irecv_post(rank_, source, tag);
  }
  return req;
}

void Comm::wait(Request& req) {
  // The checker (when attached) reports double-wait and foreign requests
  // with rank/source/tag context and a trace; the plain check below is the
  // always-on release-mode backstop.
  if (FabricChecker* chk = checker()) {
    chk->on_wait(rank_, req.id, req.source, req.tag, req.done);
  }
  KESTREL_CHECK(req.sink != nullptr && !req.done,
                "wait: invalid request (already waited on, or "
                "default-constructed)");
  *req.sink = fabric_->take(rank_, req.source, req.tag);
  req.done = true;
}

std::vector<Scalar> Comm::recv(int source, int tag) {
  KESTREL_CHECK(source >= 0 && source < size_, "recv: bad source rank");
  if (FabricChecker* chk = checker()) chk->on_recv(rank_, source, tag);
  return fabric_->take(rank_, source, tag);
}

Scalar Comm::allreduce(Scalar value, ReduceOp op) {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kAllreduce);
  }
  // Counted at the public entry points only: the _impl bodies move their
  // payloads through fabric_->deliver directly, so nothing double-counts.
  if (prof::enabled()) prof::current().reduction();
  return allreduce_impl(value, op);
}

Scalar Comm::allreduce_impl(Scalar value, ReduceOp op) {
  if (size_ == 1) return value;
  if (rank_ == 0) {
    Scalar acc = value;
    for (int r = 1; r < size_; ++r) {
      acc = reduce2(acc, fabric_->take(0, r, kTagReduceUp)[0], op);
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagReduceDown, {acc});
    }
    return acc;
  }
  fabric_->deliver(0, rank_, kTagReduceUp, {value});
  return fabric_->take(rank_, 0, kTagReduceDown)[0];
}

std::int64_t Comm::allreduce(std::int64_t value, ReduceOp op) {
  // int64 magnitudes used here (counts, sizes) are far below 2^53, so the
  // double payload is exact.
  return static_cast<std::int64_t>(
      allreduce(static_cast<Scalar>(value), op));
}

std::vector<Scalar> Comm::allgatherv(const std::vector<Scalar>& local) {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kAllgatherv);
  }
  if (prof::enabled()) prof::current().reduction();
  return allgatherv_impl(local);
}

std::vector<Scalar> Comm::allgatherv_impl(const std::vector<Scalar>& local) {
  if (size_ == 1) return local;
  if (rank_ == 0) {
    std::vector<Scalar> all = local;
    std::vector<Scalar> sizes(static_cast<std::size_t>(size_), 0.0);
    sizes[0] = static_cast<Scalar>(local.size());
    for (int r = 1; r < size_; ++r) {
      std::vector<Scalar> part = fabric_->take(0, r, kTagGatherUp);
      sizes[static_cast<std::size_t>(r)] = static_cast<Scalar>(part.size());
      all.insert(all.end(), part.begin(), part.end());
    }
    for (int r = 1; r < size_; ++r) {
      fabric_->deliver(r, 0, kTagGatherDown, all);
    }
    return all;
  }
  fabric_->deliver(0, rank_, kTagGatherUp, local);
  return fabric_->take(rank_, 0, kTagGatherDown);
}

std::vector<Index> Comm::allgatherv(const std::vector<Index>& local) {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kAllgatherv);
  }
  if (prof::enabled()) prof::current().reduction();
  std::vector<Scalar> as_scalar(local.begin(), local.end());
  std::vector<Scalar> all = allgatherv_impl(as_scalar);
  std::vector<Index> out(all.size());
  std::transform(all.begin(), all.end(), out.begin(),
                 [](Scalar v) { return static_cast<Index>(v); });
  return out;
}

void Comm::barrier() {
  if (FabricChecker* chk = checker()) {
    chk->on_collective(rank_, FabricEventKind::kBarrier);
  }
  if (prof::enabled()) prof::current().reduction();
  (void)allreduce_impl(Scalar{0}, ReduceOp::kSum);
}

// ---- Fabric ----------------------------------------------------------

Fabric::Fabric(int nranks, const FabricOptions& opts)
    : nranks_(nranks), opts_(opts) {
  if (opts_.check) checker_ = std::make_unique<FabricChecker>(nranks);
  mailboxes_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

Fabric::~Fabric() = default;

void Fabric::deliver(int dest, int source, int tag,
                     std::vector<Scalar> payload) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.queue[{source, tag}].push_back(std::move(payload));
  }
  box.cv.notify_all();
}

std::vector<Scalar> Fabric::take(int self, int source, int tag) {
  Mailbox& box = *mailboxes_[static_cast<std::size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mu);
  const auto key = std::make_pair(source, tag);
  const auto ready = [&] {
    if (aborted_.load(std::memory_order_relaxed)) return true;
    auto it = box.queue.find(key);
    return it != box.queue.end() && !it->second.empty();
  };
  if (checker_ != nullptr && opts_.hang_timeout_s > 0) {
    // Bounded wait: a lost wakeup or a deadlocked peer would otherwise hang
    // this rank forever. On timeout, abort the fabric (so peers unblock)
    // and report who was stuck on what.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(opts_.hang_timeout_s));
    if (!box.cv.wait_until(lock, deadline, ready)) {
      lock.unlock();
      abort_all();
      std::ostringstream os;
      os << "fabric checker: possible lost wakeup or deadlock: rank " << self
         << " blocked in " << take_context(source, tag) << " for more than "
         << opts_.hang_timeout_s << "s\n"
         << checker_->trace(16);
      KESTREL_FAIL(os.str());
    }
  } else {
    box.cv.wait(lock, ready);
  }
  auto it = box.queue.find(key);
  if (it == box.queue.end() || it->second.empty()) {
    KESTREL_FAIL("fabric aborted: a peer rank threw an exception");
  }
  std::vector<Scalar> payload = std::move(it->second.front());
  it->second.pop_front();
  return payload;
}

void Fabric::abort_all() {
  aborted_.store(true, std::memory_order_relaxed);
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mu);
    box->cv.notify_all();
  }
}

void Fabric::run(int nranks, const std::function<void(Comm&)>& fn) {
  run(nranks, FabricOptions{}, fn);
}

void Fabric::run(int nranks, const FabricOptions& opts,
                 const std::function<void(Comm&)>& fn) {
  KESTREL_CHECK(nranks >= 1, "need at least one rank");
  Fabric fabric(nranks, opts);
  if (nranks == 1) {
    // Every rank — including the calling thread here — profiles into its
    // own stack-local instance, never the shared global: library code
    // instrumented with prof::current() is race-free on the fabric by
    // construction. Rank profilers die with the rank, so reduction and
    // export (prof::export_all) must happen inside fn.
    prof::Profiler rank_prof;
    prof::AttachGuard guard(&rank_prof);
    Comm comm(&fabric, 0, 1);
    fn(comm);
    // Un-waited requests are a bug even on one rank: the message (from a
    // self-send) would be silently dropped.
    if (fabric.checker_) fabric.checker_->on_rank_exit(0);
    return;
  }
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    threads.emplace_back([&, r] {
      try {
        prof::Profiler rank_prof;
        prof::AttachGuard guard(&rank_prof);
        Comm comm(&fabric, r, nranks);
        fn(comm);
        // Only on a normal return: after an abort, dangling requests on
        // surviving ranks are expected, not a bug.
        if (fabric.checker_ && !fabric.aborted_.load()) {
          fabric.checker_->on_rank_exit(r);
        }
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        int expected = -1;
        fabric.first_failed_rank_.compare_exchange_strong(expected, r);
        fabric.abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root-cause exception (the first rank that failed), not a
  // secondary "fabric aborted" error from a rank that was merely unblocked.
  const int first = fabric.first_failed_rank_.load();
  if (first >= 0) std::rethrow_exception(errors[static_cast<std::size_t>(first)]);
}

}  // namespace kestrel::par
