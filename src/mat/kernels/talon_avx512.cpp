// AVX-512 Talon SpMV. The block's columns are consecutive, so x is read
// with ONE unmasked vector load per block (edge-masked at the matrix
// boundary) instead of a gather, and the packed values are expanded into
// the mask's lanes with vpexpandpd (_mm512_maskz_expandloadu_pd) — the
// core trick of the SPC5 beta(r,c) kernels. The value pointer advances by
// popcount(mask) per row, so no zero padding is ever stored or multiplied.
// The panel body is specialized on the compile-time height R so the R
// accumulators live in registers and the row loop fully unrolls.

#include <immintrin.h>

#include <bit>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon isa=avx512

namespace kestrel::mat::kernels {

namespace {

template <int R, bool Add>
void talon_panel_avx512(const TalonView& a, Index p, const Scalar* x,
                        Scalar* y) {
  const Index row0 = a.panel_row[p];
  const Scalar* v = a.val + a.panel_valptr[p];
  __m512d acc[R];
  for (int j = 0; j < R; ++j) acc[j] = _mm512_setzero_pd();
  for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
    const Index c0 = a.block_col[b];
    const std::uint32_t mask = a.block_mask[b];
    // One contiguous load of x covers the whole block; mask the tail off
    // at the right matrix edge so no out-of-bounds lane is touched.
    __m512d xv;
    if (c0 + kZmmDoubles <= a.n) {
      xv = _mm512_loadu_pd(x + c0);
    } else {
      const auto edge = static_cast<__mmask8>(
          (1u << static_cast<unsigned>(a.n - c0)) - 1u);
      xv = _mm512_maskz_loadu_pd(edge, x + c0);
    }
    for (int j = 0; j < R; ++j) {
      const auto mj = static_cast<__mmask8>(
          (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu);
      const __m512d vals = _mm512_maskz_expandloadu_pd(mj, v);
      // mask3 keeps lanes outside mj untouched, so an Inf/NaN in an
      // uncovered x lane can never leak into the accumulator.
      acc[j] = _mm512_mask3_fmadd_pd(vals, xv, acc[j], mj);
      v += std::popcount(static_cast<unsigned>(mj));
    }
  }
  for (int j = 0; j < R; ++j) {
    const Scalar sum = _mm512_reduce_add_pd(acc[j]);
    if constexpr (Add) {
      y[row0 + j] += sum;
    } else {
      y[row0 + j] = sum;
    }
  }
}

template <bool Add>
void talon_spmv_avx512_impl(const TalonView& a, const Scalar* x, Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    switch (a.panel_row[p + 1] - a.panel_row[p]) {
      case 1:
        talon_panel_avx512<1, Add>(a, p, x, y);
        break;
      case 2:
        talon_panel_avx512<2, Add>(a, p, x, y);
        break;
      default:
        talon_panel_avx512<4, Add>(a, p, x, y);
        break;
    }
  }
}

// argus-kernel: talon_spmv_avx512
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon
void talon_spmv_avx512(const TalonView& a, const Scalar* x, Scalar* y) {
  talon_spmv_avx512_impl<false>(a, x, y);
}
// argus-kernel: talon_spmv_add_avx512
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon
void talon_spmv_add_avx512(const TalonView& a, const Scalar* x, Scalar* y) {
  talon_spmv_avx512_impl<true>(a, x, y);
}

}  // namespace

void register_talon_avx512() {
  KESTREL_REGISTER_KERNEL(kTalonSpmv, kAvx512, talon_spmv_avx512);
  KESTREL_REGISTER_KERNEL(kTalonSpmvAdd, kAvx512, talon_spmv_add_avx512);
}

}  // namespace kestrel::mat::kernels
