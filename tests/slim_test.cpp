// Kestrel Slim correctness battery: the compressed index / mixed-precision
// value streams of every format, differentially checked against the
// double/int32 scalar CSR reference.
//
//   1. Differential sweep — every format x every supported ISA tier x
//      every slim mode {idx16, fp32, idx16+fp32} over the adversarial
//      sparsity family (empty rows, boundary-straddling runs, a dense row,
//      rectangular shapes, ...). fp32 cells compare against a reference
//      whose values went through the same float rounding, so the check is
//      tight (1e-11), not a sloppy epsilon.
//   2. Attach semantics — all-or-nothing idx16 decline on wide-span rows
//      (including the paper's periodic Gray-Scott Jacobian), fp32-only
//      fallback, traffic-model monotonicity, wide-vs-slim multiply split.
//   3. Flock invariance — the slim SpMV is bitwise identical across pool
//      thread counts (row partitions never split a row's accumulation).
//   4. Refinement — with fp32 streams a plain Krylov solve stalls at
//      single-precision accuracy; ksp::refine_solve reaches the double
//      tolerance through outer wide-residual correction.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "app/gray_scott.hpp"
#include "base/options.hpp"
#include "base/rng.hpp"
#include "ksp/context.hpp"
#include "ksp/ksp.hpp"
#include "ksp/refine.hpp"
#include "mat/bcsr.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/slim.hpp"
#include "mat/talon.hpp"
#include "simd/isa.hpp"
#include "test_matrices.hpp"
#include "vec/vector.hpp"

namespace kestrel::mat {
namespace {

using testing::random_x;

struct Pattern {
  std::string name;
  std::function<Csr()> make;
};

std::vector<Pattern> patterns() {
  return {
      {"banded5", [] { return testing::banded(97, {-3, -1, 1, 3}); }},
      {"banded_wide", [] { return testing::banded(64, {-8, -4, 4, 8}); }},
      {"uniform_rect", [] { return testing::uniform_random(50, 90, 6); }},
      {"power_law", [] { return testing::power_law(100); }},
      {"empty_rows", [] { return testing::with_empty_rows(60); }},
      {"dense_row", [] { return testing::with_dense_row(40); }},
      {"single_col", [] { return testing::single_column(40); }},
      {"last_row_col", [] { return testing::last_row_only_column(37); }},
      {"straddle", [] { return testing::straddling_boundaries(50); }},
      {"row_len_sweep",
       [] {
         // rows of every length 0..16: all remainder paths of the slim
         // unpack (masked u16 loads, full 8-lane multiples, mixed)
         Coo coo(17, 17);
         for (Index i = 0; i < 17; ++i) {
           for (Index j = 0; j < i; ++j) coo.add(i, j, 0.5 + i + j);
         }
         return coo.to_csr();
       }},
  };
}

std::vector<simd::IsaTier> supported_tiers() {
  std::vector<simd::IsaTier> tiers;
  for (int t = 0; t <= static_cast<int>(simd::detect_best_tier()); ++t) {
    tiers.push_back(static_cast<simd::IsaTier>(t));
  }
  return tiers;
}

std::vector<SlimOptions> slim_modes() {
  return {{true, false}, {false, true}, {true, true}};
}

std::string mode_name(const SlimOptions& o) {
  return std::string(o.idx16 ? "idx16" : "") +
         (o.fp32 ? (o.idx16 ? "+fp32" : "fp32") : "");
}

/// Scalar reference product. When `fp32` is set the values go through the
/// same float rounding the slim value stream applies, with the
/// accumulation still in double — exactly the slim kernels' contract.
std::vector<Scalar> reference_spmv(const Csr& a,
                                   const std::vector<Scalar>& x, bool fp32) {
  std::vector<Scalar> y(static_cast<std::size_t>(a.rows()), 0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    Scalar sum = 0.0;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Scalar v =
          fp32 ? static_cast<Scalar>(static_cast<float>(vals[k])) : vals[k];
      sum += v * x[static_cast<std::size_t>(cols[k])];
    }
    y[static_cast<std::size_t>(i)] = sum;
  }
  return y;
}

std::vector<std::pair<std::string, std::shared_ptr<Matrix>>> format_table(
    const Csr& csr) {
  // BCSR needs dimensions divisible by the block size; drop to 1x1 blocks
  // on odd shapes so every pattern still exercises its slim path (the
  // u16 offsets are then in plain column units, scale == 1).
  const Index bs = csr.rows() % 2 == 0 && csr.cols() % 2 == 0 ? 2 : 1;
  return {{"csr", std::make_shared<Csr>(csr)},
          {"csrperm", std::make_shared<CsrPerm>(Csr(csr))},
          {"sell", std::make_shared<Sell>(csr)},
          {"bcsr", std::make_shared<Bcsr>(csr, bs)},
          {"talon", std::make_shared<Talon>(csr)}};
}

void expect_matches(const Matrix& m, const Csr& csr, bool fp32,
                    const std::string& context) {
  const auto x = random_x(csr.cols(), 123);
  const auto expect = reference_spmv(csr, x, fp32);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  Vector yv(csr.rows(), -7.0);  // poison to catch unwritten rows
  m.spmv(xv, yv);
  for (Index i = 0; i < csr.rows(); ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-11)
        << context << " row " << i;
  }
}

/// Sets -threads for the scope and restores the previous value on exit.
class ThreadScope {
 public:
  explicit ThreadScope(int t)
      : saved_(Options::global().get_string("threads", "")) {
    Options::global().set("threads", std::to_string(t));
  }
  ~ThreadScope() {
    Options::global().set("threads", saved_.empty() ? "1" : saved_);
  }

 private:
  std::string saved_;
};

// 1. Differential sweep ----------------------------------------------------

TEST(SlimSweep, EveryFormatTierModeMatchesScalarOracle) {
  for (const Pattern& p : patterns()) {
    const Csr csr = p.make();
    for (const SlimOptions& mode : slim_modes()) {
      for (auto& [fname, m] : format_table(csr)) {
        // Talon's block metadata is already compressed; idx16 alone is a
        // accepted no-op there (nothing to slim), fp32 must still engage.
        ASSERT_TRUE(m->set_slim(mode))
            << p.name << " " << fname << " " << mode_name(mode);
        if (fname == "talon" && !mode.fp32) {
          EXPECT_FALSE(m->slim_active());
        } else {
          EXPECT_TRUE(m->slim_active());
        }
        for (simd::IsaTier tier : supported_tiers()) {
          m->set_tier(tier);
          expect_matches(*m, csr, mode.fp32,
                         p.name + "/" + fname + "/" + mode_name(mode) + "/" +
                             simd::tier_name(tier));
        }
      }
    }
  }
}

TEST(SlimSweep, WideMultiplyStaysDoubleWhileSlimIsActive) {
  const Csr csr = testing::banded(80, {-5, -1, 1, 5});
  for (auto& [fname, m] : format_table(csr)) {
    ASSERT_TRUE(m->set_slim({true, true})) << fname;
    const auto x = random_x(csr.cols(), 77);
    Vector xv(csr.cols());
    for (Index i = 0; i < csr.cols(); ++i) {
      xv[i] = x[static_cast<std::size_t>(i)];
    }
    Vector yw(csr.rows(), 0.0);
    m->spmv_wide(xv.data(), yw.data());
    const auto wide = reference_spmv(csr, x, /*fp32=*/false);
    for (Index i = 0; i < csr.rows(); ++i) {
      EXPECT_NEAR(yw[i], wide[static_cast<std::size_t>(i)], 1e-11)
          << fname << " wide row " << i;
    }
  }
}

// 2. Attach semantics ------------------------------------------------------

TEST(SlimAttach, WideColumnSpanDeclinesIdx16AllOrNothing) {
  // One row spans 70000 columns: past the 65535 offset ceiling.
  Coo coo(4, 70000);
  coo.add(0, 0, 1.0);
  coo.add(0, 69999, 2.0);
  coo.add(1, 5, 3.0);
  coo.add(3, 69000, 4.0);
  const Csr wide = coo.to_csr();
  for (auto& [fname, m] : format_table(wide)) {
    const bool is_talon = fname == "talon";
    const bool ok = m->set_slim({true, false});
    // Talon has no u16 offset stream, so it cannot decline; every
    // segment-indexed format must refuse and stay fully fat.
    EXPECT_EQ(ok, is_talon) << fname;
    if (!ok) {
      EXPECT_FALSE(m->slim_active()) << fname;
    }
    expect_matches(*m, wide, /*fp32=*/false, fname + "/declined");
    // fp32 has no span constraint: the value-only attach must succeed.
    EXPECT_TRUE(m->set_slim({false, true})) << fname;
    EXPECT_TRUE(m->slim_active()) << fname;
    expect_matches(*m, wide, /*fp32=*/true, fname + "/fp32-after-decline");
  }
}

TEST(SlimAttach, PeriodicGrayScottJacobianDeclinesIdx16) {
  // The paper's operator is periodic: wrap rows span (n-1)*n*2 columns,
  // which overflows 16 bits for n >= 182. Pinning this keeps the
  // all-or-nothing contract honest on a real matrix (bench_slim documents
  // why its gate matrix is a plain band instead).
  app::GrayScott gs(192);
  Vector u;
  gs.initial_condition(u);
  const Csr j = gs.rhs_jacobian(u);
  Csr a(j);
  EXPECT_FALSE(a.set_slim({true, false}));
  EXPECT_FALSE(a.slim_active());
  EXPECT_TRUE(a.set_slim({false, true}));  // fp32 still fine
  EXPECT_TRUE(a.slim_active());
}

TEST(SlimAttach, TrafficModelShrinksWithEachStream) {
  const Csr csr = testing::banded(200, {-7, -2, 2, 7});
  for (auto& [fname, m] : format_table(csr)) {
    const std::size_t fat = m->spmv_traffic_bytes();
    ASSERT_TRUE(m->set_slim({false, true})) << fname;
    const std::size_t fp32 = m->spmv_traffic_bytes();
    EXPECT_LT(fp32, fat) << fname;
    ASSERT_TRUE(m->set_slim({true, true})) << fname;
    const std::size_t slim = m->spmv_traffic_bytes();
    // Talon's idx16 is a no-op, so equality is correct there.
    if (fname == "talon") {
      EXPECT_EQ(slim, fp32) << fname;
    } else {
      EXPECT_LT(slim, fp32) << fname;
    }
    ASSERT_TRUE(m->set_slim({false, false})) << fname;
    EXPECT_FALSE(m->slim_active()) << fname;
    EXPECT_EQ(m->spmv_traffic_bytes(), fat) << fname;
  }
}

// 3. Flock invariance ------------------------------------------------------

TEST(SlimFlock, ThreadCountNeverChangesSlimResults) {
  const Csr csr = testing::power_law(160);
  const auto x = random_x(csr.cols(), 31);
  Vector xv(csr.cols());
  for (Index i = 0; i < csr.cols(); ++i) {
    xv[i] = x[static_cast<std::size_t>(i)];
  }
  for (auto& [fname, m] : format_table(csr)) {
    ASSERT_TRUE(m->set_slim({true, true})) << fname;
    Vector serial(csr.rows(), 0.0);
    {
      ThreadScope one(1);
      m->repartition(1);
      m->spmv(xv, serial);
    }
    for (int t : {2, 4, 7}) {
      ThreadScope scope(t);
      m->repartition(t);
      Vector yt(csr.rows(), -3.0);
      m->spmv(xv, yt);
      for (Index i = 0; i < csr.rows(); ++i) {
        // Bitwise: partitions split between rows, never inside one, so
        // each row's accumulation order is identical at any thread count.
        EXPECT_EQ(yt[i], serial[i]) << fname << " t=" << t << " row " << i;
      }
    }
    m->repartition(1);
  }
}

// 4. Refinement ------------------------------------------------------------

/// Symmetric diagonally-dominant (hence SPD) banded matrix whose entries
/// are random doubles — NOT float-representable. That matters: the
/// Dirichlet Laplacian's entries are integers, float rounds them exactly,
/// and an "fp32" solve on it would secretly be a double solve.
Csr spd_inexact(Index n, std::uint64_t seed = 21) {
  Rng rng(seed);
  Coo coo(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index off : {Index{1}, Index{3}}) {
      if (i + off < n) {
        const Scalar v = -0.3 * (1.0 + rng.next_double());
        coo.add(i, i + off, v);
        coo.add(i + off, i, v);
      }
    }
    coo.add(i, i, 3.0 + rng.next_double());
  }
  return coo.to_csr();
}

TEST(SlimRefine, Fp32SolveStallsButRefinementReachesDoubleTolerance) {
  Csr a = spd_inexact(2000);
  ASSERT_TRUE(a.set_slim({true, true}));

  Vector b(a.rows());
  const auto rhs = random_x(a.rows(), 55);
  for (Index i = 0; i < a.rows(); ++i) {
    b[i] = rhs[static_cast<std::size_t>(i)];
  }
  const Scalar bnorm = b.norm2();

  // A plain Krylov solve through the slim operator cannot reach 1e-10:
  // its TRUE (wide) residual floors near fp32 rounding, whatever the
  // recurrence residual claims.
  auto true_residual = [&](const Vector& x) {
    Vector r(a.rows());
    a.spmv_wide(x.data(), r.data());
    r.axpy(-1.0, b);  // r = A x - b; norm is what matters
    return r.norm2();
  };
  {
    ksp::Settings s;
    s.rtol = 1e-12;
    s.max_iterations = 2000;
    ksp::SeqContext ctx(a);
    Vector x(a.rows(), 0.0);
    ksp::make_solver("cg", s)->solve(ctx, b, x);
    EXPECT_GT(true_residual(x), 1e-10 * bnorm)
        << "fp32 streams should not reach double accuracy unaided";
  }

  const Scalar rtol = 1e-10;
  ksp::RefineSettings rs;
  rs.rtol = rtol;
  Vector x(a.rows(), 0.0);
  const ksp::RefineResult res = ksp::refine_solve(a, b, x, rs);
  EXPECT_TRUE(res.converged);
  EXPECT_GE(res.outer_iterations, 2)
      << "a single loose inner solve cannot gain 10 digits";
  EXPECT_LE(res.residual_norm, rtol * bnorm);
  // Independent check, not trusting the reported norm.
  EXPECT_LE(true_residual(x), 1.1 * rtol * bnorm);
  EXPECT_EQ(res.abft_trips, 0);
}

}  // namespace
}  // namespace kestrel::mat
