#include "pc/ilu0_level.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace kestrel::pc {

Ilu0Level::Ilu0Level(const mat::Csr& a) : lu_(a) {
  KESTREL_CHECK(a.rows() == a.cols(), "ilu0-level: matrix must be square");
  const Index n = lu_.rows();
  const Index* rowptr = lu_.rowptr();
  const Index* colidx = lu_.colidx();
  Scalar* val = lu_.mutable_val();

  diag_pos_.assign(static_cast<std::size_t>(n), -1);
  for (Index i = 0; i < n; ++i) {
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      if (colidx[k] == i) {
        diag_pos_[static_cast<std::size_t>(i)] = k;
        break;
      }
    }
    KESTREL_CHECK(diag_pos_[static_cast<std::size_t>(i)] >= 0,
                  "ilu0-level: missing structural diagonal");
  }

  // same IKJ pattern-restricted elimination as pc::Ilu0
  std::vector<Index> pos(static_cast<std::size_t>(n), -1);
  for (Index i = 0; i < n; ++i) {
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      pos[static_cast<std::size_t>(colidx[k])] = k;
    }
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const Index j = colidx[k];
      if (j >= i) break;
      const Scalar piv = val[diag_pos_[static_cast<std::size_t>(j)]];
      KESTREL_CHECK(piv != 0.0, "ilu0-level: zero pivot");
      const Scalar lij = val[k] / piv;
      val[k] = lij;
      for (Index kk = diag_pos_[static_cast<std::size_t>(j)] + 1;
           kk < rowptr[j + 1]; ++kk) {
        const Index p = pos[static_cast<std::size_t>(colidx[kk])];
        if (p >= 0) val[p] -= lij * val[kk];
      }
    }
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      pos[static_cast<std::size_t>(colidx[k])] = -1;
    }
    KESTREL_CHECK(val[diag_pos_[static_cast<std::size_t>(i)]] != 0.0,
                  "ilu0-level: zero pivot");
  }

  build_schedules();
}

void Ilu0Level::build_schedules() {
  const Index n = lu_.rows();
  const Index* rowptr = lu_.rowptr();
  const Index* colidx = lu_.colidx();

  // Lower solve: level(i) = 1 + max level over strictly-lower neighbors.
  std::vector<Index> level(static_cast<std::size_t>(n), 0);
  Index max_level = 0;
  for (Index i = 0; i < n; ++i) {
    Index lvl = 0;
    for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
      const Index j = colidx[k];
      if (j >= i) break;
      lvl = std::max(lvl, level[static_cast<std::size_t>(j)] + 1);
    }
    level[static_cast<std::size_t>(i)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  lower_level_ptr_.assign(static_cast<std::size_t>(max_level) + 2, 0);
  for (Index i = 0; i < n; ++i) {
    lower_level_ptr_[static_cast<std::size_t>(level[i]) + 1]++;
  }
  for (std::size_t l = 1; l < lower_level_ptr_.size(); ++l) {
    lower_level_ptr_[l] += lower_level_ptr_[l - 1];
  }
  lower_rows_.resize(static_cast<std::size_t>(n));
  {
    std::vector<Index> next(lower_level_ptr_.begin(),
                            lower_level_ptr_.end() - 1);
    for (Index i = 0; i < n; ++i) {
      lower_rows_[static_cast<std::size_t>(
          next[static_cast<std::size_t>(level[i])]++)] = i;
    }
  }

  // Upper solve: dependencies run the other way (row i needs j > i).
  std::fill(level.begin(), level.end(), Index{0});
  max_level = 0;
  for (Index i = n - 1; i >= 0; --i) {
    Index lvl = 0;
    for (Index k = rowptr[i + 1] - 1; k >= rowptr[i]; --k) {
      const Index j = colidx[k];
      if (j <= i) break;
      lvl = std::max(lvl, level[static_cast<std::size_t>(j)] + 1);
    }
    level[static_cast<std::size_t>(i)] = lvl;
    max_level = std::max(max_level, lvl);
  }
  upper_level_ptr_.assign(static_cast<std::size_t>(max_level) + 2, 0);
  for (Index i = 0; i < n; ++i) {
    upper_level_ptr_[static_cast<std::size_t>(level[i]) + 1]++;
  }
  for (std::size_t l = 1; l < upper_level_ptr_.size(); ++l) {
    upper_level_ptr_[l] += upper_level_ptr_[l - 1];
  }
  upper_rows_.resize(static_cast<std::size_t>(n));
  {
    std::vector<Index> next(upper_level_ptr_.begin(),
                            upper_level_ptr_.end() - 1);
    for (Index i = 0; i < n; ++i) {
      upper_rows_[static_cast<std::size_t>(
          next[static_cast<std::size_t>(level[i])]++)] = i;
    }
  }
}

std::vector<Index> Ilu0Level::lower_level(int l) const {
  return {lower_rows_.begin() + lower_level_ptr_[static_cast<std::size_t>(l)],
          lower_rows_.begin() +
              lower_level_ptr_[static_cast<std::size_t>(l) + 1]};
}

std::vector<Index> Ilu0Level::upper_level(int l) const {
  return {upper_rows_.begin() + upper_level_ptr_[static_cast<std::size_t>(l)],
          upper_rows_.begin() +
              upper_level_ptr_[static_cast<std::size_t>(l) + 1]};
}

void Ilu0Level::apply(const Vector& r, Vector& z) const {
  const Index n = lu_.rows();
  KESTREL_CHECK(r.size() == n, "ilu0-level: size mismatch");
  z.resize(n);
  const Index* rowptr = lu_.rowptr();
  const Index* colidx = lu_.colidx();
  const Scalar* val = lu_.val();

  // forward: all rows of a level are independent of each other
  for (std::size_t l = 0; l + 1 < lower_level_ptr_.size(); ++l) {
    const Index lb = lower_level_ptr_[l];
    const Index le = lower_level_ptr_[l + 1];
    for (Index p = lb; p < le; ++p) {
      const Index i = lower_rows_[static_cast<std::size_t>(p)];
      Scalar sum = r[i];
      for (Index k = rowptr[i]; k < rowptr[i + 1]; ++k) {
        const Index j = colidx[k];
        if (j >= i) break;
        sum -= val[k] * z[j];
      }
      z[i] = sum;
    }
  }
  // backward
  for (std::size_t l = 0; l + 1 < upper_level_ptr_.size(); ++l) {
    const Index ub = upper_level_ptr_[l];
    const Index ue = upper_level_ptr_[l + 1];
    for (Index p = ub; p < ue; ++p) {
      const Index i = upper_rows_[static_cast<std::size_t>(p)];
      Scalar sum = z[i];
      const Index dp = diag_pos_[static_cast<std::size_t>(i)];
      for (Index k = dp + 1; k < rowptr[i + 1]; ++k) {
        sum -= val[k] * z[colidx[k]];
      }
      z[i] = sum / val[dp];
    }
  }
}

}  // namespace kestrel::pc
