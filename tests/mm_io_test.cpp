// Matrix Market I/O tests, including a property-based round-trip fuzz
// sweep (general and symmetric files, comment/whitespace/CRLF noise) and
// graceful-error checks on truncated or corrupt inputs.

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <tuple>
#include <utility>
#include <vector>

#include "base/budget.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "mat/coo.hpp"
#include "mat/mm_io.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

void expect_same_matrix(const Csr& a, const Csr& b) {
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.cols(), a.cols());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    const auto c1 = a.row_cols(i);
    const auto c2 = b.row_cols(i);
    ASSERT_EQ(c1.size(), c2.size()) << "row " << i;
    for (std::size_t k = 0; k < c1.size(); ++k) {
      EXPECT_EQ(c1[k], c2[k]) << "row " << i;
      EXPECT_DOUBLE_EQ(a.row_vals(i)[k], b.row_vals(i)[k]) << "row " << i;
    }
  }
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const Csr a = testing::uniform_random(9, 7, 3, 8);
  std::stringstream ss;
  write_matrix_market(a, ss);
  const Csr b = read_matrix_market(ss);
  ASSERT_EQ(b.rows(), a.rows());
  ASSERT_EQ(b.cols(), a.cols());
  ASSERT_EQ(b.nnz(), a.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(b.at(i, j), a.at(i, j), 1e-15);
    }
  }
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real symmetric\n"
     << "% a comment line\n"
     << "3 3 3\n"
     << "1 1 2.0\n"
     << "2 1 -1.0\n"
     << "3 3 5.0\n";
  const Csr a = read_matrix_market(ss);
  EXPECT_EQ(a.nnz(), 4);  // off-diagonal entry mirrored
  EXPECT_DOUBLE_EQ(a.at(0, 1), -1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), -1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 2), 5.0);
}

TEST(MatrixMarket, PatternFieldDefaultsToOne) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate pattern general\n"
     << "2 2 2\n"
     << "1 2\n"
     << "2 1\n";
  const Csr a = read_matrix_market(ss);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.at(1, 0), 1.0);
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss;
  ss << "%%NotMatrixMarket matrix coordinate real general\n2 2 0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsOutOfRangeEntries) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 1\n"
     << "3 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsTruncatedData) {
  std::stringstream ss;
  ss << "%%MatrixMarket matrix coordinate real general\n"
     << "2 2 2\n"
     << "1 1 1.0\n";
  EXPECT_THROW(read_matrix_market(ss), Error);
}

// ---- property-based fuzz sweeps -----------------------------------------

TEST(MatrixMarket, FuzzGeneralRoundTripIsExact) {
  // write() emits 17 significant digits, so a write/read cycle must
  // reproduce every double bit-exactly on arbitrary random matrices.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(1000 + seed);
    const Index m = 1 + rng.next_index(30);
    const Index n = 1 + rng.next_index(30);
    const Index per_row = 1 + rng.next_index(4);
    const Csr a = testing::uniform_random(m, n, per_row, 40 + seed);
    std::stringstream ss;
    write_matrix_market(a, ss);
    const Csr b = read_matrix_market(ss);
    expect_same_matrix(a, b);
  }
}

TEST(MatrixMarket, FuzzSymmetricWithCommentAndWhitespaceNoise) {
  // Hand-built symmetric files laced with the junk real-world .mtx files
  // contain: CRLF endings, tab separators, leading spaces, blank lines,
  // and stray comment lines between data records.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(2000 + seed);
    const Index n = 2 + rng.next_index(20);
    Coo full(n, n);
    std::vector<std::tuple<Index, Index, double>> lower;
    std::set<std::pair<Index, Index>> used;
    const Index tries = 2 * n;
    for (Index t = 0; t < tries; ++t) {
      Index i = rng.next_index(n);
      Index j = rng.next_index(n);
      if (i < j) std::swap(i, j);
      if (!used.insert({i, j}).second) continue;
      const double v = rng.uniform(-2.0, 2.0);
      full.add(i, j, v);
      if (i != j) full.add(j, i, v);
      lower.emplace_back(i, j, v);
    }
    if (lower.empty()) {
      full.add(0, 0, 1.0);
      lower.emplace_back(0, 0, 1.0);
    }

    std::stringstream ss;
    ss.precision(17);
    ss << "%%MatrixMarket matrix coordinate real symmetric\r\n"
       << "% generator noise\n"
       << "\n"
       << "   \t \n"
       << "  " << n << " " << n << " " << lower.size() << " \r\n";
    std::size_t c = 0;
    for (const auto& [i, j, v] : lower) {
      if (c % 3 == 0) ss << "% interleaved comment\r\n";
      if (c % 4 == 1) ss << "\n";
      ss << "  " << (i + 1) << "\t" << (j + 1) << "   " << v << "\r\n";
      ++c;
    }
    const Csr b = read_matrix_market(ss);
    expect_same_matrix(full.to_csr(), b);
  }
}

// ---- graceful errors on truncated / corrupt inputs ----------------------

TEST(MatrixMarket, RejectsTruncatedOrCorruptHeaders) {
  for (const char* text : {
           "",                                                  // empty
           "%%MatrixMarket\n",                                  // banner only
           "%%MatrixMarket matrix coordinate\n2 2 0\n",         // no field
           "%%MatrixMarket matrix array real general\n2 2 0\n",      // dense
           "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
           "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
           "%%MatrixMarket vector coordinate real general\n1 1 0\n",
       }) {
    std::stringstream ss(text);
    EXPECT_THROW(read_matrix_market(ss), Error) << "input: " << text;
  }
}

TEST(MatrixMarket, RejectsMissingOrMalformedSizeLine) {
  for (const char* text : {
           "%%MatrixMarket matrix coordinate real general\n",  // EOF
           "%%MatrixMarket matrix coordinate real general\n% only comments\n",
           "%%MatrixMarket matrix coordinate real general\nrows cols nnz\n",
           "%%MatrixMarket matrix coordinate real general\n-2 2 1\n1 1 1\n",
           "%%MatrixMarket matrix coordinate real general\n2 2 -1\n",
       }) {
    std::stringstream ss(text);
    EXPECT_THROW(read_matrix_market(ss), Error) << "input: " << text;
  }
}

TEST(MatrixMarket, RejectsMalformedEntries) {
  for (const char* entry : {"1\n", "1 x 1.0\n", "1 2 pi\n", "0 1 1.0\n"}) {
    std::stringstream ss;
    ss << "%%MatrixMarket matrix coordinate real general\n2 2 1\n" << entry;
    EXPECT_THROW(read_matrix_market(ss), Error) << "entry: " << entry;
  }
}

TEST(MatrixMarket, FileRoundTrip) {
  const Csr a = testing::banded(6, {-1, 1});
  const std::string path = ::testing::TempDir() + "/kestrel_mm_test.mtx";
  write_matrix_market_file(a, path);
  const Csr b = read_matrix_market_file(path);
  EXPECT_EQ(b.nnz(), a.nnz());
}

TEST(MatrixMarket, MissingFileThrows) {
  EXPECT_THROW(read_matrix_market_file("/nonexistent/x.mtx"), Error);
}

// The nnz overflow satellites: a size line whose entry count cannot form a
// valid Index-addressed CSR must fail with the structured error BEFORE the
// reader reserves memory or parses billions of entries — not wrap int32.

TEST(MatrixMarket, OverflowingNonzeroCountIsStructuredError) {
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "1000 1000 3000000000\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected IndexOverflowError";
  } catch (const IndexOverflowError& e) {
    EXPECT_EQ(e.count(), 3000000000LL);
    EXPECT_GT(e.count(), IndexOverflowError::ceiling());
  }
}

TEST(MatrixMarket, OverflowingDimensionIsStructuredError) {
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "3000000000 10 1\n");
  EXPECT_THROW(read_matrix_market(ss), IndexOverflowError);
}

TEST(MatrixMarket, SymmetricDoublingCountsTowardTheCeiling) {
  // 1.2e9 declared entries fit an Index, but symmetric expansion stores
  // twice that; the doubled count is what must be checked.
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "2000000000 2000000000 1200000000\n");
  EXPECT_THROW(read_matrix_market(ss), IndexOverflowError);
}

// Kestrel Bastion satellite: with a service memory budget configured, an
// oversized header declines with a structured BudgetError before the COO
// staging arrays are touched — never bad_alloc mid-read.

TEST(MatrixMarket, HugeHeaderDeclinesWithBudgetErrorUnderBudget) {
  BudgetLimitGuard limit(MemoryBudget::global(), 64ull << 20);  // 64 MB
  // A fabricated 10^12-nnz header: ~16 TB of COO staging. Must be the
  // budget's structured "no", not IndexOverflowError or bad_alloc.
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "1000000 1000000 1000000000000\n");
  try {
    read_matrix_market(ss);
    FAIL() << "expected BudgetError";
  } catch (const BudgetError& e) {
    EXPECT_EQ(e.limit_bytes(), 64ull << 20);
    EXPECT_GE(e.requested_bytes(),
              1000000000000ull * (2 * sizeof(Index) + sizeof(Scalar)));
  }
}

TEST(MatrixMarket, ModestFileStillReadsUnderBudget) {
  BudgetLimitGuard limit(MemoryBudget::global(), 64ull << 20);
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 4.0\n"
      "2 2 5.0\n");
  const Csr a = read_matrix_market(ss);
  EXPECT_EQ(a.rows(), 2);
  EXPECT_EQ(a.nnz(), 2);
}

TEST(MatrixMarket, NoBudgetConfiguredKeepsOverflowBehaviour) {
  // Limit 0 (the default) disables enforcement: the 10^12 header still
  // fails, but through the pre-existing Index-overflow path.
  ASSERT_EQ(MemoryBudget::global().limit_bytes(), 0u);
  std::istringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "1000000 1000000 1000000000000\n");
  EXPECT_THROW(read_matrix_market(ss), IndexOverflowError);
}

}  // namespace
}  // namespace kestrel::mat
