#include "simd/isa.hpp"

#include <algorithm>
#include <cctype>

#include "base/error.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace kestrel::simd {

namespace {

#if defined(__x86_64__) || defined(__i386__)
struct CpuidResult {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
};

CpuidResult cpuid_count(unsigned leaf, unsigned subleaf) {
  CpuidResult r;
  __cpuid_count(leaf, subleaf, r.eax, r.ebx, r.ecx, r.edx);
  return r;
}

bool os_saves_zmm() {
  // XGETBV: check OS enabled XMM(1), YMM(2), and opmask/zmm-high (5..7)
  const CpuidResult leaf1 = cpuid_count(1, 0);
  const bool osxsave = ((leaf1.ecx >> 27) & 1u) != 0;
  if (!osxsave) return false;
  unsigned lo, hi;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  const unsigned need = 0xE6;  // bits 1,2,5,6,7
  return (lo & need) == need;
}

bool os_saves_ymm() {
  const CpuidResult leaf1 = cpuid_count(1, 0);
  const bool osxsave = ((leaf1.ecx >> 27) & 1u) != 0;
  if (!osxsave) return false;
  unsigned lo, hi;
  __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  const unsigned need = 0x6;  // bits 1,2
  return (lo & need) == need;
}

IsaTier detect_impl() {
  const CpuidResult leaf1 = cpuid_count(1, 0);
  const bool avx = ((leaf1.ecx >> 28) & 1u) != 0 && os_saves_ymm();
  if (!avx) return IsaTier::kScalar;

  const CpuidResult leaf7 = cpuid_count(7, 0);
  const bool avx2 = ((leaf7.ebx >> 5) & 1u) != 0;
  const bool fma = ((leaf1.ecx >> 12) & 1u) != 0;
  const bool avx512f = ((leaf7.ebx >> 16) & 1u) != 0;
  const bool avx512dq = ((leaf7.ebx >> 17) & 1u) != 0;
  const bool avx512vl = ((leaf7.ebx >> 31) & 1u) != 0;
  const bool avx512bw = ((leaf7.ebx >> 30) & 1u) != 0;

  if (avx512f && avx512dq && avx512vl && avx512bw && os_saves_zmm()) {
    return IsaTier::kAvx512;
  }
  if (avx2 && fma) return IsaTier::kAvx2;
  return IsaTier::kAvx;
}
#else
IsaTier detect_impl() { return IsaTier::kScalar; }
#endif

}  // namespace

IsaTier detect_best_tier() {
  static const IsaTier tier = detect_impl();
  return tier;
}

bool cpu_supports(IsaTier tier) {
  return static_cast<int>(tier) <= static_cast<int>(detect_best_tier());
}

const char* tier_name(IsaTier tier) {
  switch (tier) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kAvx:
      return "avx";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

IsaTier parse_tier(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  if (lower == "scalar" || lower == "novec") return IsaTier::kScalar;
  if (lower == "avx") return IsaTier::kAvx;
  if (lower == "avx2") return IsaTier::kAvx2;
  if (lower == "avx512" || lower == "avx-512") return IsaTier::kAvx512;
  KESTREL_FAIL("unknown ISA tier '" + name +
               "' (expected scalar|avx|avx2|avx512)");
}

}  // namespace kestrel::simd
