// Scalar BCSR (BAIJ) SpMV with an unrolled fast path for the 2x2 blocks
// that PDE systems with two degrees of freedom produce (the Gray–Scott
// Jacobian is exactly this shape).

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=bcsr isa=scalar

namespace kestrel::mat::kernels {

namespace {

void bcsr_spmv_bs2(const BcsrView& a, const Scalar* x, Scalar* y) {
  for (Index ib = 0; ib < a.mb; ++ib) {
    Scalar s0 = 0.0, s1 = 0.0;
    for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
      const Scalar* b = a.val + static_cast<std::size_t>(k) * 4;
      const Scalar* xc = x + a.colidx[k] * 2;
      s0 += b[0] * xc[0] + b[1] * xc[1];
      s1 += b[2] * xc[0] + b[3] * xc[1];
    }
    y[ib * 2] = s0;
    y[ib * 2 + 1] = s1;
  }
}

// argus-kernel: bcsr_spmv_scalar
// argus-param: a : view BcsrView
// argus-param: x : in extent nb * bs
// argus-param: y : out extent mb * bs
// argus-traffic: bcsr
void bcsr_spmv_scalar(const BcsrView& a, const Scalar* x, Scalar* y) {
  if (a.bs == 2) {
    bcsr_spmv_bs2(a, x, y);
    return;
  }
  const Index bs = a.bs;
  for (Index ib = 0; ib < a.mb; ++ib) {
    Scalar* yr = y + ib * bs;
    for (Index r = 0; r < bs; ++r) yr[r] = 0.0;
    for (Index k = a.rowptr[ib]; k < a.rowptr[ib + 1]; ++k) {
      const Scalar* b =
          a.val + static_cast<std::size_t>(k) * bs * bs;
      const Scalar* xc = x + a.colidx[k] * bs;
      for (Index r = 0; r < bs; ++r) {
        Scalar sum = 0.0;
        for (Index cidx = 0; cidx < bs; ++cidx) {
          sum += b[r * bs + cidx] * xc[cidx];
        }
        yr[r] += sum;
      }
    }
  }
}

}  // namespace

void register_bcsr_scalar() {
  KESTREL_REGISTER_KERNEL(kBcsrSpmv, kScalar, bcsr_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
