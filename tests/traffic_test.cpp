// Section 6 memory-traffic model tests: the closed forms the paper uses to
// argue SELL moves less metadata than CSR.

#include <gtest/gtest.h>

#include "mat/csr.hpp"
#include "mat/sell.hpp"
#include "perf/roofline.hpp"
#include "perf/spmv_model.hpp"
#include "test_matrices.hpp"

namespace kestrel {
namespace {

TEST(Traffic, CsrClosedForm) {
  const mat::Csr a = testing::banded(100, {-1, 1});
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  EXPECT_EQ(a.spmv_traffic_bytes(), 12 * nnz + 24 * 100 + 8 * 100);
}

TEST(Traffic, SellClosedForm) {
  const mat::Csr a = testing::banded(100, {-1, 1});
  const mat::Sell s(a);
  const std::size_t nnz = static_cast<std::size_t>(a.nnz());
  EXPECT_EQ(s.spmv_traffic_bytes(), 12 * nnz + 10 * 100 + 8 * 100);
}

TEST(Traffic, PaddingNotCounted) {
  // Paper: "Extra memory overhead contributed by padded zeros are not
  // counted" — a heavily padded SELL still reports the same traffic.
  const mat::Csr a = testing::power_law(128);
  const mat::Sell s(a);
  EXPECT_GT(s.fill_ratio(), 1.0);
  EXPECT_EQ(s.spmv_traffic_bytes(),
            12 * static_cast<std::size_t>(a.nnz()) + 10 * 128 + 8 * 128);
}

TEST(Traffic, WorkloadModelMatchesFormatModel) {
  // The perf-model workload byte counts must agree with the format classes
  // for a square matrix.
  const Index n = 64;
  const auto w = perf::SpmvWorkload::gray_scott(n);
  EXPECT_EQ(w.rows, 2 * static_cast<std::int64_t>(n) * n);
  EXPECT_EQ(w.nnz, 10 * w.rows);
  const std::size_t m = static_cast<std::size_t>(w.rows);
  const std::size_t nnz = static_cast<std::size_t>(w.nnz);
  EXPECT_EQ(w.traffic_bytes(perf::ModelFormat::kCsrBaseline),
            12 * nnz + 24 * m + 8 * m);
  EXPECT_EQ(w.traffic_bytes(perf::ModelFormat::kSell),
            12 * nnz + 10 * m + 8 * m);
}

TEST(Traffic, ArithmeticIntensityNearPaperValue) {
  // Section 7.2: "The arithmetic intensity of the SpMV kernel is around
  // 0.132" for the Gray–Scott matrix in CSR.
  const auto w = perf::SpmvWorkload::gray_scott(2048);
  const double ai =
      perf::arithmetic_intensity(perf::ModelFormat::kCsrBaseline, w);
  EXPECT_NEAR(ai, 0.132, 0.005);
}

TEST(Traffic, SellIntensityHigherThanCsr) {
  const auto w = perf::SpmvWorkload::gray_scott(256);
  EXPECT_GT(perf::arithmetic_intensity(perf::ModelFormat::kSell, w),
            perf::arithmetic_intensity(perf::ModelFormat::kCsrBaseline, w));
}

}  // namespace
}  // namespace kestrel
