#pragma once
// CSR with permutation (PETSc AIJPERM, after D'Azevedo/Fahey/Mills 2005,
// paper section 2.4): data stays in CSR order, an extra permutation groups
// rows of equal nonzero count, and SpMV vectorizes across rows of a group.

#include <vector>

#include "base/aligned.hpp"
#include "mat/csr.hpp"
#include "mat/kernels/views.hpp"
#include "mat/matrix.hpp"
#include "mat/partition.hpp"

namespace kestrel::mat {

class CsrPerm final : public Matrix {
 public:
  explicit CsrPerm(Csr csr);

  Index rows() const override { return csr_.rows(); }
  Index cols() const override { return csr_.cols(); }
  std::int64_t nnz() const override { return csr_.nnz(); }
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  void spmv_wide(const Scalar* x, Scalar* y) const override {
    spmv_fat(x, y);
  }
  // Kestrel Slim: delegated to the inner CSR — with slim streams active,
  // spmv() runs the csr_slim kernels directly (the grouped-permutation
  // walk has no slim variant; the base+off16/fp32 layout is the CSR one).
  bool set_slim(const SlimOptions& opts) override {
    return csr_.set_slim(opts);
  }
  bool slim_active() const override { return csr_.slim_active(); }
  void get_diagonal(Vector& d) const override { csr_.get_diagonal(d); }
  void abft_col_checksum(Vector& c) const override {
    csr_.abft_col_checksum(c);
  }
  std::string format_name() const override { return "csrperm"; }
  std::size_t storage_bytes() const override;
  // argus-traffic-model: csr_perm
  // argus-traffic-stream: @include = csr
  // argus-traffic-stream: perm = 4 * m
  // argus-traffic-stream: group_begin = 0 : amortized
  // argus-traffic-stream: group_rlen = 0 : amortized
  // argus-traffic-bind: csr_.fat_spmv_traffic_bytes() = include_csr
  // argus-traffic-bind: rows() = m
  // argus-traffic-cpp: fat_spmv_traffic_bytes
  std::size_t fat_spmv_traffic_bytes() const {
    // CSR traffic plus the permutation array read (4 bytes/row).
    return csr_.fat_spmv_traffic_bytes() +
           4 * static_cast<std::size_t>(rows());
  }
  std::size_t spmv_traffic_bytes() const override {
    // Slim multiplies run the plain csr_slim kernels (no perm read).
    return slim_active() ? csr_.spmv_traffic_bytes()
                         : fat_spmv_traffic_bytes();
  }

  Index num_groups() const { return ngroups_; }
  const Csr& csr() const { return csr_; }

  CsrPermView view() const {
    return {csr_.view(), ngroups_, group_begin_.data(), perm_.data(),
            group_rlen_.data()};
  }

  // Kestrel Flock ----------------------------------------------------------
  // flock-pool-safe: group8
  /// Re-plans the stored partition. Units are the kernel's width-8 VECTOR
  /// CHUNKS of permuted positions (plus per-group remainder chunks), so a
  /// split can only land on group_begin[g] + 8k — every row keeps its
  /// vector-vs-remainder membership and the FMA accumulation it had
  /// serially. Each part gets a synthesized group table re-using the same
  /// absolute positions, perm and CSR arrays.
  void repartition(int nparts) override;
  const FlockPartition& partition() const { return part_; }

 private:
  void spmv_fat(const Scalar* x, Scalar* y) const;

  /// One part's view of the group structure: a contiguous run of (possibly
  /// clipped) groups in absolute position space.
  struct PartGroups {
    std::vector<Index> begin;  ///< size rlen.size()+1, absolute positions
    std::vector<Index> rlen;
  };

  Csr csr_;
  Index ngroups_ = 0;
  AlignedBuffer<Index> group_begin_;
  AlignedBuffer<Index> perm_;
  AlignedBuffer<Index> group_rlen_;
  FlockPartition part_;  ///< over vector chunks (see repartition)
  std::vector<PartGroups> part_groups_;
};

}  // namespace kestrel::mat
