file(REMOVE_RECURSE
  "CMakeFiles/gray_scott_test.dir/gray_scott_test.cpp.o"
  "CMakeFiles/gray_scott_test.dir/gray_scott_test.cpp.o.d"
  "gray_scott_test"
  "gray_scott_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gray_scott_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
