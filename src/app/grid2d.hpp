#pragma once
// 2D periodic structured grid with interleaved degrees of freedom — the
// DMDA-like substrate for the paper's Gray–Scott experiment (5-point
// stencil, 2 dof per node, periodic boundary).

#include "base/types.hpp"
#include "mat/csr.hpp"

namespace kestrel::app {

class Grid2D {
 public:
  Grid2D(Index nx, Index ny, Index dof = 1, Scalar lx = 1.0, Scalar ly = 1.0);

  Index nx() const { return nx_; }
  Index ny() const { return ny_; }
  Index dof() const { return dof_; }
  Index nodes() const { return nx_ * ny_; }
  Index size() const { return nodes() * dof_; }
  Scalar hx() const { return lx_ / nx_; }
  Scalar hy() const { return ly_ / ny_; }
  Scalar lx() const { return lx_; }
  Scalar ly() const { return ly_; }

  /// Periodic wrap.
  Index wrap_x(Index i) const { return (i % nx_ + nx_) % nx_; }
  Index wrap_y(Index j) const { return (j % ny_ + ny_) % ny_; }

  /// Global unknown index of component c at node (i, j), with wrapping.
  Index idx(Index i, Index j, Index c = 0) const {
    return (wrap_y(j) * nx_ + wrap_x(i)) * dof_ + c;
  }

  /// Node coordinates (cell-centered spacing, node k at k*h).
  Scalar x(Index i) const { return i * hx(); }
  Scalar y(Index j) const { return j * hy(); }

  /// Factor-2 coarsening (requires even nx, ny).
  Grid2D coarsen() const;
  bool can_coarsen() const { return nx_ % 2 == 0 && ny_ % 2 == 0; }

  /// Bilinear interpolation from this->coarsen() back to this grid,
  /// applied independently per dof (block-diagonal in components).
  /// Rows = this->size(), cols = coarse.size().
  mat::Csr interpolation() const;

 private:
  Index nx_, ny_, dof_;
  Scalar lx_, ly_;
};

}  // namespace kestrel::app
