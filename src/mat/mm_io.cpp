#include "mat/mm_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

#include "base/budget.hpp"
#include "base/error.hpp"
#include "mat/coo.hpp"

namespace kestrel::mat {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return std::tolower(ch); });
  return s;
}

void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// Advances to the next line that carries content: strips a trailing CR
/// (CRLF files), skips blank/whitespace-only lines and '%' comment lines.
/// Returns false at end of stream.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    strip_cr(line);
    const std::size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos) continue;  // blank
    if (line[first] == '%') continue;          // comment
    return true;
  }
  return false;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  KESTREL_CHECK(static_cast<bool>(std::getline(in, line)),
                "empty MatrixMarket stream");
  strip_cr(line);
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  KESTREL_CHECK(banner == "%%MatrixMarket", "missing MatrixMarket banner");
  KESTREL_CHECK(lower(object) == "matrix" && lower(fmt) == "coordinate",
                "only coordinate matrices are supported");
  const std::string f = lower(field);
  KESTREL_CHECK(f == "real" || f == "integer" || f == "pattern",
                "unsupported MatrixMarket field: " + field);
  const std::string sym = lower(symmetry);
  KESTREL_CHECK(sym == "general" || sym == "symmetric",
                "unsupported MatrixMarket symmetry: " + symmetry);

  KESTREL_CHECK(next_content_line(in, line), "missing MatrixMarket size line");
  std::istringstream dims(line);
  // Count in 64 bits: `long` is 32-bit on some ABIs, and a size line from a
  // large SuiteSparse matrix must either fit the Index layout or fail with a
  // structured error — never wrap during the casts and the reserve below.
  std::int64_t m = 0, n = 0, nz = 0;
  dims >> m >> n >> nz;
  KESTREL_CHECK(!dims.fail(), "malformed MatrixMarket size line: " + line);
  KESTREL_CHECK(m > 0 && n > 0 && nz >= 0, "bad MatrixMarket dimensions");
  if (m > IndexOverflowError::ceiling() || n > IndexOverflowError::ceiling()) {
    throw IndexOverflowError(std::max(m, n), "MatrixMarket dimension",
                             __FILE__, __LINE__);
  }
  const std::int64_t stored = nz * (sym == "symmetric" ? 2 : 1);
  // Kestrel Bastion pre-size check: when a service memory budget is
  // configured, an oversized header declines with a structured BudgetError
  // *before* the COO staging arrays are reserved — a recoverable "no"
  // instead of std::bad_alloc mid-read. Checked ahead of the Index-overflow
  // test so budgeted services get the budget story even for counts that
  // could never form a valid CSR anyway.
  const std::uint64_t coo_bytes =
      static_cast<std::uint64_t>(stored) *
      (2u * sizeof(Index) + sizeof(Scalar));
  MemoryBudget::global().require(coo_bytes, "MatrixMarket COO staging");
  if (stored > IndexOverflowError::ceiling()) {
    // Detected from the size line, before reserving tens of GB for entries
    // that can never form a valid Index-addressed CSR.
    throw IndexOverflowError(stored, "MatrixMarket nonzero count", __FILE__,
                             __LINE__);
  }

  Coo coo(static_cast<Index>(m), static_cast<Index>(n));
  coo.reserve(static_cast<std::size_t>(stored));
  for (std::int64_t k = 0; k < nz; ++k) {
    KESTREL_CHECK(next_content_line(in, line),
                  "unexpected end of MatrixMarket data");
    std::istringstream entry(line);
    std::int64_t i = 0, j = 0;
    double v = 1.0;
    entry >> i >> j;
    if (f != "pattern") entry >> v;
    KESTREL_CHECK(!entry.fail(), "malformed MatrixMarket entry: " + line);
    KESTREL_CHECK(i >= 1 && i <= m && j >= 1 && j <= n,
                  "MatrixMarket entry out of range");
    coo.add(static_cast<Index>(i - 1), static_cast<Index>(j - 1), v);
    if (sym == "symmetric" && i != j) {
      coo.add(static_cast<Index>(j - 1), static_cast<Index>(i - 1), v);
    }
  }
  return coo.to_csr();
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  KESTREL_CHECK(in.good(), "cannot open " + path);
  return read_matrix_market(in);
}

void write_matrix_market(const Csr& a, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << a.rows() << " " << a.cols() << " " << a.nnz() << "\n";
  out.precision(17);
  for (Index i = 0; i < a.rows(); ++i) {
    const auto cols = a.row_cols(i);
    const auto vals = a.row_vals(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      out << (i + 1) << " " << (cols[k] + 1) << " " << vals[k] << "\n";
    }
  }
}

void write_matrix_market_file(const Csr& a, const std::string& path) {
  std::ofstream out(path);
  KESTREL_CHECK(out.good(), "cannot open " + path);
  write_matrix_market(a, out);
}

}  // namespace kestrel::mat
