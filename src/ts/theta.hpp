#pragma once
// Theta-method time integration (PETSc TS): theta = 0.5 is the
// Crank–Nicolson scheme the paper uses with a fixed step size of 1
// (section 7). Each step solves the nonlinear system
//   G(u^{n+1}) = u^{n+1} - u^n - dt [ theta f(u^{n+1}) + (1-theta) f(u^n) ]
// with Newton, whose Jacobian is I - dt*theta*J_f — rebuilt every Newton
// iteration because the Gray–Scott reaction couples the fields
// nonlinearly.

#include <functional>

#include "mat/csr.hpp"
#include "snes/newton.hpp"
#include "vec/vector.hpp"

namespace kestrel::ts {

/// Autonomous ODE system du/dt = f(u) with an analytic Jacobian J_f.
class RhsFunction {
 public:
  virtual ~RhsFunction() = default;
  virtual Index size() const = 0;
  virtual void rhs(const Vector& u, Vector& f) const = 0;
  virtual mat::Csr rhs_jacobian(const Vector& u) const = 0;
};

struct ThetaOptions {
  Scalar theta = 0.5;  ///< 0.5 = Crank–Nicolson, 1.0 = backward Euler
  Scalar dt = 1.0;
  int steps = 20;      ///< the paper's single-node run: 20 steps
  snes::NewtonOptions newton;
  /// Kestrel Aegis rollback: checkpoint u every k completed steps (0 =
  /// disabled). When a step fails — Newton does not converge, or an
  /// AbftError escapes its solver — the integrator rewinds to the last
  /// checkpoint and replays, up to max_rollbacks times, before giving up
  /// (returning completed=false, or rethrowing the AbftError).
  int checkpoint_every = 0;
  int max_rollbacks = 2;
  /// Kestrel Bastion: checked before every time step and propagated into
  /// the nested Newton/KSP stack (unless newton.deadline is already
  /// active). On expiry the integrator stops at the last completed step.
  Deadline deadline;
  /// Called after each completed step with (step, t, u).
  std::function<void(int, Scalar, const Vector&)> monitor;
};

struct ThetaResult {
  bool completed = false;
  int steps_taken = 0;
  Scalar final_time = 0.0;
  int total_newton_iterations = 0;
  int total_linear_iterations = 0;
  /// Checkpoint rewinds taken (Kestrel Aegis); 0 on a clean integration.
  int rollbacks = 0;
  /// Kestrel Bastion: the deadline expired mid-integration; u holds the
  /// state after steps_taken completed steps (half-finished steps are
  /// rolled back to the step entry state).
  bool deadline_exceeded = false;
};

/// Integrates u from t = 0 over opts.steps steps of size opts.dt.
ThetaResult theta_integrate(const RhsFunction& f, Vector& u,
                            const ThetaOptions& opts);

}  // namespace kestrel::ts
