#pragma once
// Row-distributed vector: each rank owns a contiguous block of entries,
// mirroring PETSc's default vector layout (paper section 2.1).

#include <memory>
#include <vector>

#include "base/types.hpp"
#include "par/comm.hpp"
#include "vec/vector.hpp"

namespace kestrel::par {

/// Describes how `global_size` entries are split into contiguous per-rank
/// blocks. Shared between vectors and matrices on the same communicator.
class Layout {
 public:
  /// PETSc-style near-even split: the first (global % size) ranks get one
  /// extra entry.
  static Layout even(Index global_size, int nranks);
  /// Near-even split where every rank's block is a multiple of `bs` —
  /// required when the distributed matrix uses BAIJ blocks (a 2x2 block
  /// must never straddle a rank boundary).
  static Layout even_blocked(Index global_size, int nranks, Index bs);
  /// Explicit block sizes per rank.
  static Layout from_sizes(const std::vector<Index>& sizes);

  Index global_size() const { return offsets_.back(); }
  int nranks() const { return static_cast<int>(offsets_.size()) - 1; }
  Index begin(int rank) const {
    return offsets_[static_cast<std::size_t>(rank)];
  }
  Index end(int rank) const {
    return offsets_[static_cast<std::size_t>(rank) + 1];
  }
  Index local_size(int rank) const { return end(rank) - begin(rank); }
  /// Owner of global index g (binary search).
  int owner(Index g) const;

 private:
  explicit Layout(std::vector<Index> offsets)
      : offsets_(std::move(offsets)) {}
  std::vector<Index> offsets_;
};

using LayoutPtr = std::shared_ptr<const Layout>;

/// The local block of a distributed vector on one rank.
class ParVector {
 public:
  ParVector() = default;
  ParVector(LayoutPtr layout, int rank)
      : layout_(std::move(layout)),
        rank_(rank),
        local_(layout_->local_size(rank)) {}

  const Layout& layout() const { return *layout_; }
  LayoutPtr layout_ptr() const { return layout_; }
  int rank() const { return rank_; }
  Index global_size() const { return layout_->global_size(); }
  Index local_size() const { return local_.size(); }
  Index own_begin() const { return layout_->begin(rank_); }

  Vector& local() { return local_; }
  const Vector& local() const { return local_; }

  /// Fills the local block from the owned slice of a replicated global
  /// vector (test/bootstrap helper).
  void set_from_global(const Vector& global);

  /// Global reductions (collective).
  Scalar dot(const ParVector& other, Comm& comm) const;
  Scalar norm2(Comm& comm) const;

  /// Gathers the full vector on every rank (collective; test helper).
  Vector gather_all(Comm& comm) const;

 private:
  LayoutPtr layout_;
  int rank_ = 0;
  Vector local_;
};

}  // namespace kestrel::par
