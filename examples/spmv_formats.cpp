// Format and ISA tour: loads a matrix (generated Gray-Scott Jacobian by
// default, or any Matrix Market file), converts it to every Kestrel format,
// and times SpMV under every ISA tier this CPU supports — a miniature of
// the paper's Figure 8 for your own matrix.
//
//   ./spmv_formats [-n 256] [-file matrix.mtx] [-threads N]
//
// -threads N (or KESTREL_THREADS) runs every format's SpMV on the Kestrel
// Flock pool with N threads and nnz-balanced partitions.

#include <cstdio>

#include "app/gray_scott.hpp"
#include "prof/profiler.hpp"
#include "base/options.hpp"
#include "mat/bcsr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/mm_io.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "par/pool.hpp"

using namespace kestrel;

namespace {

double time_spmv(const mat::Matrix& a) {
  Vector x(a.cols(), 1.0), y(a.rows());
  a.spmv(x.data(), y.data());
  double best = 1e300, spent = 0.0;
  while (spent < 0.1) {
    const double t0 = wall_time();
    a.spmv(x.data(), y.data());
    const double dt = wall_time() - t0;
    best = std::min(best, dt);
    spent += dt;
  }
  return best;
}

void report(const char* label, const mat::Matrix& a) {
  const double t = time_spmv(a);
  std::printf("%-22s %10.2f Gflop/s  %12zu bytes\n", label,
              2.0 * static_cast<double>(a.nnz()) / t / 1e9,
              a.storage_bytes());
}

}  // namespace

int main(int argc, char** argv) {
  Options::global().parse(argc, argv);
  const std::string file = Options::global().get_string("file", "");
  mat::Csr csr = [&] {
    if (!file.empty()) {
      std::printf("loading %s\n", file.c_str());
      return mat::read_matrix_market_file(file);
    }
    const Index n = Options::global().get_index("n", 256);
    app::GrayScott gs(n);
    Vector u;
    gs.initial_condition(u);
    return gs.rhs_jacobian(u);
  }();
  std::printf("matrix: %d x %d, %lld nonzeros, max row %d\n\n", csr.rows(),
              csr.cols(), static_cast<long long>(csr.nnz()),
              csr.max_row_nnz());

  const simd::IsaTier best = simd::detect_best_tier();
  std::printf("CPU supports up to: %s, %d flock thread(s)\n\n",
              simd::tier_name(best), par::configured_threads());

  for (int ti = 0; ti <= static_cast<int>(best); ++ti) {
    const auto tier = static_cast<simd::IsaTier>(ti);
    std::printf("-- ISA tier: %s --\n", simd::tier_name(tier));
    mat::Csr c = csr;
    c.set_tier(tier);
    report("CSR (AIJ)", c);
    mat::Sell s(csr);
    s.set_tier(tier);
    report("SELL (sliced ELLPACK)", s);
    mat::CsrPerm p{mat::Csr(csr)};
    p.set_tier(tier);
    report("CSRPerm (AIJPERM)", p);
    if (csr.rows() == csr.cols() && csr.rows() % 2 == 0) {
      mat::Bcsr bcsr(csr, 2);
      bcsr.set_tier(tier);
      report("BCSR bs=2 (BAIJ)", bcsr);
    }
    mat::Talon talon(csr);
    talon.set_tier(tier);
    report("Talon (SPC5 blocks)", talon);
    std::printf("\n");
  }

  const mat::Sell sell(csr);
  std::printf("SELL details: %d slices of height %d, fill ratio %.4f, "
              "traffic %zu bytes vs CSR %zu\n",
              sell.num_slices(), sell.slice_height(), sell.fill_ratio(),
              sell.spmv_traffic_bytes(), csr.spmv_traffic_bytes());
  const mat::Talon talon(csr);
  std::printf("Talon details: %d panels (r=4: %d, r=2: %d, r=1: %d), "
              "%lld blocks, block fill %.4f, traffic %zu bytes\n",
              talon.num_panels(), talon.panels_with_r(4),
              talon.panels_with_r(2), talon.panels_with_r(1),
              static_cast<long long>(talon.num_blocks()), talon.block_fill(),
              talon.spmv_traffic_bytes());
  return 0;
}
