#pragma once
// Newton's method with backtracking line search (PETSc SNES, newtonls).
// Each iteration assembles the Jacobian through user callbacks, converts it
// to the compute format under test, and solves the linear system with a
// configurable KSP + PC — the paper's stack: at every time step the
// Gray–Scott Jacobian is rebuilt and multigrid-preconditioned GMRES runs on
// it, so SpMV throughput controls end-to-end wall time.

#include <functional>
#include <memory>

#include "ksp/ksp.hpp"
#include "mat/csr.hpp"
#include "pc/pc.hpp"
#include "vec/vector.hpp"

namespace kestrel::snes {

/// User problem: F(u) = 0 with an analytic Jacobian.
class NonlinearFunction {
 public:
  virtual ~NonlinearFunction() = default;
  virtual Index size() const = 0;
  virtual void residual(const Vector& u, Vector& f) const = 0;
  virtual mat::Csr jacobian(const Vector& u) const = 0;
};

struct NewtonOptions {
  Scalar rtol = 1e-8;   ///< ||F|| / ||F0||
  Scalar atol = 1e-12;  ///< ||F||
  Scalar stol = 1e-12;  ///< ||du|| / ||u||
  int max_iterations = 50;

  // line search (backtracking with sufficient decrease)
  Scalar ls_alpha = 1e-4;
  Scalar ls_min_lambda = 1e-6;

  std::string ksp_type = "gmres";
  ksp::Settings ksp;

  /// Rebuild the preconditioner only every `lag` Newton iterations
  /// (PETSc's -snes_lag_preconditioner): a lagged multigrid hierarchy
  /// still preconditions well because the Jacobian changes slowly, and it
  /// skips the expensive Galerkin setup. 1 = rebuild every iteration.
  int pc_lag = 1;

  /// Builds the operator passed to the KSP from the assembled Jacobian
  /// (e.g. convert to SELL); defaults to the CSR itself.
  std::function<std::shared_ptr<const mat::Matrix>(const mat::Csr&)>
      format_factory;
  /// Builds the preconditioner from the assembled Jacobian; defaults to
  /// point Jacobi.
  std::function<std::unique_ptr<pc::Pc>(const mat::Csr&)> pc_factory;

  /// Kestrel Bastion: checked before every Newton step and propagated into
  /// the nested KSP (unless ksp.deadline is already active), so a hung
  /// outer or inner solve stops cooperatively with the best iterate in u.
  Deadline deadline;

  /// Called after each Newton iteration with (iteration, ||F||).
  std::function<void(int, Scalar)> monitor;
};

struct NewtonResult {
  bool converged = false;
  int iterations = 0;
  Scalar fnorm = 0.0;
  int total_linear_iterations = 0;
  /// Fresh-Jacobian retries taken after an AbftError escaped the KSP
  /// (Kestrel Aegis); 0 on a clean solve.
  int abft_retries = 0;
  /// Kestrel Bastion: the deadline expired (outer step or nested KSP)
  /// before convergence; u holds the last completed iterate.
  bool deadline_exceeded = false;
};

/// Solves F(u) = 0, updating u in place from the supplied initial guess.
NewtonResult newton_solve(const NonlinearFunction& f, Vector& u,
                          const NewtonOptions& opts = {});

/// Finite-difference Jacobian (dense column sweep) for verifying analytic
/// Jacobians in tests. O(n^2) — small problems only.
mat::Csr fd_jacobian(const NonlinearFunction& f, const Vector& u,
                     Scalar eps = 1e-7);

}  // namespace kestrel::snes
