#pragma once
// Row-major dense matrix: the correctness oracle for every sparse SpMV
// kernel in the test suite, and the direct coarse-grid solver inside the
// multigrid preconditioner (LU with partial pivoting).

#include <vector>

#include "base/aligned.hpp"
#include "mat/matrix.hpp"

namespace kestrel::mat {

class Csr;

class Dense final : public Matrix {
 public:
  Dense() = default;
  Dense(Index m, Index n) : m_(m), n_(n), a_(size_of(m, n), 0.0) {}
  static Dense from_csr(const Csr& csr);

  Index rows() const override { return m_; }
  Index cols() const override { return n_; }
  std::int64_t nnz() const override;
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  void get_diagonal(Vector& d) const override;
  void abft_col_checksum(Vector& c) const override;
  std::string format_name() const override { return "dense"; }
  std::size_t storage_bytes() const override {
    return a_.size() * sizeof(Scalar);
  }
  std::size_t spmv_traffic_bytes() const override {
    return a_.size() * sizeof(Scalar) +
           8 * static_cast<std::size_t>(m_ + n_);
  }

  Scalar& at(Index i, Index j) {
    return a_[static_cast<std::size_t>(i) * n_ + j];
  }
  Scalar at(Index i, Index j) const {
    return a_[static_cast<std::size_t>(i) * n_ + j];
  }

  /// Factors in place (PA = LU, partial pivoting); then solve() is usable.
  /// Throws on (numerically) singular input.
  void lu_factor();
  /// Solves A x = b using the factorization. x may alias b.
  void lu_solve(const Scalar* b, Scalar* x) const;
  bool factored() const { return !piv_.empty(); }

 private:
  static std::size_t size_of(Index m, Index n) {
    return static_cast<std::size_t>(m) * static_cast<std::size_t>(n);
  }
  Index m_ = 0, n_ = 0;
  AlignedBuffer<Scalar> a_;
  std::vector<Index> piv_;
};

}  // namespace kestrel::mat
