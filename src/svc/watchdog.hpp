#pragma once
// Kestrel Bastion: load watchdog — graceful degradation before shedding.
//
// The bounded queue is the service's hard backstop; the watchdog is the
// soft one in front of it. It tracks a windowed mean of queue occupancy
// (depth / capacity, observed at every submit and dequeue) against two
// watermarks with hysteresis: sustained occupancy above the high watermark
// enters degraded mode — the service caps per-request max_iterations and
// switches ABFT handles to their sampled-verification twins, trading
// accuracy headroom and verification coverage for throughput — and only
// sustained occupancy below the low watermark leaves it, so the mode does
// not flap at the boundary. Only when degradation is not enough and the
// queue actually fills does admission control shed with RejectedError.

#include <cstdint>
#include <mutex>
#include <vector>

namespace kestrel::svc {

struct WatchdogOptions {
  double high_watermark = 0.75;  ///< windowed occupancy that enters degraded
  double low_watermark = 0.25;   ///< windowed occupancy that leaves it
  int window = 16;               ///< observations in the moving mean
};

class LoadWatchdog {
 public:
  explicit LoadWatchdog(WatchdogOptions opts = {});

  /// Feed one queue observation (depth just after a submit or dequeue).
  /// capacity <= 0 is treated as unbounded: occupancy 0.
  void observe(int depth, int capacity);

  bool degraded() const;
  double occupancy() const;  ///< current windowed mean

  /// Mode transitions since construction (exported as Scope metrics).
  std::uint64_t degrade_events() const;
  std::uint64_t recover_events() const;

 private:
  WatchdogOptions opts_;
  mutable std::mutex mu_;
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  double sum_ = 0.0;
  bool degraded_ = false;
  std::uint64_t degrade_events_ = 0;
  std::uint64_t recover_events_ = 0;
};

}  // namespace kestrel::svc
