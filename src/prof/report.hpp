#pragma once
// Kestrel Scope exporters: cross-rank reduction through the par fabric plus
// the three output formats the -log_* options select —
//   * report():            PETSc -log_view style stage/event table with
//                          per-rank min/max/ratio columns,
//   * write_chrome_trace(): Chrome trace-event JSON (one Perfetto track per
//                          rank) from the spans recorded under -log_trace,
//   * write_json_metrics(): machine-readable dump (schema kMetricsSchema)
//                          that bench/ figure scripts consume.
// export_all() ties them to a LogConfig; on a fabric it is collective and
// only rank 0 writes.

#include <iosfwd>
#include <string>
#include <vector>

#include "prof/profiler.hpp"

namespace kestrel::par {
class Comm;
}

namespace kestrel::prof {

/// The metrics-JSON schema version every export path must declare (the
/// kestrel_lint prof-schema-version rule rejects hardcoded copies). v2 is
/// a strict superset of v1: all v1 fields are unchanged, v2 adds the
/// top-level "hwc" machine/capability block and the per-event measured
/// counter fields — so v1 consumers parse v2 documents untouched.
inline constexpr const char* kMetricsSchema = "kestrel-scope-metrics-v2";
/// Previous version, still accepted by validators (check.sh, CI).
inline constexpr const char* kMetricsSchemaV1 = "kestrel-scope-metrics-v1";

/// One (stage, event) cell reduced across ranks.
struct ReducedRow {
  int stage = kMainStage;
  int event = -1;
  std::uint64_t calls_max = 0;
  double t_min = 0.0;
  double t_max = 0.0;
  double t_avg = 0.0;
  double ratio = 0.0;  ///< t_max / t_min; 0 when no rank recorded time
  double flops_total = 0.0;
  double bytes_total = 0.0;
  double messages_total = 0.0;
  double message_bytes_total = 0.0;
  double reductions_total = 0.0;
  // Kestrel Pulse measured counters, reduced across ranks (all zero when
  // hwc was off). Totals are sums; min/max/avg expose rank imbalance in
  // measured work the same way t_min/t_max/t_avg do for time.
  double cycles_total = 0.0;
  double cycles_min = 0.0;
  double cycles_max = 0.0;
  double cycles_avg = 0.0;
  double instructions_total = 0.0;
  double llc_misses_total = 0.0;
  double hwc_bytes_total = 0.0;
};

/// A trace span tagged with the rank that recorded it.
struct RankedSpan {
  int rank = 0;
  TraceSpan span;
};

/// Cross-rank reduced profile; identical contents on every rank after a
/// collective reduce(). Histories and metrics come from rank 0's profiler.
struct Reduced {
  int nranks = 1;
  double elapsed_max = 0.0;  ///< max over ranks of elapsed_seconds()
  std::vector<ReducedRow> rows;  ///< sorted by (stage, event)
  std::vector<RankedSpan> spans;
  std::uint64_t dropped_spans = 0;
  double messages_total = 0.0;
  double message_bytes_total = 0.0;
  double reductions_total = 0.0;
  std::map<std::string, std::vector<std::pair<double, double>>> histories;
  std::map<std::string, double> metrics;
};

/// Single-rank "reduction": min == max == avg, ratio 1.
Reduced reduce(const Profiler& p);
/// Collective across the fabric (every rank must call); event ids match
/// across ranks because the name registry is process-wide.
Reduced reduce(const Profiler& p, par::Comm& comm);

/// Prints the PETSc-style performance summary table.
void report(std::ostream& os, const Reduced& r);

/// Chrome trace-event JSON: pid 0, one tid (named track) per rank,
/// "X" complete events with microsecond timestamps relative to the
/// earliest span. Load in Perfetto / chrome://tracing.
void write_chrome_trace(std::ostream& os, const Reduced& r);

/// kMetricsSchema machine-readable metrics document (see the constant's
/// comment for the v1 -> v2 compatibility contract).
void write_json_metrics(std::ostream& os, const Reduced& r);

/// Runs the exporters the config asked for: reduces (collectively when
/// `comm` is non-null), then on rank 0 prints the table to stdout and/or
/// writes the trace/metrics files. No-op when cfg.any() is false.
void export_all(const LogConfig& cfg, const Profiler& p,
                par::Comm* comm = nullptr);

}  // namespace kestrel::prof
