"""Argus C++ tokenizer.

Produces a flat token stream from a kernel TU. Ordinary comments and
preprocessor lines are dropped; `// argus-*` annotation comments are kept as
first-class `annot` tokens so the parser can attach contracts to the function
or declaration that follows them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

# Longest-match-first punctuator table.
_PUNCTS = [
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
    "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ".", "?",
    ":", "+", "-", "*", "/", "%", "<", ">", "=", "!", "~", "&", "|",
    "^", "#",
]


@dataclass
class Tok:
    kind: str   # id | num | str | chr | punct | annot | eof
    val: str
    line: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.val}@{self.line}"


class LexError(Exception):
    def __init__(self, line: int, msg: str):
        super().__init__(f"line {line}: {msg}")
        self.line = line


def tokenize(text: str) -> List[Tok]:
    toks: List[Tok] = []
    i, n, line = 0, len(text), 1
    while i < n:
        ch = text[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            body = text[i + 2:j].strip()
            if body.startswith("argus-"):
                toks.append(Tok("annot", body, line))
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            if j < 0:
                raise LexError(line, "unterminated block comment")
            line += text.count("\n", i, j)
            i = j + 2
            continue
        if ch == "#":
            # Preprocessor directive: skip whole (possibly continued) line.
            j = i
            while j < n:
                e = text.find("\n", j)
                e = n if e < 0 else e
                if text[e - 1] == "\\" if e > 0 else False:
                    line += 1
                    j = e + 1
                    continue
                break
            line += 1
            i = e + 1 if e < n else n
            continue
        if ch == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("str", text[i:j + 1], line))
            i = j + 1
            continue
        if ch == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            toks.append(Tok("chr", text[i:j + 1], line))
            i = j + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            if text.startswith("0x", i) or text.startswith("0X", i):
                j = i + 2
                while j < n and (text[j] in "0123456789abcdefABCDEF'"):
                    j += 1
            else:
                while j < n and (text[j].isdigit() or text[j] in ".'eE"):
                    if text[j] in "eE" and j + 1 < n and text[j + 1] in "+-":
                        j += 1
                    j += 1
            while j < n and text[j] in "uUlLfF":
                j += 1
            toks.append(Tok("num", text[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            toks.append(Tok("id", text[i:j], line))
            i = j
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            raise LexError(line, f"unexpected character {ch!r}")
    toks.append(Tok("eof", "", line))
    return toks
