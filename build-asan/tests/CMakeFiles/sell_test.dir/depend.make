# Empty dependencies file for sell_test.
# This may be replaced when dependencies are built.
