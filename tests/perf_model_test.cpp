// Performance-model tests: these encode the QUALITATIVE claims of the
// paper's evaluation (who wins, by roughly what factor, where the
// crossovers are) so the benchmark harness cannot silently drift away from
// the published behavior.

#include <gtest/gtest.h>

#include "perf/bwmodel.hpp"
#include "perf/machine.hpp"
#include "perf/roofline.hpp"
#include "perf/spmv_model.hpp"

namespace kestrel::perf {
namespace {

using simd::IsaTier;

const SpmvWorkload kW2048 = SpmvWorkload::gray_scott(2048);

double knl_gflops(ModelFormat fmt, IsaTier tier, int procs = 64,
                  MemoryMode mode = MemoryMode::kFlatMcdram) {
  return modeled_spmv_gflops(knl7230(), mode, procs, fmt, tier, kW2048);
}

TEST(BwModel, MonotoneAndSaturating) {
  const MachineProfile knl = knl7230();
  double prev = 0.0;
  for (int p : {1, 8, 16, 32, 64}) {
    const double bw =
        modeled_bandwidth(knl, MemoryMode::kFlatMcdram, p, true);
    EXPECT_GT(bw, prev);
    prev = bw;
  }
  // Figure 4: flat-mode MCDRAM approaches ~490 GB/s near saturation
  EXPECT_NEAR(modeled_bandwidth(knl, MemoryMode::kFlatMcdram, 64, true),
              490.0, 30.0);
}

TEST(BwModel, VectorizationMattersInFlatModeOnly) {
  // Figure 4: novec loses badly in flat mode, barely in cache mode.
  const MachineProfile knl = knl7230();
  const double flat_vec =
      modeled_bandwidth(knl, MemoryMode::kFlatMcdram, 64, true);
  const double flat_novec =
      modeled_bandwidth(knl, MemoryMode::kFlatMcdram, 64, false);
  EXPECT_LT(flat_novec, 0.5 * flat_vec);

  const double cache_vec = modeled_bandwidth(knl, MemoryMode::kCache, 64, true);
  const double cache_novec =
      modeled_bandwidth(knl, MemoryMode::kCache, 64, false);
  EXPECT_GT(cache_novec, 0.85 * cache_vec);
}

TEST(BwModel, CacheModeBelowFlatMode) {
  const MachineProfile knl = knl7230();
  EXPECT_LT(modeled_bandwidth(knl, MemoryMode::kCache, 64, true),
            modeled_bandwidth(knl, MemoryMode::kFlatMcdram, 64, true));
}

TEST(BwModel, DramFarBelowMcdram) {
  const MachineProfile knl = knl7230();
  EXPECT_LT(modeled_bandwidth(knl, MemoryMode::kFlatDram, 64, true),
            0.25 * modeled_bandwidth(knl, MemoryMode::kFlatMcdram, 64, true));
}

TEST(SpmvModel, Figure8RankingOnKnl) {
  // SELL-AVX512 > SELL-AVX >= SELL-AVX2 > CSR-AVX512 > CSR-AVX >
  // CSR-AVX2 ... > baseline > MKL
  const double sell512 = knl_gflops(ModelFormat::kSell, IsaTier::kAvx512);
  const double sell2 = knl_gflops(ModelFormat::kSell, IsaTier::kAvx2);
  const double sella = knl_gflops(ModelFormat::kSell, IsaTier::kAvx);
  const double csr512 = knl_gflops(ModelFormat::kCsr, IsaTier::kAvx512);
  const double csr2 = knl_gflops(ModelFormat::kCsr, IsaTier::kAvx2);
  const double csra = knl_gflops(ModelFormat::kCsr, IsaTier::kAvx);
  const double base =
      knl_gflops(ModelFormat::kCsrBaseline, IsaTier::kScalar);
  const double mkl = knl_gflops(ModelFormat::kMklCsr, IsaTier::kScalar);
  const double perm = knl_gflops(ModelFormat::kCsrPerm, IsaTier::kAvx512);

  EXPECT_GT(sell512, sella);
  EXPECT_GT(sella, csr512);
  EXPECT_GE(sella, sell2 * 0.99);  // AVX ~ AVX2 for SELL, AVX slightly up
  EXPECT_GT(csr512, csra);
  EXPECT_GT(csra, csr2);  // the paper's AVX2 FMA-serialization regression
  EXPECT_GT(csr2, mkl);
  EXPECT_GT(base, mkl);        // MKL 10-20% behind the PETSc baseline
  EXPECT_NEAR(perm / base, 1.0, 0.15);  // AIJPERM buys nothing on KNL
}

TEST(SpmvModel, Figure8HeadlineSpeedups) {
  const double base =
      knl_gflops(ModelFormat::kCsrBaseline, IsaTier::kScalar);
  const double sell512 = knl_gflops(ModelFormat::kSell, IsaTier::kAvx512);
  const double csr512 = knl_gflops(ModelFormat::kCsr, IsaTier::kAvx512);
  // Section 8: SELL ~2x over baseline; hand-vectorized CSR ~1.54x.
  EXPECT_NEAR(sell512 / base, 2.0, 0.25);
  EXPECT_NEAR(csr512 / base, 1.54, 0.2);
}

TEST(SpmvModel, Figure7GridSizeInsensitivity) {
  // "the performance is insensitive to the grid size"
  const MachineProfile knl = knl7230();
  const double g1 = modeled_spmv_gflops(
      knl, MemoryMode::kFlatMcdram, 64, ModelFormat::kCsrBaseline,
      IsaTier::kScalar, SpmvWorkload::gray_scott(1024));
  const double g4 = modeled_spmv_gflops(
      knl, MemoryMode::kFlatMcdram, 64, ModelFormat::kCsrBaseline,
      IsaTier::kScalar, SpmvWorkload::gray_scott(4096));
  EXPECT_NEAR(g1, g4, 0.05 * g1);
}

TEST(SpmvModel, Figure7DramGapOnlyAtFullOccupancy) {
  // "When using 16 or 32 processes, there is almost no difference ... The
  // gap becomes noticeable only when all the cores have been filled."
  const MachineProfile knl = knl7230();
  auto gap = [&](int procs) {
    const double mc = modeled_spmv_gflops(
        knl, MemoryMode::kFlatMcdram, procs, ModelFormat::kCsrBaseline,
        IsaTier::kScalar, kW2048);
    const double dr = modeled_spmv_gflops(
        knl, MemoryMode::kFlatDram, procs, ModelFormat::kCsrBaseline,
        IsaTier::kScalar, kW2048);
    return mc / dr;
  };
  EXPECT_LT(gap(16), 1.1);
  EXPECT_GT(gap(64), 1.5);
}

TEST(SpmvModel, Figure11MarginalGainsOnStandardXeons) {
  // "only marginal improvement for sliced ELLPACK over CSR on standard
  // Xeon platforms, but significant gains on KNL"
  for (const MachineProfile& xeon : {haswell(), broadwell(), skylake()}) {
    const double sell = modeled_spmv_gflops(
        xeon, MemoryMode::kFlatDram, xeon.cores, ModelFormat::kSell,
        IsaTier::kAvx512, kW2048);
    const double csr = modeled_spmv_gflops(
        xeon, MemoryMode::kFlatDram, xeon.cores,
        ModelFormat::kCsrBaseline, IsaTier::kScalar, kW2048);
    EXPECT_LT(sell / csr, 1.35) << xeon.name;
    EXPECT_GE(sell / csr, 1.0) << xeon.name;
  }
  const double knl_ratio =
      knl_gflops(ModelFormat::kSell, IsaTier::kAvx512) /
      knl_gflops(ModelFormat::kCsrBaseline, IsaTier::kScalar);
  EXPECT_GT(knl_ratio, 1.7);
}

TEST(SpmvModel, Figure11SkylakeAboutTwiceBroadwell) {
  const double sky = modeled_spmv_gflops(
      skylake(), MemoryMode::kFlatDram, skylake().cores,
      ModelFormat::kCsrBaseline, IsaTier::kScalar, kW2048);
  const double bdw = modeled_spmv_gflops(
      broadwell(), MemoryMode::kFlatDram, broadwell().cores,
      ModelFormat::kCsrBaseline, IsaTier::kScalar, kW2048);
  EXPECT_GT(sky / bdw, 1.4);
  EXPECT_LT(sky / bdw, 2.3);
}

TEST(SpmvModel, TierClampedToMachineIsa) {
  // Haswell has no AVX-512: requesting it must not beat its own AVX2.
  const double h512 = modeled_spmv_gflops(
      haswell(), MemoryMode::kFlatDram, 18, ModelFormat::kSell,
      IsaTier::kAvx512, kW2048);
  const double h2 = modeled_spmv_gflops(
      haswell(), MemoryMode::kFlatDram, 18, ModelFormat::kSell,
      IsaTier::kAvx2, kW2048);
  EXPECT_DOUBLE_EQ(h512, h2);
}

TEST(Multinode, Figure10SellBeatsCsrInMcdramModes) {
  for (MemoryMode mode : {MemoryMode::kCache, MemoryMode::kFlatMcdram}) {
    for (int nodes : {64, 128, 256, 512}) {
      const auto csr =
          modeled_multinode(knl7230(), mode, nodes,
                            ModelFormat::kCsrBaseline, IsaTier::kScalar);
      const auto sell = modeled_multinode(knl7230(), mode, nodes,
                                          ModelFormat::kSell,
                                          IsaTier::kAvx512);
      EXPECT_LT(sell.total_seconds, csr.total_seconds);
      // the MatMult share roughly halves (paper: ~2x kernel speedup)
      EXPECT_NEAR(csr.matmult_seconds / sell.matmult_seconds, 2.0, 0.5);
      // non-MatMult time is format independent
      EXPECT_NEAR(csr.total_seconds - csr.matmult_seconds,
                  sell.total_seconds - sell.matmult_seconds,
                  0.02 * csr.total_seconds);
    }
  }
}

TEST(Multinode, Figure10DramOnlyShowsMarginalGain) {
  const auto csr =
      modeled_multinode(knl7230(), MemoryMode::kFlatDram, 64,
                        ModelFormat::kCsrBaseline, IsaTier::kScalar);
  const auto sell = modeled_multinode(
      knl7230(), MemoryMode::kFlatDram, 64, ModelFormat::kSell,
      IsaTier::kAvx512);
  const double gain = csr.total_seconds / sell.total_seconds;
  EXPECT_LT(gain, 1.25);  // "just marginal improvement"
  EXPECT_GE(gain, 1.0);
}

TEST(Multinode, StrongScalingWithNodes) {
  const auto n64 = modeled_multinode(knl7230(), MemoryMode::kCache, 64,
                                     ModelFormat::kCsrBaseline,
                                     IsaTier::kScalar);
  const auto n512 = modeled_multinode(knl7230(), MemoryMode::kCache, 512,
                                      ModelFormat::kCsrBaseline,
                                      IsaTier::kScalar);
  EXPECT_LT(n512.total_seconds, n64.total_seconds);
  EXPECT_GT(n512.total_seconds, n64.total_seconds / 16.0);  // not perfect
}

TEST(Roofline, CeilingsMatchFigure9) {
  const RooflineCeilings c = knl_ceilings_fig9();
  EXPECT_DOUBLE_EQ(c.peak_gflops, 1018.4);
  EXPECT_DOUBLE_EQ(c.mem_gbs, 419.7);
  // at AI = 0.132 the MCDRAM roofline is ~55 Gflop/s
  EXPECT_NEAR(roofline_limit(c, 0.132), 55.4, 1.0);
}

TEST(Roofline, SellAvx512ApproachesMcdramCeiling) {
  // Figure 9: "the AVX-512 version of the sliced ELLPACK SpMV kernel has
  // pushed the baseline performance close to the MCDRAM roofline."
  const auto points = modeled_roofline_points();
  const RooflineCeilings c = knl_ceilings_fig9();
  double sell512 = 0.0, base = 0.0;
  for (const auto& pt : points) {
    if (pt.label == "SELL using AVX512") {
      sell512 = pt.gflops / roofline_limit(c, pt.ai);
    }
    if (pt.label == "CSR baseline") {
      base = pt.gflops / roofline_limit(c, pt.ai);
    }
  }
  EXPECT_GT(sell512, 0.7);   // close to the ceiling
  EXPECT_LT(sell512, 1.05);  // never above it
  EXPECT_LT(base, 0.5);      // baseline far below
}

TEST(Roofline, MeasuredPeakIsPositive) {
  const double peak = measured_peak_gflops(50);
  EXPECT_GT(peak, 0.5);  // any real machine beats 0.5 Gflop/s
}

TEST(Machine, Table1Profiles) {
  const auto machines = table1_machines();
  ASSERT_EQ(machines.size(), 4u);
  EXPECT_EQ(machines[3].name, "KNL 7230");
  EXPECT_EQ(machines[3].cores, 64);
  EXPECT_TRUE(machines[3].has_mcdram());
  EXPECT_FALSE(machines[0].has_mcdram());
  // Skylake supports AVX-512, Haswell/Broadwell do not
  EXPECT_EQ(machines[2].max_tier, IsaTier::kAvx512);
  EXPECT_EQ(machines[0].max_tier, IsaTier::kAvx2);
  for (const auto& m : machines) EXPECT_GT(m.peak_gflops(), 100.0);
}

}  // namespace
}  // namespace kestrel::perf
