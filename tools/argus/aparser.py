"""Argus C++-subset parser.

Recursive-descent parser for the dialect the kernel TUs are written in:
namespaces, function templates over `<int R, bool Add>`-style parameter
lists, declarations (including arrays and alignas), for/while/do/if
(+`if constexpr`)/switch/return, and the expression grammar the kernels use
(calls with explicit template arguments, member access, casts, intrinsics).

The goal is *faithful structure*, not full C++: anything outside the dialect
is a parse error, which Argus reports as a TU-level violation — a kernel that
cannot be parsed cannot be proven safe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from alexer import Tok, tokenize

# Words that begin a type in this dialect. Used to disambiguate declarations
# from expression statements and to accept C-style casts.
TYPE_WORDS = {
    "void", "bool", "char", "short", "int", "long", "float", "double",
    "unsigned", "signed", "auto",
    "size_t", "ssize_t", "ptrdiff_t", "uint8_t", "uint16_t", "uint32_t",
    "uint64_t", "int8_t", "int16_t", "int32_t", "int64_t",
    "Index", "Scalar",
    "__m128", "__m128d", "__m128i", "__m256", "__m256d", "__m256i",
    "__m512", "__m512d", "__m512i", "__mmask8", "__mmask16", "__mmask32",
    "__mmask64",
}
TYPE_PREFIX_WORDS = {"const", "constexpr", "static", "inline", "volatile"}


class ParseError(Exception):
    def __init__(self, line: int, msg: str):
        super().__init__(f"line {line}: {msg}")
        self.line = line


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------

@dataclass
class Expr:
    line: int = 0


@dataclass
class Num(Expr):
    value: int = 0


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Member(Expr):
    base: Optional[Expr] = None
    name: str = ""


@dataclass
class Subscript(Expr):
    base: Optional[Expr] = None
    index: Optional[Expr] = None


@dataclass
class Call(Expr):
    fn: str = ""                      # flattened callee name, e.g. std::min
    targs: Tuple[str, ...] = ()       # textual template args, e.g. ("Add",)
    args: Tuple[Expr, ...] = ()
    method_of: Optional[Expr] = None  # receiver for obj.method(...) calls


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None
    postfix: bool = False


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class Ternary(Expr):
    cond: Optional[Expr] = None
    then: Optional[Expr] = None
    other: Optional[Expr] = None


@dataclass
class Cast(Expr):
    ctype: str = ""
    operand: Optional[Expr] = None


@dataclass
class Sizeof(Expr):
    arg: str = ""


@dataclass
class Stmt:
    line: int = 0


@dataclass
class Block(Stmt):
    stmts: List[Stmt] = field(default_factory=list)


@dataclass
class Decl(Stmt):
    dtype: str = ""
    name: str = ""
    init: Optional[Expr] = None
    array_size: Optional[Expr] = None  # not None => array declaration
    braced_empty_init: bool = False    # `= {}` / `{}` zero init
    aligned: int = 0                   # alignas(N)


@dataclass
class Assign(Stmt):
    target: Optional[Expr] = None
    op: str = "="                      # =, +=, -=, ...
    value: Optional[Expr] = None


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: Optional[Stmt] = None


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: Optional[Stmt] = None
    do_while: bool = False


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then: Optional[Stmt] = None
    other: Optional[Stmt] = None
    constexpr: bool = False


@dataclass
class SwitchCase:
    label: Optional[int]               # None => default
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Switch(Stmt):
    expr: Optional[Expr] = None
    cases: List[SwitchCase] = field(default_factory=list)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass
class Jump(Stmt):
    kind: str = "break"               # break | continue


@dataclass
class Param:
    ptype: str
    name: str
    is_pointer: bool
    is_const: bool


@dataclass
class Func:
    name: str
    params: List[Param]
    body: Block
    tparams: List[Tuple[str, str]]    # (kind, name): ("int","R"),("bool","Add")
    annots: List[Tuple[int, str]]     # argus annotation comments above
    line: int = 0
    rtype: str = ""


@dataclass
class TopDecl:
    name: str
    dtype: str
    annots: List[Tuple[int, str]]
    line: int = 0


@dataclass
class TUnit:
    path: str
    funcs: List[Func] = field(default_factory=list)
    decls: List[TopDecl] = field(default_factory=list)
    annots: List[Tuple[int, str]] = field(default_factory=list)  # TU-level


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------

class Parser:
    def __init__(self, toks: List[Tok], path: str = "<mem>"):
        self.toks = toks
        self.pos = 0
        self.path = path

    # -- token helpers ------------------------------------------------------
    def cur(self) -> Tok:
        return self.toks[self.pos]

    def peek(self, off: int = 1) -> Tok:
        i = min(self.pos + off, len(self.toks) - 1)
        return self.toks[i]

    def at(self, val: str) -> bool:
        t = self.cur()
        return t.val == val and t.kind in ("punct", "id")

    def accept(self, val: str) -> bool:
        if self.at(val):
            self.pos += 1
            return True
        return False

    def expect(self, val: str) -> Tok:
        t = self.cur()
        if not self.accept(val):
            raise ParseError(t.line, f"expected {val!r}, found {t.val!r}")
        return t

    def advance(self) -> Tok:
        t = self.cur()
        if t.kind != "eof":
            self.pos += 1
        return t

    def save(self) -> int:
        return self.pos

    def restore(self, mark: int) -> None:
        self.pos = mark

    def skip_annots(self) -> List[Tuple[int, str]]:
        out = []
        while self.cur().kind == "annot":
            t = self.advance()
            out.append((t.line, t.val))
        return out

    # -- translation unit ---------------------------------------------------
    def parse_tu(self) -> TUnit:
        tu = TUnit(self.path)
        self._parse_scope(tu, top=True)
        return tu

    def _parse_scope(self, tu: TUnit, top: bool) -> None:
        while True:
            pending = self.skip_annots()
            t = self.cur()
            if t.kind == "eof":
                if pending:
                    tu.annots.extend(pending)
                return
            if t.val == "}" and not top:
                if pending:
                    tu.annots.extend(pending)
                return
            if t.val == "namespace":
                self.advance()
                while self.cur().kind == "id" or self.at("::"):
                    self.advance()
                self.expect("{")
                if pending:
                    tu.annots.extend(pending)
                self._parse_scope(tu, top=False)
                self.expect("}")
                continue
            if t.val == "using":
                while not self.accept(";"):
                    if self.cur().kind == "eof":
                        raise ParseError(t.line, "unterminated using")
                    self.advance()
                continue
            tparams: List[Tuple[str, str]] = []
            if t.val == "template":
                self.advance()
                self.expect("<")
                while not self.accept(">"):
                    kind = self.advance().val
                    name = self.advance().val
                    tparams.append((kind, name))
                    self.accept(",")
            self._parse_top_entity(tu, tparams, pending)

    def _parse_top_entity(self, tu: TUnit, tparams, annots) -> None:
        start_line = self.cur().line
        dtype, align = self._parse_type()
        name = self._parse_qualified_name()
        if self.at("("):
            params = self._parse_params()
            if self.accept(";"):
                return  # forward declaration
            body = self._parse_block()
            tu.funcs.append(Func(name=name, params=params, body=body,
                                 tparams=tparams, annots=annots,
                                 line=start_line, rtype=dtype))
            return
        # Top-level variable (e.g. `constexpr auto kOffsets = ...;`).
        depth = 0
        while True:
            t = self.cur()
            if t.kind == "eof":
                raise ParseError(start_line, f"unterminated declaration {name}")
            if t.val in "([{":
                depth += 1
            elif t.val in ")]}":
                depth -= 1
            elif t.val == ";" and depth == 0:
                self.advance()
                break
            self.advance()
        tu.decls.append(TopDecl(name=name, dtype=dtype, annots=annots,
                                line=start_line))

    # -- types --------------------------------------------------------------
    def _looks_like_type(self) -> bool:
        t = self.cur()
        if t.kind != "id":
            return False
        if t.val in TYPE_PREFIX_WORDS or t.val in TYPE_WORDS or \
                t.val == "alignas":
            return True
        # Uppercase-initial identifiers (view structs, std:: types).
        if t.val == "std" and self.peek().val == "::":
            return True
        return t.val[0].isupper()

    def _parse_type(self) -> Tuple[str, int]:
        """Consume a type; returns (flattened type string, alignas bytes)."""
        parts: List[str] = []
        align = 0
        while True:
            t = self.cur()
            if t.val == "alignas":
                self.advance()
                self.expect("(")
                a = self.advance()
                align = int(a.val, 0) if a.kind == "num" else 0
                self.expect(")")
                continue
            if t.val in TYPE_PREFIX_WORDS:
                parts.append(self.advance().val)
                continue
            break
        parts.append(self._parse_type_name())
        while True:
            t = self.cur()
            if t.val in ("*", "&"):
                parts.append(self.advance().val)
            elif t.val in ("const", "__restrict", "__restrict__", "restrict"):
                parts.append(self.advance().val)
            else:
                break
        return " ".join(parts), align

    def _parse_type_name(self) -> str:
        t = self.cur()
        if t.kind != "id":
            raise ParseError(t.line, f"expected type name, found {t.val!r}")
        name = self.advance().val
        if name in ("unsigned", "signed", "long", "short"):
            while self.cur().val in ("int", "long", "short", "char"):
                name += " " + self.advance().val
        while self.at("::"):
            self.advance()
            name += "::" + self.advance().val
        if self.at("<"):
            name += self._consume_template_args_text()
        return name

    def _consume_template_args_text(self) -> str:
        """Consume a balanced `<...>` and return its text."""
        line = self.cur().line
        self.expect("<")
        depth = 1
        parts = ["<"]
        while depth > 0:
            t = self.cur()
            if t.kind == "eof":
                raise ParseError(line, "unterminated template args")
            if t.val == "<":
                depth += 1
            elif t.val == ">":
                depth -= 1
            elif t.val == ">>":
                depth -= 2
            parts.append(self.advance().val)
        return " ".join(parts)

    def _parse_qualified_name(self) -> str:
        t = self.cur()
        if t.kind != "id":
            raise ParseError(t.line, f"expected name, found {t.val!r}")
        name = self.advance().val
        while self.at("::"):
            self.advance()
            name += "::" + self.advance().val
        return name

    def _parse_params(self) -> List[Param]:
        self.expect("(")
        params: List[Param] = []
        if self.accept(")"):
            return params
        while True:
            ptype, _align = self._parse_type()
            pname = ""
            if self.cur().kind == "id":
                pname = self.advance().val
            params.append(Param(
                ptype=ptype, name=pname,
                is_pointer="*" in ptype,
                is_const=ptype.startswith("const ") or " const" in ptype))
            if self.accept(")"):
                return params
            self.expect(",")

    # -- statements ---------------------------------------------------------
    def _parse_block(self) -> Block:
        lbrace = self.expect("{")
        blk = Block(line=lbrace.line)
        while not self.accept("}"):
            if self.cur().kind == "eof":
                raise ParseError(lbrace.line, "unterminated block")
            blk.stmts.append(self._parse_stmt())
        return blk

    def _parse_stmt(self) -> Stmt:
        self.skip_annots()  # statement-level annotations are not used yet
        t = self.cur()
        if t.val == "{":
            return self._parse_block()
        if t.val == "if":
            self.advance()
            cexpr = bool(self.accept("constexpr"))
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            then = self._parse_stmt()
            other = self._parse_stmt() if self.accept("else") else None
            return If(line=t.line, cond=cond, then=then, other=other,
                      constexpr=cexpr)
        if t.val == "for":
            self.advance()
            self.expect("(")
            init: Optional[Stmt] = None
            if not self.accept(";"):
                init = self._parse_decl_or_assign()
                self.expect(";")
            cond = None
            if not self.at(";"):
                cond = self._parse_expr()
            self.expect(";")
            step = None
            if not self.at(")"):
                step = self._parse_assign_stmt_nosemi()
            self.expect(")")
            body = self._parse_stmt()
            return For(line=t.line, init=init, cond=cond, step=step, body=body)
        if t.val == "while":
            self.advance()
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            return While(line=t.line, cond=cond, body=self._parse_stmt())
        if t.val == "do":
            self.advance()
            body = self._parse_stmt()
            self.expect("while")
            self.expect("(")
            cond = self._parse_expr()
            self.expect(")")
            self.expect(";")
            return While(line=t.line, cond=cond, body=body, do_while=True)
        if t.val == "switch":
            self.advance()
            self.expect("(")
            expr = self._parse_expr()
            self.expect(")")
            self.expect("{")
            sw = Switch(line=t.line, expr=expr)
            cur_case: Optional[SwitchCase] = None
            while not self.accept("}"):
                if self.accept("case"):
                    v = self._parse_expr()
                    self.expect(":")
                    if not isinstance(v, Num):
                        raise ParseError(t.line, "non-constant case label")
                    cur_case = SwitchCase(label=v.value)
                    sw.cases.append(cur_case)
                    continue
                if self.accept("default"):
                    self.expect(":")
                    cur_case = SwitchCase(label=None)
                    sw.cases.append(cur_case)
                    continue
                if cur_case is None:
                    raise ParseError(self.cur().line,
                                     "statement before first case label")
                cur_case.body.append(self._parse_stmt())
            return sw
        if t.val == "return":
            self.advance()
            val = None if self.at(";") else self._parse_expr()
            self.expect(";")
            return Return(line=t.line, value=val)
        if t.val == "break":
            self.advance()
            self.expect(";")
            return Jump(line=t.line, kind="break")
        if t.val == "continue":
            self.advance()
            self.expect(";")
            return Jump(line=t.line, kind="continue")
        stmt = self._parse_decl_or_assign()
        self.expect(";")
        return stmt

    def _parse_decl_or_assign(self) -> Stmt:
        mark = self.save()
        if self._looks_like_type():
            try:
                return self._parse_decl()
            except ParseError:
                self.restore(mark)
        return self._parse_assign_stmt_nosemi()

    def _parse_decl(self) -> Stmt:
        line = self.cur().line
        dtype, align = self._parse_type()
        decls: List[Decl] = []
        while True:
            t = self.cur()
            if t.kind != "id":
                raise ParseError(t.line, "expected declarator name")
            name = self.advance().val
            array_size: Optional[Expr] = None
            if self.accept("["):
                array_size = None if self.at("]") else self._parse_expr()
                self.expect("]")
            init: Optional[Expr] = None
            braced_empty = False
            if self.accept("="):
                if self.accept("{"):
                    if not self.accept("}"):
                        raise ParseError(line, "non-empty braced initializer")
                    braced_empty = True
                else:
                    init = self._parse_expr()
            elif self.accept("{"):
                if not self.accept("}"):
                    raise ParseError(line, "non-empty braced initializer")
                braced_empty = True
            decls.append(Decl(line=line, dtype=dtype, name=name, init=init,
                              array_size=array_size,
                              braced_empty_init=braced_empty, aligned=align))
            if not self.accept(","):
                break
        if not self.at(";") and not self.at(")"):
            raise ParseError(line, f"unexpected token {self.cur().val!r} "
                             "after declarator")
        return decls[0] if len(decls) == 1 else Block(line=line, stmts=decls)

    def _parse_assign_stmt_nosemi(self) -> Stmt:
        line = self.cur().line
        target = self._parse_expr()
        t = self.cur()
        if t.val in ("=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
                     "<<=", ">>="):
            op = self.advance().val
            value = self._parse_expr()
            return Assign(line=line, target=target, op=op, value=value)
        return ExprStmt(line=line, expr=target)

    # -- expressions --------------------------------------------------------
    _BINOPS = [  # (ops, ) from lowest to highest precedence
        ("||",), ("&&",), ("|",), ("^",), ("&",), ("==", "!="),
        ("<", ">", "<=", ">="), ("<<", ">>"), ("+", "-"), ("*", "/", "%"),
    ]

    def _parse_expr(self) -> Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self._parse_expr()
            self.expect(":")
            other = self._parse_ternary()
            return Ternary(line=cond.line, cond=cond, then=then, other=other)
        return cond

    def _parse_binary(self, level: int) -> Expr:
        if level >= len(self._BINOPS):
            return self._parse_unary()
        lhs = self._parse_binary(level + 1)
        ops = self._BINOPS[level]
        while True:
            t = self.cur()
            if t.val in ops and t.kind == "punct":
                # Don't eat `>` that closes a template arg list: callers that
                # parse template args consume them before expressions.
                self.advance()
                rhs = self._parse_binary(level + 1)
                lhs = Binary(line=t.line, op=t.val, lhs=lhs, rhs=rhs)
            else:
                return lhs

    def _parse_unary(self) -> Expr:
        t = self.cur()
        if t.val in ("-", "+", "!", "~", "*", "&", "++", "--") and \
                t.kind == "punct":
            self.advance()
            operand = self._parse_unary()
            return Unary(line=t.line, op=t.val, operand=operand)
        if t.val == "(" and self._cast_ahead():
            self.advance()
            ctype, _align = self._parse_type()
            self.expect(")")
            operand = self._parse_unary()
            return Cast(line=t.line, ctype=ctype, operand=operand)
        return self._parse_postfix()

    def _cast_ahead(self) -> bool:
        """At '(': is this a C-style cast `(type) expr`?"""
        mark = self.save()
        try:
            self.advance()
            if not self._looks_like_type():
                return False
            self._parse_type()
            if not self.at(")"):
                return False
            self.advance()
            nxt = self.cur()
            return nxt.kind in ("id", "num") or nxt.val in ("(", "-", "~",
                                                            "!", "*", "&")
        except ParseError:
            return False
        finally:
            self.restore(mark)

    def _parse_postfix(self) -> Expr:
        e = self._parse_primary()
        while True:
            t = self.cur()
            if t.val == "[":
                self.advance()
                idx = self._parse_expr()
                self.expect("]")
                e = Subscript(line=t.line, base=e, index=idx)
            elif t.val in (".", "->"):
                self.advance()
                name = self.advance().val
                targs: Tuple[str, ...] = ()
                if self.at("<") and self._template_call_ahead():
                    targs = self._parse_template_args()
                if self.at("("):
                    args = self._parse_call_args()
                    e = Call(line=t.line, fn=name, targs=targs, args=args,
                             method_of=e)
                else:
                    e = Member(line=t.line, base=e, name=name)
            elif t.val in ("++", "--"):
                self.advance()
                e = Unary(line=t.line, op=t.val, operand=e, postfix=True)
            else:
                return e

    def _parse_primary(self) -> Expr:
        t = self.cur()
        if t.kind == "num":
            return Num(line=self.advance().line, value=_parse_int(t.val))
        if t.val == "(":
            self.advance()
            e = self._parse_expr()
            self.expect(")")
            return e
        if t.val in ("true", "false"):
            self.advance()
            return Num(line=t.line, value=1 if t.val == "true" else 0)
        if t.val == "nullptr":
            self.advance()
            return Num(line=t.line, value=0)
        if t.val == "sizeof":
            self.advance()
            self.expect("(")
            arg = self._parse_qualified_name() if self.cur().kind == "id" \
                else self.advance().val
            self.expect(")")
            return Sizeof(line=t.line, arg=arg)
        if t.val in ("static_cast", "reinterpret_cast", "const_cast"):
            self.advance()
            self.expect("<")
            ctype, _a = self._parse_type()
            self.expect(">")
            self.expect("(")
            operand = self._parse_expr()
            self.expect(")")
            return Cast(line=t.line, ctype=ctype, operand=operand)
        if t.kind == "id":
            name = self._parse_qualified_name()
            targs: Tuple[str, ...] = ()
            if self.at("<") and self._template_call_ahead():
                targs = self._parse_template_args()
            if self.at("("):
                args = self._parse_call_args()
                return Call(line=t.line, fn=name, targs=targs, args=args)
            return Ident(line=t.line, name=name)
        raise ParseError(t.line, f"unexpected token {t.val!r} in expression")

    def _template_call_ahead(self) -> bool:
        """At '<' after a name: is this `<args...>(` (an explicit template
        call) rather than a less-than comparison?"""
        mark = self.save()
        try:
            self.advance()
            depth = 1
            steps = 0
            while depth > 0 and steps < 40:
                t = self.cur()
                if t.kind == "eof" or t.val in (";", "{", "}"):
                    return False
                if t.val == "<":
                    depth += 1
                elif t.val == ">":
                    depth -= 1
                elif t.val == ">>":
                    depth -= 2
                self.advance()
                steps += 1
            return depth <= 0 and self.at("(")
        finally:
            self.restore(mark)

    def _parse_template_args(self) -> Tuple[str, ...]:
        self.expect("<")
        args: List[str] = []
        cur: List[str] = []
        depth = 1
        while depth > 0:
            t = self.advance()
            if t.val == "<":
                depth += 1
            elif t.val in (">", ">>"):
                depth -= 1 if t.val == ">" else 2
                if depth <= 0:
                    break
            elif t.val == "," and depth == 1:
                args.append(" ".join(cur))
                cur = []
                continue
            cur.append(t.val)
        if cur:
            args.append(" ".join(cur))
        return tuple(args)

    def _parse_call_args(self) -> Tuple[Expr, ...]:
        self.expect("(")
        args: List[Expr] = []
        if self.accept(")"):
            return tuple(args)
        while True:
            args.append(self._parse_expr())
            if self.accept(")"):
                return tuple(args)
            self.expect(",")


def _parse_int(text: str) -> int:
    t = text.replace("'", "")
    if t[:2].lower() == "0x":
        body = t[2:]
        while body and body[-1] in "uUlL" and \
                not all(c in "0123456789abcdefABCDEF" for c in body):
            body = body[:-1]
        # Hex digits and u/l suffixes overlap on f/F; strip only letters that
        # leave a valid hex numeral behind.
        while body and not all(c in "0123456789abcdefABCDEF" for c in body):
            body = body[:-1]
        return int(body, 16)
    t = t.rstrip("uUlLfF")
    if "." in t or "e" in t or "E" in t:
        # Float literal: kernels only use them as data values; keep int domain.
        return int(float(t))
    return int(t, 0)


def parse_file(path: str) -> TUnit:
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    return Parser(tokenize(text), path).parse_tu()
