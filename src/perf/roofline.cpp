#include "perf/roofline.hpp"

#include <algorithm>

namespace kestrel::perf {

RooflineCeilings knl_ceilings_fig9() {
  // Values printed on the paper's Figure 9 (Empirical Roofline Tool on
  // Theta): 1018.4 Gflop/s max, L1 4593.3 GB/s, L2 1823.0 GB/s,
  // MCDRAM 419.7 GB/s.
  return {1018.4, 4593.3, 1823.0, 419.7};
}

double arithmetic_intensity(ModelFormat fmt, const SpmvWorkload& workload) {
  return 2.0 * static_cast<double>(workload.nnz) /
         static_cast<double>(workload.traffic_bytes(fmt));
}

double roofline_limit(const RooflineCeilings& c, double ai) {
  return std::min(c.peak_gflops, c.mem_gbs * ai);
}

std::vector<RooflinePoint> modeled_roofline_points(Index grid_n) {
  const SpmvWorkload w = SpmvWorkload::gray_scott(grid_n);
  const MachineProfile knl = knl7230();
  const MemoryMode mode = MemoryMode::kFlatMcdram;
  const int procs = knl.cores;
  using simd::IsaTier;

  struct Variant {
    const char* label;
    ModelFormat fmt;
    IsaTier tier;
  };
  const Variant variants[] = {
      {"SELL using AVX512", ModelFormat::kSell, IsaTier::kAvx512},
      {"SELL using AVX2", ModelFormat::kSell, IsaTier::kAvx2},
      {"SELL using AVX", ModelFormat::kSell, IsaTier::kAvx},
      {"CSR using AVX512", ModelFormat::kCsr, IsaTier::kAvx512},
      {"CSR using AVX2", ModelFormat::kCsr, IsaTier::kAvx2},
      {"CSR using AVX", ModelFormat::kCsr, IsaTier::kAvx},
      {"CSRPerm", ModelFormat::kCsrPerm, IsaTier::kAvx512},
      {"CSR baseline", ModelFormat::kCsrBaseline, IsaTier::kScalar},
      {"MKL CSR", ModelFormat::kMklCsr, IsaTier::kScalar},
  };
  std::vector<RooflinePoint> points;
  points.reserve(std::size(variants));
  for (const Variant& v : variants) {
    points.push_back({v.label, arithmetic_intensity(v.fmt, w),
                      modeled_spmv_gflops(knl, mode, procs, v.fmt, v.tier,
                                          w)});
  }
  return points;
}

}  // namespace kestrel::perf
