# Empty dependencies file for spmv_kernels_test.
# This may be replaced when dependencies are built.
