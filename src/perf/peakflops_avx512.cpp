// Register-resident FMA throughput measurement; compiled with AVX-512
// flags so measured_peak_gflops() reflects the host's true vector peak.
// Falls back to a scalar FMA chain if the CPU lacks AVX-512.

#include <immintrin.h>

#include "prof/profiler.hpp"
#include "perf/roofline.hpp"
#include "simd/isa.hpp"

namespace kestrel::perf {

namespace {

__attribute__((target("avx512f"))) double run_avx512_fma(double seconds) {
  // 8 independent accumulator chains hide the FMA latency.
  __m512d acc0 = _mm512_set1_pd(1.0), acc1 = _mm512_set1_pd(1.1);
  __m512d acc2 = _mm512_set1_pd(1.2), acc3 = _mm512_set1_pd(1.3);
  __m512d acc4 = _mm512_set1_pd(1.4), acc5 = _mm512_set1_pd(1.5);
  __m512d acc6 = _mm512_set1_pd(1.6), acc7 = _mm512_set1_pd(1.7);
  const __m512d a = _mm512_set1_pd(1.0 + 1e-9);
  const __m512d b = _mm512_set1_pd(1e-9);

  const double t0 = wall_time();
  std::uint64_t iters = 0;
  do {
    for (int i = 0; i < 4096; ++i) {
      acc0 = _mm512_fmadd_pd(acc0, a, b);
      acc1 = _mm512_fmadd_pd(acc1, a, b);
      acc2 = _mm512_fmadd_pd(acc2, a, b);
      acc3 = _mm512_fmadd_pd(acc3, a, b);
      acc4 = _mm512_fmadd_pd(acc4, a, b);
      acc5 = _mm512_fmadd_pd(acc5, a, b);
      acc6 = _mm512_fmadd_pd(acc6, a, b);
      acc7 = _mm512_fmadd_pd(acc7, a, b);
    }
    iters += 4096;
  } while (wall_time() - t0 < seconds);
  const double elapsed = wall_time() - t0;

  // keep the result alive
  const __m512d sum = _mm512_add_pd(
      _mm512_add_pd(_mm512_add_pd(acc0, acc1), _mm512_add_pd(acc2, acc3)),
      _mm512_add_pd(_mm512_add_pd(acc4, acc5), _mm512_add_pd(acc6, acc7)));
  volatile double sink = _mm512_reduce_add_pd(sum);
  (void)sink;

  // 8 FMAs * 8 lanes * 2 flops per iteration
  return static_cast<double>(iters) * 8.0 * 8.0 * 2.0 / elapsed / 1e9;
}

double run_scalar_fma(double seconds) {
  double acc0 = 1.0, acc1 = 1.1, acc2 = 1.2, acc3 = 1.3;
  const double a = 1.0 + 1e-9, b = 1e-9;
  const double t0 = wall_time();
  std::uint64_t iters = 0;
  do {
    for (int i = 0; i < 4096; ++i) {
      acc0 = acc0 * a + b;
      acc1 = acc1 * a + b;
      acc2 = acc2 * a + b;
      acc3 = acc3 * a + b;
    }
    iters += 4096;
  } while (wall_time() - t0 < seconds);
  const double elapsed = wall_time() - t0;
  volatile double sink = acc0 + acc1 + acc2 + acc3;
  (void)sink;
  return static_cast<double>(iters) * 4.0 * 2.0 / elapsed / 1e9;
}

}  // namespace

double measured_peak_gflops(int milliseconds_budget) {
  const double seconds = milliseconds_budget / 1000.0;
  if (simd::cpu_supports(simd::IsaTier::kAvx512)) {
    return run_avx512_fma(seconds);
  }
  return run_scalar_fma(seconds);
}

}  // namespace kestrel::perf
