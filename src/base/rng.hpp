#pragma once
// Deterministic, seedable RNG (xoshiro256**) for reproducible test matrices
// and workloads. Not for cryptography.

#include <cstdint>

#include "base/types.hpp"

namespace kestrel {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding
    for (auto& word : s_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, n); n > 0.
  Index next_index(Index n) {
    return static_cast<Index>(next_u64() % static_cast<std::uint64_t>(n));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace kestrel
