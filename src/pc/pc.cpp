#include "pc/pc.hpp"

#include "base/error.hpp"
#include "mat/csr.hpp"
#include "pc/bjacobi.hpp"
#include "pc/ilu0.hpp"
#include "pc/ilu0_level.hpp"
#include "pc/jacobi.hpp"
#include "pc/sor.hpp"

namespace kestrel::pc {

std::unique_ptr<Pc> make_pc(const std::string& type, const mat::Csr& a,
                            Index block_size) {
  if (type == "none") return std::make_unique<Identity>();
  if (type == "jacobi") return std::make_unique<Jacobi>(a);
  if (type == "bjacobi") return std::make_unique<BlockJacobi>(a, block_size);
  if (type == "sor") return std::make_unique<Sor>(a);
  if (type == "ilu") return std::make_unique<Ilu0>(a);
  if (type == "ilu-level") return std::make_unique<Ilu0Level>(a);
  KESTREL_FAIL("unknown pc type '" + type +
               "' (expected none|jacobi|bjacobi|sor|ilu|ilu-level)");
}

}  // namespace kestrel::pc
