#include "base/error.hpp"

namespace kestrel {

Error::Error(const std::string& what, const char* file, int line)
    : std::runtime_error(what + " [" + file + ":" + std::to_string(line) +
                         "]"),
      file_(file),
      line_(line) {}

RankFailure::RankFailure(int failed_rank, const std::string& what,
                         const char* file, int line)
    : Error("rank failure (rank " + std::to_string(failed_rank) + "): " +
                what,
            file, line),
      failed_rank_(failed_rank) {}

AbftError::AbftError(const std::string& format, Scalar drift,
                     const std::string& what, const char* file, int line)
    : Error("abft verification failed (" + format +
                ", drift=" + std::to_string(drift) + "): " + what,
            file, line),
      format_(format),
      drift_(drift) {}

IndexOverflowError::IndexOverflowError(GIndex count, const std::string& what,
                                       const char* file, int line)
    : Error("index overflow (" + std::to_string(count) + " entries > " +
                std::to_string(ceiling()) + "): " + what,
            file, line),
      count_(count) {}

OptionsError::OptionsError(const std::string& key, const std::string& value,
                           const std::string& expected, const char* file,
                           int line)
    : Error("option -" + key + " expects " + expected + ", got '" + value +
                "'",
            file, line),
      key_(key),
      value_(value),
      expected_(expected) {}

namespace detail {

void throw_error(const std::string& msg, const char* file, int line) {
  throw Error(msg, file, line);
}

std::string format_check_failure(const char* expr, const std::string& msg) {
  std::string out = "check failed: ";
  out += expr;
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  return out;
}

}  // namespace detail
}  // namespace kestrel
