#pragma once
// Level-scheduled ILU(0) — the paper's future-work item ("(possibly
// incomplete) LU decomposition and triangular solves ... to make [SELL]
// usable with more preconditioner choices", section 8).
//
// The factorization is the same pattern-restricted IKJ elimination as
// pc::Ilu0; the triangular solves are reorganized by LEVEL SCHEDULING:
// rows are grouped into levels such that every row in a level depends only
// on rows of earlier levels, making all rows within a level independent —
// the same across-rows parallelism that lets SELL vectorize SpMV. Rows
// inside a level are processed in slices (height 8, the SELL slice height)
// so a vector lane can own a row; the current implementation executes the
// slices with scalar lanes and exposes the schedule for inspection.

#include <vector>

#include "mat/csr.hpp"
#include "pc/pc.hpp"

namespace kestrel::pc {

class Ilu0Level final : public Pc {
 public:
  explicit Ilu0Level(const mat::Csr& a);

  /// z = U^{-1} L^{-1} r via level-scheduled sweeps.
  void apply(const Vector& r, Vector& z) const override;
  std::string name() const override { return "ilu-level"; }

  int num_lower_levels() const {
    return static_cast<int>(lower_level_ptr_.size()) - 1;
  }
  int num_upper_levels() const {
    return static_cast<int>(upper_level_ptr_.size()) - 1;
  }
  /// Rows of lower-triangular level l, in processing order.
  std::vector<Index> lower_level(int l) const;
  std::vector<Index> upper_level(int l) const;

  const mat::Csr& factors() const { return lu_; }

 private:
  void build_schedules();

  mat::Csr lu_;
  std::vector<Index> diag_pos_;

  // level schedules: rows concatenated level by level
  std::vector<Index> lower_rows_, upper_rows_;
  std::vector<Index> lower_level_ptr_, upper_level_ptr_;
};

}  // namespace kestrel::pc
