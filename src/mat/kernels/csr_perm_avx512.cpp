// AVX-512 CSRPerm (AIJPERM) SpMV: vectorized ACROSS rows within a group of
// equal-length rows (paper section 2.4). Values and column indices are
// gathered with computed offsets — the non-unit-stride access pattern that
// was effective on Cray X1 vector machines but, as Figure 8 shows, buys
// nothing over plain CSR on KNL.

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr_perm isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: csr_perm_spmv_avx512
// argus-param: a : view CsrPermView
// argus-param: x : in extent csr.n
// argus-param: y : out extent csr.m
// argus-traffic: csr_perm
void csr_perm_spmv_avx512(const CsrPermView& a, const Scalar* x, Scalar* y) {
  const CsrView& csr = a.csr;
  for (Index g = 0; g < a.ngroups; ++g) {
    const Index gb = a.group_begin[g];
    const Index ge = a.group_begin[g + 1];
    const Index len = a.group_rlen[g];
    Index p = gb;
    for (; p + 8 <= ge; p += 8) {
      const __m256i rows =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.perm + p));
      // base[r] = rowptr[rows[r]]
      __m256i off = _mm256_i32gather_epi32(csr.rowptr, rows, 4);
      __m512d acc = _mm512_setzero_pd();
      for (Index j = 0; j < len; ++j) {
        const __m256i cols = _mm256_i32gather_epi32(csr.colidx, off, 4);
        const __m512d vals = _mm512_i32gather_pd(off, csr.val, 8);
        const __m512d vx = _mm512_i32gather_pd(cols, x, 8);
        acc = _mm512_fmadd_pd(vals, vx, acc);
        off = _mm256_add_epi32(off, _mm256_set1_epi32(1));
      }
      _mm512_i32scatter_pd(y, rows, acc, 8);
    }
    for (; p < ge; ++p) {  // remainder rows of the group
      const Index row = a.perm[p];
      const Index base = csr.rowptr[row];
      Scalar sum = 0.0;
      for (Index j = 0; j < len; ++j) {
        sum += csr.val[base + j] * x[csr.colidx[base + j]];
      }
      y[row] = sum;
    }
  }
}

}  // namespace

void register_csr_perm_avx512() {
  KESTREL_REGISTER_KERNEL(kCsrPermSpmv, kAvx512, csr_perm_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
