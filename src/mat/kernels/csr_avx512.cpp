// AVX-512 CSR SpMV — Algorithm 1 of the paper.
//
// The inner product of one matrix row with x is vectorized 8 doubles at a
// time: contiguous loads from val, a 32-bit-index gather from x, and FMA
// accumulation. The loop remainder is vectorized with masked operations
// only when it is longer than 2 elements (section 4: below that the mask
// setup overhead exceeds the scalar cost).

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=avx512

namespace kestrel::mat::kernels {

namespace {

inline Scalar row_dot_avx512(const Scalar* val, const Index* colidx,
                             Index len, const Scalar* x) {
  __m512d acc = _mm512_setzero_pd();
  Index k = 0;
  for (; k + 8 <= len; k += 8) {
    const __m512d vals = _mm512_loadu_pd(val + k);
    const __m256i idx =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(colidx + k));
    const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
    acc = _mm512_fmadd_pd(vals, vx, acc);
  }
  Scalar sum = _mm512_reduce_add_pd(acc);
  const Index rem = len - k;
  if (rem > 2) {
    const __mmask8 mask = static_cast<__mmask8>((1u << rem) - 1u);
    const __m512d vals = _mm512_maskz_loadu_pd(mask, val + k);
    const __m256i idx = _mm256_maskz_loadu_epi32(mask, colidx + k);
    const __m512d vx =
        _mm512_mask_i32gather_pd(_mm512_setzero_pd(), mask, idx, x, 8);
    sum += _mm512_reduce_add_pd(_mm512_maskz_mul_pd(mask, vals, vx));
  } else {
    for (; k < len; ++k) sum += val[k] * x[colidx[k]];
  }
  return sum;
}

// argus-kernel: csr_spmv_avx512
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr
void csr_spmv_avx512(const CsrView& a, const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[i] = row_dot_avx512(a.val + begin, a.colidx + begin,
                          a.rowptr[i + 1] - begin, x);
  }
}

// argus-kernel: csr_spmv_add_rows_avx512
// argus-param: a : view CsrView
// argus-param: rows : in extent m elem [0, len(y))
// argus-param: x : in extent n
// argus-param: y : out
// argus-traffic: none
void csr_spmv_add_rows_avx512(const CsrView& a, const Index* rows,
                              const Scalar* x, Scalar* y) {
  for (Index i = 0; i < a.m; ++i) {
    const Index begin = a.rowptr[i];
    y[rows[i]] += row_dot_avx512(a.val + begin, a.colidx + begin,
                                 a.rowptr[i + 1] - begin, x);
  }
}

}  // namespace

void register_csr_avx512() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kAvx512, csr_spmv_avx512);
  KESTREL_REGISTER_KERNEL(kCsrSpmvAddRows, kAvx512, csr_spmv_add_rows_avx512);
}

}  // namespace kestrel::mat::kernels
