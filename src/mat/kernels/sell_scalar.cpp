// Scalar SELL SpMV reference. Walks the slice-major storage in the same
// order as the vector kernels (so padded entries are multiplied by zero),
// which makes it a bit-identical oracle for the vector tiers in tests.

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell isa=scalar

namespace kestrel::mat::kernels {

namespace {

template <bool Add>
void sell_spmv_scalar_impl(const SellView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;
  for (Index s = 0; s < a.nslices; ++s) {
    const Index row0 = s * c;
    const Index nrows = (row0 + c <= a.m) ? c : (a.m - row0);
    // Accumulate per-lane, walking slice columns exactly like the SIMD
    // kernels do.
    Scalar acc[64] = {};  // c <= 64 enforced at Sell construction
    for (Index k = a.sliceptr[s]; k < a.sliceptr[s + 1]; k += c) {
      for (Index lane = 0; lane < c; ++lane) {
        acc[lane] += a.val[k + lane] * x[a.colidx[k + lane]];
      }
    }
    for (Index lane = 0; lane < nrows; ++lane) {
      if constexpr (Add) {
        y[row0 + lane] += acc[lane];
      } else {
        y[row0 + lane] = acc[lane];
      }
    }
  }
}

// argus-kernel: sell_spmv_scalar
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: sell
void sell_spmv_scalar(const SellView& a, const Scalar* x, Scalar* y) {
  sell_spmv_scalar_impl<false>(a, x, y);
}
// argus-kernel: sell_spmv_add_scalar
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: sell
void sell_spmv_add_scalar(const SellView& a, const Scalar* x, Scalar* y) {
  sell_spmv_scalar_impl<true>(a, x, y);
}

/// ESB-style bit-array variant (paper section 5.3 ablation): skip padded
/// lanes via the mask instead of multiplying stored zeros.
// argus-kernel: sell_spmv_bitmask_scalar
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: none
void sell_spmv_bitmask_scalar(const SellView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;
  for (Index s = 0; s < a.nslices; ++s) {
    const Index row0 = s * c;
    const Index nrows = (row0 + c <= a.m) ? c : (a.m - row0);
    Scalar acc[64] = {};
    for (Index k = a.sliceptr[s]; k < a.sliceptr[s + 1]; k += c) {
      const std::uint64_t mask = a.bitmask[k / c];
      for (Index lane = 0; lane < c; ++lane) {
        if ((mask >> lane) & 1u) {
          acc[lane] += a.val[k + lane] * x[a.colidx[k + lane]];
        }
      }
    }
    for (Index lane = 0; lane < nrows; ++lane) y[row0 + lane] = acc[lane];
  }
}

}  // namespace

void register_sell_scalar() {
  KESTREL_REGISTER_KERNEL(kSellSpmv, kScalar, sell_spmv_scalar);
  KESTREL_REGISTER_KERNEL(kSellSpmvAdd, kScalar, sell_spmv_add_scalar);
  KESTREL_REGISTER_KERNEL(kSellSpmvBitmask, kScalar, sell_spmv_bitmask_scalar);
  // scalar fallback for the prefetch variant is the plain kernel
  KESTREL_REGISTER_KERNEL(kSellSpmvPrefetch, kScalar, sell_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
