// BiCGStab (van der Vorst) with right-preconditioning-style application of
// M^{-1} inside the recurrences, for general nonsymmetric systems.

#include <cmath>

#include "base/error.hpp"
#include "ksp/ksp.hpp"

namespace kestrel::ksp {

SolveResult BiCgStab::solve_once(LinearContext& ctx, const Vector& b,
                                 Vector& x) const {
  const Index n = ctx.local_size();
  KESTREL_CHECK(b.size() == n, "bicgstab: rhs size mismatch");
  KESTREL_CHECK(x.size() == n, "bicgstab: solution size mismatch");
  SolveResult result;

  Vector r(n), rhat(n), p(n), v(n), s(n), t(n), phat(n), shat(n);

  ctx.apply_operator(x, r);
  r.aypx(-1.0, b);
  rhat.copy_from(r);
  const Scalar rnorm0 = ctx.norm2(r);
  if (check(rnorm0, rnorm0, 0, &result)) return result;

  Scalar rho = 1.0, alpha = 1.0, omega = 1.0;
  p.set(0.0);
  v.set(0.0);

  for (int it = 1;; ++it) {
    const Scalar rho_next = ctx.dot(rhat, r);
    if (rho_next == 0.0 || omega == 0.0 || std::isnan(rho_next)) {
      result.converged = false;
      result.reason = Reason::kDivergedBreakdown;
      result.iterations = it;
      return result;
    }
    const Scalar beta = (rho_next / rho) * (alpha / omega);
    rho = rho_next;
    // p = r + beta (p - omega v)
    p.axpy(-omega, v);
    p.aypx(beta, r);

    ctx.apply_pc(p, phat);
    ctx.apply_operator(phat, v);
    const Scalar rhat_v = ctx.dot(rhat, v);
    if (rhat_v == 0.0 || std::isnan(rhat_v)) {
      result.converged = false;
      result.reason = Reason::kDivergedBreakdown;
      result.iterations = it;
      return result;
    }
    alpha = rho / rhat_v;

    s.copy_from(r);
    s.axpy(-alpha, v);
    const Scalar snorm = ctx.norm2(s);
    if (snorm <= settings_.atol ||
        snorm <= settings_.rtol * rnorm0) {
      x.axpy(alpha, phat);
      (void)check(snorm, rnorm0, it, &result);
      return result;
    }

    ctx.apply_pc(s, shat);
    ctx.apply_operator(shat, t);
    const Scalar tt = ctx.dot(t, t);
    if (!(tt > 0.0)) {  // also trips on NaN
      result.converged = false;
      result.reason = Reason::kDivergedBreakdown;
      result.iterations = it;
      return result;
    }
    omega = ctx.dot(t, s) / tt;

    x.axpy(alpha, phat);
    x.axpy(omega, shat);
    r.copy_from(s);
    r.axpy(-omega, t);

    const Scalar rnorm = ctx.norm2(r);
    if (check(rnorm, rnorm0, it, &result)) return result;
  }
}

}  // namespace kestrel::ksp
