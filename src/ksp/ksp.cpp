#include "ksp/ksp.hpp"

#include <cmath>

#include "aegis/fault.hpp"
#include "base/error.hpp"
#include "base/rng.hpp"
#include "ksp/context.hpp"
#include "pc/pc.hpp"
#include "prof/profiler.hpp"

namespace kestrel::ksp {

const char* reason_name(Reason r) {
  switch (r) {
    case Reason::kConvergedRtol:
      return "converged_rtol";
    case Reason::kConvergedAtol:
      return "converged_atol";
    case Reason::kDivergedMaxIts:
      return "diverged_max_iterations";
    case Reason::kDivergedNan:
      return "diverged_nan";
    case Reason::kDivergedBreakdown:
      return "diverged_breakdown";
    case Reason::kDeadlineExceeded:
      return "deadline_exceeded";
  }
  return "?";
}

void LinearContext::apply_pc(const Vector& r, Vector& z) {
  z.copy_from(r);
}

Scalar LinearContext::dot(const Vector& a, const Vector& b) {
  return a.dot(b);
}

Scalar LinearContext::norm2(const Vector& a) {
  return std::sqrt(dot(a, a));
}

SolveResult Solver::solve(LinearContext& ctx, const Vector& b,
                          Vector& x) const {
  if (!prof::enabled()) return solve_driver(ctx, b, x);
  // Owns the "KSPSolve" event: flop counting needs the iteration count, so
  // this is a manual begin/end rather than a ScopedEvent, kept LIFO-correct
  // across the unwind when the recovery budget is exhausted.
  static const int ev_ksp = prof::registered_event("KSPSolve");
  prof::Profiler& plog = prof::current();
  plog.begin(ev_ksp);
  SolveResult result;
  try {
    result = solve_driver(ctx, b, x);
  } catch (...) {
    plog.end(ev_ksp);
    throw;
  }
  const std::int64_t nnz = ctx.operator_nnz();
  plog.end(ev_ksp,
           static_cast<std::uint64_t>(result.iterations) * 2u *
               static_cast<std::uint64_t>(nnz > 0 ? nnz : 0));
  return result;
}

SolveResult Solver::solve_driver(LinearContext& ctx, const Vector& b,
                                 Vector& x) const {
  if (!settings_.breakdown_recovery) return solve_once(ctx, b, x);

  // Kestrel Aegis recovery driver. Every method recomputes the true
  // residual b - A x at entry, so a restart is simply another solve_once
  // from wherever the previous attempt left the iterate — unless that
  // iterate is NaN/Inf-poisoned, in which case we fall back to the guess
  // the caller handed in.
  Vector entry_guess(x.size());
  entry_guess.copy_from(x);

  aegis::AegisStats& st = aegis::stats();
  SolveResult result;
  int total_iterations = 0;
  int restarts = 0;
  for (;;) {
    bool abft_tripped = false;
    try {
      result = solve_once(ctx, b, x);
    } catch (const AbftError&) {
      // The operator's checksum retry already failed once; treat a thrown
      // AbftError like a breakdown and re-run the method, but give up and
      // rethrow once the restart budget is spent.
      if (restarts >= settings_.max_restarts) throw;
      abft_tripped = true;
      result = SolveResult{};  // iterations inside the aborted run are lost
      result.reason = Reason::kDivergedBreakdown;
    }
    total_iterations += result.iterations;
    const bool broken =
        !result.converged && (result.reason == Reason::kDivergedBreakdown ||
                              result.reason == Reason::kDivergedNan);
    if (!broken || restarts >= settings_.max_restarts) break;
    ++restarts;
    st.solver_restarts++;
    bool finite = true;
    for (Index i = 0; i < x.size(); ++i) {
      if (!std::isfinite(x[i])) {
        finite = false;
        break;
      }
    }
    if (!finite || abft_tripped) x.copy_from(entry_guess);
  }
  result.iterations = total_iterations;
  result.restarts = restarts;
  if (result.converged && restarts > 0) st.recoveries++;
  return result;
}

bool Solver::check(Scalar rnorm, Scalar rnorm0, int it,
                   SolveResult* out) const {
  out->iterations = it;
  out->residual_norm = rnorm;
  if (settings_.monitor) settings_.monitor(it, rnorm);
  if (prof::enabled()) {
    prof::current().record_history("KSP(" + name() + ")",
                                   static_cast<double>(it), rnorm);
  }
  if (std::isnan(rnorm) || std::isinf(rnorm)) {
    out->converged = false;
    out->reason = Reason::kDivergedNan;
    return true;
  }
  if (rnorm <= settings_.atol) {
    out->converged = true;
    out->reason = Reason::kConvergedAtol;
    return true;
  }
  if (rnorm <= settings_.rtol * rnorm0) {
    out->converged = true;
    out->reason = Reason::kConvergedRtol;
    return true;
  }
  // Deadline after the convergence tests: a solve that converges exactly at
  // the wire still reports success. Not a "broken" reason, so the Aegis
  // recovery driver never restarts an expired solve.
  if (settings_.deadline.expired()) {
    out->converged = false;
    out->reason = Reason::kDeadlineExceeded;
    return true;
  }
  if (it >= settings_.max_iterations) {
    out->converged = false;
    out->reason = Reason::kDivergedMaxIts;
    return true;
  }
  return false;
}

std::unique_ptr<Solver> make_solver(const std::string& type,
                                    Settings settings) {
  if (type == "cg") return std::make_unique<Cg>(settings);
  if (type == "gmres") return std::make_unique<Gmres>(settings);
  if (type == "fgmres") return std::make_unique<FGmres>(settings);
  if (type == "bicgstab" || type == "bcgs") {
    return std::make_unique<BiCgStab>(settings);
  }
  if (type == "richardson") return std::make_unique<Richardson>(settings);
  KESTREL_FAIL("unknown solver type '" + type +
               "' (expected cg|gmres|fgmres|bicgstab|richardson)");
}

Scalar estimate_max_eigenvalue(LinearContext& ctx, int iterations,
                               std::uint64_t seed) {
  const Index n = ctx.local_size();
  Rng rng(seed);
  Vector v(n), av(n), z(n);
  for (Index i = 0; i < n; ++i) v[i] = rng.uniform(-1.0, 1.0);
  Scalar lambda = 1.0;
  for (int it = 0; it < iterations; ++it) {
    const Scalar nv = ctx.norm2(v);
    if (nv == 0.0) break;
    v.scale(1.0 / nv);
    ctx.apply_operator(v, av);
    ctx.apply_pc(av, z);  // z = M^{-1} A v
    lambda = ctx.dot(v, z);
    v.copy_from(z);
  }
  return std::abs(lambda);
}

void SeqContext::apply_pc(const Vector& r, Vector& z) {
  if (pc_ == nullptr) {
    z.copy_from(r);
    return;
  }
  pc_->apply(r, z);
}

void ParContext::apply_pc(const Vector& r, Vector& z) {
  if (pc_ == nullptr) {
    z.copy_from(r);
    return;
  }
  pc_->apply(r, z);
}

}  // namespace kestrel::ksp
