// Geometric multigrid tests: V-cycle contraction, h-independent CG/GMRES
// iteration counts, Galerkin operator structure, SELL-backed levels.

#include <gtest/gtest.h>

#include <cmath>

#include "app/grid2d.hpp"
#include "app/laplacian.hpp"
#include "ksp/context.hpp"
#include "mat/sell.hpp"
#include "mat/spgemm.hpp"
#include "pc/mg.hpp"
#include "test_matrices.hpp"

namespace kestrel::pc {
namespace {

// Interpolation chain for the Dirichlet Laplacian via aggregation of the
// periodic-grid builder is not applicable; build a simple 1D-tensor
// full-weighting interpolation for the interior grid instead.
mat::Csr dirichlet_interpolation(Index nf) {
  // fine interior grid nf x nf (nf odd + 1? use nf = 2*nc + 1)
  const Index nc = (nf - 1) / 2;
  mat::Coo p(nf * nf, nc * nc);
  auto fid = [nf](Index i, Index j) { return j * nf + i; };
  auto cid = [nc](Index i, Index j) { return j * nc + i; };
  for (Index cj = 0; cj < nc; ++cj) {
    for (Index ci = 0; ci < nc; ++ci) {
      const Index fi = 2 * ci + 1;
      const Index fj = 2 * cj + 1;
      for (Index dj = -1; dj <= 1; ++dj) {
        for (Index di = -1; di <= 1; ++di) {
          const Index ii = fi + di;
          const Index jj = fj + dj;
          if (ii < 0 || ii >= nf || jj < 0 || jj >= nf) continue;
          const Scalar w =
              (di == 0 ? 1.0 : 0.5) * (dj == 0 ? 1.0 : 0.5);
          p.add(fid(ii, jj), cid(ci, cj), w);
        }
      }
    }
  }
  return p.to_csr();
}

Multigrid make_mg(Index nf, int levels,
                  Multigrid::FormatFactory factory = nullptr) {
  const mat::Csr a = app::laplacian_dirichlet(nf, nf);
  std::vector<mat::Csr> interps;
  Index n = nf;
  for (int l = 0; l + 1 < levels; ++l) {
    interps.push_back(dirichlet_interpolation(n));
    n = (n - 1) / 2;
  }
  Multigrid::Options opts;
  return Multigrid(a, std::move(interps), opts, std::move(factory));
}

TEST(Multigrid, VCycleContractsError) {
  const Index nf = 31;
  const mat::Csr a = app::laplacian_dirichlet(nf, nf);
  Multigrid mg = make_mg(nf, 3);
  EXPECT_EQ(mg.num_levels(), 3);

  // Solve A x = b approximately by iterating x += MG(b - A x); measure the
  // error contraction per cycle.
  const Vector x_true = [&] {
    Vector v(a.rows());
    for (Index i = 0; i < v.size(); ++i) v[i] = std::sin(0.37 * i);
    return v;
  }();
  Vector b;
  a.spmv(x_true, b);
  Vector x(a.rows()), r(a.rows()), z;
  Scalar prev_err = x_true.norm2();
  for (int cycle = 0; cycle < 4; ++cycle) {
    a.spmv(x.data(), r.data());
    for (Index i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
    mg.apply(r, z);
    x.axpy(1.0, z);
    Vector err;
    err.waxpby(1.0, x, -1.0, x_true);
    const Scalar e = err.norm2();
    EXPECT_LT(e, 0.45 * prev_err);  // strong contraction per V-cycle
    prev_err = e;
  }
}

TEST(Multigrid, HIndependentIterationCounts) {
  // CG + MG should converge in roughly constant iterations across grid
  // sizes (the reason the paper's solver uses MG: "avoid the typical
  // increase in the number of iterations as the grid is refined").
  std::vector<int> iters;
  for (Index nf : {15, 31, 63}) {
    const mat::Csr a = app::laplacian_dirichlet(nf, nf);
    Multigrid mg = make_mg(nf, nf >= 63 ? 4 : 3);
    Vector b(a.rows(), 1.0);
    Vector x(a.rows());
    ksp::Settings settings;
    settings.rtol = 1e-8;
    const ksp::Cg cg(settings);
    ksp::SeqContext ctx(a, &mg);
    const auto res = cg.solve(ctx, b, x);
    ASSERT_TRUE(res.converged) << "nf=" << nf;
    iters.push_back(res.iterations);
  }
  EXPECT_LE(iters[2], iters[0] + 4);  // near-constant in h
  EXPECT_LE(iters[2], 15);
}

TEST(Multigrid, GalerkinCoarseOperatorsShrink) {
  Multigrid mg = make_mg(31, 3);
  EXPECT_GT(mg.level_csr(0).rows(), mg.level_csr(1).rows());
  EXPECT_GT(mg.level_csr(1).rows(), mg.level_csr(2).rows());
  // Galerkin coarse Laplacian stays symmetric
  const mat::Csr& ac = mg.level_csr(2);
  for (Index i = 0; i < ac.rows(); ++i) {
    for (Index j : ac.row_cols(i)) {
      EXPECT_NEAR(ac.at(i, j), ac.at(j, i), 1e-12);
    }
  }
}

TEST(Multigrid, SellLevelsMatchCsrLevels) {
  // The format factory swaps every level operator to SELL; results must be
  // identical (up to roundoff) to CSR-backed multigrid.
  Multigrid mg_csr = make_mg(31, 3);
  Multigrid mg_sell = make_mg(31, 3, [](const mat::Csr& a) {
    return std::make_shared<const mat::Sell>(a);
  });
  EXPECT_EQ(mg_sell.level_operator(0).format_name(), "sell");

  Vector r(mg_csr.level_csr(0).rows());
  for (Index i = 0; i < r.size(); ++i) r[i] = std::cos(0.1 * i);
  Vector z1, z2;
  mg_csr.apply(r, z1);
  mg_sell.apply(r, z2);
  for (Index i = 0; i < r.size(); ++i) EXPECT_NEAR(z1[i], z2[i], 1e-10);
}

TEST(Multigrid, PeriodicGrayScottStyleHierarchy) {
  // Periodic 2-dof grid hierarchy via Grid2D::interpolation — the actual
  // shape used by the Gray–Scott solve. The shifted diffusion operator
  // (I - dt*theta*D∇²) is SPD and MG must handle the 2-dof interleaving.
  const app::Grid2D grid(16, 16, 2, 1.0, 1.0);
  const mat::Csr lap_u = app::laplacian_periodic(grid, 0, 1.0e-2);
  const mat::Csr lap_v = app::laplacian_periodic(grid, 1, 0.5e-2);
  const mat::Csr shifted = mat::add(
      1.0, mat::identity(grid.size()), -1.0,
      mat::add(1.0, lap_u, 1.0, lap_v));
  std::vector<mat::Csr> interps{grid.interpolation()};
  Multigrid::Options opts;
  Multigrid mg(shifted, std::move(interps), opts);

  Vector b(grid.size(), 1.0);
  Vector x(grid.size());
  ksp::Settings settings;
  settings.rtol = 1e-9;
  const ksp::Cg cg(settings);
  ksp::SeqContext ctx(shifted, &mg);
  const auto res = cg.solve(ctx, b, x);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 10);
}

TEST(Multigrid, ChebyshevSmootherConvergesLikeJacobi) {
  // Chebyshev/Jacobi smoothing (PETSc's default) should give MG at least
  // as strong contraction as damped Jacobi on the Laplacian.
  const Index nf = 31;
  const mat::Csr a = app::laplacian_dirichlet(nf, nf);

  auto iterations_with = [&](Multigrid::Smoother smoother) {
    std::vector<mat::Csr> interps{dirichlet_interpolation(nf)};
    Multigrid::Options opts;
    opts.smoother = smoother;
    Multigrid mg(a, std::move(interps), opts);
    Vector b(a.rows(), 1.0), x(a.rows());
    ksp::Settings settings;
    settings.rtol = 1e-8;
    const ksp::Cg cg(settings);
    ksp::SeqContext ctx(a, &mg);
    const auto res = cg.solve(ctx, b, x);
    EXPECT_TRUE(res.converged);
    return res.iterations;
  };

  const int jac = iterations_with(Multigrid::Smoother::kJacobi);
  const int cheb = iterations_with(Multigrid::Smoother::kChebyshev);
  EXPECT_LE(cheb, jac + 1);
  EXPECT_LE(cheb, 20);
}

TEST(Multigrid, ChebyshevEigenvalueEstimateIsSane) {
  // For the Jacobi-preconditioned Laplacian, lambda_max(D^{-1}A) < 2.
  const mat::Csr a = app::laplacian_dirichlet(15, 15);
  std::vector<mat::Csr> interps{dirichlet_interpolation(15)};
  Multigrid::Options opts;
  opts.smoother = Multigrid::Smoother::kChebyshev;
  const Multigrid mg(a, std::move(interps), opts);
  // reaching in via behavior: one V-cycle must still contract strongly
  Vector r(a.rows(), 1.0), z;
  mg.apply(r, z);
  Vector az;
  a.spmv(z, az);
  az.aypx(-1.0, r);
  EXPECT_LT(az.norm2(), 0.35 * r.norm2());
}

TEST(Multigrid, InterpolationShapeMismatchRejected) {
  const mat::Csr a = app::laplacian_dirichlet(15, 15);
  std::vector<mat::Csr> bad{dirichlet_interpolation(31)};  // wrong size
  EXPECT_THROW(Multigrid(a, std::move(bad)), Error);
}

}  // namespace
}  // namespace kestrel::pc
