// Distributed matrix/vector tests: the parallel overlapped SpMV of paper
// section 2.2 must agree with the sequential kernel for any rank count,
// row split and diagonal-block format.

#include <gtest/gtest.h>

#include <cmath>

#include "app/gray_scott.hpp"
#include "par/parmat.hpp"
#include "test_matrices.hpp"

namespace kestrel::par {
namespace {

TEST(Layout, EvenSplit) {
  const Layout l = Layout::even(10, 3);
  EXPECT_EQ(l.global_size(), 10);
  EXPECT_EQ(l.local_size(0), 4);  // 10 % 3 extra goes to rank 0
  EXPECT_EQ(l.local_size(1), 3);
  EXPECT_EQ(l.local_size(2), 3);
  EXPECT_EQ(l.begin(1), 4);
  EXPECT_EQ(l.owner(0), 0);
  EXPECT_EQ(l.owner(4), 1);
  EXPECT_EQ(l.owner(9), 2);
  EXPECT_THROW(l.owner(10), Error);
}

TEST(Layout, FromSizes) {
  const Layout l = Layout::from_sizes({2, 0, 5});
  EXPECT_EQ(l.global_size(), 7);
  EXPECT_EQ(l.local_size(1), 0);
  EXPECT_EQ(l.begin(2), 2);
}

TEST(ParVector, GatherAllReassembles) {
  auto layout = std::make_shared<Layout>(Layout::even(11, 3));
  Fabric::run(3, [&](Comm& comm) {
    ParVector v(layout, comm.rank());
    for (Index i = 0; i < v.local_size(); ++i) {
      v.local()[i] = static_cast<Scalar>(v.own_begin() + i);
    }
    const Vector full = v.gather_all(comm);
    ASSERT_EQ(full.size(), 11);
    for (Index i = 0; i < 11; ++i) EXPECT_DOUBLE_EQ(full[i], i);
  });
}

TEST(ParVector, DotAndNormAreGlobal) {
  auto layout = std::make_shared<Layout>(Layout::even(8, 4));
  Fabric::run(4, [&](Comm& comm) {
    ParVector a(layout, comm.rank()), b(layout, comm.rank());
    for (Index i = 0; i < a.local_size(); ++i) {
      a.local()[i] = 1.0;
      b.local()[i] = 2.0;
    }
    EXPECT_DOUBLE_EQ(a.dot(b, comm), 16.0);
    EXPECT_DOUBLE_EQ(a.norm2(comm), std::sqrt(8.0));
  });
}

void check_parallel_spmv(const mat::Csr& global, int nranks,
                         ParMatrixOptions opts) {
  const auto x = testing::random_x(global.cols(), 77);
  Vector xg(global.cols());
  for (Index i = 0; i < global.cols(); ++i) {
    xg[i] = x[static_cast<std::size_t>(i)];
  }
  Vector y_seq;
  global.spmv(xg, y_seq);

  auto layout = std::make_shared<Layout>(Layout::even(global.rows(), nranks));
  Fabric::run(nranks, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, opts);
    ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
    xp.set_from_global(xg);
    a.spmv(xp, yp, comm);
    const Vector y_par = yp.gather_all(comm);
    ASSERT_EQ(y_par.size(), y_seq.size());
    for (Index i = 0; i < y_seq.size(); ++i) {
      EXPECT_NEAR(y_par[i], y_seq[i], 1e-11) << "row " << i;
    }
  });
}

class ParSpmv : public ::testing::TestWithParam<int> {};

TEST_P(ParSpmv, CsrDiagMatchesSequential) {
  check_parallel_spmv(testing::banded(53, {-5, -1, 1, 5}), GetParam(), {});
}

TEST_P(ParSpmv, SellDiagMatchesSequential) {
  ParMatrixOptions opts;
  opts.diag_format = DiagFormat::kSell;
  check_parallel_spmv(testing::banded(53, {-5, -1, 1, 5}), GetParam(), opts);
}

TEST_P(ParSpmv, CsrPermDiagMatchesSequential) {
  ParMatrixOptions opts;
  opts.diag_format = DiagFormat::kCsrPerm;
  check_parallel_spmv(testing::power_law(60), GetParam(), opts);
}

TEST_P(ParSpmv, RandomMatrixMatchesSequential) {
  check_parallel_spmv(testing::uniform_random(47, 47, 5), GetParam(), {});
}

TEST_P(ParSpmv, GrayScottJacobianMatchesSequential) {
  app::GrayScott gs(8);
  Vector u;
  gs.initial_condition(u);
  ParMatrixOptions opts;
  opts.diag_format = DiagFormat::kSell;
  check_parallel_spmv(gs.rhs_jacobian(u), GetParam(), opts);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ParSpmv, ::testing::Values(1, 2, 3, 5, 8),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "ranks" + std::to_string(pinfo.param);
                         });

TEST(ParMatrix, SplitsDiagAndOffdiag) {
  const mat::Csr global = testing::banded(20, {-6, 6});
  auto layout = std::make_shared<Layout>(Layout::even(20, 2));
  Fabric::run(2, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, {});
    EXPECT_EQ(a.local_rows(), 10);
    // total nnz conserved across the split
    const std::int64_t total =
        comm.allreduce(a.local_nnz(), Comm::ReduceOp::kSum);
    EXPECT_EQ(total, global.nnz());
    // the band reaches 6 columns across the midline: ghosts needed
    EXPECT_GT(a.num_ghosts(), 0);
    EXPECT_LE(a.num_ghosts(), 6);
    // compressed off-diagonal block: far fewer rows than the local block
    EXPECT_LT(a.offdiag_block().rows(), a.local_rows());
  });
}

TEST(ParMatrix, BlockDiagonalMatrixNeedsNoCommunication) {
  // purely block-diagonal by the layout: off-diag blocks empty
  mat::Coo coo(12, 12);
  for (Index i = 0; i < 12; ++i) coo.add(i, (i / 4) * 4 + (i + 1) % 4, 1.0);
  const mat::Csr global = coo.to_csr();
  auto layout = std::make_shared<Layout>(Layout::even(12, 3));
  Fabric::run(3, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, {});
    EXPECT_EQ(a.num_ghosts(), 0);
    EXPECT_EQ(a.offdiag_block().nnz(), 0);
  });
}

TEST(ParMatrix, ToleratesRankWithZeroRows) {
  // a custom layout where one rank owns nothing must still work
  const mat::Csr global = testing::banded(14, {-2, 2});
  auto layout =
      std::make_shared<Layout>(Layout::from_sizes({7, 0, 7}));
  const auto x = testing::random_x(14, 5);
  Vector xg(14);
  for (Index i = 0; i < 14; ++i) xg[i] = x[static_cast<std::size_t>(i)];
  Vector y_seq;
  global.spmv(xg, y_seq);
  Fabric::run(3, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, {});
    ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
    xp.set_from_global(xg);
    a.spmv(xp, yp, comm);
    const Vector y_par = yp.gather_all(comm);
    for (Index i = 0; i < 14; ++i) EXPECT_NEAR(y_par[i], y_seq[i], 1e-12);
  });
}

TEST(ParMatrix, UnevenCustomLayout) {
  const mat::Csr global = testing::uniform_random(30, 30, 4, 91);
  auto layout =
      std::make_shared<Layout>(Layout::from_sizes({1, 12, 3, 14}));
  const auto x = testing::random_x(30, 6);
  Vector xg(30);
  for (Index i = 0; i < 30; ++i) xg[i] = x[static_cast<std::size_t>(i)];
  Vector y_seq;
  global.spmv(xg, y_seq);
  Fabric::run(4, [&](Comm& comm) {
    ParMatrixOptions opts;
    opts.diag_format = DiagFormat::kSell;
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, opts);
    ParVector xp(layout, comm.rank()), yp(layout, comm.rank());
    xp.set_from_global(xg);
    a.spmv(xp, yp, comm);
    const Vector y_par = yp.gather_all(comm);
    for (Index i = 0; i < 30; ++i) EXPECT_NEAR(y_par[i], y_seq[i], 1e-11);
  });
}

TEST(ParMatrix, RepeatedSpmvIsStable) {
  const mat::Csr global = testing::banded(31, {-2, 2});
  auto layout = std::make_shared<Layout>(Layout::even(31, 3));
  Fabric::run(3, [&](Comm& comm) {
    const ParMatrix a = ParMatrix::from_global(global, layout, comm, {});
    ParVector x(layout, comm.rank()), y(layout, comm.rank());
    for (Index i = 0; i < x.local_size(); ++i) x.local()[i] = 1.0;
    a.spmv(x, y, comm);
    const Vector first = y.gather_all(comm);
    for (int rep = 0; rep < 5; ++rep) a.spmv(x, y, comm);
    const Vector last = y.gather_all(comm);
    for (Index i = 0; i < first.size(); ++i) {
      EXPECT_DOUBLE_EQ(first[i], last[i]);
    }
  });
}

}  // namespace
}  // namespace kestrel::par
