#pragma once
// Point-Jacobi preconditioner: z_i = r_i / A_ii. Works with any Matrix
// (only needs the diagonal) and is embarrassingly parallel — the smoother
// and coarse solver configuration used throughout the paper's experiments.

#include "pc/pc.hpp"
#include "vec/vector.hpp"

namespace kestrel::mat {
class Matrix;
}

namespace kestrel::pc {

class Jacobi final : public Pc {
 public:
  explicit Jacobi(const mat::Matrix& a);
  /// Damped variant: z = omega * D^{-1} r.
  Jacobi(const mat::Matrix& a, Scalar omega);

  void apply(const Vector& r, Vector& z) const override;
  std::string name() const override { return "jacobi"; }

 private:
  Vector inv_diag_;
  Scalar omega_ = 1.0;
};

}  // namespace kestrel::pc
