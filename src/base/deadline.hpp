#pragma once
// Kestrel Bastion: deadlines and cooperative cancellation.
//
// A Deadline is a cheap, copyable token carried down through the solver
// stack (ksp::Settings, snes::NewtonOptions, ts::ThetaOptions) and checked
// at every iteration boundary: KSP iterations (Solver::check), Newton steps
// and TS steps. Expiry is cooperative — the math notices at its next
// checkpoint, stops, and returns the best iterate it has, so a worker
// thread serving a slow or hung solve is reclaimed within roughly one
// iteration instead of blocking forever.
//
// Two expiry sources compose in one token:
//   * a wall-clock budget (steady_clock, immune to NTP steps), and
//   * a CancelSource flag shared with whoever may abort the request
//     (the solve service's cancel() path, a test, a signal handler).
// Either one tripping makes expired() true; a default-constructed Deadline
// has neither and never expires, so un-configured callers pay one branch.

#include <atomic>
#include <chrono>
#include <limits>
#include <memory>

namespace kestrel {

/// Shared cooperative-cancellation flag. Copy the source's token() into any
/// number of Deadlines; cancel() trips them all. Thread-safe.
class CancelSource {
 public:
  CancelSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  void cancel() { flag_->store(true, std::memory_order_release); }
  bool cancelled() const { return flag_->load(std::memory_order_acquire); }
  /// Reverts a previous cancel() (pooled/reused request slots).
  void reset() { flag_->store(false, std::memory_order_release); }

  std::shared_ptr<const std::atomic<bool>> token() const { return flag_; }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires (no wall budget, no cancel flag).
  Deadline() = default;

  /// Expires `seconds` from now; seconds <= 0 expires immediately.
  static Deadline after(double seconds) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  /// Expires at the given steady-clock instant.
  static Deadline at(Clock::time_point when) {
    Deadline d;
    d.has_deadline_ = true;
    d.when_ = when;
    return d;
  }

  /// The same wall budget, additionally tripped by `source.cancel()`.
  Deadline with_cancel(const CancelSource& source) const {
    Deadline d = *this;
    d.cancel_ = source.token();
    return d;
  }

  /// True when the token can ever expire (wall budget or cancel flag set).
  bool active() const { return has_deadline_ || cancel_ != nullptr; }

  /// True once the wall budget has elapsed or the bound source cancelled.
  /// Cost when inactive: two branches. The cancel flag is checked first so
  /// a cancelled request stops without touching the clock.
  bool expired() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_acquire)) {
      return true;
    }
    return has_deadline_ && Clock::now() >= when_;
  }

  /// Seconds until the wall budget elapses: +inf when there is none,
  /// clamped at 0 once past due (or cancelled).
  double remaining_seconds() const {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_acquire)) {
      return 0.0;
    }
    if (!has_deadline_) return std::numeric_limits<double>::infinity();
    const double s =
        std::chrono::duration<double>(when_ - Clock::now()).count();
    return s > 0.0 ? s : 0.0;
  }

 private:
  Clock::time_point when_{};
  bool has_deadline_ = false;
  std::shared_ptr<const std::atomic<bool>> cancel_;
};

}  // namespace kestrel
