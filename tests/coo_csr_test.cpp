// COO assembly and CSR format tests.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "mat/coo.hpp"
#include "mat/csr.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

TEST(Coo, DuplicatesAreSummed) {
  Coo coo(2, 2);
  coo.add(0, 0, 1.0);
  coo.add(0, 0, 2.5);
  coo.add(1, 1, -1.0);
  const Csr a = coo.to_csr();
  EXPECT_EQ(a.nnz(), 2);
  EXPECT_DOUBLE_EQ(a.at(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -1.0);
}

TEST(Coo, CancellationKeptUnlessDropped) {
  Coo coo(1, 2);
  coo.add(0, 1, 2.0);
  coo.add(0, 1, -2.0);
  EXPECT_EQ(coo.to_csr(false).nnz(), 1);  // explicit zero retained
  EXPECT_EQ(coo.to_csr(true).nnz(), 0);
}

TEST(Coo, BlockInsertion) {
  Coo coo(4, 4);
  const Scalar block[] = {1.0, 2.0, 3.0, 4.0};
  coo.add_block(2, 0, 2, 2, block);
  const Csr a = coo.to_csr();
  EXPECT_DOUBLE_EQ(a.at(2, 0), 1.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.at(3, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(3, 1), 4.0);
}

TEST(Coo, ColumnsSortedWithinRows) {
  Coo coo(1, 10);
  coo.add(0, 7, 1.0);
  coo.add(0, 2, 1.0);
  coo.add(0, 5, 1.0);
  const Csr a = coo.to_csr();
  const auto cols = a.row_cols(0);
  ASSERT_EQ(cols.size(), 3u);
  EXPECT_EQ(cols[0], 2);
  EXPECT_EQ(cols[1], 5);
  EXPECT_EQ(cols[2], 7);
}

TEST(Csr, ValidationCatchesBadStructure) {
  // rowptr not starting at zero
  EXPECT_THROW(Csr(1, 1, {1, 1}, {}, {}), Error);
  // rowptr not monotone
  EXPECT_THROW(Csr(2, 2, {0, 2, 1}, {0, 1}, {1.0, 1.0}), Error);
  // column out of range
  EXPECT_THROW(Csr(1, 2, {0, 1}, {5}, {1.0}), Error);
  // unsorted columns in a row
  EXPECT_THROW(Csr(1, 3, {0, 2}, {2, 0}, {1.0, 1.0}), Error);
  // duplicate column in a row
  EXPECT_THROW(Csr(1, 3, {0, 2}, {1, 1}, {1.0, 1.0}), Error);
}

TEST(Csr, EmptyMatrixIsValid) {
  const Csr a(0, 0, {0}, {}, {});
  EXPECT_EQ(a.nnz(), 0);
  Vector x, y;
  EXPECT_NO_THROW(a.spmv(x, y));
}

TEST(Csr, AtFindsEntries) {
  const Csr a = testing::banded(10, {-1, 1});
  EXPECT_NE(a.at(5, 5), 0.0);
  EXPECT_NE(a.at(5, 6), 0.0);
  EXPECT_DOUBLE_EQ(a.at(5, 8), 0.0);
  EXPECT_THROW(a.at(10, 0), Error);
}

TEST(Csr, TransposeInvolution) {
  const Csr a = testing::uniform_random(20, 15, 4);
  const Csr att = a.transpose().transpose();
  ASSERT_EQ(att.rows(), a.rows());
  ASSERT_EQ(att.nnz(), a.nnz());
  for (Index i = 0; i < a.rows(); ++i) {
    const auto c1 = a.row_cols(i);
    const auto c2 = att.row_cols(i);
    ASSERT_EQ(c1.size(), c2.size());
    for (std::size_t k = 0; k < c1.size(); ++k) {
      EXPECT_EQ(c1[k], c2[k]);
      EXPECT_DOUBLE_EQ(a.row_vals(i)[k], att.row_vals(i)[k]);
    }
  }
}

TEST(Csr, TransposeMovesEntries) {
  Coo coo(2, 3);
  coo.add(0, 2, 5.0);
  coo.add(1, 0, 7.0);
  const Csr t = coo.to_csr().transpose();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_DOUBLE_EQ(t.at(2, 0), 5.0);
  EXPECT_DOUBLE_EQ(t.at(0, 1), 7.0);
}

TEST(Csr, ExtractSubmatrix) {
  const Csr a = testing::banded(10, {-1, 1});
  const Csr sub = a.extract({2, 3, 4}, {2, 3, 4});
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_EQ(sub.cols(), 3);
  EXPECT_DOUBLE_EQ(sub.at(0, 0), a.at(2, 2));
  EXPECT_DOUBLE_EQ(sub.at(1, 2), a.at(3, 4));
}

TEST(Csr, MaxRowNnz) {
  const Csr a = testing::with_dense_row(16);
  EXPECT_EQ(a.max_row_nnz(), 16);
}

TEST(Csr, GetDiagonal) {
  const Csr a = testing::banded(8, {-1, 1});
  Vector d;
  a.get_diagonal(d);
  ASSERT_EQ(d.size(), 8);
  for (Index i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(d[i], a.at(i, i));
}

TEST(Csr, SpmvMatchesDenseReference) {
  const Csr a = testing::banded(37, {-3, -1, 1, 3});
  const auto x = testing::random_x(37);
  const auto expect = testing::dense_spmv(a, x);
  Vector xv(37), yv;
  for (Index i = 0; i < 37; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  a.spmv(xv, yv);
  for (Index i = 0; i < 37; ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Csr, SpmvAliasingRejected) {
  const Csr a = testing::banded(8, {-1, 1});
  Vector x(8, 1.0);
  EXPECT_THROW(a.spmv(x, x), Error);
}

TEST(Csr, StorageBytesAccountsAllArrays) {
  const Csr a = testing::banded(10, {-1, 1});
  const std::size_t expected = (10 + 1) * sizeof(Index) +
                               static_cast<std::size_t>(a.nnz()) *
                                   (sizeof(Index) + sizeof(Scalar));
  EXPECT_EQ(a.storage_bytes(), expected);
}

}  // namespace
}  // namespace kestrel::mat
