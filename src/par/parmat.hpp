#pragma once
// Row-distributed sparse matrix with PETSc's storage split (paper section
// 2.1): each rank keeps the square "diagonal block" (columns it owns) in
// the compute format of choice, and everything else in a compressed
// off-diagonal block whose rows are only the locally nonzero ones and whose
// column space is the packed ghost index space.
//
// SpMV follows the 4-step overlap of section 2.2:
//   1. post nonblocking sends of the locally owned x entries other ranks
//      need (and logically the receives);
//   2. multiply the diagonal block with the local x;
//   3. wait for ghost values to arrive;
//   4. multiply the compressed off-diagonal block and accumulate.
//
// Kestrel Slipstream: by default the ghost exchange runs on persistent
// fabric channels (Comm::open_exchange) opened lazily at the first spmv —
// sends gather-pack into a pre-sized buffer with the simd::Op::kGatherPack
// kernel and deliver with a single copy straight into this rank's ghost_
// slice, and step 3 completes receives in arrival order (wait_any) instead
// of plan order. Steady-state spmv performs zero heap allocations in the
// fabric path. Set ParMatrixOptions::persistent_ghosts = false to use the
// seed mailbox transport (one allocation + extra copy per message), kept
// for differential tests and as the bench_comm baseline.

#include <map>
#include <memory>
#include <vector>

#include "mat/bcsr.hpp"
#include "mat/csr.hpp"
#include "mat/csr_perm.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "par/comm.hpp"
#include "par/parvec.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::par {

enum class DiagFormat { kCsr, kCsrPerm, kSell, kBcsr, kTalon };

DiagFormat parse_diag_format(const std::string& name);
const char* diag_format_name(DiagFormat fmt);

/// Storage for the off-diagonal block: the paper's "compressed CSR" (only
/// nonzero rows stored, section 2.2), full-row SELL as in PETSc's MPISELL
/// type (empty interior rows cost nothing because their slices have zero
/// width), or full-row Talon (empty rows cost one r=1 panel with zero
/// blocks).
enum class OffdiagFormat { kCompressedCsr, kSell, kTalon };

struct ParMatrixOptions {
  DiagFormat diag_format = DiagFormat::kCsr;
  OffdiagFormat offdiag_format = OffdiagFormat::kCompressedCsr;
  mat::SellOptions sell;    ///< used when diag_format == kSell
  mat::TalonOptions talon;  ///< used when diag_format == kTalon
  Index block_size = 2;     ///< used when diag_format == kBcsr
  simd::IsaTier tier = simd::default_tier();
  /// Ghost exchange transport: persistent zero-copy channels (default) or
  /// the seed mailbox path (see the header comment).
  bool persistent_ghosts = true;
  /// Kestrel Flock: in-rank thread count for the diag/offdiag partitions.
  /// 0 (default) keeps the partitions planned at construction from
  /// par::configured_threads() (-threads / KESTREL_THREADS); a positive
  /// value re-plans both blocks for exactly that many pool threads.
  int threads = 0;
  /// Kestrel Aegis ABFT: precompute per-block column checksums at assembly
  /// and verify c_diag·x + c_off·ghost == Σy after every spmv, recomputing
  /// the local multiply once on a mismatch before throwing AbftError.
  bool abft = false;
  Scalar abft_tol = 1e-8;
};

class ParMatrix {
 public:
  /// Collective. `local_rows` is this rank's contiguous row block of the
  /// global matrix, with GLOBAL column indices; `layout` is the shared
  /// row/column layout (square matrices only).
  ParMatrix(const mat::Csr& local_rows, LayoutPtr layout, Comm& comm,
            ParMatrixOptions opts = {});

  /// Collective convenience: every rank passes the same global matrix and
  /// extracts its own block (test helper).
  static ParMatrix from_global(const mat::Csr& global, LayoutPtr layout,
                               Comm& comm, ParMatrixOptions opts = {});

  /// Collective: y = A * x with communication/computation overlap.
  void spmv(const ParVector& x, ParVector& y, Comm& comm) const;

  /// Collective raw-pointer form over local blocks (used by the solver
  /// contexts): x_local has local_rows() entries.
  void spmv_local(const Scalar* x_local, Vector& y_local, Comm& comm) const;

  /// d = diag(A) (local part, no communication needed).
  void get_diagonal(Vector& d) const { diag_->get_diagonal(d); }

  Index local_rows() const { return layout_->local_size(rank_); }
  Index global_rows() const { return layout_->global_size(); }
  int rank() const { return rank_; }
  const Layout& layout() const { return *layout_; }
  LayoutPtr layout_ptr() const { return layout_; }

  const mat::Matrix& diag_block() const { return *diag_; }
  const mat::Csr& offdiag_block() const { return offdiag_; }
  Index num_ghosts() const { return nghost_; }
  std::int64_t local_nnz() const {
    return diag_->nnz() + offdiag_.nnz();
  }

 private:
  LayoutPtr layout_;
  int rank_ = 0;

  std::shared_ptr<mat::Matrix> diag_;  ///< square block, local columns
  mat::Csr offdiag_;   ///< compressed rows, packed ghost column space
  std::vector<Index> offdiag_rows_;  ///< local row id per compressed row
  std::shared_ptr<mat::Sell> offdiag_sell_;  ///< full-row SELL alternative
  std::shared_ptr<mat::Talon> offdiag_talon_;  ///< full-row Talon alternative
  Index nghost_ = 0;

  // communication plan
  struct SendPlan {
    int peer;
    std::vector<Index> local_indices;  ///< which of my x entries to pack
  };
  struct RecvPlan {
    int peer;
    Index ghost_offset;  ///< where the peer's values land in ghost buffer
    Index count;
  };
  std::vector<SendPlan> sends_;
  std::vector<RecvPlan> recvs_;

  bool persistent_ghosts_ = true;
  simd::GatherPackFn gather_fn_ = nullptr;  ///< resolved pack kernel

  // Kestrel Aegis ABFT state (empty unless ParMatrixOptions::abft).
  bool abft_ = false;
  Scalar abft_tol_ = 1e-8;
  Vector abft_cdiag_;  ///< diag blockᵀ·1 over the local column space
  Vector abft_coff_;   ///< offdiag blockᵀ·1 over the packed ghost space

  mutable Vector ghost_;                 ///< packed ghost values
  /// One pre-sized pack buffer for all peers: plan i packs into
  /// [send_offsets_[i], send_offsets_[i] + plan.count) — no reallocation
  /// inside the send loop, ever.
  mutable std::vector<Scalar> packbuf_;
  std::vector<std::size_t> send_offsets_;

  /// Persistent channel set, opened lazily at the first spmv (collective
  /// because spmv is collective). The recorded ghost_ base pointer detects
  /// a copied ParMatrix — whose ghost_ lives elsewhere — and re-opens
  /// fresh channels for it instead of writing into the original's buffer.
  mutable std::shared_ptr<PersistentExchange> exchange_;
  mutable const Scalar* exchange_ghost_base_ = nullptr;

  void ensure_exchange(Comm& comm) const;
};

}  // namespace kestrel::par
