#pragma once
// Standard 5-point Laplacian assemblies used by examples and tests.

#include "app/grid2d.hpp"
#include "mat/csr.hpp"

namespace kestrel::app {

/// Negative Laplacian (-∇²) with homogeneous Dirichlet boundary on an
/// nx x ny interior grid with spacing hx = 1/(nx+1), hy = 1/(ny+1):
/// SPD, the canonical multigrid/CG test operator.
mat::Csr laplacian_dirichlet(Index nx, Index ny);

/// Periodic 5-point Laplacian ∇² (note the sign: this is the diffusion
/// operator as it appears in reaction–diffusion systems) scaled by
/// `coefficient`, on one dof of `grid`, embedded in the grid's interleaved
/// dof numbering at component `component`.
mat::Csr laplacian_periodic(const Grid2D& grid, Index component,
                            Scalar coefficient);

}  // namespace kestrel::app
