#include "par/parvec.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace kestrel::par {

Layout Layout::even(Index global_size, int nranks) {
  KESTREL_CHECK(global_size >= 0 && nranks >= 1, "bad layout parameters");
  std::vector<Index> offsets(static_cast<std::size_t>(nranks) + 1, 0);
  const Index base = global_size / nranks;
  const Index extra = global_size % nranks;
  for (int r = 0; r < nranks; ++r) {
    offsets[static_cast<std::size_t>(r) + 1] =
        offsets[static_cast<std::size_t>(r)] + base + (r < extra ? 1 : 0);
  }
  return Layout(std::move(offsets));
}

Layout Layout::even_blocked(Index global_size, int nranks, Index bs) {
  KESTREL_CHECK(bs >= 1, "block size must be positive");
  KESTREL_CHECK(global_size % bs == 0,
                "global size not divisible by block size");
  const Layout blocks = even(global_size / bs, nranks);
  std::vector<Index> sizes(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    sizes[static_cast<std::size_t>(r)] = blocks.local_size(r) * bs;
  }
  return from_sizes(sizes);
}

Layout Layout::from_sizes(const std::vector<Index>& sizes) {
  KESTREL_CHECK(!sizes.empty(), "empty layout");
  std::vector<Index> offsets(sizes.size() + 1, 0);
  for (std::size_t r = 0; r < sizes.size(); ++r) {
    KESTREL_CHECK(sizes[r] >= 0, "negative local size");
    offsets[r + 1] = offsets[r] + sizes[r];
  }
  return Layout(std::move(offsets));
}

int Layout::owner(Index g) const {
  KESTREL_CHECK(g >= 0 && g < global_size(), "owner: index out of range");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), g);
  return static_cast<int>(it - offsets_.begin()) - 1;
}

void ParVector::set_from_global(const Vector& global) {
  KESTREL_CHECK(global.size() == global_size(),
                "set_from_global size mismatch");
  const Index b = own_begin();
  for (Index i = 0; i < local_.size(); ++i) local_[i] = global[b + i];
}

Scalar ParVector::dot(const ParVector& other, Comm& comm) const {
  KESTREL_CHECK(other.local_size() == local_size(), "dot size mismatch");
  return comm.allreduce(local_.dot(other.local_), Comm::ReduceOp::kSum);
}

Scalar ParVector::norm2(Comm& comm) const {
  return std::sqrt(
      comm.allreduce(local_.dot(local_), Comm::ReduceOp::kSum));
}

Vector ParVector::gather_all(Comm& comm) const {
  std::vector<Scalar> local(local_.begin(), local_.end());
  std::vector<Scalar> all = comm.allgatherv(local);
  KESTREL_CHECK(static_cast<Index>(all.size()) == global_size(),
                "gather_all size mismatch");
  Vector out(global_size());
  std::copy(all.begin(), all.end(), out.begin());
  return out;
}

}  // namespace kestrel::par
