file(REMOVE_RECURSE
  "CMakeFiles/advection_diffusion_test.dir/advection_diffusion_test.cpp.o"
  "CMakeFiles/advection_diffusion_test.dir/advection_diffusion_test.cpp.o.d"
  "advection_diffusion_test"
  "advection_diffusion_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/advection_diffusion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
