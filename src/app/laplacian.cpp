#include "app/laplacian.hpp"

#include "base/error.hpp"
#include "mat/coo.hpp"

namespace kestrel::app {

mat::Csr laplacian_dirichlet(Index nx, Index ny) {
  KESTREL_CHECK(nx >= 1 && ny >= 1, "bad grid");
  const Scalar hx = 1.0 / (nx + 1);
  const Scalar hy = 1.0 / (ny + 1);
  const Scalar cx = 1.0 / (hx * hx);
  const Scalar cy = 1.0 / (hy * hy);
  const Index n = nx * ny;
  mat::Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(n) * 5);
  for (Index j = 0; j < ny; ++j) {
    for (Index i = 0; i < nx; ++i) {
      const Index row = j * nx + i;
      coo.add(row, row, 2.0 * (cx + cy));
      if (i > 0) coo.add(row, row - 1, -cx);
      if (i < nx - 1) coo.add(row, row + 1, -cx);
      if (j > 0) coo.add(row, row - nx, -cy);
      if (j < ny - 1) coo.add(row, row + nx, -cy);
    }
  }
  return coo.to_csr();
}

mat::Csr laplacian_periodic(const Grid2D& grid, Index component,
                            Scalar coefficient) {
  KESTREL_CHECK(component >= 0 && component < grid.dof(),
                "component out of range");
  const Scalar cx = coefficient / (grid.hx() * grid.hx());
  const Scalar cy = coefficient / (grid.hy() * grid.hy());
  const Index n = grid.size();
  mat::Coo coo(n, n);
  coo.reserve(static_cast<std::size_t>(grid.nodes()) * 5);
  for (Index j = 0; j < grid.ny(); ++j) {
    for (Index i = 0; i < grid.nx(); ++i) {
      const Index row = grid.idx(i, j, component);
      coo.add(row, row, -2.0 * (cx + cy));
      coo.add(row, grid.idx(i - 1, j, component), cx);
      coo.add(row, grid.idx(i + 1, j, component), cx);
      coo.add(row, grid.idx(i, j - 1, component), cy);
      coo.add(row, grid.idx(i, j + 1, component), cy);
    }
  }
  return coo.to_csr();
}

}  // namespace kestrel::app
