# Empty compiler generated dependencies file for csr_perm_test.
# This may be replaced when dependencies are built.
