// Dense matrix and LU factorization tests.

#include <gtest/gtest.h>

#include <cmath>

#include "base/error.hpp"
#include "mat/dense.hpp"
#include "test_matrices.hpp"

namespace kestrel::mat {
namespace {

TEST(Dense, FromCsrPreservesEntries) {
  const Csr csr = testing::banded(9, {-2, 2});
  const Dense d = Dense::from_csr(csr);
  for (Index i = 0; i < 9; ++i) {
    for (Index j = 0; j < 9; ++j) {
      EXPECT_DOUBLE_EQ(d.at(i, j), csr.at(i, j));
    }
  }
  EXPECT_EQ(d.nnz(), csr.nnz());
}

TEST(Dense, SpmvMatchesReference) {
  const Csr csr = testing::uniform_random(12, 9, 3);
  const Dense d = Dense::from_csr(csr);
  const auto x = testing::random_x(9);
  const auto expect = testing::dense_spmv(csr, x);
  Vector xv(9), yv;
  for (Index i = 0; i < 9; ++i) xv[i] = x[static_cast<std::size_t>(i)];
  d.spmv(xv, yv);
  for (Index i = 0; i < 12; ++i) {
    EXPECT_NEAR(yv[i], expect[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Dense, LuSolveRecoversKnownSolution) {
  const Index n = 25;
  Dense a(n, n);
  Rng rng(42);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) a.at(i, j) = rng.uniform(-1.0, 1.0);
    a.at(i, i) += n;  // diagonally dominant -> well conditioned
  }
  Vector x_true(n);
  for (Index i = 0; i < n; ++i) x_true[i] = std::sin(i + 1.0);
  Vector b(n);
  a.spmv(x_true, b);

  a.lu_factor();
  Vector x(n);
  a.lu_solve(b.data(), x.data());
  for (Index i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-10);
}

TEST(Dense, LuSolveInPlaceAliasing) {
  Dense a(2, 2);
  a.at(0, 0) = 2.0;
  a.at(1, 1) = 4.0;
  a.lu_factor();
  Vector b{2.0, 8.0};
  a.lu_solve(b.data(), b.data());
  EXPECT_NEAR(b[0], 1.0, 1e-14);
  EXPECT_NEAR(b[1], 2.0, 1e-14);
}

TEST(Dense, LuRequiresPivoting) {
  // zero leading pivot: fails without partial pivoting
  Dense a(2, 2);
  a.at(0, 0) = 0.0;
  a.at(0, 1) = 1.0;
  a.at(1, 0) = 1.0;
  a.at(1, 1) = 0.0;
  EXPECT_NO_THROW(a.lu_factor());
  Vector b{3.0, 5.0};
  Vector x(2);
  a.lu_solve(b.data(), x.data());
  EXPECT_NEAR(x[0], 5.0, 1e-14);
  EXPECT_NEAR(x[1], 3.0, 1e-14);
}

TEST(Dense, SingularMatrixThrows) {
  Dense a(3, 3);
  a.at(0, 0) = 1.0;
  a.at(1, 0) = 2.0;  // rank deficient
  EXPECT_THROW(a.lu_factor(), Error);
}

TEST(Dense, SolveBeforeFactorThrows) {
  Dense a(2, 2);
  Vector b{1.0, 1.0}, x(2);
  EXPECT_THROW(a.lu_solve(b.data(), x.data()), Error);
}

}  // namespace
}  // namespace kestrel::mat
