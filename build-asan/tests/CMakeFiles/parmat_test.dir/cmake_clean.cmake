file(REMOVE_RECURSE
  "CMakeFiles/parmat_test.dir/parmat_test.cpp.o"
  "CMakeFiles/parmat_test.dir/parmat_test.cpp.o.d"
  "parmat_test"
  "parmat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parmat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
