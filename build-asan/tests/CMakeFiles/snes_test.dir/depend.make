# Empty dependencies file for snes_test.
# This may be replaced when dependencies are built.
