#include "perf/spmv_model.hpp"

#include <cmath>

#include "base/error.hpp"

namespace kestrel::perf {

const char* model_format_name(ModelFormat fmt) {
  switch (fmt) {
    case ModelFormat::kCsrBaseline:
      return "csr-baseline";
    case ModelFormat::kMklCsr:
      return "mkl-csr";
    case ModelFormat::kCsrPerm:
      return "csrperm";
    case ModelFormat::kCsr:
      return "csr";
    case ModelFormat::kSell:
      return "sell";
    case ModelFormat::kTalon:
      return "talon";
  }
  return "?";
}

SpmvWorkload SpmvWorkload::gray_scott(Index n) {
  SpmvWorkload w;
  w.rows = 2 * static_cast<std::int64_t>(n) * n;
  w.nnz = 10 * w.rows;  // full 2x2 blocks on a 5-point stencil
  // All rows have length 10, so SELL padding is essentially zero (only the
  // final partial slice).
  w.stored = w.nnz;
  return w;
}

SpmvWorkload SpmvWorkload::split(int parts) const {
  KESTREL_CHECK(parts >= 1, "split: parts must be positive");
  return {rows / parts,          nnz / parts,          stored / parts,
          talon_blocks / parts,  talon_panels / parts};
}

std::size_t SpmvWorkload::traffic_bytes(ModelFormat fmt, bool idx16,
                                        bool fp32) const {
  const auto m = static_cast<std::size_t>(rows);
  const auto nz = static_cast<std::size_t>(nnz);
  // Per-stored-element streams: 8-byte (or 4-byte fp32) value plus a 4-byte
  // column index, or a 2-byte offset when idx16 is on. idx16 also reads one
  // 4-byte base per segment (row for CSR, slice for SELL); that term is
  // added per format below. Mirrors the mat::*::spmv_traffic_bytes models.
  const std::size_t vb = fp32 ? 4 : 8;
  const std::size_t ib = idx16 ? 2 : 4;
  switch (fmt) {
    case ModelFormat::kSell: {
      const std::size_t slices = (m + 7) / 8;  // per-slice idx16 bases
      return (vb + ib) * nz + 10 * m + (idx16 ? 4 * slices : 0) +
             8 * m;  // section 6, n == m (square)
    }
    case ModelFormat::kCsrPerm:
      return (vb + ib) * nz + 24 * m + (idx16 ? 4 * m : 0) + 8 * m +
             4 * m;  // + permutation array
    case ModelFormat::kTalon: {
      // vb bytes per value (no per-entry column index — idx16 does not
      // apply), 8 per beta block (start column + mask), 12 per panel, plus
      // x and y. Mirrors mat::Talon::spmv_traffic_bytes; geometry estimated
      // when not given.
      const auto blocks = static_cast<std::size_t>(
          talon_blocks > 0 ? talon_blocks : (nnz + 5) / 6);
      const auto panels = static_cast<std::size_t>(
          talon_panels > 0 ? talon_panels : (rows + 1) / 2);
      return vb * nz + 8 * blocks + 12 * panels + 8 * m + 8 * m;
    }
    default:
      return (vb + ib) * nz + 24 * m + (idx16 ? 4 * m : 0) + 8 * m;
  }
}

KernelCost kernel_cost(ModelFormat fmt, simd::IsaTier tier) {
  using simd::IsaTier;
  // Calibration: chosen so that on the KNL profile at 64 ranks in flat
  // MCDRAM mode the Gray–Scott 2048^2 workload reproduces Figure 8's
  // ranking and ratios:
  //   SELL-AVX512 ~2.0x baseline, SELL-AVX ~1.8x, SELL-AVX2 ~1.7x,
  //   CSR-AVX512 ~1.54x, CSR-AVX > CSR-AVX2 (the FMA-serialization
  //   regression the paper reports), CSRPerm ~ baseline, MKL ~0.85x.
  switch (fmt) {
    case ModelFormat::kCsrBaseline:
      return {6.6, 10.0};
    case ModelFormat::kMklCsr:
      return {7.7, 11.0};
    case ModelFormat::kCsrPerm:
      // vectorized across rows: every operand is gathered
      return tier == IsaTier::kAvx512 ? KernelCost{6.6, 8.0}
                                      : KernelCost{7.0, 8.0};
    case ModelFormat::kCsr:
      switch (tier) {
        case IsaTier::kAvx512:
          return {3.0, 19.0};
        case IsaTier::kAvx2:
          return {4.0, 22.0};  // serialized FMA chain (section 7.2)
        case IsaTier::kAvx:
          return {3.6, 20.0};  // separate mul/add pipelines better
        case IsaTier::kScalar:
          return {6.6, 10.0};
      }
      break;
    case ModelFormat::kSell:
      switch (tier) {
        case IsaTier::kAvx512:
          return {3.5, 1.0};
        case IsaTier::kAvx2:
          return {4.25, 1.0};
        case IsaTier::kAvx:
          return {4.0, 1.0};
        case IsaTier::kScalar:
          return {5.2, 4.0};
      }
      break;
    case ModelFormat::kTalon:
      // Expand-load replaces the gather, so per-element cost sits below
      // SELL-AVX512 on blocky operators; the per-row term carries the
      // panel reduction. AVX has no Talon kernel (falls back to scalar).
      switch (tier) {
        case IsaTier::kAvx512:
          return {3.2, 2.5};
        case IsaTier::kAvx2:
          return {4.5, 3.0};
        case IsaTier::kAvx:
        case IsaTier::kScalar:
          return {5.5, 4.0};
      }
      break;
  }
  return {6.6, 10.0};
}

namespace {

/// Smooth maximum: max with a soft transition so the roofline knee is not
/// artificially sharp.
double smooth_max(double a, double b) {
  return std::pow(std::pow(a, 4.0) + std::pow(b, 4.0), 0.25);
}

simd::IsaTier clamp_tier(const MachineProfile& machine, simd::IsaTier tier) {
  return static_cast<int>(tier) > static_cast<int>(machine.max_tier)
             ? machine.max_tier
             : tier;
}

}  // namespace

double modeled_spmv_seconds(const MachineProfile& machine, MemoryMode mode,
                            int procs, ModelFormat fmt, simd::IsaTier tier,
                            const SpmvWorkload& workload,
                            const ThreadModel* flock) {
  KESTREL_CHECK(procs >= 1, "need at least one process");
  tier = clamp_tier(machine, tier);
  const bool vectorized =
      fmt != ModelFormat::kCsrBaseline ? tier != simd::IsaTier::kScalar
                                       : true;  // compiler autovec loads
  const double bw_gbs = modeled_bandwidth(machine, mode, procs, vectorized);
  const double t_mem =
      static_cast<double>(workload.traffic_bytes(fmt)) / (bw_gbs * 1e9);

  const KernelCost cost = kernel_cost(fmt, tier);
  const double cycles =
      (static_cast<double>(workload.stored) * cost.cycles_per_element +
       static_cast<double>(workload.rows) * cost.cycles_per_row) *
      machine.core_cycle_scale;
  double t_cpu = cycles / (procs * machine.freq_ghz * 1e9);
  // Kestrel Flock: in-rank pool threads divide the cycle cost at the
  // measured efficiency; the t_mem roofline is already node-saturated.
  if (flock != nullptr && flock->threads > 1) {
    KESTREL_CHECK(flock->efficiency > 0.0,
                  "thread efficiency must be positive");
    t_cpu /= flock->threads * flock->efficiency;
  }

  return smooth_max(t_mem, t_cpu);
}

double modeled_spmv_gflops(const MachineProfile& machine, MemoryMode mode,
                           int procs, ModelFormat fmt, simd::IsaTier tier,
                           const SpmvWorkload& workload) {
  const double t =
      modeled_spmv_seconds(machine, mode, procs, fmt, tier, workload);
  return 2.0 * static_cast<double>(workload.nnz) / t / 1e9;
}

MultinodeEstimate modeled_multinode(const MachineProfile& machine,
                                    MemoryMode mode, int nodes,
                                    ModelFormat fmt, simd::IsaTier tier,
                                    Index grid_n, int time_steps,
                                    int mg_levels, const CommModel* comm,
                                    const ThreadModel* flock) {
  KESTREL_CHECK(nodes >= 1, "need at least one node");
  // Per-node share of the global matrix; ranks-per-node fixed at the
  // machine's core count (the paper pins one rank per core).
  const SpmvWorkload local =
      SpmvWorkload::gray_scott(grid_n).split(nodes);

  // Solver-shape constants fitted to Figure 10's 64-node bars:
  //   per step: ~2 Newton iterations; each linear solve ~25 GMRES
  //   iterations; each iteration applies the operator once plus one
  //   V-cycle whose per-level smoothing/residual SpMVs sum to ~4 fine-grid
  //   equivalents (levels shrink geometrically: sum < 4/3 * 3 applies).
  const double newton_per_step = 2.0;
  const double gmres_per_solve = 25.0;
  const double mg_applies = 1.0 + 4.0 * (1.0 - std::pow(0.25, mg_levels)) /
                                      (1.0 - 0.25) / (4.0 / 3.0);
  const double n_applies =
      time_steps * newton_per_step * gmres_per_solve * mg_applies;

  const double t_apply = modeled_spmv_seconds(machine, mode, machine.cores,
                                              fmt, tier, local, flock);
  const double matmult = n_applies * t_apply;

  // Non-SpMV work (Jacobian assembly, matrix conversion/assembly, vector
  // ops): format-independent (the paper: "the portion for other parts ...
  // remain almost the same for the two formats"), modeled as
  // bandwidth-bound passes over the local data.
  const double t_apply_csr =
      modeled_spmv_seconds(machine, mode, machine.cores,
                           ModelFormat::kCsrBaseline,
                           simd::IsaTier::kScalar, local);

  // Halo exchange: per linear iteration, each rank trades 4 neighbor
  // messages per multigrid level (the 5-point stencil's edges), each
  // costing alpha + beta*bytes (perf/commmodel.hpp). Message size is the
  // per-rank subdomain edge (2 dof x 8 B per boundary point), halving with
  // each coarser level; the alpha term is what stops strong scaling at
  // high node counts. Default constants reproduce the fixed 250 us/level
  // this model carried before bench_comm calibration existed.
  const CommModel cm = comm != nullptr ? *comm : CommModel{};
  const double ranks = static_cast<double>(nodes) * machine.cores;
  const double edge_points =
      static_cast<double>(grid_n) / std::sqrt(ranks);
  double halo_per_iter = 0.0;
  for (int l = 0; l < mg_levels; ++l) {
    const double bytes = 16.0 * edge_points / static_cast<double>(1 << l);
    halo_per_iter += 4.0 * cm.message_seconds(bytes);
  }
  const double comm_seconds =
      time_steps * newton_per_step * gmres_per_solve * halo_per_iter;

  const double other = n_applies * (1.35 * t_apply_csr) + comm_seconds;
  return {matmult + other, matmult, comm_seconds};
}

}  // namespace kestrel::perf
