#pragma once
// Sliced ELLPACK (PETSc SELL) — the format contributed by the paper
// (section 5).
//
// The matrix is cut into slices of `c` adjacent rows (c = 8 by default: one
// 512-bit ZMM register of doubles). Within a slice, rows are padded with
// zeros to the length of the longest row and stored COLUMN-major, so the
// SpMV kernel reads val/colidx in exactly storage order with full-width
// vector loads and needs no remainder loop (Algorithm 2).
//
// Options mirroring the paper's design discussion:
//  * rlen[] is always kept (section 5.2) — not needed by SpMV but required
//    for assembly/inspection and padding identification.
//  * An ESB-style bit array can be attached (section 5.3) for the ablation;
//    the default build omits it (the paper measured ~10% speedup without).
//  * SELL-C-sigma row sorting (section 5.4) is available via `sigma` for
//    the ablation; the default is sigma = 1, i.e. no reordering, matching
//    the paper's choice to leave ordering to the grid layer.

#include <cstdint>
#include <vector>

#include "base/aligned.hpp"
#include "mat/kernels/views.hpp"
#include "mat/matrix.hpp"
#include "mat/partition.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

class Csr;

struct SellOptions {
  Index slice_height = kZmmDoubles;  ///< c; must be in [1, 64]
  Index sigma = 1;     ///< sorting window in slices-of-rows; 1 = no sorting
  bool build_bitmask = false;  ///< attach the ESB bit array
};

class Sell final : public Matrix {
 public:
  Sell() = default;
  explicit Sell(const Csr& csr, SellOptions opts = {});

  // Matrix interface -------------------------------------------------------
  Index rows() const override { return m_; }
  Index cols() const override { return n_; }
  std::int64_t nnz() const override { return nnz_; }
  void spmv(const Scalar* x, Scalar* y) const override;
  using Matrix::spmv;
  void spmv_wide(const Scalar* x, Scalar* y) const override;
  bool set_slim(const SlimOptions& opts) override;
  bool slim_active() const override { return slim_.active(); }
  void get_diagonal(Vector& d) const override;
  void abft_col_checksum(Vector& c) const override;
  std::string format_name() const override { return "sell"; }
  std::size_t storage_bytes() const override;
  std::size_t spmv_traffic_bytes() const override;

  // SELL-specific ----------------------------------------------------------
  Index slice_height() const { return c_; }
  Index num_slices() const { return nslices_; }
  Index sigma() const { return sigma_; }
  bool has_bitmask() const { return !bitmask_.empty(); }
  bool is_sorted() const { return sigma_ > 1; }

  /// Stored elements including padding.
  std::int64_t stored_elements() const {
    return nslices_ == 0 ? 0 : sliceptr_[nslices_];
  }
  /// Padding overhead: stored / nnz (1.0 = no padding).
  double fill_ratio() const {
    return nnz_ == 0 ? 1.0
                     : static_cast<double>(stored_elements()) /
                           static_cast<double>(nnz_);
  }

  const Index* sliceptr() const { return sliceptr_.data(); }
  const Index* colidx() const { return colidx_.data(); }
  const Scalar* val() const { return val_.data(); }
  const Index* rlen() const { return rlen_.data(); }
  /// Row permutation when sigma-sorted: storage row p holds logical row
  /// perm(p). Identity when sigma == 1.
  Index perm(Index p) const { return perm_.empty() ? p : perm_[p]; }

  /// Reconstructs CSR (drops padding); round-trips exactly.
  Csr to_csr() const;

  /// Refreshes the stored values from a CSR with the SAME sparsity pattern
  /// (PETSc-style structure reuse: a Newton loop rebuilds Jacobian values
  /// every iteration while the 5-point-stencil pattern never changes, so
  /// slicing/padding need not be recomputed). Throws on pattern mismatch.
  void copy_values_from(const Csr& csr);

  /// y += A*x using the add kernel (off-diagonal block path).
  void spmv_add(const Scalar* x, Scalar* y) const;

  /// Forces the ESB masked kernel regardless of default dispatch
  /// (ablation); requires has_bitmask().
  void spmv_bitmask(const Scalar* x, Scalar* y) const;

  /// Unrolled + software-prefetch kernel variant (paper section 5.5
  /// ablation); requires slice height 8 for the vector path.
  void spmv_prefetch(const Scalar* x, Scalar* y) const;

  SellView view() const {
    return {m_,      n_,   c_,           nslices_,
            sliceptr_.data(), colidx_.data(), val_.data(), rlen_.data(),
            bitmask_.empty() ? nullptr : bitmask_.data()};
  }

  // Kestrel Slim ----------------------------------------------------------
  const SlimStore& slim() const { return slim_; }
  SellSlimView slim_view() const;
  /// Traffic of the fat double/int32 SpMV (paper section 6 model).
  std::size_t fat_spmv_traffic_bytes() const;
  /// Traffic of the fully slim (idx16 + fp32) SpMV.
  std::size_t slim_spmv_traffic_bytes() const;

  // Kestrel Flock ----------------------------------------------------------
  // flock-pool-safe: slice
  /// Re-plans the stored partition. Units are SLICES (the format's
  /// vector-safe granularity — a thread never splits a slice), weighted by
  /// stored elements including padding, i.e. the work the kernel actually
  /// streams.
  void repartition(int nparts) override;
  const FlockPartition& partition() const { return part_; }

 private:
  void build(const Csr& csr, const SellOptions& opts);
  void spmv_sorted_fixup(Scalar* y) const;
  /// Dispatches `fn` over the slice partition through offset sub-views
  /// (sliceptr values are absolute into colidx/val, so only the sliceptr
  /// pointer, m and the output shift); serial when the partition is.
  void run_partitioned(simd::SellSpmvFn fn, const Scalar* x, Scalar* out) const;
  /// Slim twin of run_partitioned (base is per-slice, so it shifts with
  /// sliceptr; the element streams stay absolute).
  void run_partitioned_slim(simd::SellSlimSpmvFn fn, const Scalar* x,
                            Scalar* out) const;
  void spmv_fat(const Scalar* x, Scalar* y) const;
  void spmv_slim(const Scalar* x, Scalar* y) const;

  Index m_ = 0, n_ = 0;
  Index c_ = kZmmDoubles;
  Index nslices_ = 0;
  Index sigma_ = 1;
  std::int64_t nnz_ = 0;
  AlignedBuffer<Index> sliceptr_;
  AlignedBuffer<Index> colidx_;
  AlignedBuffer<Scalar> val_;
  AlignedBuffer<Index> rlen_;
  std::vector<Index> perm_;           ///< storage row -> logical row
  AlignedBuffer<std::uint64_t> bitmask_;
  mutable Vector sorted_tmp_;  ///< scratch for sigma-sorted SpMV output
  FlockPartition part_;        ///< Flock slice partition
  SlimStore slim_;             ///< Kestrel Slim side streams
};

}  // namespace kestrel::mat
