// Newton solver tests: convergence order, line search, Jacobian checking.

#include <gtest/gtest.h>

#include <cmath>

#include "app/gray_scott.hpp"
#include "mat/coo.hpp"
#include "snes/newton.hpp"

namespace kestrel::snes {
namespace {

/// F_i(u) = u_i^2 - a_i, plus a weak coupling term; root u_i = sqrt(a_i)
/// for the uncoupled part — smooth, well-conditioned Newton test.
class Quadratic final : public NonlinearFunction {
 public:
  explicit Quadratic(Index n) : n_(n) {}
  Index size() const override { return n_; }

  void residual(const Vector& u, Vector& f) const override {
    f.resize(n_);
    for (Index i = 0; i < n_; ++i) {
      const Scalar target = 1.0 + 0.1 * i;
      const Scalar couple = (i > 0) ? 0.05 * u[i - 1] : 0.0;
      f[i] = u[i] * u[i] - target + couple;
    }
  }

  mat::Csr jacobian(const Vector& u) const override {
    mat::Coo coo(n_, n_);
    for (Index i = 0; i < n_; ++i) {
      coo.add(i, i, 2.0 * u[i]);
      if (i > 0) coo.add(i, i - 1, 0.05);
    }
    return coo.to_csr();
  }

 private:
  Index n_;
};

TEST(Newton, ConvergesOnSmoothProblem) {
  const Quadratic f(20);
  Vector u(20, 2.0);  // positive initial guess
  NewtonOptions opts;
  opts.atol = 1e-12;
  const NewtonResult res = newton_solve(f, u, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.iterations, 10);
  Vector check;
  f.residual(u, check);
  EXPECT_LT(check.norm2(), 1e-10);
}

TEST(Newton, QuadraticConvergenceRate) {
  // Near the root, the residual should square each iteration.
  const Quadratic f(5);
  Vector u(5, 1.2);
  std::vector<Scalar> history;
  NewtonOptions opts;
  opts.atol = 1e-14;
  opts.monitor = [&](int, Scalar fnorm) { history.push_back(fnorm); };
  const NewtonResult res = newton_solve(f, u, opts);
  ASSERT_TRUE(res.converged);
  ASSERT_GE(history.size(), 3u);
  // find a pair of consecutive drops in the quadratic regime
  bool saw_quadratic = false;
  for (std::size_t k = 1; k + 1 < history.size(); ++k) {
    if (history[k] < 1e-2 && history[k] > 1e-12) {
      const Scalar ratio = history[k + 1] / (history[k] * history[k]);
      if (ratio < 100.0) saw_quadratic = true;
    }
  }
  EXPECT_TRUE(saw_quadratic);
}

TEST(Newton, LineSearchRescuesOvershoot) {
  // Start far away where a full Newton step on u^2 - a overshoots badly
  // for tiny u: line search must still converge.
  const Quadratic f(4);
  Vector u(4, 0.05);
  NewtonOptions opts;
  opts.atol = 1e-12;
  opts.max_iterations = 100;
  const NewtonResult res = newton_solve(f, u, opts);
  EXPECT_TRUE(res.converged);
}

TEST(Newton, ReportsNonConvergenceAtMaxIterations) {
  const Quadratic f(4);
  Vector u(4, 100.0);
  NewtonOptions opts;
  opts.max_iterations = 1;
  opts.atol = 1e-14;
  opts.rtol = 1e-14;
  const NewtonResult res = newton_solve(f, u, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.iterations, 1);
}

TEST(Newton, CountsLinearIterations) {
  const Quadratic f(10);
  Vector u(10, 2.0);
  NewtonOptions opts;
  const NewtonResult res = newton_solve(f, u, opts);
  ASSERT_TRUE(res.converged);
  EXPECT_GT(res.total_linear_iterations, 0);
}

TEST(FdJacobian, MatchesAnalyticOnQuadratic) {
  const Quadratic f(8);
  Vector u(8);
  for (Index i = 0; i < 8; ++i) u[i] = 1.0 + 0.03 * i;
  const mat::Csr analytic = f.jacobian(u);
  const mat::Csr fd = fd_jacobian(f, u);
  for (Index i = 0; i < 8; ++i) {
    for (Index j = 0; j < 8; ++j) {
      EXPECT_NEAR(fd.at(i, j), analytic.at(i, j), 1e-5)
          << "(" << i << "," << j << ")";
    }
  }
}

TEST(FdJacobian, ValidatesGrayScottJacobian) {
  // The key analytic-Jacobian check for the paper's application.
  app::GrayScott gs(6);
  Vector u;
  gs.initial_condition(u);

  // Adapt the RhsFunction to a NonlinearFunction for fd_jacobian.
  class Adapter final : public NonlinearFunction {
   public:
    explicit Adapter(const app::GrayScott& g) : g_(g) {}
    Index size() const override { return g_.size(); }
    void residual(const Vector& x, Vector& f) const override {
      g_.rhs(x, f);
    }
    mat::Csr jacobian(const Vector& x) const override {
      return g_.rhs_jacobian(x);
    }

   private:
    const app::GrayScott& g_;
  } adapter(gs);

  const mat::Csr analytic = adapter.jacobian(u);
  const mat::Csr fd = fd_jacobian(adapter, u, 1e-6);
  for (Index i = 0; i < adapter.size(); ++i) {
    for (Index j : analytic.row_cols(i)) {
      EXPECT_NEAR(fd.at(i, j), analytic.at(i, j), 2e-4)
          << "(" << i << "," << j << ")";
    }
  }
  // and the FD Jacobian must not contain entries outside the analytic
  // pattern (structural completeness both ways)
  for (Index i = 0; i < adapter.size(); ++i) {
    for (Index j : fd.row_cols(i)) {
      if (std::abs(fd.at(i, j)) > 1e-6) {
        EXPECT_NE(analytic.at(i, j), 0.0) << "(" << i << "," << j << ")";
      }
    }
  }
}

}  // namespace
}  // namespace kestrel::snes
