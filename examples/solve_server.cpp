// Kestrel Bastion walkthrough: an in-process multi-tenant solve service.
//
// Registers two Poisson handles (one ABFT-guarded), then drives the service
// the way a hosting application would: several tenant threads submitting
// concurrently, one request under a tight deadline, one cancelled mid-solve,
// and a burst past the queue bound to show structured shedding. Ends by
// printing the service stats and the svc/* Scope metrics.
//
//   ./solve_server [-n 64] [-svc_workers 2] [-svc_queue_depth 8]
//                  [-svc_deadline_ms 0] [-svc_mem_budget MB]
//                  [-svc_degraded_max_it 100]

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "app/laplacian.hpp"
#include "base/budget.hpp"
#include "base/options.hpp"
#include "prof/profiler.hpp"
#include "svc/registry.hpp"
#include "svc/service.hpp"

using namespace kestrel;

int main(int argc, char** argv) {
  Options::global().parse(argc, argv);
  const Index n = Options::global().get_index("n", 64);
  const svc::ServiceOptions opts =
      svc::ServiceOptions::from_options(Options::global());

  // 1. Register handles. The registry owns the inspected formats and
  //    accounts their bytes against the global memory budget; an over-budget
  //    add() declines with a structured BudgetError instead of OOMing later.
  const mat::Csr csr = app::laplacian_dirichlet(n, n);
  svc::MatrixRegistry registry;
  try {
    registry.add("poisson", csr);
    svc::HandleOptions guarded;
    guarded.format = "sell";
    guarded.abft = true;
    registry.add("poisson_guarded", csr, guarded);
  } catch (const BudgetError& e) {
    // The decline carries the arithmetic a host needs to decide what to
    // evict; nothing was retained, so exiting (or evicting) is safe.
    std::printf("registration declined: %s\n", e.what());
    return 1;
  }
  for (const svc::HandleInfo& info : registry.list()) {
    std::printf("handle %-16s %s, %d x %d, %lld nnz, %.2f MB%s\n",
                info.name.c_str(), info.format.c_str(), info.rows, info.cols,
                static_cast<long long>(info.nnz),
                static_cast<double>(info.bytes) / (1024.0 * 1024.0),
                info.abft ? " [abft]" : "");
  }
  std::printf("resident: %.2f MB (budget %s)\n\n",
              static_cast<double>(registry.resident_bytes()) /
                  (1024.0 * 1024.0),
              MemoryBudget::global().limit_bytes() == 0
                  ? "unlimited"
                  : "bounded");

  svc::SolveService service(registry, opts);
  std::printf("service: %d workers, queue depth %d\n\n", opts.workers,
              opts.queue_depth);

  const auto make_request = [&](const std::string& handle,
                                const std::string& tenant) {
    svc::SolveRequest req;
    req.handle = handle;
    req.tenant = tenant;
    req.ksp.rtol = 1e-8;
    req.b = Vector(csr.rows(), 1.0);
    return req;
  };

  // 2. Concurrent tenants: three threads, each solving against its own
  //    choice of handle. Handles are immutable, so tenants cannot observe
  //    each other.
  std::vector<std::thread> tenants;
  for (int t = 0; t < 3; ++t) {
    tenants.emplace_back([&, t] {
      const std::string name = "tenant_" + std::to_string(t);
      const std::string handle = t == 2 ? "poisson_guarded" : "poisson";
      svc::SolveRequest req = make_request(handle, name);
      svc::SolveService::Ticket ticket = service.submit(std::move(req));
      const svc::SolveResponse resp = ticket.wait();
      std::printf("%-9s -> %-17s %s, %d iterations, wait %.1f ms, "
                  "solve %.1f ms\n",
                  name.c_str(), handle.c_str(),
                  svc::status_name(resp.status), resp.ksp.iterations,
                  resp.queue_wait_s * 1e3, resp.solve_s * 1e3);
    });
  }
  for (std::thread& t : tenants) t.join();

  // 3. A deadline that cannot be met: the solver stops at the next
  //    iteration boundary and hands back its best iterate. The deadline is
  //    calibrated off a measured solve so it reliably lands mid-solve on
  //    any host.
  const double full_solve_s =
      service.submit(make_request("poisson", "calibration")).wait().solve_s;
  {
    svc::SolveRequest req = make_request("poisson", "impatient");
    req.ksp.rtol = 1e-30;  // needs far more iterations than the deadline buys
    req.ksp.max_iterations = 1000000;
    req.deadline_s = full_solve_s * 0.3;
    const svc::SolveResponse resp = service.submit(std::move(req)).wait();
    std::printf("impatient -> poisson           %s after %d iterations "
                "(residual %.3e, best iterate returned)\n",
                svc::status_name(resp.status), resp.ksp.iterations,
                resp.ksp.residual_norm);
  }

  // 4. Cooperative cancellation: same mechanism, tripped by the client.
  {
    svc::SolveRequest req = make_request("poisson", "cancelled");
    req.ksp.rtol = 1e-30;
    req.ksp.max_iterations = 1000000;
    svc::SolveService::Ticket ticket = service.submit(std::move(req));
    std::this_thread::sleep_for(
        std::chrono::duration<double>(full_solve_s * 0.2));
    ticket.cancel();
    const svc::SolveResponse resp = ticket.wait();
    std::printf("cancelled -> poisson           %s after %d iterations\n",
                svc::status_name(resp.status), resp.ksp.iterations);
  }

  // 5. Admission control: a burst past workers + queue_depth sheds the
  //    excess immediately with a structured RejectedError — a fast "no"
  //    with a retry hint, not an unbounded queue.
  {
    std::vector<svc::SolveService::Ticket> burst;
    int shed = 0;
    double hint = 0.0;
    const int total = opts.workers + opts.queue_depth + 6;
    for (int i = 0; i < total; ++i) {
      try {
        burst.push_back(
            service.submit(make_request("poisson", "bursty")));
      } catch (const RejectedError& e) {
        ++shed;
        hint = e.retry_after_hint_s();
      }
    }
    for (svc::SolveService::Ticket& t : burst) t.wait();
    std::printf("burst of %d: %zu accepted, %d shed (retry hint %.1f ms)\n",
                total, burst.size(), shed, hint * 1e3);
  }

  // 6. The scoreboard, both human- and machine-readable.
  const svc::SolveService::Stats stats = service.stats();
  std::printf("\nstats: accepted %llu, completed %llu, shed %llu, "
              "deadline_exceeded %llu, faulted %llu, failed %llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed),
              static_cast<unsigned long long>(stats.deadline_exceeded),
              static_cast<unsigned long long>(stats.faulted),
              static_cast<unsigned long long>(stats.failed));
  prof::Profiler metrics;
  service.export_metrics(metrics);
  std::printf("scope metrics: svc/ewma_solve_s %.4f, svc/resident_bytes "
              "%.0f\n",
              metrics.metrics().at("svc/ewma_solve_s"),
              metrics.metrics().at("svc/resident_bytes"));
  return 0;
}
