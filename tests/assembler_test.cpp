// MatSetValues-style Assembler tests: INSERT/ADD semantics, negative-index
// skipping, block insertion, fold ordering.

#include <gtest/gtest.h>

#include "base/error.hpp"
#include "mat/assembler.hpp"
#include "mat/coo.hpp"

namespace kestrel::mat {
namespace {

TEST(Assembler, InsertLastWriteWins) {
  Assembler a(2, 2);
  a.set(0, 0, 1.0);
  a.set(0, 0, 5.0);
  const Csr m = a.assemble();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 5.0);
  EXPECT_EQ(m.nnz(), 1);
}

TEST(Assembler, AddAccumulates) {
  Assembler a(2, 2);
  a.add(1, 1, 1.5);
  a.add(1, 1, 2.5);
  const Csr m = a.assemble();
  EXPECT_DOUBLE_EQ(m.at(1, 1), 4.0);
}

TEST(Assembler, MixedModesFoldInInsertionOrder) {
  // insert 10, add 2, insert 1, add 3 -> 4 (PETSc per-entry semantics)
  Assembler a(1, 1);
  a.set(0, 0, 10.0);
  a.add(0, 0, 2.0);
  a.set(0, 0, 1.0);
  a.add(0, 0, 3.0);
  EXPECT_DOUBLE_EQ(a.assemble().at(0, 0), 4.0);
}

TEST(Assembler, NegativeIndicesSilentlySkipped) {
  // the PETSc convention for boundary-eliminated rows/columns
  Assembler a(3, 3);
  a.set(-1, 0, 99.0);
  a.set(0, -5, 99.0);
  a.set(1, 1, 2.0);
  const Csr m = a.assemble();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 2.0);
}

TEST(Assembler, OutOfRangePositiveIndicesThrow) {
  Assembler a(2, 2);
  EXPECT_THROW(a.set(2, 0, 1.0), Error);
  EXPECT_THROW(a.set(0, 7, 1.0), Error);
}

TEST(Assembler, BlockInsertionSkipsNegativeOrigins) {
  Assembler a(4, 4);
  const Scalar block[] = {1.0, 2.0, 3.0, 4.0};
  a.set_block(-1, 0, 2, 2, block);  // first row of the block is off-grid
  const Csr m = a.assemble();
  EXPECT_EQ(m.nnz(), 2);  // only the second block row landed
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 4.0);
}

TEST(Assembler, DropZerosOption) {
  Assembler a(2, 2);
  a.add(0, 0, 1.0);
  a.add(0, 0, -1.0);
  a.set(1, 1, 3.0);
  EXPECT_EQ(a.assemble(false).nnz(), 2);
  EXPECT_EQ(a.assemble(true).nnz(), 1);
}

TEST(Assembler, ClearAndReuse) {
  Assembler a(2, 2);
  a.set(0, 0, 1.0);
  EXPECT_EQ(a.staged(), 1u);
  a.clear();
  EXPECT_EQ(a.staged(), 0u);
  a.set(1, 0, 7.0);
  const Csr m = a.assemble();
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 7.0);
}

TEST(Assembler, StencilAssemblyMatchesCoo) {
  // assemble a small 5-point stencil both ways; results must agree
  const Index n = 6;
  Assembler a(n * n, n * n);
  Coo coo(n * n, n * n);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const Index row = j * n + i;
      a.add(row, row, 4.0);
      coo.add(row, row, 4.0);
      if (i > 0) {
        a.add(row, row - 1, -1.0);
        coo.add(row, row - 1, -1.0);
      }
      if (j > 0) {
        a.add(row, row - n, -1.0);
        coo.add(row, row - n, -1.0);
      }
    }
  }
  const Csr m1 = a.assemble();
  const Csr m2 = coo.to_csr();
  ASSERT_EQ(m1.nnz(), m2.nnz());
  for (Index i = 0; i < n * n; ++i) {
    for (Index j : m1.row_cols(i)) {
      EXPECT_DOUBLE_EQ(m1.at(i, j), m2.at(i, j));
    }
  }
}

}  // namespace
}  // namespace kestrel::mat
