// Gray–Scott model tests: RHS correctness, Jacobian structure (the paper's
// "10 elements per row"), initial condition, interpolation chain.

#include <gtest/gtest.h>

#include "app/gray_scott.hpp"
#include "base/error.hpp"
#include "mat/sell.hpp"

namespace kestrel::app {
namespace {

TEST(GrayScott, UniformStateIsEquilibrium) {
  const GrayScott gs(8);
  Vector u(gs.size());
  for (Index j = 0; j < 8; ++j) {
    for (Index i = 0; i < 8; ++i) {
      u[gs.grid().idx(i, j, 0)] = 1.0;
      u[gs.grid().idx(i, j, 1)] = 0.0;
    }
  }
  Vector f;
  gs.rhs(u, f);
  EXPECT_NEAR(f.norm_inf(), 0.0, 1e-14);
}

TEST(GrayScott, ReactionTermsMatchHandComputation) {
  // constant fields kill the diffusion term; check the reaction algebra
  const GrayScottParams p;
  const GrayScott gs(4, p);
  Vector state(gs.size());
  const Scalar u0 = 0.6, v0 = 0.3;
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 4; ++i) {
      state[gs.grid().idx(i, j, 0)] = u0;
      state[gs.grid().idx(i, j, 1)] = v0;
    }
  }
  Vector f;
  gs.rhs(state, f);
  const Scalar fu = -u0 * v0 * v0 + p.gamma * (1.0 - u0);
  const Scalar fv = u0 * v0 * v0 - (p.gamma + p.kappa) * v0;
  for (Index j = 0; j < 4; ++j) {
    for (Index i = 0; i < 4; ++i) {
      EXPECT_NEAR(f[gs.grid().idx(i, j, 0)], fu, 1e-14);
      EXPECT_NEAR(f[gs.grid().idx(i, j, 1)], fv, 1e-14);
    }
  }
}

TEST(GrayScott, JacobianHasTenElementsPerRow) {
  // Section 7: "Each row has 10 elements" — 5 stencil points x 2x2 blocks.
  const GrayScott gs(8);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  for (Index i = 0; i < jac.rows(); ++i) {
    EXPECT_EQ(jac.row_nnz(i), 10) << "row " << i;
  }
}

TEST(GrayScott, JacobianInSellHasNoPadding) {
  // Uniform 10-long rows: "When represented in the sliced ELLPACK format,
  // there are very few padded zeros" — here exactly none, because the
  // number of rows (2 * 8 * 8) is a multiple of the slice height.
  const GrayScott gs(8);
  Vector u;
  gs.initial_condition(u);
  const mat::Sell sell(gs.rhs_jacobian(u));
  EXPECT_DOUBLE_EQ(sell.fill_ratio(), 1.0);
}

TEST(GrayScott, InitialConditionShape) {
  const GrayScott gs(32);
  Vector u;
  gs.initial_condition(u);
  // background
  EXPECT_DOUBLE_EQ(gs.u_at(u, 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(gs.v_at(u, 0, 0), 0.0);
  // seeded center square
  EXPECT_NEAR(gs.u_at(u, 16, 16), 0.5, 0.06);
  EXPECT_NEAR(gs.v_at(u, 16, 16), 0.25, 0.06);
  // all values physical
  for (Index i = 0; i < u.size(); ++i) {
    EXPECT_GE(u[i], 0.0);
    EXPECT_LE(u[i], 1.0);
  }
}

TEST(GrayScott, JacobianDiffusionSignsAndSymmetryOfPattern) {
  const GrayScott gs(6);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  const Grid2D& g = gs.grid();
  // u-u neighbor coupling = D1/h^2 > 0, and the pattern is symmetric
  const Scalar d1h2 = gs.params().d1 / (g.hx() * g.hx());
  EXPECT_NEAR(jac.at(g.idx(2, 2, 0), g.idx(3, 2, 0)), d1h2, 1e-12);
  EXPECT_NEAR(jac.at(g.idx(3, 2, 0), g.idx(2, 2, 0)), d1h2, 1e-12);
  // cross-component neighbor entries are structural zeros
  EXPECT_DOUBLE_EQ(jac.at(g.idx(2, 2, 0), g.idx(3, 2, 1)), 0.0);
}

TEST(GrayScott, InterpolationChainShrinksToRequestedDepth) {
  const GrayScott gs(32);
  const auto chain = gray_scott_interpolation_chain(gs.grid(), 4);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0].rows(), 2 * 32 * 32);
  EXPECT_EQ(chain[0].cols(), 2 * 16 * 16);
  EXPECT_EQ(chain[2].cols(), 2 * 4 * 4);
  EXPECT_THROW(gray_scott_interpolation_chain(Grid2D(6, 6, 2), 3), Error);
}

TEST(GrayScott, TooSmallGridRejected) {
  EXPECT_THROW(GrayScott(2), Error);
}

}  // namespace
}  // namespace kestrel::app
