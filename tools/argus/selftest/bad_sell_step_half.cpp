// SELF-TEST FIXTURE — SELL c=8 inner loop stepping by 4 instead of 8.
// Slices are padded to whole 8-element columns, so k only ever needs to
// advance a full vector at a time; stepping 4 makes the second half of
// every 8-wide load overrun the slice (and the val/colidx arrays on the
// final column).
//
// expect-violation: bounds :: val

#include <immintrin.h>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell isa=avx512

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: sell_spmv_avx512
// argus-param: a : view SellView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-require: c == 8
// argus-traffic: none
void sell_spmv_avx512(const SellView& a, const Scalar* x, Scalar* y) {
  for (Index s = 0; s < a.nslices; ++s) {
    __m512d acc = _mm512_setzero_pd();
    const Index begin = a.sliceptr[s];
    const Index end = a.sliceptr[s + 1];
    for (Index k = begin; k < end; k += 4) {  // BUG: half-vector step
      const __m512d vals = _mm512_loadu_pd(a.val + k);
      const __m256i idx =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a.colidx + k));
      const __m512d vx = _mm512_i32gather_pd(idx, x, 8);
      acc = _mm512_fmadd_pd(vals, vx, acc);
    }
    const Index row0 = s * 8;
    if (row0 + 8 <= a.m) {
      _mm512_storeu_pd(y + row0, acc);
    } else {
      const __mmask8 mask =
          static_cast<__mmask8>((1u << static_cast<unsigned>(a.m - row0)) - 1u);
      _mm512_mask_storeu_pd(y + row0, mask, acc);
    }
  }
}

}  // namespace

void register_sell_step_half_fixture() {
  KESTREL_REGISTER_KERNEL(kSellSpmv, kAvx512, sell_spmv_avx512);
}

}  // namespace kestrel::mat::kernels
