#include "mat/assembler.hpp"

#include <algorithm>
#include <numeric>

#include "base/error.hpp"

namespace kestrel::mat {

Assembler::Assembler(Index m, Index n) : m_(m), n_(n) {
  KESTREL_CHECK(m >= 0 && n >= 0, "negative matrix dimension");
}

void Assembler::set(Index i, Index j, Scalar v, Mode mode) {
  if (i < 0 || j < 0) return;  // PETSc convention: skip silently
  KESTREL_CHECK(i < m_ && j < n_, "Assembler::set index out of range");
  entries_.push_back({i, j, v, mode});
}

void Assembler::set_block(Index i0, Index j0, Index rows, Index cols,
                          const Scalar* v, Mode mode) {
  for (Index r = 0; r < rows; ++r) {
    for (Index c = 0; c < cols; ++c) {
      set(i0 + r, j0 + c, v[r * cols + c], mode);
    }
  }
}

void Assembler::clear() { entries_.clear(); }

Csr Assembler::assemble(bool drop_zeros) const {
  // stable sort by (i, j) keeps per-entry insertion order for the fold
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [this](std::size_t a, std::size_t b) {
                     const Entry& ea = entries_[a];
                     const Entry& eb = entries_[b];
                     return ea.i != eb.i ? ea.i < eb.i : ea.j < eb.j;
                   });

  std::vector<Index> rowptr(static_cast<std::size_t>(m_) + 1, 0);
  std::vector<Index> colidx;
  std::vector<Scalar> val;

  std::size_t k = 0;
  while (k < order.size()) {
    const Entry& first = entries_[order[k]];
    const Index i = first.i;
    const Index j = first.j;
    Scalar value = 0.0;
    while (k < order.size() && entries_[order[k]].i == i &&
           entries_[order[k]].j == j) {
      const Entry& e = entries_[order[k]];
      if (e.mode == Mode::kInsert) {
        value = e.v;
      } else {
        value += e.v;
      }
      ++k;
    }
    if (drop_zeros && value == 0.0) continue;
    rowptr[static_cast<std::size_t>(i) + 1]++;
    colidx.push_back(j);
    val.push_back(value);
  }
  // Exact 64-bit count of the folded entries, checked before the Index
  // prefix sum below can wrap.
  const GIndex total = static_cast<GIndex>(colidx.size());
  if (total > IndexOverflowError::ceiling()) {
    throw IndexOverflowError(total, "Assembler::assemble nonzero count",
                             __FILE__, __LINE__);
  }
  for (Index i = 0; i < m_; ++i) {
    rowptr[static_cast<std::size_t>(i) + 1] +=
        rowptr[static_cast<std::size_t>(i)];
  }
  return Csr(m_, n_, std::move(rowptr), std::move(colidx), std::move(val));
}

}  // namespace kestrel::mat
