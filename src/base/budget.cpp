#include "base/budget.hpp"

#include "base/error.hpp"

namespace kestrel {

void MemoryBudget::set_limit_bytes(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  limit_ = bytes;
}

std::uint64_t MemoryBudget::limit_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return limit_;
}

std::uint64_t MemoryBudget::used_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

void MemoryBudget::require(std::uint64_t bytes, const std::string& what) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (limit_ != 0 && bytes > limit_ - (used_ < limit_ ? used_ : limit_)) {
    throw BudgetError(bytes, used_, limit_, what, __FILE__, __LINE__);
  }
}

void MemoryBudget::reserve(std::uint64_t bytes, const std::string& what) {
  std::lock_guard<std::mutex> lock(mu_);
  if (limit_ != 0 && bytes > limit_ - (used_ < limit_ ? used_ : limit_)) {
    throw BudgetError(bytes, used_, limit_, what, __FILE__, __LINE__);
  }
  used_ += bytes;
}

void MemoryBudget::release(std::uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  used_ = bytes < used_ ? used_ - bytes : 0;
}

MemoryBudget& MemoryBudget::global() {
  static MemoryBudget budget;
  return budget;
}

}  // namespace kestrel
