#include "snes/newton.hpp"

#include <cmath>

#include "aegis/fault.hpp"
#include "base/error.hpp"
#include "ksp/context.hpp"
#include "mat/coo.hpp"
#include "pc/jacobi.hpp"
#include "prof/profiler.hpp"

namespace kestrel::snes {

NewtonResult newton_solve(const NonlinearFunction& f, Vector& u,
                          const NewtonOptions& opts) {
  const Index n = f.size();
  KESTREL_CHECK(u.size() == n, "newton: initial guess size mismatch");
  // The whole Newton solve is one profiler event; the nested
  // SNESJacobianEval / PCSetUp / KSPSolve events break down its time.
  static const int ev_snes = prof::registered_event("SNESSolve");
  prof::ScopedEvent snes_scope(ev_snes);

  auto format_factory = opts.format_factory;
  if (!format_factory) {
    format_factory = [](const mat::Csr& a) {
      return std::make_shared<const mat::Csr>(a);
    };
  }
  auto pc_factory = opts.pc_factory;
  if (!pc_factory) {
    pc_factory = [](const mat::Csr& a) -> std::unique_ptr<pc::Pc> {
      return std::make_unique<pc::Jacobi>(a);
    };
  }
  auto solver = ksp::make_solver(opts.ksp_type, opts.ksp);
  // Kestrel Bastion: the outer deadline also bounds the nested KSP, unless
  // the caller armed a tighter per-linear-solve token already.
  if (opts.deadline.active() && !solver->settings().deadline.active()) {
    solver->settings().deadline = opts.deadline;
  }

  NewtonResult result;
  Vector fvec(n), du(n), utrial(n), ftrial(n), rhs(n);

  f.residual(u, fvec);
  Scalar fnorm = fvec.norm2();
  const Scalar fnorm0 = fnorm;
  result.fnorm = fnorm;
  if (opts.monitor) opts.monitor(0, fnorm);
  if (fnorm <= opts.atol) {
    result.converged = true;
    return result;
  }

  static const int ev_jac = prof::registered_event("SNESJacobianEval");
  static const int ev_pc = prof::registered_event("PCSetUp");
  // Snapshot the profiler once: instrumentation stays consistent even if a
  // -log_* switch flips mid-solve.
  prof::Profiler* plog = prof::enabled() ? &prof::current() : nullptr;
  if (plog != nullptr) {
    plog->record_history("SNES(newtonls)", 0.0, fnorm);
  }

  KESTREL_CHECK(opts.pc_lag >= 1, "newton: pc_lag must be >= 1");
  std::unique_ptr<pc::Pc> pc;
  for (int it = 1; it <= opts.max_iterations; ++it) {
    // Kestrel Bastion: cooperative stop between steps — u keeps the last
    // completed iterate, nothing half-applied.
    if (opts.deadline.expired()) {
      result.deadline_exceeded = true;
      return result;
    }
    // Kestrel Aegis: an AbftError out of the KSP means the operator's
    // checksum retry could not clear the corruption — the assembled matrix
    // itself is suspect. Rebuilding it from the user callback replaces the
    // corrupted storage, so the iteration gets exactly one fresh-assembly
    // retry (with a fresh preconditioner) before the error propagates.
    ksp::SolveResult lin;
    int attempt = 0;
    for (bool solved = false; !solved; ++attempt) {
      try {
        if (plog != nullptr) plog->begin(ev_jac);
        const mat::Csr jac = f.jacobian(u);
        const auto op = format_factory(jac);
        if (plog != nullptr) plog->end(ev_jac);
        if (!pc || (it - 1) % opts.pc_lag == 0 || attempt > 0) {
          if (plog != nullptr) plog->begin(ev_pc);
          pc = pc_factory(jac);
          if (plog != nullptr) plog->end(ev_pc);
        }

        // solve J du = -F
        rhs.copy_from(fvec);
        rhs.scale(-1.0);
        du.set(0.0);
        ksp::SeqContext ctx(*op, pc.get());
        // Solver::solve records the "KSPSolve" event itself (with
        // iterations * 2 * nnz flops via SeqContext::operator_nnz).
        lin = solver->solve(ctx, rhs, du);
        solved = true;
      } catch (const AbftError&) {
        if (attempt >= 1) throw;
        aegis::stats().abft_retries++;
        result.abft_retries++;
      }
    }
    if (attempt > 1) aegis::stats().recoveries++;
    result.total_linear_iterations += lin.iterations;
    if (lin.reason == ksp::Reason::kDeadlineExceeded) {
      // Deadline tripped inside the KSP: stop without applying the partial
      // update, so u stays at the last completed Newton iterate.
      result.iterations = it - 1;
      result.deadline_exceeded = true;
      return result;
    }
    if (!lin.converged && lin.reason != ksp::Reason::kDivergedMaxIts) {
      // hard linear failure (NaN/breakdown): stop
      result.iterations = it;
      return result;
    }

    // backtracking line search on ||F||
    Scalar lambda = 1.0;
    Scalar trial_norm = fnorm;
    while (true) {
      utrial.copy_from(u);
      utrial.axpy(lambda, du);
      f.residual(utrial, ftrial);
      trial_norm = ftrial.norm2();
      if (trial_norm <= (1.0 - opts.ls_alpha * lambda) * fnorm ||
          lambda <= opts.ls_min_lambda) {
        break;
      }
      lambda *= 0.5;
    }

    const Scalar dunorm = std::abs(lambda) * du.norm2();
    u.copy_from(utrial);
    fvec.copy_from(ftrial);
    fnorm = trial_norm;
    result.iterations = it;
    result.fnorm = fnorm;
    if (opts.monitor) opts.monitor(it, fnorm);
    if (plog != nullptr) {
      plog->record_history("SNES(newtonls)", static_cast<double>(it), fnorm);
    }

    if (std::isnan(fnorm)) return result;
    if (fnorm <= opts.atol || fnorm <= opts.rtol * fnorm0) {
      result.converged = true;
      return result;
    }
    const Scalar unorm = u.norm2();
    if (dunorm <= opts.stol * std::max(unorm, Scalar{1})) {
      result.converged = true;
      return result;
    }
  }
  return result;
}

mat::Csr fd_jacobian(const NonlinearFunction& f, const Vector& u,
                     Scalar eps) {
  const Index n = f.size();
  Vector up(n), f0(n), f1(n);
  f.residual(u, f0);
  mat::Coo coo(n, n);
  for (Index j = 0; j < n; ++j) {
    up.copy_from(u);
    const Scalar h = eps * std::max(std::abs(u[j]), Scalar{1});
    up[j] += h;
    f.residual(up, f1);
    for (Index i = 0; i < n; ++i) {
      const Scalar d = (f1[i] - f0[i]) / h;
      if (d != 0.0) coo.add(i, j, d);
    }
  }
  return coo.to_csr();
}

}  // namespace kestrel::snes
