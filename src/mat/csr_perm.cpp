#include "mat/csr_perm.hpp"

#include <algorithm>
#include <numeric>

#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

CsrPerm::CsrPerm(Csr csr) : csr_(std::move(csr)) {
  const Index m = csr_.rows();
  std::vector<Index> order(static_cast<std::size_t>(m));
  std::iota(order.begin(), order.end(), Index{0});
  // Stable sort by row length keeps ascending row order within a group,
  // which preserves some locality in the output vector.
  std::stable_sort(order.begin(), order.end(), [this](Index a, Index b) {
    return csr_.row_nnz(a) < csr_.row_nnz(b);
  });

  perm_.resize(static_cast<std::size_t>(m));
  std::copy(order.begin(), order.end(), perm_.begin());

  std::vector<Index> begins;
  std::vector<Index> rlens;
  Index i = 0;
  while (i < m) {
    const Index len = csr_.row_nnz(order[static_cast<std::size_t>(i)]);
    begins.push_back(i);
    rlens.push_back(len);
    while (i < m && csr_.row_nnz(order[static_cast<std::size_t>(i)]) == len) {
      ++i;
    }
  }
  begins.push_back(m);
  ngroups_ = static_cast<Index>(rlens.size());
  group_begin_.resize(begins.size());
  std::copy(begins.begin(), begins.end(), group_begin_.begin());
  group_rlen_.resize(rlens.size());
  std::copy(rlens.begin(), rlens.end(), group_rlen_.begin());
  repartition(par::configured_threads());
}

void CsrPerm::repartition(int nparts) {
  // Units are the AVX-512 kernel's width-8 bundles: within each group,
  // full chunks of 8 permuted positions, then one remainder chunk. A
  // partition boundary can therefore only fall on group_begin[g] + 8k —
  // splitting anywhere else would move rows between the vectorized path
  // (FMA accumulation) and the scalar remainder path and change rounding.
  std::vector<Index> chunk_start;
  std::vector<Index> chunk_group;
  std::vector<std::int64_t> weights;
  for (Index g = 0; g < ngroups_; ++g) {
    const Index gb = group_begin_[static_cast<std::size_t>(g)];
    const Index ge = group_begin_[static_cast<std::size_t>(g) + 1];
    const std::int64_t len = group_rlen_[static_cast<std::size_t>(g)];
    Index p = gb;
    for (; p + kZmmDoubles <= ge; p += kZmmDoubles) {
      chunk_start.push_back(p);
      chunk_group.push_back(g);
      weights.push_back(kZmmDoubles * len);
    }
    if (p < ge) {
      chunk_start.push_back(p);
      chunk_group.push_back(g);
      weights.push_back((ge - p) * len);
    }
  }
  chunk_start.push_back(rows());

  part_ = nnz_balance_weights(weights, nparts);
  part_groups_.assign(static_cast<std::size_t>(part_.nparts()), {});
  for (int k = 0; k < part_.nparts(); ++k) {
    PartGroups& pg = part_groups_[static_cast<std::size_t>(k)];
    Index last_group = -1;
    for (Index c = part_.begin(k); c < part_.end(k); ++c) {
      const Index g = chunk_group[static_cast<std::size_t>(c)];
      if (g != last_group) {
        pg.begin.push_back(chunk_start[static_cast<std::size_t>(c)]);
        pg.rlen.push_back(group_rlen_[static_cast<std::size_t>(g)]);
        last_group = g;
      }
    }
    pg.begin.push_back(chunk_start[static_cast<std::size_t>(part_.end(k))]);
  }
}

void CsrPerm::spmv(const Scalar* x, Scalar* y) const {
  if (csr_.slim_active()) {
    // Slim streams live in the inner CSR; its spmv profiles and threads
    // itself, so delegate wholesale instead of duplicating the dispatch.
    csr_.spmv(x, y);
    return;
  }
  spmv_fat(x, y);
}

void CsrPerm::spmv_fat(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(csr_perm)", 2 * nnz(), fat_spmv_traffic_bytes());
  auto fn =
      simd::lookup_as<simd::CsrPermSpmvFn>(simd::Op::kCsrPermSpmv, tier_);
  if (part_.nparts() <= 1) {
    fn(view(), x, y);
    return;
  }
  // Flock: each part runs the unmodified kernel over its synthesized group
  // table. Positions, perm, rowptr/colidx/val and the y scatter are all
  // absolute, so only the group arrays differ from the serial view.
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const PartGroups& pg = part_groups_[static_cast<std::size_t>(p)];
    if (pg.rlen.empty()) return;
    const CsrPermView sub{csr_.view(), static_cast<Index>(pg.rlen.size()),
                          pg.begin.data(), perm_.data(), pg.rlen.data()};
    fn(sub, x, y);
  });
}

std::size_t CsrPerm::storage_bytes() const {
  return csr_.storage_bytes() +
         (group_begin_.size() + perm_.size() + group_rlen_.size()) *
             sizeof(Index);
}

}  // namespace kestrel::mat
