// SELF-TEST FIXTURE — traffic model that disagrees with its own code and
// its own kernel. The fixture-local model `csr_fix` declares streams
// summing to 12*nnz + 24*m + 8*n bytes, but the C++ implementation
// returns 12*nnz + 32*m + 8*n (an 8*m residual). On top of that, the
// kernel annotated with this model never reads colidx or x, both of
// which the model bills as non-amortized streams.
//
// expect-violation: traffic :: residual
// expect-violation: traffic :: never touches it

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=csr isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-traffic-model: csr_fix
// argus-traffic-stream: val = 8 * nnz
// argus-traffic-stream: colidx = 4 * nnz
// argus-traffic-stream: rowptr = 8 * m : conv
// argus-traffic-stream: y = 16 * m : wa
// argus-traffic-stream: x = 8 * n
// argus-traffic-bind: nnz_ = nnz
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-cpp: csr_fix_traffic_bytes
std::size_t csr_fix_traffic_bytes(Index nnz_, Index m_, Index n_) {
  // BUG: bills 32 bytes per row; the declared streams only sum to 24.
  return 12 * nnz_ + 32 * m_ + 8 * n_;
}

// argus-kernel: csr_rowsum_scalar
// argus-param: a : view CsrView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: csr_fix
void csr_rowsum_scalar(const CsrView& a, const Scalar* x, Scalar* y) {
  // BUG (vs the model): never touches colidx or x, yet csr_fix bills both.
  for (Index i = 0; i < a.m; ++i) {
    Scalar sum = 0.0;
    for (Index k = a.rowptr[i]; k < a.rowptr[i + 1]; ++k) {
      sum += a.val[k];
    }
    y[i] = sum;
  }
}

}  // namespace

void register_traffic_model_fixture() {
  KESTREL_REGISTER_KERNEL(kCsrSpmv, kScalar, csr_rowsum_scalar);
}

}  // namespace kestrel::mat::kernels
