// Figure 7 — "Baseline out of box SpMV performance using CSR for various
// grid sizes": Gflop/s of the default CSR kernel for three grid
// resolutions under flat-MCDRAM / flat-DRAM / cache modes at 16/32/64
// processes.
//
// Modeled KNL table (paper hardware) plus a measured sweep over scaled-down
// grids on this host demonstrating the same grid-size insensitivity.

#include <cstdio>

#include "bench_common.hpp"
#include "perf/spmv_model.hpp"

int main(int argc, char** argv) {
  using namespace kestrel;
  using namespace kestrel::perf;
  using simd::IsaTier;

  bench::parse_args(argc, argv);
  const MachineProfile knl = knl7230();
  const Index grids[] = {1024, 2048, 4096};
  const int procs[] = {16, 32, 64};
  const struct {
    MemoryMode mode;
    const char* label;
  } modes[] = {{MemoryMode::kFlatMcdram, "flat mode, MCDRAM"},
               {MemoryMode::kFlatDram, "flat mode, DRAM"},
               {MemoryMode::kCache, "cache mode"}};

  bench::header(
      "Figure 7 (modeled): out-of-box CSR SpMV on KNL [Gflop/s]");
  for (const auto& m : modes) {
    std::printf("\n-- %s --\n", m.label);
    std::printf("%10s", "procs");
    for (Index g : grids) std::printf("  %8dx%-5d", g, g);
    std::printf("\n");
    for (int p : procs) {
      std::printf("%10d", p);
      for (Index g : grids) {
        const double gf = modeled_spmv_gflops(
            knl, m.mode, p, ModelFormat::kCsrBaseline, IsaTier::kScalar,
            SpmvWorkload::gray_scott(g));
        std::printf("  %13.2f", gf);
      }
      std::printf("\n");
    }
  }
  std::printf(
      "\nExpected shape (paper): performance is insensitive to grid size;\n"
      "MCDRAM vs DRAM gap appears only at 64 processes; cache mode is\n"
      "slightly below flat mode.\n");

  bench::header(
      "Figure 7 (measured): CSR baseline on this host across grid sizes");
  std::printf("%12s %12s %12s %12s\n", "grid", "rows", "Gflop/s", "GB/s");
  for (Index n : {192, 256, 384}) {
    mat::Csr a = bench::gray_scott_matrix(bench::scaled(n, n / 8));
    a.set_tier(simd::IsaTier::kScalar);
    const double t = bench::time_spmv(a);
    std::printf("%7dx%-4d %12d %12.2f %12.2f\n", n, n, a.rows(),
                bench::gflops(a, t), bench::achieved_gbs(a, t));
  }
  return 0;
}
