#pragma once
// IndexSet: an ordered set of indices, the vocabulary type for scatters,
// ghost maps and submatrix extraction (PETSc's IS).

#include <vector>

#include "base/types.hpp"

namespace kestrel {

class IndexSet {
 public:
  IndexSet() = default;
  explicit IndexSet(std::vector<Index> indices);

  /// Contiguous range [first, first+n).
  static IndexSet stride(Index first, Index n);

  Index size() const { return static_cast<Index>(idx_.size()); }
  bool empty() const { return idx_.empty(); }
  Index operator[](Index i) const {
    return idx_[static_cast<std::size_t>(i)];
  }
  const Index* data() const { return idx_.data(); }
  const std::vector<Index>& indices() const { return idx_; }

  bool is_sorted() const;
  bool contains(Index v) const;  ///< binary search; requires sorted

  /// Sorted copy with duplicates removed.
  IndexSet sorted_unique() const;

  auto begin() const { return idx_.begin(); }
  auto end() const { return idx_.end(); }

 private:
  std::vector<Index> idx_;
};

}  // namespace kestrel
