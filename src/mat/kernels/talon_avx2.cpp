// AVX2 Talon SpMV fallback. AVX2 has no expand-load, so a 256-entry
// constexpr table turns each 8-bit block mask into its packed column
// offsets; 4 packed values at a time are multiplied against a gather of
// x[c0 + offset] (the gather stays within one 64-byte block of x since
// offsets are < 8). Remainder entries run scalar. The panel body is
// specialized on the compile-time height R so accumulators stay in
// registers.

#include <immintrin.h>

#include <array>
#include <bit>
#include <cstring>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon isa=avx2
// argus-table: kOffsets = setbits

namespace kestrel::mat::kernels {

namespace {

/// kOffsets[mask][i] = column offset of the i-th set bit of `mask`.
constexpr auto make_offsets() {
  std::array<std::array<std::uint8_t, 8>, 256> t{};
  for (unsigned mask = 0; mask < 256; ++mask) {
    unsigned i = 0;
    for (unsigned bit = 0; bit < 8; ++bit) {
      if ((mask >> bit) & 1u) t[mask][i++] = static_cast<std::uint8_t>(bit);
    }
  }
  return t;
}
constexpr auto kOffsets = make_offsets();

template <int R, bool Add>
void talon_panel_avx2(const TalonView& a, Index p, const Scalar* x,
                      Scalar* y) {
  const Index row0 = a.panel_row[p];
  const Scalar* v = a.val + a.panel_valptr[p];
  __m256d acc[R];
  Scalar tail[R] = {};
  for (int j = 0; j < R; ++j) acc[j] = _mm256_setzero_pd();
  for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
    const Index c0 = a.block_col[b];
    const std::uint32_t mask = a.block_mask[b];
    for (int j = 0; j < R; ++j) {
      const std::uint32_t bits =
          (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
      const int cnt = std::popcount(bits);
      const std::uint8_t* off = kOffsets[bits].data();
      int k = 0;
      for (; k + 4 <= cnt; k += 4) {
        std::uint32_t word;
        std::memcpy(&word, off + k, sizeof(word));
        const __m128i idx =
            _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(word)));
        const __m256d xs = _mm256_i32gather_pd(x + c0, idx, 8);
        const __m256d vals = _mm256_loadu_pd(v + k);
        acc[j] = _mm256_fmadd_pd(vals, xs, acc[j]);
      }
      for (; k < cnt; ++k) tail[j] += v[k] * x[c0 + off[k]];
      v += cnt;
    }
  }
  for (int j = 0; j < R; ++j) {
    const __m128d lo = _mm256_castpd256_pd128(acc[j]);
    const __m128d hi = _mm256_extractf128_pd(acc[j], 1);
    const __m128d pair = _mm_add_pd(lo, hi);
    const Scalar sum =
        _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair))) +
        tail[j];
    if constexpr (Add) {
      y[row0 + j] += sum;
    } else {
      y[row0 + j] = sum;
    }
  }
}

template <bool Add>
void talon_spmv_avx2_impl(const TalonView& a, const Scalar* x, Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    switch (a.panel_row[p + 1] - a.panel_row[p]) {
      case 1:
        talon_panel_avx2<1, Add>(a, p, x, y);
        break;
      case 2:
        talon_panel_avx2<2, Add>(a, p, x, y);
        break;
      default:
        talon_panel_avx2<4, Add>(a, p, x, y);
        break;
    }
  }
}

// argus-kernel: talon_spmv_avx2
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon
void talon_spmv_avx2(const TalonView& a, const Scalar* x, Scalar* y) {
  talon_spmv_avx2_impl<false>(a, x, y);
}
// argus-kernel: talon_spmv_add_avx2
// argus-param: a : view TalonView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon
void talon_spmv_add_avx2(const TalonView& a, const Scalar* x, Scalar* y) {
  talon_spmv_avx2_impl<true>(a, x, y);
}

}  // namespace

void register_talon_avx2() {
  KESTREL_REGISTER_KERNEL(kTalonSpmv, kAvx2, talon_spmv_avx2);
  KESTREL_REGISTER_KERNEL(kTalonSpmvAdd, kAvx2, talon_spmv_add_avx2);
}

}  // namespace kestrel::mat::kernels
