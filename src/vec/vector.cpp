#include "vec/vector.hpp"

#include <cmath>

#include "base/error.hpp"

namespace kestrel {

Vector::Vector(std::initializer_list<Scalar> init)
    : data_(init.size()) {
  std::size_t i = 0;
  for (Scalar v : init) data_[i++] = v;
}

void Vector::copy_from(const Vector& src) {
  resize(src.size());
  const Scalar* s = src.data();
  Scalar* d = data();
  for (Index i = 0; i < size(); ++i) d[i] = s[i];
}

void Vector::axpy(Scalar alpha, const Vector& x) {
  KESTREL_CHECK(x.size() == size(), "axpy size mismatch");
  const Scalar* xs = x.data();
  Scalar* d = data();
  for (Index i = 0; i < size(); ++i) d[i] += alpha * xs[i];
}

void Vector::aypx(Scalar alpha, const Vector& x) {
  KESTREL_CHECK(x.size() == size(), "aypx size mismatch");
  const Scalar* xs = x.data();
  Scalar* d = data();
  for (Index i = 0; i < size(); ++i) d[i] = alpha * d[i] + xs[i];
}

void Vector::waxpby(Scalar alpha, const Vector& x, Scalar beta,
                    const Vector& y) {
  KESTREL_CHECK(x.size() == y.size(), "waxpby size mismatch");
  resize(x.size());
  const Scalar* xs = x.data();
  const Scalar* ys = y.data();
  Scalar* d = data();
  for (Index i = 0; i < size(); ++i) d[i] = alpha * xs[i] + beta * ys[i];
}

void Vector::maxpy(std::size_t count, const Scalar* alphas,
                   const Vector* const* xs) {
  for (std::size_t k = 0; k < count; ++k) {
    KESTREL_CHECK(xs[k]->size() == size(), "maxpy size mismatch");
  }
  Scalar* d = data();
  // process vectors in pairs: one pass of d per two inputs
  std::size_t k = 0;
  for (; k + 2 <= count; k += 2) {
    const Scalar a0 = alphas[k];
    const Scalar a1 = alphas[k + 1];
    const Scalar* x0 = xs[k]->data();
    const Scalar* x1 = xs[k + 1]->data();
    for (Index i = 0; i < size(); ++i) d[i] += a0 * x0[i] + a1 * x1[i];
  }
  if (k < count) {
    const Scalar a0 = alphas[k];
    const Scalar* x0 = xs[k]->data();
    for (Index i = 0; i < size(); ++i) d[i] += a0 * x0[i];
  }
}

void Vector::scale(Scalar alpha) {
  Scalar* d = data();
  for (Index i = 0; i < size(); ++i) d[i] *= alpha;
}

void Vector::pointwise_mult(const Vector& x) {
  KESTREL_CHECK(x.size() == size(), "pointwise_mult size mismatch");
  const Scalar* xs = x.data();
  Scalar* d = data();
  for (Index i = 0; i < size(); ++i) d[i] *= xs[i];
}

Scalar Vector::dot(const Vector& other) const {
  KESTREL_CHECK(other.size() == size(), "dot size mismatch");
  const Scalar* a = data();
  const Scalar* b = other.data();
  Scalar sum = 0.0;
  for (Index i = 0; i < size(); ++i) sum += a[i] * b[i];
  return sum;
}

Scalar Vector::norm2() const { return std::sqrt(dot(*this)); }

Scalar Vector::norm_inf() const {
  Scalar m = 0.0;
  for (Scalar v : *this) m = std::max(m, std::abs(v));
  return m;
}

Scalar Vector::sum() const {
  Scalar s = 0.0;
  for (Scalar v : *this) s += v;
  return s;
}

}  // namespace kestrel
