# Empty dependencies file for mm_io_test.
# This may be replaced when dependencies are built.
