#pragma once
// Error handling: Kestrel reports precondition violations and runtime
// failures with exceptions carrying file/line context.  KESTREL_CHECK is
// always on; KESTREL_ASSERT compiles out in release builds and is meant for
// hot paths.

#include <cstdint>
#include <stdexcept>
#include <string>

#include "base/types.hpp"

namespace kestrel {

/// Exception thrown by all Kestrel precondition and runtime checks.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what, const char* file, int line);
  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

/// Structured fabric failure (Kestrel Aegis): one rank died (injected kill,
/// unrecoverable transport fault, or its own exception) and every other rank
/// unwinds its pending collectives with this error instead of hanging.
/// failed_rank() names the root-cause rank on every thrower.
class RankFailure : public Error {
 public:
  RankFailure(int failed_rank, const std::string& what, const char* file,
              int line);
  int failed_rank() const noexcept { return failed_rank_; }

 private:
  int failed_rank_;
};

/// ABFT checksum verification failed even after the recompute-retry: the
/// SpMV result is corrupt and could not be recovered.
class AbftError : public Error {
 public:
  AbftError(const std::string& format, Scalar drift, const std::string& what,
            const char* file, int line);
  const std::string& format() const noexcept { return format_; }
  /// |c.x - sum(y)| observed at the failing verification.
  Scalar drift() const noexcept { return drift_; }

 private:
  std::string format_;
  Scalar drift_;
};

/// Structured nonzero-count overflow: an assembly path or reader accumulated
/// more entries than the 32-bit Index CSR layout can address (the paper's
/// largest case is "close to the largest that does not require 64-bit
/// integers" — anything past that must fail loudly, not wrap). Carries the
/// offending 64-bit count so callers and tests can report it precisely.
class IndexOverflowError : public Error {
 public:
  IndexOverflowError(GIndex count, const std::string& what, const char* file,
                     int line);
  /// The 64-bit entry count that exceeded ceiling().
  GIndex count() const noexcept { return count_; }
  /// Largest entry count a CSR rowptr of Index can address.
  static constexpr GIndex ceiling() { return GIndex{0x7FFFFFFF}; }

 private:
  GIndex count_;
};

/// Structured option-parse failure: carries the key, the raw value and what
/// was expected, so callers can report (or test) malformed flags precisely
/// instead of getting a silent default or a bare abort.
class OptionsError : public Error {
 public:
  OptionsError(const std::string& key, const std::string& value,
               const std::string& expected, const char* file, int line);
  const std::string& key() const noexcept { return key_; }
  const std::string& value() const noexcept { return value_; }
  const std::string& expected() const noexcept { return expected_; }

 private:
  std::string key_;
  std::string value_;
  std::string expected_;
};

/// Structured memory-budget decline (Kestrel Bastion): an allocation or
/// registration was checked against a configured MemoryBudget and would
/// exceed it.  Thrown *before* touching the allocator, so the caller gets a
/// precise, recoverable "no" instead of std::bad_alloc mid-construction.
/// Carries the request, current usage and limit in bytes.
class BudgetError : public Error {
 public:
  BudgetError(std::uint64_t requested_bytes, std::uint64_t in_use_bytes,
              std::uint64_t limit_bytes, const std::string& what,
              const char* file, int line);
  std::uint64_t requested_bytes() const noexcept { return requested_; }
  std::uint64_t in_use_bytes() const noexcept { return in_use_; }
  std::uint64_t limit_bytes() const noexcept { return limit_; }

 private:
  std::uint64_t requested_;
  std::uint64_t in_use_;
  std::uint64_t limit_;
};

/// Structured admission-control decline (Kestrel Bastion): the bounded
/// request queue was full, so the request was shed immediately instead of
/// queueing unboundedly.  Carries the queue depth observed at rejection and
/// a retry-after hint (an EWMA of recent service time) so a well-behaved
/// client can back off instead of hammering.
class RejectedError : public Error {
 public:
  RejectedError(int queue_depth, double retry_after_hint_s,
                const std::string& what, const char* file, int line);
  int queue_depth() const noexcept { return queue_depth_; }
  double retry_after_hint_s() const noexcept { return retry_after_; }

 private:
  int queue_depth_;
  double retry_after_;
};

namespace detail {
[[noreturn]] void throw_error(const std::string& msg, const char* file,
                              int line);
std::string format_check_failure(const char* expr, const std::string& msg);
}  // namespace detail

}  // namespace kestrel

/// Always-on check; throws kestrel::Error with context on failure.
#define KESTREL_CHECK(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::kestrel::detail::throw_error(                                     \
          ::kestrel::detail::format_check_failure(#expr, (msg)),          \
          __FILE__, __LINE__);                                            \
    }                                                                     \
  } while (0)

/// Unconditional failure.
#define KESTREL_FAIL(msg) \
  ::kestrel::detail::throw_error((msg), __FILE__, __LINE__)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define KESTREL_ASSERT(expr, msg) KESTREL_CHECK(expr, msg)
#else
#define KESTREL_ASSERT(expr, msg) \
  do {                            \
  } while (0)
#endif
