#include "simd/dispatch.hpp"

#include <array>
#include <mutex>
#include <string>

#include "base/error.hpp"
#include "base/options.hpp"
#include "mat/kernels/registration.hpp"

namespace kestrel::simd {

namespace {

void ensure_registered() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    // One call per KESTREL_KERNEL_TABLE cell; adding a kernel TU to the
    // table in registration.hpp is all it takes to get it dispatched.
#define KESTREL_CALL_KERNEL_REGISTRATION(fmt, isa) \
  ::kestrel::mat::kernels::register_##fmt##_##isa();
    KESTREL_KERNEL_TABLE(KESTREL_CALL_KERNEL_REGISTRATION)
#undef KESTREL_CALL_KERNEL_REGISTRATION
  });
}

using Table = std::array<std::array<void*, kNumTiers>,
                         static_cast<std::size_t>(Op::kOpCount)>;

Table& table() {
  static Table t{};  // zero-initialized
  return t;
}

std::array<void*, kNumTiers>& row(Op op) {
  return table()[static_cast<std::size_t>(op)];
}

const char* op_name(Op op) {
  switch (op) {
    case Op::kCsrSpmv:
      return "csr_spmv";
    case Op::kCsrSpmvAddRows:
      return "csr_spmv_add_rows";
    case Op::kSellSpmv:
      return "sell_spmv";
    case Op::kSellSpmvAdd:
      return "sell_spmv_add";
    case Op::kSellSpmvBitmask:
      return "sell_spmv_bitmask";
    case Op::kSellSpmvPrefetch:
      return "sell_spmv_prefetch";
    case Op::kCsrPermSpmv:
      return "csr_perm_spmv";
    case Op::kBcsrSpmv:
      return "bcsr_spmv";
    case Op::kTalonSpmv:
      return "talon_spmv";
    case Op::kTalonSpmvAdd:
      return "talon_spmv_add";
    case Op::kGatherPack:
      return "gather_pack";
    default:
      return "?";
  }
}

}  // namespace

void register_kernel(Op op, IsaTier tier, void* fn) {
  KESTREL_CHECK(fn != nullptr, "null kernel");
  row(op)[static_cast<std::size_t>(tier)] = fn;
}

IsaTier resolve_tier(Op op, IsaTier want) {
  ensure_registered();
  int t = static_cast<int>(want);
  // never pick a tier the CPU cannot execute
  const int best = static_cast<int>(detect_best_tier());
  if (t > best) t = best;
  for (; t >= 0; --t) {
    if (row(op)[static_cast<std::size_t>(t)] != nullptr) {
      return static_cast<IsaTier>(t);
    }
  }
  KESTREL_FAIL(std::string("no kernel registered for ") + op_name(op));
}

void* lookup(Op op, IsaTier want) {
  const IsaTier tier = resolve_tier(op, want);
  return row(op)[static_cast<std::size_t>(tier)];
}

bool has_exact(Op op, IsaTier tier) {
  ensure_registered();
  return row(op)[static_cast<std::size_t>(tier)] != nullptr;
}

IsaTier default_tier() {
  const std::string forced =
      Options::global().get_string("spmv_isa", std::string());
  if (!forced.empty()) return parse_tier(forced);
  return detect_best_tier();
}

}  // namespace kestrel::simd
