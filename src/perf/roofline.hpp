#pragma once
// Roofline analysis (paper Figure 9): bandwidth ceilings, peak flop rate,
// and the arithmetic intensity of the SpMV kernels under the section 6
// traffic model (AI ~= 0.132 flop/byte for the Gray–Scott matrix).

#include <string>
#include <vector>

#include "perf/spmv_model.hpp"

namespace kestrel::perf {

struct RooflineCeilings {
  double peak_gflops;
  double l1_gbs;
  double l2_gbs;
  double mem_gbs;  ///< MCDRAM (KNL) or DRAM
};

/// The ceilings LBNL's Empirical Roofline Tool measured on Theta, as
/// printed in Figure 9.
RooflineCeilings knl_ceilings_fig9();

/// Flops per byte of one SpMV under the minimum-traffic model.
double arithmetic_intensity(ModelFormat fmt, const SpmvWorkload& workload);

/// Attainable Gflop/s at a given AI under a ceiling pair.
double roofline_limit(const RooflineCeilings& c, double ai);

/// Peak double-precision FMA throughput of the host, measured with an
/// AVX-512 register-resident kernel (defined in a TU compiled with
/// AVX-512 flags). Returns Gflop/s.
double measured_peak_gflops(int milliseconds_budget = 200);

struct RooflinePoint {
  std::string label;
  double ai;
  double gflops;
};

/// Modeled Figure 9: all nine kernel variants of Figure 8 at 64 ranks on
/// the KNL profile, flat MCDRAM mode.
std::vector<RooflinePoint> modeled_roofline_points(Index grid_n = 2048);

}  // namespace kestrel::perf
