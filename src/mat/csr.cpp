#include "mat/csr.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "mat/coo.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::mat {

namespace {

template <class T>
AlignedBuffer<T> to_aligned(const std::vector<T>& v) {
  AlignedBuffer<T> out(v.size());
  std::copy(v.begin(), v.end(), out.begin());
  return out;
}

}  // namespace

Csr::Csr(Index m, Index n, std::vector<Index> rowptr,
         std::vector<Index> colidx, std::vector<Scalar> val)
    : m_(m),
      n_(n),
      rowptr_(to_aligned(rowptr)),
      colidx_(to_aligned(colidx)),
      val_(to_aligned(val)) {
  validate();
  repartition(par::configured_threads());
}

void Csr::repartition(int nparts) {
  part_ = nnz_balance(rowptr_.data(), m_, nparts);
}

void Csr::validate() const {
  KESTREL_CHECK(m_ >= 0 && n_ >= 0, "negative dimension");
  KESTREL_CHECK(rowptr_.size() == static_cast<std::size_t>(m_) + 1,
                "rowptr must have m+1 entries");
  KESTREL_CHECK(rowptr_[0] == 0, "rowptr[0] must be 0");
  for (Index i = 0; i < m_; ++i) {
    KESTREL_CHECK(rowptr_[i] <= rowptr_[i + 1], "rowptr must be monotone");
    for (Index k = rowptr_[i]; k + 1 < rowptr_[i + 1]; ++k) {
      KESTREL_CHECK(colidx_[k] < colidx_[k + 1],
                    "column indices must be strictly increasing per row");
    }
    for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
      KESTREL_CHECK(colidx_[k] >= 0 && colidx_[k] < n_,
                    "column index out of range");
    }
  }
  KESTREL_CHECK(colidx_.size() ==
                    static_cast<std::size_t>(
                        m_ == 0 ? 0 : rowptr_[static_cast<std::size_t>(m_)]),
                "colidx size mismatch");
  KESTREL_CHECK(val_.size() == colidx_.size(), "val size mismatch");
}

Csr Csr::from_coo(const Coo& coo, bool drop_zeros) {
  return coo.to_csr(drop_zeros);
}

void Csr::spmv(const Scalar* x, Scalar* y) const {
  if (slim_.active()) {
    spmv_slim(x, y);
    return;
  }
  spmv_fat(x, y);
}

void Csr::spmv_wide(const Scalar* x, Scalar* y) const { spmv_fat(x, y); }

void Csr::spmv_fat(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(csr)", 2 * nnz(), fat_spmv_traffic_bytes());
  auto fn = simd::lookup_as<simd::CsrSpmvFn>(simd::Op::kCsrSpmv, tier_);
  if (part_.nparts() <= 1) {
    fn(view(), x, y);
    return;
  }
  // Flock: each part multiplies a contiguous row range through an offset
  // sub-view. rowptr values are absolute into colidx/val, so only the
  // rowptr pointer and y shift; per-row accumulation order is untouched
  // and the result is bitwise-identical to the serial multiply.
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index r0 = part_.begin(p);
    const Index r1 = part_.end(p);
    if (r0 == r1) return;
    const CsrView sub{r1 - r0, n_, rowptr_.data() + r0, colidx_.data(),
                      val_.data()};
    fn(sub, x, y + r0);
  });
}

void Csr::spmv_slim(const Scalar* x, Scalar* y) const {
  KESTREL_PROF_SPMV("MatMult(csr_slim)", 2 * nnz(), spmv_traffic_bytes());
  auto fn =
      simd::lookup_as<simd::CsrSlimSpmvFn>(simd::Op::kCsrSlimSpmv, tier_);
  const CsrSlimView v = slim_view();
  if (part_.nparts() <= 1) {
    fn(v, x, y);
    return;
  }
  // Same Flock split as the fat path: rowptr values stay absolute into the
  // colidx/off16/val/val32 streams, and base is per-row, so the sub-view
  // shifts only the per-row pointers and y.
  par::ThreadPool::rank_pool().run(part_.nparts(), [&](int p, int) {
    const Index r0 = part_.begin(p);
    const Index r1 = part_.end(p);
    if (r0 == r1) return;
    CsrSlimView sub = v;
    sub.m = r1 - r0;
    sub.rowptr = v.rowptr + r0;
    if (v.base != nullptr) sub.base = v.base + r0;
    fn(sub, x, y + r0);
  });
}

CsrSlimView Csr::slim_view() const {
  return {m_,
          n_,
          slim_.idx16() ? Index{1} : Index{0},
          slim_.fp32() ? Index{1} : Index{0},
          rowptr_.data(),
          colidx_.data(),
          val_.data(),
          slim_.idx16() ? slim_.base() : nullptr,
          slim_.idx16() ? slim_.off16() : nullptr,
          slim_.fp32() ? slim_.val32() : nullptr};
}

bool Csr::set_slim(const SlimOptions& opts) {
  return slim_.attach(opts, rowptr_.data(), m_, colidx_.data(), val_.data(),
                      val_.size(), 1);
}

void Csr::get_diagonal(Vector& d) const {
  KESTREL_CHECK(m_ == n_, "get_diagonal requires a square matrix");
  d.resize(m_);
  for (Index i = 0; i < m_; ++i) d[i] = at(i, i);
}

void Csr::abft_col_checksum(Vector& c) const {
  c.resize(n_);
  c.set(0.0);
  const std::size_t nz =
      m_ == 0 ? 0 : static_cast<std::size_t>(rowptr_[static_cast<std::size_t>(m_)]);
  for (std::size_t k = 0; k < nz; ++k) c[colidx_[k]] += val_[k];
}

Scalar Csr::at(Index i, Index j) const {
  KESTREL_CHECK(i >= 0 && i < m_ && j >= 0 && j < n_, "index out of range");
  const Index* begin = colidx_.data() + rowptr_[i];
  const Index* end = colidx_.data() + rowptr_[i + 1];
  const Index* it = std::lower_bound(begin, end, j);
  if (it != end && *it == j) return val_[rowptr_[i] + (it - begin)];
  return 0.0;
}

std::size_t Csr::storage_bytes() const {
  return rowptr_.size() * sizeof(Index) + colidx_.size() * sizeof(Index) +
         val_.size() * sizeof(Scalar);
}

// argus-traffic-model: csr
// argus-traffic-stream: val = 8 * nnz
// argus-traffic-stream: colidx = 4 * nnz
// argus-traffic-stream: rowptr = 8 * m : conv
// argus-traffic-stream: y = 16 * m : wa
// argus-traffic-stream: x = 8 * n
// argus-traffic-bind: nnz() = nnz
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-cpp: fat_spmv_traffic_bytes
std::size_t Csr::fat_spmv_traffic_bytes() const {
  // Paper section 6: 12*nnz + 24*m + 8*n bytes — 12 bytes per stored
  // element (8 value + 4 column index), 24 bytes per row (output vector
  // write-allocate + the rowptr arrays of the diagonal and off-diagonal
  // blocks), 8 bytes per column for the input vector.
  return static_cast<std::size_t>(12 * nnz()) +
         24 * static_cast<std::size_t>(m_) + 8 * static_cast<std::size_t>(n_);
}

// Kestrel Slim traffic: the per-nonzero streams shrink to 4 (fp32 value) +
// 2 (16-bit offset) bytes, and each row adds a 4-byte base-column read on
// top of the fat model's 24 B/row. The fat colidx/val arrays are not
// touched in this mode, so they bill zero (`alt` = replaced by the slim
// streams above).
// argus-traffic-model: csr_slim
// argus-traffic-stream: val32 = 4 * nnz : esize 4
// argus-traffic-stream: off16 = 2 * nnz : esize 2
// argus-traffic-stream: base = 4 * m
// argus-traffic-stream: rowptr = 8 * m : conv
// argus-traffic-stream: y = 16 * m : wa
// argus-traffic-stream: x = 8 * n
// argus-traffic-stream: colidx = 0 : alt
// argus-traffic-stream: val = 0 : alt
// argus-traffic-bind: nnz() = nnz
// argus-traffic-bind: m_ = m
// argus-traffic-bind: n_ = n
// argus-traffic-cpp: slim_spmv_traffic_bytes
std::size_t Csr::slim_spmv_traffic_bytes() const {
  return static_cast<std::size_t>(6 * nnz()) +
         28 * static_cast<std::size_t>(m_) + 8 * static_cast<std::size_t>(n_);
}

std::size_t Csr::spmv_traffic_bytes() const {
  if (!slim_.active()) return fat_spmv_traffic_bytes();
  if (slim_.idx16() && slim_.fp32()) return slim_spmv_traffic_bytes();
  // Partial modes swap one per-nnz stream at a time; idx16 also adds the
  // 4 B/row base read.
  const std::size_t vb = slim_.fp32() ? 4 : 8;
  const std::size_t ib = slim_.idx16() ? 2 : 4;
  const std::size_t rb = slim_.idx16() ? 28 : 24;
  return (vb + ib) * static_cast<std::size_t>(nnz()) +
         rb * static_cast<std::size_t>(m_) + 8 * static_cast<std::size_t>(n_);
}

void Csr::spmv_transpose(const Scalar* x, Scalar* y) const {
  for (Index j = 0; j < n_; ++j) y[j] = 0.0;
  for (Index i = 0; i < m_; ++i) {
    const Scalar xi = x[i];
    if (xi == 0.0) continue;
    for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
      y[colidx_[k]] += val_[k] * xi;
    }
  }
}

void Csr::copy_values_from(const Csr& other) {
  KESTREL_CHECK(other.m_ == m_ && other.n_ == n_ && other.nnz() == nnz(),
                "copy_values_from: shape mismatch");
  for (Index i = 0; i < m_; ++i) {
    KESTREL_CHECK(other.rowptr_[i + 1] == rowptr_[i + 1],
                  "copy_values_from: pattern changed");
  }
  for (Index k = 0; k < static_cast<Index>(nnz()); ++k) {
    KESTREL_CHECK(other.colidx_[k] == colidx_[k],
                  "copy_values_from: pattern changed");
    val_[k] = other.val_[k];
  }
  slim_.refresh_values(val_.data(), val_.size());
}

Csr Csr::transpose() const {
  std::vector<Index> rowptr(static_cast<std::size_t>(n_) + 1, 0);
  const Index total = static_cast<Index>(nnz());
  for (Index k = 0; k < total; ++k) {
    rowptr[static_cast<std::size_t>(colidx_[k]) + 1]++;
  }
  for (Index j = 0; j < n_; ++j) {
    rowptr[static_cast<std::size_t>(j) + 1] +=
        rowptr[static_cast<std::size_t>(j)];
  }
  std::vector<Index> colidx(static_cast<std::size_t>(total));
  std::vector<Scalar> val(static_cast<std::size_t>(total));
  std::vector<Index> next(rowptr.begin(), rowptr.end() - 1);
  for (Index i = 0; i < m_; ++i) {
    for (Index k = rowptr_[i]; k < rowptr_[i + 1]; ++k) {
      const Index pos = next[static_cast<std::size_t>(colidx_[k])]++;
      colidx[static_cast<std::size_t>(pos)] = i;
      val[static_cast<std::size_t>(pos)] = val_[k];
    }
  }
  return Csr(n_, m_, std::move(rowptr), std::move(colidx), std::move(val));
}

Csr Csr::extract(const std::vector<Index>& rows,
                 const std::vector<Index>& cols) const {
  KESTREL_CHECK(std::is_sorted(cols.begin(), cols.end()),
                "extract requires sorted columns");
  // global column -> local column map
  std::vector<Index> colmap(static_cast<std::size_t>(n_), -1);
  for (std::size_t j = 0; j < cols.size(); ++j) {
    KESTREL_CHECK(cols[j] >= 0 && cols[j] < n_, "extract column range");
    colmap[static_cast<std::size_t>(cols[j])] = static_cast<Index>(j);
  }
  std::vector<Index> rowptr;
  rowptr.reserve(rows.size() + 1);
  rowptr.push_back(0);
  std::vector<Index> colidx;
  std::vector<Scalar> val;
  for (Index gi : rows) {
    KESTREL_CHECK(gi >= 0 && gi < m_, "extract row range");
    for (Index k = rowptr_[gi]; k < rowptr_[gi + 1]; ++k) {
      const Index lj = colmap[static_cast<std::size_t>(colidx_[k])];
      if (lj >= 0) {
        colidx.push_back(lj);
        val.push_back(val_[k]);
      }
    }
    rowptr.push_back(static_cast<Index>(colidx.size()));
  }
  return Csr(static_cast<Index>(rows.size()), static_cast<Index>(cols.size()),
             std::move(rowptr), std::move(colidx), std::move(val));
}

Index Csr::max_row_nnz() const {
  Index best = 0;
  for (Index i = 0; i < m_; ++i) best = std::max(best, row_nnz(i));
  return best;
}

}  // namespace kestrel::mat
