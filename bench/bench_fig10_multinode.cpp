// Figure 10 — "SpMV performance on the supercomputer Theta": total wall
// time of the 16384^2 Gray-Scott run (5 time steps, 6-level multigrid
// GMRES) on 64-512 KNL nodes, CSR baseline vs SELL, across the three
// memory configurations, with the MatMult share broken out (the hatched
// region of the paper's bars).
//
// The cluster itself is modeled (see DESIGN.md); the measured counterpart
// is a full (small) Gray-Scott solve on this host with both formats, run
// through the real TS->Newton->GMRES->MG stack.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "base/options.hpp"
#include "bench_common.hpp"
#include "mat/sell.hpp"
#include "par/pool.hpp"
#include "pc/mg.hpp"
#include "perf/spmv_model.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"
#include "ts/theta.hpp"

namespace {

using namespace kestrel;

/// Measured miniature of the paper's run: n x n Gray-Scott, CN dt=1,
/// `steps` steps, MG(levels)-preconditioned GMRES, Jacobian in `fmt`.
double run_gray_scott(Index n, int steps, int levels, bool use_sell,
                      double* matmult_seconds) {
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);

  ts::ThetaOptions opts;
  opts.theta = 0.5;
  opts.dt = 1.0;
  opts.steps = steps;
  opts.newton.rtol = 1e-6;
  opts.newton.ksp.rtol = 1e-6;
  if (use_sell) {
    opts.newton.format_factory = [](const mat::Csr& a) {
      return std::make_shared<const mat::Sell>(a);
    };
  }
  const auto chain = app::gray_scott_interpolation_chain(gs.grid(), levels);
  opts.newton.pc_factory =
      [&chain, use_sell](const mat::Csr& a) -> std::unique_ptr<pc::Pc> {
    pc::Multigrid::Options mg_opts;
    pc::Multigrid::FormatFactory factory;
    if (use_sell) {
      factory = [](const mat::Csr& lvl) {
        return std::make_shared<const mat::Sell>(lvl);
      };
    }
    return std::make_unique<pc::Multigrid>(a, chain, mg_opts, factory);
  };

  const double t0 = wall_time();
  const ts::ThetaResult res = theta_integrate(gs, u, opts);
  const double total = wall_time() - t0;
  if (!res.completed) std::printf("  (warning: run did not complete)\n");
  // MatMult share is re-measured directly: time one Jacobian SpMV and
  // multiply by the linear-iteration count (1 operator apply + MG applies)
  const mat::Csr jac = gs.rhs_jacobian(u);
  double t_apply;
  if (use_sell) {
    const mat::Sell sell(jac);
    t_apply = bench::time_spmv(sell, 5, 0.05);
  } else {
    t_apply = bench::time_spmv(jac, 5, 0.05);
  }
  // fine + MG level SpMVs per linear iteration (~1 + 3 smoother/residual
  // applies over a geometric level hierarchy)
  const double applies_per_it = 1.0 + 3.0 * 4.0 / 3.0;
  *matmult_seconds = res.total_linear_iterations * applies_per_it * t_apply;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace kestrel;
  using namespace kestrel::perf;
  using simd::IsaTier;

  bench::parse_args(argc, argv);
  Options& opts = Options::global();
  opts.parse(argc, argv);
  const prof::LogConfig logcfg = prof::configure(opts);

  bench::header(
      "Figure 10 (modeled): Gray-Scott 16384^2 on Theta, walltime [s]");
  // Halo-exchange constants come from this host's fabric (the bench_comm
  // Phase A calibration) instead of the built-in defaults, so the model's
  // comm term tracks the transport actually underneath Kestrel.
  const CommModel cm =
      CommModel::measure_fabric(bench::scaled_reps(50, 6));
  std::printf("halo model: alpha = %.3f us, beta = %.4f ns/byte "
              "(fabric-calibrated)\n",
              cm.alpha_s * 1e6, cm.beta_s_per_byte * 1e9);

  // Kestrel Flock: measure this host's intra-rank SpMV thread scaling on a
  // cache-resident SELL matrix and fold it into the model's compute term
  // (perf::ThreadModel) — the same composition as the comm calibration
  // above: modeled roofline, measured machine constants.
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  int flock_threads = par::configured_threads();
  if (flock_threads <= 1) flock_threads = std::min(4, std::max(1, hw));
  ThreadModel flock;
  if (flock_threads > 1) {
    mat::Sell scale_probe(bench::gray_scott_matrix(bench::scaled(96, 48)));
    const std::string saved = opts.get_string("threads", "");
    opts.set("threads", "1");
    scale_probe.repartition(1);
    const double t1 = bench::time_spmv(scale_probe, 5, 0.05);
    opts.set("threads", std::to_string(flock_threads));
    scale_probe.repartition(flock_threads);
    const double tn = bench::time_spmv(scale_probe, 5, 0.05);
    opts.set("threads", saved.empty() ? "1" : saved);
    flock.threads = flock_threads;
    flock.efficiency =
        std::min(1.0, std::max(0.05, t1 / (flock_threads * tn)));
    std::printf("flock model: %d threads/rank, measured intra-rank "
                "efficiency %.2f (%.2fx at %d threads)\n",
                flock.threads, flock.efficiency, t1 / tn, flock.threads);
  }
  const MachineProfile knl = knl7230();
  const struct {
    MemoryMode mode;
    const char* label;
  } modes[] = {{MemoryMode::kFlatDram, "flat mode using DRAM only"},
               {MemoryMode::kCache, "cache mode"},
               {MemoryMode::kFlatMcdram, "flat mode"}};
  for (const auto& m : modes) {
    std::printf("\n-- %s --\n", m.label);
    std::printf("%8s %18s %18s %12s %12s\n", "nodes", "CSR total(MatMult)",
                "SELL total(MatMult)", "speedup", "MatMult x");
    for (int nodes : {64, 128, 256, 512}) {
      const auto csr = modeled_multinode(knl, m.mode, nodes,
                                         ModelFormat::kCsrBaseline,
                                         IsaTier::kScalar, 16384, 5, 6, &cm);
      const auto sell = modeled_multinode(knl, m.mode, nodes,
                                          ModelFormat::kSell,
                                          IsaTier::kAvx512, 16384, 5, 6, &cm);
      std::printf("%8d %10.1f (%5.1f) %10.1f (%5.1f) %11.2fx %11.2fx\n",
                  nodes, csr.total_seconds, csr.matmult_seconds,
                  sell.total_seconds, sell.matmult_seconds,
                  csr.total_seconds / sell.total_seconds,
                  csr.matmult_seconds / sell.matmult_seconds);
    }
  }
  std::printf(
      "\nExpected shape (paper): ~2x MatMult speedup for SELL in cache and\n"
      "flat(MCDRAM) modes translating into a visible total-time drop; only\n"
      "marginal improvement when restricted to DRAM; non-MatMult time is\n"
      "format independent.\n");

  if (flock.threads > 1) {
    std::printf("\n-- flat mode, SELL/AVX-512 with Flock in-rank threading "
                "(measured efficiency in t_cpu) --\n");
    std::printf("%8s %18s %18s %12s\n", "nodes", "serial total(MatMult)",
                "flock total(MatMult)", "MatMult x");
    for (int nodes : {64, 128, 256, 512}) {
      const auto serial = modeled_multinode(knl, MemoryMode::kFlatMcdram,
                                            nodes, ModelFormat::kSell,
                                            IsaTier::kAvx512, 16384, 5, 6,
                                            &cm);
      const auto threaded = modeled_multinode(knl, MemoryMode::kFlatMcdram,
                                              nodes, ModelFormat::kSell,
                                              IsaTier::kAvx512, 16384, 5, 6,
                                              &cm, &flock);
      std::printf("%8d %10.1f (%5.1f) %10.1f (%5.1f) %11.2fx\n", nodes,
                  serial.total_seconds, serial.matmult_seconds,
                  threaded.total_seconds, threaded.matmult_seconds,
                  serial.matmult_seconds / threaded.matmult_seconds);
    }
    std::printf("(t_mem is node-saturated, so threads only move the "
                "compute side of the roofline — the MCDRAM columns barely "
                "change where SpMV is bandwidth-bound.)\n");
  }

  bench::header(
      "Figure 10 (measured): full solver stack on this host (miniature)");
  std::printf("Gray-Scott 64x64, 2 steps, 3-level MG-GMRES, CN dt=1\n\n");
  const Index mini_n = bench::scaled(64, 16);
  const int mini_steps = bench::scaled_reps(2, 1);
  double mm_csr = 0.0, mm_sell = 0.0;
  const double t_csr = run_gray_scott(mini_n, mini_steps, 3, false, &mm_csr);
  const double t_sell = run_gray_scott(mini_n, mini_steps, 3, true, &mm_sell);
  std::printf("%-14s %10s %18s\n", "format", "total [s]",
              "est. MatMult [s]");
  std::printf("%-14s %10.3f %18.3f\n", "CSR baseline", t_csr, mm_csr);
  std::printf("%-14s %10.3f %18.3f\n", "SELL", t_sell, mm_sell);
  std::printf("MatMult speedup (SELL vs CSR): %.2fx\n",
              mm_csr / mm_sell);

  if (logcfg.any()) {
    // Machine-readable results for the figure scripts: measured walltimes
    // as named metrics alongside the full event table in one JSON dump.
    prof::Profiler& p = prof::current();
    p.set_metric("fig10_measured_total_csr_s", t_csr);
    p.set_metric("fig10_measured_total_sell_s", t_sell);
    p.set_metric("fig10_measured_matmult_csr_s", mm_csr);
    p.set_metric("fig10_measured_matmult_sell_s", mm_sell);
    p.set_metric("fig10_measured_matmult_speedup", mm_csr / mm_sell);
    p.set_metric("fig10_flock_threads",
                 static_cast<double>(flock.threads));
    p.set_metric("fig10_flock_efficiency", flock.efficiency);
    prof::export_all(logcfg, p);
  }
  return 0;
}
