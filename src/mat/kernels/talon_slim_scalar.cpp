// Scalar Kestrel Slim Talon SpMV reference. Talon's block metadata is
// already a compressed index stream (base column + presence mask), so slim
// Talon only swaps the packed value walk to the fp32 stream; each value
// widens to double before the multiply and accumulation stays double.

#include <bit>

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=talon_slim isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: talon_slim_spmv_scalar
// argus-param: a : view TalonSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: talon_slim
void talon_slim_spmv_scalar(const TalonSlimView& a, const Scalar* x,
                            Scalar* y) {
  for (Index p = 0; p < a.npanels; ++p) {
    const Index row0 = a.panel_row[p];
    const Index r = a.panel_row[p + 1] - row0;
    const float* v = a.val32 + a.panel_valptr[p];
    Scalar acc[4] = {};  // r <= 4 by construction
    for (Index b = a.panel_blockptr[p]; b < a.panel_blockptr[p + 1]; ++b) {
      const Index c0 = a.block_col[b];
      const std::uint32_t mask = a.block_mask[b];
      for (Index j = 0; j < r; ++j) {
        std::uint32_t bits = (mask >> (8u * static_cast<unsigned>(j))) & 0xFFu;
        while (bits != 0) {
          const Scalar vv = *v;
          acc[j] += vv * x[c0 + std::countr_zero(bits)];
          ++v;
          bits &= bits - 1;
        }
      }
    }
    for (Index j = 0; j < r; ++j) {
      y[row0 + j] = acc[j];
    }
  }
}

}  // namespace

void register_talon_slim_scalar() {
  KESTREL_REGISTER_KERNEL(kTalonSlimSpmv, kScalar, talon_slim_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
