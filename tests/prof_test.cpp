// Unit tests for Kestrel Scope (kestrel::prof): the name registries,
// accumulation and LIFO pairing, stages, options-driven configuration, the
// JSON helpers, exporter schemas, and the kernel-bytes-vs-traffic-model
// cross-check the acceptance criteria require.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <sstream>
#include <string>

#include "app/gray_scott.hpp"
#include "base/error.hpp"
#include "base/options.hpp"
#include "mat/csr.hpp"
#include "mat/sell.hpp"
#include "mat/talon.hpp"
#include "par/pool.hpp"
#include "perf/spmv_model.hpp"
#include "prof/hwc.hpp"
#include "prof/json.hpp"
#include "prof/profiler.hpp"
#include "prof/report.hpp"

namespace kestrel {
namespace {

TEST(ProfRegistry, IdsAreStableAndShared) {
  const int a = prof::registered_event("prof_test_event_a");
  const int b = prof::registered_event("prof_test_event_b");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, prof::registered_event("prof_test_event_a"));
  EXPECT_EQ(b, prof::registered_event("prof_test_event_b"));
  EXPECT_EQ(prof::event_name(a), "prof_test_event_a");
  EXPECT_GE(prof::num_registered_events(), 2);

  // "Main Stage" is pre-registered as stage 0.
  EXPECT_EQ(prof::registered_stage("Main Stage"), prof::kMainStage);
  EXPECT_EQ(prof::stage_name(prof::kMainStage), "Main Stage");
}

TEST(ProfProfiler, AccumulatesTimeFlopsAndBytes) {
  prof::Profiler log;
  const int id = prof::registered_event("prof_test_spmv");
  log.begin(id);
  log.end(id, 1000, 4096);
  log.begin(id);
  log.end(id, 500, 1024);
  EXPECT_EQ(log.calls(id), 2u);
  EXPECT_EQ(log.flops(id), 1500u);
  EXPECT_EQ(log.bytes(id), 5120u);
  EXPECT_GE(log.seconds(id), 0.0);
  EXPECT_GT(log.elapsed_seconds(), 0.0);

  log.reset();
  EXPECT_EQ(log.calls(id), 0u);
}

TEST(ProfProfiler, PairingErrorsThrow) {
  prof::Profiler log;
  const int a = prof::registered_event("prof_test_pair_a");
  const int b = prof::registered_event("prof_test_pair_b");
  // end with nothing running
  EXPECT_THROW(log.end(a), Error);
  // mismatched end: inner event must close first (LIFO)
  log.begin(a);
  log.begin(b);
  EXPECT_THROW(log.end(a), Error);
  log.end(b);
  log.end(a);
  EXPECT_EQ(log.calls(a), 1u);
  EXPECT_EQ(log.calls(b), 1u);
}

TEST(ProfProfiler, StagesPartitionAccounting) {
  prof::Profiler log;
  const int ev = prof::registered_event("prof_test_staged");
  const int setup = prof::registered_stage("prof_test Setup");
  ASSERT_NE(setup, prof::kMainStage);

  log.begin(ev);
  log.end(ev, 10);
  log.stage_push(setup);
  EXPECT_EQ(log.current_stage(), setup);
  log.begin(ev);
  log.end(ev, 1);
  log.stage_pop();
  EXPECT_EQ(log.current_stage(), prof::kMainStage);

  EXPECT_EQ(log.perf_in(prof::kMainStage, ev).calls, 1u);
  EXPECT_EQ(log.perf_in(prof::kMainStage, ev).flops, 10u);
  EXPECT_EQ(log.perf_in(setup, ev).calls, 1u);
  EXPECT_EQ(log.perf_in(setup, ev).flops, 1u);
  EXPECT_EQ(log.calls(ev), 2u);  // query sums over stages

  // the main stage cannot be popped
  EXPECT_THROW(log.stage_pop(), Error);
}

TEST(ProfProfiler, MessagesAttributeToInnermostEvent) {
  prof::Profiler log;
  const int ev = prof::registered_event("prof_test_comm_owner");
  log.begin(ev);
  log.message(2, 160);
  log.end(ev);
  log.message(1, 80);  // no running event: implicit "Comm"
  log.reduction();

  EXPECT_EQ(log.perf_in(prof::kMainStage, ev).messages, 2u);
  EXPECT_EQ(log.perf_in(prof::kMainStage, ev).message_bytes, 160u);
  const int comm = prof::registered_event("Comm");
  EXPECT_EQ(log.perf_in(prof::kMainStage, comm).messages, 1u);
  EXPECT_EQ(log.perf_in(prof::kMainStage, comm).reductions, 1u);
  EXPECT_EQ(log.total_messages(), 3u);
  EXPECT_EQ(log.total_message_bytes(), 240u);
  EXPECT_EQ(log.total_reductions(), 1u);
}

TEST(ProfProfiler, ScopedEventIsNoOpWhenDisabled) {
  prof::Profiler log;
  prof::AttachGuard attach(&log);
  const int ev = prof::registered_event("prof_test_disabled");
  {
    prof::EnableGuard enable(false);
    prof::ScopedEvent scope(ev, 100, 100);
  }
  EXPECT_EQ(log.calls(ev), 0u);
  {
    prof::EnableGuard enable(true);
    prof::ScopedEvent scope(ev, 100, 100);
  }
  EXPECT_EQ(log.calls(ev), 1u);
}

TEST(ProfProfiler, TracingRecordsSpansWithDepth) {
  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true, /*trace=*/true);
  const int outer = prof::registered_event("prof_test_outer");
  const int inner = prof::registered_event("prof_test_inner");
  {
    prof::ScopedEvent o(outer);
    prof::ScopedEvent i(inner);
  }
  const auto spans = log.trace();
  ASSERT_EQ(spans.size(), 2u);
  // inner closes first
  EXPECT_EQ(spans[0].event, inner);
  EXPECT_EQ(spans[0].depth, 1);
  EXPECT_EQ(spans[1].event, outer);
  EXPECT_EQ(spans[1].depth, 0);
  EXPECT_LE(spans[1].t0, spans[0].t0);
  EXPECT_EQ(log.dropped_spans(), 0u);
}

TEST(ProfConfigure, ReadsLogOptions) {
  const bool was_enabled = prof::enabled();
  const bool was_tracing = prof::tracing();
  {
    Options opts;
    opts.set_flag("log_view");
    opts.set("log_trace", "t.json");
    opts.set("log_json", "m.json");
    const prof::LogConfig cfg = prof::configure(opts);
    EXPECT_TRUE(cfg.view);
    EXPECT_EQ(cfg.trace_path, "t.json");
    EXPECT_EQ(cfg.json_path, "m.json");
    EXPECT_TRUE(cfg.any());
    EXPECT_TRUE(prof::enabled());
    EXPECT_TRUE(prof::tracing());
  }
  {
    Options opts;
    const prof::LogConfig cfg = prof::configure(opts);
    EXPECT_FALSE(cfg.any());
  }
  prof::set_enabled(was_enabled);
  prof::set_tracing(was_tracing);
}

TEST(ProfJson, ParsesDocumentsAndRejectsGarbage) {
  const prof::json::Value v = prof::json::parse(
      R"({"a": [1, 2.5, -3e2], "s": "x\"\n", "t": true, "n": null})");
  ASSERT_TRUE(v.is_object());
  const auto* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_DOUBLE_EQ(a->array[1].number, 2.5);
  EXPECT_DOUBLE_EQ(a->array[2].number, -300.0);
  EXPECT_EQ(v.find("s")->string, "x\"\n");
  EXPECT_TRUE(v.find("t")->boolean);
  EXPECT_TRUE(v.find("n")->is_null());
  EXPECT_EQ(v.find("missing"), nullptr);

  EXPECT_THROW(prof::json::parse("{"), Error);
  EXPECT_THROW(prof::json::parse("[1,]"), Error);
  EXPECT_THROW(prof::json::parse("{} trailing"), Error);
  EXPECT_EQ(prof::json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(ProfExport, ViewTableListsEventsWithRatioColumns) {
  prof::Profiler log;
  const int ev = prof::registered_event("prof_test_view_event");
  log.begin(ev);
  log.end(ev, 1000, 100);
  const prof::Reduced r = prof::reduce(log);
  ASSERT_EQ(r.nranks, 1);

  std::ostringstream os;
  prof::report(os, r);
  const std::string table = os.str();
  EXPECT_NE(table.find("prof_test_view_event"), std::string::npos);
  EXPECT_NE(table.find("Ratio"), std::string::npos);
  EXPECT_NE(table.find("Time min"), std::string::npos);
  EXPECT_NE(table.find("Time max"), std::string::npos);
  EXPECT_NE(table.find("Main Stage"), std::string::npos);
}

TEST(ProfExport, ChromeTraceIsValidJsonWithCompleteEvents) {
  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true, /*trace=*/true);
  const int ev = prof::registered_event("prof_test_trace_event");
  {
    prof::ScopedEvent scope(ev);
  }
  std::ostringstream os;
  prof::write_chrome_trace(os, prof::reduce(log));

  const prof::json::Value doc = prof::json::parse(os.str());
  const auto* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool saw_meta = false, saw_span = false;
  for (const auto& e : events->array) {
    const auto* ph = e.find("ph");
    ASSERT_NE(ph, nullptr);
    if (ph->string == "M") {
      saw_meta = true;
      EXPECT_EQ(e.find("name")->string, "thread_name");
    } else if (ph->string == "X") {
      saw_span = true;
      EXPECT_EQ(e.find("name")->string, "prof_test_trace_event");
      ASSERT_NE(e.find("ts"), nullptr);
      ASSERT_NE(e.find("dur"), nullptr);
      EXPECT_GE(e.find("dur")->number, 0.0);
      ASSERT_NE(e.find("tid"), nullptr);
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
}

TEST(ProfExport, MetricsJsonMatchesSchema) {
  prof::Profiler log;
  const int ev = prof::registered_event("prof_test_metrics_event");
  log.begin(ev);
  log.end(ev, 2000, 512);
  log.record_history("residual", 0.0, 1.0);
  log.record_history("residual", 1.0, 0.25);
  log.set_metric("model_bytes", 512.0);

  std::ostringstream os;
  prof::write_json_metrics(os, prof::reduce(log));
  const prof::json::Value doc = prof::json::parse(os.str());

  ASSERT_NE(doc.find("schema"), nullptr);
  // The writer must emit the shared constant (v2); v1 consumers keep
  // working because v2 only ADDS fields, checked below.
  EXPECT_EQ(doc.find("schema")->string, prof::kMetricsSchema);
  EXPECT_EQ(doc.find("schema")->string, "kestrel-scope-metrics-v2");
  EXPECT_EQ(doc.find("nranks")->number, 1.0);

  // v2 hwc capability block is always present (available=false on hosts
  // where sampling was off) so consumers can branch on it.
  const auto* hwc_block = doc.find("hwc");
  ASSERT_NE(hwc_block, nullptr);
  ASSERT_NE(hwc_block->find("available"), nullptr);
  ASSERT_NE(hwc_block->find("source"), nullptr);
  ASSERT_NE(hwc_block->find("paranoid"), nullptr);
  EXPECT_EQ(hwc_block->find("cache_line_bytes")->number, 64.0);
  const auto* events = doc.find("events");
  ASSERT_NE(events, nullptr);
  bool found = false;
  for (const auto& e : events->array) {
    if (e.find("event")->string != "prof_test_metrics_event") continue;
    found = true;
    EXPECT_EQ(e.find("stage")->string, "Main Stage");
    EXPECT_EQ(e.find("calls_max")->number, 1.0);
    EXPECT_EQ(e.find("flops_total")->number, 2000.0);
    EXPECT_EQ(e.find("bytes_total")->number, 512.0);
    ASSERT_NE(e.find("time_min"), nullptr);
    ASSERT_NE(e.find("time_max"), nullptr);
    ASSERT_NE(e.find("ratio"), nullptr);
  }
  EXPECT_TRUE(found);

  const auto* hist = doc.find("histories");
  ASSERT_NE(hist, nullptr);
  const auto* residual = hist->find("residual");
  ASSERT_NE(residual, nullptr);
  ASSERT_EQ(residual->array.size(), 2u);
  EXPECT_DOUBLE_EQ(residual->array[1].array[1].number, 0.25);

  const auto* metrics = doc.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_DOUBLE_EQ(metrics->find("model_bytes")->number, 512.0);
}

TEST(ProfKernels, ReportedBytesMatchTrafficModelWithin10Percent) {
  // Acceptance criterion: the bytes the instrumented kernels report must
  // agree with the section 6 traffic model (perf::spmv_model) within 10%
  // on the paper's Gray-Scott matrix.
  const Index n = 16;
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  const perf::SpmvWorkload wl = perf::SpmvWorkload::gray_scott(n);

  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true);
  Vector x(jac.cols(), 1.0), y(jac.rows());

  jac.spmv(x.data(), y.data());
  const int ev_csr = prof::registered_event("MatMult(csr)");
  ASSERT_EQ(log.calls(ev_csr), 1u);
  const double csr_model =
      static_cast<double>(wl.traffic_bytes(perf::ModelFormat::kCsrBaseline));
  EXPECT_NEAR(static_cast<double>(log.bytes(ev_csr)), csr_model,
              0.10 * csr_model);

  const mat::Sell sell(jac);
  sell.spmv(x.data(), y.data());
  const int ev_sell = prof::registered_event("MatMult(sell)");
  ASSERT_EQ(log.calls(ev_sell), 1u);
  const double sell_model =
      static_cast<double>(wl.traffic_bytes(perf::ModelFormat::kSell));
  EXPECT_NEAR(static_cast<double>(log.bytes(ev_sell)), sell_model,
              0.10 * sell_model);

  // flops are exact: 2 per stored nonzero
  EXPECT_EQ(log.flops(ev_csr), 2u * static_cast<std::uint64_t>(jac.nnz()));
}

TEST(ProfKernels, TalonReportedBytesMatchTrafficModelWithin10Percent) {
  // Same acceptance criterion for the Talon format: the bytes the kernel
  // reports (Talon::spmv_traffic_bytes) must agree with the analytic
  // traffic model within 10%. With the true block geometry plugged into
  // the workload the two formulas coincide exactly; the default estimate
  // (talon_blocks = talon_panels = 0) must still land inside the band.
  const Index n = 16;
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  const mat::Talon talon(jac);

  perf::SpmvWorkload wl = perf::SpmvWorkload::gray_scott(n);
  wl.talon_blocks = talon.num_blocks();
  wl.talon_panels = talon.num_panels();
  const double model =
      static_cast<double>(wl.traffic_bytes(perf::ModelFormat::kTalon));

  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true);
  Vector x(jac.cols(), 1.0), y(jac.rows());
  talon.spmv(x, y);

  const int ev = prof::registered_event("MatMult(talon)");
  ASSERT_EQ(log.calls(ev), 1u);
  EXPECT_EQ(log.bytes(ev), talon.spmv_traffic_bytes());
  EXPECT_NEAR(static_cast<double>(log.bytes(ev)), model, 0.10 * model);
  EXPECT_EQ(log.flops(ev), 2u * static_cast<std::uint64_t>(jac.nnz()));

  const perf::SpmvWorkload est = perf::SpmvWorkload::gray_scott(n);
  const double est_model =
      static_cast<double>(est.traffic_bytes(perf::ModelFormat::kTalon));
  EXPECT_NEAR(est_model, model, 0.10 * model);
}

TEST(ProfKernels, MeasuredBytesMatchTrafficModelOnBandwidthBoundSize) {
  // Kestrel Pulse acceptance: on a perf-capable host, the MEASURED DRAM
  // bytes per SpMV on a bandwidth-bound (larger-than-LLC) Gray-Scott
  // matrix must land within the bench_hwc tolerance gate of
  // spmv_traffic_bytes(). Skips cleanly where perf events are unavailable
  // (VMs, containers, perf_event_paranoid).
  const prof::hwc::Capability& cap = prof::hwc::capability();
  if (!cap.counters) {
    GTEST_SKIP() << "perf events unavailable: " << cap.detail;
  }

  // ~128k rows x 10 nnz: ~16 MB of matrix data, streamed past any
  // reasonable LLC share, so DRAM traffic is the dominant term.
  const Index n = 256;
  app::GrayScott gs(n);
  Vector u;
  gs.initial_condition(u);
  const mat::Csr jac = gs.rhs_jacobian(u);
  const double model = static_cast<double>(jac.spmv_traffic_bytes());

  const bool was_enabled = prof::hwc::enabled();
  ASSERT_TRUE(prof::hwc::enable_if_capable());
  Vector x(jac.cols(), 1.0), y(jac.rows());
  jac.spmv(x.data(), y.data());  // warm up

  const int reps = 10;
  const prof::hwc::Reading r0 = prof::hwc::read_thread();
  for (int r = 0; r < reps; ++r) jac.spmv(x.data(), y.data());
  const prof::hwc::Reading r1 = prof::hwc::read_thread();
  prof::hwc::set_enabled(was_enabled);

  const prof::hwc::Reading d = prof::hwc::delta(r0, r1);
  ASSERT_TRUE(d.valid);
  EXPECT_GT(d.cycles, 0u);
  EXPECT_GT(d.instructions, 0u);
  const double measured = static_cast<double>(d.dram_bytes) / reps;
  // Same wide gate as bench_hwc: the LLC-miss fallback undercounts under
  // prefetch and write-allocate overcounts; 10-100x off means broken
  // wiring, which is what this guards.
  EXPECT_GT(measured / model, 0.25) << "measured " << measured << " vs model "
                                    << model;
  EXPECT_LT(measured / model, 4.0) << "measured " << measured << " vs model "
                                   << model;
}

TEST(ProfFlock, AccountedTotalsAreThreadCountInvariant) {
  // Kestrel Flock regression: Scope once kept a single running-span stack,
  // so concurrent begin/end from pool workers could cross-pair or
  // double-count. The per-thread stacks must make every accounted total —
  // calls, flops, bytes — identical whether a kernel ran serial or on the
  // pool.
  const mat::Csr jac = [&] {
    app::GrayScott gs(24);
    Vector u;
    gs.initial_condition(u);
    return gs.rhs_jacobian(u);
  }();
  const std::string saved = Options::global().get_string("threads", "");
  const int ev_csr = prof::registered_event("MatMult(csr)");
  const int ev_sell = prof::registered_event("MatMult(sell)");

  auto totals = [&](int threads) {
    Options::global().set("threads", std::to_string(threads));
    mat::Csr csr(jac);
    mat::Sell sell(jac);
    csr.repartition(threads);
    sell.repartition(threads);
    prof::Profiler log;
    prof::AttachGuard attach(&log);
    prof::EnableGuard enable(true);
    Vector x(jac.cols(), 1.0), y(jac.rows());
    for (int r = 0; r < 3; ++r) {
      csr.spmv(x.data(), y.data());
      sell.spmv(x.data(), y.data());
    }
    return std::array<std::uint64_t, 6>{
        log.calls(ev_csr),  log.flops(ev_csr),  log.bytes(ev_csr),
        log.calls(ev_sell), log.flops(ev_sell), log.bytes(ev_sell)};
  };

  const auto serial = totals(1);
  for (int t : {2, 4}) {
    const auto threaded = totals(t);
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(threaded[i], serial[i])
          << "total " << i << " drifted at threads=" << t;
    }
  }
  Options::global().set("threads", saved.empty() ? "1" : saved);
}

TEST(ProfFlock, PoolWorkerSpansLandInCallerProfiler) {
  // Spans opened inside pool parts must record into the caller's attached
  // profiler (the pool re-attaches it per job) without cross-thread
  // pairing errors.
  prof::Profiler log;
  prof::AttachGuard attach(&log);
  prof::EnableGuard enable(true);
  const int ev = prof::registered_event("prof_flock_part_span");
  par::ThreadPool pool(4);
  constexpr int kParts = 16;
  pool.run(kParts, [&](int, int) {
    prof::ScopedEvent span(ev, 10, 100);
  });
  EXPECT_EQ(log.calls(ev), static_cast<std::uint64_t>(kParts));
  EXPECT_EQ(log.flops(ev), static_cast<std::uint64_t>(10 * kParts));
  EXPECT_EQ(log.bytes(ev), static_cast<std::uint64_t>(100 * kParts));
}

}  // namespace
}  // namespace kestrel
