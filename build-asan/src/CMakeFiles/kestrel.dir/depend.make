# Empty dependencies file for kestrel.
# This may be replaced when dependencies are built.
