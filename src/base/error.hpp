#pragma once
// Error handling: Kestrel reports precondition violations and runtime
// failures with exceptions carrying file/line context.  KESTREL_CHECK is
// always on; KESTREL_ASSERT compiles out in release builds and is meant for
// hot paths.

#include <stdexcept>
#include <string>

namespace kestrel {

/// Exception thrown by all Kestrel precondition and runtime checks.
class Error : public std::runtime_error {
 public:
  Error(const std::string& what, const char* file, int line);
  const char* file() const noexcept { return file_; }
  int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

namespace detail {
[[noreturn]] void throw_error(const std::string& msg, const char* file,
                              int line);
std::string format_check_failure(const char* expr, const std::string& msg);
}  // namespace detail

}  // namespace kestrel

/// Always-on check; throws kestrel::Error with context on failure.
#define KESTREL_CHECK(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::kestrel::detail::throw_error(                                     \
          ::kestrel::detail::format_check_failure(#expr, (msg)),          \
          __FILE__, __LINE__);                                            \
    }                                                                     \
  } while (0)

/// Unconditional failure.
#define KESTREL_FAIL(msg) \
  ::kestrel::detail::throw_error((msg), __FILE__, __LINE__)

/// Debug-only check for hot paths.
#ifndef NDEBUG
#define KESTREL_ASSERT(expr, msg) KESTREL_CHECK(expr, msg)
#else
#define KESTREL_ASSERT(expr, msg) \
  do {                            \
  } while (0)
#endif
