#pragma once
// Kernel registry and runtime dispatch.
//
// Each (operation, ISA tier) pair maps to a function pointer registered by
// the kernel translation units at static-initialization time. Lookup
// returns the requested tier if present and supported, otherwise falls back
// to the next lower tier (so e.g. asking for AVX-512 on an AVX2-only CPU
// degrades gracefully, and CSRPerm — which has no AVX/AVX2 variants —
// resolves to scalar below AVX-512).

#include <cstdint>

#include "mat/kernels/views.hpp"
#include "simd/isa.hpp"

namespace kestrel::simd {

/// y = A*x  (CSR). Alg. 1 of the paper for vector tiers.
using CsrSpmvFn = void (*)(const mat::CsrView&, const Scalar* x, Scalar* y);
/// y[rows[i]] += (A*x)[i] over the compressed rows of an off-diagonal
/// block (paper section 2.2: only nonzero rows are stored).
using CsrSpmvAddRowsFn = void (*)(const mat::CsrView&, const Index* rows,
                                  const Scalar* x, Scalar* y);
/// y = A*x  (SELL). Alg. 2 of the paper for vector tiers.
using SellSpmvFn = void (*)(const mat::SellView&, const Scalar* x, Scalar* y);
/// y += A*x (SELL), used when SELL stores the off-diagonal block.
using SellSpmvAddFn = void (*)(const mat::SellView&, const Scalar* x,
                               Scalar* y);
using CsrPermSpmvFn = void (*)(const mat::CsrPermView&, const Scalar* x,
                               Scalar* y);
using BcsrSpmvFn = void (*)(const mat::BcsrView&, const Scalar* x, Scalar* y);
/// y = A*x (Talon beta(r,c) blocks, SPC5-style mask-driven expand loads);
/// the Add variant computes y += A*x for the off-diagonal block path.
using TalonSpmvFn = void (*)(const mat::TalonView&, const Scalar* x,
                             Scalar* y);
/// out[i] = x[idx[i]] for i in [0, n): gather-pack of ghost values into a
/// contiguous send buffer (Kestrel Slipstream). The AVX2/AVX-512 tiers use
/// hardware gathers (vgatherdpd); indices must be valid for x.
using GatherPackFn = void (*)(const Scalar* x, const Index* idx, Index n,
                              Scalar* out);
/// Kestrel Slim SpMV: the view carries both the fat and the compressed
/// streams; the kernel branches on the idx16/fp32 mode flags. Accumulation
/// is always double.
using CsrSlimSpmvFn = void (*)(const mat::CsrSlimView&, const Scalar* x,
                               Scalar* y);
using SellSlimSpmvFn = void (*)(const mat::SellSlimView&, const Scalar* x,
                                Scalar* y);
using BcsrSlimSpmvFn = void (*)(const mat::BcsrSlimView&, const Scalar* x,
                                Scalar* y);
using TalonSlimSpmvFn = void (*)(const mat::TalonSlimView&, const Scalar* x,
                                 Scalar* y);

enum class Op : int {
  kCsrSpmv = 0,
  kCsrSpmvAddRows,
  kSellSpmv,
  kSellSpmvAdd,
  kSellSpmvBitmask,   ///< ESB-style masked variant (ablation)
  kSellSpmvPrefetch,  ///< unrolled + software-prefetch variant (ablation,
                      ///< paper section 5.5)
  kCsrPermSpmv,
  kBcsrSpmv,
  kTalonSpmv,
  kTalonSpmvAdd,
  kGatherPack,
  kCsrSlimSpmv,   ///< Kestrel Slim: compressed-stream SpMV variants
  kSellSlimSpmv,
  kBcsrSlimSpmv,
  kTalonSlimSpmv,
  kOpCount,
};

/// Registers `fn` for (op, tier); called from kernel TUs via Registrar.
void register_kernel(Op op, IsaTier tier, void* fn);

/// Highest registered+supported tier <= `want`; throws if none exists.
IsaTier resolve_tier(Op op, IsaTier want);

/// Raw pointer for (op, tier) with fallback as described above.
void* lookup(Op op, IsaTier want);

template <class Fn>
Fn lookup_as(Op op, IsaTier want) {
  return reinterpret_cast<Fn>(lookup(op, want));
}

/// True if an exact (no-fallback) kernel is registered for (op, tier).
bool has_exact(Op op, IsaTier tier);

/// Static-initialization helper used by kernel TUs.
struct Registrar {
  Registrar(Op op, IsaTier tier, void* fn) { register_kernel(op, tier, fn); }
};

}  // namespace kestrel::simd

/// Registers a kernel function for an (op, tier) cell from inside a kernel
/// TU's register_<format>_<isa>() entry point. Kernel TUs must use this
/// macro (not register_kernel directly): tools/kestrel_lint.py keys on it
/// to cross-check each TU's declared tier against the -m flags the build
/// gives that TU in src/CMakeLists.txt.
#define KESTREL_REGISTER_KERNEL(op, tier, fn)                    \
  ::kestrel::simd::register_kernel(                              \
      ::kestrel::simd::Op::op, ::kestrel::simd::IsaTier::tier,   \
      reinterpret_cast<void*>(&(fn)))
