// Scalar Kestrel Slim SELL SpMV reference. Walks the slice-major storage in
// the same order as the vector tier — padded entries carry an in-slice
// column offset and a zero value, so multiplying them is harmless in every
// mode — and resolves compressed columns as base[s] + off16[k]. fp32 values
// widen to double before the multiply; accumulation is always double.

#include "mat/kernels/registration.hpp"
#include "mat/kernels/views.hpp"
#include "simd/dispatch.hpp"

// argus-contract: format=sell_slim isa=scalar

namespace kestrel::mat::kernels {

namespace {

// argus-kernel: sell_slim_spmv_scalar
// argus-param: a : view SellSlimView
// argus-param: x : in extent n
// argus-param: y : out extent m
// argus-traffic: sell_slim
void sell_slim_spmv_scalar(const SellSlimView& a, const Scalar* x, Scalar* y) {
  const Index c = a.c;
  for (Index s = 0; s < a.nslices; ++s) {
    const Index row0 = s * c;
    const Index nrows = (row0 + c <= a.m) ? c : (a.m - row0);
    Scalar acc[64] = {};  // c <= 64 enforced at Sell construction
    if (a.idx16 != 0) {
      const Index b = a.base[s];
      if (a.fp32 != 0) {
        for (Index k = a.sliceptr[s]; k < a.sliceptr[s + 1]; k += c) {
          for (Index lane = 0; lane < c; ++lane) {
            const Scalar v = a.val32[k + lane];
            acc[lane] += v * x[b + a.off16[k + lane]];
          }
        }
      } else {
        for (Index k = a.sliceptr[s]; k < a.sliceptr[s + 1]; k += c) {
          for (Index lane = 0; lane < c; ++lane) {
            acc[lane] += a.val[k + lane] * x[b + a.off16[k + lane]];
          }
        }
      }
    } else {
      // fp32-only mode: fat column indices, float values.
      for (Index k = a.sliceptr[s]; k < a.sliceptr[s + 1]; k += c) {
        for (Index lane = 0; lane < c; ++lane) {
          const Scalar v = a.val32[k + lane];
          acc[lane] += v * x[a.colidx[k + lane]];
        }
      }
    }
    for (Index lane = 0; lane < nrows; ++lane) {
      y[row0 + lane] = acc[lane];
    }
  }
}

}  // namespace

void register_sell_slim_scalar() {
  KESTREL_REGISTER_KERNEL(kSellSlimSpmv, kScalar, sell_slim_spmv_scalar);
}

}  // namespace kestrel::mat::kernels
