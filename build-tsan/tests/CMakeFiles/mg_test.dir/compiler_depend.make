# Empty compiler generated dependencies file for mg_test.
# This may be replaced when dependencies are built.
