#include "base/error.hpp"

namespace kestrel {

Error::Error(const std::string& what, const char* file, int line)
    : std::runtime_error(what + " [" + file + ":" + std::to_string(line) +
                         "]"),
      file_(file),
      line_(line) {}

RankFailure::RankFailure(int failed_rank, const std::string& what,
                         const char* file, int line)
    : Error("rank failure (rank " + std::to_string(failed_rank) + "): " +
                what,
            file, line),
      failed_rank_(failed_rank) {}

AbftError::AbftError(const std::string& format, Scalar drift,
                     const std::string& what, const char* file, int line)
    : Error("abft verification failed (" + format +
                ", drift=" + std::to_string(drift) + "): " + what,
            file, line),
      format_(format),
      drift_(drift) {}

IndexOverflowError::IndexOverflowError(GIndex count, const std::string& what,
                                       const char* file, int line)
    : Error("index overflow (" + std::to_string(count) + " entries > " +
                std::to_string(ceiling()) + "): " + what,
            file, line),
      count_(count) {}

OptionsError::OptionsError(const std::string& key, const std::string& value,
                           const std::string& expected, const char* file,
                           int line)
    : Error("option -" + key + " expects " + expected + ", got '" + value +
                "'",
            file, line),
      key_(key),
      value_(value),
      expected_(expected) {}

BudgetError::BudgetError(std::uint64_t requested_bytes,
                         std::uint64_t in_use_bytes, std::uint64_t limit_bytes,
                         const std::string& what, const char* file, int line)
    : Error("memory budget exceeded (" + std::to_string(requested_bytes) +
                " B requested, " + std::to_string(in_use_bytes) +
                " B in use, limit " + std::to_string(limit_bytes) + " B): " +
                what,
            file, line),
      requested_(requested_bytes),
      in_use_(in_use_bytes),
      limit_(limit_bytes) {}

RejectedError::RejectedError(int queue_depth, double retry_after_hint_s,
                             const std::string& what, const char* file,
                             int line)
    : Error("request rejected (queue depth " + std::to_string(queue_depth) +
                ", retry after ~" + std::to_string(retry_after_hint_s) +
                " s): " + what,
            file, line),
      queue_depth_(queue_depth),
      retry_after_(retry_after_hint_s) {}

namespace detail {

void throw_error(const std::string& msg, const char* file, int line) {
  throw Error(msg, file, line);
}

std::string format_check_failure(const char* expr, const std::string& msg) {
  std::string out = "check failed: ";
  out += expr;
  if (!msg.empty()) {
    out += " — ";
    out += msg;
  }
  return out;
}

}  // namespace detail
}  // namespace kestrel
