#include "base/options.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "base/error.hpp"

namespace kestrel {

namespace {

bool looks_like_number(const std::string& s) {
  if (s.empty()) return false;
  char* end = nullptr;
  std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool is_key_token(const std::string& s) {
  return s.size() >= 2 && s[0] == '-' && !looks_like_number(s);
}

}  // namespace

void Options::parse(int argc, const char* const* argv) {
  std::string pending;
  for (int i = 0; i < argc; ++i) {
    const std::string tok = argv[i];
    if (is_key_token(tok)) {
      if (!pending.empty()) set_flag(pending);
      pending = tok.substr(1);
    } else if (!pending.empty()) {
      set(pending, tok);
      pending.clear();
    }
    // a bare value with no preceding key (e.g. argv[0]) is ignored
  }
  if (!pending.empty()) set_flag(pending);
}

void Options::set(const std::string& key, const std::string& value) {
  KESTREL_CHECK(!key.empty(), "empty option key");
  kv_[key] = value;
}

bool Options::has(const std::string& key) const {
  return kv_.find(key) != kv_.end();
}

std::optional<std::string> Options::raw(const std::string& key) const {
  auto it = kv_.find(key);
  if (it == kv_.end()) return std::nullopt;
  return it->second;
}

std::string Options::get_string(const std::string& key,
                                const std::string& fallback) const {
  auto v = raw(key);
  return v ? *v : fallback;
}

Index Options::get_index(const std::string& key, Index fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v->c_str(), &end, 10);
  if (v->empty() || end != v->c_str() + v->size()) {
    throw OptionsError(key, *v, "an integer", __FILE__, __LINE__);
  }
  return static_cast<Index>(parsed);
}

Scalar Options::get_scalar(const std::string& key, Scalar fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (v->empty() || end != v->c_str() + v->size()) {
    throw OptionsError(key, *v, "a number", __FILE__, __LINE__);
  }
  return parsed;
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  auto v = raw(key);
  if (!v) return fallback;
  if (v->empty() || *v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  throw OptionsError(key, *v, "a boolean", __FILE__, __LINE__);
}

std::vector<std::string> Options::unknown_keys(
    const std::string& prefix, const std::vector<std::string>& known) const {
  std::vector<std::string> out;
  for (const auto& [k, _] : kv_) {
    if (k.compare(0, prefix.size(), prefix) != 0) continue;
    if (std::find(known.begin(), known.end(), k) == known.end()) {
      out.push_back(k);
    }
  }
  return out;
}

std::vector<std::string> Options::unknown_option_warnings() const {
  // The prefixes components own, with every spelling they read. A typo like
  // -ksp_rtoll silently falls back to the default; surfacing it as a warning
  // is the difference between a misconfigured run and a debugging session.
  static const struct {
    const char* prefix;
    std::vector<std::string> known;
  } families[] = {
      {"aegis_",
       {"aegis_faults", "aegis_abft", "aegis_abft_tol",
        "aegis_checkpoint_every", "aegis_max_rollbacks"}},
      {"ksp_",
       {"ksp_type", "ksp_rtol", "ksp_atol", "ksp_max_it",
        "ksp_gmres_restart", "ksp_monitor", "ksp_breakdown_recovery",
        "ksp_max_restarts"}},
      {"mat_", {"mat_type", "mat_index", "mat_scalar"}},
  };
  std::vector<std::string> out;
  for (const auto& fam : families) {
    for (const std::string& k : unknown_keys(fam.prefix, fam.known)) {
      out.push_back("WARNING: unknown option -" + k +
                    " (unrecognized " + fam.prefix + "* option; a typo?)");
    }
  }
  return out;
}

std::vector<std::string> Options::keys() const {
  std::vector<std::string> out;
  out.reserve(kv_.size());
  for (const auto& [k, _] : kv_) out.push_back(k);
  return out;
}

Options& Options::global() {
  static Options instance;
  return instance;
}

}  // namespace kestrel
