#include "par/parmat.hpp"

#include <algorithm>
#include <cmath>

#include "aegis/abft.hpp"
#include "aegis/fault.hpp"
#include "base/error.hpp"
#include "par/pool.hpp"
#include "prof/profiler.hpp"
#include "simd/dispatch.hpp"

namespace kestrel::par {

namespace {
constexpr int kTagGhost = 1;  ///< x-entry exchange during SpMV (mailbox path)
constexpr int kTagPlan = 2;   ///< setup-time plan exchange (typed indices)

// Kestrel Flock: elementwise pool splitting for the gather-pack and ABFT
// reduction passes. Chunks are a fixed multiple of kZmmDoubles derived only
// from (n, nthreads), so part boundaries — and therefore each part's
// partial result — are deterministic for a given thread count no matter
// which worker runs which part. Short arrays stay serial: the barrier
// costs more than the scan.
constexpr Index kPoolElemCutoff = 4096;

Index pool_chunk(Index n, int nthreads) {
  const Index per = (n + nthreads - 1) / nthreads;
  return (per + kZmmDoubles - 1) / kZmmDoubles * kZmmDoubles;
}

void pooled_gather_pack(simd::GatherPackFn fn, const Scalar* x,
                        const Index* idx, Index n, Scalar* out) {
  ThreadPool& pool = ThreadPool::rank_pool();
  if (pool.nthreads() == 1 || n < kPoolElemCutoff) {
    fn(x, idx, n, out);
    return;
  }
  const Index chunk = pool_chunk(n, pool.nthreads());
  const int nparts = static_cast<int>((n + chunk - 1) / chunk);
  pool.run(nparts, [&](int p, int) {
    const Index i0 = static_cast<Index>(p) * chunk;
    const Index i1 = std::min(n, i0 + chunk);
    if (i0 < i1) fn(x, idx + i0, i1 - i0, out + i0);
  });
}

// chunk >= ceil(n / nthreads) makes nparts <= nthreads <= kMaxPoolThreads,
// so the per-part partials fit in stack scratch; the final sums run in
// part-index order on the caller.
void pooled_dot_abs(const Scalar* c, const Scalar* x, Index n, Scalar* s,
                    Scalar* abs_s) {
  ThreadPool& pool = ThreadPool::rank_pool();
  if (pool.nthreads() == 1 || n < kPoolElemCutoff) {
    aegis::dot_abs(c, x, n, s, abs_s);
    return;
  }
  const Index chunk = pool_chunk(n, pool.nthreads());
  const int nparts = static_cast<int>((n + chunk - 1) / chunk);
  Scalar ps[kMaxPoolThreads] = {};
  Scalar pa[kMaxPoolThreads] = {};
  pool.run(nparts, [&](int p, int) {
    const Index i0 = static_cast<Index>(p) * chunk;
    const Index i1 = std::min(n, i0 + chunk);
    if (i0 < i1) aegis::dot_abs(c + i0, x + i0, i1 - i0, &ps[p], &pa[p]);
  });
  Scalar sum = 0.0, abs_sum = 0.0;
  for (int p = 0; p < nparts; ++p) {
    sum += ps[p];
    abs_sum += pa[p];
  }
  *s = sum;
  *abs_s = abs_sum;
}

void pooled_sum_abs(const Scalar* y, Index n, Scalar* s, Scalar* abs_s) {
  ThreadPool& pool = ThreadPool::rank_pool();
  if (pool.nthreads() == 1 || n < kPoolElemCutoff) {
    aegis::sum_abs(y, n, s, abs_s);
    return;
  }
  const Index chunk = pool_chunk(n, pool.nthreads());
  const int nparts = static_cast<int>((n + chunk - 1) / chunk);
  Scalar ps[kMaxPoolThreads] = {};
  Scalar pa[kMaxPoolThreads] = {};
  pool.run(nparts, [&](int p, int) {
    const Index i0 = static_cast<Index>(p) * chunk;
    const Index i1 = std::min(n, i0 + chunk);
    if (i0 < i1) aegis::sum_abs(y + i0, i1 - i0, &ps[p], &pa[p]);
  });
  Scalar sum = 0.0, abs_sum = 0.0;
  for (int p = 0; p < nparts; ++p) {
    sum += ps[p];
    abs_sum += pa[p];
  }
  *s = sum;
  *abs_s = abs_sum;
}
}

DiagFormat parse_diag_format(const std::string& name) {
  if (name == "csr" || name == "aij") return DiagFormat::kCsr;
  if (name == "csrperm" || name == "aijperm") return DiagFormat::kCsrPerm;
  if (name == "sell") return DiagFormat::kSell;
  if (name == "bcsr" || name == "baij") return DiagFormat::kBcsr;
  if (name == "talon" || name == "spc5") return DiagFormat::kTalon;
  KESTREL_FAIL("unknown matrix format '" + name +
               "' (expected csr|csrperm|sell|bcsr|talon)");
}

const char* diag_format_name(DiagFormat fmt) {
  switch (fmt) {
    case DiagFormat::kCsr:
      return "csr";
    case DiagFormat::kCsrPerm:
      return "csrperm";
    case DiagFormat::kSell:
      return "sell";
    case DiagFormat::kBcsr:
      return "bcsr";
    case DiagFormat::kTalon:
      return "talon";
  }
  return "?";
}

ParMatrix::ParMatrix(const mat::Csr& local_rows, LayoutPtr layout,
                     Comm& comm, ParMatrixOptions opts)
    : layout_(std::move(layout)), rank_(comm.rank()) {
  KESTREL_CHECK(layout_->nranks() == comm.size(),
                "layout rank count != communicator size");
  const Index b = layout_->begin(rank_);
  const Index e = layout_->end(rank_);
  const Index m = e - b;
  KESTREL_CHECK(local_rows.rows() == m, "local row block size mismatch");
  KESTREL_CHECK(local_rows.cols() == layout_->global_size(),
                "local rows must use global column indices");

  // ---- Split rows into diagonal and off-diagonal parts ----------------
  std::vector<Index> diag_rowptr{0}, diag_colidx;
  std::vector<Scalar> diag_val;
  std::vector<Index> off_rowptr{0}, off_gcolidx;
  std::vector<Scalar> off_val;
  offdiag_rows_.clear();
  for (Index i = 0; i < m; ++i) {
    const auto cols = local_rows.row_cols(i);
    const auto vals = local_rows.row_vals(i);
    bool row_has_off = false;
    for (std::size_t k = 0; k < cols.size(); ++k) {
      const Index g = cols[k];
      if (g >= b && g < e) {
        diag_colidx.push_back(g - b);
        diag_val.push_back(vals[k]);
      } else {
        if (!row_has_off) {
          row_has_off = true;
          offdiag_rows_.push_back(i);
        }
        off_gcolidx.push_back(g);
        off_val.push_back(vals[k]);
      }
    }
    diag_rowptr.push_back(static_cast<Index>(diag_colidx.size()));
    if (row_has_off) {
      off_rowptr.push_back(static_cast<Index>(off_gcolidx.size()));
    }
  }

  mat::Csr diag_csr(m, m, std::move(diag_rowptr), std::move(diag_colidx),
                    std::move(diag_val));

  // ---- Ghost column map (packed, sorted by global index) --------------
  std::vector<Index> ghosts = off_gcolidx;
  std::sort(ghosts.begin(), ghosts.end());
  ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());
  nghost_ = static_cast<Index>(ghosts.size());
  std::vector<Index> off_colidx(off_gcolidx.size());
  for (std::size_t k = 0; k < off_gcolidx.size(); ++k) {
    const auto it =
        std::lower_bound(ghosts.begin(), ghosts.end(), off_gcolidx[k]);
    off_colidx[k] = static_cast<Index>(it - ghosts.begin());
  }
  offdiag_ =
      mat::Csr(static_cast<Index>(offdiag_rows_.size()), nghost_,
               std::move(off_rowptr), std::move(off_colidx),
               std::move(off_val));
  offdiag_.set_tier(opts.tier);
  ghost_.resize(nghost_);

  if (opts.offdiag_format != OffdiagFormat::kCompressedCsr) {
    // expand the compressed block to full local rows (empty rows are free
    // in SELL — zero-width slices — and in Talon — blockless r=1 panels)
    std::vector<Index> full_rowptr(static_cast<std::size_t>(m) + 1, 0);
    for (std::size_t r = 0; r < offdiag_rows_.size(); ++r) {
      full_rowptr[static_cast<std::size_t>(offdiag_rows_[r]) + 1] =
          offdiag_.row_nnz(static_cast<Index>(r));
    }
    for (Index i = 0; i < m; ++i) {
      full_rowptr[static_cast<std::size_t>(i) + 1] +=
          full_rowptr[static_cast<std::size_t>(i)];
    }
    std::vector<Index> full_colidx(
        static_cast<std::size_t>(offdiag_.nnz()));
    std::vector<Scalar> full_val(static_cast<std::size_t>(offdiag_.nnz()));
    for (std::size_t r = 0; r < offdiag_rows_.size(); ++r) {
      const auto cols = offdiag_.row_cols(static_cast<Index>(r));
      const auto vals = offdiag_.row_vals(static_cast<Index>(r));
      Index dst = full_rowptr[static_cast<std::size_t>(offdiag_rows_[r])];
      for (std::size_t k2 = 0; k2 < cols.size(); ++k2, ++dst) {
        full_colidx[static_cast<std::size_t>(dst)] = cols[k2];
        full_val[static_cast<std::size_t>(dst)] = vals[k2];
      }
    }
    mat::Csr full(m, nghost_, std::move(full_rowptr),
                  std::move(full_colidx), std::move(full_val));
    if (opts.offdiag_format == OffdiagFormat::kSell) {
      offdiag_sell_ = std::make_shared<mat::Sell>(full, opts.sell);
      offdiag_sell_->set_tier(opts.tier);
    } else {
      offdiag_talon_ = std::make_shared<mat::Talon>(full, opts.talon);
      offdiag_talon_->set_tier(opts.tier);
    }
  }

  // ---- Compute format for the diagonal block --------------------------
  switch (opts.diag_format) {
    case DiagFormat::kCsr:
      diag_ = std::make_shared<mat::Csr>(std::move(diag_csr));
      break;
    case DiagFormat::kCsrPerm:
      diag_ = std::make_shared<mat::CsrPerm>(std::move(diag_csr));
      break;
    case DiagFormat::kSell:
      diag_ = std::make_shared<mat::Sell>(diag_csr, opts.sell);
      break;
    case DiagFormat::kBcsr:
      diag_ = std::make_shared<mat::Bcsr>(diag_csr, opts.block_size);
      break;
    case DiagFormat::kTalon:
      diag_ = std::make_shared<mat::Talon>(diag_csr, opts.talon);
      break;
  }
  diag_->set_tier(opts.tier);

  // Kestrel Flock: construction planned every block's partition from
  // par::configured_threads(); an explicit thread count re-plans them all.
  if (opts.threads > 0) {
    diag_->repartition(opts.threads);
    offdiag_.repartition(opts.threads);
    if (offdiag_sell_) offdiag_sell_->repartition(opts.threads);
    if (offdiag_talon_) offdiag_talon_->repartition(opts.threads);
  }

  // ---- Exchange communication plans (collective) ----------------------
  // needed[r] = sorted global indices owned by rank r that I gather from.
  std::vector<std::vector<Index>> needed(
      static_cast<std::size_t>(comm.size()));
  {
    std::size_t g = 0;
    for (int r = 0; r < comm.size(); ++r) {
      auto& list = needed[static_cast<std::size_t>(r)];
      while (g < ghosts.size() && ghosts[g] < layout_->end(r)) {
        KESTREL_CHECK(r != rank_, "ghost column owned by this rank");
        list.push_back(ghosts[g]);
        ++g;
      }
    }
    KESTREL_CHECK(g == ghosts.size(), "unassigned ghost columns");
  }

  recvs_.clear();
  Index offset = 0;
  for (int r = 0; r < comm.size(); ++r) {
    const auto& list = needed[static_cast<std::size_t>(r)];
    if (!list.empty()) {
      recvs_.push_back(
          {r, offset, static_cast<Index>(list.size())});
      offset += static_cast<Index>(list.size());
    }
  }

  // Every rank tells every other rank which entries it needs (possibly an
  // empty list), so receives are fully deterministic. The lists travel on
  // the typed Index path: global indices never round-trip through Scalar
  // (which would silently lose precision at 2^53 and double the bytes).
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank_) continue;
    comm.isend_indices(r, kTagPlan, needed[static_cast<std::size_t>(r)]);
  }
  sends_.clear();
  for (int r = 0; r < comm.size(); ++r) {
    if (r == rank_) continue;
    const std::vector<Index> wanted = comm.recv_indices(r, kTagPlan);
    if (wanted.empty()) continue;
    SendPlan plan;
    plan.peer = r;
    plan.local_indices.reserve(wanted.size());
    for (Index g : wanted) {
      KESTREL_CHECK(g >= b && g < e, "peer requested a non-owned entry");
      plan.local_indices.push_back(g - b);
    }
    sends_.push_back(std::move(plan));
  }

  // ---- Ghost exchange fast-path setup ---------------------------------
  persistent_ghosts_ = opts.persistent_ghosts;
  gather_fn_ =
      simd::lookup_as<simd::GatherPackFn>(simd::Op::kGatherPack, opts.tier);
  // One contiguous pack buffer, sized once: plan i owns the slice at
  // send_offsets_[i], so neither transport reallocates mid-iteration.
  send_offsets_.clear();
  std::size_t pack_total = 0;
  for (const SendPlan& plan : sends_) {
    send_offsets_.push_back(pack_total);
    pack_total += plan.local_indices.size();
  }
  packbuf_.assign(pack_total, Scalar{0});
  // The persistent channels themselves open lazily at the first spmv (see
  // ensure_exchange): registration needs this object's final ghost_
  // address, and the constructor's matrix may still be moved/copied.

  // ---- Kestrel Aegis ABFT setup ---------------------------------------
  // Column checksums at assembly, per block: the distributed invariant is
  // c_diag·x_local + c_off·ghost == Σ y_local on every rank (no extra
  // communication — each rank verifies its own row block independently).
  abft_ = opts.abft;
  abft_tol_ = opts.abft_tol;
  if (abft_) {
    diag_->abft_col_checksum(abft_cdiag_);
    // The compressed CSR's column space is already the packed ghost space,
    // and the SELL/Talon off-diagonal alternatives store exactly the same
    // entries, so one checksum covers all three representations.
    offdiag_.abft_col_checksum(abft_coff_);
  }
}

void ParMatrix::ensure_exchange(Comm& comm) const {
  if (exchange_ != nullptr && exchange_ghost_base_ == ghost_.data()) return;
  std::vector<GhostSendSpec> send_specs;
  send_specs.reserve(sends_.size());
  for (const SendPlan& plan : sends_) {
    send_specs.push_back(
        {plan.peer, static_cast<Index>(plan.local_indices.size())});
  }
  std::vector<GhostRecvSpec> recv_specs;
  recv_specs.reserve(recvs_.size());
  for (const RecvPlan& plan : recvs_) {
    recv_specs.push_back(
        {plan.peer, ghost_.data() + plan.ghost_offset, plan.count});
  }
  exchange_ = comm.open_exchange(send_specs, recv_specs);
  exchange_ghost_base_ = ghost_.data();
}

ParMatrix ParMatrix::from_global(const mat::Csr& global, LayoutPtr layout,
                                 Comm& comm, ParMatrixOptions opts) {
  KESTREL_CHECK(global.rows() == global.cols(),
                "from_global requires a square matrix");
  KESTREL_CHECK(global.rows() == layout->global_size(),
                "layout size mismatch");
  const Index b = layout->begin(comm.rank());
  const Index e = layout->end(comm.rank());
  std::vector<Index> rows(static_cast<std::size_t>(e - b));
  for (Index i = b; i < e; ++i) rows[static_cast<std::size_t>(i - b)] = i;
  std::vector<Index> cols(static_cast<std::size_t>(global.cols()));
  for (Index j = 0; j < global.cols(); ++j) {
    cols[static_cast<std::size_t>(j)] = j;
  }
  return ParMatrix(global.extract(rows, cols), std::move(layout), comm,
                   std::move(opts));
}

void ParMatrix::spmv(const ParVector& x, ParVector& y, Comm& comm) const {
  KESTREL_CHECK(x.local_size() == local_rows(), "spmv: x layout mismatch");
  spmv_local(x.local().data(), y.local(), comm);
}

void ParMatrix::spmv_local(const Scalar* x_local, Vector& y_local,
                           Comm& comm) const {
  // Profiling: one outer MatMult event (inclusive, PETSc-style) plus one
  // nested event per phase, so -log_trace shows the ghost exchange
  // overlapping the local multiply on each rank's track.
  static const int ev_mult = prof::registered_event("MatMult");
  static const int ev_pack = prof::registered_event("MatMultPack");
  static const int ev_send = prof::registered_event("MatMultSend");
  static const int ev_local = prof::registered_event("MatMultLocal");
  static const int ev_wait = prof::registered_event("MatMultWait");
  static const int ev_off = prof::registered_event("MatMultOffdiag");
  const std::size_t offdiag_traffic =
      offdiag_sell_    ? offdiag_sell_->spmv_traffic_bytes()
      : offdiag_talon_ ? offdiag_talon_->spmv_traffic_bytes()
                       : offdiag_.spmv_traffic_bytes();
  prof::ScopedEvent mult(
      ev_mult,
      2u * static_cast<std::uint64_t>(diag_->nnz() + offdiag_.nnz()),
      diag_->spmv_traffic_bytes() + offdiag_traffic);

  const bool exchanging = !sends_.empty() || !recvs_.empty();
  const bool persistent = persistent_ghosts_ && exchanging;
  if (persistent) {
    // (0) re-arm the persistent receive channels before anything else:
    // arming first (and only then sending) is what makes the rendezvous
    // deadlock-free — a peer parked in send() is waiting on this line.
    ensure_exchange(comm);
    exchange_->arm();
  }

  // (1) send the locally owned entries that other ranks need (eager sends
  // double as the posted receives on the peer side). Packing runs the
  // kGatherPack kernel into this plan's pre-sized slice of packbuf_.
  for (std::size_t si = 0; si < sends_.size(); ++si) {
    const SendPlan& plan = sends_[si];
    const Index count = static_cast<Index>(plan.local_indices.size());
    Scalar* packed = packbuf_.data() + send_offsets_[si];
    {
      prof::ScopedEvent pack(ev_pack);
      pooled_gather_pack(gather_fn_, x_local, plan.local_indices.data(),
                         count, packed);
    }
    prof::ScopedEvent send(ev_send);
    if (persistent) {
      exchange_->send(static_cast<int>(si), packed, count);
    } else {
      comm.isend(plan.peer, kTagGhost, packed,
                 static_cast<std::size_t>(count));
    }
  }

  // Local compute, factored so the ABFT path can recompute it (steps 2+4)
  // from the already-exchanged ghost values on a checksum mismatch.
  const auto diag_multiply = [&] {
    y_local.resize(local_rows());
    diag_->spmv(x_local, y_local.data());
  };
  const auto offdiag_multiply = [&] {
    if (offdiag_sell_) {
      if (nghost_ > 0) {
        offdiag_sell_->spmv_add(ghost_.data(), y_local.data());
      }
    } else if (offdiag_talon_) {
      if (nghost_ > 0) {
        offdiag_talon_->spmv_add(ghost_.data(), y_local.data());
      }
    } else if (!offdiag_rows_.empty()) {
      auto fn = simd::lookup_as<simd::CsrSpmvAddRowsFn>(
          simd::Op::kCsrSpmvAddRows, offdiag_.tier());
      const mat::FlockPartition& part = offdiag_.partition();
      if (part.nparts() <= 1) {
        fn(offdiag_.view(), offdiag_rows_.data(), ghost_.data(),
           y_local.data());
        return;
      }
      // Flock over the compressed rows: rowptr values are absolute, the
      // row-id list shifts with the range, and y stays unshifted because
      // the kernel scatters through rows[] — compressed rows are distinct
      // local rows, so parts never touch the same y entry.
      const mat::CsrView v = offdiag_.view();
      ThreadPool::rank_pool().run(part.nparts(), [&](int p, int) {
        const Index r0 = part.begin(p);
        const Index r1 = part.end(p);
        if (r0 == r1) return;
        const mat::CsrView sub{r1 - r0, v.n, v.rowptr + r0, v.colidx,
                               v.val};
        fn(sub, offdiag_rows_.data() + r0, ghost_.data(), y_local.data());
      });
    }
  };

  // (2) diagonal block with the local x — overlaps with message delivery.
  {
    prof::ScopedEvent local(ev_local);
    diag_multiply();
  }

  // (3) wait for ghost values. Persistent path: complete in arrival order
  // (wait_any); each completion means the peer's values are already in
  // place in ghost_ — nothing to unpack. Mailbox path: blocking receives
  // in plan order plus one copy into ghost_ per message (counted so the
  // fabric's payload_copies metric reflects the full end-to-end cost).
  {
    prof::ScopedEvent wait(ev_wait);
    if (persistent) {
      for (int c = 0; c < exchange_->nrecv(); ++c) {
        (void)exchange_->wait_any();
      }
    } else {
      for (const RecvPlan& plan : recvs_) {
        const std::vector<Scalar> data = comm.recv(plan.peer, kTagGhost);
        KESTREL_CHECK(static_cast<Index>(data.size()) == plan.count,
                      "ghost message size mismatch");
        std::copy(data.begin(), data.end(),
                  ghost_.data() + plan.ghost_offset);
        comm.add_payload_copy();
      }
    }
  }

  // (4) off-diagonal block accumulates into y.
  {
    prof::ScopedEvent off(ev_off);
    offdiag_multiply();
  }

  // (5) ABFT verification (Kestrel Aegis): each rank checks its local row
  // block against the assembly-time column checksums; a transient fault
  // heals with one local recompute (the ghost values are already in
  // place — no re-communication), a persistent one throws AbftError.
  if (abft_) {
    aegis::AegisStats& ast = aegis::stats();
    const auto verify_local = [&](Scalar* drift) {
      // Combined check c_diag·x + c_off·ghost − Σy = 0, so rounding in
      // either term is pooled into one drift and one scale. The reductions
      // are the tier-dispatched Aegis passes (aegis/abft.hpp).
      Scalar cxd = 0.0, cxd_abs = 0.0, cxo = 0.0, cxo_abs = 0.0;
      pooled_dot_abs(abft_cdiag_.data(), x_local, abft_cdiag_.size(), &cxd,
                     &cxd_abs);
      pooled_dot_abs(abft_coff_.data(), ghost_.data(), abft_coff_.size(),
                     &cxo, &cxo_abs);
      Scalar ysum = 0.0, ysum_abs = 0.0;
      pooled_sum_abs(y_local.data(), y_local.size(), &ysum, &ysum_abs);
      *drift = std::abs((cxd + cxo) - ysum);
      if (std::isnan(*drift)) return false;
      return *drift <= abft_tol_ * (cxd_abs + cxo_abs + ysum_abs + 1.0);
    };
    Scalar drift = 0.0;
    bool ok;
    {
      KESTREL_PROF_SPMV(
          "AbftVerify",
          2 * (local_rows() + abft_cdiag_.size() + abft_coff_.size()),
          sizeof(Scalar) *
              static_cast<std::size_t>(2 * (abft_cdiag_.size() +
                                            abft_coff_.size()) +
                                       local_rows()));
      ast.abft_verifications++;
      ok = verify_local(&drift);
    }
    if (!ok) {
      ast.abft_failures++;
      ast.abft_retries++;
      diag_multiply();
      offdiag_multiply();
      ast.abft_verifications++;
      if (verify_local(&drift)) {
        ast.recoveries++;
      } else {
        throw AbftError(
            "parmat(" + diag_->format_name() + ")", drift,
            "distributed checksum invariant still violated after local "
            "recompute on rank " + std::to_string(rank_),
            __FILE__, __LINE__);
      }
    }
  }
}

}  // namespace kestrel::par
