#include "app/gray_scott.hpp"

#include <cmath>

#include "base/error.hpp"
#include "mat/coo.hpp"

namespace kestrel::app {

GrayScott::GrayScott(Index n, GrayScottParams params)
    : grid_(n, n, 2, params.domain, params.domain), params_(params) {
  KESTREL_CHECK(n >= 4, "Gray-Scott grid too small");
}

void GrayScott::rhs(const Vector& state, Vector& f) const {
  KESTREL_CHECK(state.size() == size(), "gray-scott: state size mismatch");
  f.resize(size());
  const Index n = grid_.nx();
  const Scalar cx = 1.0 / (grid_.hx() * grid_.hx());
  const Scalar cy = 1.0 / (grid_.hy() * grid_.hy());
  const Scalar gamma = params_.gamma;
  const Scalar kappa = params_.kappa;

  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const Scalar u = state[grid_.idx(i, j, 0)];
      const Scalar v = state[grid_.idx(i, j, 1)];
      const Scalar lap_u =
          cx * (state[grid_.idx(i - 1, j, 0)] + state[grid_.idx(i + 1, j, 0)] -
                2.0 * u) +
          cy * (state[grid_.idx(i, j - 1, 0)] + state[grid_.idx(i, j + 1, 0)] -
                2.0 * u);
      const Scalar lap_v =
          cx * (state[grid_.idx(i - 1, j, 1)] + state[grid_.idx(i + 1, j, 1)] -
                2.0 * v) +
          cy * (state[grid_.idx(i, j - 1, 1)] + state[grid_.idx(i, j + 1, 1)] -
                2.0 * v);
      const Scalar uvv = u * v * v;
      f[grid_.idx(i, j, 0)] = params_.d1 * lap_u - uvv + gamma * (1.0 - u);
      f[grid_.idx(i, j, 1)] =
          params_.d2 * lap_v + uvv - (gamma + kappa) * v;
    }
  }
}

mat::Csr GrayScott::rhs_jacobian(const Vector& state) const {
  KESTREL_CHECK(state.size() == size(), "gray-scott: state size mismatch");
  const Index n = grid_.nx();
  const Scalar cx = 1.0 / (grid_.hx() * grid_.hx());
  const Scalar cy = 1.0 / (grid_.hy() * grid_.hy());

  mat::Coo coo(size(), size());
  coo.reserve(static_cast<std::size_t>(grid_.nodes()) * 12);
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const Scalar u = state[grid_.idx(i, j, 0)];
      const Scalar v = state[grid_.idx(i, j, 1)];
      const Index ru = grid_.idx(i, j, 0);
      const Index rv = grid_.idx(i, j, 1);

      // Diffusion stencil, inserted as full 2x2 blocks per neighbor the way
      // PETSc's DMDA assembly preallocates them (the cross-component
      // neighbor couplings are structural zeros). This reproduces the
      // paper's matrix shape: exactly 10 stored elements per row.
      const Scalar du_diag = -2.0 * params_.d1 * (cx + cy);
      const Scalar dv_diag = -2.0 * params_.d2 * (cx + cy);
      const struct {
        Index di, dj;
        Scalar wu, wv;
      } neighbors[] = {{-1, 0, params_.d1 * cx, params_.d2 * cx},
                       {+1, 0, params_.d1 * cx, params_.d2 * cx},
                       {0, -1, params_.d1 * cy, params_.d2 * cy},
                       {0, +1, params_.d1 * cy, params_.d2 * cy}};
      for (const auto& nb : neighbors) {
        coo.add(ru, grid_.idx(i + nb.di, j + nb.dj, 0), nb.wu);
        coo.add(ru, grid_.idx(i + nb.di, j + nb.dj, 1), 0.0);
        coo.add(rv, grid_.idx(i + nb.di, j + nb.dj, 0), 0.0);
        coo.add(rv, grid_.idx(i + nb.di, j + nb.dj, 1), nb.wv);
      }

      // reaction coupling (the local 2x2 block)
      coo.add(ru, ru, du_diag - v * v - params_.gamma);
      coo.add(ru, rv, -2.0 * u * v);
      coo.add(rv, ru, v * v);
      coo.add(rv, rv, dv_diag + 2.0 * u * v - (params_.gamma + params_.kappa));
    }
  }
  return coo.to_csr();
}

void GrayScott::initial_condition(Vector& state) const {
  state.resize(size());
  const Index n = grid_.nx();
  const Scalar l = params_.domain;
  const Scalar lo = 0.375 * l;
  const Scalar hi = 0.625 * l;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) {
      const Scalar x = grid_.x(i);
      const Scalar y = grid_.y(j);
      Scalar u = 1.0, v = 0.0;
      if (x >= lo && x <= hi && y >= lo && y <= hi) {
        // deterministic symmetry-breaking perturbation in the seeded square
        const Scalar wiggle =
            0.05 * std::sin(20.0 * M_PI * x / l) *
            std::sin(14.0 * M_PI * y / l);
        u = 0.5 + wiggle;
        v = 0.25 - wiggle;
      }
      state[grid_.idx(i, j, 0)] = u;
      state[grid_.idx(i, j, 1)] = v;
    }
  }
}

std::vector<mat::Csr> gray_scott_interpolation_chain(const Grid2D& fine,
                                                     int levels) {
  KESTREL_CHECK(levels >= 1, "need at least one level");
  std::vector<mat::Csr> interps;
  Grid2D grid = fine;
  for (int l = 0; l + 1 < levels; ++l) {
    KESTREL_CHECK(grid.can_coarsen(),
                  "grid not coarsenable to the requested level count");
    interps.push_back(grid.interpolation());
    grid = grid.coarsen();
  }
  return interps;
}

}  // namespace kestrel::app
